// Ablation: multi-fault shift policy.
//
// The paper assumes a single fault per word. Rows with several faults
// must still be programmed with *some* shift; this ablation compares
// the min-MSE policy (try all 2^nFM shifts, keep the Eq. 6-optimal one)
// against the naive first-fault policy (align the LSB segment with the
// most significant fault) as the fault density grows.
//
// Thin wrapper over the `multifault-policy` scenario workload (stdout
// byte-identical to the pre-API binary at fixed seeds):
//   urmem-run workload=multifault-policy seed=11
//
// Flags: --runs=N (default 200000), --seed=S
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "urmem/scenario/scenario_runner.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Ablation — multi-fault FM-LUT programming policy",
                "DESIGN.md §2 (multi-fault extension of Sec. 3)");

  scenario_spec spec;
  spec.name = "multifault-policy-ablation";
  spec.seeds.root = args.get_u64("seed", 11);
  spec.workload.name = "multifault-policy";
  spec.workload.options = option_map("workload");
  spec.workload.options.set("runs",
                            std::to_string(args.get_u64("runs", 200'000)));

  const scenario_runner runner(spec);
  (void)runner.run(std::cout);

  std::cout << "\nConclusion: at the paper's Fig. 5 operating point multi-fault "
               "rows are rare and the policies tie; at Fig. 7 fault densities "
               "(Pcell = 1e-3)\nthe min-MSE policy buys a visibly lower MSE "
               "tail for the same hardware — the LUT programming rule is free "
               "to be smart because it runs at test time.\n";
  return 0;
}
