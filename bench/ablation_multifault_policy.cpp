// Ablation: multi-fault shift policy.
//
// The paper assumes a single fault per word. Rows with several faults
// must still be programmed with *some* shift; this ablation compares
// the min-MSE policy (try all 2^nFM shifts, keep the Eq. 6-optimal one)
// against the naive first-fault policy (align the LSB segment with the
// most significant fault) as the fault density grows.
//
// Flags: --runs=N (default 200000), --seed=S
#include <iostream>

#include "bench_util.hpp"
#include "urmem/common/table.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/yield/mse_distribution.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Ablation — multi-fault FM-LUT programming policy",
                "DESIGN.md §2 (multi-fault extension of Sec. 3)");

  mse_cdf_config config;
  config.total_runs = args.get_u64("runs", 200'000);
  config.seed = args.get_u64("seed", 11);
  config.n_max = 400;

  console_table table({"Pcell", "nFM", "policy", "MSE @ yield 90%",
                       "MSE @ yield 99%"});
  for (const double pcell : {5e-6, 1e-4, 1e-3}) {
    for (const unsigned n_fm : {2u, 5u}) {
      for (const shift_policy policy :
           {shift_policy::min_mse, shift_policy::first_fault}) {
        const auto scheme = make_scheme_shuffle(4096, 32, n_fm, policy);
        const empirical_cdf cdf = compute_mse_cdf(*scheme, 4096, pcell, config);
        table.add_row({format_scientific(pcell, 1), std::to_string(n_fm),
                       policy == shift_policy::min_mse ? "min-MSE" : "first-fault",
                       format_scientific(mse_for_yield(cdf, 0.90), 3),
                       format_scientific(mse_for_yield(cdf, 0.99), 3)});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nConclusion: at the paper's Fig. 5 operating point multi-fault "
               "rows are rare and the policies tie; at Fig. 7 fault densities "
               "(Pcell = 1e-3)\nthe min-MSE policy buys a visibly lower MSE "
               "tail for the same hardware — the LUT programming rule is free "
               "to be smart because it runs at test time.\n";
  return 0;
}
