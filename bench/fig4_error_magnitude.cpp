// Fig. 4 reproduction: worst-case error magnitude per faulty bit
// position for every FM-LUT size option (nFM = 1..5) on a 32-bit
// two's-complement word. The envelope per option is 2^(S-1), S = W/2^nFM.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "urmem/common/table.hpp"
#include "urmem/shuffle/bit_shuffler.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  const auto width = static_cast<unsigned>(args.get_u64("width", 32));
  bench::banner("Fig. 4 — error magnitude per faulty bit position",
                "Ganapathy et al., DAC'15, Fig. 4");

  const unsigned max_nfm = log2_exact(width);
  std::vector<std::string> headers{"fault bit b", "no-correction log2|e|"};
  for (unsigned n_fm = 1; n_fm <= max_nfm; ++n_fm) {
    headers.push_back("nFM=" + std::to_string(n_fm) + " log2|e|");
  }
  console_table table(headers);

  std::vector<bit_shuffler> shufflers;
  for (unsigned n_fm = 1; n_fm <= max_nfm; ++n_fm) shufflers.emplace_back(width, n_fm);

  for (unsigned b = 0; b < width; ++b) {
    std::vector<std::string> row{std::to_string(b), std::to_string(b)};
    for (const bit_shuffler& s : shufflers) {
      // BIST programs xFM = segment_of(b); the residual logical position
      // of the fault is b mod S, so the error magnitude is 2^(b mod S).
      const unsigned logical = s.logical_position(b, s.segment_of(b));
      row.push_back(std::to_string(logical));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nWorst-case envelope (Sec. 3: bounded by 2^(S-1)):\n";
  console_table bounds({"nFM", "segment size S", "max |error|", "paper bound 2^(S-1)"});
  for (const bit_shuffler& s : shufflers) {
    double max_err = 0.0;
    for (unsigned b = 0; b < width; ++b) {
      max_err = std::max(max_err,
                         std::ldexp(1.0, static_cast<int>(
                                             s.logical_position(b, s.segment_of(b)))));
    }
    bounds.add_row({std::to_string(s.n_fm()), std::to_string(s.segment_size()),
                    format_double(max_err, 10),
                    format_double(s.max_error_magnitude(), 10)});
  }
  bounds.print(std::cout);
  return 0;
}
