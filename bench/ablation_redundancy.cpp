// Ablation: spare-row redundancy — the classical repair the paper's
// Sec. 2 rules out ("the number of redundant rows/columns required …
// increases tremendously [15] … an unviable option").
//
// Sweeps Pcell and reports the spare rows needed for a 99% repair
// yield on a 16 KB array, the resulting area overhead, and how it
// compares to the SECDED / bit-shuffling alternatives at the same
// operating point.
//
// Flags: --runs=N (MC arrays per candidate, default 400), --seed=S
#include <iostream>

#include "bench_util.hpp"
#include "urmem/common/table.hpp"
#include "urmem/hwmodel/overhead_model.hpp"
#include "urmem/scheme/row_redundancy.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Ablation — spare-row redundancy vs ECC vs bit-shuffling",
                "Ganapathy et al., DAC'15, Sec. 2 (redundancy economics)");

  const auto mc_runs = static_cast<std::uint32_t>(args.get_u64("runs", 400));
  rng gen(args.get_u64("seed", 3));
  const std::uint32_t rows = 4096;
  const std::uint32_t width = 32;

  const sram_macro_model sram = sram_macro_model::fdsoi_28nm();
  const overhead_model model(gate_library::fdsoi_28nm(), sram,
                             array_geometry{rows, width});
  const double ecc_area = model.secded(hamming_secded(32)).area_um2;
  const double nfm1_area = model.shuffle(1).area_um2;
  const double row_area = width * sram.cell_area_um2 / sram.array_efficiency;

  std::cout << "16KB array (4096 x 32), repair yield target 99%, " << mc_runs
            << " MC arrays per spare-count candidate.\n"
            << "Reference area overheads: H(39,32) ECC = "
            << format_double(ecc_area, 4) << " um^2, nFM=1 shuffle = "
            << format_double(nfm1_area, 4) << " um^2.\n\n";

  console_table table({"Pcell", "E[faulty rows]", "spares for 99% yield",
                       "area overhead [um^2]", "vs ECC", "vs nFM=1 shuffle"});
  for (const double pcell : {1e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3}) {
    const double row_fail =
        1.0 - std::pow(1.0 - pcell, static_cast<double>(width));
    const double expected_faulty = row_fail * rows;
    const auto spares =
        spares_for_yield(rows, width, pcell, 0.99, 4096, mc_runs, gen);
    if (!spares.has_value()) {
      table.add_row({format_scientific(pcell, 1), format_double(expected_faulty, 3),
                     "> 4096 (infeasible)", "-", "-", "-"});
      continue;
    }
    const double area = *spares * row_area;
    table.add_row({format_scientific(pcell, 1), format_double(expected_faulty, 3),
                   std::to_string(*spares), format_double(area, 4),
                   format_double(area / ecc_area, 3) + "x",
                   format_double(area / nfm1_area, 3) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nConclusion: spare rows are economical while failures are "
               "countable, but the required count tracks E[faulty rows] ~ "
               "R*W*Pcell — it grows\nwithout bound as the voltage scales "
               "(161 spares at Pcell = 1e-3, already past the nFM=1 shuffle "
               "area and still climbing exponentially\nwith further VDD "
               "reduction; fuse/remap logic not even counted), and repair is "
               "all-or-nothing: one unrepaired row returns the full 2^31\n"
               "error magnitude. The shuffle scheme's cost is flat in Pcell. "
               "Exactly the Sec. 2 'unviable under worst-case variations' "
               "argument.\n";
  return 0;
}
