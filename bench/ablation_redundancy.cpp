// Ablation: spare-row redundancy — the classical repair the paper's
// Sec. 2 rules out ("the number of redundant rows/columns required …
// increases tremendously [15] … an unviable option").
//
// Sweeps Pcell and reports the spare rows needed for a 99% repair
// yield on a 16 KB array, the resulting area overhead, and how it
// compares to the SECDED / bit-shuffling alternatives at the same
// operating point.
//
// Thin wrapper over the `redundancy-yield` scenario workload:
//   urmem-run workload=redundancy-yield workload.runs=400 seed=3
// (Spare-row repair is also available as the `redundancy` *scheme* for
// the functional workloads, e.g. schemes=redundancy:spares=32.)
//
// Flags: --runs=N (MC arrays per candidate, default 400), --seed=S
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "urmem/scenario/scenario_runner.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Ablation — spare-row redundancy vs ECC vs bit-shuffling",
                "Ganapathy et al., DAC'15, Sec. 2 (redundancy economics)");

  scenario_spec spec;
  spec.name = "redundancy-ablation";
  spec.seeds.root = args.get_u64("seed", 3);
  spec.workload.name = "redundancy-yield";
  spec.workload.options = option_map("workload");
  spec.workload.options.set("runs", std::to_string(args.get_u64("runs", 400)));

  const scenario_runner runner(spec);
  (void)runner.run(std::cout);

  std::cout << "\nConclusion: spare rows are economical while failures are "
               "countable, but the required count tracks E[faulty rows] ~ "
               "R*W*Pcell — it grows\nwithout bound as the voltage scales "
               "(161 spares at Pcell = 1e-3, already past the nFM=1 shuffle "
               "area and still climbing exponentially\nwith further VDD "
               "reduction; fuse/remap logic not even counted), and repair is "
               "all-or-nothing: one unrepaired row returns the full 2^31\n"
               "error magnitude. The shuffle scheme's cost is flat in Pcell. "
               "Exactly the Sec. 2 'unviable under worst-case variations' "
               "argument.\n";
  return 0;
}
