// Micro-benchmarks of the memory substrate hot loop: the compiled
// fault-plane fast path (per-word and batched row ops) measured against
// the per-cell reference oracle on a dense fault map, plus fault
// sampling and the Eq. 6 MSE kernel Fig. 5's Monte Carlo leans on.
//
// Before timing anything the bench proves the two paths bit-identical
// on randomized write/read sequences (exits nonzero on mismatch), so
// the reported speedup is between equivalent computations. Emits
// BENCH_micro_memory.json (see README "Bench telemetry"); CI fails when
// speedup_read_vs_oracle or speedup_write_vs_oracle drops below 1.
//
// Flags:
//   --rows=N         array rows            (default 4096, the 16 KB array)
//   --width=W        word width in bits    (default 32)
//   --pcell=P        cell failure prob     (default 5e-2 — dense on purpose)
//   --seed=S         fault map + data seed (default 1)
//   --min-time-ms=T  min wall time per timed bench (default 200)
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "urmem/bist/bist_engine.hpp"
#include "urmem/common/binomial.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/memory/sram_array.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace {

using namespace urmem;

std::vector<word_t> random_words(std::uint64_t seed, std::size_t count,
                                 unsigned width) {
  rng gen(seed);
  std::vector<word_t> out(count);
  for (auto& w : out) w = gen() & word_mask(width);
  return out;
}

// Proves compiled == reference over a write/read sequence that exercises
// every fault kind (the map uses the mixed polarity, which includes both
// transition-fail kinds). Returns false on any mismatch.
bool verify_paths_identical(const fault_map& map, std::uint64_t seed) {
  sram_array compiled(map);
  compiled.set_fault_path(fault_path::compiled);
  sram_array reference(map);
  reference.set_fault_path(fault_path::reference);

  const std::uint32_t rows = map.geometry().rows;
  const unsigned width = map.geometry().width;
  for (int pass = 0; pass < 3; ++pass) {
    const auto pattern =
        random_words(seed + static_cast<std::uint64_t>(pass), rows, width);
    compiled.write_rows(0, pattern);
    for (std::uint32_t row = 0; row < rows; ++row) {
      reference.write(row, pattern[row]);
    }
    std::vector<word_t> batched(rows);
    compiled.read_rows(0, batched);
    for (std::uint32_t row = 0; row < rows; ++row) {
      const word_t oracle = reference.read(row);
      if (batched[row] != oracle || compiled.read(row) != oracle ||
          compiled.read_ideal(row) != reference.read_ideal(row)) {
        std::cerr << "FAST/ORACLE MISMATCH at pass " << pass << " row " << row
                  << ": batched=" << batched[row] << " oracle=" << oracle
                  << "\n";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::arg_parser args(argc, argv);
  bench::banner("micro_memory — fault-plane fast path vs per-cell oracle",
                "hot loop of the Fig. 5 / Fig. 7 Monte-Carlo campaigns");

  const auto rows = static_cast<std::uint32_t>(args.get_u64("rows", 4096));
  const auto width = static_cast<unsigned>(args.get_u64("width", 32));
  const double pcell = args.get_double("pcell", 5e-2);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const double min_ms = args.get_double("min-time-ms", 200.0);

  const array_geometry geometry{rows, width};
  rng gen(seed);
  const fault_map map = sample_fault_map_binomial(
      geometry, binomial_distribution(geometry.cells(), pcell), gen,
      fault_polarity::mixed);
  std::cout << "geometry " << rows << " x " << width << ", Pcell = " << pcell
            << ", injected faults = " << map.fault_count() << " ("
            << map.faulty_rows().size() << " faulty rows)\n\n";

  if (!verify_paths_identical(map, seed + 101)) return 1;
  std::cout << "paths bit-identical over randomized write/read sequences: ok\n\n";

  sram_array fast(map);
  fast.set_fault_path(fault_path::compiled);
  sram_array oracle(map);
  oracle.set_fault_path(fault_path::reference);
  const auto pattern = random_words(seed + 7, rows, width);
  fast.write_rows(0, pattern);
  oracle.write_rows(0, pattern);

  std::vector<word_t> buffer(rows);
  std::vector<bench::micro_result> results;

  results.push_back(bench::run_micro(
      "read/word oracle", rows,
      [&] {
        word_t sum = 0;
        for (std::uint32_t row = 0; row < rows; ++row) sum += oracle.read(row);
        bench::keep(sum);
      },
      min_ms));
  results.push_back(bench::run_micro(
      "read/word compiled", rows,
      [&] {
        word_t sum = 0;
        for (std::uint32_t row = 0; row < rows; ++row) sum += fast.read(row);
        bench::keep(sum);
      },
      min_ms));
  results.push_back(bench::run_micro(
      "read/rows compiled", rows,
      [&] {
        fast.read_rows(0, buffer);
        bench::keep(buffer[rows - 1]);
      },
      min_ms));
  results.push_back(bench::run_micro(
      "write/word oracle", rows,
      [&] {
        for (std::uint32_t row = 0; row < rows; ++row) {
          oracle.write(row, pattern[row]);
        }
      },
      min_ms));
  results.push_back(bench::run_micro(
      "write/rows compiled", rows,
      [&] { fast.write_rows(0, pattern); }, min_ms));
  results.push_back(bench::run_micro(
      "sample_fault_map n=150", 150,
      [&] { bench::keep(sample_fault_map_exact(geometry, 150, gen).fault_count()); },
      min_ms));
  {
    const auto model = cell_failure_model::default_28nm();
    const array_geometry vg{512, 32};
    const double vdd = model.vdd_for_pcell(1e-3);
    results.push_back(bench::run_micro(
        "faults_at_voltage 512x32", 1,
        [&] { bench::keep(model.faults_at_voltage(vg, vdd).fault_count()); },
        min_ms));
  }
  {
    rng bist_gen(3);
    sram_array bist_array(
        sample_fault_map_exact(array_geometry{1024, 32}, 20, bist_gen));
    const bist_engine engine(march_c_minus());
    results.push_back(bench::run_micro(
        "bist march_c- 1024x32", 1024,
        [&] { bench::keep(engine.run(bist_array).pass ? 1 : 0); }, min_ms));
  }
  {
    const auto scheme = make_scheme_shuffle(rows, 32, 2);
    rng mse_gen(seed + 13);
    const array_geometry mse_geometry{rows, scheme->storage_bits()};
    results.push_back(bench::run_micro(
        "sample_mse nFM=2 n=20", 1,
        [&] {
          bench::keep(static_cast<std::uint64_t>(
              sample_mse(*scheme, mse_geometry, 20, mse_gen)));
        },
        min_ms));
  }

  bench::print_micro_table(results);

  const double speedup_read = results[0].ns_per_item / results[2].ns_per_item;
  const double speedup_write = results[3].ns_per_item / results[4].ns_per_item;
  std::cout << "\nfast-path speedup vs per-cell oracle: read "
            << speedup_read << "x, write " << speedup_write << "x\n";

  bench::json_object payload = bench::bench_envelope("micro_memory");
  bench::json_object config;
  config.add("rows", std::uint64_t{rows})
      .add("width", std::uint64_t{width})
      .add("pcell", pcell)
      .add("seed", seed)
      .add("min_time_ms", min_ms)
      .add("injected_faults", map.fault_count());
  payload.add_raw("config", config.str());
  std::vector<std::string> entries;
  entries.reserve(results.size());
  for (const auto& r : results) entries.push_back(bench::micro_json(r));
  payload.add_raw("results", bench::json_array(entries));
  payload.add("speedup_read_vs_oracle", speedup_read);
  payload.add("speedup_write_vs_oracle", speedup_write);
  bench::write_bench_json("micro_memory", payload);
  return 0;
}
