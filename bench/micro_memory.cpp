// Micro-benchmarks (google-benchmark): the memory substrate — fault-map
// corruption, fault sampling, BIST sweeps, and the Eq. 6 MSE sampler
// that Fig. 5's 1e7-run Monte Carlo leans on.
#include <benchmark/benchmark.h>

#include "urmem/bist/bist_engine.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/memory/sram_array.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace {

using namespace urmem;

void bm_faulty_read(benchmark::State& state) {
  rng gen(1);
  const fault_map faults =
      sample_fault_map_exact(geometry_16kb_x32(), 150, gen);
  sram_array array(faults);
  array.fill(0xA5A5A5A5ULL);
  std::uint32_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.read(row));
    row = (row + 1) & 4095;
  }
}
BENCHMARK(bm_faulty_read);

void bm_sample_fault_map(benchmark::State& state) {
  rng gen(2);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_fault_map_exact(geometry_16kb_x32(), n, gen));
  }
}
BENCHMARK(bm_sample_fault_map)->Arg(1)->Arg(10)->Arg(150);

void bm_voltage_fault_enumeration(benchmark::State& state) {
  const auto model = cell_failure_model::default_28nm();
  const array_geometry geometry{512, 32};
  const double vdd = model.vdd_for_pcell(1e-3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.faults_at_voltage(geometry, vdd));
  }
}
BENCHMARK(bm_voltage_fault_enumeration);

void bm_bist_march(benchmark::State& state) {
  rng gen(3);
  const array_geometry geometry{1024, 32};
  sram_array array(sample_fault_map_exact(geometry, 20, gen));
  const bist_engine engine(state.range(0) == 0 ? mats_plus() : march_c_minus());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(array));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(bm_bist_march)->Arg(0)->Arg(1);

void bm_mse_cdf_sampling(benchmark::State& state) {
  const auto scheme = make_scheme_shuffle(4096, 32, 2);
  mse_cdf_config config;
  config.total_runs = 20'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_mse_cdf(*scheme, 4096, 5e-6, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(bm_mse_cdf_sampling);

}  // namespace
