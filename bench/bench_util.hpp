// Shared bench infrastructure:
//  * arg_parser — minimal `--flag=value` parsing so the paper's full
//    Monte-Carlo configuration stays one flag away from the fast default;
//  * json_object / write_bench_json — machine-readable BENCH_<name>.json
//    telemetry (wall time, throughput, config, git sha) that CI uploads
//    as artifacts and gates perf regressions on;
//  * run_micro — a tiny timing harness for the micro_* hot-path benches
//    (warmup + repeat-until-min-wall-time, ns/item and items/sec).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Short git revision baked in at configure time (see bench/CMakeLists.txt).
#ifndef URMEM_GIT_SHA
#define URMEM_GIT_SHA "unknown"
#endif

namespace urmem::bench {

/// Parsed `--key=value` arguments.
class arg_parser {
 public:
  arg_parser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// Value of `--name=...` as uint64, or `fallback` when absent.
  [[nodiscard]] std::uint64_t get_u64(std::string_view name,
                                      std::uint64_t fallback) const {
    const std::string value = raw(name);
    return value.empty() ? fallback : std::strtoull(value.c_str(), nullptr, 10);
  }

  /// Value of `--name=...` as double, or `fallback` when absent.
  [[nodiscard]] double get_double(std::string_view name, double fallback) const {
    const std::string value = raw(name);
    return value.empty() ? fallback : std::strtod(value.c_str(), nullptr);
  }

  /// Value of `--name=...` verbatim, or `fallback` when absent.
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view fallback) const {
    const std::string value = raw(name);
    return value.empty() ? std::string(fallback) : value;
  }

  /// True when `--name` (with or without value) is present.
  [[nodiscard]] bool has(std::string_view name) const {
    const std::string plain = "--" + std::string(name);
    for (const auto& arg : args_) {
      if (arg == plain || arg.starts_with(plain + "=")) return true;
    }
    return false;
  }

 private:
  [[nodiscard]] std::string raw(std::string_view name) const {
    const std::string prefix = "--" + std::string(name) + "=";
    for (const auto& arg : args_) {
      if (arg.starts_with(prefix)) return arg.substr(prefix.size());
    }
    return {};
  }

  std::vector<std::string> args_;
};

/// Prints the standard bench banner.
inline void banner(std::string_view title, std::string_view paper_ref) {
  std::cout << "=====================================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "=====================================================================\n\n";
}

// ------------------------------------------------------------- telemetry

/// Incrementally built JSON object; values are escaped/formatted on add.
class json_object {
 public:
  json_object& add(std::string_view key, std::string_view value) {
    std::string quoted = "\"";
    quoted += escape(value);
    quoted += "\"";
    return add_raw(key, quoted);
  }
  json_object& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  json_object& add(std::string_view key, double value) {
    if (!std::isfinite(value)) return add_raw(key, "null");
    std::ostringstream out;
    out << std::setprecision(17) << value;
    return add_raw(key, out.str());
  }
  json_object& add(std::string_view key, std::uint64_t value) {
    return add_raw(key, std::to_string(value));
  }
  json_object& add(std::string_view key, bool value) {
    return add_raw(key, value ? "true" : "false");
  }
  /// Nested object / array: `raw` must already be valid JSON.
  /// (Built with append rather than operator+ chains: GCC 12's
  /// -Wrestrict misfires on temporary-string concatenation.)
  json_object& add_raw(std::string_view key, std::string_view raw) {
    std::string field = "\"";
    field += escape(key);
    field += "\": ";
    field += raw;
    fields_.push_back(std::move(field));
    return *this;
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += i == 0 ? "\n  " : ",\n  ";
      out += fields_[i];
    }
    out += "\n}";
    return out;
  }

  static std::string escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            std::ostringstream hex;
            hex << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                << static_cast<int>(c);
            out += hex.str();
          } else {
            out += c;
          }
      }
    }
    return out;
  }

 private:
  std::vector<std::string> fields_;
};

/// JSON array from a range of already-serialized objects.
inline std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    out += items[i];
  }
  out += "]";
  return out;
}

/// Standard envelope every BENCH_*.json starts from: bench name, schema
/// version, git revision and compiler (see README "Bench telemetry").
inline json_object bench_envelope(std::string_view bench_name) {
  json_object envelope;
  envelope.add("bench", bench_name)
      .add("schema_version", std::uint64_t{1})
      .add("git_sha", URMEM_GIT_SHA)
      .add("compiler", __VERSION__);
  return envelope;
}

/// Directory BENCH_*.json files land in: $URMEM_BENCH_JSON_DIR or cwd.
inline std::string bench_json_dir() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): benches read the environment
  // once from their single reporting thread; nothing calls setenv.
  const char* dir = std::getenv("URMEM_BENCH_JSON_DIR");
  return dir != nullptr && *dir != '\0' ? dir : ".";
}

/// Writes `payload` to <dir>/BENCH_<name>.json (note goes to stderr so
/// bench stdout stays byte-identical across runs).
inline void write_bench_json(std::string_view bench_name,
                             const json_object& payload) {
  std::string path = bench_json_dir();
  path += "/BENCH_";
  path += bench_name;
  path += ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << payload.str() << "\n";
  std::cerr << "bench telemetry: " << path << "\n";
}

// ---------------------------------------------------------- micro timing

/// One timed micro-bench: `items` items processed in `wall_ms` total.
struct micro_result {
  std::string name;
  std::uint64_t items = 0;
  double wall_ms = 0.0;
  double ns_per_item = 0.0;
  double items_per_sec = 0.0;
};

/// Times `body` (one rep = `items_per_rep` items): one warmup rep, then
/// reps until `min_wall_ms` of measured time accumulates.
template <typename Fn>
micro_result run_micro(std::string name, std::uint64_t items_per_rep, Fn&& body,
                       double min_wall_ms = 200.0) {
  using clock = std::chrono::steady_clock;
  body();  // warmup
  std::uint64_t reps = 0;
  const auto start = clock::now();
  double elapsed_ms = 0.0;
  do {
    body();
    ++reps;
    elapsed_ms = std::chrono::duration<double, std::milli>(clock::now() - start)
                     .count();
  } while (elapsed_ms < min_wall_ms);
  micro_result result;
  result.name = std::move(name);
  result.items = items_per_rep * reps;
  result.wall_ms = elapsed_ms;
  result.ns_per_item =
      elapsed_ms * 1e6 / static_cast<double>(std::max<std::uint64_t>(1, result.items));
  result.items_per_sec =
      static_cast<double>(result.items) / (elapsed_ms / 1e3);
  return result;
}

/// JSON form of one micro_result.
inline std::string micro_json(const micro_result& r) {
  json_object o;
  o.add("name", r.name)
      .add("items", r.items)
      .add("wall_ms", r.wall_ms)
      .add("ns_per_item", r.ns_per_item)
      .add("items_per_sec", r.items_per_sec);
  return o.str();
}

/// Prints micro results as an aligned table (cout format state is
/// restored afterwards).
inline void print_micro_table(const std::vector<micro_result>& results) {
  const std::ios::fmtflags flags = std::cout.flags();
  const std::streamsize precision = std::cout.precision();
  std::size_t width = 4;
  for (const auto& r : results) width = std::max(width, r.name.size());
  std::cout << std::left << std::setw(static_cast<int>(width)) << "name"
            << std::right << std::setw(14) << "ns/item" << std::setw(16)
            << "Mitems/s" << std::setw(12) << "wall ms" << "\n";
  for (const auto& r : results) {
    std::cout << std::left << std::setw(static_cast<int>(width)) << r.name
              << std::right << std::fixed << std::setprecision(2)
              << std::setw(14) << r.ns_per_item << std::setw(16)
              << r.items_per_sec / 1e6 << std::setw(12) << r.wall_ms << "\n";
  }
  std::cout.flags(flags);
  std::cout.precision(precision);
}

/// Defeats dead-code elimination of a bench loop's result.
inline void keep(std::uint64_t value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r"(value) : "memory");
#else
  static volatile std::uint64_t sink = 0;
  sink = value;
  (void)sink;
#endif
}

}  // namespace urmem::bench
