// Minimal command-line parsing shared by the figure-reproduction
// binaries: every bench accepts `--flag=value` overrides for its
// Monte-Carlo scale so the paper's full configuration stays one flag
// away from the fast default.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace urmem::bench {

/// Parsed `--key=value` arguments.
class arg_parser {
 public:
  arg_parser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// Value of `--name=...` as uint64, or `fallback` when absent.
  [[nodiscard]] std::uint64_t get_u64(std::string_view name,
                                      std::uint64_t fallback) const {
    const std::string value = raw(name);
    return value.empty() ? fallback : std::strtoull(value.c_str(), nullptr, 10);
  }

  /// Value of `--name=...` as double, or `fallback` when absent.
  [[nodiscard]] double get_double(std::string_view name, double fallback) const {
    const std::string value = raw(name);
    return value.empty() ? fallback : std::strtod(value.c_str(), nullptr);
  }

  /// True when `--name` (with or without value) is present.
  [[nodiscard]] bool has(std::string_view name) const {
    const std::string plain = "--" + std::string(name);
    for (const auto& arg : args_) {
      if (arg == plain || arg.starts_with(plain + "=")) return true;
    }
    return false;
  }

 private:
  [[nodiscard]] std::string raw(std::string_view name) const {
    const std::string prefix = "--" + std::string(name) + "=";
    for (const auto& arg : args_) {
      if (arg.starts_with(prefix)) return arg.substr(prefix.size());
    }
    return {};
  }

  std::vector<std::string> args_;
};

/// Prints the standard bench banner.
inline void banner(std::string_view title, std::string_view paper_ref) {
  std::cout << "=====================================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "=====================================================================\n\n";
}

}  // namespace urmem::bench
