// Ablation: what happens when the FM-LUT columns are NOT fault-free?
//
// The paper implements the LUT as extra bit columns in the array and
// implicitly assumes they are reliable (they are written after BIST).
// This ablation injects faults into the LUT entries at the same Pcell
// as the data array and measures the empirical MSE inflation: a wrong
// xFM mis-rotates the *entire* word, so LUT robustness is a real design
// requirement, quantified here.
//
// Flags: --pcell=P (default 1e-3), --trials=N (default 200), --seed=S
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "urmem/common/table.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/memory/sram_array.hpp"
#include "urmem/shuffle/shuffle_scheme.hpp"

namespace {

using namespace urmem;

/// Empirical MSE of random data through a shuffled faulty array, with
/// optional post-programming corruption of the LUT entries.
double empirical_mse(unsigned n_fm, double pcell, bool corrupt_lut, rng& gen) {
  const std::uint32_t rows = 4096;
  const array_geometry geometry{rows, 32};
  const binomial_distribution data_faults(geometry.cells(), pcell);
  const fault_map faults = sample_fault_map_binomial(geometry, data_faults, gen);

  shuffle_scheme scheme(rows, 32, n_fm);
  scheme.program(faults);

  if (corrupt_lut) {
    // Each LUT bit fails with the same Pcell; a failed bit flips the
    // stored xFM entry bit (worst-case persistent corruption).
    for (std::uint32_t r = 0; r < rows; ++r) {
      unsigned entry = scheme.lut().get(r);
      bool changed = false;
      for (unsigned bit = 0; bit < n_fm; ++bit) {
        if (gen.uniform() < pcell) {
          entry ^= 1u << bit;
          changed = true;
        }
      }
      if (changed) scheme.mutable_lut().set(r, entry);
    }
  }

  sram_array array(faults);
  double total = 0.0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    const word_t data = gen() & word_mask(32);
    array.write(r, scheme.apply_write(r, data));
    const word_t readback = scheme.restore_read(r, array.read(r));
    const double err = static_cast<double>(to_signed(readback, 32)) -
                       static_cast<double>(to_signed(data, 32));
    total += err * err;
  }
  return total / rows;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::arg_parser args(argc, argv);
  bench::banner("Ablation — faulty FM-LUT columns",
                "DESIGN.md §2 (LUT robustness assumption of Sec. 3)");

  const double pcell = args.get_double("pcell", 1e-3);
  const auto trials = args.get_u64("trials", 200);
  rng gen(args.get_u64("seed", 5));

  std::cout << "4096 x 32 array, Pcell = " << format_scientific(pcell, 2)
            << " for both data cells and (when enabled) LUT bits, "
            << trials << " Monte-Carlo arrays per point.\n\n";

  console_table table({"nFM", "mean MSE, robust LUT", "mean MSE, faulty LUT",
                       "inflation"});
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    double robust = 0.0;
    double faulty = 0.0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      robust += empirical_mse(n_fm, pcell, false, gen);
      faulty += empirical_mse(n_fm, pcell, true, gen);
    }
    robust /= static_cast<double>(trials);
    faulty /= static_cast<double>(trials);
    table.add_row({std::to_string(n_fm), format_scientific(robust, 3),
                   format_scientific(faulty, 3),
                   format_double(faulty / robust, 3) + "x"});
  }
  table.print(std::cout);

  std::cout << "\nConclusion: a corrupted xFM entry mis-rotates the whole row, "
               "so larger LUTs (higher nFM) expose more failure surface —\n"
               "the LUT columns must use robust cells or be covered by the "
               "BIST themselves (the paper's implicit assumption).\n";
  return 0;
}
