// Fig. 7 reproduction: CDF of the application quality metric for the
// three Table 1 benchmarks on a 16 KB memory with Pcell = 1e-3, under
// i) no protection, ii) H(22,16) P-ECC, iii) bit-shuffling with nFM=1,
// and iv) bit-shuffling with nFM=2.
//
// Thin wrapper over the declarative scenario API (`fig7-quality`
// workload); stdout is byte-identical to the pre-API hand-wired binary
// at fixed seeds. `urmem-run scenarios/fig7_smoke.json` runs the same
// experiment from a checked-in spec file.
//
// The paper draws 500 Monte-Carlo fault maps per failure count
// N = 1..Nmax (99% coverage). The default here is scaled down for a
// laptop run; restore the paper's scale with --paper-scale.
//
// Flags:
//   --samples=N      fault maps per failure count (default 10)
//   --paper-scale    shorthand for --samples=500
//   --pcell=P        cell failure probability (default 1e-3)
//   --apps=a,b       subset: elasticnet, pca, knn (default all)
//   --threads=N      campaign workers (default 0 = all cores)
//   --batch=N        trials per scheduling step (default 0 = auto)
//   --seed=S
//
// The sweep runs through the parallel campaign engine; for a fixed seed
// the tables are bit-identical at any --threads.
#include <chrono>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "urmem/scenario/scenario_runner.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Fig. 7 — CDF of application quality under memory failures",
                "Ganapathy et al., DAC'15, Fig. 7 / Sec. 5.2");

  scenario_spec spec;
  spec.name = "fig7-quality";
  spec.fault.pcell = args.get_double("pcell", 1e-3);
  spec.seeds.root = args.get_u64("seed", 99);
  spec.seeds.app = args.get_u64("app-seed", 7);
  spec.run.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  spec.run.batch = args.get_u64("batch", 0);

  // The paper's Fig. 7 comparison set, by registry name.
  spec.schemes.push_back({"none", option_map("schemes[0]")});
  spec.schemes.push_back({"pecc", option_map("schemes[1]")});
  for (unsigned n_fm = 1; n_fm <= 2; ++n_fm) {
    scheme_ref shuffle{"shuffle",
                       option_map("schemes[" + std::to_string(1 + n_fm) + "]")};
    shuffle.options.set("nfm", std::to_string(n_fm));
    spec.schemes.push_back(std::move(shuffle));
  }

  spec.workload.name = "fig7-quality";
  spec.workload.options = option_map("workload");
  spec.workload.options.set(
      "samples", std::to_string(args.has("paper-scale")
                                    ? 500
                                    : args.get_u64("samples", 10)));
  const std::string apps = args.get_string("apps", "");
  if (!apps.empty()) spec.workload.options.set("apps", apps);

  const scenario_runner runner(spec);
  const auto sweep_start = std::chrono::steady_clock::now();
  const scenario_report report = runner.run(std::cout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - sweep_start);
  std::cerr << "sweep wall time: " << elapsed.count() << " ms ("
            << report.total_trials << " trials)\n";
  return 0;
}
