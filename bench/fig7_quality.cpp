// Fig. 7 reproduction: CDF of the application quality metric for the
// three Table 1 benchmarks on a 16 KB memory with Pcell = 1e-3, under
// i) no protection, ii) H(22,16) P-ECC, iii) bit-shuffling with nFM=1,
// and iv) bit-shuffling with nFM=2.
//
// The paper draws 500 Monte-Carlo fault maps per failure count
// N = 1..Nmax (99% coverage). The default here is scaled down for a
// laptop run; restore the paper's scale with --paper-scale.
//
// Flags:
//   --samples=N      fault maps per failure count (default 10)
//   --paper-scale    shorthand for --samples=500
//   --pcell=P        cell failure probability (default 1e-3)
//   --apps=a,b       subset: elasticnet, pca, knn (default all)
//   --threads=N      campaign workers (default 0 = all cores)
//   --batch=N        trials per scheduling step (default 0 = auto)
//   --seed=S
//
// The sweep runs through the parallel campaign engine; for a fixed seed
// the tables are bit-identical at any --threads.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "urmem/common/table.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/campaign_runner.hpp"
#include "urmem/sim/quality_experiment.hpp"

namespace {

using namespace urmem;

struct scheme_spec {
  std::string name;
  scheme_factory factory;
};

std::vector<scheme_spec> fig7_schemes() {
  return {
      {"no-correction", [](std::uint32_t) { return make_scheme_none(); }},
      {"H(22,16) P-ECC", [](std::uint32_t) { return make_scheme_pecc(); }},
      {"nFM=1", [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 1); }},
      {"nFM=2", [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 2); }},
  };
}

}  // namespace

int main(int argc, char** argv) {
  const bench::arg_parser args(argc, argv);
  bench::banner("Fig. 7 — CDF of application quality under memory failures",
                "Ganapathy et al., DAC'15, Fig. 7 / Sec. 5.2");

  quality_experiment_config config;
  config.pcell = args.get_double("pcell", 1e-3);
  config.samples_per_count = static_cast<std::uint32_t>(
      args.has("paper-scale") ? 500 : args.get_u64("samples", 10));
  config.seed = args.get_u64("seed", 99);

  // One shared campaign pool for the whole scheme x application grid.
  campaign_runner runner(
      {.threads = static_cast<unsigned>(args.get_u64("threads", 0)),
       .batch_size = args.get_u64("batch", 0),
       .seed = config.seed});

  // Scheduling diagnostics go to stderr: stdout stays byte-identical
  // across --threads values.
  std::cerr << "campaign threads = " << runner.threads() << "\n";
  std::cout << "16KB tiles, Pcell = " << format_scientific(config.pcell, 2)
            << ", Nmax (99% coverage) = " << failure_count_limit(config)
            << ", samples per failure count = " << config.samples_per_count
            << "\n(H(39,32) ECC is the paper's error-free reference: samples "
               "with >1 error per word are discarded there, normalized "
               "metric = 1.0 by construction.)\n\n";

  const auto sweep_start = std::chrono::steady_clock::now();
  for (const auto& app : make_all_applications(args.get_u64("app-seed", 7))) {
    std::cout << "--- " << app->name() << " (" << app->dataset_name()
              << ", metric: " << app->metric_name() << ") ---\n";

    std::vector<quality_result> results;
    for (const auto& spec : fig7_schemes()) {
      std::cerr << "  running " << app->name() << " / " << spec.name << "...\n";
      results.push_back(
          run_quality_experiment(*app, spec.factory, spec.name, config, runner));
    }

    std::cout << "clean (quantized) metric = "
              << format_double(results.front().clean_metric, 4) << "\n\n";

    // The paper's y-axis: CDF over the normalized metric grid.
    std::vector<std::string> headers{"normalized metric <="};
    for (const auto& r : results) headers.push_back(r.scheme_name);
    console_table table(headers);
    for (const double q : linspace(0.0, 1.0, 21)) {
      std::vector<std::string> row{format_double(q, 3)};
      for (const auto& r : results) row.push_back(format_double(r.cdf.at(q), 4));
      table.add_row(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nLow quantiles (quality floor) per scheme:\n";
    console_table quantiles({"scheme", "q01", "q10", "q50"});
    for (const auto& r : results) {
      quantiles.add_row({r.scheme_name, format_double(r.cdf.quantile(0.01), 4),
                         format_double(r.cdf.quantile(0.10), 4),
                         format_double(r.cdf.quantile(0.50), 4)});
    }
    quantiles.print(std::cout);
    std::cout << "\n";
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - sweep_start);
  std::cerr << "sweep wall time: " << elapsed.count() << " ms on "
            << runner.threads() << " thread(s)\n";
  return 0;
}
