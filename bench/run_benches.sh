#!/usr/bin/env bash
# Runs the telemetry-emitting benches at fixed seeds and collects their
# BENCH_<name>.json files in one place, so successive commits produce
# comparable telemetry (the CI perf job runs this script and uploads
# the JSON; running it locally refreshes the checked-in baselines at
# the repo root).
#
# Usage: bench/run_benches.sh [build-dir] [json-dir]
#   build-dir  CMake build tree holding the bench binaries (default: build)
#   json-dir   where BENCH_*.json land (default: the repo root)
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
json_dir=${2:-"$repo_root"}

for bin in micro_memory micro_codec micro_serve fig5_mse_cdf; do
  if [[ ! -x "$build_dir/bench/$bin" ]]; then
    echo "error: $build_dir/bench/$bin not built (cmake --build $build_dir --target $bin)" >&2
    exit 1
  fi
done

mkdir -p "$json_dir"
export URMEM_BENCH_JSON_DIR="$json_dir"
"$build_dir/bench/micro_memory" --pcell=5e-2 --seed=1 --min-time-ms=300
"$build_dir/bench/micro_codec" --seed=1 --min-time-ms=100
"$build_dir/bench/micro_serve" --clients=4 --requests=200000 --seed=1 > /dev/null
"$build_dir/bench/fig5_mse_cdf" --runs=200000 --nmax=60 --threads=2 > /dev/null

echo "bench telemetry in $json_dir:" >&2
ls -1 "$json_dir"/BENCH_*.json >&2
