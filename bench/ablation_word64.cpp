// Ablation: 64-bit data words.
//
// The paper evaluates 32-bit words; wider datapaths change the
// trade-off. A 64-bit word needs either two interleaved H(39,32)
// codewords (78 columns) or a single bit-shuffling rotator with
// nFM up to 6. This ablation compares the quality (Eq. 6 MSE) and the
// hardware overhead of both at the same Pcell.
//
// Flags: --runs=N (default 200000), --seed=S
#include <iostream>

#include "bench_util.hpp"
#include "urmem/common/table.hpp"
#include "urmem/hwmodel/overhead_model.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/yield/mse_distribution.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Ablation — 64-bit data words",
                "DESIGN.md §3 (width generalization; paper future work)");

  mse_cdf_config config;
  config.total_runs = args.get_u64("runs", 200'000);
  config.seed = args.get_u64("seed", 13);
  const double pcell = args.get_double("pcell", 5e-6);
  const std::uint32_t rows = 2048;  // same 16 KB capacity at 64-bit words

  std::cout << "16KB as 2048 x 64, Pcell = " << format_scientific(pcell, 2)
            << " (Eq. 6 with 0 <= b < 64)\n\n";

  console_table table({"scheme", "storage cols", "MSE @ yield 90%",
                       "MSE @ yield 99%"});
  {
    const auto none = make_scheme_none(64);
    const empirical_cdf cdf = compute_mse_cdf(*none, rows, pcell, config);
    table.add_row({"no-correction", "64",
                   format_scientific(mse_for_yield(cdf, 0.90), 3),
                   format_scientific(mse_for_yield(cdf, 0.99), 3)});
  }
  for (const unsigned n_fm : {1u, 2u, 3u, 6u}) {
    const auto scheme = make_scheme_shuffle(rows, 64, n_fm);
    const empirical_cdf cdf = compute_mse_cdf(*scheme, rows, pcell, config);
    table.add_row({"nFM=" + std::to_string(n_fm) + " (W=64)", "64",
                   format_scientific(mse_for_yield(cdf, 0.90), 3),
                   format_scientific(mse_for_yield(cdf, 0.99), 3)});
  }
  {
    // Two independent H(39,32) codewords cover a 64-bit word; model the
    // MSE by protecting a 32-bit half-array of twice the rows (each
    // half-word row maps to one codeword).
    const auto half = make_scheme_secded(32);
    const empirical_cdf cdf = compute_mse_cdf(*half, rows * 2, pcell, config);
    table.add_row({"2 x H(39,32)", "78",
                   format_scientific(mse_for_yield(cdf, 0.90), 3),
                   format_scientific(mse_for_yield(cdf, 0.99), 3)});
  }
  table.print(std::cout);

  std::cout << "\nHardware overhead relative to a single H(39,32) on 32-bit "
               "rows (64-bit datapath doubles the correction logic):\n";
  const overhead_model model32(gate_library::fdsoi_28nm(),
                               sram_macro_model::fdsoi_28nm(),
                               array_geometry{4096, 32});
  const overhead_metrics ecc32 = model32.secded(hamming_secded(32));
  const overhead_model model64(gate_library::fdsoi_28nm(),
                               sram_macro_model::fdsoi_28nm(),
                               array_geometry{rows, 64});
  console_table hw({"scheme", "read power (rel)", "read delay (rel)", "area (rel)"});
  {
    overhead_metrics twin = ecc32;  // two decoders, 14 parity columns on
    twin.read_energy_fj *= 2.0;     // half-height (2048-row) columns
    twin.area_um2 = 2.0 * (ecc32.area_um2 -
                           7.0 * model32.sram().column_area_um2(4096)) +
                    14.0 * model64.sram().column_area_um2(rows);
    const relative_overhead rel = overhead_model::relative(twin, ecc32);
    hw.add_row({"2 x H(39,32), W=64", format_double(rel.read_power, 3),
                format_double(rel.read_delay, 3), format_double(rel.area, 3)});
  }
  for (const unsigned n_fm : {1u, 3u, 6u}) {
    const relative_overhead rel =
        overhead_model::relative(model64.shuffle(n_fm), ecc32);
    hw.add_row({"nFM=" + std::to_string(n_fm) + ", W=64",
                format_double(rel.read_power, 3), format_double(rel.read_delay, 3),
                format_double(rel.area, 3)});
  }
  hw.print(std::cout);

  std::cout << "\nConclusion: the shuffling advantage grows with word width — "
               "the rotator scales as W*nFM muxes while split SECDED doubles "
               "its decoders and parity columns.\n";
  return 0;
}
