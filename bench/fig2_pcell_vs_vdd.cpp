// Fig. 2 reproduction: SRAM cell failure probability under VDD scaling
// in the 28 nm-class cell model, and the traditional zero-failure yield
// Y = (1 - Pcell)^M of a 16 KB array (which collapses at 0.73 V, as the
// paper notes in Sec. 2).
#include <iostream>

#include "bench_util.hpp"
#include "urmem/common/stats.hpp"
#include "urmem/common/table.hpp"
#include "urmem/memory/cell_failure_model.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Fig. 2 — SRAM cell failure probability vs supply voltage",
                "Ganapathy et al., DAC'15, Fig. 2 / Sec. 2");

  const auto model = cell_failure_model::default_28nm(args.get_u64("seed", 1));
  const std::uint64_t cells = geometry_16kb_x32().cells();

  console_table table({"VDD [V]", "Pcell", "16KB zero-failure yield",
                       "E[failures] per 16KB"});
  for (const double vdd : linspace(0.50, 1.10, 25)) {
    const double pcell = model.pcell(vdd);
    table.add_row({format_double(vdd, 3), format_scientific(pcell, 3),
                   format_scientific(cell_failure_model::array_yield(cells, pcell), 3),
                   format_double(pcell * static_cast<double>(cells), 3)});
  }
  table.print(std::cout);

  std::cout << "\nCalibration anchors (DESIGN.md §4):\n";
  console_table anchors({"condition", "paper", "measured"});
  anchors.add_row({"Pcell @ 1.00 V", "~1e-9 (negligible)",
                   format_scientific(model.pcell(1.00), 3)});
  anchors.add_row({"Pcell @ 0.73 V", "~1e-4 (16KB yield -> 0)",
                   format_scientific(model.pcell(0.73), 3)});
  anchors.add_row({"16KB yield @ 0.73 V", "approaches zero",
                   format_scientific(
                       cell_failure_model::array_yield(cells, model.pcell(0.73)), 3)});
  anchors.print(std::cout);

  std::cout << "\nOperating points used by the paper's experiments:\n";
  console_table points({"experiment", "Pcell", "implied VDD [V]"});
  points.add_row({"Fig. 5 (MSE CDF)", "5e-6",
                  format_double(model.vdd_for_pcell(5e-6), 4)});
  points.add_row({"Fig. 7 (app quality)", "1e-3",
                  format_double(model.vdd_for_pcell(1e-3), 4)});
  points.print(std::cout);
  return 0;
}
