// micro_serve — serving-tier throughput and tail latency.
//
// Builds a memory_service from override-style defaults (two tiles, live
// fault lifecycle, background scrub) and drives it with the closed-loop
// concurrent client pool, reporting requests/sec and p50/p99/p99.9
// service latency. Emits BENCH_serve.json; the deterministic counter
// totals ride along so telemetry diffs catch behavioral drift, not just
// perf drift.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/serve/memory_service.hpp"
#include "urmem/serve/service_driver.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  bench::arg_parser args(argc, argv);

  const std::uint64_t rows = args.get_u64("rows", 4096);
  const std::uint64_t requests = args.get_u64("requests", 200000);
  const std::uint64_t per_epoch = args.get_u64("requests-per-epoch", 20000);
  const std::uint64_t clients = args.get_u64("clients", 4);
  const std::uint64_t seed = args.get_u64("seed", 1);

  bench::banner("micro_serve: concurrent serving tier, live fault lifecycle",
                "serving-mode subsystem (urmem-serve)");

  json_value doc = json_value::make_object();
  doc.set_path("geometry.rows_per_tile", json_value(rows));
  doc.set_path("schemes", [] {
    json_value schemes = json_value::make_array();
    schemes.push_back(json_value("none"));
    schemes.push_back(json_value("pecc"));
    return schemes;
  }());
  doc.set_path("serve.requests", json_value(requests));
  doc.set_path("serve.requests_per_epoch", json_value(per_epoch));
  doc.set_path("serve.clients", json_value(clients));
  doc.set_path("serve.initial_faults", json_value(std::uint64_t{64}));
  doc.set_path("serve.arrivals_per_epoch", json_value(std::uint64_t{8}));
  doc.set_path("scrub.interval", json_value(std::uint64_t{1}));
  doc.set_path("seeds.root", json_value(seed));
  const scenario_spec spec = scenario_spec::from_json(doc);

  memory_service service(spec);
  const driver_config config = driver_config_from(spec);
  const drive_report report = drive(service, config);

  std::cout << "clients " << clients << ", requests " << report.executed
            << ", epochs " << report.counters.epoch_steps << "\n"
            << "throughput " << report.requests_per_second << " req/s\n"
            << "latency p50/p99/p99.9 " << report.latency.quantile(0.5) << "/"
            << report.latency.quantile(0.99) << "/"
            << report.latency.quantile(0.999) << " ns\n";

  bench::json_object payload = bench::bench_envelope("serve");
  payload.add("rows", rows)
      .add("clients", clients)
      .add("requests", report.executed)
      .add("epoch_steps", report.counters.epoch_steps)
      .add("requests_per_second", report.requests_per_second)
      .add("wall_seconds", report.wall_seconds)
      .add("p50_ns", report.latency.quantile(0.5))
      .add("p99_ns", report.latency.quantile(0.99))
      .add("p999_ns", report.latency.quantile(0.999))
      .add("max_ns", report.latency.max())
      .add("stores", report.counters.stores)
      .add("readbacks", report.counters.readbacks)
      .add("quality_queries", report.counters.quality_queries);
  bench::write_bench_json("serve", payload);
  return 0;
}
