// Table 1 reproduction: the evaluation applications, their (synthetic
// stand-in) datasets, and quality metrics — plus the fault-free metric
// value each pipeline achieves through the quantized storage path.
//
// The clean/quantized retraining runs (2 per application) are sharded
// over the campaign engine: --threads=N (default 0 = all cores).
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "urmem/common/table.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/campaign_runner.hpp"
#include "urmem/sim/quantizer.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Table 1 — evaluation applications and datasets",
                "Ganapathy et al., DAC'15, Table 1 / Sec. 5.2");

  const char* classes[] = {"Regression", "Dimensionality Reduction",
                           "Classification"};
  const char* paper_datasets[] = {"Wine Quality [18]", "Madelon [19]",
                                  "Activity Recognition [20]"};

  console_table table({"Class", "Algorithm", "Paper dataset",
                       "Substitute dataset", "Metric", "train rows x features",
                       "clean metric", "quantized metric"});
  const matrix_quantizer quantizer;
  const auto apps = make_all_applications(args.get_u64("seed", 7));

  // Trial 2i evaluates application i on its clean features, trial 2i+1
  // on the quantized round trip; no randomness is consumed.
  campaign_runner runner(
      {.threads = static_cast<unsigned>(args.get_u64("threads", 0)),
       .seed = args.get_u64("seed", 7)});
  const std::vector<double> metrics =
      runner.map<double>(2 * apps.size(), [&](std::uint64_t trial, rng&) {
        const auto& app = apps[trial / 2];
        const matrix& train = app->train_features();
        return app->evaluate(trial % 2 == 0 ? train
                                            : quantizer.roundtrip(train));
      });

  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& app = apps[i];
    const matrix& train = app->train_features();
    const double clean = metrics[2 * i];
    const double quantized = metrics[2 * i + 1];
    table.add_row({classes[i], app->name(), paper_datasets[i],
                   app->dataset_name(), app->metric_name(),
                   std::to_string(train.rows()) + " x " +
                       std::to_string(train.cols()),
                   format_double(clean, 4), format_double(quantized, 4)});
  }
  table.print(std::cout);

  std::cout << "\nStorage footprint (Q15.16 words in 16 KB tiles of 4096 words):\n";
  console_table footprint({"application", "words", "16KB tiles"});
  for (const auto& app : apps) {
    const std::size_t words =
        app->train_features().rows() * app->train_features().cols();
    footprint.add_row({app->name(), std::to_string(words),
                       std::to_string((words + 4095) / 4096)});
  }
  footprint.print(std::cout);
  return 0;
}
