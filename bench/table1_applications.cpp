// Table 1 reproduction: the evaluation applications, their (synthetic
// stand-in) datasets, and quality metrics — plus the fault-free metric
// value each pipeline achieves through the quantized storage path.
//
// Thin wrapper over the declarative scenario API (`table1-apps`
// workload); stdout is byte-identical to the pre-API hand-wired binary
// at fixed seeds. The clean/quantized retraining runs (2 per
// application) are sharded over the campaign engine: --threads=N
// (default 0 = all cores).
#include <iostream>

#include "bench_util.hpp"
#include "urmem/scenario/scenario_runner.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Table 1 — evaluation applications and datasets",
                "Ganapathy et al., DAC'15, Table 1 / Sec. 5.2");

  scenario_spec spec;
  spec.name = "table1-applications";
  // The legacy binary seeded dataset synthesis and the campaign pool
  // from the same --seed flag; keep that behaviour.
  spec.seeds.root = args.get_u64("seed", 7);
  spec.seeds.app = args.get_u64("seed", 7);
  spec.run.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  spec.workload.name = "table1-apps";
  spec.workload.options = option_map("workload");

  const scenario_runner runner(spec);
  (void)runner.run(std::cout);
  return 0;
}
