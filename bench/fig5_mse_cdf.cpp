// Fig. 5 reproduction: CDF of the memory MSE (Eq. 6) for a 16 KB array
// at Pcell = 5e-6, comparing no protection, bit-shuffling with
// nFM = 1..5, and the H(22,16) P-ECC — the stratified Monte-Carlo sweep
// of Sec. 4 with samples per failure count = Pr(N = n) * Trun.
//
// Thin wrapper over the declarative scenario API: the flags below just
// assemble a scenario_spec for the `fig5-mse` workload (stdout is
// byte-identical to the pre-API hand-wired binary at fixed seeds), so
// `urmem-run workload=fig5-mse schemes=none,shuffle:nfm=1,...,pecc
// pcell=5e-6` reproduces this bench exactly.
//
// Flags:
//   --runs=N    total Monte-Carlo runs Trun   (default 1e7, the paper value)
//   --pcell=P   cell failure probability      (default 5e-6)
//   --nmax=N    largest failure-count stratum (default 150)
//   --threads=N campaign workers              (default 0 = all cores)
//   --batch=N   trials per scheduling step    (default 0 = auto)
//   --analytic  closed-form convolution mixture instead of Monte Carlo
//               (milliseconds instead of seconds; see yield/analytic.hpp)
//   --seed=S
//
// The Monte-Carlo path shards the stratified sweep over the parallel
// campaign engine; for a fixed seed the CDFs are bit-identical at any
// --threads.
#include <chrono>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "urmem/scenario/scenario_runner.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Fig. 5 — CDF of memory MSE under fault injection",
                "Ganapathy et al., DAC'15, Fig. 5 / Sec. 4");

  scenario_spec spec;
  spec.name = "fig5-mse-cdf";
  spec.fault.pcell = args.get_double("pcell", 5e-6);
  spec.seeds.root = args.get_u64("seed", 42);
  spec.run.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  spec.run.batch = args.get_u64("batch", 0);

  // The paper's Fig. 5 comparison set, by registry name.
  spec.schemes.push_back({"none", option_map("schemes[0]")});
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    scheme_ref shuffle{"shuffle",
                       option_map("schemes[" + std::to_string(n_fm) + "]")};
    shuffle.options.set("nfm", std::to_string(n_fm));
    spec.schemes.push_back(std::move(shuffle));
  }
  spec.schemes.push_back({"pecc", option_map("schemes[6]")});

  const std::uint64_t runs = args.get_u64("runs", 10'000'000);
  const std::uint64_t nmax = args.get_u64("nmax", 150);
  spec.workload.name = "fig5-mse";
  spec.workload.options = option_map("workload");
  spec.workload.options.set("runs", std::to_string(runs));
  spec.workload.options.set("nmax", std::to_string(nmax));
  const bool analytic = args.has("analytic");
  if (analytic) spec.workload.options.set("analytic", "true");

  const scenario_runner runner(spec);
  const auto sweep_start = std::chrono::steady_clock::now();
  const scenario_report report = runner.run(std::cout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - sweep_start);
  std::cerr << "  sweep wall time: " << elapsed.count() << " ms\n";

  // Machine-readable telemetry (file + stderr note only: stdout must stay
  // byte-identical across --threads and fault-path choices).
  {
    const double wall_ms = static_cast<double>(elapsed.count());
    bench::json_object payload = bench::bench_envelope("fig5_mse_cdf");
    bench::json_object jconfig;
    jconfig.add("runs", runs)
        .add("n_max", nmax)
        .add("pcell", spec.fault.pcell.value())
        .add("seed", spec.seeds.root)
        .add("rows", std::uint64_t{spec.geometry.rows_per_tile})
        .add("schemes", static_cast<std::uint64_t>(spec.schemes.size()))
        // Ground truth from the campaign layer (0 on the analytic path,
        // which never spawns a pool — same semantics as the legacy
        // binary's reporting).
        .add("threads", std::uint64_t{report.campaign_threads})
        .add("analytic", analytic);
    payload.add_raw("config", jconfig.str());
    payload.add("wall_ms", wall_ms);
    payload.add("trials", report.total_trials);
    payload.add("trials_per_sec",
                wall_ms > 0.0
                    ? static_cast<double>(report.total_trials) / wall_ms * 1e3
                    : 0.0);
    bench::write_bench_json("fig5_mse_cdf", payload);
  }
  return 0;
}
