// Fig. 5 reproduction: CDF of the memory MSE (Eq. 6) for a 16 KB array
// at Pcell = 5e-6, comparing no protection, bit-shuffling with
// nFM = 1..5, and the H(22,16) P-ECC — the stratified Monte-Carlo sweep
// of Sec. 4 with samples per failure count = Pr(N = n) * Trun.
//
// Flags:
//   --runs=N    total Monte-Carlo runs Trun   (default 1e7, the paper value)
//   --pcell=P   cell failure probability      (default 5e-6)
//   --nmax=N    largest failure-count stratum (default 150)
//   --threads=N campaign workers              (default 0 = all cores)
//   --batch=N   trials per scheduling step    (default 0 = auto)
//   --analytic  closed-form convolution mixture instead of Monte Carlo
//               (milliseconds instead of seconds; see yield/analytic.hpp)
//   --seed=S
//
// The Monte-Carlo path shards the stratified sweep over the parallel
// campaign engine; for a fixed seed the CDFs are bit-identical at any
// --threads.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "urmem/common/binomial.hpp"
#include "urmem/common/table.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/sim/campaign_runner.hpp"
#include "urmem/yield/analytic.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace {

// Stratified Fig. 5 sweep of one scheme as a fault-injection campaign:
// trial i belongs to the stratum covering i in the flattened per-stratum
// sample allocation, and every trial draws its own fault map on its own
// deterministic stream.
urmem::empirical_cdf campaign_mse_cdf(urmem::campaign_runner& runner,
                                      const urmem::protection_scheme& scheme,
                                      std::uint32_t rows, double pcell,
                                      const urmem::mse_cdf_config& config) {
  using namespace urmem;
  const array_geometry geometry{rows, scheme.storage_bits()};
  std::vector<mse_stratum> strata = mse_strata(geometry, pcell, config);
  if (config.include_fault_free) {
    // Same Pr(N = 0) mass at MSE 0 that compute_mse_cdf prepends; an
    // n = 0 trial draws no cells and costs 0 without touching its rng.
    const binomial_distribution dist(geometry.cells(), pcell);
    strata.insert(strata.begin(), {0, 1, dist.pmf(0)});
  }

  std::vector<std::uint64_t> starts;  // first trial index of each stratum
  starts.reserve(strata.size());
  std::uint64_t trials = 0;
  for (const mse_stratum& s : strata) {
    starts.push_back(trials);
    trials += s.count;
  }

  return runner.map_weighted(
      trials, [&](std::uint64_t trial, rng& gen) -> weighted_sample {
        const auto it = std::upper_bound(starts.begin(), starts.end(), trial);
        const mse_stratum& s = strata[static_cast<std::size_t>(
            std::distance(starts.begin(), it) - 1)];
        return {sample_mse(scheme, geometry, s.n, gen), s.weight_each};
      });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Fig. 5 — CDF of memory MSE under fault injection",
                "Ganapathy et al., DAC'15, Fig. 5 / Sec. 4");

  mse_cdf_config config;
  config.total_runs = args.get_u64("runs", 10'000'000);
  config.n_max = args.get_u64("nmax", 150);
  config.seed = args.get_u64("seed", 42);
  const double pcell = args.get_double("pcell", 5e-6);
  const std::uint32_t rows = 4096;

  std::cout << "16KB memory (4096 x 32), Pcell = " << format_scientific(pcell, 2)
            << ", Trun = " << config.total_runs
            << ", failure counts 1.." << config.n_max
            << " (CDF conditional on N >= 1, per Eq. 5)\n\n";

  std::vector<std::unique_ptr<protection_scheme>> schemes;
  schemes.push_back(make_scheme_none());
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    schemes.push_back(make_scheme_shuffle(rows, 32, n_fm));
  }
  schemes.push_back(make_scheme_pecc());

  const bool analytic = args.has("analytic");
  std::optional<campaign_runner> runner;
  if (!analytic) {
    runner.emplace(campaign_config{
        .threads = static_cast<unsigned>(args.get_u64("threads", 0)),
        .batch_size = args.get_u64("batch", 0),
        .seed = config.seed});
    // Scheduling diagnostics go to stderr: stdout stays byte-identical
    // across --threads values.
    std::cerr << "campaign threads = " << runner->threads() << "\n";
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  std::uint64_t total_trials = 0;
  std::vector<empirical_cdf> cdfs;
  for (const auto& scheme : schemes) {
    if (analytic) {
      std::cerr << "  convolving " << scheme->name() << "...\n";
      analytic_cdf_config acfg;
      acfg.n_max = std::min<std::uint64_t>(config.n_max, 40);
      cdfs.push_back(analytic_mse_cdf(*scheme, rows, pcell, acfg));
    } else {
      std::cerr << "  sampling " << scheme->name() << "...\n";
      cdfs.push_back(campaign_mse_cdf(*runner, *scheme, rows, pcell, config));
      const campaign_stats stats = runner->last_stats();
      total_trials += stats.trials;
      std::cerr << "    " << stats.trials << " trials in " << stats.batches
                << " batches (" << stats.steals << " steals)\n";
    }
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - sweep_start);
  std::cerr << "  sweep wall time: " << elapsed.count() << " ms\n";

  // Machine-readable telemetry (file + stderr note only: stdout must stay
  // byte-identical across --threads and fault-path choices).
  {
    const double wall_ms = static_cast<double>(elapsed.count());
    bench::json_object payload = bench::bench_envelope("fig5_mse_cdf");
    bench::json_object jconfig;
    jconfig.add("runs", config.total_runs)
        .add("n_max", config.n_max)
        .add("pcell", pcell)
        .add("seed", config.seed)
        .add("rows", std::uint64_t{rows})
        .add("schemes", static_cast<std::uint64_t>(schemes.size()))
        .add("threads",
             analytic ? std::uint64_t{0} : std::uint64_t{runner->threads()})
        .add("analytic", analytic);
    payload.add_raw("config", jconfig.str());
    payload.add("wall_ms", wall_ms);
    payload.add("trials", total_trials);
    payload.add("trials_per_sec",
                wall_ms > 0.0 ? static_cast<double>(total_trials) / wall_ms * 1e3
                              : 0.0);
    bench::write_bench_json("fig5_mse_cdf", payload);
  }

  // The paper's x-axis: MSE from 1e-4 to 1e8.
  std::vector<std::string> headers{"MSE <="};
  for (const auto& scheme : schemes) headers.push_back(scheme->name());
  console_table table(headers);
  for (const double mse : logspace(1e-4, 1e8, 25)) {
    std::vector<std::string> row{format_scientific(mse, 1)};
    for (const auto& cdf : cdfs) row.push_back(format_double(cdf.at(mse), 4));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nMSE budget required per yield target (quantiles):\n";
  console_table quantiles({"scheme", "yield 50%", "yield 90%", "yield 99%",
                           "yield 99.99%"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    quantiles.add_row({schemes[i]->name(),
                       format_scientific(mse_for_yield(cdfs[i], 0.50), 2),
                       format_scientific(mse_for_yield(cdfs[i], 0.90), 2),
                       format_scientific(mse_for_yield(cdfs[i], 0.99), 2),
                       format_scientific(mse_for_yield(cdfs[i], 0.9999), 2)});
  }
  quantiles.print(std::cout);

  std::cout << "\nPaper headline checks:\n";
  console_table claims({"claim", "paper", "measured"});
  const double reduction =
      mse_for_yield(cdfs[0], 0.99) / mse_for_yield(cdfs[1], 0.99);
  claims.add_row({"MSE reduction @ matched yield, nFM=1 vs none", ">= 30x",
                  format_double(reduction, 3) + "x"});
  claims.add_row({"yield @ MSE < 1e6, nFM=1", "99.9999%",
                  format_percent(yield_at_mse(cdfs[1], 1e6), 4)});
  claims.add_row({"yield @ MSE < 1e6, no correction", "<6%  (see EXPERIMENTS.md)",
                  format_percent(yield_at_mse(cdfs[0], 1e6), 1)});
  claims.add_row({"nFM=2..5 beat P-ECC @ yield 99%",
                  "yes",
                  mse_for_yield(cdfs[2], 0.99) < mse_for_yield(cdfs[6], 0.99)
                      ? "yes"
                      : "no"});
  claims.print(std::cout);
  return 0;
}
