// Micro-benchmarks of the protection codecs — the software cost of each
// scheme's encode/decode path, which dominates the Monte-Carlo
// experiment runtimes. Emits BENCH_micro_codec.json (see README "Bench
// telemetry") so CI can track codec throughput across commits.
//
// Flags:
//   --seed=S         data stream seed              (default 1)
//   --min-time-ms=T  min wall time per timed bench (default 200)
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/ecc/hamming_secded.hpp"
#include "urmem/ecc/priority_ecc.hpp"
#include "urmem/shuffle/bit_shuffler.hpp"

namespace {

using namespace urmem;

constexpr std::uint64_t kOpsPerRep = 1 << 14;

}  // namespace

int main(int argc, char** argv) {
  const bench::arg_parser args(argc, argv);
  bench::banner("micro_codec — protection codec throughput",
                "encode/decode cost behind the Fig. 5 / Fig. 7 campaigns");

  const std::uint64_t seed = args.get_u64("seed", 1);
  const double min_ms = args.get_double("min-time-ms", 200.0);
  std::vector<bench::micro_result> results;

  for (const unsigned data_bits : {16u, 32u, 57u}) {
    const hamming_secded code(data_bits);
    word_t data = rng(seed)() & word_mask(code.data_bits());
    results.push_back(bench::run_micro(
        "secded" + std::to_string(data_bits) + " encode", kOpsPerRep,
        [&] {
          word_t sum = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += code.encode(data);
            data = (data * 0x9e3779b97f4a7c15ULL + 1) & word_mask(code.data_bits());
          }
          bench::keep(sum);
        },
        min_ms));
  }

  {
    const hamming_secded code(32);
    const word_t cw = code.encode(rng(seed + 1)() & word_mask(32));
    results.push_back(bench::run_micro(
        "secded32 decode clean", kOpsPerRep,
        [&] {
          word_t sum = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += code.decode(cw).data;
          }
          bench::keep(sum);
        },
        min_ms));
    results.push_back(bench::run_micro(
        "secded32 decode correcting", kOpsPerRep,
        [&] {
          word_t sum = 0;
          unsigned pos = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += code.decode(flip_bit(cw, pos)).data;
            pos = (pos + 1) % code.codeword_bits();
          }
          bench::keep(sum);
        },
        min_ms));
  }

  {
    const priority_ecc codec;
    word_t data = rng(seed + 2)() & word_mask(32);
    results.push_back(bench::run_micro(
        "pecc roundtrip", kOpsPerRep,
        [&] {
          word_t sum = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += codec.decode(codec.encode(data)).data;
            data = (data * 0x9e3779b97f4a7c15ULL + 1) & word_mask(32);
          }
          bench::keep(sum);
        },
        min_ms));
  }

  for (const unsigned n_fm : {1u, 3u, 5u}) {
    const bit_shuffler shuffler(32, n_fm);
    word_t data = rng(seed + 3)() & word_mask(32);
    results.push_back(bench::run_micro(
        "shuffle nFM=" + std::to_string(n_fm) + " roundtrip", kOpsPerRep,
        [&] {
          word_t sum = 0;
          unsigned xfm = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += shuffler.restore(shuffler.apply(data, xfm), xfm);
            xfm = (xfm + 1) % shuffler.segment_count();
            data = (data * 0x9e3779b97f4a7c15ULL + 1) & word_mask(32);
          }
          bench::keep(sum);
        },
        min_ms));
  }

  bench::print_micro_table(results);

  bench::json_object payload = bench::bench_envelope("micro_codec");
  bench::json_object config;
  config.add("seed", seed).add("min_time_ms", min_ms).add("ops_per_rep",
                                                          kOpsPerRep);
  payload.add_raw("config", config.str());
  std::vector<std::string> entries;
  entries.reserve(results.size());
  for (const auto& r : results) entries.push_back(bench::micro_json(r));
  payload.add_raw("results", bench::json_array(entries));
  bench::write_bench_json("micro_codec", payload);
  return 0;
}
