// Micro-benchmarks of the protection codecs — the software cost of each
// scheme's encode/decode path, which dominates the Monte-Carlo
// experiment runtimes once the fault planes are compiled (PR 2).
//
// Before timing anything the bench proves the compiled codec layer
// correct (exits nonzero on any mismatch):
//   1. hamming_secded LUT encode/decode == the per-bit reference walk
//      (exhaustive data for narrow widths, randomized for wide; all
//      single- and double-bit error patterns for decode);
//   2. block encode/decode == the per-word scalar path, bit-identical
//      in data AND decode statuses, for every scheme type (none,
//      SECDED, P-ECC, bit-shuffling) across tile sizes including 1,
//      a non-multiple-of-tile remainder, and the full array.
// Then it times the W=32 SECDED tile paths and reports
// speedup_{encode,decode}_block_vs_scalar — block-codec tile loop vs
// the pre-compilation per-word virtual reference path — which the CI
// perf job gates at >= 3x. Emits BENCH_micro_codec.json (see README
// "Bench telemetry").
//
// Flags:
//   --seed=S         data stream seed              (default 1)
//   --rows=N         tile rows for the block paths (default 4096)
//   --min-time-ms=T  min wall time per timed bench (default 200)
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "urmem/common/contracts.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/ecc/bch.hpp"
#include "urmem/ecc/hamming_secded.hpp"
#include "urmem/ecc/hsiao.hpp"
#include "urmem/ecc/priority_ecc.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/shuffle/bit_shuffler.hpp"

namespace {

using namespace urmem;

constexpr std::uint64_t kOpsPerRep = 1 << 14;

std::vector<word_t> random_words(std::uint64_t seed, std::size_t count,
                                 unsigned width) {
  rng gen(seed);
  std::vector<word_t> out(count);
  for (auto& w : out) w = gen() & word_mask(width);
  return out;
}

// LUT-compiled codec == per-bit reference, over data words and
// corrupted codewords (clean, every single flip, every double flip).
// hamming_secded, hsiao_code and bch_code share this surface, so one
// template verifies all three families.
template <class Code>
bool verify_codec_lut(const char* label, const Code& code,
                      std::uint64_t wide_samples, std::uint64_t seed) {
  const unsigned data_bits = code.data_bits();
  const bool exhaustive = data_bits <= 16;
  const std::uint64_t samples =
      exhaustive ? (word_t{1} << data_bits) : wide_samples;
  rng gen(seed);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const word_t data =
        exhaustive ? i : (gen() & word_mask(data_bits));
    const word_t cw = code.encode(data);
    if (cw != code.encode_reference(data)) {
      std::cerr << "LUT/REFERENCE ENCODE MISMATCH " << label
                << " d=" << data_bits << " data=" << data << "\n";
      return false;
    }
    if (code.extract_data(cw) != data) {
      std::cerr << "EXTRACT MISMATCH " << label << " d=" << data_bits
                << " data=" << data << "\n";
      return false;
    }
    // Full error-pattern sweep on a thinned subset (every word for the
    // byte-wide code, every 64th sample otherwise) keeps the sweep
    // O(n^2) only where it is cheap.
    const bool sweep = exhaustive ? (data_bits <= 8 || i % 64 == 0)
                                  : i % 256 == 0;
    const unsigned n = code.codeword_bits();
    for (unsigned a = 0; sweep && a < n; ++a) {
      const word_t one = flip_bit(cw, a);
      const ecc_decode_result fast1 = code.decode(one);
      const ecc_decode_result ref1 = code.decode_reference(one);
      if (fast1.data != ref1.data || fast1.status != ref1.status) {
        std::cerr << "DECODE MISMATCH (1-bit) " << label
                  << " d=" << data_bits << " data=" << data << " a=" << a
                  << "\n";
        return false;
      }
      for (unsigned b = a + 1; b < n; ++b) {
        const word_t two = flip_bit(one, b);
        const ecc_decode_result fast2 = code.decode(two);
        const ecc_decode_result ref2 = code.decode_reference(two);
        if (fast2.data != ref2.data || fast2.status != ref2.status) {
          std::cerr << "DECODE MISMATCH (2-bit) " << label
                    << " d=" << data_bits << " data=" << data << " a=" << a
                    << " b=" << b << "\n";
          return false;
        }
      }
    }
    // Arbitrary (multi-bit) corruption: the two decoders must still
    // agree word for word.
    const word_t garbage = gen() & word_mask(n);
    const ecc_decode_result fast = code.decode(garbage);
    const ecc_decode_result ref = code.decode_reference(garbage);
    if (fast.data != ref.data || fast.status != ref.status) {
      std::cerr << "DECODE MISMATCH (garbage) " << label
                << " d=" << data_bits << "\n";
      return false;
    }
  }
  return true;
}

// Block path == per-word scalar path (data and statuses) for one scheme
// instance across the required tile sizes.
bool verify_block_equals_scalar(protection_scheme& scheme, std::uint32_t rows,
                                std::uint64_t seed) {
  // Configure from a random fault map over the storage geometry, the
  // way BIST would — exercises the shuffle LUT's nonzero entries.
  rng gen(seed);
  const array_geometry geometry{rows, scheme.storage_bits()};
  scheme.configure(sample_fault_map_exact(geometry, rows / 8 + 1, gen));

  const std::vector<word_t> data =
      random_words(seed + 1, rows, scheme.data_bits());
  const std::vector<std::size_t> tiles = {1, 7, rows / 2 + 3, rows};
  for (const std::size_t tile : tiles) {
    std::uint32_t first = 0;
    while (first < rows) {
      const std::size_t count = std::min<std::size_t>(tile, rows - first);
      const std::span<const word_t> in(data.data() + first, count);
      std::vector<word_t> block(count);
      scheme.encode_block(first, in, block);
      std::vector<word_t> stored(count);
      block_decode_stats scalar_stats;
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t row = first + static_cast<std::uint32_t>(i);
        stored[i] = scheme.encode(row, in[i]);
        if (block[i] != stored[i] ||
            stored[i] != scheme.encode_reference(row, in[i])) {
          std::cerr << "BLOCK/SCALAR ENCODE MISMATCH scheme="
                    << scheme.name() << " row=" << row << "\n";
          return false;
        }
        // Corrupt some words so decode exercises all status paths.
        if (i % 3 == 0) stored[i] = flip_bit(stored[i], row % scheme.storage_bits());
        if (i % 7 == 0) stored[i] = flip_bit(stored[i], (row + 5) % scheme.storage_bits());
        const read_result r = scheme.decode(row, stored[i]);
        const read_result ref = scheme.decode_reference(row, stored[i]);
        if (r.data != ref.data || r.status != ref.status) {
          std::cerr << "SCALAR/REFERENCE DECODE MISMATCH scheme="
                    << scheme.name() << " row=" << row << "\n";
          return false;
        }
        scalar_stats.count(r.status);
      }
      std::vector<word_t> decoded(count);
      const block_decode_stats stats =
          scheme.decode_block(first, stored, decoded);
      if (stats.corrected != scalar_stats.corrected ||
          stats.uncorrectable != scalar_stats.uncorrectable) {
        std::cerr << "BLOCK/SCALAR DECODE STATS MISMATCH scheme="
                  << scheme.name() << " first=" << first << "\n";
        return false;
      }
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t row = first + static_cast<std::uint32_t>(i);
        if (decoded[i] != scheme.decode(row, stored[i]).data) {
          std::cerr << "BLOCK/SCALAR DECODE MISMATCH scheme="
                    << scheme.name() << " row=" << row << "\n";
          return false;
        }
      }
      first += static_cast<std::uint32_t>(count);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::arg_parser args(argc, argv);
  bench::banner("micro_codec — protection codec throughput",
                "encode/decode cost behind the Fig. 5 / Fig. 7 campaigns");

  const std::uint64_t seed = args.get_u64("seed", 1);
  const auto rows = static_cast<std::uint32_t>(args.get_u64("rows", 4096));
  const double min_ms = args.get_double("min-time-ms", 200.0);
  expects(rows >= 1, "--rows must be at least 1");

  // ---------------------------------------------------- self-verification
  for (const unsigned data_bits : {8u, 16u, 32u, 57u}) {
    if (!verify_codec_lut("secded", hamming_secded(data_bits), 20000,
                          seed + data_bits)) {
      return 1;
    }
    if (!verify_codec_lut("hsiao", hsiao_code(data_bits), 20000,
                          seed + data_bits + 1)) {
      return 1;
    }
  }
  // BCH reference decode is a brute-force pattern search, so the wide
  // code gets a reduced sample budget.
  for (const unsigned t : {1u, 2u}) {
    if (!verify_codec_lut("bch", bch_code(8, t), 0, seed + t)) return 1;
    if (!verify_codec_lut("bch", bch_code(32, t), 4000, seed + 10 + t)) {
      return 1;
    }
  }
  {
    const std::uint32_t verify_rows = 512;
    none_scheme none(32);
    secded_scheme secded(32);
    hsiao_scheme hsiao(32);
    bch_scheme bch1(32, 1);
    bch_scheme bch2(32, 2);
    pecc_scheme pecc(32, 16);
    shuffle_protection shuffle(verify_rows, 32, 3);
    protection_scheme* schemes[] = {&none,  &secded, &hsiao, &bch1,
                                    &bch2,  &pecc,   &shuffle};
    for (protection_scheme* scheme : schemes) {
      if (!verify_block_equals_scalar(*scheme, verify_rows, seed + 77)) {
        return 1;
      }
    }
  }
  std::cout << "compiled codecs bit-identical to the per-bit reference, "
               "block == scalar across all schemes: ok\n\n";

  std::vector<bench::micro_result> results;

  // ------------------------------------------- scalar codec micro timing
  for (const unsigned data_bits : {16u, 32u, 57u}) {
    const hamming_secded code(data_bits);
    word_t data = rng(seed)() & word_mask(code.data_bits());
    results.push_back(bench::run_micro(
        "secded" + std::to_string(data_bits) + " encode", kOpsPerRep,
        [&] {
          word_t sum = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += code.encode(data);
            data = (data * 0x9e3779b97f4a7c15ULL + 1) & word_mask(code.data_bits());
          }
          bench::keep(sum);
        },
        min_ms));
  }

  {
    const hamming_secded code(32);
    const word_t cw = code.encode(rng(seed + 1)() & word_mask(32));
    results.push_back(bench::run_micro(
        "secded32 decode clean", kOpsPerRep,
        [&] {
          word_t sum = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += code.decode(cw).data;
          }
          bench::keep(sum);
        },
        min_ms));
    results.push_back(bench::run_micro(
        "secded32 decode correcting", kOpsPerRep,
        [&] {
          word_t sum = 0;
          unsigned pos = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += code.decode(flip_bit(cw, pos)).data;
            pos = (pos + 1) % code.codeword_bits();
          }
          bench::keep(sum);
        },
        min_ms));
  }

  {
    const priority_ecc codec;
    word_t data = rng(seed + 2)() & word_mask(32);
    results.push_back(bench::run_micro(
        "pecc roundtrip", kOpsPerRep,
        [&] {
          word_t sum = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += codec.decode(codec.encode(data)).data;
            data = (data * 0x9e3779b97f4a7c15ULL + 1) & word_mask(32);
          }
          bench::keep(sum);
        },
        min_ms));
  }

  for (const unsigned n_fm : {1u, 3u, 5u}) {
    const bit_shuffler shuffler(32, n_fm);
    word_t data = rng(seed + 3)() & word_mask(32);
    results.push_back(bench::run_micro(
        "shuffle nFM=" + std::to_string(n_fm) + " roundtrip", kOpsPerRep,
        [&] {
          word_t sum = 0;
          unsigned xfm = 0;
          for (std::uint64_t i = 0; i < kOpsPerRep; ++i) {
            sum += shuffler.restore(shuffler.apply(data, xfm), xfm);
            xfm = (xfm + 1) % shuffler.segment_count();
            data = (data * 0x9e3779b97f4a7c15ULL + 1) & word_mask(32);
          }
          bench::keep(sum);
        },
        min_ms));
  }

  // ---------------------- tile paths: block codec vs per-word scalar path
  // The gated comparisons. "scalar" is the pre-compilation per-word
  // virtual reference walk (what write_block/read_block did before the
  // block codec layer); "block" is one encode_block/decode_block call
  // over the whole tile. SECDED, Hsiao and BCH t=2 are gated.
  struct tile_speedups {
    double encode = 0.0;
    double decode = 0.0;
  };
  const auto time_tile_paths = [&](const std::string& label,
                                   const protection_scheme& tile_vscheme) {
    const std::vector<word_t> tile_data = random_words(seed + 4, rows, 32);
    std::vector<word_t> tile_stored(rows);
    tile_vscheme.encode_block(0, tile_data, tile_stored);
    // Sprinkle correctable errors so decode timing covers the
    // correction path at a realistic (sparse) rate.
    for (std::uint32_t row = 0; row < rows; row += 37) {
      tile_stored[row] =
          flip_bit(tile_stored[row], row % tile_vscheme.storage_bits());
    }
    std::vector<word_t> tile_out(rows);

    results.push_back(bench::run_micro(
        label + " encode scalar/word", rows,
        [&] {
          for (std::uint32_t row = 0; row < rows; ++row) {
            tile_out[row] = tile_vscheme.encode_reference(row, tile_data[row]);
          }
          bench::keep(tile_out[rows - 1]);
        },
        min_ms));
    const std::size_t encode_scalar_index = results.size() - 1;
    results.push_back(bench::run_micro(
        label + " encode block", rows,
        [&] {
          tile_vscheme.encode_block(0, tile_data, tile_out);
          bench::keep(tile_out[rows - 1]);
        },
        min_ms));
    const std::size_t encode_block_index = results.size() - 1;
    results.push_back(bench::run_micro(
        label + " decode scalar/word", rows,
        [&] {
          std::uint64_t uncorrectable = 0;
          for (std::uint32_t row = 0; row < rows; ++row) {
            const read_result r =
                tile_vscheme.decode_reference(row, tile_stored[row]);
            tile_out[row] = r.data;
            if (r.status == ecc_status::detected_uncorrectable) ++uncorrectable;
          }
          bench::keep(tile_out[rows - 1] + uncorrectable);
        },
        min_ms));
    const std::size_t decode_scalar_index = results.size() - 1;
    results.push_back(bench::run_micro(
        label + " decode block", rows,
        [&] {
          const block_decode_stats stats =
              tile_vscheme.decode_block(0, tile_stored, tile_out);
          bench::keep(tile_out[rows - 1] + stats.uncorrectable);
        },
        min_ms));
    const std::size_t decode_block_index = results.size() - 1;

    tile_speedups speedups;
    speedups.encode = results[encode_scalar_index].ns_per_item /
                      results[encode_block_index].ns_per_item;
    speedups.decode = results[decode_scalar_index].ns_per_item /
                      results[decode_block_index].ns_per_item;
    return speedups;
  };

  const tile_speedups secded_speedups =
      time_tile_paths("secded32", secded_scheme(32));
  const tile_speedups hsiao_speedups =
      time_tile_paths("hsiao32", hsiao_scheme(32));
  const tile_speedups bch_speedups =
      time_tile_paths("bch32t2", bch_scheme(32, 2));

  bench::print_micro_table(results);

  const double speedup_encode = secded_speedups.encode;
  const double speedup_decode = secded_speedups.decode;
  std::cout << "\nblock-codec speedup vs per-word scalar (W=32 SECDED): encode "
            << speedup_encode << "x, decode " << speedup_decode << "x\n";
  std::cout << "block-codec speedup vs per-word scalar (W=32 Hsiao): encode "
            << hsiao_speedups.encode << "x, decode " << hsiao_speedups.decode
            << "x\n";
  std::cout << "block-codec speedup vs per-word scalar (W=32 BCH t=2): encode "
            << bch_speedups.encode << "x, decode " << bch_speedups.decode
            << "x\n";

  bench::json_object payload = bench::bench_envelope("micro_codec");
  bench::json_object config;
  config.add("seed", seed)
      .add("rows", std::uint64_t{rows})
      .add("min_time_ms", min_ms)
      .add("ops_per_rep", kOpsPerRep);
  payload.add_raw("config", config.str());
  std::vector<std::string> entries;
  entries.reserve(results.size());
  for (const auto& r : results) entries.push_back(bench::micro_json(r));
  payload.add_raw("results", bench::json_array(entries));
  payload.add("speedup_encode_block_vs_scalar", speedup_encode);
  payload.add("speedup_decode_block_vs_scalar", speedup_decode);
  payload.add("speedup_encode_block_vs_scalar_hsiao", hsiao_speedups.encode);
  payload.add("speedup_decode_block_vs_scalar_hsiao", hsiao_speedups.decode);
  payload.add("speedup_encode_block_vs_scalar_bch", bch_speedups.encode);
  payload.add("speedup_decode_block_vs_scalar_bch", bch_speedups.decode);
  bench::write_bench_json("micro_codec", payload);
  return 0;
}
