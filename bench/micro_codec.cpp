// Micro-benchmarks (google-benchmark): throughput of the protection
// codecs — the software cost of each scheme's encode/decode path, which
// dominates the Monte-Carlo experiment runtimes.
#include <benchmark/benchmark.h>

#include "urmem/common/rng.hpp"
#include "urmem/ecc/hamming_secded.hpp"
#include "urmem/ecc/priority_ecc.hpp"
#include "urmem/shuffle/bit_shuffler.hpp"

namespace {

using namespace urmem;

void bm_secded_encode(benchmark::State& state) {
  const hamming_secded code(static_cast<unsigned>(state.range(0)));
  rng gen(1);
  word_t data = gen() & word_mask(code.data_bits());
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(data));
    data = (data * 0x9e3779b97f4a7c15ULL + 1) & word_mask(code.data_bits());
  }
}
BENCHMARK(bm_secded_encode)->Arg(8)->Arg(16)->Arg(32)->Arg(57);

void bm_secded_decode_clean(benchmark::State& state) {
  const hamming_secded code(static_cast<unsigned>(state.range(0)));
  rng gen(2);
  const word_t cw = code.encode(gen() & word_mask(code.data_bits()));
  for (auto _ : state) benchmark::DoNotOptimize(code.decode(cw));
}
BENCHMARK(bm_secded_decode_clean)->Arg(16)->Arg(32);

void bm_secded_decode_correcting(benchmark::State& state) {
  const hamming_secded code(32);
  rng gen(3);
  const word_t cw = code.encode(gen() & word_mask(32));
  unsigned pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(flip_bit(cw, pos)));
    pos = (pos + 1) % code.codeword_bits();
  }
}
BENCHMARK(bm_secded_decode_correcting);

void bm_pecc_roundtrip(benchmark::State& state) {
  const priority_ecc codec;
  rng gen(4);
  word_t data = gen() & word_mask(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(codec.encode(data)));
    data = (data * 0x9e3779b97f4a7c15ULL + 1) & word_mask(32);
  }
}
BENCHMARK(bm_pecc_roundtrip);

void bm_shuffle_roundtrip(benchmark::State& state) {
  const bit_shuffler shuffler(32, static_cast<unsigned>(state.range(0)));
  rng gen(5);
  word_t data = gen() & word_mask(32);
  unsigned xfm = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shuffler.restore(shuffler.apply(data, xfm), xfm));
    xfm = (xfm + 1) % shuffler.segment_count();
    data = (data * 0x9e3779b97f4a7c15ULL + 1) & word_mask(32);
  }
}
BENCHMARK(bm_shuffle_roundtrip)->Arg(1)->Arg(3)->Arg(5);

}  // namespace
