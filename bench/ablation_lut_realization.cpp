// Ablation: FM-LUT realization (Sec. 5.1).
//
// The paper prices the LUT "as entire bit columns in the array to
// demonstrate the achievable saving through the most straightforward
// realization" and notes a CAM or register file "could provide much
// less overhead, especially in terms of write latency". This ablation
// quantifies the SRAM-column vs register-file trade on the cost model.
#include <iostream>

#include "bench_util.hpp"
#include "urmem/common/table.hpp"
#include "urmem/hwmodel/overhead_model.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Ablation — FM-LUT realization: SRAM columns vs register file",
                "Ganapathy et al., DAC'15, Sec. 5.1 (LUT realization remark)");

  const auto rows = static_cast<std::uint32_t>(args.get_u64("rows", 4096));
  const overhead_model model(gate_library::fdsoi_28nm(),
                             sram_macro_model::fdsoi_28nm(),
                             array_geometry{rows, 32});
  const overhead_metrics base = model.secded(hamming_secded(32));

  console_table table({"nFM", "LUT", "read power (rel ECC)", "read delay (rel ECC)",
                       "area (rel ECC)"});
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    for (const auto realization :
         {lut_realization::sram_columns, lut_realization::register_file}) {
      const relative_overhead rel =
          overhead_model::relative(model.shuffle(n_fm, realization), base);
      table.add_row({std::to_string(n_fm),
                     realization == lut_realization::sram_columns ? "SRAM columns"
                                                                  : "register file",
                     format_double(rel.read_power, 3),
                     format_double(rel.read_delay, 3), format_double(rel.area, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nConclusion: the register file cuts LUT read energy (no "
               "bitline swing on a tall column) at ~4x the storage area —\n"
               "worthwhile for small nFM, where the LUT is only a few bits "
               "per row, exactly as the paper suggests.\n";
  return 0;
}
