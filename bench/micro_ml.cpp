// Micro-benchmarks (google-benchmark): the three benchmark algorithms
// at their Fig. 7 problem sizes — one iteration of the quality
// experiment costs one fit+score of each.
#include <benchmark/benchmark.h>

#include "urmem/sim/applications.hpp"
#include "urmem/sim/memory_pipeline.hpp"

namespace {

using namespace urmem;

void bm_app_evaluate(benchmark::State& state) {
  const auto apps = make_all_applications();
  const auto& app = apps[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(app->evaluate(app->train_features()));
  }
  state.SetLabel(app->name());
}
BENCHMARK(bm_app_evaluate)->Arg(0)->Arg(1)->Arg(2);

void bm_store_and_readback(benchmark::State& state) {
  const auto app = make_elasticnet_app();
  rng gen(1);
  const fault_injector inject = exact_fault_injector(131);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store_and_readback(
        app->train_features(), storage_config{},
        [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 2); },
        inject, gen));
  }
}
BENCHMARK(bm_store_and_readback);

}  // namespace
