// Fig. 6 reproduction: read power, read delay, and area overhead of the
// bit-shuffling scheme (nFM = 1..5) and the H(22,16) P-ECC, relative to
// the H(39,32) SECDED baseline, on the 28 nm-class structural cost
// model (Sec. 5.1 accounting: readout path only for power/delay; all
// added hardware for area).
#include <iostream>

#include "bench_util.hpp"
#include "urmem/common/table.hpp"
#include "urmem/hwmodel/overhead_model.hpp"

int main(int argc, char** argv) {
  using namespace urmem;
  const bench::arg_parser args(argc, argv);
  bench::banner("Fig. 6 — hardware overhead relative to H(39,32) SECDED",
                "Ganapathy et al., DAC'15, Fig. 6 / Sec. 5.1");

  const auto rows = static_cast<std::uint32_t>(args.get_u64("rows", 4096));
  const overhead_model model(gate_library::fdsoi_28nm(),
                             sram_macro_model::fdsoi_28nm(),
                             array_geometry{rows, 32});

  const hamming_secded h39(32);
  const priority_ecc h22(32, 16);
  const overhead_metrics base = model.secded(h39);

  std::cout << "Absolute overhead added on top of the unprotected " << rows
            << " x 32 array:\n";
  console_table absolute({"scheme", "read energy [fJ]", "read delay [ps]",
                          "area [um^2]"});
  const auto add_abs = [&](const std::string& name, const overhead_metrics& m) {
    absolute.add_row({name, format_double(m.read_energy_fj, 4),
                      format_double(m.read_delay_ps, 4),
                      format_double(m.area_um2, 5)});
  };
  add_abs("H(39,32) ECC", base);
  add_abs("H(22,16) P-ECC", model.pecc(h22));
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    add_abs("nFM=" + std::to_string(n_fm), model.shuffle(n_fm));
  }
  absolute.print(std::cout);

  std::cout << "\nRelative to H(39,32) SECDED (= 1.00, the paper's Fig. 6 axes):\n";
  console_table rel_table({"scheme", "read power", "read delay", "area"});
  const auto add_rel = [&](const std::string& name, const overhead_metrics& m) {
    const relative_overhead rel = overhead_model::relative(m, base);
    rel_table.add_row({name, format_double(rel.read_power, 3),
                       format_double(rel.read_delay, 3), format_double(rel.area, 3)});
  };
  add_rel("H(39,32) ECC", base);
  add_rel("H(22,16) P-ECC", model.pecc(h22));
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    add_rel("nFM=" + std::to_string(n_fm), model.shuffle(n_fm));
  }
  rel_table.print(std::cout);

  std::cout << "\nWrite-path overhead (not in Fig. 6 — Sec. 5.1 notes writes "
               "are off the critical path; the shuffle write needs a serial "
               "LUT read first):\n";
  console_table write_table({"scheme", "write energy [fJ]", "write delay [ps]"});
  const auto add_write = [&](const std::string& name,
                             const write_overhead_metrics& m) {
    write_table.add_row({name, format_double(m.write_energy_fj, 4),
                         format_double(m.write_delay_ps, 4)});
  };
  add_write("H(39,32) ECC", model.secded_write(h39));
  add_write("H(22,16) P-ECC", model.pecc_write(h22));
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    add_write("nFM=" + std::to_string(n_fm) + " (SRAM LUT)",
              model.shuffle_write(n_fm));
    add_write("nFM=" + std::to_string(n_fm) + " (regfile LUT)",
              model.shuffle_write(n_fm, lut_realization::register_file));
  }
  write_table.print(std::cout);

  const relative_overhead best = overhead_model::relative(model.shuffle(1), base);
  const relative_overhead worst = overhead_model::relative(model.shuffle(5), base);
  const relative_overhead pecc_rel =
      overhead_model::relative(model.pecc(h22), base);
  const relative_overhead vs_pecc =
      overhead_model::relative(model.shuffle(1), model.pecc(h22));

  std::cout << "\nPaper headline checks (savings vs SECDED / P-ECC):\n";
  console_table claims({"claim", "paper", "measured"});
  claims.add_row({"read power saving vs ECC", "20% - 83%",
                  format_percent(1.0 - worst.read_power, 1) + " - " +
                      format_percent(1.0 - best.read_power, 1)});
  claims.add_row({"read delay saving vs ECC", "41% - 77%",
                  format_percent(1.0 - worst.read_delay, 1) + " - " +
                      format_percent(1.0 - best.read_delay, 1)});
  claims.add_row({"area saving vs ECC", "32% - 89%",
                  format_percent(1.0 - worst.area, 1) + " - " +
                      format_percent(1.0 - best.area, 1)});
  claims.add_row({"best power saving vs P-ECC", "59%",
                  format_percent(1.0 - vs_pecc.read_power, 1)});
  claims.add_row({"best delay saving vs P-ECC", "64%",
                  format_percent(1.0 - vs_pecc.read_delay, 1)});
  claims.add_row({"best area saving vs P-ECC", "57%",
                  format_percent(1.0 - vs_pecc.area, 1)});
  claims.add_row({"P-ECC relative power/delay/area", "0.41 / 0.64 / 0.26",
                  format_double(pecc_rel.read_power, 2) + " / " +
                      format_double(pecc_rel.read_delay, 2) + " / " +
                      format_double(pecc_rel.area, 2)});
  claims.add_row({"SECDED decode depth [17]", "~13 gate delays",
                  format_double(model.decoder_gate_delays(h39), 3)});
  claims.print(std::cout);
  return 0;
}
