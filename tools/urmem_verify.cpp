// urmem-verify — exhaustive nCr fault-pattern verification driver.
//
// For every requested scheme x width it enumerates ALL k-bit error
// patterns over the data+check columns (k up to the scheme's
// correction guarantee plus one, or --max-bits) and proves:
//
//   * block == scalar == reference bit-identity on encode and decode;
//   * every <= t-bit pattern is corrected, every (t+1)-bit pattern is
//     flagged detected_uncorrectable (t = guaranteed_correctable_bits);
//   * the analytic residual model (residual_fault_bits /
//     worst_case_row_cost) equals the enumerated truth exactly, for
//     every enumerated data word.
//
// Schemes are resolved through the scenario scheme registry, so the
// compact "name:key=value" spec strings verify the very recipes
// scenarios run. The sweep parallelizes over the campaign pool and is
// deterministic for a fixed seed at any thread count.
//
// Usage:
//   urmem-verify [--schemes=a,b,...] [--widths=4,8,16] [--threads=N]
//                [--seed=S] [--max-bits=K] [--rows=N] [--max-seconds=F]
//
// Exit status: 0 all properties proven (and within the wall-clock
// budget when --max-seconds is given), 2 on malformed flags or values,
// 1 on verification failure or unexpected runtime error.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "urmem/common/cli.hpp"
#include "urmem/scenario/options.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/scenario/scheme_registry.hpp"
#include "urmem/sim/campaign_runner.hpp"
#include "urmem/verify/exhaustive.hpp"

namespace {

constexpr std::string_view usage =
    "usage: urmem-verify [flags]\n"
    "\n"
    "  Exhaustively enumerates all k-bit fault patterns (k up to the\n"
    "  scheme's correction guarantee + 1) for every scheme x width and\n"
    "  proves correction/detection classification, block==scalar==\n"
    "  reference bit-identity, and exactness of the analytic residual\n"
    "  model against the enumerated truth.\n"
    "\n"
    "flags:\n"
    "  --schemes=a,b,...  compact scheme specs (registry grammar);\n"
    "                     default: none,secded,hsiao,bch:t=1,bch:t=2,\n"
    "                     pecc,shuffle:nfm=1,shuffle:nfm=2\n"
    "  --widths=4,8,16    data widths to verify (default 4,8,16)\n"
    "  --max-bits=K       override pattern weight ceiling (default 0 =\n"
    "                     per-scheme guarantee + 1, floored at 2)\n"
    "  --rows=N           rows per scheme instance (default 8)\n"
    "  --threads=N        worker threads (default 0 = all cores)\n"
    "  --seed=S           root seed for sampled data words (default 42)\n"
    "  --max-seconds=F    fail if the whole sweep exceeds F seconds\n"
    "  --help             this text\n";

}  // namespace

int main(int argc, char** argv) {
  using urmem::campaign_config;
  using urmem::campaign_runner;
  using urmem::exhaustive_config;
  using urmem::exhaustive_report;
  using urmem::geometry_spec;
  using urmem::scheme_recipe;
  using urmem::scheme_registry;

  std::vector<std::string> schemes = {
      "none",          "secded",        "hsiao",        "bch:t=1",
      "bch:t=2",       "pecc",          "shuffle:nfm=1", "shuffle:nfm=2"};
  std::vector<unsigned> widths = {4, 8, 16};
  exhaustive_config config;
  campaign_config pool_config;
  double max_seconds = 0.0;

  const urmem::cli_spec cli{.tool = "urmem-verify",
                            .usage = usage,
                            .flags = {{"--schemes", true},
                                      {"--widths", true},
                                      {"--max-bits", true},
                                      {"--rows", true},
                                      {"--threads", true},
                                      {"--seed", true},
                                      {"--max-seconds", true}},
                            .accept_overrides = false,
                            .accept_positionals = false};
  const std::optional<urmem::cli_args> parsed =
      urmem::parse_cli(cli, argc, argv, std::cout, std::cerr);
  if (!parsed) return 2;
  if (parsed->help) return 0;
  try {
    if (parsed->has("--schemes")) {
      schemes = urmem::split_csv(parsed->value_or("--schemes"));
    }
    if (parsed->has("--widths")) {
      widths.clear();
      for (const std::string& w :
           urmem::split_csv(parsed->value_or("--widths"))) {
        widths.push_back(
            static_cast<unsigned>(urmem::parse_spec_u64("widths", w)));
      }
    }
    if (parsed->has("--max-bits")) {
      config.max_pattern_bits = static_cast<unsigned>(
          urmem::parse_spec_u64("max-bits", parsed->value_or("--max-bits")));
    }
    if (parsed->has("--rows")) {
      config.rows = static_cast<std::uint32_t>(
          urmem::parse_spec_u64("rows", parsed->value_or("--rows")));
    }
    if (parsed->has("--threads")) {
      pool_config.threads = static_cast<unsigned>(
          urmem::parse_spec_u64("threads", parsed->value_or("--threads")));
    }
    if (parsed->has("--seed")) {
      pool_config.seed = urmem::parse_spec_u64("seed", parsed->value_or("--seed"));
    }
    if (parsed->has("--max-seconds")) {
      max_seconds = urmem::parse_spec_double("max-seconds",
                                             parsed->value_or("--max-seconds"));
    }
  } catch (const urmem::spec_error& error) {
    std::cerr << "urmem-verify: " << error.what() << "\n";
    return 2;
  }
  if (schemes.empty() || widths.empty()) {
    std::cerr << "urmem-verify: nothing to verify\n";
    return 2;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_seconds = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  campaign_runner pool(pool_config);
  bool all_ok = true;
  std::uint64_t total_patterns = 0;
  std::uint64_t total_decodes = 0;
  const std::size_t total_combos = widths.size() * schemes.size();
  std::size_t combos_done = 0;
  bool budget_hit = false;

  for (const unsigned width : widths) {
    for (const std::string& spec : schemes) {
      // Mid-sweep budget check: a blown budget stops BEFORE the next
      // combo and reports partial progress, instead of grinding through
      // the rest of the grid just to fail at the end.
      if (max_seconds > 0.0 && elapsed_seconds() > max_seconds) {
        budget_hit = true;
        break;
      }
      const std::string label = spec + " @ w=" + std::to_string(width);
      try {
        const urmem::scheme_ref ref =
            urmem::parse_compact_scheme(spec, "schemes");
        geometry_spec geometry;
        geometry.word_bits = width;
        geometry.rows_per_tile = config.rows;
        const scheme_recipe recipe =
            scheme_registry::instance().make(ref, geometry);
        const exhaustive_report report = urmem::verify_scheme_exhaustive(
            label, recipe.factory, pool, config);
        total_patterns += report.patterns;
        total_decodes += report.decodes;
        std::cout << report.summary() << "\n";
        for (const std::string& failure : report.failures) {
          std::cout << "  " << failure << "\n";
        }
        all_ok = all_ok && report.ok();
      } catch (const std::exception& error) {
        std::cout << label << ": ERROR " << error.what() << "\n";
        all_ok = false;
      }
      ++combos_done;
    }
    if (budget_hit) break;
  }

  const double elapsed = elapsed_seconds();
  std::cout << "total: " << total_patterns << " patterns, " << total_decodes
            << " decodes in " << elapsed << " s\n";
  if (!all_ok) {
    std::cout << "urmem-verify: FAILED\n";
    return 1;
  }
  if (max_seconds > 0.0 && (budget_hit || elapsed > max_seconds)) {
    std::cout << "urmem-verify: wall-clock budget exceeded (" << elapsed
              << " s > " << max_seconds << " s) after " << combos_done
              << " of " << total_combos << " scheme x width combos\n"
              << "partial progress: " << total_patterns << " patterns, "
              << total_decodes << " decodes verified\n";
    return 1;
  }
  std::cout << "urmem-verify: all properties proven\n";
  return 0;
}
