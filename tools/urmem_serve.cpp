// urmem-serve — long-running serving mode over protected-memory tiles.
//
// Builds a memory_service from an ordinary scenario spec (one hot tile
// per resolved scheme, tiered/HRM region tables included) and drives it
// with a closed-loop concurrent client pool while the fault lifecycle
// ages the tiles live: background scrub passes overlap request traffic
// and retirements land at epoch boundaries. Prints per-tile outcome
// counters (bit-identical at any --clients value) plus throughput and
// p50/p99/p99.9 service latency (wall clock — never golden-diffed).
//
// Usage:
//   urmem-serve [spec.json] [key=value ...] [flags]
//
//   urmem-serve scenarios/serve_smoke.json --clients=4
//   urmem-serve serve.requests=20000 serve.requests_per_epoch=2000
//               serve.initial_faults=64 scrub.interval=1
//
// Exit codes: 0 success, 2 spec/flag validation error, 1 runtime error.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "urmem/common/cli.hpp"
#include "urmem/common/fs.hpp"
#include "urmem/common/table.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/serve/memory_service.hpp"
#include "urmem/serve/service_driver.hpp"

namespace {

constexpr std::string_view usage =
    "usage: urmem-serve [spec.json] [key=value ...] [flags]\n"
    "\n"
    "  Serves the spec's schemes as resident protected-memory tiles under\n"
    "  concurrent store/readback/quality traffic while the fault lifecycle\n"
    "  ages them live (see the spec's `serve`, `scrub` and `retire`\n"
    "  sections). Integer counters are bit-identical at any client count;\n"
    "  latency and throughput are wall-clock.\n"
    "\n"
    "flags:\n"
    "  --clients=N        client threads (overrides serve.clients)\n"
    "  --requests=M       request budget (overrides serve.requests)\n"
    "  --duration=SECS    stop issuing after SECS seconds even with budget\n"
    "                     left (counters stay exact but depend on timing)\n"
    "  --out=FILE         write the full JSON report (counters + latency)\n"
    "  --counters-out=FILE  write only the deterministic counter section\n"
    "                     (the golden-diffable part)\n"
    "  --print-spec       print the normalized spec JSON and exit\n"
    "  --help             this text\n"
    "\n"
    "examples:\n"
    "  urmem-serve scenarios/serve_smoke.json --clients=4\n"
    "  urmem-serve schemes=none,pecc serve.requests=20000 \\\n"
    "              serve.requests_per_epoch=2000 serve.initial_faults=64 \\\n"
    "              scrub.interval=1 retire.policy=remap\n";

void write_json(const std::string& path, const urmem::json_value& doc,
                const char* label) {
  urmem::ensure_parent_dirs(path);
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error(std::string("cannot write ") + label + " to '" +
                             path + "'");
  }
  out << doc.dump() << "\n";
  std::cerr << label << ": " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace urmem;

  const cli_spec cli{.tool = "urmem-serve",
                     .usage = usage,
                     .flags = {{"--print-spec"},
                               {"--clients", true},
                               {"--requests", true},
                               {"--duration", true},
                               {"--out", true},
                               {"--counters-out", true}},
                     .accept_overrides = true,
                     .accept_positionals = true};
  const std::optional<cli_args> parsed =
      parse_cli(cli, argc, argv, std::cout, std::cerr);
  if (!parsed) return 2;
  if (parsed->help) return 0;
  if (parsed->positionals.size() > 1) {
    std::cerr << "urmem-serve: more than one spec file given ('"
              << parsed->positionals[0] << "' and '" << parsed->positionals[1]
              << "')\n";
    return 2;
  }
  const std::string spec_path =
      parsed->positionals.empty() ? std::string{} : parsed->positionals[0];

  try {
    json_value doc = json_value::make_object();
    if (!spec_path.empty()) {
      std::ifstream in(spec_path);
      if (!in) {
        std::cerr << "urmem-serve: cannot read spec file '" << spec_path
                  << "'\n";
        return 2;
      }
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      doc = json_value::parse(text);
    }
    for (const auto& [key, value] : parsed->overrides) {
      apply_spec_override(doc, key, value);
    }

    const scenario_spec spec = scenario_spec::from_json(doc);
    if (parsed->has("--print-spec")) {
      std::cout << spec.to_json().dump() << "\n";
      return 0;
    }

    driver_config config = driver_config_from(spec);
    if (parsed->has("--clients")) {
      const std::uint64_t clients =
          parse_spec_u64("clients", parsed->value_or("--clients"));
      if (clients == 0 || clients > 4096) {
        throw spec_error("clients", "must be in [1, 4096]");
      }
      config.clients = static_cast<std::uint32_t>(clients);
    }
    if (parsed->has("--requests")) {
      config.requests =
          parse_spec_u64("requests", parsed->value_or("--requests"));
    }
    if (parsed->has("--duration")) {
      config.duration_seconds =
          parse_spec_double("duration", parsed->value_or("--duration"));
      if (config.duration_seconds <= 0.0) {
        throw spec_error("duration", "must be positive");
      }
    }

    memory_service service(spec);
    std::cerr << "serve '" << spec.name << "': " << service.tile_count()
              << " tile(s) x " << service.rows() << " rows, "
              << config.clients << " client(s), " << config.requests
              << " request budget\n";

    const drive_report report = drive(service, config);

    console_table table({"scheme", "stores", "readbacks", "corrected",
                         "uncorrectable", "word_errors", "retired", "marked",
                         "spares_left", "epochs"});
    for (const auto& tile : report.counters.tiles) {
      table.add_row(
          {tile.scheme, std::to_string(tile.traffic.stores),
           std::to_string(tile.traffic.readbacks),
           std::to_string(tile.traffic.corrected_reads),
           std::to_string(tile.traffic.uncorrectable_reads),
           std::to_string(tile.traffic.word_errors),
           std::to_string(tile.life.ce_retirements + tile.life.ue_retirements),
           std::to_string(tile.life.marked_rows),
           std::to_string(tile.spares_left),
           std::to_string(tile.life.epochs) +
               (tile.failed ? " (failstop)" : "")});
    }
    table.print(std::cout);
    std::cout << "\nrequests " << report.counters.requests << " ("
              << report.counters.stores << " stores, "
              << report.counters.readbacks << " readbacks, "
              << report.counters.quality_queries << " quality), "
              << report.counters.epoch_steps << " epoch step(s)\n";
    std::cout << "throughput " << format_double(report.requests_per_second, 4)
              << " req/s over " << format_double(report.wall_seconds, 3)
              << " s\n";
    std::cout << "latency p50 " << report.latency.quantile(0.5) << " ns, p99 "
              << report.latency.quantile(0.99) << " ns, p99.9 "
              << report.latency.quantile(0.999) << " ns, max "
              << report.latency.max() << " ns\n";

    const std::string out_path = parsed->value_or("--out");
    const std::string counters_path = parsed->value_or("--counters-out");
    if (!out_path.empty()) write_json(out_path, report.to_json(), "report");
    if (!counters_path.empty()) {
      write_json(counters_path, report.counters.to_json(), "counters");
    }
    return 0;
  } catch (const spec_error& error) {
    std::cerr << "urmem-serve: " << error.what() << "\n";
    return 2;
  } catch (const json_parse_error& error) {
    std::cerr << "urmem-serve: " << spec_path << ": " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "urmem-serve: error: " << error.what() << "\n";
    return 1;
  }
}
