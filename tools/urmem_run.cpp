// urmem-run — the single driver of the declarative scenario API.
//
// One binary replaces the hand-wired experiment mains: it loads a
// scenario_spec from a JSON file and/or dotted key=value overrides,
// expands the sweep grid, runs the named workload over the named
// schemes, prints the human report to stdout and (optionally) writes
// the deterministic JSON report for CI goldens.
//
// Usage:
//   urmem-run [spec.json] [key=value ...] [flags]
//
//   urmem-run --list-schemes
//   urmem-run --list-workloads
//   urmem-run scenarios/fig7_smoke.json --out=report.json
//   urmem-run workload=fig5-mse schemes=none,shuffle:nfm=1,pecc
//             pcell=5e-6 workload.runs=100000 threads=4
//   urmem-run workload=fig7-quality schemes=none,pecc,shuffle:nfm=1
//             pcell=1e-3 sweep.fault.pcell=1e-4,1e-3 --print-spec
//
// Flags: --list-schemes --list-workloads --print-spec --out=FILE
//        --shard=I/N --checkpoint-dir=DIR --max-points=K --help
// Override shorthands: seed, threads, batch, pcell, vdd, polarity, rows
// Region overrides: regions=<range>=<scheme,...>:<range>=... and
// regions.<range>.<key>=value (see scenario_spec.hpp).
// (see scenario_spec.hpp for the schema).
//
// Sharded campaigns: --shard=I/N runs only the grid points whose
// expansion index is congruent to I modulo N (same expansion order as
// an unsharded run; --shard=0/1 is byte-identical to today). With
// --checkpoint-dir each completed point is published as one atomic JSON
// file keyed by the spec's canonical hash, so a killed shard relaunched
// with the same directory re-runs only missing points; `urmem-merge`
// folds the per-point files back into the exact unsharded report.
//
// Exit codes: 0 success, 2 spec/flag validation error (before any work
// spawns), 1 unexpected runtime error.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "urmem/common/cli.hpp"
#include "urmem/common/fs.hpp"
#include "urmem/scenario/checkpoint.hpp"
#include "urmem/scenario/scenario_runner.hpp"
#include "urmem/scenario/scheme_registry.hpp"
#include "urmem/scenario/workload_registry.hpp"

namespace {

constexpr std::string_view usage =
    "usage: urmem-run [spec.json] [key=value ...] [flags]\n"
    "\n"
    "  Runs one scenario: a workload (by registry name) over a list of\n"
    "  protection schemes (by registry name), optionally swept over a\n"
    "  parameter grid. The spec comes from a JSON file, dotted key=value\n"
    "  overrides, or both (overrides win).\n"
    "\n"
    "flags:\n"
    "  --list-schemes       print the scheme registry and exit\n"
    "  --list-workloads     print the workload registry and exit\n"
    "  --print-spec         print the normalized spec JSON and exit\n"
    "  --out=FILE           also write the deterministic JSON report to FILE\n"
    "                       (parent directories are created on demand)\n"
    "  --shard=I/N          run only grid points with index % N == I\n"
    "                       (0 <= I < N; point order is unchanged)\n"
    "  --checkpoint-dir=DIR write one atomic JSON file per completed grid\n"
    "                       point; a relaunch with the same DIR re-runs\n"
    "                       only missing points (merge with urmem-merge)\n"
    "  --max-points=K       stop after executing K points (checkpointed\n"
    "                       points are free) — crash-resume testing\n"
    "  --help               this text\n"
    "\n"
    "examples:\n"
    "  urmem-run workload=table1-apps seed=7\n"
    "  urmem-run workload=fig7-quality schemes=none,pecc,shuffle:nfm=1 \\\n"
    "            pcell=1e-3 workload.samples=10 threads=0\n"
    "  urmem-run scenarios/fig7_smoke.json --out=fig7.json\n"
    "  urmem-run scenarios/hrm_smoke.json --shard=1/3 --checkpoint-dir=ck/1\n";

template <typename Infos>
void print_registry(const Infos& infos) {
  std::size_t width = 0;
  for (const auto& info : infos) width = std::max(width, info.name.size());
  for (const auto& info : infos) {
    std::cout << info.name << std::string(width - info.name.size() + 2, ' ')
              << info.summary;
    if (!info.options_help.empty()) {
      std::cout << " (options: " << info.options_help << ")";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace urmem;

  const cli_spec cli{.tool = "urmem-run",
                     .usage = usage,
                     .flags = {{"--list-schemes"},
                               {"--list-workloads"},
                               {"--print-spec"},
                               {"--out", true},
                               {"--shard", true},
                               {"--checkpoint-dir", true},
                               {"--max-points", true}},
                     .accept_overrides = true,
                     .accept_positionals = true};
  const std::optional<cli_args> parsed =
      parse_cli(cli, argc, argv, std::cout, std::cerr);
  if (!parsed) return 2;
  if (parsed->help) return 0;
  if (parsed->has("--list-schemes")) {
    print_registry(scheme_registry::instance().list());
    return 0;
  }
  if (parsed->has("--list-workloads")) {
    print_registry(workload_registry::instance().list());
    return 0;
  }
  if (parsed->positionals.size() > 1) {
    std::cerr << "urmem-run: more than one spec file given ('"
              << parsed->positionals[0] << "' and '" << parsed->positionals[1]
              << "')\n";
    return 2;
  }
  const std::string spec_path =
      parsed->positionals.empty() ? std::string{} : parsed->positionals[0];
  const std::string out_path = parsed->value_or("--out");
  const std::string shard_text = parsed->value_or("--shard");
  const std::string max_points_text = parsed->value_or("--max-points");
  const bool print_spec = parsed->has("--print-spec");
  run_options options;
  options.checkpoint_dir = parsed->value_or("--checkpoint-dir");
  const std::vector<std::pair<std::string, std::string>>& overrides =
      parsed->overrides;

  try {
    // Flag validation precedes any spec loading or pool spawning:
    // `--shard=5/3` must exit 2 before a single trial runs.
    if (!shard_text.empty()) options.shard = shard_spec::parse(shard_text);
    if (!max_points_text.empty()) {
      options.max_points = parse_spec_u64("max-points", max_points_text);
      if (options.max_points == 0) {
        throw spec_error("max-points", "must be at least 1");
      }
    }

    json_value doc = json_value::make_object();
    if (!spec_path.empty()) {
      std::ifstream in(spec_path);
      if (!in) {
        std::cerr << "urmem-run: cannot read spec file '" << spec_path << "'\n";
        return 2;
      }
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      doc = json_value::parse(text);
    }
    for (const auto& [key, value] : overrides) {
      apply_spec_override(doc, key, value);
    }

    const scenario_spec spec = scenario_spec::from_json(doc);
    if (print_spec) {
      std::cout << spec.to_json().dump() << "\n";
      return 0;
    }

    const scenario_runner runner(spec);
    std::cerr << "scenario '" << spec.name << "': workload "
              << spec.workload.name << ", " << spec.schemes.size()
              << " scheme(s), " << runner.grid_size() << " grid point(s)\n";
    if (options.shard.count > 1) {
      std::uint64_t owned = 0;
      for (std::uint64_t i = 0; i < runner.grid_size(); ++i) {
        if (options.shard.owns(i)) ++owned;
      }
      std::cerr << "shard " << options.shard.label() << ": owns " << owned
                << " of " << runner.grid_size() << " grid point(s)\n";
    }
    const scenario_report report = runner.run(std::cout, options);
    std::cerr << "scenario done: " << report.points.size() << " point(s), "
              << report.total_trials << " trials\n";
    if (!options.checkpoint_dir.empty()) {
      std::cerr << "checkpoint: " << report.cached_points << " cached, "
                << report.executed_points << " executed under '"
                << options.checkpoint_dir << "'\n";
    }

    if (!out_path.empty()) {
      ensure_parent_dirs(out_path);
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "urmem-run: cannot write report to '" << out_path << "'\n";
        return 2;
      }
      out << report.to_json().dump() << "\n";
      std::cerr << "report: " << out_path << "\n";
    }
    return 0;
  } catch (const spec_error& error) {
    std::cerr << "urmem-run: " << error.what() << "\n";
    return 2;
  } catch (const json_parse_error& error) {
    std::cerr << "urmem-run: " << spec_path << ": " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "urmem-run: error: " << error.what() << "\n";
    return 1;
  }
}
