#!/usr/bin/env python3
"""urmem-lint: reject nondeterminism sources the goldens cannot survive.

Every quality number in this repo is cross-checked by byte-diffing
reports: goldens in CI, sharded-merge vs unsharded runs, serve counters
at different client counts. That only works while outputs are pure
functions of (spec, seeds), so the sources of hidden nondeterminism are
banned from `src/` and `tools/` outright:

  rand            C rand()/srand() — unseeded global state
  random-device   std::random_device — hardware entropy
  wall-clock      system_clock / time(nullptr) — wall-clock values leak
                  into results (steady_clock for *durations* is fine and
                  not matched)
  build-stamp     __DATE__ / __TIME__ / __TIMESTAMP__ — rebuilds change
                  the binary's output
  unordered-iter  iterating std::unordered_{map,set} in a function that
                  writes to a stream — hash order is
                  implementation-defined, so report text would depend on
                  the standard library

Intentional exceptions live in the allowlist file next to this script
(`urmem_lint_allow.txt`, lines of `<rule> <path-glob>`); each entry
carries a comment saying why it is safe. `--self-test` runs the canary:
seeded violations that must be caught, and a clean file that must not
be, so CI proves the linter actually bites before trusting a green run.

Exit status: 0 clean, 1 findings, 2 usage/self-test failure.
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
import tempfile
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".inl"}
SCAN_DIRS = ("src", "tools")

# Simple line rules: (rule id, compiled regex, human reason).
LINE_RULES = [
    (
        "rand",
        re.compile(r"\b(?:std::)?s?rand\s*\("),
        "C rand()/srand() is unseeded global state; use urmem::rng streams",
    ),
    (
        "random-device",
        re.compile(r"\brandom_device\b"),
        "hardware entropy breaks replayability; derive from seeds.root",
    ),
    (
        "wall-clock",
        re.compile(r"\bsystem_clock\b|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
        "wall-clock values leak into results; steady_clock durations only",
    ),
    (
        "build-stamp",
        re.compile(r"__DATE__|__TIME__|__TIMESTAMP__"),
        "build stamps make output depend on when the binary was compiled",
    ),
]

UNORDERED_RULE = "unordered-iter"

UNORDERED_DECL = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*"
    r"&?\s*(\w+)\s*[;({=\[]"
)

STREAM_WRITE = re.compile(
    r"(?:\bstd\s*::\s*(?:cout|cerr|clog)\b|\b(?:os|out|err|oss|stream)\b)\s*<<"
)


class Finding:
    def __init__(self, path: str, line: int, rule: str, excerpt: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.excerpt = excerpt

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.excerpt.strip()}"


def mask_code(text: str) -> str:
    """Blanks comments and string/char literals, preserving offsets.

    Keeps every newline so line numbers survive; every other masked
    character becomes a space so regexes cannot match into or across
    literals and comments.
    """
    out = []
    i = 0
    n = len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw strings R"tag(...)tag" need their own delimiter scan.
                if out and out[-1] == "R" and (len(out) < 2 or not out[-2].isalnum()):
                    m = re.match(r'"([^(]*)\(', text[i:])
                    if m:
                        closer = ")" + m.group(1) + '"'
                        end = text.find(closer, i + m.end())
                        end = n if end < 0 else end + len(closer)
                        span = text[i:end]
                        out.append("".join(ch if ch == "\n" else " " for ch in span))
                        i = end
                        continue
                mode = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                mode = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif (mode == "string" and c == '"') or (mode == "char" and c == "'"):
                mode = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def function_bodies(masked: str):
    """Yields (open, close) offsets of top-level function-ish bodies.

    A block counts as a function body when the last interesting token
    before its `{` is `)` or a trailing-specifier that follows one
    (const/noexcept/override/final/-> ret). Namespace/class/enum blocks
    fail that test and are recursed into instead, so bodies nested in
    namespaces are still found; lambdas inside a body stay part of it.
    """
    opens = []
    pairs = {}
    for i, c in enumerate(masked):
        if c == "{":
            opens.append(i)
        elif c == "}" and opens:
            pairs[opens.pop()] = i

    specifier = re.compile(
        r"(?:\)|const|noexcept|override|final|mutable|&&?|->\s*[\w:<>,\s*&]+)\s*$"
    )

    def is_function_open(pos: int) -> bool:
        before = masked[max(0, pos - 160) : pos]
        return bool(specifier.search(before.rstrip()))

    def walk(start: int, end: int):
        i = start
        while i < end:
            if masked[i] == "{" and i in pairs:
                close = pairs[i]
                if is_function_open(i):
                    yield (i, close)
                else:
                    yield from walk(i + 1, close)
                i = close + 1
            else:
                i += 1

    yield from walk(0, len(masked))


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def scan_text(rel_path: str, text: str):
    masked = mask_code(text)
    raw_lines = text.splitlines()
    findings = []

    for lineno, line in enumerate(masked.splitlines(), start=1):
        for rule, pattern, _reason in LINE_RULES:
            if pattern.search(line):
                excerpt = raw_lines[lineno - 1] if lineno <= len(raw_lines) else line
                findings.append(Finding(rel_path, lineno, rule, excerpt))

    unordered_names = set(UNORDERED_DECL.findall(masked))
    if unordered_names:
        iter_pattern = re.compile(
            r"for\s*\([^;()]*?:\s*(?:[\w.\->]+\.)?("
            + "|".join(re.escape(name) for name in sorted(unordered_names))
            + r")\s*\)"
        )
        for open_pos, close_pos in function_bodies(masked):
            body = masked[open_pos : close_pos + 1]
            if not STREAM_WRITE.search(body):
                continue
            for m in iter_pattern.finditer(body):
                lineno = line_of(masked, open_pos + m.start())
                excerpt = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
                findings.append(Finding(rel_path, lineno, UNORDERED_RULE, excerpt))
    return findings


def load_allowlist(path: Path):
    entries = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise SystemExit(
                f"{path}:{lineno}: allowlist lines are '<rule> <path-glob>'"
            )
        entries.append((parts[0], parts[1]))
    return entries


def allowed(finding: Finding, allowlist) -> bool:
    return any(
        rule == finding.rule and fnmatch.fnmatch(finding.path, glob)
        for rule, glob in allowlist
    )


def scan_tree(root: Path, allowlist):
    findings = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            text = path.read_text(encoding="utf-8", errors="replace")
            findings.extend(
                f for f in scan_text(rel, text) if not allowed(f, allowlist)
            )
    return findings


# --------------------------------------------------------------- self-test

CANARY_BAD_RANDOM = """
#include <random>
unsigned draw_seed() {
  std::random_device device;  // nondeterministic on purpose: must be caught
  return device();
}
"""

CANARY_BAD_UNORDERED = """
#include <ostream>
#include <string>
#include <unordered_map>
void dump(std::ostream& os) {
  std::unordered_map<std::string, int> counts;
  counts["a"] = 1;
  for (const auto& entry : counts) {
    os << entry.first << '=' << entry.second << '\\n';
  }
}
"""

CANARY_BAD_MISC = """
#include <cstdlib>
#include <ctime>
int jitter() { return rand() + static_cast<int>(time(nullptr)); }
const char* built_at() { return __DATE__ " " __TIME__; }
"""

CANARY_CLEAN = """
// rand(), std::random_device and __DATE__ in comments must not fire.
#include <chrono>
#include <map>
#include <ostream>
#include <string>
#include <unordered_set>
static const char* kDoc = "call rand() or use std::random_device";
void report(std::ostream& os) {
  std::map<std::string, int> ordered{{"a", 1}};
  for (const auto& entry : ordered) os << entry.first << entry.second;
}
long tick() {
  std::unordered_set<int> seen{1, 2, 3};  // iterated, but never streamed
  long total = 0;
  for (int v : seen) total += v;
  return total + kDoc[0] +
         std::chrono::steady_clock::now().time_since_epoch().count();
}
"""


def self_test() -> int:
    expected = {
        ("src/bad_random.cpp", "random-device"),
        ("src/bad_unordered.cpp", "unordered-iter"),
        ("src/bad_misc.cpp", "rand"),
        ("src/bad_misc.cpp", "wall-clock"),
        ("src/bad_misc.cpp", "build-stamp"),
    }
    with tempfile.TemporaryDirectory(prefix="urmem_lint_canary_") as tmp:
        root = Path(tmp)
        (root / "src").mkdir()
        (root / "src" / "bad_random.cpp").write_text(CANARY_BAD_RANDOM)
        (root / "src" / "bad_unordered.cpp").write_text(CANARY_BAD_UNORDERED)
        (root / "src" / "bad_misc.cpp").write_text(CANARY_BAD_MISC)
        (root / "src" / "clean.cpp").write_text(CANARY_CLEAN)
        got = {(f.path, f.rule) for f in scan_tree(root, allowlist=[])}
    if got == expected:
        print(f"urmem-lint self-test OK: {len(expected)} seeded violations caught, "
              "clean file passed")
        return 0
    for missing in sorted(expected - got):
        print(f"urmem-lint self-test FAILED: did not catch {missing}", file=sys.stderr)
    for extra in sorted(got - expected):
        print(f"urmem-lint self-test FAILED: false positive {extra}", file=sys.stderr)
    return 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = Path(__file__).resolve().parent.parent.parent
    parser.add_argument("--root", type=Path, default=default_root,
                        help="repository root (default: two dirs up)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="allowlist file (default: urmem_lint_allow.txt "
                             "next to this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the canary: seeded violations must be caught")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    allowlist_path = args.allowlist or Path(__file__).resolve().parent / "urmem_lint_allow.txt"
    allowlist = load_allowlist(allowlist_path)
    findings = scan_tree(args.root.resolve(), allowlist)
    if findings:
        reasons = {rule: reason for rule, _p, reason in
                   [(r, p, reason) for r, p, reason in LINE_RULES]}
        reasons[UNORDERED_RULE] = (
            "unordered-container iteration order is implementation-defined; "
            "fold into an ordered container before writing reports"
        )
        for finding in findings:
            print(finding, file=sys.stderr)
            print(f"    why banned: {reasons[finding.rule]}", file=sys.stderr)
        print(f"urmem-lint: {len(findings)} finding(s). Intentional uses need an "
              f"entry in {allowlist_path.name} with a justifying comment.",
              file=sys.stderr)
        return 1
    print("urmem-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
