// urmem-merge — folds sharded campaign checkpoints back into one report.
//
// `urmem-run --shard=I/N --checkpoint-dir=DIR` publishes one atomic
// JSON file per completed grid point. This tool reads those files from
// one shared directory (or one directory per shard), verifies they all
// belong to the same campaign (spec hash + grid size), and writes the
// exact JSON report an unsharded `urmem-run --out` would have produced
// — byte-identical at fixed seeds. It fails loudly on missing grid
// points, truncated/corrupt files, checkpoints from a different spec,
// and duplicate points whose payloads conflict.
//
// Usage:
//   urmem-merge [--out=FILE] DIR [DIR...]
//
// Exit codes: 0 success, 2 usage/validation error (missing points,
// conflicting or stale checkpoints), 1 unexpected runtime error.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "urmem/common/cli.hpp"
#include "urmem/common/fs.hpp"
#include "urmem/scenario/checkpoint.hpp"

namespace {

constexpr std::string_view usage =
    "usage: urmem-merge [--out=FILE] DIR [DIR...]\n"
    "\n"
    "  Merges the per-point checkpoint files that sharded `urmem-run\n"
    "  --checkpoint-dir` runs wrote under the given directories into the\n"
    "  JSON report an unsharded run would have produced (byte-identical\n"
    "  at fixed seeds). All directories must belong to the same campaign\n"
    "  (same spec hash); every grid point must be present in exactly one\n"
    "  consistent copy.\n"
    "\n"
    "flags:\n"
    "  --out=FILE   write the merged report to FILE (default: stdout);\n"
    "               parent directories are created on demand\n"
    "  --help       this text\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace urmem;

  const cli_spec cli{.tool = "urmem-merge",
                     .usage = usage,
                     .flags = {{"--out", true}},
                     .accept_overrides = false,
                     .accept_positionals = true};
  const std::optional<cli_args> parsed =
      parse_cli(cli, argc, argv, std::cout, std::cerr);
  if (!parsed) return 2;
  if (parsed->help) return 0;
  const std::string out_path = parsed->value_or("--out");
  const std::vector<std::string>& dirs = parsed->positionals;
  if (dirs.empty()) {
    std::cerr << "urmem-merge: no checkpoint directories given\n" << usage;
    return 2;
  }

  try {
    const scenario_report report = merge_checkpoints(dirs);
    std::cerr << "merged " << report.points.size() << " point(s), "
              << report.total_trials << " trials from " << dirs.size()
              << " director" << (dirs.size() == 1 ? "y" : "ies") << "\n";
    const std::string text = report.to_json().dump() + "\n";
    if (out_path.empty()) {
      std::cout << text;
    } else {
      ensure_parent_dirs(out_path);
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "urmem-merge: cannot write report to '" << out_path
                  << "'\n";
        return 2;
      }
      out << text;
      std::cerr << "report: " << out_path << "\n";
    }
    return 0;
  } catch (const spec_error& error) {
    std::cerr << "urmem-merge: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "urmem-merge: error: " << error.what() << "\n";
    return 1;
  }
}
