// Tests for the synthetic dataset generators (Table 1 substitutes) and
// the CSV loader.
#include <gtest/gtest.h>

#include <sstream>

#include "urmem/datasets/csv.hpp"
#include "urmem/datasets/generators.hpp"
#include "urmem/ml/knn.hpp"
#include "urmem/ml/pca.hpp"
#include "urmem/ml/preprocessing.hpp"

namespace urmem {
namespace {

// ------------------------------------------------------------- wine-like

TEST(WineLikeTest, ShapeAndMetadata) {
  const dataset data = make_wine_like();
  EXPECT_EQ(data.size(), 1599u);       // UCI red-wine sample count
  EXPECT_EQ(data.dimension(), 11u);    // 11 physicochemical features
  EXPECT_EQ(data.feature_names.size(), 11u);
  EXPECT_TRUE(data.labels.empty());
  EXPECT_EQ(data.targets.size(), 1599u);
}

TEST(WineLikeTest, DeterministicInSeed) {
  const dataset a = make_wine_like({.seed = 5});
  const dataset b = make_wine_like({.seed = 5});
  const dataset c = make_wine_like({.seed = 6});
  EXPECT_DOUBLE_EQ(a.features(0, 0), b.features(0, 0));
  EXPECT_DOUBLE_EQ(a.targets[10], b.targets[10]);
  EXPECT_NE(a.features(0, 0), c.features(0, 0));
}

TEST(WineLikeTest, FeatureRangesArephysical) {
  const dataset data = make_wine_like();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_GE(data.features(i, 10), 8.4);   // alcohol
    EXPECT_LE(data.features(i, 10), 14.9);
    EXPECT_GE(data.features(i, 8), 2.74);   // pH
    EXPECT_LE(data.features(i, 8), 4.01);
    EXPECT_GE(data.targets[i], 3.0);
    EXPECT_LE(data.targets[i], 8.0);
  }
}

TEST(WineLikeTest, AlcoholCorrelatesPositivelyWithQuality) {
  // The dominant effect of the UCI study must survive the generator.
  const dataset data = make_wine_like();
  double cov = 0.0;
  double mean_a = 0.0;
  double mean_q = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    mean_a += data.features(i, 10);
    mean_q += data.targets[i];
  }
  mean_a /= static_cast<double>(data.size());
  mean_q /= static_cast<double>(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    cov += (data.features(i, 10) - mean_a) * (data.targets[i] - mean_q);
  }
  EXPECT_GT(cov, 0.0);
}

// ---------------------------------------------------------- madelon-like

TEST(MadelonLikeTest, ShapeMatchesConfig) {
  const dataset data = make_madelon_like();
  EXPECT_EQ(data.size(), 500u);
  EXPECT_EQ(data.dimension(), 60u);  // 5 + 15 + 40
  EXPECT_EQ(data.labels.size(), 500u);
  for (const int label : data.labels) {
    EXPECT_TRUE(label == 0 || label == 1);
  }
}

TEST(MadelonLikeTest, SpectrumHasFewStrongDirections) {
  // The informative + redundant structure concentrates variance in a
  // handful of principal directions — the property PCA exploits.
  const dataset data = make_madelon_like();
  standard_scaler scaler;
  matrix z = scaler.fit_transform(data.features);
  pca model(5);
  model.fit(z);
  double top5 = 0.0;
  for (const double r : model.explained_variance_ratio()) top5 += r;
  // 5 of 60 directions carry far more than their 8% uniform share: the
  // rank-5 informative+redundant block concentrates the variance.
  EXPECT_GT(top5, 0.25);
}

TEST(MadelonLikeTest, RedundantFeaturesAreLinearCombinations) {
  const dataset data = make_madelon_like({.samples = 200, .seed = 9});
  // Fitting PCA on informative+redundant only: rank must be at most 5
  // (up to noise), so 5 components capture essentially everything.
  matrix sub(200, 20);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 20; ++j) sub(i, j) = data.features(i, j);
  }
  pca model(5);
  model.fit(sub);
  EXPECT_GT(model.score(sub), 0.999);
}

TEST(MadelonLikeTest, LabelIsVertexParityXor) {
  // No single informative feature separates the classes (XOR structure):
  // a 1-feature threshold must stay near chance.
  const dataset data = make_madelon_like({.samples = 2000, .seed = 11});
  std::size_t agree = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int guess = data.features(i, 0) > 0 ? 1 : 0;
    if (guess == data.labels[i]) ++agree;
  }
  const double rate = static_cast<double>(agree) / static_cast<double>(data.size());
  EXPECT_GT(rate, 0.40);
  EXPECT_LT(rate, 0.60);
}

// -------------------------------------------------------------- har-like

TEST(HarLikeTest, ShapeAndLabels) {
  const dataset data = make_har_like();
  EXPECT_EQ(data.size(), 1500u);
  EXPECT_EQ(data.dimension(), 6u);
  for (const int label : data.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
  }
}

TEST(HarLikeTest, KnnSeparatesActivitiesWell) {
  const dataset data = make_har_like();
  rng gen(13);
  const split_indices split = train_test_split(data.size(), 0.2, gen);
  standard_scaler scaler;
  const matrix train = scaler.fit_transform(take_rows(data.features, split.train));
  const matrix test = scaler.transform(take_rows(data.features, split.test));
  knn_classifier model(5);
  model.fit(train, take(data.labels, split.train));
  const double score = model.score(test, take(data.labels, split.test));
  // High but not perfect: dynamic activities overlap, as in ref. [20].
  EXPECT_GT(score, 0.80);
  EXPECT_LT(score, 1.0);
}

TEST(HarLikeTest, StdFeaturesArePositive) {
  const dataset data = make_har_like();
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 3; j < 6; ++j) EXPECT_GT(data.features(i, j), 0.0);
  }
}

// ------------------------------------------------------------------- csv

TEST(CsvTest, ParsesRegressionTable) {
  std::istringstream in("a,b,target\n1,2,3\n4,5,6\n");
  const dataset data = read_csv(in);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.dimension(), 2u);
  EXPECT_DOUBLE_EQ(data.features(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(data.targets[1], 6.0);
  EXPECT_EQ(data.feature_names, (std::vector<std::string>{"a", "b"}));
}

TEST(CsvTest, ParsesLabelsAndCustomTargetColumn) {
  std::istringstream in("label,x,y\n1,0.5,0.25\n0,1.5,2.25\n");
  csv_options options;
  options.target_column = 0;
  options.target_is_label = true;
  const dataset data = read_csv(in, options);
  EXPECT_EQ(data.labels, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(data.features(0, 0), 0.5);
}

TEST(CsvTest, RejectsMalformedInput) {
  std::istringstream ragged("a,b,c\n1,2,3\n4,5\n");
  EXPECT_THROW(read_csv(ragged), std::invalid_argument);
  std::istringstream text("a,b\n1,hello\n");
  EXPECT_THROW(read_csv(text), std::invalid_argument);
  std::istringstream empty("a,b\n");
  EXPECT_THROW(read_csv(empty), std::invalid_argument);
}

TEST(CsvTest, WriteReadRoundTrip) {
  const dataset original = make_har_like({.samples = 25, .seed = 19});
  std::stringstream buffer;
  write_csv(buffer, original);
  csv_options options;
  options.target_is_label = true;
  const dataset parsed = read_csv(buffer, options);
  ASSERT_EQ(parsed.size(), original.size());
  ASSERT_EQ(parsed.dimension(), original.dimension());
  EXPECT_EQ(parsed.labels, original.labels);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    for (std::size_t j = 0; j < parsed.dimension(); ++j) {
      EXPECT_NEAR(parsed.features(i, j), original.features(i, j), 1e-4);
    }
  }
}

TEST(CsvTest, MissingFileRejected) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv"), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
