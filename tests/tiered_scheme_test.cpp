// Tests of the heterogeneous-reliability tier machinery: tiered_scheme
// row routing and region-boundary block paths (block == scalar ==
// reference, bit for bit), per-region spare pools and repair in
// protected_memory, the zero-fault repair short-circuit regression, and
// the region-segmented fault injector.
#include <gtest/gtest.h>

#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scenario/scheme_registry.hpp"
#include "urmem/scenario/workload_registry.hpp"
#include "urmem/scheme/protected_memory.hpp"
#include "urmem/scheme/tiered_scheme.hpp"
#include "urmem/sim/memory_pipeline.hpp"

namespace urmem {
namespace {

/// The canonical HRM fixture: strong ECC over the MSB-critical head,
/// bare shuffle over the tolerant tail, resolved through the registry
/// exactly like a spec would.
scheme_recipe make_fixture_recipe(std::uint32_t rows = 64,
                                  std::uint32_t boundary = 24) {
  geometry_spec geometry;
  geometry.rows_per_tile = rows;
  scheme_ref ref{"tiered", option_map("schemes[0]")};
  ref.options.set("0-" + std::to_string(boundary - 1), "secded");
  ref.options.set(std::to_string(boundary) + "-" + std::to_string(rows - 1),
                  "shuffle,nfm=2");
  return scheme_registry::instance().make(ref, geometry);
}

TEST(TieredScheme, RoutesRowsAndReportsGeometry) {
  const scheme_recipe recipe = make_fixture_recipe();
  EXPECT_EQ(recipe.display_name, "tiered[0-23:H(39,32) ECC|24-63:nFM=2]");
  ASSERT_EQ(recipe.regions.size(), 2u);
  EXPECT_EQ(recipe.regions[0].spare_rows, 0u);

  const auto scheme = recipe.factory(64);
  EXPECT_EQ(scheme->data_bits(), 32u);
  // Storage width is dictated by the widest tier (the ECC codeword).
  EXPECT_EQ(scheme->storage_bits(), 39u);
  EXPECT_EQ(scheme->lut_bits_per_row(), 2u);

  const auto* tiered = dynamic_cast<const tiered_scheme*>(scheme.get());
  ASSERT_NE(tiered, nullptr);
  EXPECT_EQ(tiered->tier_of(0), 0u);
  EXPECT_EQ(tiered->tier_of(23), 0u);
  EXPECT_EQ(tiered->tier_of(24), 1u);
  EXPECT_EQ(tiered->tier_of(63), 1u);

  // A 1-row probe keeps the full design's storage width (ml-quality's
  // storage-column report relies on this).
  EXPECT_EQ(recipe.factory(1)->storage_bits(), 39u);
}

TEST(TieredScheme, BlockPathsSpanRegionBoundariesBitForBit) {
  const std::uint32_t rows = 64;
  const scheme_recipe recipe = make_fixture_recipe(rows, 24);
  const auto scheme = recipe.factory(rows);

  rng gen(17);
  fault_map faults(array_geometry{rows, scheme->storage_bits()});
  for (int i = 0; i < 50; ++i) {
    faults.add({static_cast<std::uint32_t>(gen.uniform_below(rows)),
                static_cast<std::uint32_t>(
                    gen.uniform_below(scheme->storage_bits())),
                fault_kind::flip});
  }
  scheme->configure(faults);

  std::vector<word_t> data(rows);
  for (auto& word : data) word = gen() & word_mask(32);

  // Block encode over a span crossing the tier boundary equals the
  // scalar and reference paths word for word.
  std::vector<word_t> block(rows);
  scheme->encode_block(0, data, block);
  for (std::uint32_t row = 0; row < rows; ++row) {
    EXPECT_EQ(block[row], scheme->encode(row, data[row])) << "row " << row;
    EXPECT_EQ(block[row], scheme->encode_reference(row, data[row]))
        << "row " << row;
  }

  // Same for an unaligned sub-span that starts inside tier 0 and ends
  // inside tier 1.
  std::vector<word_t> partial(30);
  scheme->encode_block(10, std::span<const word_t>(data).subspan(10, 30),
                       partial);
  for (std::uint32_t i = 0; i < 30; ++i) {
    EXPECT_EQ(partial[i], block[10 + i]) << "row " << (10 + i);
  }

  std::vector<word_t> decoded(block);
  const block_decode_stats stats = scheme->decode_block(0, decoded, decoded);
  block_decode_stats scalar_stats;
  for (std::uint32_t row = 0; row < rows; ++row) {
    const read_result scalar = scheme->decode(row, block[row]);
    const read_result reference = scheme->decode_reference(row, block[row]);
    EXPECT_EQ(decoded[row], scalar.data) << "row " << row;
    EXPECT_EQ(decoded[row], reference.data) << "row " << row;
    EXPECT_EQ(decoded[row], data[row]) << "row " << row;  // fault-free store
    scalar_stats.count(scalar.status);
  }
  EXPECT_EQ(stats.corrected, scalar_stats.corrected);
  EXPECT_EQ(stats.uncorrectable, scalar_stats.uncorrectable);
}

TEST(TieredScheme, EndToEndCompiledMatchesReferenceOracle) {
  const std::uint32_t rows = 48;
  const scheme_recipe recipe = make_fixture_recipe(rows, 16);

  const auto run = [&](fault_path path) {
    protected_memory memory(rows, recipe.factory(rows), recipe.regions);
    memory.set_fault_path(path);
    rng gen(23);
    memory.set_fault_map(
        sample_fault_map_exact(memory.storage_geometry(), 40, gen));
    std::vector<word_t> data(rows);
    for (std::uint32_t row = 0; row < rows; ++row) {
      data[row] = (0xABCD'0000ull + row * 2654435761ull) & word_mask(32);
    }
    memory.write_block(0, data);
    std::vector<word_t> out(rows);
    memory.read_block(0, out);
    return out;
  };

  EXPECT_EQ(run(fault_path::compiled), run(fault_path::reference));
}

/// Mixed-strength HRM with the multi-bit codes: BCH t=2 over the
/// critical head (with its own spare pool), Hsiao over the middle,
/// bare shuffle over the tail. Storage width comes from the widest
/// tier's codeword.
scheme_recipe make_multibit_recipe(std::uint32_t rows = 64) {
  geometry_spec geometry;
  geometry.rows_per_tile = rows;
  scheme_ref ref{"tiered", option_map("schemes[0]")};
  ref.options.set("0-15", "bch,t=2,spare_rows=2");
  ref.options.set("16-39", "hsiao");
  ref.options.set("40-" + std::to_string(rows - 1), "shuffle,nfm=2");
  return scheme_registry::instance().make(ref, geometry);
}

TEST(TieredScheme, MultiBitTiersReportGeometryAndGuarantees) {
  const scheme_recipe recipe = make_multibit_recipe();
  EXPECT_EQ(recipe.display_name,
            "tiered[0-15:BCH(45,32,t=2) ECC|16-39:Hsiao(39,32) ECC"
            "|40-63:nFM=2]");
  ASSERT_EQ(recipe.regions.size(), 3u);
  EXPECT_EQ(recipe.regions[0].spare_rows, 2u);
  EXPECT_EQ(recipe.regions[1].spare_rows, 0u);

  const auto scheme = recipe.factory(64);
  EXPECT_EQ(scheme->data_bits(), 32u);
  // The BCH(45,32,t=2) codeword dictates the tile's storage width.
  EXPECT_EQ(scheme->storage_bits(), 45u);

  // Correction strength routes per row: a double flip inside the BCH
  // tier's codeword is corrected, the same double in the Hsiao tier is
  // detected, and the shuffle tail passes it through.
  scheme->configure(fault_map(array_geometry{64, 45}));
  const word_t data = 0xDEAD'BEEFull;
  for (const std::uint32_t row : {std::uint32_t{3}, std::uint32_t{20},
                                  std::uint32_t{50}}) {
    const word_t two =
        flip_bit(flip_bit(scheme->encode(row, data), 1), 7);
    const read_result r = scheme->decode(row, two);
    if (row < 16) {
      EXPECT_EQ(r.status, ecc_status::corrected) << "row " << row;
      EXPECT_EQ(r.data, data) << "row " << row;
    } else if (row < 40) {
      EXPECT_EQ(r.status, ecc_status::detected_uncorrectable)
          << "row " << row;
    } else {
      EXPECT_EQ(r.data, data ^ ((word_t{1} << 1) | (word_t{1} << 7)))
          << "row " << row;
    }
  }
}

TEST(TieredScheme, MultiBitBlockPathsCrossTierBoundariesBitForBit) {
  const std::uint32_t rows = 64;
  const scheme_recipe recipe = make_multibit_recipe(rows);
  const auto scheme = recipe.factory(rows);

  rng gen(31);
  fault_map faults(array_geometry{rows, scheme->storage_bits()});
  for (int i = 0; i < 60; ++i) {
    faults.add({static_cast<std::uint32_t>(gen.uniform_below(rows)),
                static_cast<std::uint32_t>(
                    gen.uniform_below(scheme->storage_bits())),
                fault_kind::flip});
  }
  scheme->configure(faults);

  std::vector<word_t> data(rows);
  for (auto& word : data) word = gen() & word_mask(32);
  std::vector<word_t> stored(rows);
  scheme->encode_block(0, data, stored);
  for (std::uint32_t row = 0; row < rows; ++row) {
    EXPECT_EQ(stored[row], scheme->encode(row, data[row])) << "row " << row;
    EXPECT_EQ(stored[row], scheme->encode_reference(row, data[row]))
        << "row " << row;
    // Corrupt within each tier's own codeword width so every tier sees
    // single and double errors across its boundary rows.
    if (row % 2 == 0) stored[row] = flip_bit(stored[row], row % 32);
    if (row % 4 == 0) stored[row] = flip_bit(stored[row], (row + 9) % 32);
  }
  std::vector<word_t> decoded(rows);
  const block_decode_stats stats = scheme->decode_block(0, stored, decoded);
  block_decode_stats scalar_stats;
  for (std::uint32_t row = 0; row < rows; ++row) {
    const read_result scalar = scheme->decode(row, stored[row]);
    const read_result reference = scheme->decode_reference(row, stored[row]);
    EXPECT_EQ(decoded[row], scalar.data) << "row " << row;
    EXPECT_EQ(scalar.data, reference.data) << "row " << row;
    EXPECT_EQ(scalar.status, reference.status) << "row " << row;
    scalar_stats.count(scalar.status);
  }
  EXPECT_EQ(stats.corrected, scalar_stats.corrected);
  EXPECT_EQ(stats.uncorrectable, scalar_stats.uncorrectable);
}

TEST(TieredScheme, MultiBitEndToEndCompiledMatchesReferenceOracle) {
  const std::uint32_t rows = 64;
  const scheme_recipe recipe = make_multibit_recipe(rows);

  const auto run = [&](fault_path path) {
    protected_memory memory(rows, recipe.factory(rows), recipe.regions);
    memory.set_fault_path(path);
    rng gen(37);
    memory.set_fault_map(
        sample_fault_map_exact(memory.storage_geometry(), 70, gen));
    std::vector<word_t> data(rows);
    for (std::uint32_t row = 0; row < rows; ++row) {
      data[row] = (0x1357'0000ull + row * 2654435761ull) & word_mask(32);
    }
    memory.write_block(0, data);
    std::vector<word_t> out(rows);
    memory.read_block(0, out);
    return out;
  };

  EXPECT_EQ(run(fault_path::compiled), run(fault_path::reference));
}

TEST(TieredScheme, RowAwareCostRoutesAndClipsColumns) {
  const scheme_recipe recipe = make_fixture_recipe(64, 24);
  const auto scheme = recipe.factory(64);
  const auto secded = make_scheme_secded(32);
  const auto shuffle = make_scheme_shuffle(40, 32, 2);

  const std::vector<std::uint32_t> msb_pair{30, 31};
  // Row 5 lives in the SECDED tier, row 40 in the shuffle tier.
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost_at(5, msb_pair),
                   secded->worst_case_row_cost(msb_pair));
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost_at(40, msb_pair),
                   shuffle->worst_case_row_cost(msb_pair));
  // Columns beyond a tier's own storage width belong to a wider
  // sibling's geometry and cost the narrow tier nothing (two faults, so
  // the ECC tier cannot correct them away either).
  const std::vector<std::uint32_t> ecc_cols{33, 38};
  EXPECT_GT(scheme->worst_case_row_cost_at(5, ecc_cols), 0.0);
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost_at(40, ecc_cols), 0.0);
  // The row-agnostic hook stays consistent with its residual bits.
  std::vector<std::uint32_t> bits;
  scheme->residual_fault_bits(msb_pair, bits);
  double expected = 0.0;
  for (const std::uint32_t b : bits) expected += std::ldexp(1.0, 2 * b);
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost(msb_pair), expected);
}

// ------------------------------------------- per-region spare pools

TEST(ProtectedMemory, RegionSparePoolsRepairIndependently) {
  const std::uint32_t rows = 32;
  // Head region (rows 0-15) has no spares; tail (16-31) has 4.
  const std::vector<memory_region> regions{{0, 15, 0}, {16, 31, 4}};
  protected_memory memory(rows, make_scheme_none(), regions);
  EXPECT_EQ(memory.spare_rows(), 4u);
  EXPECT_EQ(memory.storage_geometry().rows, rows + 4);
  EXPECT_EQ(memory.region_spare_base(1), rows);

  fault_map faults(memory.storage_geometry());
  faults.add({3, 31, fault_kind::flip});   // head: must stay faulty
  faults.add({20, 31, fault_kind::flip});  // tail: repaired from its pool
  faults.add({21, 30, fault_kind::flip});  // tail: repaired from its pool
  memory.set_fault_map(faults);

  ASSERT_EQ(memory.row_remaps().size(), 2u);
  for (const auto& [logical, spare] : memory.row_remaps()) {
    EXPECT_GE(logical, 16u);  // the head cannot steal the tail's spares
    EXPECT_GE(spare, rows);
  }

  std::vector<word_t> data(rows);
  for (std::uint32_t row = 0; row < rows; ++row) data[row] = 0x4321'0000u + row;
  memory.write_block(0, data);
  std::vector<word_t> readback(rows);
  memory.read_block(0, readback);
  // One physical access per logical word — the energy invariant.
  EXPECT_EQ(memory.array().access_count(), 2ull * rows);
  for (std::uint32_t row = 0; row < rows; ++row) {
    if (row == 3) {
      EXPECT_NE(readback[row], data[row]);  // unrepaired MSB flip
    } else {
      EXPECT_EQ(readback[row], data[row]) << "row " << row;
    }
  }
  // Per-region analytic MSE: all residual cost sits in the head.
  EXPECT_GT(memory.analytic_mse(0, 15), 0.0);
  EXPECT_EQ(memory.analytic_mse(16, 31), 0.0);
}

TEST(ProtectedMemory, ZeroFaultMapSkipsRepairAndKeepsAccounting) {
  // Regression: spare_rows > 0 with a fault-free map used to run the
  // whole repair pass anyway.
  const std::uint32_t rows = 16;
  protected_memory memory(rows, make_scheme_secded(), /*spare_rows=*/8);
  memory.set_fault_map(fault_map(memory.storage_geometry()));
  EXPECT_TRUE(memory.row_remaps().empty());
  EXPECT_EQ(memory.analytic_mse(), 0.0);

  std::vector<word_t> data(rows, 0x0F0F'0F0Fu);
  memory.write_block(0, data);
  std::vector<word_t> readback(rows);
  memory.read_block(0, readback);
  EXPECT_EQ(readback, data);
  // Access accounting is untouched by the (skipped) repair pass: one
  // access per word per direction, nothing more.
  EXPECT_EQ(memory.array().access_count(), 2ull * rows);
}

// ------------------------------------------- region fault injector

TEST(RegionFaultInjector, RespectsPerRegionOperatingPoints) {
  // Region 0 fault-free (pcell 0), region 1 at a heavy pcell: every
  // injected fault must land in region 1's rows or region 1's spares.
  const std::vector<region_operating_point> points{
      {{0, 63, 2}, 0.0},
      {{64, 127, 2}, 0.05},
  };
  const fault_injector inject = region_fault_injector(points);
  rng gen(9);
  const array_geometry geometry{128 + 4, 32};
  std::uint64_t total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const fault_map faults = inject(geometry, gen);
    total += faults.fault_count();
    for (const fault& f : faults.all_faults()) {
      const bool in_region1_rows = f.row >= 64 && f.row < 128;
      const bool in_region1_spares = f.row >= 130 && f.row < 132;
      EXPECT_TRUE(in_region1_rows || in_region1_spares) << "row " << f.row;
    }
  }
  EXPECT_GT(total, 0u);  // 0.05 over 20 trials cannot stay empty
}

}  // namespace
}  // namespace urmem
