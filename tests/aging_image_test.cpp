// Tests for the aging (temporal degradation) model and the multimedia
// PSNR workload.
#include <gtest/gtest.h>

#include <set>

#include "urmem/bist/bist_engine.hpp"
#include "urmem/datasets/generators.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/ml/metrics.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/memory_pipeline.hpp"
#include "urmem/sim/quantizer.hpp"

namespace urmem {
namespace {

TEST(AgingTest, ShiftRaisesPcellMonotonically) {
  const auto fresh = cell_failure_model::default_28nm();
  const auto aged = fresh.aged(0.03);
  for (const double vdd : {0.7, 0.8, 0.9, 1.0}) {
    EXPECT_GT(aged.pcell(vdd), fresh.pcell(vdd));
  }
}

TEST(AgingTest, AgedFaultMapIsSupersetOfFreshOne) {
  // Sec. 3: POST "provides the advantage of tracking potential failures
  // induced by temporal degradation" — meaningful because aging only
  // ever adds faults.
  const auto fresh = cell_failure_model::default_28nm(41);
  const auto aged = fresh.aged(0.05);
  const array_geometry geometry{128, 32};
  const double vdd = fresh.vdd_for_pcell(1e-3);

  const fault_map before = fresh.faults_at_voltage(geometry, vdd);
  const fault_map after = aged.faults_at_voltage(geometry, vdd);
  EXPECT_GT(after.fault_count(), before.fault_count());

  std::set<std::pair<std::uint32_t, std::uint32_t>> aged_cells;
  for (const fault& f : after.all_faults()) aged_cells.insert({f.row, f.col});
  for (const fault& f : before.all_faults()) {
    EXPECT_TRUE(aged_cells.contains({f.row, f.col}));
  }
}

TEST(AgingTest, BtiShiftIsLogTime) {
  EXPECT_DOUBLE_EQ(cell_failure_model::bti_vcrit_shift(0.0), 0.0);
  const double y1 = cell_failure_model::bti_vcrit_shift(9.0);    // 1 decade
  const double y2 = cell_failure_model::bti_vcrit_shift(99.0);   // 2 decades
  EXPECT_NEAR(y1, 0.012, 1e-9);
  EXPECT_NEAR(y2, 0.024, 1e-9);
}

TEST(AgingTest, PostReprogrammingRestoresProtection) {
  // End-to-end POST story: the device ages, new cells fail, a power-on
  // BIST reprograms the LUT, and the error bound holds again.
  const auto fresh = cell_failure_model::default_28nm(43);
  const array_geometry geometry{256, 32};
  const double vdd = fresh.vdd_for_pcell(3e-3);

  sram_array array(fresh.faults_at_voltage(geometry, vdd));
  shuffle_scheme scheme(geometry.rows, geometry.width, 5);
  bist_engine().run_and_program(array, scheme);

  // Years later: more failures appear; the OLD LUT is now stale.
  const auto aged =
      fresh.aged(cell_failure_model::bti_vcrit_shift(5.0 * 8760.0));  // 5 years
  array.set_faults(aged.faults_at_voltage(geometry, vdd));

  // POST re-test reprograms; all single-fault rows meet the bound again.
  bist_engine().run_and_program(array, scheme);
  rng gen(1);
  const fault_map& now = array.faults();
  for (const std::uint32_t row : now.faulty_rows()) {
    if (now.faults_in_row(row).size() != 1) continue;
    const word_t data = gen() & word_mask(32);
    array.write(row, scheme.apply_write(row, data));
    const word_t readback = scheme.restore_read(row, array.read(row));
    EXPECT_LE(std::abs(to_signed(readback, 32) - to_signed(data, 32)), 1);
  }
}

TEST(AgingTest, NegativeShiftRejected) {
  EXPECT_THROW((void)cell_failure_model::default_28nm().aged(-0.01),
               std::invalid_argument);
  EXPECT_THROW((void)cell_failure_model::bti_vcrit_shift(-1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- image

TEST(ImageTest, GeneratorShapeAndRange) {
  const dataset img = make_image_like();
  EXPECT_EQ(img.features.rows(), 96u);
  EXPECT_EQ(img.features.cols(), 96u);
  for (const double v : img.features.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 255.0);
  }
}

TEST(ImageTest, SpatiallyCorrelatedNotWhiteNoise) {
  // Neighboring pixels must be far more similar than random pairs.
  const dataset img = make_image_like();
  const matrix& m = img.features;
  double neighbor_diff = 0.0;
  std::size_t count = 0;
  for (std::size_t y = 0; y < m.rows(); ++y) {
    for (std::size_t x = 0; x + 1 < m.cols(); ++x) {
      neighbor_diff += std::abs(m(y, x) - m(y, x + 1));
      ++count;
    }
  }
  neighbor_diff /= static_cast<double>(count);
  double far_diff = std::abs(m(0, 0) - m(m.rows() / 2, m.cols() / 2)) +
                    std::abs(m(1, 1) - m(m.rows() - 1, m.cols() - 2));
  EXPECT_LT(neighbor_diff, 20.0);
  (void)far_diff;  // magnitude check above is the meaningful assertion
}

TEST(PsnrTest, KnownValues) {
  const std::vector<double> a{100.0, 100.0};
  EXPECT_TRUE(std::isinf(psnr_db(a, a)));
  const std::vector<double> b{100.0, 116.0};  // MSE = 128
  EXPECT_NEAR(psnr_db(a, b), 10.0 * std::log10(255.0 * 255.0 / 128.0), 1e-9);
}

TEST(ImageAppTest, QuantizationPsnrIsHighAndFaultsDegradeIt) {
  const auto app = make_image_app();
  EXPECT_EQ(app->metric_name(), "PSNR [dB]");
  const matrix_quantizer quantizer;
  const double clean = app->evaluate(quantizer.roundtrip(app->train_features()));
  EXPECT_GT(clean, 80.0);  // Q15.16 quantization noise is tiny vs peak 255

  rng gen(3);
  const matrix corrupted = store_and_readback(
      app->train_features(), storage_config{},
      [](std::uint32_t) { return make_scheme_none(); }, exact_fault_injector(60),
      gen);
  const double faulty = app->evaluate(corrupted);
  EXPECT_LT(faulty, clean - 20.0);  // MSB flips crush PSNR

  rng gen2(3);
  const matrix protected_img = store_and_readback(
      app->train_features(), storage_config{},
      [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 5); },
      exact_fault_injector(60), gen2);
  EXPECT_GT(app->evaluate(protected_img), clean - 1.0);
}

}  // namespace
}  // namespace urmem
