// Tests for the application-level fault-injection harness: quantizer,
// tiled memory pipeline, the three applications, and the Fig. 7 quality
// experiment driver.
#include <gtest/gtest.h>

#include <cmath>

#include "urmem/sim/applications.hpp"
#include "urmem/sim/memory_pipeline.hpp"
#include "urmem/sim/quality_experiment.hpp"
#include "urmem/sim/quantizer.hpp"

namespace urmem {
namespace {

TEST(QuantizerTest, RoundTripWithinHalfLsb) {
  const matrix_quantizer quantizer;
  matrix m(3, 4);
  rng gen(1);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m(r, c) = 10.0 * gen.normal();
  }
  const matrix back = quantizer.roundtrip(m);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(back(r, c), m(r, c), quantizer.codec().resolution());
    }
  }
}

TEST(QuantizerTest, ShapeValidation) {
  const matrix_quantizer quantizer;
  const std::vector<word_t> words(6, 0);
  EXPECT_NO_THROW(quantizer.from_words(words, 2, 3));
  EXPECT_THROW(quantizer.from_words(words, 2, 4), std::invalid_argument);
}

TEST(PipelineTest, FaultFreeRoundTripAcrossTiles) {
  rng gen(2);
  matrix m(300, 20);  // 6000 words -> several tiny tiles
  for (std::size_t r = 0; r < 300; ++r) {
    for (std::size_t c = 0; c < 20; ++c) m(r, c) = gen.normal();
  }
  storage_config config;
  config.rows_per_tile = 1024;
  pipeline_stats stats;
  const matrix back = store_and_readback(
      m, config, [](std::uint32_t) { return make_scheme_none(); },
      no_fault_injector(), gen, &stats);
  EXPECT_EQ(stats.tiles, 6u);
  EXPECT_EQ(stats.injected_faults, 0u);
  EXPECT_EQ(stats.uncorrectable_words, 0u);
  for (std::size_t r = 0; r < 300; ++r) {
    for (std::size_t c = 0; c < 20; ++c) {
      EXPECT_NEAR(back(r, c), m(r, c), 1.0 / 65536.0);
    }
  }
}

TEST(PipelineTest, ExactInjectorPlacesNFaultsPerTile) {
  rng gen(3);
  matrix m(256, 16);  // 4096 words = 1 full tile of 4096 rows
  storage_config config;
  pipeline_stats stats;
  (void)store_and_readback(m, config,
                           [](std::uint32_t) { return make_scheme_none(); },
                           exact_fault_injector(37), gen, &stats);
  EXPECT_EQ(stats.tiles, 1u);
  EXPECT_EQ(stats.injected_faults, 37u);
}

TEST(PipelineTest, SecdedCorrectsAndReportsUncorrectable) {
  rng gen(4);
  matrix m(64, 4);
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m(r, c) = gen.normal();
  }
  storage_config config;
  config.rows_per_tile = 256;
  // With 300 faults over 256x39 cells, some rows will carry 2+ faults.
  pipeline_stats stats;
  const matrix back = store_and_readback(
      m, config, [](std::uint32_t) { return make_scheme_secded(); },
      exact_fault_injector(300), gen, &stats);
  EXPECT_GT(stats.uncorrectable_words, 0u);
  (void)back;
}

TEST(PipelineTest, ShuffleBoundsErrorWithOneFaultPerRow) {
  rng gen(5);
  matrix m(128, 8);
  for (std::size_t r = 0; r < 128; ++r) {
    for (std::size_t c = 0; c < 8; ++c) m(r, c) = gen.normal();
  }
  storage_config config;
  config.rows_per_tile = 1024;
  // The paper's single-fault-per-word regime: one flip in every row.
  const fault_injector one_per_row = [](const array_geometry& geometry, rng& g) {
    fault_map map(geometry);
    for (std::uint32_t row = 0; row < geometry.rows; ++row) {
      map.add({row, static_cast<std::uint32_t>(g.uniform_below(geometry.width)),
               fault_kind::flip});
    }
    return map;
  };
  const matrix back = store_and_readback(
      m, config,
      [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 5); },
      one_per_row, gen);
  // nFM=5: the residual fault error is bounded by the LSB weight 2^-16,
  // on top of the 2^-17 quantization rounding.
  for (std::size_t r = 0; r < 128; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(back(r, c), m(r, c), std::ldexp(1.0, -16) + std::ldexp(1.0, -17));
    }
  }
}

TEST(PipelineTest, WidthMismatchRejected) {
  rng gen(6);
  matrix m(4, 4);
  storage_config config;
  EXPECT_THROW(
      (void)store_and_readback(m, config,
                               [](std::uint32_t) { return make_scheme_none(16); },
                               no_fault_injector(), gen),
      std::invalid_argument);
}

// ---------------------------------------------------------- applications

TEST(ApplicationsTest, Table1Inventory) {
  const auto apps = make_all_applications();
  ASSERT_EQ(apps.size(), 3u);
  EXPECT_EQ(apps[0]->name(), "Elasticnet");
  EXPECT_EQ(apps[0]->dataset_name(), "wine-like");
  EXPECT_EQ(apps[0]->metric_name(), "R^2");
  EXPECT_EQ(apps[1]->name(), "PCA");
  EXPECT_EQ(apps[1]->metric_name(), "Explained Variance");
  EXPECT_EQ(apps[2]->name(), "KNN");
  EXPECT_EQ(apps[2]->dataset_name(), "har-like");
}

TEST(ApplicationsTest, CleanMetricsAreHealthy) {
  for (const auto& app : make_all_applications()) {
    const double metric = app->evaluate(app->train_features());
    EXPECT_GT(metric, 0.25) << app->name();
    EXPECT_LE(metric, 1.0) << app->name();
  }
}

TEST(ApplicationsTest, QuantizationBarelyMovesTheMetric) {
  const matrix_quantizer quantizer;
  for (const auto& app : make_all_applications()) {
    const double clean = app->evaluate(app->train_features());
    const double quantized = app->evaluate(quantizer.roundtrip(app->train_features()));
    EXPECT_NEAR(quantized, clean, 0.02) << app->name();
  }
}

TEST(ApplicationsTest, MsbCorruptionHurtsEachApplication) {
  // Flip the sign bit of stored feature words across all columns: every
  // application must lose quality vs its clean baseline.
  for (const auto& app : make_all_applications()) {
    const matrix& clean = app->train_features();
    const double clean_metric = app->evaluate(clean);
    matrix corrupted = clean;
    const fixed_point_codec codec(32, 16);
    for (std::size_t r = 0; r < corrupted.rows(); r += 3) {
      for (std::size_t c = 0; c < corrupted.cols(); ++c) {
        const word_t w = codec.encode(corrupted(r, c));
        corrupted(r, c) = codec.decode(flip_bit(w, 31));
      }
    }
    EXPECT_LT(app->evaluate(corrupted), clean_metric - 0.02) << app->name();
  }
}

TEST(ApplicationsTest, ShapeMismatchRejected) {
  const auto app = make_elasticnet_app();
  EXPECT_THROW((void)app->evaluate(matrix(3, 3)), std::invalid_argument);
}

// ---------------------------------------------------- quality experiment

quality_experiment_config tiny_config() {
  quality_experiment_config config;
  config.pcell = 2e-4;  // keeps Nmax small so the test is fast
  config.samples_per_count = 2;
  config.seed = 17;
  return config;
}

TEST(QualityExperimentTest, FailureCountLimitCoversTheMass) {
  quality_experiment_config config;
  config.pcell = 1e-3;  // paper's Fig. 7 point; mean ~131 per 16 KB tile
  const std::uint64_t n_max = failure_count_limit(config);
  EXPECT_GT(n_max, 131u);
  EXPECT_LT(n_max, 200u);
}

TEST(QualityExperimentTest, ProducesNormalizedCdf) {
  const auto app = make_knn_app();
  const quality_result result = run_quality_experiment(
      *app, [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 1); },
      "nFM=1", tiny_config());
  EXPECT_EQ(result.scheme_name, "nFM=1");
  EXPECT_GT(result.clean_metric, 0.5);
  EXPECT_GE(result.cdf.support().front(), 0.0);
  EXPECT_LE(result.cdf.support().back(), 1.0);
  EXPECT_DOUBLE_EQ(result.cdf.cumulative().back(), 1.0);
}

TEST(QualityExperimentTest, ShuffleOutperformsNoCorrection) {
  // The Fig. 7 ordering: the unprotected memory's low-quality quantile
  // sits well below the bit-shuffled one (Elasticnet is the most
  // fault-sensitive of the three benchmarks).
  const auto app = make_elasticnet_app();
  const auto config = tiny_config();
  const quality_result none = run_quality_experiment(
      *app, [](std::uint32_t) { return make_scheme_none(); }, "none", config);
  const quality_result shuffled = run_quality_experiment(
      *app, [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 2); },
      "nFM=2", config);
  EXPECT_LT(none.cdf.quantile(0.10), shuffled.cdf.quantile(0.10) - 0.02);
  EXPECT_GT(shuffled.cdf.quantile(0.10), 0.9);
}

}  // namespace
}  // namespace urmem
