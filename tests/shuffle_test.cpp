// Tests for the bit-shuffling scheme: Eqs. (1)-(2), the paper's worked
// examples, rotation round trips, the 2^(S-1) residual-error bound
// (Fig. 4), and multi-fault shift policies.
#include <gtest/gtest.h>

#include <cmath>

#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/memory/sram_array.hpp"
#include "urmem/shuffle/bit_shuffler.hpp"
#include "urmem/shuffle/fm_lut.hpp"
#include "urmem/shuffle/shift_policy.hpp"
#include "urmem/shuffle/shuffle_scheme.hpp"

namespace urmem {
namespace {

TEST(BitShufflerTest, SegmentSizeEquationOne) {
  // S = W / 2^nFM (Eq. 1) for the paper's 32-bit word.
  EXPECT_EQ(bit_shuffler(32, 1).segment_size(), 16u);
  EXPECT_EQ(bit_shuffler(32, 2).segment_size(), 8u);
  EXPECT_EQ(bit_shuffler(32, 3).segment_size(), 4u);
  EXPECT_EQ(bit_shuffler(32, 4).segment_size(), 2u);
  EXPECT_EQ(bit_shuffler(32, 5).segment_size(), 1u);
  EXPECT_EQ(bit_shuffler(64, 6).segment_size(), 1u);
}

TEST(BitShufflerTest, ShiftAmountEquationTwo) {
  // T = S * (2^nFM - xFM) mod W (Eq. 2).
  const bit_shuffler s(32, 5);
  EXPECT_EQ(s.shift_amount(0), 0u);   // fault-free row: no rotation
  EXPECT_EQ(s.shift_amount(3), 29u);  // paper's bottom-row example
  EXPECT_EQ(s.shift_amount(31), 1u);
}

TEST(BitShufflerTest, PaperWorkedExampleBottomRow) {
  // "with W=32 and nFM=5, the bottom word has a failure in its third
  // bit. Therefore, T(bottom row)=29, and the data word is circularly
  // shifted right by 29 positions, such that the LSB is stored in the
  // faulty position."
  const bit_shuffler s(32, 5);
  const unsigned faulty_col = 3;
  const unsigned xfm = s.segment_of(faulty_col);
  EXPECT_EQ(xfm, 3u);
  EXPECT_EQ(s.shift_amount(xfm), 29u);
  // After the rotate-right, the logical LSB sits in the faulty column.
  const word_t stored = s.apply(word_t{1}, xfm);  // data with only the LSB set
  EXPECT_TRUE(get_bit(stored, faulty_col));
  // A fault there corrupts only logical bit 0.
  EXPECT_EQ(s.logical_position(faulty_col, xfm), 0u);
}

TEST(BitShufflerTest, PaperWorkedExampleTopRow) {
  // "the LSB ... of the top word is ... stored in bit-position 31"
  // for a fault in bit position 31 with nFM=5.
  const bit_shuffler s(32, 5);
  const unsigned xfm = s.segment_of(31);
  EXPECT_EQ(xfm, 31u);
  const word_t stored = s.apply(word_t{1}, xfm);
  EXPECT_TRUE(get_bit(stored, 31));
  EXPECT_EQ(s.logical_position(31, xfm), 0u);
}

TEST(BitShufflerTest, MaxErrorMagnitudeBound) {
  // Worst case error 2^(S-1) (Sec. 3 / Fig. 4 envelope).
  EXPECT_DOUBLE_EQ(bit_shuffler(32, 1).max_error_magnitude(), 32768.0);  // 2^15
  EXPECT_DOUBLE_EQ(bit_shuffler(32, 2).max_error_magnitude(), 128.0);    // 2^7
  EXPECT_DOUBLE_EQ(bit_shuffler(32, 3).max_error_magnitude(), 8.0);      // 2^3
  EXPECT_DOUBLE_EQ(bit_shuffler(32, 4).max_error_magnitude(), 2.0);      // 2^1
  EXPECT_DOUBLE_EQ(bit_shuffler(32, 5).max_error_magnitude(), 1.0);      // 2^0
}

TEST(BitShufflerTest, RejectsBadParameters) {
  EXPECT_THROW(bit_shuffler(33, 1), std::invalid_argument);  // not a power of 2
  EXPECT_THROW(bit_shuffler(32, 0), std::invalid_argument);
  EXPECT_THROW(bit_shuffler(32, 6), std::invalid_argument);
  EXPECT_NO_THROW(bit_shuffler(64, 6));
}

/// Property sweep: restore(apply(x)) == x for every (width, nFM, xfm).
struct shuffle_params {
  unsigned width;
  unsigned n_fm;
};

class ShuffleRoundTrip : public ::testing::TestWithParam<shuffle_params> {};

TEST_P(ShuffleRoundTrip, RestoreUndoesApply) {
  const auto [width, n_fm] = GetParam();
  const bit_shuffler s(width, n_fm);
  rng gen(width * 8 + n_fm);
  for (unsigned xfm = 0; xfm < s.segment_count(); ++xfm) {
    for (int trial = 0; trial < 4; ++trial) {
      const word_t data = gen() & word_mask(width);
      EXPECT_EQ(s.restore(s.apply(data, xfm), xfm), data)
          << "xfm=" << xfm << " width=" << width << " nfm=" << n_fm;
    }
  }
}

TEST_P(ShuffleRoundTrip, SingleFaultResidualErrorWithinBound) {
  // With one fault per row and the paper's programming rule, the
  // post-restore logical fault position stays inside the LSB segment.
  const auto [width, n_fm] = GetParam();
  const bit_shuffler s(width, n_fm);
  for (unsigned col = 0; col < width; ++col) {
    const unsigned xfm = s.segment_of(col);
    const unsigned logical = s.logical_position(col, xfm);
    EXPECT_LT(logical, s.segment_size()) << "col=" << col;
    EXPECT_LE(std::ldexp(1.0, static_cast<int>(logical)),
              s.max_error_magnitude());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ShuffleRoundTrip,
    ::testing::Values(shuffle_params{8, 1}, shuffle_params{8, 3},
                      shuffle_params{16, 2}, shuffle_params{32, 1},
                      shuffle_params{32, 2}, shuffle_params{32, 3},
                      shuffle_params{32, 4}, shuffle_params{32, 5},
                      shuffle_params{64, 1}, shuffle_params{64, 6}));

// ---------------------------------------------------------------------
// FM-LUT

TEST(FmLutTest, DefaultsToZeroAndStoresEntries) {
  fm_lut lut(16, 3);
  EXPECT_EQ(lut.get(7), 0u);
  lut.set(7, 5);
  EXPECT_EQ(lut.get(7), 5u);
  EXPECT_EQ(lut.nonzero_entries(), 1u);
  lut.clear();
  EXPECT_EQ(lut.nonzero_entries(), 0u);
}

TEST(FmLutTest, StorageBitsMatchesGeometry) {
  EXPECT_EQ(fm_lut(4096, 5).storage_bits(), 4096u * 5u);
  EXPECT_EQ(fm_lut(4096, 1).storage_bits(), 4096u);
}

TEST(FmLutTest, RejectsOutOfRange) {
  fm_lut lut(4, 2);
  EXPECT_THROW(lut.set(0, 4), std::invalid_argument);
  EXPECT_THROW(lut.set(4, 0), std::invalid_argument);
  EXPECT_THROW((void)lut.get(4), std::invalid_argument);
  EXPECT_THROW(fm_lut(0, 2), std::invalid_argument);
  EXPECT_THROW(fm_lut(4, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Shift policy

TEST(ShiftPolicyTest, SingleFaultMatchesPaperFormula) {
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    const bit_shuffler s(32, n_fm);
    for (std::uint32_t col = 0; col < 32; ++col) {
      const std::uint32_t cols[] = {col};
      EXPECT_EQ(choose_xfm(s, cols), s.segment_of(col))
          << "col=" << col << " nfm=" << n_fm;
    }
  }
}

TEST(ShiftPolicyTest, EmptyRowGetsZero) {
  const bit_shuffler s(32, 3);
  EXPECT_EQ(choose_xfm(s, {}), 0u);
}

TEST(ShiftPolicyTest, MinMseNeverWorseThanFirstFault) {
  rng gen(21);
  const bit_shuffler s(32, 3);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint32_t> cols;
    const unsigned k = 2 + static_cast<unsigned>(gen.uniform_below(3));
    for (unsigned i = 0; i < k; ++i) {
      cols.push_back(static_cast<std::uint32_t>(gen.uniform_below(32)));
    }
    const double best = shift_cost(s, cols, choose_xfm(s, cols));
    const double naive =
        shift_cost(s, cols, choose_xfm(s, cols, shift_policy::first_fault));
    EXPECT_LE(best, naive);
  }
}

TEST(ShiftPolicyTest, CostIsSumOfSquaredMagnitudes) {
  const bit_shuffler s(32, 5);
  const std::uint32_t cols[] = {3, 17};
  // With xfm = 0 (no shift) the logical positions equal the columns.
  EXPECT_DOUBLE_EQ(shift_cost(s, cols, 0),
                   std::ldexp(1.0, 6) + std::ldexp(1.0, 34));
}

// ---------------------------------------------------------------------
// shuffle_scheme end to end

TEST(ShuffleSchemeTest, ProgramFromFaultMapAndProtect) {
  const std::uint32_t rows = 64;
  shuffle_scheme scheme(rows, 32, 5);
  fault_map faults({rows, 32});
  faults.add({10, 31, fault_kind::flip});
  faults.add({20, 3, fault_kind::flip});
  scheme.program(faults);

  EXPECT_EQ(scheme.lut().get(10), 31u);
  EXPECT_EQ(scheme.lut().get(20), 3u);
  EXPECT_EQ(scheme.lut().get(0), 0u);
  EXPECT_EQ(scheme.shift_for_row(20), 29u);  // the paper's T = 29

  // Functional check: store through a faulty array; the residual error
  // must be exactly the LSB for nFM = 5.
  sram_array array(faults);
  const word_t data = 0xFFFFFFFFULL;
  array.write(10, scheme.apply_write(10, data));
  const word_t readback = scheme.restore_read(10, array.read(10));
  EXPECT_EQ(readback ^ data, 1ULL);  // only logical bit 0 differs
}

TEST(ShuffleSchemeTest, FaultFreeRowsPassThrough) {
  shuffle_scheme scheme(8, 32, 2);
  scheme.program(fault_map({8, 32}));
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_EQ(scheme.shift_for_row(r), 0u);
    EXPECT_EQ(scheme.apply_write(r, 0xABCD1234ULL), 0xABCD1234ULL);
  }
}

TEST(ShuffleSchemeTest, ResidualBoundHoldsUnderRandomSingleFaults) {
  rng gen(33);
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    const std::uint32_t rows = 256;
    shuffle_scheme scheme(rows, 32, n_fm);
    // One fault per row at a random column.
    fault_map faults({rows, 32});
    for (std::uint32_t r = 0; r < rows; ++r) {
      faults.add({r, static_cast<std::uint32_t>(gen.uniform_below(32)),
                  fault_kind::flip});
    }
    scheme.program(faults);
    sram_array array(faults);
    const double bound = scheme.shuffler().max_error_magnitude();
    for (std::uint32_t r = 0; r < rows; ++r) {
      const word_t data = gen() & word_mask(32);
      array.write(r, scheme.apply_write(r, data));
      const word_t readback = scheme.restore_read(r, array.read(r));
      const auto error = static_cast<double>(std::abs(
          to_signed(readback, 32) - to_signed(data, 32)));
      EXPECT_LE(error, bound) << "nfm=" << n_fm << " row=" << r;
    }
  }
}

TEST(ShuffleSchemeTest, LutOnlyConsidersDataColumns) {
  // A fault map wider than the data word (e.g. storage with parity
  // columns) must not confuse the LUT programmer.
  shuffle_scheme scheme(4, 32, 5);
  fault_map faults({4, 40});
  faults.add({1, 35, fault_kind::flip});  // beyond the 32 data columns
  scheme.program(faults);
  EXPECT_EQ(scheme.lut().get(1), 0u);
}

TEST(ShuffleSchemeTest, RowCountMismatchRejected) {
  shuffle_scheme scheme(4, 32, 1);
  EXPECT_THROW(scheme.program(fault_map({8, 32})), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
