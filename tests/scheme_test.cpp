// Tests for the uniform protection-scheme interface and the protected
// memory controller: storage layouts, functional fault handling, and
// the Eq. (6) row-cost hooks the yield analysis relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scheme/protected_memory.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace urmem {
namespace {

TEST(SchemeTest, StorageWidthsMatchPaper) {
  EXPECT_EQ(make_scheme_none()->storage_bits(), 32u);
  EXPECT_EQ(make_scheme_secded()->storage_bits(), 39u);
  EXPECT_EQ(make_scheme_pecc()->storage_bits(), 38u);
  EXPECT_EQ(make_scheme_shuffle(4096, 32, 3)->storage_bits(), 32u);
  EXPECT_EQ(make_scheme_shuffle(4096, 32, 3)->lut_bits_per_row(), 3u);
  EXPECT_EQ(make_scheme_none()->lut_bits_per_row(), 0u);
}

TEST(SchemeTest, NamesForBenchTables) {
  EXPECT_EQ(make_scheme_none()->name(), "no-correction");
  EXPECT_EQ(make_scheme_secded()->name(), "H(39,32) ECC");
  EXPECT_EQ(make_scheme_pecc()->name(), "H(22,16) P-ECC");
  EXPECT_EQ(make_scheme_shuffle(16, 32, 2)->name(), "nFM=2");
}

TEST(SchemeTest, FaultFreeRoundTripForAllSchemes) {
  rng gen(50);
  const std::uint32_t rows = 16;
  std::vector<std::unique_ptr<protection_scheme>> schemes;
  schemes.push_back(make_scheme_none());
  schemes.push_back(make_scheme_secded());
  schemes.push_back(make_scheme_pecc());
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    schemes.push_back(make_scheme_shuffle(rows, 32, n_fm));
  }
  for (auto& scheme : schemes) {
    scheme->configure(fault_map({rows, scheme->storage_bits()}));
    for (std::uint32_t r = 0; r < rows; ++r) {
      const word_t data = gen() & word_mask(32);
      const read_result res = scheme->decode(r, scheme->encode(r, data));
      EXPECT_EQ(res.data, data) << scheme->name();
      EXPECT_EQ(res.status, ecc_status::clean) << scheme->name();
    }
  }
}

TEST(ProtectedMemoryTest, SecdedCorrectsSingleFaultPerRow) {
  rng gen(51);
  protected_memory memory(64, make_scheme_secded());
  fault_map faults(memory.storage_geometry());
  for (std::uint32_t r = 0; r < 64; ++r) {
    faults.add({r, static_cast<std::uint32_t>(gen.uniform_below(39)),
                fault_kind::flip});
  }
  memory.set_fault_map(std::move(faults));
  for (std::uint32_t r = 0; r < 64; ++r) {
    const word_t data = gen() & word_mask(32);
    memory.write(r, data);
    const read_result res = memory.read(r);
    EXPECT_EQ(res.data, data);
    EXPECT_EQ(res.status, ecc_status::corrected);
  }
  EXPECT_DOUBLE_EQ(memory.analytic_mse(), 0.0);
}

TEST(ProtectedMemoryTest, SecdedDetectsDoubleFault) {
  protected_memory memory(4, make_scheme_secded());
  fault_map faults(memory.storage_geometry());
  faults.add({2, 5, fault_kind::flip});
  faults.add({2, 20, fault_kind::flip});
  memory.set_fault_map(std::move(faults));
  memory.write(2, 0x0);
  EXPECT_EQ(memory.read(2).status, ecc_status::detected_uncorrectable);
}

TEST(ProtectedMemoryTest, PeccShieldsMsbExposesLsb) {
  protected_memory memory(8, make_scheme_pecc());
  fault_map faults(memory.storage_geometry());
  faults.add({0, 37, fault_kind::flip});  // inside the H(22,16) codeword
  faults.add({1, 7, fault_kind::flip});   // unprotected low half
  memory.set_fault_map(std::move(faults));

  memory.write(0, 0xFFFF0000ULL);
  EXPECT_EQ(memory.read(0).data, 0xFFFF0000ULL);  // corrected

  memory.write(1, 0x0);
  EXPECT_EQ(memory.read(1).data, 0x80ULL);  // bit 7 corrupted, tolerated
}

TEST(ProtectedMemoryTest, ShuffleReconfiguresOnFaultMapInstall) {
  rng gen(52);
  protected_memory memory(128, make_scheme_shuffle(128, 32, 5));
  fault_map faults(memory.storage_geometry());
  for (std::uint32_t r = 0; r < 128; ++r) {
    faults.add({r, static_cast<std::uint32_t>(gen.uniform_below(32)),
                fault_kind::flip});
  }
  memory.set_fault_map(std::move(faults));
  for (std::uint32_t r = 0; r < 128; ++r) {
    const word_t data = gen() & word_mask(32);
    memory.write(r, data);
    // nFM = 5: a single fault can only touch the logical LSB.
    EXPECT_LE(memory.read(r).data ^ data, 1ULL);
  }
  // Eq. 6: every row contributes at most (2^0)^2.
  EXPECT_LE(memory.analytic_mse(), 1.0);
}

// ---------------------------------------------------------------------
// Eq. (6) worst-case row costs

TEST(RowCostTest, NoneSumsSquaredMagnitudes) {
  const auto scheme = make_scheme_none();
  const std::uint32_t cols[] = {0, 10, 31};
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost(cols),
                   1.0 + std::ldexp(1.0, 20) + std::ldexp(1.0, 62));
}

TEST(RowCostTest, SecdedZeroForSingleNonzeroForDouble) {
  const auto scheme = make_scheme_secded();
  const std::uint32_t one[] = {20};
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost(one), 0.0);
  const std::uint32_t two[] = {3, 20};  // both data columns
  EXPECT_GT(scheme->worst_case_row_cost(two), 0.0);
}

TEST(RowCostTest, SecdedCheckColumnsAreFree) {
  const auto scheme = make_scheme_secded();
  // Columns 0,1,2,4 are check columns of H(39,32): even two faults
  // there leave the data bits untouched.
  const std::uint32_t checks[] = {0, 1};
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost(checks), 0.0);
}

TEST(RowCostTest, PeccSplitsRegions) {
  const auto scheme = make_scheme_pecc();
  const std::uint32_t lsb[] = {5};
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost(lsb), std::ldexp(1.0, 10));
  const std::uint32_t msb_single[] = {25};
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost(msb_single), 0.0);
  const std::uint32_t mixed[] = {5, 25};  // LSB exposed, MSB corrected
  EXPECT_DOUBLE_EQ(scheme->worst_case_row_cost(mixed), std::ldexp(1.0, 10));
}

TEST(RowCostTest, PeccDoubleMsbFaultIsExpensive) {
  const auto scheme = make_scheme_pecc();
  // Two faults inside the codeword region on data columns.
  const priority_ecc codec;
  std::vector<std::uint32_t> cols;
  for (unsigned col = 16; col < 38 && cols.size() < 2; ++col) {
    if (codec.data_bit_at_column(col) >= 16) cols.push_back(col);
  }
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_GE(scheme->worst_case_row_cost(cols), std::ldexp(1.0, 32));
}

TEST(RowCostTest, ShuffleBoundedBySegmentSize) {
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    const auto scheme = make_scheme_shuffle(16, 32, n_fm);
    const unsigned segment = 32u >> n_fm;
    for (std::uint32_t col = 0; col < 32; ++col) {
      const std::uint32_t cols[] = {col};
      EXPECT_LE(scheme->worst_case_row_cost(cols),
                std::ldexp(1.0, 2 * static_cast<int>(segment - 1)) + 1e-9);
    }
  }
}

TEST(RowCostTest, SchemeOrderingUnderSingleFault) {
  // For a single MSB fault: ECC = 0 <= shuffle(nFM=5) = 1 << pecc-LSB
  // cases << none.
  const std::uint32_t msb[] = {31};
  EXPECT_DOUBLE_EQ(make_scheme_secded()->worst_case_row_cost(msb), 0.0);
  EXPECT_DOUBLE_EQ(make_scheme_shuffle(4, 32, 5)->worst_case_row_cost(msb), 1.0);
  EXPECT_DOUBLE_EQ(make_scheme_none()->worst_case_row_cost(msb),
                   std::ldexp(1.0, 62));
}

TEST(AnalyticMseTest, MatchesHandComputedExample) {
  // Eq. 6 on a 4-row unprotected memory with faults at bits 2 and 10.
  const auto scheme = make_scheme_none();
  fault_map faults({4, 32});
  faults.add({0, 2, fault_kind::flip});
  faults.add({3, 10, fault_kind::flip});
  const double expected = (std::ldexp(1.0, 4) + std::ldexp(1.0, 20)) / 4.0;
  EXPECT_DOUBLE_EQ(analytic_mse(*scheme, faults), expected);
}

TEST(AnalyticMseTest, ProtectedMemoryAgreesWithFreeFunction) {
  rng gen(53);
  auto scheme_for_memory = make_scheme_pecc();
  const auto* scheme_view = scheme_for_memory.get();
  protected_memory memory(256, std::move(scheme_for_memory));
  fault_map faults = sample_fault_map_exact(memory.storage_geometry(), 40, gen);
  const double direct = analytic_mse(*scheme_view, faults);
  memory.set_fault_map(std::move(faults));
  EXPECT_DOUBLE_EQ(memory.analytic_mse(), direct);
}

}  // namespace
}  // namespace urmem
