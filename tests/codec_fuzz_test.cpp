// Registry-driven differential codec fuzzer.
//
// Random-walks valid scenario_spec scheme points — compact recipe
// strings (leaf, stacked, tiered) x word width x fault density — and
// for each point runs the compiled block codec against the scalar and
// reference walks on a randomly sampled fault map and random data,
// asserting bit-identity of data and status on every row.
//
// The walk is seeded (named_stream_rng), so a failing iteration
// reproduces from its index alone. The default budget keeps the suite
// in tier-1 time; CI's deep run raises it via URMEM_FUZZ_ITERS.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_map.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/scenario/scheme_registry.hpp"

namespace urmem {
namespace {

/// One fuzzable recipe family: the compact spec and the widths it
/// admits (shuffle designs need power-of-two words; BCH caps d by t).
struct fuzz_family {
  std::string spec;
  std::vector<unsigned> widths;
};

const std::vector<fuzz_family>& families() {
  static const std::vector<fuzz_family> table = {
      {"none", {8, 16, 32, 57}},
      {"secded", {8, 16, 32, 57}},
      {"hsiao", {8, 16, 32, 57}},
      {"bch:t=1", {8, 16, 32, 57}},
      {"bch:t=2", {8, 16, 32, 48}},
      {"bch:t=3", {8, 16, 32}},
      {"pecc", {8, 16, 32}},
      {"shuffle:nfm=1", {8, 16, 32}},
      {"shuffle:nfm=2", {8, 16, 32}},
      {"shuffle+secded:nfm=1", {8, 16, 32}},
      {"shuffle+pecc:nfm=2", {16, 32}},
  };
  return table;
}

/// Tiered recipes are synthesized per draw so tier boundaries, tier
/// schemes and spare pools all vary; ranges always cover the tile.
std::string random_tiered_spec(std::uint32_t rows, rng& gen) {
  const std::vector<std::string> tiers = {"secded", "hsiao", "bch,t=2",
                                          "shuffle,nfm=2", "none"};
  const std::uint32_t split = 1 + static_cast<std::uint32_t>(
                                      gen.uniform_below(rows - 1));
  const std::string low = tiers[gen.uniform_below(tiers.size())];
  std::string high = tiers[gen.uniform_below(tiers.size())];
  if (high == low) high = (low == "hsiao") ? "bch,t=1" : "hsiao";
  // Streamed (not operator+ chained) to dodge a GCC 12 -Wrestrict
  // false positive under -Werror.
  std::ostringstream spec;
  spec << "tiered:0-" << (split - 1) << '=' << low;
  if (split > 2 && gen.uniform_below(2) == 0) spec << ",spare_rows=2";
  spec << ':' << split << '-' << (rows - 1) << '=' << high;
  return spec.str();
}

std::uint64_t fuzz_iterations() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test setup;
  // gtest runs the body after main() and nothing calls setenv.
  if (const char* env = std::getenv("URMEM_FUZZ_ITERS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 150;  // tier-1 budget; CI's deep job raises it
}

TEST(CodecFuzz, BlockMatchesReferenceOnRandomScenarioPoints) {
  const std::uint64_t iterations = fuzz_iterations();
  const std::uint64_t seed = 20260808;
  for (std::uint64_t iter = 0; iter < iterations; ++iter) {
    rng gen = make_stream_rng(seed, iter);

    // -- draw one valid scenario point ------------------------------
    const std::uint32_t rows = 8u << gen.uniform_below(3);  // 8/16/32
    std::string spec;
    unsigned width = 0;
    if (gen.uniform_below(5) == 0) {  // every ~5th point is tiered
      spec = random_tiered_spec(rows, gen);
      width = 32;
    } else {
      const fuzz_family& family =
          families()[gen.uniform_below(families().size())];
      spec = family.spec;
      width = family.widths[gen.uniform_below(family.widths.size())];
    }
    const double density = 0.002 * static_cast<double>(1 + gen.uniform_below(25));
    const std::string point = "iter " + std::to_string(iter) + ": " + spec +
                              " w=" + std::to_string(width) +
                              " rows=" + std::to_string(rows) +
                              " density=" + std::to_string(density);

    // -- resolve it through the scheme registry ---------------------
    const scheme_ref ref = parse_compact_scheme(spec, "schemes");
    geometry_spec geometry;
    geometry.word_bits = width;
    geometry.rows_per_tile = rows;
    const scheme_recipe recipe =
        scheme_registry::instance().make(ref, geometry);
    const auto scheme = recipe.factory(rows);
    const unsigned storage = scheme->storage_bits();
    ASSERT_EQ(scheme->data_bits(), width) << point;

    // -- sample a fault map and program the scheme with it ----------
    fault_map faults(array_geometry{rows, storage});
    std::vector<word_t> row_fault_mask(rows, 0);
    for (std::uint32_t row = 0; row < rows; ++row) {
      for (std::uint32_t col = 0; col < storage; ++col) {
        if (gen.uniform() < density) {
          faults.add({row, col, fault_kind::flip});
          row_fault_mask[row] |= word_t{1} << col;
        }
      }
    }
    scheme->configure(faults);

    // -- differential run: block vs scalar vs reference -------------
    std::vector<word_t> data(rows);
    for (word_t& value : data) value = gen() & word_mask(width);
    std::vector<word_t> encoded(rows);
    scheme->encode_block(0, data, encoded);
    std::vector<word_t> corrupted(rows);
    for (std::uint32_t row = 0; row < rows; ++row) {
      ASSERT_EQ(encoded[row], scheme->encode(row, data[row])) << point;
      ASSERT_EQ(encoded[row], scheme->encode_reference(row, data[row]))
          << point;
      corrupted[row] = encoded[row] ^ row_fault_mask[row];
    }
    std::vector<word_t> decoded(rows);
    const block_decode_stats stats =
        scheme->decode_block(0, corrupted, decoded);
    block_decode_stats expected_stats;
    for (std::uint32_t row = 0; row < rows; ++row) {
      const read_result scalar = scheme->decode(row, corrupted[row]);
      const read_result reference =
          scheme->decode_reference(row, corrupted[row]);
      expected_stats.count(scalar.status);
      ASSERT_EQ(decoded[row], scalar.data) << point << " row " << row;
      ASSERT_EQ(scalar.data, reference.data) << point << " row " << row;
      ASSERT_EQ(scalar.status, reference.status) << point << " row " << row;
    }
    EXPECT_EQ(stats.corrected, expected_stats.corrected) << point;
    EXPECT_EQ(stats.uncorrectable, expected_stats.uncorrectable) << point;
  }
}

/// In-place block decode (out aliasing in) through every family once.
TEST(CodecFuzz, InPlaceDecodeMatchesOutOfPlace) {
  const std::uint64_t seed = 77;
  std::uint64_t iter = 0;
  for (const fuzz_family& family : families()) {
    rng gen = make_stream_rng(seed, iter++);
    const unsigned width = family.widths.back();
    const std::uint32_t rows = 16;
    const scheme_ref ref = parse_compact_scheme(family.spec, "schemes");
    geometry_spec geometry;
    geometry.word_bits = width;
    geometry.rows_per_tile = rows;
    const auto scheme =
        scheme_registry::instance().make(ref, geometry).factory(rows);

    fault_map faults(array_geometry{rows, scheme->storage_bits()});
    for (std::uint32_t row = 0; row < rows; row += 3) {
      faults.add({row, static_cast<std::uint32_t>(
                           gen.uniform_below(scheme->storage_bits())),
                  fault_kind::flip});
    }
    scheme->configure(faults);

    std::vector<word_t> data(rows);
    for (word_t& value : data) value = gen() & word_mask(width);
    std::vector<word_t> stored(rows);
    scheme->encode_block(0, data, stored);
    std::vector<word_t> out(rows);
    scheme->decode_block(0, stored, out);
    std::vector<word_t> in_place = stored;
    scheme->decode_block(0, in_place, in_place);
    EXPECT_EQ(in_place, out) << family.spec;
  }
}

}  // namespace
}  // namespace urmem
