// Tests for the deterministic RNG infrastructure.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/common/stats.hpp"

namespace urmem {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  rng gen(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = gen.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(RngTest, UniformBelowRespectsBound) {
  rng gen(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = gen.uniform_below(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 5000, 350);  // ~5 sigma of the binomial spread
  }
}

TEST(RngTest, UniformBelowOneIsAlwaysZero) {
  rng gen(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(gen.uniform_below(1), 0u);
}

TEST(RngTest, NormalMomentsMatchStandardNormal) {
  rng gen(5);
  std::vector<double> samples(40000);
  for (double& s : samples) s = gen.normal();
  EXPECT_NEAR(mean(samples), 0.0, 0.02);
  EXPECT_NEAR(stddev(samples), 1.0, 0.02);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  const rng base(99);
  rng s1 = base.split(1);
  rng s1_again = base.split(1);
  rng s2 = base.split(2);
  EXPECT_EQ(s1(), s1_again());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (s1() == s2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(CellHashTest, DeterministicPerIndex) {
  const cell_hash h(42);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(h.bits(i), h.bits(i));
    EXPECT_EQ(h.uniform(i), h.uniform(i));
  }
}

TEST(CellHashTest, UniformsAreInOpenUnitInterval) {
  const cell_hash h(17);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = h.uniform(i);
    ASSERT_GT(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(CellHashTest, DifferentSeedsGiveDifferentFields) {
  const cell_hash a(1);
  const cell_hash b(2);
  int equal = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (a.bits(i) == b.bits(i)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(CellHashTest, MeanOfUniformsIsHalf) {
  const cell_hash h(1234);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += h.uniform(static_cast<std::uint64_t>(i));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitmixTest, KnownFixedPointFreeAndDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), 0u);
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

}  // namespace
}  // namespace urmem
