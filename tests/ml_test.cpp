// Tests for the native ML library: matrix algebra, preprocessing,
// metrics, and the three benchmark algorithms of Table 1.
#include <gtest/gtest.h>

#include <cmath>

#include "urmem/common/rng.hpp"
#include "urmem/common/stats.hpp"
#include "urmem/ml/elasticnet.hpp"
#include "urmem/ml/knn.hpp"
#include "urmem/ml/matrix.hpp"
#include "urmem/ml/metrics.hpp"
#include "urmem/ml/pca.hpp"
#include "urmem/ml/preprocessing.hpp"

namespace urmem {
namespace {

// ---------------------------------------------------------------- matrix

TEST(MatrixTest, ConstructionAndAccess) {
  matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 4.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_EQ(m.row(1).size(), 3u);
  EXPECT_DOUBLE_EQ(m.col(2)[1], 4.0);
}

TEST(MatrixTest, MatmulKnownProduct) {
  matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, TransposeInvolution) {
  matrix a(2, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = static_cast<double>(r * 3 + c);
  }
  const matrix att = transpose(transpose(a));
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
  }
}

TEST(MatrixTest, CovarianceOfKnownData) {
  // Two perfectly anticorrelated columns.
  matrix x(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = -static_cast<double>(i);
  }
  const matrix cov = covariance(x);
  EXPECT_NEAR(cov(0, 0), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), -5.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 5.0 / 3.0, 1e-12);
}

TEST(MatrixTest, MatmulDimensionMismatchRejected) {
  EXPECT_THROW(matmul(matrix(2, 3), matrix(2, 3)), std::invalid_argument);
}

// --------------------------------------------------------- preprocessing

TEST(ScalerTest, StandardizesToZeroMeanUnitVariance) {
  rng gen(1);
  matrix x(200, 3);
  for (std::size_t r = 0; r < 200; ++r) {
    x(r, 0) = 5.0 + 2.0 * gen.normal();
    x(r, 1) = -3.0 + 0.5 * gen.normal();
    x(r, 2) = 100.0 + 10.0 * gen.normal();
  }
  standard_scaler scaler;
  const matrix z = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 3; ++c) {
    const auto col = z.col(c);
    EXPECT_NEAR(mean(col), 0.0, 1e-10);
    EXPECT_NEAR(stddev(col), 1.0, 0.01);
  }
}

TEST(ScalerTest, ConstantColumnHandled) {
  matrix x(10, 1, 7.0);
  standard_scaler scaler;
  const matrix z = scaler.fit_transform(x);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
}

TEST(SplitTest, SizesAndDisjointness) {
  rng gen(2);
  const split_indices split = train_test_split(100, 0.2, gen);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 80u);
  std::vector<bool> seen(100, false);
  for (const auto i : split.train) seen[i] = true;
  for (const auto i : split.test) {
    EXPECT_FALSE(seen[i]) << "index " << i << " in both partitions";
    seen[i] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, R2KnownValues) {
  const std::vector<double> truth{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r2_score(truth, truth), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_DOUBLE_EQ(r2_score(truth, mean_pred), 0.0);
}

TEST(MetricsTest, MseAndAccuracy) {
  EXPECT_DOUBLE_EQ(
      mean_squared_error(std::vector<double>{1, 2}, std::vector<double>{2, 4}),
      2.5);
  EXPECT_DOUBLE_EQ(
      accuracy_score(std::vector<int>{1, 2, 3, 4}, std::vector<int>{1, 2, 0, 4}),
      0.75);
}

// ------------------------------------------------------------- elasticnet

TEST(ElasticnetTest, RecoversLinearModelWithoutRegularization) {
  rng gen(3);
  matrix x(300, 3);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = gen.normal();
    y[i] = 2.0 * x(i, 0) - 1.5 * x(i, 1) + 0.5 + 0.001 * gen.normal();
  }
  elasticnet model({.alpha = 0.0, .l1_ratio = 0.5, .max_iter = 2000, .tol = 1e-10});
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 0.01);
  EXPECT_NEAR(model.coefficients()[1], -1.5, 0.01);
  EXPECT_NEAR(model.coefficients()[2], 0.0, 0.01);
  EXPECT_NEAR(model.intercept(), 0.5, 0.01);
}

TEST(ElasticnetTest, StrongL1DrivesCoefficientsToZero) {
  rng gen(4);
  matrix x(100, 4);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = gen.normal();
    y[i] = 0.1 * x(i, 0) + gen.normal() * 0.1;
  }
  elasticnet model({.alpha = 10.0, .l1_ratio = 1.0});
  model.fit(x, y);
  for (const double w : model.coefficients()) EXPECT_DOUBLE_EQ(w, 0.0);
  // Prediction falls back to the intercept = mean(y).
  const auto pred = model.predict(x);
  EXPECT_NEAR(pred[0], model.intercept(), 1e-12);
}

TEST(ElasticnetTest, RidgeLimitMatchesClosedFormSingleFeature) {
  // For one centered feature: w = rho / (z + alpha) with l1_ratio = 0.
  matrix x(4, 1);
  x(0, 0) = -1.5; x(1, 0) = -0.5; x(2, 0) = 0.5; x(3, 0) = 1.5;
  const std::vector<double> y{-3.0, -1.0, 1.0, 3.0};  // slope 2, centered
  const double z = (2 * 1.5 * 1.5 + 2 * 0.5 * 0.5) / 4.0;  // 1.25
  const double rho = z * 2.0;                               // cov with y
  const double alpha = 0.5;
  elasticnet model({.alpha = alpha, .l1_ratio = 0.0, .max_iter = 5000, .tol = 1e-12});
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], rho / (z + alpha), 1e-9);
}

TEST(ElasticnetTest, PredictBeforeFitRejected) {
  elasticnet model;
  EXPECT_THROW(model.predict(matrix(2, 2)), std::invalid_argument);
}

// ------------------------------------------------------------------- pca

TEST(JacobiTest, DiagonalizesKnownSymmetricMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const eigen_decomposition eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  // Eigenvector of lambda=3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::abs(eig.vectors(1, 0)), std::sqrt(0.5), 1e-10);
}

TEST(JacobiTest, ReconstructsTheInput) {
  rng gen(5);
  const std::size_t p = 8;
  matrix a(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i; j < p; ++j) {
      a(i, j) = gen.normal();
      a(j, i) = a(i, j);
    }
  }
  const eigen_decomposition eig = jacobi_eigen(a);
  // A = V diag(lambda) V^T.
  matrix lambda(p, p, 0.0);
  for (std::size_t i = 0; i < p; ++i) lambda(i, i) = eig.values[i];
  const matrix rebuilt =
      matmul(matmul(eig.vectors, lambda), transpose(eig.vectors));
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      EXPECT_NEAR(rebuilt(i, j), a(i, j), 1e-8);
    }
  }
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  rng gen(6);
  matrix x(300, 6);
  for (std::size_t i = 0; i < 300; ++i) {
    const double t = gen.normal();
    for (std::size_t j = 0; j < 6; ++j) {
      x(i, j) = t * static_cast<double>(j + 1) + 0.1 * gen.normal();
    }
  }
  pca model(3);
  model.fit(x);
  const matrix& v = model.components();
  const matrix gram = matmul(transpose(v), v);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(PcaTest, SingleStrongDirectionCapturesVariance) {
  rng gen(7);
  matrix x(500, 5);
  for (std::size_t i = 0; i < 500; ++i) {
    const double t = 3.0 * gen.normal();
    for (std::size_t j = 0; j < 5; ++j) x(i, j) = t + 0.05 * gen.normal();
  }
  pca model(1);
  model.fit(x);
  EXPECT_GT(model.explained_variance_ratio()[0], 0.99);
  EXPECT_GT(model.score(x), 0.99);
}

TEST(PcaTest, ScoreDropsOnUnrelatedData) {
  rng gen(8);
  matrix structured(300, 4);
  for (std::size_t i = 0; i < 300; ++i) {
    const double t = gen.normal();
    structured(i, 0) = t; structured(i, 1) = t;
    structured(i, 2) = 0.01 * gen.normal(); structured(i, 3) = 0.01 * gen.normal();
  }
  pca model(1);
  model.fit(structured);
  matrix noise(300, 4);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t j = 0; j < 4; ++j) noise(i, j) = gen.normal();
  }
  EXPECT_GT(model.score(structured), 0.95);
  EXPECT_LT(model.score(noise), 0.7);
}

TEST(PcaTest, TransformInverseTransformRoundTrip) {
  rng gen(9);
  matrix x(50, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    const double t = gen.normal();
    x(i, 0) = t; x(i, 1) = 2 * t; x(i, 2) = -t;
  }
  pca model(1);  // the data is genuinely rank 1
  model.fit(x);
  const matrix rebuilt = model.inverse_transform(model.transform(x));
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(rebuilt(i, j), x(i, j), 1e-9);
  }
}

// ------------------------------------------------------------------- knn

TEST(KnnTest, PerfectOnSeparatedClusters) {
  rng gen(10);
  matrix x(90, 2);
  std::vector<int> labels(90);
  for (std::size_t i = 0; i < 90; ++i) {
    const int cls = static_cast<int>(i % 3);
    labels[i] = cls;
    x(i, 0) = cls * 10.0 + 0.3 * gen.normal();
    x(i, 1) = cls * -10.0 + 0.3 * gen.normal();
  }
  knn_classifier model(5);
  model.fit(x, labels);
  EXPECT_DOUBLE_EQ(model.score(x, labels), 1.0);
}

TEST(KnnTest, SingleNeighborMemorizes) {
  matrix x(4, 1);
  x(0, 0) = 0; x(1, 0) = 1; x(2, 0) = 10; x(3, 0) = 11;
  knn_classifier model(1);
  model.fit(x, {0, 0, 1, 1});
  const std::vector<double> q1{0.4};
  const std::vector<double> q2{10.6};
  EXPECT_EQ(model.predict_one(q1), 0);
  EXPECT_EQ(model.predict_one(q2), 1);
}

TEST(KnnTest, MajorityVoteBreaksTiesTowardSmallerLabel) {
  matrix x(4, 1);
  x(0, 0) = 0.0; x(1, 0) = 0.2; x(2, 0) = 1.0; x(3, 0) = 1.2;
  knn_classifier model(4);  // all points vote: 2 vs 2 tie
  model.fit(x, {0, 0, 1, 1});
  const std::vector<double> q{0.6};
  EXPECT_EQ(model.predict_one(q), 0);
}

TEST(KnnTest, RejectsMisuse) {
  knn_classifier model(5);
  EXPECT_THROW(model.fit(matrix(3, 2), {0, 1, 0}), std::invalid_argument);
  matrix x(6, 2);
  model.fit(x, {0, 1, 0, 1, 0, 1});
  const std::vector<double> bad_dim{1.0};
  EXPECT_THROW((void)model.predict_one(bad_dim), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
