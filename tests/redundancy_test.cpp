// Tests for the spare-row redundancy repair baseline (paper Sec. 2).
#include <gtest/gtest.h>

#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scheme/row_redundancy.hpp"

namespace urmem {
namespace {

TEST(RedundancyTest, CleanArrayNeedsNoRepair) {
  const row_redundancy_repair engine(64, 4, 32);
  const repair_result result = engine.repair(fault_map({68, 32}));
  EXPECT_TRUE(result.fully_repaired());
  EXPECT_EQ(result.faulty_data_rows, 0u);
  EXPECT_EQ(result.usable_spares, 4u);
  EXPECT_TRUE(result.remaps.empty());
}

TEST(RedundancyTest, FaultyRowsRemapToHealthySpares) {
  const row_redundancy_repair engine(8, 2, 16);
  fault_map manufactured({10, 16});
  manufactured.add({3, 5, fault_kind::flip});
  manufactured.add({6, 0, fault_kind::stuck_at_one});
  const repair_result result = engine.repair(manufactured);
  EXPECT_TRUE(result.fully_repaired());
  EXPECT_EQ(result.repaired_rows, 2u);
  EXPECT_EQ(row_redundancy_repair::remap_of(result, 3), 8u);
  EXPECT_EQ(row_redundancy_repair::remap_of(result, 6), 9u);
  EXPECT_EQ(row_redundancy_repair::remap_of(result, 0), std::nullopt);
}

TEST(RedundancyTest, FaultySparesAreSkipped) {
  const row_redundancy_repair engine(8, 2, 16);
  fault_map manufactured({10, 16});
  manufactured.add({3, 5, fault_kind::flip});
  manufactured.add({8, 1, fault_kind::flip});  // first spare is itself broken
  const repair_result result = engine.repair(manufactured);
  EXPECT_TRUE(result.fully_repaired());
  EXPECT_EQ(result.usable_spares, 1u);
  EXPECT_EQ(row_redundancy_repair::remap_of(result, 3), 9u);
}

TEST(RedundancyTest, ExhaustedSparesLeaveResidualFaults) {
  const row_redundancy_repair engine(8, 1, 16);
  fault_map manufactured({9, 16});
  manufactured.add({2, 3, fault_kind::flip});
  manufactured.add({5, 7, fault_kind::flip});
  manufactured.add({5, 9, fault_kind::flip});
  const repair_result result = engine.repair(manufactured);
  EXPECT_FALSE(result.fully_repaired());
  EXPECT_EQ(result.repaired_rows, 1u);
  // Row 2 repaired first (ascending); row 5's two faults remain.
  EXPECT_EQ(result.residual.fault_count(), 2u);
  EXPECT_TRUE(result.residual.row_has_faults(5));
  EXPECT_FALSE(result.residual.row_has_faults(2));
}

TEST(RedundancyTest, RepairYieldMonotoneInSpares) {
  rng gen(9);
  const double pcell = 2e-4;  // E[faulty rows] ~ 26 of 4096... use small array
  const double y0 = repair_yield(512, 0, 32, pcell, 300, gen);
  const double y4 = repair_yield(512, 4, 32, pcell, 300, gen);
  const double y16 = repair_yield(512, 16, 32, pcell, 300, gen);
  EXPECT_LE(y0, y4 + 0.05);
  EXPECT_LE(y4, y16 + 0.05);
  EXPECT_GT(y16, 0.95);  // E[faulty rows] ~ 3.3, 16 spares is plenty
}

TEST(RedundancyTest, SparesForYieldFindsMinimalCount) {
  rng gen(11);
  const auto spares = spares_for_yield(512, 32, 2e-4, 0.95, 256, 300, gen);
  ASSERT_TRUE(spares.has_value());
  // E[faulty rows] = 512 * (1 - (1-2e-4)^32) ~ 3.27; Poisson 95th pct ~ 6-7.
  EXPECT_GE(*spares, 4u);
  EXPECT_LE(*spares, 12u);
}

TEST(RedundancyTest, InfeasibleTargetReturnsNullopt) {
  rng gen(13);
  // Pcell so high that even max_spares = 8 healthy spares cannot exist.
  const auto spares = spares_for_yield(256, 32, 0.05, 0.99, 8, 100, gen);
  EXPECT_FALSE(spares.has_value());
}

TEST(RedundancyTest, GeometryValidation) {
  const row_redundancy_repair engine(8, 2, 16);
  EXPECT_THROW((void)engine.repair(fault_map({8, 16})), std::invalid_argument);
  EXPECT_THROW(row_redundancy_repair(0, 2, 16), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
