// Tests for the hardware cost model behind Fig. 6: structural gate
// counts, the ~13-gate-delay SECDED decode of ref. [17], and the
// relative overhead ordering the paper reports.
#include <gtest/gtest.h>

#include "urmem/hwmodel/blocks.hpp"
#include "urmem/hwmodel/overhead_model.hpp"

namespace urmem {
namespace {

overhead_model paper_model() {
  return overhead_model(gate_library::fdsoi_28nm(), sram_macro_model::fdsoi_28nm(),
                        geometry_16kb_x32());
}

TEST(BlocksTest, XorTreeGateCountAndDepth) {
  const hw_blocks blocks(gate_library::fdsoi_28nm());
  const logic_cost tree = blocks.xor_tree(32, 0);
  EXPECT_DOUBLE_EQ(tree.gate_count, 31.0);
  // depth ceil(log2 32) = 5 XOR levels.
  EXPECT_DOUBLE_EQ(tree.delay_ps, 5.0 * gate_library::fdsoi_28nm().xor2.delay_ps);
  EXPECT_DOUBLE_EQ(blocks.xor_tree(1, 0).gate_count, 0.0);
}

TEST(BlocksTest, RotatorScalesWithStages) {
  const hw_blocks blocks(gate_library::fdsoi_28nm());
  for (unsigned stages = 1; stages <= 5; ++stages) {
    const logic_cost rot = blocks.barrel_rotator(32, stages);
    EXPECT_DOUBLE_EQ(rot.gate_count, 32.0 * stages);
  }
  EXPECT_THROW((void)blocks.barrel_rotator(32, 6), std::invalid_argument);
}

TEST(BlocksTest, EncoderSmallerThanDecoder) {
  const hw_blocks blocks(gate_library::fdsoi_28nm());
  const hamming_secded code(32);
  EXPECT_LT(blocks.secded_encoder(code).gate_count,
            blocks.secded_decoder(code).gate_count);
}

TEST(OverheadTest, SecdedDecodeIsAboutThirteenGateDelays) {
  // Ref. [17]: SECDED decode adds ~13 gate delays to the read path.
  const auto model = paper_model();
  const double delays = model.decoder_gate_delays(hamming_secded(32));
  EXPECT_GT(delays, 9.0);
  EXPECT_LT(delays, 18.0);
}

TEST(OverheadTest, SmallerCodeIsCheaper) {
  const auto model = paper_model();
  const overhead_metrics h39 = model.secded(hamming_secded(32));
  const overhead_metrics h22_as_full = model.pecc(priority_ecc(32, 16));
  EXPECT_LT(h22_as_full.read_energy_fj, h39.read_energy_fj);
  EXPECT_LT(h22_as_full.read_delay_ps, h39.read_delay_ps);
  EXPECT_LT(h22_as_full.area_um2, h39.area_um2);
}

TEST(OverheadTest, ShuffleOverheadMonotoneInNfm) {
  const auto model = paper_model();
  overhead_metrics prev{};
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    const overhead_metrics m = model.shuffle(n_fm);
    EXPECT_GT(m.read_energy_fj, prev.read_energy_fj) << "nFM=" << n_fm;
    EXPECT_GT(m.read_delay_ps, prev.read_delay_ps) << "nFM=" << n_fm;
    EXPECT_GT(m.area_um2, prev.area_um2) << "nFM=" << n_fm;
    prev = m;
  }
}

TEST(OverheadTest, ShuffleBeatsEccAcrossTheBoard) {
  // Fig. 6: every nFM option costs less than H(39,32) SECDED in read
  // power, read delay, and area.
  const auto model = paper_model();
  const overhead_metrics base = model.secded(hamming_secded(32));
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    const relative_overhead rel =
        overhead_model::relative(model.shuffle(n_fm), base);
    EXPECT_LT(rel.read_power, 1.0) << "nFM=" << n_fm;
    EXPECT_LT(rel.read_delay, 1.0) << "nFM=" << n_fm;
    EXPECT_LT(rel.area, 1.0) << "nFM=" << n_fm;
  }
}

TEST(OverheadTest, PaperBandsForBestCaseSavings) {
  // Paper: up to 83% read power, 77% read delay, 89% area savings vs
  // SECDED (nFM = 1). The structural model must land in generous bands
  // around those best-case numbers (exact values in EXPERIMENTS.md).
  const auto model = paper_model();
  const overhead_metrics base = model.secded(hamming_secded(32));
  const relative_overhead best = overhead_model::relative(model.shuffle(1), base);
  EXPECT_LT(best.read_power, 0.35);  // paper 0.17
  EXPECT_LT(best.read_delay, 0.45);  // paper 0.23
  EXPECT_LT(best.area, 0.30);        // paper 0.11
}

TEST(OverheadTest, WorstCaseShuffleStillSaves) {
  // Paper: at least 20% power / 41% delay / 32% area savings (nFM = 5).
  const auto model = paper_model();
  const overhead_metrics base = model.secded(hamming_secded(32));
  const relative_overhead worst = overhead_model::relative(model.shuffle(5), base);
  EXPECT_LT(worst.read_power, 0.95);
  EXPECT_LT(worst.read_delay, 0.80);
  EXPECT_LT(worst.area, 0.85);
}

TEST(OverheadTest, ShuffleBeatsPeccAtLowNfm) {
  // Paper: up to 59/64/57% savings vs P-ECC.
  const auto model = paper_model();
  const overhead_metrics pecc = model.pecc(priority_ecc(32, 16));
  const overhead_metrics nfm1 = model.shuffle(1);
  EXPECT_LT(nfm1.read_energy_fj, pecc.read_energy_fj * 0.8);
  EXPECT_LT(nfm1.read_delay_ps, pecc.read_delay_ps * 0.7);
  EXPECT_LT(nfm1.area_um2, pecc.area_um2 * 0.6);
}

TEST(OverheadTest, RegisterFileLutTradesAreaForEnergy) {
  const auto model = paper_model();
  const overhead_metrics cols = model.shuffle(3, lut_realization::sram_columns);
  const overhead_metrics rf = model.shuffle(3, lut_realization::register_file);
  EXPECT_LT(rf.read_energy_fj, cols.read_energy_fj);
  EXPECT_GT(rf.area_um2, cols.area_um2);
}

TEST(OverheadTest, RelativeToSelfIsUnity) {
  const auto model = paper_model();
  const overhead_metrics base = model.secded(hamming_secded(32));
  const relative_overhead rel = overhead_model::relative(base, base);
  EXPECT_DOUBLE_EQ(rel.read_power, 1.0);
  EXPECT_DOUBLE_EQ(rel.read_delay, 1.0);
  EXPECT_DOUBLE_EQ(rel.area, 1.0);
}

TEST(WritePathTest, ShuffleWritePaysSerialLutRead) {
  // Sec. 5.1: the bit-shuffling write "requires a read prior to a
  // write", so its write latency overhead exceeds its read overhead and
  // also exceeds the (pipelined) ECC encoder's.
  const auto model = paper_model();
  const write_overhead_metrics shuffle_w = model.shuffle_write(1);
  const overhead_metrics shuffle_r = model.shuffle(1);
  EXPECT_GT(shuffle_w.write_delay_ps, shuffle_r.read_delay_ps);
  const write_overhead_metrics ecc_w = model.secded_write(hamming_secded(32));
  EXPECT_GT(shuffle_w.write_delay_ps, ecc_w.write_delay_ps);
}

TEST(WritePathTest, RegisterFileLutShrinksWriteLatency) {
  // The paper's proposed remedy: a CAM/register-file LUT gives "much
  // less overhead, especially in terms of write latency".
  const auto model = paper_model();
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    const auto cols = model.shuffle_write(n_fm, lut_realization::sram_columns);
    const auto rf = model.shuffle_write(n_fm, lut_realization::register_file);
    // The serial LUT-read component drops from 240 ps to 60 ps; the
    // rotator share is common to both.
    EXPECT_LT(rf.write_delay_ps, cols.write_delay_ps - 150.0) << "nFM=" << n_fm;
    EXPECT_LT(rf.write_energy_fj, cols.write_energy_fj) << "nFM=" << n_fm;
  }
}

TEST(WritePathTest, EncoderWriteEnergyScalesWithCode) {
  const auto model = paper_model();
  EXPECT_LT(model.pecc_write(priority_ecc(32, 16)).write_energy_fj,
            model.secded_write(hamming_secded(32)).write_energy_fj);
}

TEST(OverheadTest, ColumnAreaScalesWithRows) {
  const sram_macro_model sram = sram_macro_model::fdsoi_28nm();
  EXPECT_DOUBLE_EQ(sram.column_area_um2(4096), 4096 * 0.120 / 0.70);
  EXPECT_GT(sram.column_area_um2(8192), sram.column_area_um2(4096));
}

TEST(OverheadTest, MismatchedGeometryRejected) {
  const auto model = paper_model();
  EXPECT_THROW((void)model.secded(hamming_secded(16)), std::invalid_argument);
  EXPECT_THROW((void)model.pecc(priority_ecc(16, 8)), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
