// Golden equivalence of the scenario runner against the legacy
// hand-wired experiment drivers: the fig5 and fig7 aggregates computed
// through `scenario_runner` must be bit-identical to the pre-API code
// path (reproduced inline here exactly as the old binaries wired it) at
// fixed seeds, at 1 and 4 campaign threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "urmem/common/binomial.hpp"
#include "urmem/scenario/scenario_runner.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/quality_experiment.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace urmem {
namespace {

// Legacy fig5 driver core, verbatim from the pre-API bench binary: one
// stratified campaign per scheme on a shared pool.
empirical_cdf legacy_fig5_cdf(campaign_runner& runner,
                              const protection_scheme& scheme,
                              std::uint32_t rows, double pcell,
                              const mse_cdf_config& config) {
  const array_geometry geometry{rows, scheme.storage_bits()};
  const std::vector<mse_stratum> strata = mse_strata(geometry, pcell, config);
  std::vector<std::uint64_t> starts;
  starts.reserve(strata.size());
  std::uint64_t trials = 0;
  for (const mse_stratum& s : strata) {
    starts.push_back(trials);
    trials += s.count;
  }
  return runner.map_weighted(
      trials, [&](std::uint64_t trial, rng& gen) -> weighted_sample {
        const auto it = std::upper_bound(starts.begin(), starts.end(), trial);
        const mse_stratum& s = strata[static_cast<std::size_t>(
            std::distance(starts.begin(), it) - 1)];
        return {sample_mse(scheme, geometry, s.n, gen), s.weight_each};
      });
}

constexpr std::uint64_t kFig5Runs = 20'000;
constexpr std::uint64_t kFig5Nmax = 30;
constexpr double kFig5Pcell = 5e-6;
constexpr std::uint64_t kFig5Seed = 42;
constexpr std::uint32_t kRows = 4096;

struct fig5_quantiles {
  double q50, q90, q99, q9999, yield_1e6;
};

std::vector<fig5_quantiles> legacy_fig5(unsigned threads) {
  mse_cdf_config config;
  config.total_runs = kFig5Runs;
  config.n_max = kFig5Nmax;
  config.seed = kFig5Seed;

  std::vector<std::unique_ptr<protection_scheme>> schemes;
  schemes.push_back(make_scheme_none());
  schemes.push_back(make_scheme_shuffle(kRows, 32, 1));
  schemes.push_back(make_scheme_pecc());

  campaign_runner runner({.threads = threads, .seed = kFig5Seed});
  std::vector<fig5_quantiles> result;
  for (const auto& scheme : schemes) {
    const empirical_cdf cdf =
        legacy_fig5_cdf(runner, *scheme, kRows, kFig5Pcell, config);
    result.push_back({mse_for_yield(cdf, 0.50), mse_for_yield(cdf, 0.90),
                      mse_for_yield(cdf, 0.99), mse_for_yield(cdf, 0.9999),
                      yield_at_mse(cdf, 1e6)});
  }
  return result;
}

json_value scenario_fig5(unsigned threads) {
  scenario_spec spec = scenario_spec::parse_text(R"json({
    "name": "fig5-golden",
    "fault": {"pcell": 5e-6},
    "seeds": {"root": 42},
    "schemes": ["none", "shuffle:nfm=1", "pecc"],
    "workload": {"name": "fig5-mse", "runs": 20000, "nmax": 30}
  })json");
  spec.run.threads = threads;
  std::ostringstream text;
  const scenario_report report = scenario_runner(spec).run(text);
  EXPECT_FALSE(text.str().empty());
  return report.points.at(0).output.json;
}

TEST(ScenarioGolden, Fig5AggregatesBitIdenticalToLegacyDriver) {
  for (const unsigned threads : {1u, 4u}) {
    const std::vector<fig5_quantiles> legacy = legacy_fig5(threads);
    const json_value json = scenario_fig5(threads);
    const auto& schemes = json.find("schemes")->as_array();
    ASSERT_EQ(schemes.size(), legacy.size()) << threads << " threads";
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      // Bit-identical, not approximately equal: the scenario path must
      // replay exactly the legacy draws and reduction order.
      EXPECT_EQ(schemes[i].find("mse_at_yield_50")->as_double(), legacy[i].q50)
          << threads << " threads, scheme " << i;
      EXPECT_EQ(schemes[i].find("mse_at_yield_90")->as_double(), legacy[i].q90);
      EXPECT_EQ(schemes[i].find("mse_at_yield_99")->as_double(), legacy[i].q99);
      EXPECT_EQ(schemes[i].find("mse_at_yield_9999")->as_double(),
                legacy[i].q9999);
      EXPECT_EQ(schemes[i].find("yield_at_mse_1e6")->as_double(),
                legacy[i].yield_1e6);
    }
  }
}

TEST(ScenarioGolden, Fig5ThreadCountInvariance) {
  const json_value t1 = scenario_fig5(1);
  const json_value t4 = scenario_fig5(4);
  EXPECT_EQ(t1.dump(), t4.dump());
}

// ------------------------------------------------------------------ fig7

constexpr double kFig7Pcell = 2e-4;  // Nmax ~ 40: laptop-fast strata
constexpr std::uint64_t kFig7Seed = 99;
constexpr std::uint64_t kAppSeed = 7;

struct fig7_result {
  double clean, q01, q10, q50;
};

std::vector<fig7_result> legacy_fig7(unsigned threads) {
  // Verbatim wiring of the pre-API fig7 binary: shared pool, fixed
  // scheme list, run_quality_experiment per scheme.
  quality_experiment_config config;
  config.pcell = kFig7Pcell;
  config.samples_per_count = 1;
  config.seed = kFig7Seed;

  campaign_runner runner({.threads = threads, .seed = kFig7Seed});
  const auto app = make_elasticnet_app(kAppSeed);

  struct legacy_scheme {
    std::string name;
    scheme_factory factory;
  };
  const legacy_scheme schemes[] = {
      {"no-correction", [](std::uint32_t) { return make_scheme_none(); }},
      {"nFM=1",
       [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 1); }},
  };
  std::vector<fig7_result> result;
  for (const auto& scheme : schemes) {
    const quality_result r = run_quality_experiment(*app, scheme.factory,
                                                    scheme.name, config, runner);
    result.push_back({r.clean_metric, r.cdf.quantile(0.01),
                      r.cdf.quantile(0.10), r.cdf.quantile(0.50)});
  }
  return result;
}

json_value scenario_fig7(unsigned threads) {
  scenario_spec spec = scenario_spec::parse_text(R"json({
    "name": "fig7-golden",
    "fault": {"pcell": 2e-4},
    "seeds": {"root": 99, "app": 7},
    "schemes": ["none", "shuffle:nfm=1"],
    "workload": {"name": "fig7-quality", "samples": 1, "apps": "elasticnet"}
  })json");
  spec.run.threads = threads;
  std::ostringstream text;
  const scenario_report report = scenario_runner(spec).run(text);
  return report.points.at(0).output.json;
}

TEST(ScenarioGolden, Fig7AggregatesBitIdenticalToLegacyDriver) {
  for (const unsigned threads : {1u, 4u}) {
    const std::vector<fig7_result> legacy = legacy_fig7(threads);
    const json_value json = scenario_fig7(threads);
    const auto& apps = json.find("apps")->as_array();
    ASSERT_EQ(apps.size(), 1u);
    const auto& schemes = apps[0].find("schemes")->as_array();
    ASSERT_EQ(schemes.size(), legacy.size());
    EXPECT_EQ(apps[0].find("clean_metric")->as_double(), legacy[0].clean)
        << threads << " threads";
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(schemes[i].find("q01")->as_double(), legacy[i].q01)
          << threads << " threads, scheme " << i;
      EXPECT_EQ(schemes[i].find("q10")->as_double(), legacy[i].q10);
      EXPECT_EQ(schemes[i].find("q50")->as_double(), legacy[i].q50);
    }
  }
}

TEST(ScenarioGolden, Fig7ThreadCountInvariance) {
  const json_value t1 = scenario_fig7(1);
  const json_value t4 = scenario_fig7(4);
  EXPECT_EQ(t1.dump(), t4.dump());
}

}  // namespace
}  // namespace urmem
