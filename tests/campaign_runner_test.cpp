// Tests for the parallel Monte-Carlo campaign engine: deterministic
// per-trial streams, bit-identical aggregates at any thread count,
// work-stealing scheduling, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/campaign_runner.hpp"
#include "urmem/sim/quality_experiment.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace urmem {
namespace {

// ----------------------------------------------------- stream splitting

TEST(StreamSeedTest, MatchesRngSplit) {
  const rng root(1234);
  for (std::uint64_t stream = 0; stream < 64; ++stream) {
    rng via_split = root.split(stream);
    rng via_helper = make_stream_rng(1234, stream);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(via_split(), via_helper());
  }
}

TEST(StreamSeedTest, AdjacentStreamsAreDecorrelated) {
  rng a = make_stream_rng(7, 0);
  rng b = make_stream_rng(7, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ------------------------------------------------------- basic running

TEST(CampaignRunnerTest, TrialsSeeTheirOwnStream) {
  campaign_runner runner({.threads = 4, .seed = 77});
  const std::vector<std::uint64_t> draws = runner.map<std::uint64_t>(
      100, [](std::uint64_t, rng& gen) { return gen(); });
  ASSERT_EQ(draws.size(), 100u);
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    EXPECT_EQ(draws[trial], make_stream_rng(77, trial)()) << trial;
  }
}

TEST(CampaignRunnerTest, RunsEveryTrialExactlyOnce) {
  for (const unsigned threads : {1u, 3u, 8u}) {
    campaign_runner runner({.threads = threads, .batch_size = 7, .seed = 5});
    std::vector<std::atomic<int>> hits(1000);
    runner.run(1000, [&hits](std::uint64_t trial, rng&) {
      hits[trial].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_EQ(runner.last_stats().trials, 1000u);
    EXPECT_EQ(runner.last_stats().threads, threads);
    EXPECT_GE(runner.last_stats().batches, 1u);
  }
}

TEST(CampaignRunnerTest, ZeroTrialsIsANoop) {
  campaign_runner runner({.threads = 2, .seed = 1});
  runner.run(0, [](std::uint64_t, rng&) { FAIL() << "no trial expected"; });
  EXPECT_EQ(runner.last_stats().trials, 0u);
}

TEST(CampaignRunnerTest, FewerTrialsThanThreads) {
  campaign_runner runner({.threads = 8, .seed = 3});
  const std::vector<std::uint64_t> out = runner.map<std::uint64_t>(
      3, [](std::uint64_t trial, rng&) { return trial * 10; });
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 10, 20}));
}

TEST(CampaignRunnerTest, TrialExceptionPropagates) {
  campaign_runner runner({.threads = 4, .seed = 9});
  EXPECT_THROW(runner.run(200,
                          [](std::uint64_t trial, rng&) {
                            if (trial == 131) {
                              throw std::runtime_error("injected");
                            }
                          }),
               std::runtime_error);
}

TEST(CampaignRunnerTest, RunnerIsReusableAcrossCampaigns) {
  campaign_runner runner({.threads = 2, .seed = 11});
  const auto first = runner.map<std::uint64_t>(
      50, [](std::uint64_t, rng& gen) { return gen(); });
  const auto second = runner.map<std::uint64_t>(
      50, [](std::uint64_t, rng& gen) { return gen(); });
  EXPECT_EQ(first, second);  // same seed, same streams
}

// ---------------------------------------------- bit-identical aggregates

/// The ISSUE's determinism contract: identical aggregate results for the
/// same seed at 1, 2, and 8 threads — compared bit-for-bit.
TEST(CampaignRunnerTest, WeightedAggregateBitIdenticalAt1_2_8Threads) {
  const auto run_at = [](unsigned threads) {
    campaign_runner runner({.threads = threads, .seed = 2026});
    return runner.run_weighted(
        500, [](std::uint64_t trial, rng& gen,
                std::vector<weighted_sample>& out) {
          // Variable-length emission exercises the merge ordering.
          const std::size_t count = 1 + trial % 3;
          for (std::size_t i = 0; i < count; ++i) {
            out.push_back({gen.normal(), 1.0 + gen.uniform()});
          }
        });
  };
  const empirical_cdf reference = run_at(1);
  for (const unsigned threads : {2u, 8u}) {
    const empirical_cdf cdf = run_at(threads);
    ASSERT_EQ(cdf.size(), reference.size()) << threads;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      // EXPECT_EQ on doubles is exact: bit-identical, not just close.
      EXPECT_EQ(cdf.support()[i], reference.support()[i]) << threads;
      EXPECT_EQ(cdf.cumulative()[i], reference.cumulative()[i]) << threads;
    }
  }
}

TEST(CampaignRunnerTest, BatchSizeDoesNotChangeResults) {
  const auto run_at = [](std::uint64_t batch) {
    campaign_runner runner({.threads = 4, .batch_size = batch, .seed = 31});
    return runner.map<std::uint64_t>(
        257, [](std::uint64_t, rng& gen) { return gen(); });
  };
  const auto reference = run_at(1);
  EXPECT_EQ(run_at(8), reference);
  EXPECT_EQ(run_at(1024), reference);
}

TEST(CampaignRunnerTest, MseSweepBitIdenticalAcrossThreadCounts) {
  // A real Fig. 5-style workload: stratified MSE sampling of the P-ECC
  // scheme through sample_mse, merged by run_weighted.
  const auto scheme = make_scheme_pecc();
  const array_geometry geometry{256, scheme->storage_bits()};
  const auto run_at = [&](unsigned threads) {
    campaign_runner runner({.threads = threads, .seed = 404});
    return runner.run_weighted(
        400, [&](std::uint64_t trial, rng& gen,
                 std::vector<weighted_sample>& out) {
          const std::uint64_t n = 1 + trial % 5;
          out.push_back({sample_mse(*scheme, geometry, n, gen), 1.0});
        });
  };
  const empirical_cdf reference = run_at(1);
  for (const unsigned threads : {2u, 8u}) {
    const empirical_cdf cdf = run_at(threads);
    ASSERT_EQ(cdf.size(), reference.size()) << threads;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(cdf.support()[i], reference.support()[i]) << threads;
      EXPECT_EQ(cdf.cumulative()[i], reference.cumulative()[i]) << threads;
    }
  }
}

TEST(CampaignRunnerTest, QualityExperimentBitIdenticalAcrossThreadCounts) {
  // The rewired Fig. 7 driver end to end (KNN, tiny scale for speed).
  const auto app = make_knn_app();
  quality_experiment_config config;
  config.pcell = 2e-4;
  config.samples_per_count = 2;
  config.seed = 17;

  const auto run_at = [&](unsigned threads) {
    config.threads = threads;
    return run_quality_experiment(
        *app,
        [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 1); },
        "nFM=1", config);
  };
  const quality_result reference = run_at(1);
  for (const unsigned threads : {2u, 8u}) {
    const quality_result result = run_at(threads);
    EXPECT_EQ(result.clean_metric, reference.clean_metric) << threads;
    ASSERT_EQ(result.cdf.size(), reference.cdf.size()) << threads;
    for (std::size_t i = 0; i < reference.cdf.size(); ++i) {
      EXPECT_EQ(result.cdf.support()[i], reference.cdf.support()[i]) << threads;
      EXPECT_EQ(result.cdf.cumulative()[i], reference.cdf.cumulative()[i])
          << threads;
    }
  }
}

}  // namespace
}  // namespace urmem
