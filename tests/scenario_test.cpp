// Tests of the declarative scenario API: registries (duplicate names
// fail loudly, every built-in resolves), scenario_spec JSON round-trips
// with field-naming diagnostics, CLI overrides, sweep-grid expansion,
// and the new scheme-layer machinery (stacked shuffle+ECC, spare-row
// redundancy in protected_memory).
#include <gtest/gtest.h>

#include <sstream>

#include "urmem/common/json.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scenario/scenario_runner.hpp"
#include "urmem/scenario/scheme_registry.hpp"
#include "urmem/scenario/workload_registry.hpp"
#include "urmem/scheme/protected_memory.hpp"
#include "urmem/scheme/stacked_scheme.hpp"

namespace urmem {
namespace {

// ------------------------------------------------------------ registries

TEST(SchemeRegistry, DuplicateRegistrationFailsLoudly) {
  scheme_registry& registry = scheme_registry::instance();
  registry.add("test-dup-scheme", "test", "", [](const geometry_spec& geometry,
                                                 const option_map&) {
    const unsigned width = geometry.word_bits;
    scheme_recipe recipe;
    recipe.display_name = "test";
    recipe.factory = [width](std::uint32_t) { return make_scheme_none(width); };
    return recipe;
  });
  EXPECT_THROW(registry.add("test-dup-scheme", "again", "",
                            [](const geometry_spec&, const option_map&) {
                              return scheme_recipe{};
                            }),
               std::invalid_argument);
}

TEST(WorkloadRegistry, DuplicateRegistrationFailsLoudly) {
  workload_registry& registry = workload_registry::instance();
  const auto factory = [](const option_map&) -> std::unique_ptr<workload> {
    return nullptr;
  };
  registry.add("test-dup-workload", "test", "", factory);
  EXPECT_THROW(registry.add("test-dup-workload", "again", "", factory),
               std::invalid_argument);
}

TEST(SchemeRegistry, EveryBuiltinNameResolves) {
  const geometry_spec geometry;
  for (const auto& info : scheme_registry::instance().list()) {
    if (info.name.starts_with("test-")) continue;
    scheme_ref ref{info.name, option_map("schemes[0]")};
    if (info.name == "tiered") {
      // The combinator has no default tier table; give it a minimal one.
      ref.options.set("0-" + std::to_string(geometry.rows_per_tile - 1),
                      "secded");
    }
    const scheme_recipe recipe =
        scheme_registry::instance().make(ref, geometry);
    EXPECT_FALSE(recipe.display_name.empty()) << info.name;
    ASSERT_TRUE(recipe.factory != nullptr) << info.name;
    const auto scheme = recipe.factory(geometry.rows_per_tile);
    ASSERT_TRUE(scheme != nullptr) << info.name;
    EXPECT_EQ(scheme->data_bits(), geometry.word_bits) << info.name;
  }
}

TEST(WorkloadRegistry, EveryBuiltinNameResolves) {
  for (const auto& info : workload_registry::instance().list()) {
    if (info.name.starts_with("test-")) continue;
    const workload_ref ref{info.name, option_map("workload")};
    EXPECT_TRUE(workload_registry::instance().make(ref) != nullptr)
        << info.name;
  }
}

TEST(SchemeRegistry, UnknownNameListsKnownSchemes) {
  const scheme_ref ref{"no-such-scheme", option_map("schemes[0]")};
  try {
    (void)scheme_registry::instance().make(ref, geometry_spec{});
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_NE(std::string(error.what()).find("unknown scheme"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("shuffle"), std::string::npos);
  }
}

TEST(SchemeRegistry, UnknownOptionNamesTheField) {
  scheme_ref ref{"shuffle", option_map("schemes[2]")};
  ref.options.set("nfmx", "3");
  try {
    (void)scheme_registry::instance().make(ref, geometry_spec{});
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "schemes[2].nfmx");
  }
}

TEST(SchemeRegistry, OutOfRangeOptionNamesTheField) {
  scheme_ref ref{"shuffle", option_map("schemes[0]")};
  ref.options.set("nfm", "9");  // log2(32) = 5 is the max
  try {
    (void)scheme_registry::instance().make(ref, geometry_spec{});
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "schemes[0].nfm");
  }
}

TEST(WorkloadRegistry, UnknownWorkloadOptionNamesTheField) {
  workload_ref ref{"fig7-quality", option_map("workload")};
  ref.options.set("samlpes", "3");
  try {
    (void)workload_registry::instance().make(ref);
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "workload.samlpes");
  }
}

// ---------------------------------------------------- spec JSON round-trip

constexpr const char* kFullSpec = R"json({
  "name": "roundtrip",
  "geometry": {"rows_per_tile": 512, "word_bits": 32, "frac_bits": 16},
  "fault": {"pcell": 1e-3, "polarity": "mixed", "model_seed": 3},
  "seeds": {"root": 11, "app": 5},
  "run": {"threads": 2, "batch": 64},
  "schemes": ["none", {"name": "shuffle", "nfm": 2}, "pecc:protected-bits=16"],
  "workload": {"name": "fig5-mse", "runs": 5000, "nmax": 20},
  "sweep": [{"param": "fault.pcell", "values": [1e-4, 1e-3]}]
})json";

TEST(ScenarioSpec, JsonRoundTripIsStable) {
  const scenario_spec spec = scenario_spec::parse_text(kFullSpec);
  const json_value first = spec.to_json();
  const scenario_spec reparsed = scenario_spec::from_json(first);
  const json_value second = reparsed.to_json();
  EXPECT_EQ(first.dump(), second.dump());
  EXPECT_TRUE(first == second);

  EXPECT_EQ(spec.geometry.rows_per_tile, 512u);
  EXPECT_EQ(spec.fault.polarity, fault_polarity::mixed);
  EXPECT_EQ(spec.schemes.size(), 3u);
  EXPECT_EQ(spec.schemes[1].name, "shuffle");
  EXPECT_EQ(spec.workload.name, "fig5-mse");
  ASSERT_EQ(spec.sweep.size(), 1u);
  EXPECT_EQ(spec.sweep[0].values.size(), 2u);
}

TEST(ScenarioSpec, UnknownKeyNamesTheField) {
  try {
    (void)scenario_spec::parse_text(R"({"fault": {"pcellx": 1e-3}})");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "fault.pcellx");
  }
}

TEST(ScenarioSpec, OutOfRangeValueNamesTheField) {
  try {
    (void)scenario_spec::parse_text(R"({"fault": {"pcell": 1.5}})");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "fault.pcell");
    EXPECT_NE(std::string(error.what()).find("[0, 1)"), std::string::npos);
  }
}

TEST(ScenarioSpec, BadPolarityNamesTheField) {
  try {
    (void)scenario_spec::parse_text(R"({"fault": {"polarity": "sideways"}})");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "fault.polarity");
  }
}

TEST(ScenarioSpec, MissingPcellDiagnosticNamesConsumer) {
  const scenario_spec spec = scenario_spec::parse_text(R"({"name": "x"})");
  try {
    (void)spec.resolved_pcell("fig7-quality");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "fault.pcell");
    EXPECT_NE(std::string(error.what()).find("fig7-quality"),
              std::string::npos);
  }
}

TEST(ScenarioSpec, VddDerivesPcellThroughTheCellModel) {
  const scenario_spec spec =
      scenario_spec::parse_text(R"({"fault": {"vdd": 0.73}})");
  const double pcell = spec.resolved_pcell("test");
  EXPECT_NEAR(pcell, 1e-4, 3e-5);  // the model's calibration anchor
}

TEST(ScenarioSpec, CliOverridesLandOnDottedPaths) {
  json_value doc = json_value::make_object();
  apply_spec_override(doc, "workload", "fig5-mse:runs=1000");
  apply_spec_override(doc, "threads", "4");
  apply_spec_override(doc, "seed", "9");
  apply_spec_override(doc, "pcell", "1e-4");
  apply_spec_override(doc, "schemes", "none,shuffle:nfm=2");
  apply_spec_override(doc, "workload.nmax", "12");
  apply_spec_override(doc, "sweep.fault.pcell", "1e-5,1e-4");

  const scenario_spec spec = scenario_spec::from_json(doc);
  EXPECT_EQ(spec.run.threads, 4u);
  EXPECT_EQ(spec.seeds.root, 9u);
  EXPECT_DOUBLE_EQ(spec.fault.pcell.value(), 1e-4);
  ASSERT_EQ(spec.schemes.size(), 2u);
  EXPECT_EQ(spec.schemes[1].name, "shuffle");
  EXPECT_EQ(spec.workload.name, "fig5-mse");
  EXPECT_EQ(spec.workload.options.get_u64("runs", 0), 1000u);
  EXPECT_EQ(spec.workload.options.get_u64("nmax", 0), 12u);
  ASSERT_EQ(spec.sweep.size(), 1u);
  EXPECT_EQ(spec.sweep[0].param, "fault.pcell");
}

// --------------------------------------------- regions (HRM tiers) layer

constexpr const char* kRegionSpec = R"json({
  "name": "tiers",
  "geometry": {"rows_per_tile": 128},
  "fault": {"pcell": 1e-3},
  "schemes": ["secded"],
  "regions": [
    {"rows": "0-31", "scheme": "secded", "spare_rows": 4, "pcell": 1e-4},
    {"rows": "32-127", "scheme": {"name": "shuffle", "nfm": 2}, "vdd": 0.7}
  ],
  "workload": {"name": "hrm-quality", "trials": 1}
})json";

TEST(ScenarioSpec, RegionsRoundTripStably) {
  const scenario_spec spec = scenario_spec::parse_text(kRegionSpec);
  ASSERT_EQ(spec.regions.size(), 2u);
  EXPECT_EQ(spec.regions[0].first_row, 0u);
  EXPECT_EQ(spec.regions[0].last_row, 31u);
  EXPECT_EQ(spec.regions[0].spare_rows, 4u);
  EXPECT_DOUBLE_EQ(spec.regions[0].pcell.value(), 1e-4);
  EXPECT_FALSE(spec.regions[0].vdd.has_value());
  EXPECT_EQ(spec.regions[1].scheme.name, "shuffle");
  EXPECT_DOUBLE_EQ(spec.regions[1].vdd.value(), 0.7);

  const json_value first = spec.to_json();
  const scenario_spec reparsed = scenario_spec::from_json(first);
  EXPECT_EQ(first.dump(), reparsed.to_json().dump());

  // The per-region operating point resolves region-first, spec second.
  EXPECT_DOUBLE_EQ(spec.resolved_region_pcell(spec.regions[0], "t"), 1e-4);
  EXPECT_NEAR(spec.resolved_region_pcell(spec.regions[1], "t"),
              spec.failure_model().pcell(0.7), 1e-12);
}

TEST(ScenarioSpec, RegionTableRejectionsNameTheRegion) {
  const auto expect_field = [](const char* text, std::string_view field) {
    try {
      (void)scenario_spec::parse_text(text);
      FAIL() << "expected spec_error for " << text;
    } catch (const spec_error& error) {
      EXPECT_EQ(error.field(), field) << error.what();
    }
  };
  // Gap between regions.
  expect_field(R"({"geometry": {"rows_per_tile": 64}, "regions": [
      {"rows": "0-15", "scheme": "none"},
      {"rows": "32-63", "scheme": "none"}]})",
               "regions[1].rows");
  // Overlapping / duplicate ranges.
  expect_field(R"({"geometry": {"rows_per_tile": 64}, "regions": [
      {"rows": "0-31", "scheme": "none"},
      {"rows": "16-63", "scheme": "none"}]})",
               "regions[1].rows");
  expect_field(R"({"geometry": {"rows_per_tile": 64}, "regions": [
      {"rows": "0-31", "scheme": "none"},
      {"rows": "0-31", "scheme": "none"}]})",
               "regions[1].rows");
  // Table must cover the whole tile.
  expect_field(R"({"geometry": {"rows_per_tile": 64}, "regions": [
      {"rows": "0-31", "scheme": "none"}]})",
               "regions[0].rows");
  // Range past the tile edge.
  expect_field(R"({"geometry": {"rows_per_tile": 64}, "regions": [
      {"rows": "0-64", "scheme": "none"}]})",
               "regions[0].rows");
  // Missing scheme and unknown members are named too.
  expect_field(R"({"geometry": {"rows_per_tile": 64}, "regions": [
      {"rows": "0-63"}]})",
               "regions[0].scheme");
  expect_field(R"({"geometry": {"rows_per_tile": 64}, "regions": [
      {"rows": "0-63", "scheme": "none", "sparse_rows": 2}]})",
               "regions[0].sparse_rows");
}

TEST(ScenarioSpec, TieredCompactFormResolvesThroughTheRegistry) {
  geometry_spec geometry;
  geometry.rows_per_tile = 64;
  scheme_ref ref{"tiered", option_map("schemes[0]")};
  ref.options.set("0-15", "secded,spare_rows=2");
  ref.options.set("16-63", "shuffle,nfm=2");
  const scheme_recipe recipe = scheme_registry::instance().make(ref, geometry);
  EXPECT_EQ(recipe.display_name, "tiered[0-15:H(39,32) ECC|16-63:nFM=2]");
  ASSERT_EQ(recipe.regions.size(), 2u);
  EXPECT_EQ(recipe.regions[0].spare_rows, 2u);
  EXPECT_EQ(recipe.total_spare_rows(), 2u);

  // Bad tier tables blame the range option of the scheme entry.
  scheme_ref gap{"tiered", option_map("schemes[1]")};
  gap.options.set("0-15", "secded");
  try {
    (void)scheme_registry::instance().make(gap, geometry);
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "schemes[1].0-15");
  }
}

TEST(ScenarioSpec, RegionCliOverridesBuildAndPatchTheTable) {
  json_value doc = json_value::make_object();
  apply_spec_override(doc, "rows", "128");
  apply_spec_override(doc, "regions",
                      "0-31=secded,spare_rows=4:32-127=shuffle,nfm=2");
  apply_spec_override(doc, "regions.0-31.pcell", "1e-4");
  const scenario_spec spec = scenario_spec::from_json(doc);
  ASSERT_EQ(spec.regions.size(), 2u);
  EXPECT_EQ(spec.regions[0].scheme.name, "secded");
  EXPECT_EQ(spec.regions[0].spare_rows, 4u);
  EXPECT_DOUBLE_EQ(spec.regions[0].pcell.value(), 1e-4);
  EXPECT_EQ(spec.regions[1].scheme.name, "shuffle");
  EXPECT_EQ(spec.regions[1].scheme.options.get_u32("nfm", 0), 2u);

  // regions= with an empty value clears the table again.
  apply_spec_override(doc, "regions", "");
  EXPECT_TRUE(scenario_spec::from_json(doc).regions.empty());
}

TEST(ScenarioSpec, SchemesOverrideKeepsTieredSubOptionsTogether) {
  // The schemes= list splits on commas, but a tiered entry's sub-scheme
  // options use commas too; items whose name token carries '=' re-join
  // the entry they were split from.
  json_value doc = json_value::make_object();
  apply_spec_override(
      doc, "schemes",
      "secded,tiered:0-99=secded,spare_rows=2:100-4095=shuffle,nfm=2");
  const scenario_spec spec = scenario_spec::from_json(doc);
  ASSERT_EQ(spec.schemes.size(), 2u);
  EXPECT_EQ(spec.schemes[0].name, "secded");
  EXPECT_EQ(spec.schemes[1].name, "tiered");
  const scheme_recipe recipe =
      scheme_registry::instance().make(spec.schemes[1], spec.geometry);
  ASSERT_EQ(recipe.regions.size(), 2u);
  EXPECT_EQ(recipe.regions[0].spare_rows, 2u);
  EXPECT_EQ(recipe.display_name, "tiered[0-99:H(39,32) ECC|100-4095:nFM=2]");
}

// ----------------------------------------------- fault operating point

TEST(ScenarioSpec, PcellZeroIsAFaultFreePointNotUnset) {
  // Explicit 0 round-trips as an explicit 0 ...
  const scenario_spec zero =
      scenario_spec::parse_text(R"({"fault": {"pcell": 0}})");
  ASSERT_TRUE(zero.fault.pcell.has_value());
  EXPECT_DOUBLE_EQ(zero.resolved_pcell("test"), 0.0);
  const scenario_spec reparsed = scenario_spec::from_json(zero.to_json());
  ASSERT_TRUE(reparsed.fault.pcell.has_value());
  EXPECT_DOUBLE_EQ(reparsed.resolved_pcell("test"), 0.0);

  // ... and injects exactly zero faults.
  const fault_injector inject = binomial_fault_injector(0.0);
  rng gen(5);
  EXPECT_EQ(inject(array_geometry{256, 32}, gen).fault_count(), 0u);

  // An absent pcell still means unset (and must stay absent on dump).
  const scenario_spec unset = scenario_spec::parse_text(R"({"name": "x"})");
  EXPECT_FALSE(unset.fault.pcell.has_value());
  EXPECT_EQ(unset.to_json().find("fault")->find("pcell"), nullptr);
  EXPECT_THROW((void)unset.resolved_pcell("test"), spec_error);
}

// --------------------------------------------- parse-time sweep checks

TEST(ScenarioSpec, ServeSectionRoundTripsAndValidates) {
  const scenario_spec spec = scenario_spec::parse_text(R"({
    "serve": {"clients": 4, "requests": 9000, "requests_per_epoch": 1000,
              "store_percent": 30, "quality_percent": 10,
              "initial_faults": 12, "arrivals_per_epoch": 3,
              "intermittent_cells": 2}})");
  EXPECT_EQ(spec.serve.clients, 4u);
  EXPECT_EQ(spec.serve.requests, 9000u);
  EXPECT_EQ(spec.serve.requests_per_epoch, 1000u);
  EXPECT_EQ(spec.serve.store_percent, 30u);
  EXPECT_EQ(spec.serve.quality_percent, 10u);
  EXPECT_EQ(spec.serve.initial_faults, 12u);
  const json_value first = spec.to_json();
  EXPECT_NE(first.find("serve"), nullptr);
  const json_value second = scenario_spec::from_json(first).to_json();
  EXPECT_EQ(first.dump(), second.dump());

  // A spec that never mentions serving must not grow a serve section.
  const scenario_spec plain =
      scenario_spec::parse_text(R"({"seeds": {"root": 3}})");
  EXPECT_EQ(plain.to_json().find("serve"), nullptr);
}

TEST(ScenarioSpec, ServeSectionRejectionsNameTheField) {
  try {
    (void)scenario_spec::parse_text(R"({"serve": {"clients": 0}})");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "serve.clients");
  }
  try {
    (void)scenario_spec::parse_text(
        R"({"serve": {"store_percent": 70, "quality_percent": 40}})");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "serve.store_percent");
  }
  try {
    (void)scenario_spec::parse_text(R"({"serve": {"reqeusts": 10}})");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "serve.reqeusts");
  }
}

TEST(ScenarioSpec, SweepPathsValidateAtParseTime) {
  // A misspelled axis path fails from_json (not the first grid point).
  try {
    (void)scenario_spec::parse_text(R"({"workload": "bist-march",
        "sweep": [{"param": "fault.pcellx", "values": [1e-4]}]})");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "sweep[0]");
    EXPECT_NE(std::string(error.what()).find("fault.pcellx"),
              std::string::npos);
  }
  // So does an out-of-range axis value.
  try {
    (void)scenario_spec::parse_text(R"({"workload": "bist-march",
        "sweep": [{"param": "fault.pcell", "values": [1e-4, 1.5]}]})");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "sweep[0]");
    EXPECT_NE(std::string(error.what()).find("1.5"), std::string::npos);
  }
  // Valid axes still parse.
  const scenario_spec spec = scenario_spec::parse_text(R"({"workload":
      "bist-march", "sweep": [{"param": "fault.pcell",
      "values": [1e-4, 1e-3]}]})");
  EXPECT_EQ(spec.sweep.size(), 1u);
}

// ------------------------------------------------------------ json layer

TEST(Json, ParseDumpRoundTrip) {
  const json_value doc = json_value::parse(
      R"({"a": 1, "b": [true, null, 2.5, "x\n"], "c": {"d": 1e-3}})");
  const json_value again = json_value::parse(doc.dump());
  EXPECT_TRUE(doc == again);
  EXPECT_EQ(doc.find("a")->as_u64(), 1u);
  EXPECT_DOUBLE_EQ(doc.find("c")->find("d")->as_double(), 1e-3);
}

TEST(Json, ParseErrorsCarryPosition) {
  try {
    (void)json_value::parse("{\n  \"a\": nope\n}");
    FAIL() << "expected json_parse_error";
  } catch (const json_parse_error& error) {
    EXPECT_EQ(error.line(), 2u);
  }
}

TEST(Json, IntegersRoundTripExactly) {
  const json_value doc = json_value::parse(R"({"seed": 18446744073709551615})");
  EXPECT_EQ(doc.find("seed")->as_u64(), 18446744073709551615ull);
  EXPECT_NE(doc.dump().find("18446744073709551615"), std::string::npos);
}

// ----------------------------------------------------- sweep-grid runner

TEST(ScenarioRunner, ExpandsSweepGridsInOrder) {
  scenario_spec spec = scenario_spec::parse_text(R"json({
    "name": "grid",
    "geometry": {"rows_per_tile": 64},
    "seeds": {"root": 5},
    "workload": {"name": "bist-march", "faults": 4, "nfm": 3},
    "sweep": [
      {"param": "workload.faults", "values": [2, 4]},
      {"param": "seeds.root", "values": [1, 2]}
    ]
  })json");
  const scenario_runner runner(spec);
  EXPECT_EQ(runner.grid_size(), 4u);

  std::ostringstream text;
  const scenario_report report = runner.run(text);
  ASSERT_EQ(report.points.size(), 4u);
  EXPECT_EQ(report.points[0].label, "workload.faults=2, seeds.root=1");
  EXPECT_EQ(report.points[3].label, "workload.faults=4, seeds.root=2");
  EXPECT_EQ(report.points[0].output.json.find("injected_faults")->as_u64(), 2u);
  EXPECT_EQ(report.points[3].output.json.find("injected_faults")->as_u64(), 4u);
  // The report JSON is deterministic and reparses.
  const json_value doc = report.to_json();
  EXPECT_TRUE(json_value::parse(doc.dump()) == doc);
}

TEST(ScenarioRunner, ValidatesNamesEagerly) {
  scenario_spec spec;
  spec.workload.name = "no-such-workload";
  EXPECT_THROW(scenario_runner{spec}, spec_error);

  scenario_spec bad_scheme = scenario_spec::parse_text(
      R"({"workload": "bist-march", "schemes": ["no-such-scheme"]})");
  EXPECT_THROW(scenario_runner{bad_scheme}, spec_error);
}

// ----------------------------------------------- stacked shuffle+ECC scheme

TEST(StackedScheme, RoundTripsAndCorrectsSingleFaults) {
  const std::uint32_t rows = 64;
  const auto scheme = make_scheme_stacked(rows, 32, 2,
                                          stacked_scheme::ecc_stage::secded);
  EXPECT_EQ(scheme->data_bits(), 32u);
  EXPECT_EQ(scheme->storage_bits(), 39u);
  EXPECT_EQ(scheme->lut_bits_per_row(), 2u);
  EXPECT_EQ(scheme->name(), "nFM=2+H(39,32) ECC");

  protected_memory memory(rows, make_scheme_stacked(
                                    rows, 32, 2,
                                    stacked_scheme::ecc_stage::secded));
  rng gen(7);
  const fault_map faults = sample_fault_map_exact(memory.storage_geometry(),
                                                  rows / 2, gen);
  memory.set_fault_map(faults);
  for (std::uint32_t row = 0; row < rows; ++row) {
    const word_t value = 0x9000'0000u + row * 2654435761u;
    memory.write(row, value & word_mask(32));
    const read_result r = memory.read(row);
    // With at most one fault per row the ECC stage corrects everything.
    if (faults.faults_in_row(row).size() <= 1) {
      EXPECT_EQ(r.data, value & word_mask(32)) << "row " << row;
    }
  }
}

TEST(StackedScheme, BlockPathsMatchScalar) {
  const std::uint32_t rows = 128;
  const auto scheme = make_scheme_stacked(rows, 32, 3,
                                          stacked_scheme::ecc_stage::pecc);
  rng gen(21);
  fault_map faults(array_geometry{rows, scheme->storage_bits()});
  for (int i = 0; i < 40; ++i) {
    faults.add({static_cast<std::uint32_t>(gen.uniform_below(rows)),
                static_cast<std::uint32_t>(
                    gen.uniform_below(scheme->storage_bits())),
                fault_kind::flip});
  }
  scheme->configure(faults);

  std::vector<word_t> data(rows);
  for (auto& word : data) word = gen() & word_mask(32);

  std::vector<word_t> block(rows);
  scheme->encode_block(0, data, block);
  for (std::uint32_t row = 0; row < rows; ++row) {
    EXPECT_EQ(block[row], scheme->encode(row, data[row])) << row;
    EXPECT_EQ(block[row], scheme->encode_reference(row, data[row])) << row;
  }

  std::vector<word_t> decoded(block);
  const block_decode_stats stats = scheme->decode_block(0, decoded, decoded);
  block_decode_stats scalar_stats;
  for (std::uint32_t row = 0; row < rows; ++row) {
    const read_result r = scheme->decode(row, block[row]);
    EXPECT_EQ(decoded[row], r.data) << row;
    EXPECT_EQ(decoded[row], data[row]) << row;  // fault-free storage here
    scalar_stats.count(r.status);
  }
  EXPECT_EQ(stats.corrected, scalar_stats.corrected);
  EXPECT_EQ(stats.uncorrectable, scalar_stats.uncorrectable);
}

TEST(StackedScheme, WorstCaseMatchesResidualBits) {
  const auto check = [](const protection_scheme& scheme) {
    rng gen(5);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint32_t> cols;
      const std::size_t n = 1 + gen.uniform_below(4);
      for (std::size_t i = 0; i < n; ++i) {
        cols.push_back(static_cast<std::uint32_t>(
            gen.uniform_below(scheme.storage_bits())));
      }
      std::vector<std::uint32_t> bits;
      scheme.residual_fault_bits(cols, bits);
      double expected = 0.0;
      for (const std::uint32_t b : bits) expected += std::ldexp(1.0, 2 * b);
      EXPECT_DOUBLE_EQ(scheme.worst_case_row_cost(cols), expected);
    }
  };
  check(*make_scheme_none());
  check(*make_scheme_secded());
  check(*make_scheme_pecc());
  check(*make_scheme_shuffle(16, 32, 2));
  check(*make_scheme_stacked(16, 32, 2, stacked_scheme::ecc_stage::secded));
  check(*make_scheme_stacked(16, 32, 1, stacked_scheme::ecc_stage::pecc));
}

// ------------------------------------------------- spare-row redundancy

TEST(ProtectedMemory, SpareRowsRepairFaultyRows) {
  const std::uint32_t rows = 32;
  const std::uint32_t spares = 4;
  protected_memory memory(rows, make_scheme_none(), spares);
  EXPECT_EQ(memory.rows(), rows);
  EXPECT_EQ(memory.storage_geometry().rows, rows + spares);

  // Three faulty data rows, MSB flips that no pass-through read survives.
  fault_map faults(memory.storage_geometry());
  faults.add({3, 31, fault_kind::flip});
  faults.add({9, 31, fault_kind::flip});
  faults.add({20, 31, fault_kind::flip});
  memory.set_fault_map(faults);
  ASSERT_EQ(memory.row_remaps().size(), 3u);

  std::vector<word_t> data(rows);
  for (std::uint32_t row = 0; row < rows; ++row) data[row] = 0x1234'0000u + row;
  memory.write_block(0, data);
  std::vector<word_t> readback(rows);
  memory.read_block(0, readback);
  // Remapped rows cost exactly one physical access like everyone else
  // (the energy model's one-access-per-word invariant).
  EXPECT_EQ(memory.array().access_count(), 2ull * rows);
  for (std::uint32_t row = 0; row < rows; ++row) {
    EXPECT_EQ(readback[row], data[row]) << "row " << row;
    EXPECT_EQ(memory.read(row).data, data[row]) << "row " << row;
  }
  // Every repaired row sits on a spare beyond the data rows.
  for (const auto& [logical, spare] : memory.row_remaps()) {
    EXPECT_LT(logical, rows);
    EXPECT_GE(spare, rows);
  }
  EXPECT_EQ(memory.analytic_mse(), 0.0);  // all faults repaired away
}

TEST(ProtectedMemory, ExhaustedSparesLeaveResidualFaults) {
  const std::uint32_t rows = 16;
  protected_memory memory(rows, make_scheme_none(), /*spare_rows=*/1);
  fault_map faults(memory.storage_geometry());
  faults.add({0, 31, fault_kind::flip});
  faults.add({1, 31, fault_kind::flip});
  memory.set_fault_map(faults);
  ASSERT_EQ(memory.row_remaps().size(), 1u);  // one spare, one repair

  memory.write(0, 0);
  memory.write(1, 0);
  const bool row0_clean = memory.read(0).data == 0;
  const bool row1_clean = memory.read(1).data == 0;
  EXPECT_TRUE(row0_clean != row1_clean);  // exactly one row still faulty
  EXPECT_GT(memory.analytic_mse(), 0.0);
}

TEST(MemoryPipeline, RedundancySchemeRecipePlumbsSpares) {
  // The registry's "redundancy" recipe must improve on "none" under the
  // exact same fault stream when spares cover the faulty rows.
  const geometry_spec geometry{64, 32, 16};
  scheme_ref redundancy_ref{"redundancy", option_map("schemes[0]")};
  redundancy_ref.options.set("spares", "16");
  const scheme_recipe redundancy =
      scheme_registry::instance().make(redundancy_ref, geometry);
  EXPECT_EQ(redundancy.spare_rows, 16u);
  EXPECT_EQ(redundancy.display_name, "spare-rows(16)");
}

// --------------------------------------------------- named seed streams

TEST(SeedPolicy, NamedStreamsAreStableAndDistinct) {
  static_assert(stream_tag("quality.baseline") != stream_tag("bist.faults"));
  rng a = named_stream_rng(42, "quality.baseline");
  rng b = named_stream_rng(42, "quality.baseline");
  rng c = named_stream_rng(42, "bist.faults");
  const std::uint64_t first = a();
  EXPECT_EQ(first, b());
  EXPECT_NE(first, c());
  // Named streams coincide with the generic stream-seed policy.
  rng d = make_stream_rng(42, stream_tag("quality.baseline"));
  EXPECT_EQ(a(), (d(), d()));
}

}  // namespace
}  // namespace urmem
