// Adversarial failure-injection tests: worst-case fault patterns that
// random sampling would almost never produce — saturated rows, stuck
// columns, pathological segment collisions, and corrupted FM-LUTs.
#include <gtest/gtest.h>

#include <cmath>

#include "urmem/bist/bist_engine.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/memory/sram_array.hpp"
#include "urmem/scheme/protected_memory.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/shuffle/shift_policy.hpp"

namespace urmem {
namespace {

TEST(AdversarialTest, FullyFaultyRowStillRoundTripsThroughShuffle) {
  // Every cell of a row inverts: the rotation is futile but must stay
  // functionally correct (rotate + flip-all + rotate-back = flip-all).
  const std::uint32_t rows = 4;
  fault_map faults({rows, 32});
  for (std::uint32_t col = 0; col < 32; ++col) {
    faults.add({1, col, fault_kind::flip});
  }
  protected_memory memory(rows, make_scheme_shuffle(rows, 32, 5));
  memory.set_fault_map(std::move(faults));
  memory.write(1, 0x0F0F0F0FULL);
  EXPECT_EQ(memory.read(1).data, ~0x0F0F0F0FULL & word_mask(32));
}

TEST(AdversarialTest, StuckColumnAcrossAllRows) {
  // A broken bitline: column 31 stuck at 1 in every row. The shuffle
  // scheme moves each row's LSB segment there — every row survives with
  // error <= 1.
  const std::uint32_t rows = 128;
  fault_map faults({rows, 32});
  for (std::uint32_t row = 0; row < rows; ++row) {
    faults.add({row, 31, fault_kind::stuck_at_one});
  }
  protected_memory memory(rows, make_scheme_shuffle(rows, 32, 5));
  memory.set_fault_map(std::move(faults));
  rng gen(1);
  for (std::uint32_t row = 0; row < rows; ++row) {
    const word_t data = gen() & word_mask(32);
    memory.write(row, data);
    EXPECT_LE(std::abs(to_signed(memory.read(row).data, 32) - to_signed(data, 32)),
              1);
  }
}

TEST(AdversarialTest, OppositeSegmentPairForcesKnownWorstCase) {
  // For nFM=2 (4 segments of 8), faults at columns {0, 16} sit two
  // segments apart: every shift leaves one of them 16 positions above
  // the other, so the optimal cost is exactly 4^16 + 4^0.
  const bit_shuffler s(32, 2);
  const std::uint32_t cols[] = {0, 16};
  const unsigned best = choose_xfm(s, cols);
  EXPECT_DOUBLE_EQ(shift_cost(s, cols, best), std::ldexp(1.0, 32) + 1.0);
}

TEST(AdversarialTest, OneFaultPerSegmentDefeatsShifting) {
  // Faults at {0, 8, 16, 24} with nFM=2: every shift maps the set onto
  // itself — the cost is shift-invariant and the LUT cannot help.
  const bit_shuffler s(32, 2);
  const std::uint32_t cols[] = {0, 8, 16, 24};
  const double cost0 = shift_cost(s, cols, 0);
  for (unsigned xfm = 1; xfm < 4; ++xfm) {
    EXPECT_DOUBLE_EQ(shift_cost(s, cols, xfm), cost0);
  }
}

TEST(AdversarialTest, EccRowSaturatedWithFaults) {
  // 39 of 39 columns flipped: decode must not crash and must flag the
  // row (even-weight full inversion -> detected_uncorrectable).
  protected_memory memory(2, make_scheme_secded());
  fault_map faults(memory.storage_geometry());
  for (std::uint32_t col = 0; col < 39; ++col) {
    faults.add({0, col, fault_kind::flip});
  }
  memory.set_fault_map(std::move(faults));
  memory.write(0, 0x12345678ULL);
  const read_result r = memory.read(0);
  EXPECT_EQ(r.status, ecc_status::detected_uncorrectable);
}

TEST(AdversarialTest, PeccAllParityColumnsFaulty) {
  // All 6 check columns of the inner H(22,16) flipped, data columns
  // clean: the decoder must not corrupt the data half.
  const priority_ecc codec;
  protected_memory memory(2, make_scheme_pecc());
  fault_map faults(memory.storage_geometry());
  for (unsigned col = 16; col < 38; ++col) {
    if (codec.data_bit_at_column(col) < 0) {
      faults.add({0, col, fault_kind::flip});
    }
  }
  memory.set_fault_map(std::move(faults));
  memory.write(0, 0xABCD1234ULL);
  EXPECT_EQ(memory.read(0).data, 0xABCD1234ULL);
}

TEST(AdversarialTest, CorruptedLutEntryMisrotatesOnlyThatRow) {
  const std::uint32_t rows = 8;
  shuffle_scheme scheme(rows, 32, 5);
  scheme.program(fault_map({rows, 32}));  // fault-free: all shifts 0
  scheme.mutable_lut().set(3, 11);        // LUT corruption after programming

  sram_array array(array_geometry{rows, 32});
  for (std::uint32_t row = 0; row < rows; ++row) {
    array.write(row, scheme.apply_write(row, 0x00000001ULL));
  }
  for (std::uint32_t row = 0; row < rows; ++row) {
    const word_t readback = scheme.restore_read(row, array.read(row));
    // Consistent apply/restore still round-trips even with a wrong
    // entry (both sides use the same LUT)...
    EXPECT_EQ(readback, 0x00000001ULL) << "row " << row;
  }
  // ...the hazard is a LUT bit that changes BETWEEN write and read.
  array.write(3, scheme.apply_write(3, 0x00000001ULL));
  scheme.mutable_lut().set(3, 12);
  EXPECT_NE(scheme.restore_read(3, array.read(3)), 0x00000001ULL);
}

TEST(AdversarialTest, BistOnFullyBrokenArray) {
  // Every cell stuck at 0: March C- must report all M faults.
  const array_geometry geometry{16, 8};
  fault_map faults(geometry);
  for (std::uint32_t row = 0; row < geometry.rows; ++row) {
    for (std::uint32_t col = 0; col < geometry.width; ++col) {
      faults.add({row, col, fault_kind::stuck_at_zero});
    }
  }
  sram_array array(faults);
  const bist_result result = bist_engine().run(array);
  EXPECT_EQ(result.faults.fault_count(), geometry.cells());
  for (const fault& f : result.faults.all_faults()) {
    EXPECT_EQ(f.kind, fault_kind::stuck_at_zero);
  }
}

TEST(AdversarialTest, ShuffleWithMaxSegmentSizeStillHelps) {
  // nFM=1 (two 16-bit segments): an MSB fault moves into the low half,
  // bounding the error by 2^15 instead of 2^31.
  const std::uint32_t rows = 4;
  fault_map faults({rows, 32});
  faults.add({0, 31, fault_kind::flip});
  protected_memory memory(rows, make_scheme_shuffle(rows, 32, 1));
  memory.set_fault_map(std::move(faults));
  memory.write(0, 0);
  const auto error = std::abs(to_signed(memory.read(0).data, 32));
  EXPECT_LE(error, 1LL << 15);
  EXPECT_GT(error, 0);
}

TEST(AdversarialTest, SignBitStuckAtOneOnNegativeDataIsFree) {
  // Data-dependent fault visibility: storing a negative number in a row
  // whose sign-bit cell is stuck at 1 is error-free.
  fault_map faults({2, 32});
  faults.add({0, 31, fault_kind::stuck_at_one});
  sram_array array(faults);
  const word_t negative = from_signed(-5, 32);
  array.write(0, negative);
  EXPECT_EQ(array.read(0), negative);
}

}  // namespace
}  // namespace urmem
