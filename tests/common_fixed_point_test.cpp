// Tests for the fixed-point codec and the console table formatter.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "urmem/common/fixed_point.hpp"
#include "urmem/common/table.hpp"

namespace urmem {
namespace {

TEST(FixedPointTest, Q16RoundTripWithinResolution) {
  const fixed_point_codec codec(32, 16);
  for (const double v : {0.0, 1.0, -1.0, 3.14159, -2.71828, 1000.5, -20000.25}) {
    const double decoded = codec.decode(codec.encode(v));
    EXPECT_NEAR(decoded, v, codec.resolution() / 2.0 + 1e-12) << "v=" << v;
  }
}

TEST(FixedPointTest, ResolutionAndRange) {
  const fixed_point_codec codec(32, 16);
  EXPECT_DOUBLE_EQ(codec.resolution(), 1.0 / 65536.0);
  EXPECT_NEAR(codec.max_value(), 32768.0, 1.0);
  EXPECT_NEAR(codec.min_value(), -32768.0, 1.0);
}

TEST(FixedPointTest, SaturatesOutOfRange) {
  const fixed_point_codec codec(32, 16);
  EXPECT_DOUBLE_EQ(codec.decode(codec.encode(1e9)), codec.max_value());
  EXPECT_DOUBLE_EQ(codec.decode(codec.encode(-1e9)), codec.min_value());
}

TEST(FixedPointTest, NegativeValuesUseTwosComplement) {
  const fixed_point_codec codec(32, 16);
  const word_t encoded = codec.encode(-1.0);
  // -1.0 * 2^16 = -65536 -> 0xFFFF0000 in 32-bit two's complement.
  EXPECT_EQ(encoded, 0xFFFF0000ULL);
}

TEST(FixedPointTest, IntegerOnlyFormat) {
  const fixed_point_codec codec(16, 0);
  EXPECT_EQ(codec.encode(42.4), from_signed(42, 16));
  EXPECT_EQ(codec.encode(42.6), from_signed(43, 16));
  EXPECT_DOUBLE_EQ(codec.decode(from_signed(-5, 16)), -5.0);
}

TEST(FixedPointTest, MsbFlipIsLargestError) {
  // A fault in the sign bit of Q15.16 changes the value by 2^15 — the
  // 2^b error-magnitude convention of Eq. (6).
  const fixed_point_codec codec(32, 16);
  const word_t clean = codec.encode(1.5);
  const word_t corrupted = flip_bit(clean, 31);
  EXPECT_NEAR(std::abs(codec.decode(corrupted) - 1.5), 32768.0, 1e-9);
}

TEST(FixedPointTest, RejectsBadConfiguration) {
  EXPECT_THROW(fixed_point_codec(1, 0), std::invalid_argument);
  EXPECT_THROW(fixed_point_codec(32, 32), std::invalid_argument);
  EXPECT_THROW(fixed_point_codec(65, 4), std::invalid_argument);
}

TEST(TableTest, RendersAlignedMarkdown) {
  console_table table({"scheme", "mse"});
  table.add_row({"none", "1.5"});
  table.add_row({"nFM=1", "0.001"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| scheme |"), std::string::npos);
  EXPECT_NE(text.find("| nFM=1 "), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TableTest, RejectsRaggedRows) {
  console_table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(format_percent(0.314159, 1), "31.4%");
  EXPECT_EQ(format_scientific(123456.0, 2), "1.23e+05");
  EXPECT_EQ(format_double(2.5, 3), "2.5");
}

}  // namespace
}  // namespace urmem
