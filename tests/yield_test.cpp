// Tests for the yield/MSE machinery of paper Sec. 4: the stratified
// Monte-Carlo CDF (Fig. 5) and the quality-aware yield criterion.
#include <gtest/gtest.h>

#include <cmath>

#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace urmem {
namespace {

mse_cdf_config small_config() {
  mse_cdf_config config;
  config.total_runs = 200'000;
  config.n_max = 40;
  config.seed = 7;
  return config;
}

TEST(MseCdfTest, ProducesValidDistribution) {
  const auto scheme = make_scheme_none();
  const empirical_cdf cdf = compute_mse_cdf(*scheme, 4096, 5e-6, small_config());
  EXPECT_GT(cdf.size(), 10u);
  EXPECT_DOUBLE_EQ(cdf.cumulative().back(), 1.0);
  // Support of the unprotected scheme spans many decades.
  EXPECT_LT(cdf.support().front(), 1.0);
  EXPECT_GT(cdf.support().back(), 1e6);
}

TEST(MseCdfTest, ShuffleDominatesUnprotected) {
  // The Fig. 5 headline: bit-shuffling reduces the MSE that must be
  // tolerated for a given yield by orders of magnitude.
  const auto none = make_scheme_none();
  const auto shuffled = make_scheme_shuffle(4096, 32, 1);
  const auto cfg = small_config();
  const empirical_cdf cdf_none = compute_mse_cdf(*none, 4096, 5e-6, cfg);
  const empirical_cdf cdf_shuffle = compute_mse_cdf(*shuffled, 4096, 5e-6, cfg);
  for (const double y : {0.5, 0.9, 0.99}) {
    EXPECT_LT(mse_for_yield(cdf_shuffle, y) * 30.0, mse_for_yield(cdf_none, y))
        << "yield target " << y;
  }
}

TEST(MseCdfTest, HigherNfmGivesLowerMseQuantiles) {
  const auto cfg = small_config();
  double prev = 1e300;
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    const auto scheme = make_scheme_shuffle(4096, 32, n_fm);
    const empirical_cdf cdf = compute_mse_cdf(*scheme, 4096, 5e-6, cfg);
    const double q99 = mse_for_yield(cdf, 0.99);
    EXPECT_LE(q99, prev) << "nFM=" << n_fm;
    prev = q99;
  }
}

TEST(MseCdfTest, ShuffleMseRespectsSingleFaultBound) {
  // Single faults dominate at Pcell = 5e-6: the 1-fault stratum (~71%
  // of the conditional mass) respects the exact (2^(S-1))^2 / R bound.
  // Rare multi-fault rows may exceed it (a second fault can land in a
  // higher segment), but even those stay orders of magnitude below the
  // unprotected worst case of (2^31)^2 / R.
  const auto scheme = make_scheme_shuffle(4096, 32, 2);  // S = 8
  const empirical_cdf cdf = compute_mse_cdf(*scheme, 4096, 5e-6, small_config());
  const double per_fault = std::ldexp(1.0, 14) / 4096.0;  // (2^7)^2 / R
  EXPECT_LE(cdf.quantile(0.7), per_fault + 1e-12);
  EXPECT_LT(cdf.support().back(), std::ldexp(1.0, 62) / 4096.0 * 1e-6);
}

TEST(MseCdfTest, SecdedIsAlmostAlwaysZero) {
  const auto scheme = make_scheme_secded();
  const empirical_cdf cdf = compute_mse_cdf(*scheme, 4096, 5e-6, small_config());
  // Two faults in the same row are overwhelmingly unlikely at this
  // Pcell: virtually all mass sits at MSE = 0.
  EXPECT_GT(yield_at_mse(cdf, 0.0), 0.999);
}

TEST(MseCdfTest, IncludeFaultFreeAddsMassAtZero) {
  const auto scheme = make_scheme_none();
  auto cfg = small_config();
  const empirical_cdf without = compute_mse_cdf(*scheme, 4096, 5e-6, cfg);
  cfg.include_fault_free = true;
  const empirical_cdf with = compute_mse_cdf(*scheme, 4096, 5e-6, cfg);
  // Pr(N=0) ~ 0.52 at this operating point, so the CDF at tiny MSE
  // jumps by roughly that much.
  EXPECT_GT(yield_at_mse(with, 0.0), 0.5);
  EXPECT_LT(yield_at_mse(without, 0.0), 0.05);
}

TEST(MseCdfTest, YieldQueriesAreConsistent) {
  const auto scheme = make_scheme_pecc();
  const empirical_cdf cdf = compute_mse_cdf(*scheme, 4096, 5e-6, small_config());
  for (const double y : {0.3, 0.6, 0.9}) {
    const double budget = mse_for_yield(cdf, y);
    EXPECT_GE(yield_at_mse(cdf, budget), y);
  }
}

TEST(MseCdfTest, DeterministicUnderSeed) {
  const auto scheme = make_scheme_none();
  const auto cfg = small_config();
  const empirical_cdf a = compute_mse_cdf(*scheme, 4096, 5e-6, cfg);
  const empirical_cdf b = compute_mse_cdf(*scheme, 4096, 5e-6, cfg);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.support(), b.support());
}

TEST(MseCdfTest, RejectsBadConfig) {
  const auto scheme = make_scheme_none();
  mse_cdf_config config;
  config.n_min = 5;
  config.n_max = 2;
  EXPECT_THROW(compute_mse_cdf(*scheme, 4096, 5e-6, config),
               std::invalid_argument);
  EXPECT_THROW(compute_mse_cdf(*scheme, 4096, 0.0, small_config()),
               std::invalid_argument);
}

TEST(MseCdfTest, TinyRunCountStillCoversDominantStrata) {
  const auto scheme = make_scheme_none();
  mse_cdf_config config;
  config.total_runs = 100;  // only the n=1..3 strata get samples
  config.seed = 3;
  const empirical_cdf cdf = compute_mse_cdf(*scheme, 4096, 5e-6, config);
  EXPECT_GT(cdf.size(), 5u);
}

}  // namespace
}  // namespace urmem
