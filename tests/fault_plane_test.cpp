// Property tests for the compiled fault-plane fast path: over randomized
// fault maps covering all five fault_kinds, compiled-plane reads/writes
// (single-word and batched row ops) must be bit-identical to the
// per-cell reference walk and to fault_map's own mask path — including
// transition faults across write sequences — and the batched APIs must
// keep sram_array::access_count() at exactly one access per word.
#include <gtest/gtest.h>

#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_plane.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/memory/sram_array.hpp"

namespace urmem {
namespace {

constexpr fault_kind kAllKinds[] = {
    fault_kind::stuck_at_zero, fault_kind::stuck_at_one, fault_kind::flip,
    fault_kind::transition_up_fail, fault_kind::transition_down_fail};

// Random map with `count` faults drawn uniformly over cells and kinds —
// unlike the samplers' polarity presets this guarantees every kind has
// equal mass, so thin kinds (transition faults) are always exercised.
fault_map random_map(const array_geometry& geometry, std::uint64_t count,
                     rng& gen) {
  fault_map map(geometry);
  for (std::uint64_t i = 0; i < count; ++i) {
    map.add({static_cast<std::uint32_t>(gen.uniform_below(geometry.rows)),
             static_cast<std::uint32_t>(gen.uniform_below(geometry.width)),
             kAllKinds[gen.uniform_below(5)]});
  }
  return map;
}

std::vector<word_t> random_words(std::uint32_t count, unsigned width, rng& gen) {
  std::vector<word_t> out(count);
  for (auto& w : out) w = gen() & word_mask(width);
  return out;
}

TEST(FaultPlaneTest, CompiledMatchesReferenceAndMaskPathOnReads) {
  rng gen(2024);
  for (int round = 0; round < 40; ++round) {
    const array_geometry geometry{
        static_cast<std::uint32_t>(1 + gen.uniform_below(300)),
        static_cast<std::uint32_t>(1 + gen.uniform_below(64))};
    const fault_map map =
        random_map(geometry, gen.uniform_below(2 * geometry.rows + 1), gen);
    const fault_plane plane(map);
    ASSERT_EQ(plane.fault_count(), map.fault_count());
    for (int probe = 0; probe < 50; ++probe) {
      const auto row =
          static_cast<std::uint32_t>(gen.uniform_below(geometry.rows));
      const word_t ideal = gen();  // deliberately unmasked input
      const word_t expected = map.corrupt(row, ideal);
      EXPECT_EQ(plane.corrupt(row, ideal & word_mask(geometry.width)), expected);
      EXPECT_EQ(map.corrupt_reference(row, ideal), expected);
    }
  }
}

TEST(FaultPlaneTest, CompiledMatchesReferenceOnWrites) {
  rng gen(77);
  for (int round = 0; round < 40; ++round) {
    const array_geometry geometry{
        static_cast<std::uint32_t>(1 + gen.uniform_below(200)),
        static_cast<std::uint32_t>(1 + gen.uniform_below(64))};
    const fault_map map =
        random_map(geometry, gen.uniform_below(2 * geometry.rows + 1), gen);
    const fault_plane plane(map);
    for (int probe = 0; probe < 50; ++probe) {
      const auto row =
          static_cast<std::uint32_t>(gen.uniform_below(geometry.rows));
      const word_t old = gen();
      const word_t incoming = gen();
      const word_t expected = map.apply_write(row, old, incoming);
      EXPECT_EQ(plane.apply_write(row, old, incoming), expected);
      EXPECT_EQ(map.apply_write_reference(row, old, incoming), expected);
    }
  }
}

TEST(FaultPlaneTest, BatchedRowOpsMatchPerWordOpsAcrossWriteSequences) {
  rng gen(5150);
  for (int round = 0; round < 15; ++round) {
    const array_geometry geometry{
        static_cast<std::uint32_t>(2 + gen.uniform_below(400)),
        static_cast<std::uint32_t>(1 + gen.uniform_below(64))};
    const fault_map map =
        random_map(geometry, gen.uniform_below(3 * geometry.rows + 1), gen);

    sram_array batched(map);
    batched.set_fault_path(fault_path::compiled);
    sram_array oracle(map);
    oracle.set_fault_path(fault_path::reference);

    // Several full-array writes so transition faults see 0->1 and 1->0
    // transitions whose outcome depends on the accumulated cell state.
    for (int pass = 0; pass < 4; ++pass) {
      const auto pattern = random_words(geometry.rows, geometry.width, gen);
      batched.write_rows(0, pattern);
      for (std::uint32_t row = 0; row < geometry.rows; ++row) {
        oracle.write(row, pattern[row]);
      }
      std::vector<word_t> out(geometry.rows);
      batched.read_rows(0, out);
      for (std::uint32_t row = 0; row < geometry.rows; ++row) {
        ASSERT_EQ(out[row], oracle.read(row))
            << "pass " << pass << " row " << row;
        ASSERT_EQ(batched.read_ideal(row), oracle.read_ideal(row))
            << "pass " << pass << " row " << row;
      }
    }

    // Partial-range ops agree with per-word ops on a third array.
    const auto first =
        static_cast<std::uint32_t>(gen.uniform_below(geometry.rows));
    const auto count = static_cast<std::uint32_t>(
        1 + gen.uniform_below(geometry.rows - first));
    const auto chunk = random_words(count, geometry.width, gen);
    batched.write_rows(first, chunk);
    for (std::uint32_t i = 0; i < count; ++i) oracle.write(first + i, chunk[i]);
    std::vector<word_t> slice(count);
    batched.read_rows(first, slice);
    for (std::uint32_t i = 0; i < count; ++i) {
      ASSERT_EQ(slice[i], oracle.read(first + i));
    }
  }
}

TEST(FaultPlaneTest, MixedPolaritySamplerMapsCompileIdentically) {
  rng gen(31337);
  const array_geometry geometry{512, 32};
  const fault_map map = sample_fault_map_exact(geometry, 800, gen,
                                               fault_polarity::mixed);
  const fault_plane plane(map);
  rng probe(1);
  for (int i = 0; i < 2000; ++i) {
    const auto row = static_cast<std::uint32_t>(probe.uniform_below(512));
    const word_t ideal = probe() & word_mask(32);
    EXPECT_EQ(plane.corrupt(row, ideal), map.corrupt_reference(row, ideal));
  }
}

TEST(FaultPlaneTest, FaultFreeSpanSkipsAreExact) {
  fault_map map({256, 16});
  map.add({0, 3, fault_kind::flip});
  map.add({63, 1, fault_kind::stuck_at_one});
  map.add({64, 0, fault_kind::stuck_at_zero});
  map.add({255, 15, fault_kind::flip});
  const fault_plane plane(map);

  EXPECT_FALSE(plane.rows_fault_free(0, 256));
  EXPECT_TRUE(plane.rows_fault_free(1, 62));    // 1..62 clean
  EXPECT_FALSE(plane.rows_fault_free(1, 63));   // picks up row 63
  EXPECT_TRUE(plane.rows_fault_free(65, 190));  // 65..254 clean
  EXPECT_FALSE(plane.rows_fault_free(65, 191)); // picks up row 255
  EXPECT_TRUE(plane.rows_fault_free(100, 0));

  // A fault-free plane corrupts nothing under the batched op.
  const fault_plane clean((fault_map(array_geometry{8, 16})));
  std::vector<word_t> words{1, 2, 3, 4, 5, 6, 7, 8};
  const auto before = words;
  clean.corrupt_rows(0, words);
  EXPECT_EQ(words, before);
}

TEST(FaultPlaneTest, SetFaultsRecompilesThePlane) {
  const array_geometry geometry{16, 8};
  sram_array array{(fault_map(geometry))};
  array.write(3, 0xFF);
  EXPECT_EQ(array.read(3), 0xFFULL);

  fault_map faults(geometry);
  faults.add({3, 0, fault_kind::stuck_at_zero});
  array.set_faults(faults);  // must invalidate the compiled plane
  EXPECT_EQ(array.read(3), 0xFEULL);
  EXPECT_FALSE(array.plane().rows_fault_free(3, 1));

  array.set_faults(fault_map(geometry));  // back to clean
  EXPECT_EQ(array.read(3), 0xFFULL);
  EXPECT_TRUE(array.plane().rows_fault_free(0, 16));
}

TEST(FaultPlaneTest, AccessCountIsOnePerWordUnderBatchedOps) {
  const array_geometry geometry{64, 32};
  sram_array array{(fault_map(geometry))};
  EXPECT_EQ(array.access_count(), 0u);

  const std::vector<word_t> words(64, 0xABCD);
  array.write_rows(0, std::span(words).subspan(0, 40));
  EXPECT_EQ(array.access_count(), 40u);

  std::vector<word_t> out(25);
  array.read_rows(10, out);
  EXPECT_EQ(array.access_count(), 65u);

  // Batched and per-word accounting agree: same op count either way.
  sram_array per_word{(fault_map(geometry))};
  for (std::uint32_t row = 0; row < 40; ++row) per_word.write(row, 0xABCD);
  for (std::uint32_t row = 10; row < 35; ++row) (void)per_word.read(row);
  EXPECT_EQ(per_word.access_count(), array.access_count());

  // Empty spans are legal and cost nothing.
  array.write_rows(64, std::span<const word_t>());
  array.read_rows(0, std::span<word_t>());
  EXPECT_EQ(array.access_count(), 65u);

  // The reference oracle counts identically.
  array.set_fault_path(fault_path::reference);
  array.read_rows(0, out);
  EXPECT_EQ(array.access_count(), 90u);
}

TEST(FaultPlaneTest, BatchedOpsRejectOutOfRangeSpans) {
  sram_array array{(fault_map(array_geometry{8, 8}))};
  std::vector<word_t> nine(9, 0);
  EXPECT_THROW(array.read_rows(0, nine), std::invalid_argument);
  EXPECT_THROW(array.write_rows(1, std::span<const word_t>(nine.data(), 8)),
               std::invalid_argument);
  EXPECT_THROW(array.read_rows(9, std::span<word_t>(nine.data(), 0)),
               std::invalid_argument);
  const fault_plane plane((fault_map(array_geometry{8, 8})));
  EXPECT_THROW((void)plane.corrupt(8, 0), std::invalid_argument);
  EXPECT_THROW((void)plane.rows_fault_free(0, 9), std::invalid_argument);
  EXPECT_THROW((void)plane.rows_fault_free(9, 0), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
