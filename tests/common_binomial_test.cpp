// Tests for the binomial fault-count machinery (paper Eq. 4).
#include <gtest/gtest.h>

#include <cmath>

#include "urmem/common/binomial.hpp"

namespace urmem {
namespace {

TEST(BinomialTest, PmfMatchesSmallClosedForm) {
  const binomial_distribution d(4, 0.5);
  EXPECT_NEAR(d.pmf(0), 1.0 / 16.0, 1e-12);
  EXPECT_NEAR(d.pmf(1), 4.0 / 16.0, 1e-12);
  EXPECT_NEAR(d.pmf(2), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(d.pmf(4), 1.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.pmf(5), 0.0);
}

TEST(BinomialTest, PmfSumsToOneAtPaperScale) {
  // The Fig. 5 configuration: M = 131072 cells, Pcell = 5e-6.
  const binomial_distribution d(131072, 5e-6);
  double total = 0.0;
  for (std::uint64_t n = 0; n <= 60; ++n) total += d.pmf(n);
  EXPECT_NEAR(total, 1.0, 1e-9);  // lgamma limits absolute precision
  EXPECT_NEAR(d.mean(), 0.65536, 1e-9);
}

TEST(BinomialTest, ExtremeProbabilitiesDoNotUnderflow) {
  const binomial_distribution d(131072, 1e-9);
  EXPECT_GT(d.pmf(0), 0.99);
  EXPECT_GT(d.pmf(1), 0.0);
  EXPECT_TRUE(std::isfinite(d.log_pmf(10)));
}

TEST(BinomialTest, DegenerateEdges) {
  const binomial_distribution zero(10, 0.0);
  EXPECT_DOUBLE_EQ(zero.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(zero.pmf(1), 0.0);
  const binomial_distribution one(10, 1.0);
  EXPECT_DOUBLE_EQ(one.pmf(10), 1.0);
  EXPECT_DOUBLE_EQ(one.pmf(9), 0.0);
}

TEST(BinomialTest, CdfMonotoneReachesOne) {
  const binomial_distribution d(131072, 1e-3);
  double prev = 0.0;
  for (std::uint64_t n = 50; n <= 250; n += 10) {
    const double c = d.cdf(n);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(d.cdf(250), 1.0, 1e-9);
}

TEST(BinomialTest, QuantileBracketsTheMass) {
  const binomial_distribution d(131072, 1e-3);  // mean ~131
  const std::uint64_t q99 = d.quantile(0.99);
  EXPECT_GT(q99, 131u);
  EXPECT_LT(q99, 200u);
  EXPECT_GE(d.cdf(q99), 0.99);
  EXPECT_LT(d.cdf(q99 - 1), 0.99);
}

TEST(BinomialTest, SamplerMatchesMoments) {
  const binomial_distribution d(131072, 1e-3);
  rng gen(31);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int runs = 20000;
  for (int i = 0; i < runs; ++i) {
    const auto n = static_cast<double>(d.sample(gen));
    sum += n;
    sum_sq += n * n;
  }
  const double m = sum / runs;
  const double var = sum_sq / runs - m * m;
  EXPECT_NEAR(m, d.mean(), 0.5);
  EXPECT_NEAR(var, d.variance(), d.variance() * 0.1);
}

TEST(BinomialTest, StratifiedCountsFollowPmf) {
  const binomial_distribution d(131072, 5e-6);
  const auto counts = stratified_sample_counts(d, 150, 10'000'000);
  ASSERT_EQ(counts.size(), 150u);
  // Paper: samples per count = Pr(N=n) * Trun.
  EXPECT_EQ(counts[0], static_cast<std::uint64_t>(std::llround(d.pmf(1) * 1e7)));
  EXPECT_EQ(counts[1], static_cast<std::uint64_t>(std::llround(d.pmf(2) * 1e7)));
  // Counts must decay to zero in the far tail.
  EXPECT_EQ(counts[149], 0u);
  // The bulk allocation is a a large fraction of Trun (N>=1 strata).
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_GT(total, 4'000'000u);
  EXPECT_LT(total, 5'500'000u);
}

TEST(BinomialTest, RejectsInvalidParameters) {
  EXPECT_THROW(binomial_distribution(0, 0.5), std::invalid_argument);
  EXPECT_THROW(binomial_distribution(10, -0.1), std::invalid_argument);
  EXPECT_THROW(binomial_distribution(10, 1.1), std::invalid_argument);
  const binomial_distribution d(10, 0.5);
  EXPECT_THROW((void)d.quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)d.quantile(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
