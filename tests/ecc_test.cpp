// Tests for the Hamming SECDED codecs and priority ECC: code parameters
// from the paper (Sec. 2), exhaustive single-error correction, and
// double-error detection.
#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "urmem/common/rng.hpp"
#include "urmem/ecc/bch.hpp"
#include "urmem/ecc/hamming_secded.hpp"
#include "urmem/ecc/hsiao.hpp"
#include "urmem/ecc/priority_ecc.hpp"

namespace urmem {
namespace {

TEST(HammingTest, PaperCodeParameters) {
  // "For a 32-bit data word, c = 7 parity bits are needed for SECDED
  // ECC, in what is known as an H(39,32) code."
  const hamming_secded h39 = make_h39_32();
  EXPECT_EQ(h39.data_bits(), 32u);
  EXPECT_EQ(h39.check_bits(), 7u);
  EXPECT_EQ(h39.codeword_bits(), 39u);

  const hamming_secded h22 = make_h22_16();
  EXPECT_EQ(h22.data_bits(), 16u);
  EXPECT_EQ(h22.check_bits(), 6u);
  EXPECT_EQ(h22.codeword_bits(), 22u);

  const hamming_secded h13 = make_h13_8();
  EXPECT_EQ(h13.data_bits(), 8u);
  EXPECT_EQ(h13.codeword_bits(), 13u);
}

TEST(HammingTest, CleanRoundTrip) {
  const hamming_secded code(32);
  rng gen(1);
  for (int i = 0; i < 200; ++i) {
    const word_t data = gen() & word_mask(32);
    const ecc_decode_result r = code.decode(code.encode(data));
    EXPECT_EQ(r.data, data);
    EXPECT_EQ(r.status, ecc_status::clean);
  }
}

TEST(HammingTest, CodewordHasEvenWeight) {
  const hamming_secded code(32);
  rng gen(2);
  for (int i = 0; i < 100; ++i) {
    const word_t cw = code.encode(gen() & word_mask(32));
    EXPECT_EQ(std::popcount(cw) % 2, 0) << "codeword " << cw;
  }
}

TEST(HammingTest, DataColumnMapsAreConsistent) {
  const hamming_secded code(32);
  for (unsigned bit = 0; bit < 32; ++bit) {
    const unsigned col = code.data_column(bit);
    EXPECT_EQ(code.data_bit_at_column(col), static_cast<int>(bit));
    EXPECT_FALSE(col == 0 || is_power_of_two(col));
  }
  EXPECT_EQ(code.data_bit_at_column(0), -1);   // overall parity
  EXPECT_EQ(code.data_bit_at_column(1), -1);   // p0
  EXPECT_EQ(code.data_bit_at_column(2), -1);   // p1
  EXPECT_EQ(code.data_bit_at_column(4), -1);   // p2
  EXPECT_EQ(code.data_bit_at_column(32), -1);  // p5
}

/// Property: every single-bit error at every codeword position is
/// corrected, for several code sizes.
class SecdedSingleError : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedSingleError, AllPositionsCorrected) {
  const hamming_secded code(GetParam());
  rng gen(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const word_t data = gen() & word_mask(code.data_bits());
    const word_t cw = code.encode(data);
    for (unsigned pos = 0; pos < code.codeword_bits(); ++pos) {
      const ecc_decode_result r = code.decode(flip_bit(cw, pos));
      EXPECT_EQ(r.data, data) << "pos=" << pos;
      EXPECT_EQ(r.status, ecc_status::corrected) << "pos=" << pos;
    }
  }
}

TEST_P(SecdedSingleError, AllDoubleErrorsDetectedNotMiscorrected) {
  const hamming_secded code(GetParam());
  rng gen(GetParam() * 31);
  const word_t data = gen() & word_mask(code.data_bits());
  const word_t cw = code.encode(data);
  for (unsigned a = 0; a < code.codeword_bits(); ++a) {
    for (unsigned b = a + 1; b < code.codeword_bits(); ++b) {
      const ecc_decode_result r = code.decode(flip_bit(flip_bit(cw, a), b));
      EXPECT_EQ(r.status, ecc_status::detected_uncorrectable)
          << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CodeSizes, SecdedSingleError,
                         ::testing::Values(8u, 16u, 32u, 57u));

/// The compiled LUT paths must match the per-bit reference walks they
/// were derived from — encode, extract and decode (data AND status),
/// over clean codewords, error patterns and arbitrary garbage.
class SecdedLutVsReference : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedLutVsReference, EncodeAndExtractMatchReference) {
  const hamming_secded code(GetParam());
  const bool exhaustive = code.data_bits() <= 16;
  const std::uint64_t samples =
      exhaustive ? (word_t{1} << code.data_bits()) : 5000;
  rng gen(GetParam() * 7 + 1);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const word_t data = exhaustive ? i : (gen() & word_mask(code.data_bits()));
    const word_t cw = code.encode(data);
    ASSERT_EQ(cw, code.encode_reference(data)) << "data=" << data;
    ASSERT_EQ(code.extract_data(cw), code.extract_data_reference(cw));
    ASSERT_EQ(code.extract_data(cw), data);
  }
}

TEST_P(SecdedLutVsReference, DecodeMatchesReferenceOnAllErrorPatterns) {
  const hamming_secded code(GetParam());
  rng gen(GetParam() * 13 + 5);
  for (int trial = 0; trial < 4; ++trial) {
    const word_t cw = code.encode(gen() & word_mask(code.data_bits()));
    for (unsigned a = 0; a < code.codeword_bits(); ++a) {
      for (unsigned b = a; b < code.codeword_bits(); ++b) {
        // a == b degenerates to a single flip; otherwise a double.
        const word_t corrupted = flip_bit(cw, a) ^ (a == b ? 0 : flip_bit(word_t{0}, b));
        const ecc_decode_result fast = code.decode(corrupted);
        const ecc_decode_result ref = code.decode_reference(corrupted);
        ASSERT_EQ(fast.data, ref.data) << "a=" << a << " b=" << b;
        ASSERT_EQ(fast.status, ref.status) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST_P(SecdedLutVsReference, DecodeMatchesReferenceOnGarbageWords) {
  const hamming_secded code(GetParam());
  rng gen(GetParam() * 17 + 3);
  for (int i = 0; i < 5000; ++i) {
    const word_t garbage = gen() & word_mask(code.codeword_bits());
    const ecc_decode_result fast = code.decode(garbage);
    const ecc_decode_result ref = code.decode_reference(garbage);
    ASSERT_EQ(fast.data, ref.data) << "word=" << garbage;
    ASSERT_EQ(fast.status, ref.status) << "word=" << garbage;
  }
}

INSTANTIATE_TEST_SUITE_P(CodeSizes, SecdedLutVsReference,
                         ::testing::Values(1u, 8u, 16u, 32u, 57u));

TEST(PriorityEccTest, CompiledMatchesReference) {
  const priority_ecc pecc;
  rng gen(23);
  for (int i = 0; i < 2000; ++i) {
    const word_t data = gen() & word_mask(32);
    ASSERT_EQ(pecc.encode(data), pecc.encode_reference(data));
    const word_t garbage = gen() & word_mask(pecc.storage_bits());
    const ecc_decode_result fast = pecc.decode(garbage);
    const ecc_decode_result ref = pecc.decode_reference(garbage);
    ASSERT_EQ(fast.data, ref.data);
    ASSERT_EQ(fast.status, ref.status);
  }
}

TEST(HammingTest, OverallParityBitErrorKeepsDataIntact) {
  const hamming_secded code(32);
  const word_t data = 0xCAFEBABEULL & word_mask(32);
  const word_t cw = flip_bit(code.encode(data), 0);  // column 0 = overall parity
  const ecc_decode_result r = code.decode(cw);
  EXPECT_EQ(r.data, data);
  EXPECT_EQ(r.status, ecc_status::corrected);
}

TEST(HammingTest, RejectsUnsupportedWidths) {
  EXPECT_THROW(hamming_secded(0), std::invalid_argument);
  EXPECT_THROW(hamming_secded(58), std::invalid_argument);
  EXPECT_NO_THROW(hamming_secded(57));
}

// ---------------------------------------------------------------------
// Priority ECC

TEST(PriorityEccTest, PaperLayout) {
  const priority_ecc pecc;  // H(22,16) over the 16 MSBs of a 32-bit word
  EXPECT_EQ(pecc.word_bits(), 32u);
  EXPECT_EQ(pecc.protected_bits(), 16u);
  EXPECT_EQ(pecc.unprotected_bits(), 16u);
  EXPECT_EQ(pecc.storage_bits(), 38u);
  EXPECT_EQ(pecc.inner_code().codeword_bits(), 22u);
}

TEST(PriorityEccTest, CleanRoundTrip) {
  const priority_ecc pecc;
  rng gen(10);
  for (int i = 0; i < 200; ++i) {
    const word_t data = gen() & word_mask(32);
    const ecc_decode_result r = pecc.decode(pecc.encode(data));
    EXPECT_EQ(r.data, data);
    EXPECT_EQ(r.status, ecc_status::clean);
  }
}

TEST(PriorityEccTest, SingleMsbRegionFaultCorrected) {
  const priority_ecc pecc;
  const word_t data = 0x7F3CA5E1ULL;
  const word_t stored = pecc.encode(data);
  for (unsigned col = 16; col < 38; ++col) {
    const ecc_decode_result r = pecc.decode(flip_bit(stored, col));
    EXPECT_EQ(r.data, data) << "col=" << col;
    EXPECT_EQ(r.status, ecc_status::corrected) << "col=" << col;
  }
}

TEST(PriorityEccTest, LsbFaultPassesThroughWithBoundedMagnitude) {
  const priority_ecc pecc;
  const word_t data = 0x7F3CA5E1ULL;
  const word_t stored = pecc.encode(data);
  for (unsigned col = 0; col < 16; ++col) {
    const ecc_decode_result r = pecc.decode(flip_bit(stored, col));
    EXPECT_EQ(r.status, ecc_status::clean) << "invisible to the inner code";
    EXPECT_EQ(r.data ^ data, word_t{1} << col);
  }
}

TEST(PriorityEccTest, DoubleMsbFaultDetectedAndMsbHalfExposed) {
  const priority_ecc pecc;
  const word_t data = 0x12345678ULL;
  const word_t stored = pecc.encode(data);
  const ecc_decode_result r = pecc.decode(flip_bit(flip_bit(stored, 20), 30));
  EXPECT_EQ(r.status, ecc_status::detected_uncorrectable);
  // The unprotected low half is untouched in this scenario.
  EXPECT_EQ(r.data & word_mask(16), data & word_mask(16));
}

TEST(PriorityEccTest, ColumnMapCoversAllDataBits) {
  const priority_ecc pecc;
  std::vector<bool> seen(32, false);
  for (unsigned col = 0; col < pecc.storage_bits(); ++col) {
    const int bit = pecc.data_bit_at_column(col);
    if (bit >= 0) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(bit)]);
      seen[static_cast<std::size_t>(bit)] = true;
      EXPECT_EQ(pecc.is_protected_column(col), bit >= 16);
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(PriorityEccTest, RejectsBadConfigurations) {
  EXPECT_THROW(priority_ecc(32, 0), std::invalid_argument);
  EXPECT_THROW(priority_ecc(32, 32), std::invalid_argument);
  EXPECT_THROW(priority_ecc(64, 60), std::invalid_argument);  // > 64 columns
}

TEST(PriorityEccTest, HalfProtectedSixtyFourBitVariant) {
  // The configuration of ref. [12]: protect the 32 MSBs of a 64-bit word
  // — requires 39 + 32 = 71 columns, too wide for this model, so the
  // 32/16 default stands in; a 24-bit protected variant still fits.
  const priority_ecc wide(56, 24);
  EXPECT_EQ(wide.storage_bits(), 32u + 24u + 6u);
  const word_t data = 0xABCDEF012345ULL & word_mask(56);
  EXPECT_EQ(wide.decode(wide.encode(data)).data, data);
}

// ---------------------------------------------------------------------
// Hsiao SEC-DED: the industrial odd-weight-column Hamming variant.

TEST(HsiaoTest, PaperCodeParameters) {
  // Same storage as H(39,32): 7 check bits for 32 data bits, but no
  // separate overall-parity rail — odd-weight columns subsume it.
  const hsiao_code code = make_hsiao39_32();
  EXPECT_EQ(code.data_bits(), 32u);
  EXPECT_EQ(code.check_bits(), 7u);
  EXPECT_EQ(code.codeword_bits(), 39u);
  EXPECT_EQ(hsiao_code(16).codeword_bits(), 22u);
  EXPECT_EQ(hsiao_code(8).codeword_bits(), 13u);
}

TEST(HsiaoTest, ColumnsAreDistinctOddWeightAndBalanced) {
  const hsiao_code code(32);
  const std::vector<unsigned>& columns = code.column_syndromes();
  ASSERT_EQ(columns.size(), code.codeword_bits());
  std::set<unsigned> seen;
  for (unsigned i = 0; i < code.codeword_bits(); ++i) {
    EXPECT_EQ(std::popcount(columns[i]) % 2, 1) << "column " << i;
    EXPECT_TRUE(seen.insert(columns[i]).second) << "column " << i;
    if (i >= code.data_bits()) {
      EXPECT_TRUE(is_power_of_two(columns[i])) << "check column " << i;
    } else {
      EXPECT_GE(std::popcount(columns[i]), 3) << "data column " << i;
    }
  }
  // The greedy construction balances the XOR-tree fan-in per check bit.
  int min_load = 64, max_load = 0;
  for (const word_t mask : code.check_cover_masks()) {
    const int load = std::popcount(mask);
    min_load = std::min(min_load, load);
    max_load = std::max(max_load, load);
  }
  EXPECT_LE(max_load - min_load, 2);
}

class HsiaoWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(HsiaoWidths, SinglesCorrectedDoublesDetected) {
  const hsiao_code code(GetParam());
  rng gen(GetParam() * 17);
  for (int trial = 0; trial < 4; ++trial) {
    const word_t data = gen() & word_mask(code.data_bits());
    const word_t cw = code.encode(data);
    EXPECT_EQ(code.decode(cw).status, ecc_status::clean);
    EXPECT_EQ(code.decode(cw).data, data);
    for (unsigned a = 0; a < code.codeword_bits(); ++a) {
      const ecc_decode_result single = code.decode(flip_bit(cw, a));
      EXPECT_EQ(single.data, data) << "a=" << a;
      EXPECT_EQ(single.status, ecc_status::corrected) << "a=" << a;
      for (unsigned b = a + 1; b < code.codeword_bits(); ++b) {
        const ecc_decode_result dbl = code.decode(flip_bit(flip_bit(cw, a), b));
        EXPECT_EQ(dbl.status, ecc_status::detected_uncorrectable)
            << "a=" << a << " b=" << b;
        // Uncorrectable reads pass the raw data bits through.
        EXPECT_EQ(dbl.data, code.extract_data(flip_bit(flip_bit(cw, a), b)))
            << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST_P(HsiaoWidths, CompiledMatchesReferenceOnGarbage) {
  const hsiao_code code(GetParam());
  rng gen(GetParam() * 29);
  for (int i = 0; i < 300; ++i) {
    const word_t garbage = gen() & word_mask(code.codeword_bits());
    const ecc_decode_result fast = code.decode(garbage);
    const ecc_decode_result reference = code.decode_reference(garbage);
    EXPECT_EQ(fast.data, reference.data) << garbage;
    EXPECT_EQ(fast.status, reference.status) << garbage;
    EXPECT_EQ(code.encode(garbage & word_mask(code.data_bits())),
              code.encode_reference(garbage & word_mask(code.data_bits())));
  }
}

INSTANTIATE_TEST_SUITE_P(CodeSizes, HsiaoWidths,
                         ::testing::Values(4u, 8u, 16u, 32u, 57u));

TEST(HsiaoTest, RejectsBadConfigurations) {
  EXPECT_THROW(hsiao_code(0), std::invalid_argument);
  EXPECT_THROW(hsiao_code(58), std::invalid_argument);  // 58 + 7 > 64
  EXPECT_THROW(hsiao_code(32, 3), std::invalid_argument);   // below min k
  EXPECT_THROW(hsiao_code(32, 13), std::invalid_argument);  // above max k
}

// ---------------------------------------------------------------------
// Parity-extended BCH: the multi-bit arm of Sec. 2's "stronger ECC".

TEST(BchTest, PaperCodeParameters) {
  const bch_code code = make_bch45_32();
  EXPECT_EQ(code.data_bits(), 32u);
  EXPECT_EQ(code.t(), 2u);
  EXPECT_EQ(code.field_bits(), 6u);
  EXPECT_EQ(code.parity_bits(), 12u);
  EXPECT_EQ(code.check_bits(), 13u);
  EXPECT_EQ(code.codeword_bits(), 45u);
  // t = 1 reproduces Hamming-class storage: BCH(39,32,t=1).
  EXPECT_EQ(bch_code(32, 1).codeword_bits(), 39u);
}

TEST(BchTest, DesignTableEdges) {
  // t = 1, d = 57 fills the carrier exactly: 57 + 6 + 1 = 64.
  EXPECT_TRUE(bch_design_for(57, 1).has_value());
  EXPECT_FALSE(bch_design_for(58, 1).has_value());
  EXPECT_TRUE(bch_design_for(51, 2).has_value());
  EXPECT_FALSE(bch_design_for(52, 2).has_value());
  EXPECT_TRUE(bch_design_for(45, 3).has_value());
  EXPECT_FALSE(bch_design_for(46, 3).has_value());
}

class BchWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(BchWidths, DoublesCorrectedTriplesDetectedAtT2) {
  const bch_code code(GetParam(), 2);
  rng gen(GetParam() * 41);
  const word_t data = gen() & word_mask(code.data_bits());
  const word_t cw = code.encode(data);
  const unsigned n = code.codeword_bits();
  EXPECT_EQ(code.decode(cw).status, ecc_status::clean);
  for (unsigned a = 0; a < n; ++a) {
    for (unsigned b = a + 1; b < n; ++b) {
      const word_t two = flip_bit(flip_bit(cw, a), b);
      const ecc_decode_result r = code.decode(two);
      EXPECT_EQ(r.data, data) << "a=" << a << " b=" << b;
      EXPECT_EQ(r.status, ecc_status::corrected) << "a=" << a << " b=" << b;
      for (unsigned c = b + 1; c < n; ++c) {
        const ecc_decode_result triple = code.decode(flip_bit(two, c));
        EXPECT_EQ(triple.status, ecc_status::detected_uncorrectable)
            << "a=" << a << " b=" << b << " c=" << c;
        EXPECT_EQ(triple.data, code.extract_data(flip_bit(two, c)))
            << "a=" << a << " b=" << b << " c=" << c;
      }
    }
  }
}

TEST_P(BchWidths, CompiledMatchesReferenceOnGarbage) {
  const bch_code code(GetParam(), 2);
  rng gen(GetParam() * 43);
  for (int i = 0; i < 100; ++i) {
    const word_t garbage = gen() & word_mask(code.codeword_bits());
    const ecc_decode_result fast = code.decode(garbage);
    const ecc_decode_result reference = code.decode_reference(garbage);
    EXPECT_EQ(fast.data, reference.data) << garbage;
    EXPECT_EQ(fast.status, reference.status) << garbage;
    EXPECT_EQ(code.encode(garbage & word_mask(code.data_bits())),
              code.encode_reference(garbage & word_mask(code.data_bits())));
  }
}

INSTANTIATE_TEST_SUITE_P(CodeSizes, BchWidths, ::testing::Values(8u, 16u));

TEST(BchTest, TriplesCorrectedQuadsDetectedAtT3) {
  const bch_code code(8, 3);
  rng gen(97);
  const word_t data = gen() & word_mask(8);
  const word_t cw = code.encode(data);
  const unsigned n = code.codeword_bits();
  for (unsigned a = 0; a < n; ++a) {
    for (unsigned b = a + 1; b < n; ++b) {
      for (unsigned c = b + 1; c < n; ++c) {
        const word_t three = flip_bit(flip_bit(flip_bit(cw, a), b), c);
        const ecc_decode_result r = code.decode(three);
        EXPECT_EQ(r.data, data) << a << "," << b << "," << c;
        EXPECT_EQ(r.status, ecc_status::corrected) << a << "," << b << "," << c;
        for (unsigned e = c + 1; e < n; ++e) {
          EXPECT_EQ(code.decode(flip_bit(three, e)).status,
                    ecc_status::detected_uncorrectable)
              << a << "," << b << "," << c << "," << e;
        }
      }
    }
  }
}

TEST(BchTest, RejectsBadConfigurations) {
  EXPECT_THROW(bch_code(32, 0), std::invalid_argument);
  EXPECT_THROW(bch_code(32, 4), std::invalid_argument);  // beyond max_t
  EXPECT_THROW(bch_code(52, 2), std::invalid_argument);  // no fitting design
  EXPECT_THROW(bch_code(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
