// Tests for the memory substrate: fault maps, the cell-failure model
// (Fig. 2), fault samplers, and the functional SRAM array.
#include <gtest/gtest.h>

#include <set>

#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/memory/fault_map.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/memory/sram_array.hpp"

namespace urmem {
namespace {

TEST(FaultMapTest, EmptyMapIsTransparent) {
  fault_map map(geometry_16kb_x32());
  EXPECT_EQ(map.fault_count(), 0u);
  EXPECT_EQ(map.corrupt(0, 0xDEADBEEF), 0xDEADBEEFULL);
  EXPECT_TRUE(map.faulty_rows().empty());
}

TEST(FaultMapTest, StuckAtZeroForcesBitLow) {
  fault_map map({4, 8});
  map.add({1, 3, fault_kind::stuck_at_zero});
  EXPECT_EQ(map.corrupt(1, 0xFF), 0xF7ULL);
  EXPECT_EQ(map.corrupt(1, 0x00), 0x00ULL);
  EXPECT_EQ(map.corrupt(0, 0xFF), 0xFFULL);  // other rows untouched
}

TEST(FaultMapTest, StuckAtOneForcesBitHigh) {
  fault_map map({4, 8});
  map.add({2, 0, fault_kind::stuck_at_one});
  EXPECT_EQ(map.corrupt(2, 0x00), 0x01ULL);
  EXPECT_EQ(map.corrupt(2, 0xFF), 0xFFULL);
}

TEST(FaultMapTest, FlipAlwaysInverts) {
  fault_map map({4, 8});
  map.add({0, 7, fault_kind::flip});
  EXPECT_EQ(map.corrupt(0, 0x00), 0x80ULL);
  EXPECT_EQ(map.corrupt(0, 0x80), 0x00ULL);
}

TEST(FaultMapTest, ReAddingCellReplacesKind) {
  fault_map map({2, 8});
  map.add({0, 4, fault_kind::stuck_at_one});
  map.add({0, 4, fault_kind::stuck_at_zero});
  EXPECT_EQ(map.fault_count(), 1u);
  EXPECT_EQ(map.corrupt(0, 0xFF), 0xEFULL);
  const auto faults = map.faults_in_row(0);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, fault_kind::stuck_at_zero);
}

TEST(FaultMapTest, QueriesReportSortedFaults) {
  fault_map map({8, 16});
  map.add({5, 9, fault_kind::flip});
  map.add({5, 2, fault_kind::stuck_at_one});
  map.add({3, 0, fault_kind::stuck_at_zero});
  EXPECT_TRUE(map.row_has_faults(5));
  EXPECT_FALSE(map.row_has_faults(4));
  const auto rows = map.faulty_rows();
  EXPECT_EQ(rows, (std::vector<std::uint32_t>{3, 5}));
  const auto in_row5 = map.faults_in_row(5);
  ASSERT_EQ(in_row5.size(), 2u);
  EXPECT_EQ(in_row5[0].col, 2u);
  EXPECT_EQ(in_row5[1].col, 9u);
  EXPECT_EQ(map.all_faults().size(), 3u);
}

TEST(FaultMapTest, ActiveFaultColumnsDependOnData) {
  fault_map map({1, 8});
  map.add({0, 1, fault_kind::stuck_at_one});
  // Bit already 1: the stuck-at-1 cell is invisible for this pattern.
  EXPECT_TRUE(map.active_fault_columns(0, 0x02).empty());
  EXPECT_EQ(map.active_fault_columns(0, 0x00),
            (std::vector<std::uint32_t>{1}));
}

TEST(FaultMapTest, RejectsOutOfRangeCells) {
  fault_map map({4, 8});
  EXPECT_THROW(map.add({4, 0, fault_kind::flip}), std::invalid_argument);
  EXPECT_THROW(map.add({0, 8, fault_kind::flip}), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Cell failure model (Fig. 2)

TEST(CellFailureModelTest, CalibrationAnchors) {
  const auto model = cell_failure_model::default_28nm();
  // Pcell(1.0 V) ~ 1e-9 and Pcell(0.73 V) ~ 1e-4 (DESIGN.md §4).
  EXPECT_NEAR(std::log10(model.pcell(1.0)), -9.0, 0.15);
  EXPECT_NEAR(std::log10(model.pcell(0.73)), -4.0, 0.15);
}

TEST(CellFailureModelTest, PcellIncreasesAsVoltageDrops) {
  const auto model = cell_failure_model::default_28nm();
  double prev = 0.0;
  for (double vdd = 1.1; vdd >= 0.4; vdd -= 0.05) {
    const double p = model.pcell(vdd);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(CellFailureModelTest, VddForPcellInverts) {
  const auto model = cell_failure_model::default_28nm();
  for (const double p : {1e-9, 1e-6, 1e-4, 1e-3, 1e-2}) {
    EXPECT_NEAR(model.pcell(model.vdd_for_pcell(p)), p, p * 1e-6);
  }
}

TEST(CellFailureModelTest, YieldFormulaMatchesPaper) {
  // Y = (1 - Pcell)^M; a 16 KB array at Pcell ~ 1e-4 yields ~ e^-13.
  EXPECT_NEAR(cell_failure_model::array_yield(131072, 1e-4),
              std::exp(131072 * std::log1p(-1e-4)), 1e-12);
  EXPECT_LT(cell_failure_model::array_yield(131072, 1e-4), 5e-6);
  EXPECT_GT(cell_failure_model::array_yield(131072, 1e-9), 0.999);
  EXPECT_DOUBLE_EQ(cell_failure_model::array_yield(100, 1.0), 0.0);
}

TEST(CellFailureModelTest, FaultInclusionProperty) {
  // Cells failing at VDD1 must fail at every VDD2 < VDD1 [14].
  const auto model = cell_failure_model::default_28nm(77);
  const array_geometry geometry{64, 32};
  const double vdd_high = model.vdd_for_pcell(2e-3);
  const double vdd_low = model.vdd_for_pcell(2e-2);
  const fault_map at_high = model.faults_at_voltage(geometry, vdd_high);
  const fault_map at_low = model.faults_at_voltage(geometry, vdd_low);
  EXPECT_GT(at_low.fault_count(), at_high.fault_count());

  std::set<std::pair<std::uint32_t, std::uint32_t>> low_cells;
  for (const fault& f : at_low.all_faults()) low_cells.insert({f.row, f.col});
  for (const fault& f : at_high.all_faults()) {
    EXPECT_TRUE(low_cells.contains({f.row, f.col}))
        << "cell (" << f.row << "," << f.col << ") violates inclusion";
  }
}

TEST(CellFailureModelTest, FaultCountMatchesPcell) {
  const auto model = cell_failure_model::default_28nm(5);
  const array_geometry geometry{512, 32};  // 16384 cells
  const double pcell = 0.02;
  const fault_map faults =
      model.faults_at_voltage(geometry, model.vdd_for_pcell(pcell));
  const double expected = pcell * static_cast<double>(geometry.cells());
  EXPECT_NEAR(static_cast<double>(faults.fault_count()), expected,
              5.0 * std::sqrt(expected));
}

TEST(CellFailureModelTest, StuckKindIsPersistentAndBalanced) {
  const auto model = cell_failure_model::default_28nm(9);
  int ones = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(model.stuck_kind(i), model.stuck_kind(i));
    if (model.stuck_kind(i) == fault_kind::stuck_at_one) ++ones;
  }
  EXPECT_NEAR(ones, 5000, 350);
}

// ---------------------------------------------------------------------
// Fault samplers

TEST(FaultSamplerTest, ExactCountAndDistinctPositions) {
  rng gen(3);
  for (const std::uint64_t n : {1ULL, 5ULL, 50ULL, 150ULL}) {
    const fault_map map = sample_fault_map_exact(geometry_16kb_x32(), n, gen);
    EXPECT_EQ(map.fault_count(), n);
  }
}

TEST(FaultSamplerTest, FullArraySaturation) {
  rng gen(4);
  const array_geometry tiny{2, 4};
  const fault_map map = sample_fault_map_exact(tiny, 8, gen);
  EXPECT_EQ(map.fault_count(), 8u);
}

TEST(FaultSamplerTest, RejectsOverfull) {
  rng gen(5);
  EXPECT_THROW(sample_fault_map_exact({2, 4}, 9, gen), std::invalid_argument);
}

TEST(FaultSamplerTest, PositionsLookUniformAcrossColumns) {
  rng gen(6);
  std::vector<int> col_counts(32, 0);
  for (int i = 0; i < 400; ++i) {
    const fault_map map = sample_fault_map_exact(geometry_16kb_x32(), 10, gen);
    for (const fault& f : map.all_faults()) ++col_counts[f.col];
  }
  for (const int c : col_counts) EXPECT_NEAR(c, 125, 60);  // 4000/32
}

TEST(FaultSamplerTest, BinomialCountTracksMean) {
  rng gen(7);
  const array_geometry geometry{512, 32};
  const binomial_distribution dist(geometry.cells(), 1e-3);
  double total = 0.0;
  const int runs = 300;
  for (int i = 0; i < runs; ++i) {
    total += static_cast<double>(
        sample_fault_map_binomial(geometry, dist, gen).fault_count());
  }
  EXPECT_NEAR(total / runs, dist.mean(), 1.0);
}

TEST(FaultSamplerTest, PolarityModes) {
  rng gen(8);
  const fault_map flips =
      sample_fault_map_exact({64, 32}, 40, gen, fault_polarity::flip);
  for (const fault& f : flips.all_faults()) EXPECT_EQ(f.kind, fault_kind::flip);

  const fault_map stuck =
      sample_fault_map_exact({64, 32}, 200, gen, fault_polarity::random_stuck);
  int zeros = 0;
  for (const fault& f : stuck.all_faults()) {
    EXPECT_NE(f.kind, fault_kind::flip);
    if (f.kind == fault_kind::stuck_at_zero) ++zeros;
  }
  EXPECT_GT(zeros, 60);
  EXPECT_LT(zeros, 140);
}

// ---------------------------------------------------------------------
// SRAM array

TEST(SramArrayTest, CleanReadBackIsExact) {
  sram_array array(array_geometry{16, 32});
  for (std::uint32_t r = 0; r < 16; ++r) array.write(r, 0x1000u + r);
  for (std::uint32_t r = 0; r < 16; ++r) EXPECT_EQ(array.read(r), 0x1000u + r);
}

TEST(SramArrayTest, FaultsCorruptReadsButNotIdealState) {
  fault_map map({4, 16});
  map.add({1, 15, fault_kind::stuck_at_one});
  sram_array array(map);
  array.write(1, 0x0000);
  EXPECT_EQ(array.read(1), 0x8000ULL);
  EXPECT_EQ(array.read_ideal(1), 0x0000ULL);
}

TEST(SramArrayTest, WidthMaskingOnWrite) {
  sram_array array(array_geometry{2, 8});
  array.write(0, 0xFFFFFF12ULL);
  EXPECT_EQ(array.read(0), 0x12ULL);
}

TEST(SramArrayTest, FillAndAccessCounting) {
  sram_array array(array_geometry{8, 32});
  array.fill(0xABCD);
  const std::uint64_t after_fill = array.access_count();
  EXPECT_EQ(after_fill, 8u);
  for (std::uint32_t r = 0; r < 8; ++r) EXPECT_EQ(array.read(r), 0xABCDULL);
  EXPECT_EQ(array.access_count(), after_fill + 8);
}

TEST(SramArrayTest, SetFaultsPreservesData) {
  sram_array array(array_geometry{4, 8});
  array.write(2, 0x0F);
  fault_map map({4, 8});
  map.add({2, 7, fault_kind::stuck_at_one});
  array.set_faults(std::move(map));
  EXPECT_EQ(array.read(2), 0x8FULL);
  EXPECT_EQ(array.read_ideal(2), 0x0FULL);
}

TEST(SramArrayTest, GeometryMismatchRejected) {
  sram_array array(array_geometry{4, 8});
  EXPECT_THROW(array.set_faults(fault_map({5, 8})), std::invalid_argument);
  EXPECT_THROW(array.write(4, 0), std::invalid_argument);
  EXPECT_THROW((void)array.read(4), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
