// Exhaustive nCr fault-pattern verification (src/verify) as a ctest
// suite: the combinatorial unranking primitives, the full
// scheme x width sweep the `verify-exhaustive` CI job runs, and a
// sabotaged scheme proving the harness actually detects violations.
#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/scenario/scheme_registry.hpp"
#include "urmem/sim/campaign_runner.hpp"
#include "urmem/verify/exhaustive.hpp"

namespace urmem {
namespace {

TEST(PatternUnrank, ChooseNkMatchesPascal) {
  EXPECT_EQ(choose_nk(0, 0), 1u);
  EXPECT_EQ(choose_nk(5, 0), 1u);
  EXPECT_EQ(choose_nk(5, 6), 0u);
  EXPECT_EQ(choose_nk(39, 2), 741u);
  EXPECT_EQ(choose_nk(45, 3), 14190u);
  for (unsigned n = 1; n <= 40; ++n) {
    for (unsigned k = 1; k <= 4; ++k) {
      EXPECT_EQ(choose_nk(n, k), choose_nk(n - 1, k - 1) + choose_nk(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(PatternUnrank, CountsIncludeEmptyPattern) {
  EXPECT_EQ(pattern_count(10, 0), 1u);
  EXPECT_EQ(pattern_count(10, 1), 11u);
  EXPECT_EQ(pattern_count(10, 2), 11u + 45u);
  EXPECT_EQ(pattern_count(10, 3), 11u + 45u + 120u);
}

TEST(PatternUnrank, EnumeratesEveryPatternExactlyOnce) {
  constexpr unsigned columns = 12;
  constexpr unsigned max_bits = 3;
  const std::uint64_t total = pattern_count(columns, max_bits);
  std::set<std::uint64_t> seen;
  std::vector<std::uint32_t> cols;
  std::size_t previous_weight = 0;
  for (std::uint64_t index = 0; index < total; ++index) {
    unrank_pattern(index, columns, max_bits, cols);
    ASSERT_LE(cols.size(), max_bits);
    // Weight classes come out in order, ascending columns inside each.
    ASSERT_GE(cols.size(), previous_weight);
    previous_weight = cols.size();
    std::uint64_t mask = 0;
    for (const std::uint32_t c : cols) {
      ASSERT_LT(c, columns);
      mask |= std::uint64_t{1} << c;
    }
    ASSERT_EQ(static_cast<std::size_t>(std::popcount(mask)), cols.size())
        << "duplicate column at index " << index;
    ASSERT_TRUE(seen.insert(mask).second) << "repeated pattern " << index;
  }
  EXPECT_EQ(seen.size(), total);
  EXPECT_THROW(unrank_pattern(total, columns, max_bits, cols),
               std::logic_error);
}

scheme_factory registry_factory(const std::string& spec, unsigned width,
                                std::uint32_t rows) {
  const scheme_ref ref = parse_compact_scheme(spec, "schemes");
  geometry_spec geometry;
  geometry.word_bits = width;
  geometry.rows_per_tile = rows;
  return scheme_registry::instance().make(ref, geometry).factory;
}

/// The full CI matrix: every built-in leaf scheme at every narrow
/// width, each enumerated to one bit past its correction guarantee.
TEST(ExhaustiveVerify, AllSchemesAllNarrowWidths) {
  campaign_runner pool({.threads = 4, .seed = 42});
  const std::vector<std::string> schemes = {
      "none",    "secded", "hsiao",         "bch:t=1",
      "bch:t=2", "pecc",   "shuffle:nfm=1", "shuffle:nfm=2"};
  for (const unsigned width : {4u, 8u, 16u}) {
    for (const std::string& spec : schemes) {
      const std::string label = spec + " @ w=" + std::to_string(width);
      const exhaustive_report report = verify_scheme_exhaustive(
          label, registry_factory(spec, width, 8), pool, {});
      EXPECT_TRUE(report.ok()) << report.summary()
                               << (report.failures.empty()
                                       ? ""
                                       : "\n  " + report.failures.front());
      EXPECT_GT(report.decodes, 0u);
      // A guarantee means guaranteed-weight patterns exist and were all
      // corrected; one past it means detections were exercised too.
      if (report.guaranteed_bits >= 1) {
        EXPECT_GT(report.corrected, 0u) << label;
        EXPECT_GT(report.uncorrectable, 0u) << label;
      }
    }
  }
}

/// Deterministic at any thread count: same seed, same report counters.
TEST(ExhaustiveVerify, ThreadCountInvariant) {
  campaign_runner serial({.threads = 1, .seed = 9});
  campaign_runner wide({.threads = 8, .seed = 9});
  const exhaustive_report a = verify_scheme_exhaustive(
      "bch", registry_factory("bch:t=2", 16, 8), serial, {});
  const exhaustive_report b = verify_scheme_exhaustive(
      "bch", registry_factory("bch:t=2", 16, 8), wide, {});
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.decodes, b.decodes);
  EXPECT_EQ(a.clean, b.clean);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.uncorrectable, b.uncorrectable);
}

/// Delegating wrapper that corrupts one decode path: the harness must
/// flag it, otherwise the suite proves nothing.
class sabotaged_scheme final : public protection_scheme {
 public:
  explicit sabotaged_scheme(std::unique_ptr<protection_scheme> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] unsigned data_bits() const override {
    return inner_->data_bits();
  }
  [[nodiscard]] unsigned storage_bits() const override {
    return inner_->storage_bits();
  }
  [[nodiscard]] unsigned guaranteed_correctable_bits() const override {
    return inner_->guaranteed_correctable_bits();
  }
  void configure(const fault_map& faults) override {
    inner_->configure(faults);
  }
  [[nodiscard]] word_t encode(std::uint32_t row, word_t data) const override {
    return inner_->encode(row, data);
  }
  [[nodiscard]] read_result decode(std::uint32_t row,
                                   word_t stored) const override {
    return inner_->decode(row, stored);
  }
  block_decode_stats decode_block(std::uint32_t first_row,
                                  std::span<const word_t> stored,
                                  std::span<word_t> out) const override {
    const block_decode_stats stats =
        inner_->decode_block(first_row, stored, out);
    if (!out.empty()) out[0] ^= 1;  // the sabotage
    return stats;
  }
  [[nodiscard]] double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const override {
    return inner_->worst_case_row_cost(fault_cols);
  }
  void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                           std::vector<std::uint32_t>& out) const override {
    inner_->residual_fault_bits(fault_cols, out);
  }

 private:
  std::unique_ptr<protection_scheme> inner_;
};

TEST(ExhaustiveVerify, CatchesASabotagedDecodePath) {
  campaign_runner pool({.threads = 2, .seed = 3});
  const scheme_factory inner = registry_factory("hsiao", 8, 8);
  const scheme_factory factory = [&inner](std::uint32_t rows) {
    return std::make_unique<sabotaged_scheme>(inner(rows));
  };
  const exhaustive_report report =
      verify_scheme_exhaustive("sabotaged", factory, pool, {});
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.failure_count, 0u);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures.front().find("decode paths disagree"),
            std::string::npos)
      << report.failures.front();
}

}  // namespace
}  // namespace urmem
