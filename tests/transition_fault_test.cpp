// Tests for write-time transition faults: semantics, BIST detection,
// and their interaction with the bit-shuffling scheme.
#include <gtest/gtest.h>

#include "urmem/bist/bist_engine.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/memory/sram_array.hpp"
#include "urmem/shuffle/shuffle_scheme.hpp"

namespace urmem {
namespace {

TEST(TransitionFaultTest, UpFailBlocksRisingTransitionOnly) {
  fault_map map({2, 8});
  map.add({0, 3, fault_kind::transition_up_fail});
  sram_array array(map);

  array.write(0, 0x08);  // 0 -> 1 on the faulty cell: blocked
  EXPECT_EQ(array.read(0), 0x00ULL);

  // Other columns are unaffected.
  array.write(0, 0xF7);
  EXPECT_EQ(array.read(0), 0xF7ULL);
}

TEST(TransitionFaultTest, DownFailKeepsTheOne) {
  fault_map map({2, 8});
  map.add({0, 0, fault_kind::transition_down_fail});
  sram_array array(map);

  array.write(0, 0x01);  // rising works
  EXPECT_EQ(array.read(0), 0x01ULL);
  array.write(0, 0x00);  // falling blocked
  EXPECT_EQ(array.read(0), 0x01ULL);
  array.write(0, 0x02);  // still stuck high, other bits written fine
  EXPECT_EQ(array.read(0), 0x03ULL);
}

TEST(TransitionFaultTest, ApplyWriteIsPureFunctionOfOldAndNew) {
  fault_map map({1, 8});
  map.add({0, 1, fault_kind::transition_up_fail});
  map.add({0, 2, fault_kind::transition_down_fail});
  EXPECT_EQ(map.apply_write(0, 0x00, 0xFF), 0xFDULL);  // bit1 cannot rise
  EXPECT_EQ(map.apply_write(0, 0xFF, 0x00), 0x04ULL);  // bit2 cannot fall
  EXPECT_EQ(map.apply_write(0, 0x02, 0x02), 0x02ULL);  // no transition, no effect
}

TEST(TransitionFaultTest, KindRoundTripsThroughQueries) {
  fault_map map({4, 16});
  map.add({1, 5, fault_kind::transition_up_fail});
  map.add({2, 6, fault_kind::transition_down_fail});
  EXPECT_EQ(map.faults_in_row(1)[0].kind, fault_kind::transition_up_fail);
  EXPECT_EQ(map.faults_in_row(2)[0].kind, fault_kind::transition_down_fail);
  // Replacing with a stuck-at clears the transition behaviour.
  map.add({1, 5, fault_kind::stuck_at_one});
  EXPECT_EQ(map.faults_in_row(1)[0].kind, fault_kind::stuck_at_one);
  EXPECT_EQ(map.apply_write(1, 0x00, 0x20), 0x20ULL);
}

TEST(TransitionFaultTest, ReadCorruptionIgnoresTransitionCells) {
  fault_map map({1, 8});
  map.add({0, 4, fault_kind::transition_up_fail});
  // corrupt() models read-visible faults only; the TF cell reads back
  // whatever the (write-time) cell contents are.
  EXPECT_EQ(map.corrupt(0, 0x10), 0x10ULL);
}

TEST(TransitionFaultTest, MarchCMinusDetectsBothTransitionKinds) {
  const array_geometry geometry{32, 16};
  fault_map injected(geometry);
  injected.add({3, 7, fault_kind::transition_up_fail});
  injected.add({9, 2, fault_kind::transition_down_fail});
  sram_array array(injected);

  const bist_result result = bist_engine(march_c_minus(), {0x0ULL}).run(array);
  EXPECT_FALSE(result.pass);
  ASSERT_TRUE(result.faults.row_has_faults(3));
  ASSERT_TRUE(result.faults.row_has_faults(9));
  EXPECT_EQ(result.faults.faults_in_row(3)[0].col, 7u);
  EXPECT_EQ(result.faults.faults_in_row(9)[0].col, 2u);
  // Behavioural classification: a TF-up cell that can never reach 1 is
  // diagnosed as its stuck-at equivalent — which is what the FM-LUT
  // programming needs to know.
  EXPECT_EQ(result.faults.faults_in_row(3)[0].kind, fault_kind::stuck_at_zero);
  EXPECT_EQ(result.faults.faults_in_row(9)[0].kind, fault_kind::stuck_at_one);
}

TEST(TransitionFaultTest, ShuffleBoundsTransitionFaultErrors) {
  rng gen(77);
  const std::uint32_t rows = 128;
  fault_map faults({rows, 32});
  for (std::uint32_t r = 0; r < rows; ++r) {
    faults.add({r, static_cast<std::uint32_t>(gen.uniform_below(32)),
                (r & 1) != 0 ? fault_kind::transition_up_fail
                             : fault_kind::transition_down_fail});
  }
  sram_array array(faults);
  shuffle_scheme scheme(rows, 32, 5);
  bist_engine().run_and_program(array, scheme);

  for (std::uint32_t r = 0; r < rows; ++r) {
    const word_t data = gen() & word_mask(32);
    array.write(r, scheme.apply_write(r, data));
    const word_t readback = scheme.restore_read(r, array.read(r));
    EXPECT_LE(std::abs(to_signed(readback, 32) - to_signed(data, 32)), 1)
        << "row " << r;
  }
}

TEST(TransitionFaultTest, MixedPolaritySamplerProducesAllKinds) {
  rng gen(88);
  const fault_map map =
      sample_fault_map_exact({256, 32}, 2000, gen, fault_polarity::mixed);
  int counts[5] = {0, 0, 0, 0, 0};
  for (const fault& f : map.all_faults()) {
    ++counts[static_cast<std::size_t>(f.kind)];
  }
  EXPECT_NEAR(counts[0], 700, 120);  // SA0 ~35%
  EXPECT_NEAR(counts[1], 700, 120);  // SA1 ~35%
  EXPECT_NEAR(counts[2], 200, 80);   // flip ~10%
  EXPECT_NEAR(counts[3], 200, 80);   // TF-up ~10%
  EXPECT_NEAR(counts[4], 200, 80);   // TF-down ~10%
}

}  // namespace
}  // namespace urmem
