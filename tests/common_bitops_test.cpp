// Unit and property tests for the width-parameterized bit utilities.
#include <gtest/gtest.h>

#include "urmem/common/bitops.hpp"

namespace urmem {
namespace {

TEST(BitopsTest, WordMaskCoversRequestedWidth) {
  EXPECT_EQ(word_mask(1), 0x1ULL);
  EXPECT_EQ(word_mask(8), 0xFFULL);
  EXPECT_EQ(word_mask(32), 0xFFFFFFFFULL);
  EXPECT_EQ(word_mask(64), ~word_t{0});
}

TEST(BitopsTest, GetSetFlipBit) {
  word_t w = 0;
  w = set_bit(w, 5, true);
  EXPECT_TRUE(get_bit(w, 5));
  EXPECT_FALSE(get_bit(w, 4));
  w = flip_bit(w, 5);
  EXPECT_FALSE(get_bit(w, 5));
  w = set_bit(w, 63, true);
  EXPECT_TRUE(get_bit(w, 63));
  w = set_bit(w, 63, false);
  EXPECT_EQ(w, 0ULL);
}

TEST(BitopsTest, ParityCountsOnesModTwo) {
  EXPECT_FALSE(parity(0x0ULL));
  EXPECT_TRUE(parity(0x1ULL));
  EXPECT_FALSE(parity(0x3ULL));
  EXPECT_TRUE(parity(0x7ULL));
  // Bits above the width are ignored.
  EXPECT_FALSE(parity(0xF0ULL, 4));
  EXPECT_TRUE(parity(0x10ULL, 5));
}

TEST(BitopsTest, RotateRightMatchesManualExample) {
  // 8-bit rotate of 0b0000'0011 right by 1 -> 0b1000'0001.
  EXPECT_EQ(rotate_right(0x03, 1, 8), 0x81ULL);
  EXPECT_EQ(rotate_right(0x81, 1, 8), 0xC0ULL);
  EXPECT_EQ(rotate_left(0x81, 1, 8), 0x03ULL);
}

TEST(BitopsTest, RotateByZeroAndWidthAreIdentity) {
  const word_t value = 0xDEADBEEFULL;
  EXPECT_EQ(rotate_right(value, 0, 32), value);
  EXPECT_EQ(rotate_right(value, 32, 32), value);
  EXPECT_EQ(rotate_left(value, 0, 32), value);
  EXPECT_EQ(rotate_left(value, 64, 32), value);
}

TEST(BitopsTest, SignedConversionRoundTrips) {
  EXPECT_EQ(to_signed(from_signed(-1, 32), 32), -1);
  EXPECT_EQ(to_signed(from_signed(-12345, 16), 16), -12345);
  EXPECT_EQ(to_signed(from_signed(12345, 16), 16), 12345);
  EXPECT_EQ(to_signed(0x80000000ULL, 32), -2147483648LL);
  EXPECT_EQ(to_signed(0x7FFFFFFFULL, 32), 2147483647LL);
}

TEST(BitopsTest, Log2Helpers) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(33));
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(39), 6u);
}

/// Property: rotate_left undoes rotate_right for every width and shift.
class RotateRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(RotateRoundTrip, LeftUndoesRight) {
  const unsigned width = GetParam();
  const word_t value = 0x0123456789ABCDEFULL & word_mask(width);
  for (unsigned shift = 0; shift <= 2 * width; ++shift) {
    EXPECT_EQ(rotate_left(rotate_right(value, shift, width), shift, width), value)
        << "width=" << width << " shift=" << shift;
  }
}

TEST_P(RotateRoundTrip, RotationPreservesPopcount) {
  const unsigned width = GetParam();
  const word_t value = 0x9E3779B97F4A7C15ULL & word_mask(width);
  for (unsigned shift = 0; shift < width; ++shift) {
    EXPECT_EQ(std::popcount(rotate_right(value, shift, width)),
              std::popcount(value));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RotateRoundTrip,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 48u, 64u));

/// Property: rotating bit b right by s moves it to (b - s) mod width.
TEST(BitopsTest, RotationMovesIndividualBits) {
  const unsigned width = 32;
  for (unsigned b = 0; b < width; ++b) {
    for (unsigned s = 0; s < width; ++s) {
      const word_t rotated = rotate_right(word_t{1} << b, s, width);
      const unsigned expected = (b + width - s) % width;
      EXPECT_EQ(rotated, word_t{1} << expected) << "b=" << b << " s=" << s;
    }
  }
}

}  // namespace
}  // namespace urmem
