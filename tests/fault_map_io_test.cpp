// Tests for fault-map serialization (test-equipment export / POST
// reload) and the system-level energy model.
#include <gtest/gtest.h>

#include <sstream>

#include "urmem/common/rng.hpp"
#include "urmem/hwmodel/system_energy.hpp"
#include "urmem/memory/fault_map_io.hpp"
#include "urmem/memory/fault_sampler.hpp"

namespace urmem {
namespace {

TEST(FaultMapIoTest, RoundTripPreservesEverything) {
  rng gen(1);
  const fault_map original =
      sample_fault_map_exact({512, 32}, 100, gen, fault_polarity::mixed);
  std::stringstream buffer;
  write_fault_map(buffer, original);
  const fault_map parsed = read_fault_map(buffer);

  EXPECT_EQ(parsed.geometry(), original.geometry());
  EXPECT_EQ(parsed.fault_count(), original.fault_count());
  const auto a = original.all_faults();
  const auto b = parsed.all_faults();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "fault " << i;
  }
}

TEST(FaultMapIoTest, EmptyMapRoundTrips) {
  std::stringstream buffer;
  write_fault_map(buffer, fault_map({8, 16}));
  const fault_map parsed = read_fault_map(buffer);
  EXPECT_EQ(parsed.fault_count(), 0u);
  EXPECT_EQ(parsed.geometry(), (array_geometry{8, 16}));
}

TEST(FaultMapIoTest, FormatIsHumanReadable) {
  fault_map map({4, 8});
  map.add({2, 5, fault_kind::stuck_at_one});
  std::stringstream buffer;
  write_fault_map(buffer, map);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("urmem-faultmap v1"), std::string::npos);
  EXPECT_NE(text.find("geometry 4 8"), std::string::npos);
  EXPECT_NE(text.find("fault 2 5 sa1"), std::string::npos);
}

TEST(FaultMapIoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "urmem-faultmap v1\n"
      "geometry 4 8\n"
      "# exported by tester 7\n"
      "\n"
      "fault 1 3 tfup\n");
  const fault_map map = read_fault_map(in);
  EXPECT_EQ(map.fault_count(), 1u);
  EXPECT_EQ(map.faults_in_row(1)[0].kind, fault_kind::transition_up_fail);
}

TEST(FaultMapIoTest, RejectsMalformedInput) {
  std::istringstream bad_header("not-a-faultmap\n");
  EXPECT_THROW((void)read_fault_map(bad_header), std::invalid_argument);
  std::istringstream bad_kind(
      "urmem-faultmap v1\ngeometry 2 8\nfault 0 0 wiggly\n");
  EXPECT_THROW((void)read_fault_map(bad_kind), std::invalid_argument);
  std::istringstream out_of_range(
      "urmem-faultmap v1\ngeometry 2 8\nfault 5 0 sa0\n");
  EXPECT_THROW((void)read_fault_map(out_of_range), std::invalid_argument);
  std::istringstream missing_geometry("urmem-faultmap v1\n");
  EXPECT_THROW((void)read_fault_map(missing_geometry), std::invalid_argument);
}

TEST(FaultMapIoTest, KindNamesRoundTrip) {
  for (const fault_kind kind :
       {fault_kind::stuck_at_zero, fault_kind::stuck_at_one, fault_kind::flip,
        fault_kind::transition_up_fail, fault_kind::transition_down_fail}) {
    EXPECT_EQ(fault_kind_from_name(fault_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)fault_kind_from_name("nope"), std::invalid_argument);
}

TEST(FaultMapIoTest, FileRoundTrip) {
  rng gen(2);
  const fault_map original = sample_fault_map_exact({64, 32}, 10, gen);
  const std::string path = "/tmp/urmem_faultmap_test.txt";
  save_fault_map(path, original);
  const fault_map loaded = load_fault_map(path);
  EXPECT_EQ(loaded.fault_count(), original.fault_count());
  EXPECT_THROW((void)load_fault_map("/nonexistent/map.txt"),
               std::invalid_argument);
}

// ------------------------------------------------- v2 timeline format

TEST(FaultMapIoTest, TimelineRoundTripPreservesAnnotations) {
  timeline_fault_set set;
  set.geometry = {16, 8};
  set.faults = {
      {{0, 1, fault_kind::stuck_at_zero}, 0, false},
      {{2, 7, fault_kind::flip}, 0, true},
      {{5, 3, fault_kind::stuck_at_one}, 4, false},
      {{9, 0, fault_kind::transition_down_fail}, 7, true},
  };
  std::stringstream buffer;
  write_timeline_faults(buffer, set);
  EXPECT_NE(buffer.str().find("urmem-faultmap v2"), std::string::npos);
  EXPECT_NE(buffer.str().find("fault 5 3 sa1 4"), std::string::npos);
  EXPECT_NE(buffer.str().find("fault 9 0 tfdown 7 intermittent"),
            std::string::npos);

  const timeline_fault_set parsed = read_timeline_faults(buffer);
  EXPECT_EQ(parsed.geometry, set.geometry);
  ASSERT_EQ(parsed.faults.size(), set.faults.size());
  for (std::size_t i = 0; i < set.faults.size(); ++i) {
    EXPECT_EQ(parsed.faults[i], set.faults[i]) << "record " << i;
  }
}

TEST(FaultMapIoTest, TimelineReaderAcceptsV1AsPersistentEpochZero) {
  std::istringstream in(
      "urmem-faultmap v1\n"
      "geometry 4 8\n"
      "fault 1 3 sa0\n"
      "fault 2 5 flip\n");
  const timeline_fault_set set = read_timeline_faults(in);
  ASSERT_EQ(set.faults.size(), 2u);
  for (const timeline_fault& record : set.faults) {
    EXPECT_EQ(record.birth_epoch, 0u);
    EXPECT_FALSE(record.intermittent);
  }
  EXPECT_EQ(set.faults[0].f.kind, fault_kind::stuck_at_zero);
  EXPECT_EQ(set.faults[1].f.kind, fault_kind::flip);
}

TEST(FaultMapIoTest, TimelineReaderRejectsMalformedV2) {
  // v2 requires the birth epoch.
  std::istringstream missing_epoch(
      "urmem-faultmap v2\ngeometry 4 8\nfault 1 3 sa0\n");
  EXPECT_THROW((void)read_timeline_faults(missing_epoch),
               std::invalid_argument);
  // The only legal annotation after the epoch is "intermittent".
  std::istringstream bad_annotation(
      "urmem-faultmap v2\ngeometry 4 8\nfault 1 3 sa0 2 sometimes\n");
  EXPECT_THROW((void)read_timeline_faults(bad_annotation),
               std::invalid_argument);
  // Trailing junk after the annotation.
  std::istringstream trailing(
      "urmem-faultmap v2\ngeometry 4 8\nfault 1 3 sa0 2 intermittent x\n");
  EXPECT_THROW((void)read_timeline_faults(trailing), std::invalid_argument);
  // Out-of-geometry cells are still rejected in v2.
  std::istringstream out_of_range(
      "urmem-faultmap v2\ngeometry 4 8\nfault 9 0 sa0 0\n");
  EXPECT_THROW((void)read_timeline_faults(out_of_range),
               std::invalid_argument);
  // v1 records must NOT carry v2 annotations.
  std::istringstream v1_with_epoch(
      "urmem-faultmap v1\ngeometry 4 8\nfault 1 3 sa0 2\n");
  EXPECT_THROW((void)read_timeline_faults(v1_with_epoch),
               std::invalid_argument);
}

// ------------------------------------------------------- system energy

TEST(SystemEnergyTest, QuadraticVoltageScaling) {
  const system_energy_model model(1000.0, 1.0);
  EXPECT_DOUBLE_EQ(model.array_read_energy_fj(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(model.array_read_energy_fj(0.5), 250.0);
  EXPECT_NEAR(model.net_saving(0.7, 0.0), 1.0 - 0.49, 1e-12);
}

TEST(SystemEnergyTest, SchemeOverheadScalesToo) {
  const system_energy_model model(1000.0, 1.0);
  // 10% overhead at nominal stays 10% of the scaled array energy.
  EXPECT_DOUBLE_EQ(model.protected_read_energy_fj(0.5, 100.0), 250.0 + 25.0);
  EXPECT_NEAR(model.net_saving(0.5, 100.0), 1.0 - 0.275, 1e-12);
}

TEST(SystemEnergyTest, OverheadCanEraseTheGain) {
  const system_energy_model model(100.0, 1.0);
  // A scheme costing 30% of the array at a mild 0.95 V scaling: net
  // saving goes negative territory is avoided but small.
  EXPECT_LT(model.net_saving(0.98, 30.0), 0.0);
  EXPECT_GT(model.net_saving(0.60, 30.0), 0.5);
}

TEST(SystemEnergyTest, FromMacroMatchesHandComputation) {
  const sram_macro_model sram = sram_macro_model::fdsoi_28nm();
  const auto model = system_energy_model::from_macro(sram, 32, 1.0, 1.35);
  EXPECT_DOUBLE_EQ(model.array_read_energy_fj(1.0),
                   32 * sram.col_read_energy_fj * 1.35);
}

TEST(SystemEnergyTest, RejectsBadParameters) {
  EXPECT_THROW(system_energy_model(0.0), std::invalid_argument);
  EXPECT_THROW(system_energy_model(10.0, 0.0), std::invalid_argument);
  const system_energy_model model(10.0);
  EXPECT_THROW((void)model.array_read_energy_fj(0.0), std::invalid_argument);
  EXPECT_THROW((void)model.protected_read_energy_fj(1.0, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace urmem
