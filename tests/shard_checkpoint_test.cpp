// Tests of sharded sweep execution and resumable checkpoints: shard
// spec validation (malformed/out-of-range text fails before any work),
// stride partitioning (shards cover the grid exactly once, shard 0/1 is
// byte-identical to the unsharded walk), atomic per-point checkpoint
// files keyed by the canonical spec hash (corrupt files re-run, stale
// hashes are rejected), and merge_checkpoints reconstructing the exact
// unsharded report while failing loudly on missing points, conflicting
// duplicates, and cross-campaign directories.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "urmem/common/fs.hpp"
#include "urmem/common/hash.hpp"
#include "urmem/scenario/checkpoint.hpp"
#include "urmem/scenario/scenario_runner.hpp"

namespace urmem {
namespace {

// Integer-exact 6-point grid (bist-march is pure fixture arithmetic),
// fast enough to run dozens of times per suite.
scenario_spec grid_spec() {
  return scenario_spec::parse_text(R"json({
    "name": "shard-grid",
    "geometry": {"rows_per_tile": 64},
    "seeds": {"root": 5},
    "workload": {"name": "bist-march", "faults": 4, "nfm": 3},
    "sweep": [
      {"param": "workload.faults", "values": [2, 4, 6]},
      {"param": "seeds.root", "values": [1, 2]}
    ]
  })json");
}

// Fresh per-test scratch directory (gtest's TempDir is shared).
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "urmem_shard_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string report_dump(const scenario_report& report) {
  return report.to_json().dump();
}

// ------------------------------------------------------------ shard_spec

TEST(ShardSpec, ParsesIndexSlashCount) {
  const shard_spec shard = shard_spec::parse("2/5");
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 5u);
  EXPECT_EQ(shard.label(), "2/5");
  EXPECT_TRUE(shard.owns(2));
  EXPECT_TRUE(shard.owns(7));
  EXPECT_FALSE(shard.owns(3));

  const shard_spec whole = shard_spec::parse("0/1");
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_TRUE(whole.owns(i));
}

TEST(ShardSpec, ShardsPartitionEveryIndexExactlyOnce) {
  constexpr std::uint64_t kCount = 4;
  for (std::uint64_t i = 0; i < 40; ++i) {
    unsigned owners = 0;
    for (std::uint64_t s = 0; s < kCount; ++s) {
      if ((shard_spec{s, kCount}).owns(i)) ++owners;
    }
    EXPECT_EQ(owners, 1u) << "index " << i;
  }
}

TEST(ShardSpec, MalformedTextFailsBeforeAnyWork) {
  for (const char* text : {"", "1", "3/3", "4/3", "0/0", "a/b", "1/", "/2",
                           "1/2/3", "-1/2", " 1/2", "1/2 ", "1.5/3"}) {
    try {
      (void)shard_spec::parse(text);
      FAIL() << "expected spec_error for '" << text << "'";
    } catch (const spec_error& error) {
      EXPECT_EQ(error.field(), "shard") << text;
    }
  }
}

TEST(ShardSpec, RunnerRejectsInvalidShardDirectly) {
  const scenario_runner runner(grid_spec());
  std::ostringstream out;
  run_options options;
  options.shard = {3, 3};
  EXPECT_THROW((void)runner.run(out, options), spec_error);
  options.shard = {0, 0};
  EXPECT_THROW((void)runner.run(out, options), spec_error);
}

// -------------------------------------------------------- sharded runs

TEST(ShardedRun, ShardZeroOfOneIsByteIdenticalToUnsharded) {
  const scenario_runner runner(grid_spec());
  std::ostringstream unsharded_text;
  const scenario_report unsharded = runner.run(unsharded_text);

  std::ostringstream sharded_text;
  const scenario_report sharded = runner.run(sharded_text, run_options{});
  EXPECT_EQ(report_dump(unsharded), report_dump(sharded));
  EXPECT_EQ(unsharded_text.str(), sharded_text.str());
  EXPECT_EQ(sharded.executed_points, 6u);
  EXPECT_EQ(sharded.cached_points, 0u);
}

TEST(ShardedRun, ShardsKeepExpansionOrderAndPartitionTheGrid) {
  const scenario_runner runner(grid_spec());
  std::ostringstream text;
  const scenario_report all = runner.run(text);
  ASSERT_EQ(all.points.size(), 6u);

  std::vector<std::string> sharded_labels;
  for (std::uint64_t s = 0; s < 3; ++s) {
    run_options options;
    options.shard = {s, 3};
    std::ostringstream shard_text;
    const scenario_report shard = runner.run(shard_text, options);
    EXPECT_EQ(shard.points.size(), 2u) << "shard " << s;
    for (std::size_t k = 0; k < shard.points.size(); ++k) {
      // Shard s owns grid indices s, s+3, ... in expansion order.
      EXPECT_EQ(shard.points[k].label, all.points[s + 3 * k].label);
      sharded_labels.push_back(shard.points[k].label);
    }
  }
  EXPECT_EQ(std::set<std::string>(sharded_labels.begin(),
                                  sharded_labels.end())
                .size(),
            6u);
}

// ------------------------------------------------------- checkpointing

TEST(Checkpoint, RunWritesManifestAndOnePointFilePerGridPoint) {
  const std::string dir = scratch_dir("writes");
  const scenario_runner runner(grid_spec());
  run_options options;
  options.checkpoint_dir = dir;
  std::ostringstream text;
  const scenario_report report = runner.run(text, options);
  EXPECT_EQ(report.executed_points, 6u);

  EXPECT_TRUE(std::filesystem::exists(dir + "/manifest.json"));
  for (std::uint64_t i = 0; i < 6; ++i) {
    const std::string path =
        dir + "/point_00000" + std::to_string(i) + ".json";
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
  }
  // Atomic publication leaves no temp files behind.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".json") << entry.path();
  }

  // The merged single directory reproduces the in-process report.
  const scenario_report merged = merge_checkpoints({dir});
  EXPECT_EQ(report_dump(report), report_dump(merged));
}

TEST(Checkpoint, MergedShardDirsAreByteIdenticalToUnsharded) {
  const scenario_runner runner(grid_spec());
  std::ostringstream text;
  const scenario_report unsharded = runner.run(text);

  std::vector<std::string> dirs;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const std::string dir = scratch_dir("merge" + std::to_string(s));
    dirs.push_back(dir);
    run_options options;
    options.shard = {s, 3};
    options.checkpoint_dir = dir;
    std::ostringstream shard_text;
    (void)runner.run(shard_text, options);
  }
  const scenario_report merged = merge_checkpoints(dirs);
  EXPECT_EQ(report_dump(unsharded), report_dump(merged));
}

TEST(Checkpoint, ShardsMayShareOneDirectory) {
  const std::string dir = scratch_dir("shared");
  const scenario_runner runner(grid_spec());
  std::ostringstream text;
  const scenario_report unsharded = runner.run(text);
  for (std::uint64_t s = 0; s < 3; ++s) {
    run_options options;
    options.shard = {s, 3};
    options.checkpoint_dir = dir;
    std::ostringstream shard_text;
    (void)runner.run(shard_text, options);
  }
  const scenario_report merged = merge_checkpoints({dir});
  EXPECT_EQ(report_dump(unsharded), report_dump(merged));
}

TEST(Checkpoint, ResumeRunsOnlyMissingPoints) {
  const std::string dir = scratch_dir("resume");
  const scenario_runner runner(grid_spec());
  run_options options;
  options.checkpoint_dir = dir;

  std::ostringstream first_text;
  const scenario_report first = runner.run(first_text, options);
  EXPECT_EQ(first.executed_points, 6u);

  // A full relaunch recomputes nothing...
  std::ostringstream resumed_text;
  const scenario_report resumed = runner.run(resumed_text, options);
  EXPECT_EQ(resumed.executed_points, 0u);
  EXPECT_EQ(resumed.cached_points, 6u);
  EXPECT_EQ(report_dump(first), report_dump(resumed));
  // ...and cached points print no workload text.
  EXPECT_TRUE(resumed_text.str().empty());

  // Deleting two checkpoints re-runs exactly those points.
  std::filesystem::remove(dir + "/point_000001.json");
  std::filesystem::remove(dir + "/point_000004.json");
  std::ostringstream partial_text;
  const scenario_report partial = runner.run(partial_text, options);
  EXPECT_EQ(partial.executed_points, 2u);
  EXPECT_EQ(partial.cached_points, 4u);
  EXPECT_EQ(report_dump(first), report_dump(partial));
}

TEST(Checkpoint, MaxPointsBudgetStopsAndResumeCompletes) {
  const std::string dir = scratch_dir("budget");
  const scenario_runner runner(grid_spec());
  std::ostringstream text;
  const scenario_report unsharded = runner.run(text);

  run_options options;
  options.checkpoint_dir = dir;
  options.max_points = 2;
  std::ostringstream budget_text;
  const scenario_report killed = runner.run(budget_text, options);
  EXPECT_EQ(killed.executed_points, 2u);
  EXPECT_EQ(killed.points.size(), 2u);

  options.max_points = 0;
  std::ostringstream resume_text;
  const scenario_report resumed = runner.run(resume_text, options);
  EXPECT_EQ(resumed.cached_points, 2u);
  EXPECT_EQ(resumed.executed_points, 4u);
  EXPECT_EQ(report_dump(unsharded), report_dump(resumed));
  EXPECT_EQ(report_dump(unsharded), report_dump(merge_checkpoints({dir})));
}

TEST(Checkpoint, TruncatedOrCorruptPointFileIsTreatedAsMissing) {
  const std::string dir = scratch_dir("corrupt");
  const scenario_runner runner(grid_spec());
  run_options options;
  options.checkpoint_dir = dir;
  std::ostringstream text;
  const scenario_report first = runner.run(text, options);

  // Truncate one file mid-document and replace another with valid JSON
  // of the wrong shape; both must silently re-run.
  {
    const std::string path = dir + "/point_000002.json";
    std::string content = *read_file(path);
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content.substr(0, content.size() / 2);
  }
  {
    std::ofstream out(dir + "/point_000005.json",
                      std::ios::trunc | std::ios::binary);
    out << "{\"not\": \"a checkpoint\"}\n";
  }

  std::ostringstream resumed_text;
  const scenario_report resumed = runner.run(resumed_text, options);
  EXPECT_EQ(resumed.executed_points, 2u);
  EXPECT_EQ(resumed.cached_points, 4u);
  EXPECT_EQ(report_dump(first), report_dump(resumed));
}

TEST(Checkpoint, StaleSpecHashIsRejectedNotRecomputed) {
  const std::string dir = scratch_dir("stale");
  scenario_spec spec = grid_spec();
  const scenario_runner runner(spec);
  run_options options;
  options.checkpoint_dir = dir;
  std::ostringstream text;
  (void)runner.run(text, options);

  // Any semantic change hashes differently...
  scenario_spec changed = spec;
  changed.seeds.root = 6;
  EXPECT_NE(spec.canonical_hash(), changed.canonical_hash());

  // ...and reusing the directory for it fails loudly at the manifest.
  const scenario_runner changed_runner(changed);
  std::ostringstream changed_text;
  try {
    (void)changed_runner.run(changed_text, options);
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "checkpoint-dir");
    EXPECT_NE(std::string(error.what()).find("stale"), std::string::npos);
  }

  // A lone stale point file (manifest gone) is rejected at load time.
  std::filesystem::remove(dir + "/manifest.json");
  const checkpoint_store store(dir, changed.canonical_hash());
  EXPECT_THROW((void)store.load_point(0), spec_error);
}

// -------------------------------------------------------------- merging

TEST(Merge, FailsLoudlyOnMissingPoints) {
  const std::string dir = scratch_dir("missing");
  const scenario_runner runner(grid_spec());
  run_options options;
  options.checkpoint_dir = dir;
  std::ostringstream text;
  (void)runner.run(text, options);
  std::filesystem::remove(dir + "/point_000003.json");
  try {
    (void)merge_checkpoints({dir});
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_NE(std::string(error.what()).find("3"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("no checkpoint"),
              std::string::npos);
  }
}

TEST(Merge, FailsLoudlyOnCorruptPointFiles) {
  const std::string dir = scratch_dir("merge_corrupt");
  const scenario_runner runner(grid_spec());
  run_options options;
  options.checkpoint_dir = dir;
  std::ostringstream text;
  (void)runner.run(text, options);
  {
    const std::string path = dir + "/point_000000.json";
    std::string content = *read_file(path);
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content.substr(0, content.size() / 3);
  }
  EXPECT_THROW((void)merge_checkpoints({dir}), spec_error);
}

TEST(Merge, FailsLoudlyOnConflictingDuplicates) {
  const std::string dir_a = scratch_dir("dup_a");
  const std::string dir_b = scratch_dir("dup_b");
  const scenario_spec spec = grid_spec();
  const scenario_runner runner(spec);
  run_options options;
  options.checkpoint_dir = dir_a;
  std::ostringstream text;
  const scenario_report report = runner.run(text, options);

  // Same campaign in dir_b, but point 2's payload tampered with.
  options.checkpoint_dir = dir_b;
  std::ostringstream text_b;
  (void)runner.run(text_b, options);
  const checkpoint_store store(dir_b, spec.canonical_hash());
  scenario_point_result tampered = report.points[2];
  tampered.output.trials += 1;
  store.store_point(2, report.points.size(), tampered);

  try {
    (void)merge_checkpoints({dir_a, dir_b});
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_NE(std::string(error.what()).find("conflicting"),
              std::string::npos);
  }
  // Identical duplicates are fine: restoring the true payload (the
  // tampered file parses as a valid checkpoint, so a resumed run would
  // keep it) makes the two full directories merge cleanly.
  store.store_point(2, report.points.size(), report.points[2]);
  const scenario_report merged = merge_checkpoints({dir_a, dir_b});
  EXPECT_EQ(report_dump(report), report_dump(merged));
}

TEST(Merge, RejectsDirectoriesFromDifferentCampaigns) {
  const std::string dir_a = scratch_dir("cross_a");
  const std::string dir_b = scratch_dir("cross_b");
  scenario_spec spec = grid_spec();
  {
    const scenario_runner runner(spec);
    run_options options;
    options.checkpoint_dir = dir_a;
    std::ostringstream text;
    (void)runner.run(text, options);
  }
  spec.seeds.root = 777;
  {
    const scenario_runner runner(spec);
    run_options options;
    options.checkpoint_dir = dir_b;
    std::ostringstream text;
    (void)runner.run(text, options);
  }
  EXPECT_THROW((void)merge_checkpoints({dir_a, dir_b}), spec_error);
  EXPECT_THROW((void)merge_checkpoints({scratch_dir("empty")}), spec_error);
  EXPECT_THROW((void)merge_checkpoints({}), spec_error);
}

// ---------------------------------------------------- fs + hash helpers

TEST(FsHelpers, AtomicWriteCreatesParentDirsAndLeavesNoTemp) {
  const std::string dir = scratch_dir("fs");
  const std::string path = dir + "/a/b/c.json";
  write_file_atomic(path, "payload");
  EXPECT_EQ(*read_file(path), "payload");
  write_file_atomic(path, "replaced");
  EXPECT_EQ(*read_file(path), "replaced");
  unsigned files = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) ++files;
  }
  EXPECT_EQ(files, 1u);
  EXPECT_FALSE(read_file(dir + "/nope.json").has_value());
}

TEST(SpecHash, IsStableAndSensitive) {
  const scenario_spec spec = grid_spec();
  EXPECT_EQ(spec.canonical_hash(), grid_spec().canonical_hash());
  EXPECT_EQ(spec.canonical_hash().size(), 16u);
  // Round-tripping through JSON normalization preserves the hash.
  EXPECT_EQ(spec.canonical_hash(),
            scenario_spec::from_json(spec.to_json()).canonical_hash());
  // Each semantic knob moves it.
  scenario_spec changed = spec;
  changed.run.threads = 4;
  EXPECT_NE(spec.canonical_hash(), changed.canonical_hash());
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(to_hex16(0), "0000000000000000");
  EXPECT_EQ(to_hex16(0xdeadbeefULL), "00000000deadbeef");
}

}  // namespace
}  // namespace urmem
