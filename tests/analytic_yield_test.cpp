// Tests for the closed-form single-fault distributions and their
// agreement with the Monte-Carlo sampler — the strongest validation of
// the Fig. 5 machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/yield/analytic.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace urmem {
namespace {

TEST(SingleFaultDistributionTest, NoneSchemeIsUniformOverBitWeights) {
  const auto scheme = make_scheme_none();
  const auto dist = single_fault_cost_distribution(*scheme);
  ASSERT_EQ(dist.size(), 32u);  // 32 distinct costs 4^0..4^31
  for (std::size_t i = 0; i < dist.size(); ++i) {
    EXPECT_DOUBLE_EQ(dist[i].first, std::ldexp(1.0, 2 * static_cast<int>(i)));
    EXPECT_DOUBLE_EQ(dist[i].second, 1.0 / 32.0);
  }
}

TEST(SingleFaultDistributionTest, SecdedIsPointMassAtZero) {
  const auto scheme = make_scheme_secded();
  const auto dist = single_fault_cost_distribution(*scheme);
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_DOUBLE_EQ(dist[0].first, 0.0);
  EXPECT_DOUBLE_EQ(dist[0].second, 1.0);
}

TEST(SingleFaultDistributionTest, PeccSplitsMassBetweenRegions) {
  const auto scheme = make_scheme_pecc();
  const auto dist = single_fault_cost_distribution(*scheme);
  // 22 of 38 columns are protected (cost 0), 16 unprotected with costs
  // 4^0..4^15.
  EXPECT_DOUBLE_EQ(dist.front().first, 0.0);
  EXPECT_NEAR(dist.front().second, 22.0 / 38.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist.back().first, std::ldexp(1.0, 30));
  double total = 0.0;
  for (const auto& [cost, prob] : dist) total += prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SingleFaultDistributionTest, ShuffleFoldsMassIntoSegment) {
  // nFM=2 (S=8): each residual position 0..7 receives 4/32 of the mass.
  const auto scheme = make_scheme_shuffle(16, 32, 2);
  const auto dist = single_fault_cost_distribution(*scheme);
  ASSERT_EQ(dist.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(dist[i].first, std::ldexp(1.0, 2 * static_cast<int>(i)));
    EXPECT_DOUBLE_EQ(dist[i].second, 1.0 / 8.0);
  }
}

TEST(SingleFaultDistributionTest, ExpectedCostOrdersSchemes) {
  const double none = expected_single_fault_cost(*make_scheme_none());
  const double pecc = expected_single_fault_cost(*make_scheme_pecc());
  const double nfm1 = expected_single_fault_cost(*make_scheme_shuffle(16, 32, 1));
  const double nfm5 = expected_single_fault_cost(*make_scheme_shuffle(16, 32, 5));
  const double ecc = expected_single_fault_cost(*make_scheme_secded());
  EXPECT_LT(ecc, nfm5);
  EXPECT_LT(nfm5, nfm1);
  EXPECT_LT(nfm1, none);
  EXPECT_LT(pecc, none);
  // nFM=1's mean (dominated by 4^15) undercuts P-ECC's (dominated by
  // the unprotected 4^15 share): both ~4^15-scale.
  EXPECT_NEAR(std::log2(nfm1 / pecc), std::log2(30.0 / 16.0) - 0.0, 2.0);
}

TEST(SingleFaultDistributionTest, MonteCarloOneFaultStratumMatchesExactly) {
  // The MC sampler restricted to n = 1 must reproduce the closed form
  // at every support point.
  for (const auto& scheme :
       {make_scheme_none(), make_scheme_pecc(), make_scheme_shuffle(4096, 32, 2)}) {
    const empirical_cdf exact = analytic_single_fault_mse_cdf(*scheme, 4096);
    mse_cdf_config config;
    config.total_runs = 40'000'000;  // pmf(1) ~ 0.34 -> ~13.6M... capped below
    config.total_runs = 2'000'000;
    config.n_min = 1;
    config.n_max = 1;
    config.seed = 5;
    const empirical_cdf sampled = compute_mse_cdf(*scheme, 4096, 5e-6, config);
    for (const double v : exact.support()) {
      EXPECT_NEAR(sampled.at(v), exact.at(v), 0.01)
          << scheme->name() << " at MSE " << v;
    }
  }
}

TEST(ConvolutionTest, MatchesHandComputedSum) {
  // X uniform on {0,1}, Y uniform on {0,2}: X+Y uniform on {0,1,2,3}.
  const discrete_distribution x{{0.0, 0.5}, {1.0, 0.5}};
  const discrete_distribution y{{0.0, 0.5}, {2.0, 0.5}};
  const discrete_distribution sum = convolve(x, y);
  ASSERT_EQ(sum.size(), 4u);
  for (const auto& [value, prob] : sum) EXPECT_DOUBLE_EQ(prob, 0.25);
  EXPECT_DOUBLE_EQ(sum[3].first, 3.0);
}

TEST(ConvolutionTest, MergesCoincidentSums) {
  // {0,1} + {0,1}: value 1 arises twice.
  const discrete_distribution x{{0.0, 0.5}, {1.0, 0.5}};
  const discrete_distribution sum = convolve(x, x);
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum[1].first, 1.0);
  EXPECT_DOUBLE_EQ(sum[1].second, 0.5);
}

TEST(ConvolutionTest, NormalizesAfterPruning) {
  const discrete_distribution x{{0.0, 1.0 - 1e-18}, {1.0, 1e-18}};
  const discrete_distribution sum = convolve(x, x, 1e-12);
  double total = 0.0;
  for (const auto& [value, prob] : sum) total += prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(AnalyticMixtureCdfTest, AgreesWithMonteCarloAtFig5OperatingPoint) {
  // The convolution mixture must track the stratified sampler across
  // the schemes that matter for Fig. 5.
  for (const auto& scheme :
       {make_scheme_none(), make_scheme_pecc(), make_scheme_shuffle(4096, 32, 1)}) {
    const empirical_cdf exact = analytic_mse_cdf(*scheme, 4096, 5e-6, {});
    mse_cdf_config mc_config;
    mc_config.total_runs = 400'000;
    mc_config.n_max = 40;
    mc_config.seed = 21;
    const empirical_cdf sampled = compute_mse_cdf(*scheme, 4096, 5e-6, mc_config);
    for (const double q : {1e-3, 1e-1, 1e1, 1e3, 1e5, 1e7, 1e9}) {
      EXPECT_NEAR(sampled.at(q), exact.at(q), 0.01)
          << scheme->name() << " at MSE " << q;
    }
  }
}

TEST(AnalyticMixtureCdfTest, FaultFreeMassLandsAtZero) {
  const auto scheme = make_scheme_none();
  analytic_cdf_config config;
  config.include_fault_free = true;
  const empirical_cdf cdf = analytic_mse_cdf(*scheme, 4096, 5e-6, config);
  // Pr(N=0) ~ 0.519 at this Pcell.
  EXPECT_NEAR(cdf.at(0.0), 0.52, 0.01);
}

TEST(AnalyticMixtureCdfTest, SecdedMixtureIsDegenerate) {
  const auto scheme = make_scheme_secded();
  const empirical_cdf cdf = analytic_mse_cdf(*scheme, 4096, 5e-6, {});
  // Single faults are free and the independent-fault approximation has
  // no same-row pairs: all mass at 0.
  EXPECT_DOUBLE_EQ(cdf.at(0.0), 1.0);
}

TEST(AnalyticMixtureCdfTest, RejectsBadConfig) {
  const auto scheme = make_scheme_none();
  analytic_cdf_config config;
  config.n_min = 5;
  config.n_max = 2;
  EXPECT_THROW((void)analytic_mse_cdf(*scheme, 4096, 5e-6, config),
               std::invalid_argument);
}

TEST(SingleFaultDistributionTest, CdfNormalizedAndMonotone) {
  const auto scheme = make_scheme_shuffle(4096, 32, 3);
  const empirical_cdf cdf = analytic_single_fault_mse_cdf(*scheme, 4096);
  EXPECT_DOUBLE_EQ(cdf.cumulative().back(), 1.0);
  double prev = 0.0;
  for (const double c : cdf.cumulative()) {
    EXPECT_GE(c, prev);
    prev = c;
  }
}

}  // namespace
}  // namespace urmem
