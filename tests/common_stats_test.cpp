// Tests for the statistics primitives (normal CDF/quantile, ECDF).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "urmem/common/stats.hpp"

namespace urmem {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-10);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-10);
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876450377018e-10, 1e-16);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (const double p : {1e-9, 1e-6, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12 + p * 1e-10) << "p=" << p;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-9);
  EXPECT_NEAR(normal_quantile(1e-4), -3.719016485455709, 1e-8);
}

TEST(NormalTest, QuantileRejectsOutOfDomain) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(-0.5), std::invalid_argument);
}

TEST(DescriptiveTest, MeanVarianceStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(SpacingTest, LinspaceEndpointsAndStep) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(SpacingTest, LogspaceIsGeometric) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-9);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
  EXPECT_NEAR(v[3], 1000.0, 1e-9);
}

TEST(EcdfTest, UnweightedStepFunction) {
  const empirical_cdf cdf(std::vector<double>{3.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(1.9), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(EcdfTest, WeightedMassesNormalize) {
  const empirical_cdf cdf({10.0, 20.0}, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(20.0), 1.0);
}

TEST(EcdfTest, QuantileIsGeneralizedInverse) {
  const empirical_cdf cdf(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.26), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(EcdfTest, DuplicateSupportPointsAreMerged) {
  const empirical_cdf cdf(std::vector<double>{5.0, 5.0, 5.0});
  EXPECT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 1.0);
}

TEST(EcdfTest, RejectsInvalidConstruction) {
  EXPECT_THROW(empirical_cdf(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(empirical_cdf({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(empirical_cdf({1.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(empirical_cdf({1.0}, {0.0}), std::invalid_argument);
}

TEST(EcdfTest, CdfIsMonotoneOverSupport) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(std::sin(i) * 10.0);
  const empirical_cdf cdf(values);
  double prev = 0.0;
  for (const double v : cdf.support()) {
    const double cur = cdf.at(v);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

}  // namespace
}  // namespace urmem
