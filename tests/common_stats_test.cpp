// Tests for the statistics primitives (normal CDF/quantile, ECDF).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "urmem/common/stats.hpp"

namespace urmem {
namespace {

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-10);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-10);
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876450377018e-10, 1e-16);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (const double p : {1e-9, 1e-6, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12 + p * 1e-10) << "p=" << p;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-9);
  EXPECT_NEAR(normal_quantile(1e-4), -3.719016485455709, 1e-8);
}

TEST(NormalTest, QuantileRejectsOutOfDomain) {
  EXPECT_THROW((void)normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW((void)normal_quantile(-0.5), std::invalid_argument);
}

TEST(DescriptiveTest, MeanVarianceStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(SpacingTest, LinspaceEndpointsAndStep) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(SpacingTest, LogspaceIsGeometric) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-9);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-9);
  EXPECT_NEAR(v[3], 1000.0, 1e-9);
}

TEST(EcdfTest, UnweightedStepFunction) {
  const empirical_cdf cdf(std::vector<double>{3.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(1.9), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(EcdfTest, WeightedMassesNormalize) {
  const empirical_cdf cdf({10.0, 20.0}, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(20.0), 1.0);
}

TEST(EcdfTest, QuantileIsGeneralizedInverse) {
  const empirical_cdf cdf(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.26), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(EcdfTest, DuplicateSupportPointsAreMerged) {
  const empirical_cdf cdf(std::vector<double>{5.0, 5.0, 5.0});
  EXPECT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 1.0);
}

TEST(EcdfTest, RejectsInvalidConstruction) {
  EXPECT_THROW(empirical_cdf(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(empirical_cdf({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(empirical_cdf({1.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(empirical_cdf({1.0}, {0.0}), std::invalid_argument);
}

TEST(EcdfTest, CdfIsMonotoneOverSupport) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(std::sin(i) * 10.0);
  const empirical_cdf cdf(values);
  double prev = 0.0;
  for (const double v : cdf.support()) {
    const double cur = cdf.at(v);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}


TEST(LatencyHistogram, EmptyAndSingleSample) {
  latency_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);

  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1234u);
  // One sample is every quantile: min/max clamping pins the bucket
  // upper bound back onto the exact value.
  EXPECT_EQ(h.quantile(0.0), 1234u);
  EXPECT_EQ(h.quantile(0.5), 1234u);
  EXPECT_EQ(h.quantile(1.0), 1234u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values below 2^(sub_bucket_bits + 1) get unit-width buckets, so
  // quantiles are exact, not approximate.
  latency_histogram h;
  for (std::uint64_t v = 0; v < 2 * latency_histogram::sub_bucket_count; ++v) {
    h.record(v);
    EXPECT_EQ(latency_histogram::bucket_upper(latency_histogram::bucket_index(v)),
              v);
  }
  EXPECT_EQ(h.quantile(0.5), latency_histogram::sub_bucket_count - 1);
  EXPECT_EQ(h.quantile(1.0), 2 * latency_histogram::sub_bucket_count - 1);
}

TEST(LatencyHistogram, BucketBoundsAreConsistent) {
  // bucket_upper(bucket_index(v)) >= v, with relative error bounded by
  // 1/sub_bucket_count — checked across the whole 64-bit range.
  for (unsigned shift = 0; shift < 64; ++shift) {
    for (const std::uint64_t delta : {std::uint64_t{0}, std::uint64_t{1}}) {
      const std::uint64_t v = (std::uint64_t{1} << shift) + delta;
      const std::size_t index = latency_histogram::bucket_index(v);
      ASSERT_LT(index, latency_histogram::bucket_table_size);
      const std::uint64_t upper = latency_histogram::bucket_upper(index);
      EXPECT_GE(upper, v);
      EXPECT_LE(static_cast<double>(upper - v),
                static_cast<double>(v) / latency_histogram::sub_bucket_count +
                    1.0);
    }
  }
  const std::uint64_t top = ~std::uint64_t{0};
  EXPECT_LT(latency_histogram::bucket_index(top),
            latency_histogram::bucket_table_size);
  EXPECT_EQ(latency_histogram::bucket_upper(latency_histogram::bucket_index(top)),
            top);
}

TEST(LatencyHistogram, QuantileEdges) {
  latency_histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.quantile(0.0), 1u);   // clamped to min
  EXPECT_EQ(h.quantile(1.0), 1000u);  // clamped to max
  // Mid quantiles land within one bucket (3.2%) of the exact value.
  const auto near = [](std::uint64_t got, double want) {
    return static_cast<double>(got) >= want &&
           static_cast<double>(got) <= want * 1.04 + 1.0;
  };
  EXPECT_TRUE(near(h.quantile(0.5), 500.0)) << h.quantile(0.5);
  EXPECT_TRUE(near(h.quantile(0.99), 990.0)) << h.quantile(0.99);
  EXPECT_TRUE(near(h.quantile(0.999), 999.0)) << h.quantile(0.999);
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  const auto fill = [](latency_histogram& h, std::uint64_t seed,
                       std::uint64_t n) {
    std::uint64_t x = seed;
    for (std::uint64_t i = 0; i < n; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      h.record(x >> 40);
    }
  };
  latency_histogram a, b, c;
  fill(a, 1, 400);
  fill(b, 2, 300);
  fill(c, 3, 200);

  latency_histogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  latency_histogram bc = b;
  bc.merge(c);
  latency_histogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(ab_c == a_bc);

  latency_histogram ba = b;
  ba.merge(a);
  latency_histogram ab = a;
  ab.merge(b);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.count(), 700u);
  EXPECT_EQ(ab.sum(), a.sum() + b.sum());
  EXPECT_EQ(ab.min(), std::min(a.min(), b.min()));
  EXPECT_EQ(ab.max(), std::max(a.max(), b.max()));

  // Merging an empty histogram is the identity.
  latency_histogram empty;
  latency_histogram a_e = a;
  a_e.merge(empty);
  EXPECT_TRUE(a_e == a);
  latency_histogram e_a = empty;
  e_a.merge(a);
  EXPECT_TRUE(e_a == a);
}

TEST(LatencyHistogram, MergeOfTwoEmptiesStaysEmpty) {
  latency_histogram a;
  latency_histogram b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
  EXPECT_EQ(a.quantile(0.999), 0u);
  EXPECT_TRUE(a == latency_histogram{});
}

TEST(LatencyHistogram, SaturatingTopBucket) {
  // The table's last bucket absorbs the top of the uint64 range instead
  // of overflowing the index.
  const std::uint64_t top = ~std::uint64_t{0};
  EXPECT_EQ(latency_histogram::bucket_index(top),
            latency_histogram::bucket_table_size - 1);
  EXPECT_EQ(latency_histogram::bucket_upper(
                latency_histogram::bucket_table_size - 1),
            top);

  latency_histogram h;
  h.record(top);
  h.record(top - 1);  // same saturating bucket
  EXPECT_EQ(latency_histogram::bucket_index(top - 1),
            latency_histogram::bucket_index(top));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), top - 1);
  EXPECT_EQ(h.max(), top);
  // Both samples share one bucket whose upper bound clamps to max.
  EXPECT_EQ(h.quantile(0.5), top);
  EXPECT_EQ(h.quantile(1.0), top);
  // sum() is documented to wrap modulo 2^64: (2^64-1) + (2^64-2).
  EXPECT_EQ(h.sum(), top - 2);
}

TEST(LatencyHistogram, QuantileAtExactBucketBoundaries) {
  // 63 is the last exact unit bucket; 64 opens the first sub-bucketed
  // octave (width-2 buckets for sub_bucket_bits=5). Samples placed
  // exactly on bucket upper bounds make quantiles exact, so the
  // boundary arithmetic has nowhere to hide.
  const std::uint64_t edge = 2 * latency_histogram::sub_bucket_count;  // 64
  ASSERT_NE(latency_histogram::bucket_index(edge - 1),
            latency_histogram::bucket_index(edge));
  EXPECT_EQ(latency_histogram::bucket_upper(
                latency_histogram::bucket_index(edge - 1)),
            edge - 1);

  latency_histogram h;
  h.record(edge - 1);
  h.record(edge);
  // rank ceil(0.5 * 2) = 1 -> the exact bucket of 63; rank 2 -> the
  // first sub-bucketed bucket, whose upper bound clamps back to 64.
  EXPECT_EQ(h.quantile(0.5), edge - 1);
  EXPECT_EQ(h.quantile(0.51), edge);
  EXPECT_EQ(h.quantile(1.0), edge);

  // A run of samples on consecutive bucket upper bounds stays exact at
  // every boundary quantile.
  latency_histogram exact;
  std::vector<std::uint64_t> uppers;
  for (std::size_t index = 100; index < 110; ++index) {
    const std::uint64_t upper = latency_histogram::bucket_upper(index);
    uppers.push_back(upper);
    exact.record(upper);
  }
  const auto n = static_cast<double>(uppers.size());
  for (std::size_t i = 0; i < uppers.size(); ++i) {
    // q chosen so ceil(q * n) == i + 1 exactly.
    const double q = (static_cast<double>(i) + 1.0) / n;
    EXPECT_EQ(exact.quantile(q), uppers[i]) << "i=" << i;
  }
}

TEST(LatencyHistogram, SingleSampleTailQuantiles) {
  // A 1-sample histogram reports that sample at every tail quantile —
  // the serve report prints p99.9 even for tiny smoke runs.
  latency_histogram h;
  h.record(123456789);
  EXPECT_EQ(h.quantile(0.999), 123456789u);
  EXPECT_EQ(h.quantile(0.9999), 123456789u);
  EXPECT_EQ(h.quantile(0.001), 123456789u);
  EXPECT_DOUBLE_EQ(h.mean(), 123456789.0);
}

}  // namespace
}  // namespace urmem
