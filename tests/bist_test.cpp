// Tests for the BIST substrate: march algorithm structure, full
// stuck-at/flip coverage, fault-kind diagnosis, and the
// BIST -> FM-LUT programming flow of the paper's Sec. 3.
#include <gtest/gtest.h>

#include "urmem/bist/bist_engine.hpp"
#include "urmem/bist/march_test.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/shuffle/shuffle_scheme.hpp"

namespace urmem {
namespace {

TEST(MarchTest, AlgorithmComplexities) {
  EXPECT_EQ(mats_plus().complexity(), 5u);      // 5N
  EXPECT_EQ(march_c_minus().complexity(), 10u); // 10N
  EXPECT_EQ(march_a().complexity(), 15u);       // 15N
  EXPECT_EQ(march_b().complexity(), 17u);       // 17N
  EXPECT_EQ(march_ss().complexity(), 22u);      // 22N
}

TEST(MarchTest, MarchAAndBDetectAllStuckAts) {
  for (const march_algorithm& algorithm : {march_a(), march_b()}) {
    fault_map injected({32, 16});
    injected.add({4, 3, fault_kind::stuck_at_zero});
    injected.add({17, 11, fault_kind::stuck_at_one});
    injected.add({30, 0, fault_kind::flip});
    sram_array array(injected);
    const bist_result result = bist_engine(algorithm).run(array);
    EXPECT_EQ(result.faults.fault_count(), 3u) << algorithm.name;
    EXPECT_TRUE(result.faults.row_has_faults(4)) << algorithm.name;
    EXPECT_TRUE(result.faults.row_has_faults(17)) << algorithm.name;
    EXPECT_TRUE(result.faults.row_has_faults(30)) << algorithm.name;
  }
}

TEST(MarchTest, MarchCMinusStructure) {
  const march_algorithm alg = march_c_minus();
  EXPECT_EQ(alg.name, "March C-");
  ASSERT_EQ(alg.elements.size(), 6u);
  // ⇑(r0,w1) as the second element.
  EXPECT_EQ(alg.elements[1].order, address_order::ascending);
  ASSERT_EQ(alg.elements[1].ops.size(), 2u);
  EXPECT_TRUE(alg.elements[1].ops[0].is_read);
  EXPECT_FALSE(alg.elements[1].ops[0].inverted);
  EXPECT_FALSE(alg.elements[1].ops[1].is_read);
  EXPECT_TRUE(alg.elements[1].ops[1].inverted);
  // ⇓ phases follow.
  EXPECT_EQ(alg.elements[3].order, address_order::descending);
}

TEST(BistEngineTest, CleanArrayPasses) {
  sram_array array(array_geometry{64, 32});
  const bist_result result = bist_engine().run(array);
  EXPECT_TRUE(result.pass);
  EXPECT_TRUE(result.traditional_accept());
  EXPECT_EQ(result.faults.fault_count(), 0u);
  EXPECT_GT(result.reads, 0u);
  EXPECT_GT(result.writes, 0u);
}

/// Property: every injected fault is found at its exact location, for
/// each march algorithm and each fault kind.
class BistCoverage : public ::testing::TestWithParam<int> {
 protected:
  march_algorithm algorithm() const {
    switch (GetParam()) {
      case 0: return mats_plus();
      case 1: return march_c_minus();
      default: return march_ss();
    }
  }
};

TEST_P(BistCoverage, DetectsAllStuckAtAndFlipFaults) {
  rng gen(GetParam() + 100);
  const array_geometry geometry{128, 32};
  fault_map injected(geometry);
  injected.add({0, 0, fault_kind::stuck_at_zero});
  injected.add({0, 31, fault_kind::stuck_at_one});
  injected.add({64, 15, fault_kind::flip});
  for (int i = 0; i < 30; ++i) {
    const auto row = static_cast<std::uint32_t>(gen.uniform_below(128));
    const auto col = static_cast<std::uint32_t>(gen.uniform_below(32));
    const auto kind = static_cast<fault_kind>(gen.uniform_below(3));
    injected.add({row, col, kind});
  }

  sram_array array(injected);
  const bist_result result = bist_engine(algorithm()).run(array);
  EXPECT_FALSE(result.pass);

  // Every injected cell must be diagnosed (location-exact coverage).
  for (const fault& f : injected.all_faults()) {
    bool found = false;
    for (const fault& d : result.faults.faults_in_row(f.row)) {
      if (d.col == f.col) found = true;
    }
    EXPECT_TRUE(found) << "missed fault at (" << f.row << "," << f.col << ")";
  }
  // And nothing else (no false positives on a deterministic array).
  EXPECT_EQ(result.faults.fault_count(), injected.fault_count());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, BistCoverage, ::testing::Values(0, 1, 2));

TEST(BistEngineTest, DiagnosesFaultKinds) {
  const array_geometry geometry{8, 16};
  fault_map injected(geometry);
  injected.add({1, 3, fault_kind::stuck_at_zero});
  injected.add({2, 5, fault_kind::stuck_at_one});
  injected.add({3, 7, fault_kind::flip});
  sram_array array(injected);
  const bist_result result = bist_engine().run(array);

  ASSERT_EQ(result.faults.fault_count(), 3u);
  EXPECT_EQ(result.faults.faults_in_row(1)[0].kind, fault_kind::stuck_at_zero);
  EXPECT_EQ(result.faults.faults_in_row(2)[0].kind, fault_kind::stuck_at_one);
  EXPECT_EQ(result.faults.faults_in_row(3)[0].kind, fault_kind::flip);
}

TEST(BistEngineTest, OperationCountMatchesComplexity) {
  sram_array array(array_geometry{32, 8});
  const bist_engine engine(march_c_minus(), {0x0ULL});
  const bist_result result = engine.run(array);
  // March C- is 10N: 5 writes and 5 reads per address per background.
  EXPECT_EQ(result.writes, 32u * 5u);
  EXPECT_EQ(result.reads, 32u * 5u);
}

TEST(BistEngineTest, RunAndProgramMatchesOracleProgramming) {
  rng gen(321);
  const array_geometry geometry{256, 32};
  const fault_map injected = sample_fault_map_exact(geometry, 25, gen,
                                                    fault_polarity::random_stuck);
  sram_array array(injected);

  shuffle_scheme from_bist(256, 32, 3);
  bist_engine().run_and_program(array, from_bist);

  shuffle_scheme oracle(256, 32, 3);
  oracle.program(injected);

  for (std::uint32_t r = 0; r < 256; ++r) {
    EXPECT_EQ(from_bist.lut().get(r), oracle.lut().get(r)) << "row " << r;
  }
}

TEST(BistEngineTest, PowerOnSelfTestTracksNewFaults) {
  // Aging/voltage change scenario: re-running BIST after more cells
  // fail reprograms the LUT (the POST advantage the paper mentions).
  const array_geometry geometry{64, 32};
  fault_map early(geometry);
  early.add({5, 30, fault_kind::flip});
  sram_array array(early);

  shuffle_scheme scheme(64, 32, 5);
  bist_engine().run_and_program(array, scheme);
  EXPECT_EQ(scheme.lut().get(5), 30u);

  fault_map aged(geometry);
  aged.add({5, 30, fault_kind::flip});
  aged.add({9, 12, fault_kind::stuck_at_zero});
  array.set_faults(aged);
  bist_engine().run_and_program(array, scheme);
  EXPECT_EQ(scheme.lut().get(5), 30u);
  EXPECT_EQ(scheme.lut().get(9), 12u);
}

TEST(BistEngineTest, RejectsEmptyConfiguration) {
  EXPECT_THROW(bist_engine(march_algorithm{"empty", {}}), std::invalid_argument);
  EXPECT_THROW(bist_engine(march_c_minus(), {}), std::invalid_argument);
}

}  // namespace
}  // namespace urmem
