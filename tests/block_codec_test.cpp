// Property tests for the compiled block-codec layer: one
// encode_block/decode_block call must be bit-identical — data words and
// decode statuses — to the per-word scalar path and to the per-bit
// reference oracle, for every protection scheme type, across word
// widths, random data, random BIST fault maps, and tile sizes
// including 1, a non-multiple-of-the-array remainder, and the full
// array. Also proves protected_memory's compiled and reference paths
// end-to-end equal through a faulty array.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scheme/protected_memory.hpp"
#include "urmem/scheme/protection_scheme.hpp"

namespace urmem {
namespace {

constexpr std::uint32_t kRows = 256;

std::vector<word_t> random_words(std::uint64_t seed, std::size_t count,
                                 unsigned width) {
  rng gen(seed);
  std::vector<word_t> out(count);
  for (auto& w : out) w = gen() & word_mask(width);
  return out;
}

/// A scheme under test plus the seed deriving its fault map and data.
struct scheme_case {
  std::string label;
  std::function<std::unique_ptr<protection_scheme>()> make;
  std::uint64_t seed;
};

std::vector<scheme_case> all_scheme_cases() {
  std::vector<scheme_case> cases;
  // Unprotected and SECDED at every required width, including the
  // 57-data-bit code that fills the 64-bit carrier.
  for (const unsigned width : {8u, 16u, 32u, 57u}) {
    cases.push_back({"none/" + std::to_string(width),
                     [width] { return make_scheme_none(width); }, width});
    cases.push_back({"secded/" + std::to_string(width),
                     [width] { return make_scheme_secded(width); },
                     width + 100});
    cases.push_back({"hsiao/" + std::to_string(width),
                     [width] { return make_scheme_hsiao(width); },
                     width + 400});
  }
  // Multi-bit BCH at both correction strengths.
  for (const unsigned width : {8u, 16u, 32u}) {
    for (const unsigned t : {1u, 2u}) {
      cases.push_back({"bch/" + std::to_string(width) + "/t=" +
                           std::to_string(t),
                       [width, t] { return make_scheme_bch(width, t); },
                       width + 500 + t});
    }
  }
  // P-ECC at the paper's configuration and narrower variants.
  for (const unsigned width : {8u, 16u, 32u}) {
    cases.push_back({"pecc/" + std::to_string(width),
                     [width] { return make_scheme_pecc(width, width / 2); },
                     width + 200});
  }
  // Bit-shuffling (power-of-two widths only) across nFM values.
  for (const unsigned width : {8u, 16u, 32u}) {
    for (unsigned n_fm = 1; n_fm <= log2_exact(width) && n_fm <= 5; n_fm += 2) {
      cases.push_back(
          {"shuffle/" + std::to_string(width) + "/nFM=" + std::to_string(n_fm),
           [width, n_fm] { return make_scheme_shuffle(kRows, width, n_fm); },
           width + 300 + n_fm});
    }
  }
  return cases;
}

/// Configures `scheme` from a random fault map (so shuffle LUT entries
/// are nonzero) and returns corrupted stored words covering clean,
/// single-error and multi-error rows.
std::vector<word_t> make_stored_words(protection_scheme& scheme,
                                      std::span<const word_t> data,
                                      std::uint64_t seed) {
  rng gen(seed);
  const array_geometry geometry{kRows, scheme.storage_bits()};
  scheme.configure(sample_fault_map_exact(geometry, kRows / 4 + 1, gen));

  std::vector<word_t> stored(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = static_cast<std::uint32_t>(i);
    stored[i] = scheme.encode(row, data[i]);
    if (i % 3 == 0) {
      stored[i] = flip_bit(stored[i], row % scheme.storage_bits());
    }
    if (i % 5 == 0) {
      stored[i] = flip_bit(stored[i], (row + 11) % scheme.storage_bits());
    }
  }
  return stored;
}

TEST(BlockCodecTest, EncodeBlockMatchesScalarForAllSchemesAndTiles) {
  for (const scheme_case& c : all_scheme_cases()) {
    const std::unique_ptr<protection_scheme> scheme = c.make();
    rng gen(c.seed);
    const array_geometry geometry{kRows, scheme->storage_bits()};
    scheme->configure(sample_fault_map_exact(geometry, kRows / 4 + 1, gen));
    const std::vector<word_t> data =
        random_words(c.seed + 1, kRows, scheme->data_bits());

    for (const std::size_t tile : {std::size_t{1}, std::size_t{13},
                                   std::size_t{kRows}}) {
      std::uint32_t first = 0;
      while (first < kRows) {
        const std::size_t count = std::min<std::size_t>(tile, kRows - first);
        std::vector<word_t> block(count);
        scheme->encode_block(first, {data.data() + first, count}, block);
        for (std::size_t i = 0; i < count; ++i) {
          const auto row = first + static_cast<std::uint32_t>(i);
          ASSERT_EQ(block[i], scheme->encode(row, data[row]))
              << c.label << " tile=" << tile << " row=" << row;
          ASSERT_EQ(block[i], scheme->encode_reference(row, data[row]))
              << c.label << " tile=" << tile << " row=" << row;
        }
        first += static_cast<std::uint32_t>(count);
      }
    }
  }
}

TEST(BlockCodecTest, DecodeBlockMatchesScalarForAllSchemesAndTiles) {
  for (const scheme_case& c : all_scheme_cases()) {
    const std::unique_ptr<protection_scheme> scheme = c.make();
    const std::vector<word_t> data =
        random_words(c.seed + 2, kRows, scheme->data_bits());
    const std::vector<word_t> stored =
        make_stored_words(*scheme, data, c.seed + 3);

    for (const std::size_t tile : {std::size_t{1}, std::size_t{13},
                                   std::size_t{kRows}}) {
      std::uint32_t first = 0;
      while (first < kRows) {
        const std::size_t count = std::min<std::size_t>(tile, kRows - first);
        std::vector<word_t> block(count);
        const block_decode_stats stats =
            scheme->decode_block(first, {stored.data() + first, count}, block);
        block_decode_stats expected;
        for (std::size_t i = 0; i < count; ++i) {
          const auto row = first + static_cast<std::uint32_t>(i);
          const read_result scalar = scheme->decode(row, stored[row]);
          const read_result reference = scheme->decode_reference(row, stored[row]);
          ASSERT_EQ(block[i], scalar.data)
              << c.label << " tile=" << tile << " row=" << row;
          ASSERT_EQ(scalar.data, reference.data) << c.label << " row=" << row;
          ASSERT_EQ(scalar.status, reference.status) << c.label << " row=" << row;
          expected.count(scalar.status);
        }
        EXPECT_EQ(stats.corrected, expected.corrected)
            << c.label << " tile=" << tile << " first=" << first;
        EXPECT_EQ(stats.uncorrectable, expected.uncorrectable)
            << c.label << " tile=" << tile << " first=" << first;
        first += static_cast<std::uint32_t>(count);
      }
    }
  }
}

TEST(BlockCodecTest, DecodeBlockWorksInPlace) {
  for (const scheme_case& c : all_scheme_cases()) {
    const std::unique_ptr<protection_scheme> scheme = c.make();
    const std::vector<word_t> data =
        random_words(c.seed + 4, kRows, scheme->data_bits());
    const std::vector<word_t> stored =
        make_stored_words(*scheme, data, c.seed + 5);

    std::vector<word_t> out_of_place(kRows);
    scheme->decode_block(0, stored, out_of_place);
    std::vector<word_t> in_place = stored;
    scheme->decode_block(0, in_place, in_place);
    EXPECT_EQ(in_place, out_of_place) << c.label;

    std::vector<word_t> encoded(kRows);
    scheme->encode_block(0, data, encoded);
    std::vector<word_t> encoded_in_place = data;
    scheme->encode_block(0, encoded_in_place, encoded_in_place);
    EXPECT_EQ(encoded_in_place, encoded) << c.label;
  }
}

TEST(BlockCodecTest, RejectsMismatchedSpans) {
  const std::unique_ptr<protection_scheme> scheme = make_scheme_secded(32);
  const std::vector<word_t> data(8, 0);
  std::vector<word_t> out(7);
  EXPECT_THROW(scheme->encode_block(0, data, out), std::invalid_argument);
  EXPECT_THROW(scheme->decode_block(0, data, out), std::invalid_argument);
}

/// End to end: protected_memory on a faulty array must return identical
/// restored words and stats on the compiled block path and the per-word
/// reference oracle path.
TEST(BlockCodecTest, ProtectedMemoryBlockPathMatchesReferencePath) {
  struct factory_case {
    std::string label;
    std::function<std::unique_ptr<protection_scheme>()> make;
  };
  const std::vector<factory_case> factories = {
      {"none", [] { return make_scheme_none(32); }},
      {"secded", [] { return make_scheme_secded(32); }},
      {"hsiao", [] { return make_scheme_hsiao(32); }},
      {"bch:t=2", [] { return make_scheme_bch(32, 2); }},
      {"pecc", [] { return make_scheme_pecc(32, 16); }},
      {"shuffle", [] { return make_scheme_shuffle(kRows, 32, 3); }},
  };
  for (const factory_case& c : factories) {
    for (int trial = 0; trial < 3; ++trial) {
      const std::uint64_t seed = 900 + static_cast<std::uint64_t>(trial) * 17;
      protected_memory compiled(kRows, c.make());
      protected_memory reference(kRows, c.make());
      compiled.set_fault_path(fault_path::compiled);
      reference.set_fault_path(fault_path::reference);

      rng map_gen(seed);
      const fault_map faults = sample_fault_map_exact(
          compiled.storage_geometry(), 40, map_gen, fault_polarity::mixed);
      compiled.set_fault_map(faults);
      reference.set_fault_map(faults);

      const std::vector<word_t> data = random_words(seed + 1, kRows, 32);
      compiled.write_block(0, data);
      std::vector<word_t> from_compiled(kRows);
      protected_memory::block_stats compiled_stats;
      compiled.read_block(0, from_compiled, &compiled_stats);

      reference.write_block(0, data);
      std::vector<word_t> from_reference(kRows);
      protected_memory::block_stats reference_stats;
      reference.read_block(0, from_reference, &reference_stats);

      ASSERT_EQ(from_compiled, from_reference) << c.label << " trial=" << trial;
      EXPECT_EQ(compiled_stats.corrected, reference_stats.corrected) << c.label;
      EXPECT_EQ(compiled_stats.uncorrectable, reference_stats.uncorrectable)
          << c.label;

      // The per-word read path must agree with both block paths.
      for (std::uint32_t row = 0; row < kRows; ++row) {
        ASSERT_EQ(compiled.read(row).data, from_compiled[row])
            << c.label << " row=" << row;
      }
    }
  }
}

TEST(BlockCodecTest, ShiftTableMatchesEquationTwo) {
  for (const unsigned width : {8u, 16u, 32u, 64u}) {
    for (unsigned n_fm = 1; n_fm <= log2_exact(width); ++n_fm) {
      const bit_shuffler shuffler(width, n_fm);
      const std::span<const std::uint8_t> table = shuffler.shift_table();
      ASSERT_EQ(table.size(), shuffler.segment_count());
      for (unsigned xfm = 0; xfm < shuffler.segment_count(); ++xfm) {
        EXPECT_EQ(table[xfm],
                  (shuffler.segment_size() * (shuffler.segment_count() - xfm)) %
                      width)
            << "W=" << width << " nFM=" << n_fm << " xFM=" << xfm;
        EXPECT_EQ(table[xfm], shuffler.shift_amount(xfm));
      }
    }
  }
}

}  // namespace
}  // namespace urmem
