// Cross-module property suites: invariants that must hold for every
// protection scheme, fault pattern, and data word — the contracts the
// yield analytics (Eq. 6) rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scheme/protected_memory.hpp"
#include "urmem/scheme/protection_scheme.hpp"

namespace urmem {
namespace {

/// Scheme factories under test, with the per-row fault-count cap below
/// which the scheme's analytic model is exact (SECDED guarantees break
/// at 3+ errors per codeword, where miscorrection becomes possible).
struct scheme_case {
  std::string name;
  std::function<std::unique_ptr<protection_scheme>(std::uint32_t)> make;
  std::uint32_t exact_fault_cap;
};

std::vector<scheme_case> all_schemes() {
  std::vector<scheme_case> cases;
  cases.push_back({"none", [](std::uint32_t) { return make_scheme_none(); },
                   ~0u});
  cases.push_back({"secded", [](std::uint32_t) { return make_scheme_secded(); },
                   2u});
  cases.push_back({"pecc", [](std::uint32_t) { return make_scheme_pecc(); }, 2u});
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    cases.push_back({"nFM=" + std::to_string(n_fm),
                     [n_fm](std::uint32_t rows) {
                       return make_scheme_shuffle(rows, 32, n_fm);
                     },
                     ~0u});
  }
  return cases;
}

class SchemeProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  [[nodiscard]] const scheme_case& scheme() const {
    static const std::vector<scheme_case> cases = all_schemes();
    return cases[GetParam()];
  }
};

/// Property 1: for any fault map within the scheme's exactness cap and
/// any stored data, the per-row Eq. 6 cost of the bits that actually
/// flipped never exceeds the scheme's worst_case_row_cost — the
/// analytic model is a true upper bound.
TEST_P(SchemeProperty, WorstCaseRowCostBoundsEmpiricalFlips) {
  const scheme_case& c = scheme();
  rng gen(GetParam() * 7 + 1);
  const std::uint32_t rows = 64;

  for (int trial = 0; trial < 40; ++trial) {
    auto scheme_instance = c.make(rows);
    protected_memory memory(rows, std::move(scheme_instance));
    const array_geometry geometry = memory.storage_geometry();

    // Random fault map capped per row.
    fault_map faults(geometry);
    std::vector<std::uint32_t> per_row(rows, 0);
    const std::uint64_t n = 1 + gen.uniform_below(40);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto row = static_cast<std::uint32_t>(gen.uniform_below(rows));
      if (per_row[row] >= std::min<std::uint32_t>(c.exact_fault_cap, 4)) continue;
      ++per_row[row];
      faults.add({row, static_cast<std::uint32_t>(gen.uniform_below(geometry.width)),
                  fault_kind::flip});
    }

    std::vector<std::vector<std::uint32_t>> cols_of(rows);
    for (const fault& f : faults.all_faults()) cols_of[f.row].push_back(f.col);
    memory.set_fault_map(std::move(faults));

    for (std::uint32_t row = 0; row < rows; ++row) {
      if (cols_of[row].empty()) continue;
      const word_t data = gen() & word_mask(32);
      memory.write(row, data);
      const word_t diff = memory.read(row).data ^ data;
      double empirical = 0.0;
      for (unsigned bit = 0; bit < 32; ++bit) {
        if (get_bit(diff, bit)) empirical += std::ldexp(1.0, 2 * static_cast<int>(bit));
      }
      const double predicted = memory.scheme().worst_case_row_cost(cols_of[row]);
      EXPECT_LE(empirical, predicted + 1e-9)
          << c.name << " row=" << row << " trial=" << trial;
    }
  }
}

/// Property 2: decode(encode(x)) == x on a fault-free array, and the
/// status is clean, for random data.
TEST_P(SchemeProperty, FaultFreeIdentity) {
  const scheme_case& c = scheme();
  rng gen(GetParam() * 13 + 2);
  const std::uint32_t rows = 16;
  protected_memory memory(rows, c.make(rows));
  for (std::uint32_t row = 0; row < rows; ++row) {
    const word_t data = gen() & word_mask(32);
    memory.write(row, data);
    const read_result r = memory.read(row);
    EXPECT_EQ(r.data, data) << c.name;
    EXPECT_EQ(r.status, ecc_status::clean) << c.name;
  }
}

/// Property 3: worst_case_row_cost is monotone under adding faults —
/// more faulty columns can never reduce the worst-case cost.
TEST_P(SchemeProperty, RowCostMonotoneInFaults) {
  const scheme_case& c = scheme();
  rng gen(GetParam() * 17 + 3);
  const auto scheme_instance = c.make(64);
  const unsigned width = scheme_instance->storage_bits();
  // SECDED/P-ECC costs legitimately drop from 1 fault (corrected, cost 0
  // stays 0 -> increases at 2); monotonicity holds from 2 faults upward.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint32_t> cols;
    const unsigned start = 2;
    for (unsigned i = 0; i < start; ++i) {
      cols.push_back(static_cast<std::uint32_t>(gen.uniform_below(width)));
    }
    double prev = scheme_instance->worst_case_row_cost(cols);
    for (unsigned extra = 0; extra < 3; ++extra) {
      cols.push_back(static_cast<std::uint32_t>(gen.uniform_below(width)));
      const double cur = scheme_instance->worst_case_row_cost(cols);
      EXPECT_GE(cur, prev - 1e-9) << c.name;
      prev = cur;
    }
  }
}

/// Property 4: costs are permutation-invariant in the fault column list.
TEST_P(SchemeProperty, RowCostPermutationInvariant) {
  const scheme_case& c = scheme();
  rng gen(GetParam() * 19 + 4);
  const auto scheme_instance = c.make(64);
  const unsigned width = scheme_instance->storage_bits();
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint32_t> cols;
    for (int i = 0; i < 4; ++i) {
      cols.push_back(static_cast<std::uint32_t>(gen.uniform_below(width)));
    }
    const double forward = scheme_instance->worst_case_row_cost(cols);
    std::reverse(cols.begin(), cols.end());
    EXPECT_DOUBLE_EQ(scheme_instance->worst_case_row_cost(cols), forward) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeProperty,
                         ::testing::Range<std::size_t>(0, 8),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           static const std::vector<scheme_case> cases =
                               all_schemes();
                           std::string name = cases[info.param].name;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

/// Property 5: the Eq. 6 bound holds for *every* physical fault kind,
/// not just deterministic flips — stuck-at and transition faults can
/// only corrupt a subset of the always-flip positions.
TEST_P(SchemeProperty, BoundHoldsUnderMixedPhysicalFaultKinds) {
  const scheme_case& c = scheme();
  rng gen(GetParam() * 23 + 5);
  const std::uint32_t rows = 64;
  auto scheme_instance = c.make(rows);
  protected_memory memory(rows, std::move(scheme_instance));
  const array_geometry geometry = memory.storage_geometry();

  fault_map faults(geometry);
  std::vector<std::vector<std::uint32_t>> cols_of(rows);
  for (std::uint32_t row = 0; row < rows; ++row) {
    if ((row % 3) == 2) continue;  // leave some rows clean
    const auto col = static_cast<std::uint32_t>(gen.uniform_below(geometry.width));
    const auto kind = static_cast<fault_kind>(gen.uniform_below(5));
    faults.add({row, col, kind});
    cols_of[row].push_back(col);
  }
  memory.set_fault_map(std::move(faults));

  for (std::uint32_t row = 0; row < rows; ++row) {
    if (cols_of[row].empty()) continue;
    const word_t data = gen() & word_mask(32);
    memory.write(row, data);
    const word_t diff = memory.read(row).data ^ data;
    double empirical = 0.0;
    for (unsigned bit = 0; bit < 32; ++bit) {
      if (get_bit(diff, bit)) empirical += std::ldexp(1.0, 2 * static_cast<int>(bit));
    }
    EXPECT_LE(empirical, memory.scheme().worst_case_row_cost(cols_of[row]) + 1e-9)
        << c.name << " row=" << row;
  }
}

/// SECDED beyond its guarantee: with 3 raw bit errors the decoder may
/// miscorrect (flip a 4th position). Document the behaviour the
/// analytic model deliberately excludes.
TEST(SecdedBeyondGuarantee, TripleErrorsMayMiscorrectButNeverCrash) {
  const hamming_secded code(32);
  rng gen(5);
  int miscorrections = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const word_t data = gen() & word_mask(32);
    word_t cw = code.encode(data);
    // Three distinct flip positions.
    unsigned a = static_cast<unsigned>(gen.uniform_below(39));
    unsigned b = (a + 1 + static_cast<unsigned>(gen.uniform_below(38))) % 39;
    unsigned c = 0;
    do {
      c = static_cast<unsigned>(gen.uniform_below(39));
    } while (c == a || c == b);
    const ecc_decode_result r = code.decode(flip_bit(flip_bit(flip_bit(cw, a), b), c));
    if (r.status == ecc_status::corrected && r.data != data) ++miscorrections;
  }
  // Odd-weight errors alias to single-error syndromes most of the time.
  EXPECT_GT(miscorrections, 0);
}

}  // namespace
}  // namespace urmem
