// Tests for the fault-lifecycle subsystem: the deterministic fault
// timeline, the background scrubber, the row-retirement policies of
// the lifecycle manager, the scrub/retire spec sections, and the
// determinism contracts (thread count, compiled-vs-reference) of the
// lifecycle-quality workload.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "urmem/lifecycle/fault_timeline.hpp"
#include "urmem/lifecycle/lifecycle_manager.hpp"
#include "urmem/lifecycle/scrubber.hpp"
#include "urmem/scenario/scenario_runner.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/scheme/protected_memory.hpp"
#include "urmem/scheme/protection_scheme.hpp"

namespace urmem {
namespace {

// ------------------------------------------------------ fault timeline

TEST(FaultTimelineTest, ArrivalsAreExactAndPersistent) {
  timeline_config config;
  config.arrivals_per_epoch = 3;
  config.seed = 99;
  fault_timeline timeline(fault_map({32, 16}), config);
  EXPECT_EQ(timeline.epoch(), 0u);
  EXPECT_EQ(timeline.persistent_faults(), 0u);
  for (std::uint32_t epoch = 1; epoch <= 5; ++epoch) {
    EXPECT_EQ(timeline.advance(), 3u);
    EXPECT_EQ(timeline.epoch(), epoch);
    EXPECT_EQ(timeline.persistent_faults(), 3u * epoch);
    // No intermittents: the installed map IS the persistent population.
    EXPECT_EQ(timeline.current().fault_count(), 3u * epoch);
  }
}

TEST(FaultTimelineTest, ManufacturedFaultsSeedTheTimeline) {
  fault_map initial({16, 8});
  initial.add({4, 2, fault_kind::stuck_at_one});
  initial.add({9, 7, fault_kind::flip});
  fault_timeline timeline(std::move(initial), timeline_config{});
  EXPECT_EQ(timeline.persistent_faults(), 2u);
  EXPECT_TRUE(timeline.current().row_has_faults(4));
  EXPECT_TRUE(timeline.current().row_has_faults(9));
  const timeline_fault_set exported = timeline.export_faults();
  for (const timeline_fault& record : exported.faults) {
    EXPECT_EQ(record.birth_epoch, 0u);
    EXPECT_FALSE(record.intermittent);
  }
}

TEST(FaultTimelineTest, IntermittentsFlipAcrossEpochs) {
  timeline_config config;
  config.intermittent_cells = 6;
  config.polarity = fault_polarity::flip;
  config.seed = 7;
  fault_timeline timeline(fault_map({32, 16}), config);
  EXPECT_EQ(timeline.persistent_faults(), 0u);

  std::uint64_t min_active = 6;
  std::uint64_t max_active = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    const std::uint64_t active = timeline.current().fault_count();
    EXPECT_LE(active, 6u);  // only the drawn intermittents can appear
    min_active = std::min(min_active, active);
    max_active = std::max(max_active, active);
    timeline.advance();
  }
  // Across 12 epochs the active subset must actually vary; a constant
  // count would mean the activity hash ignores the epoch.
  EXPECT_LT(min_active, max_active);
}

TEST(FaultTimelineTest, CorruptReadAttemptZeroMatchesInstalledMap) {
  timeline_config config;
  config.arrivals_per_epoch = 4;
  config.intermittent_cells = 5;
  config.polarity = fault_polarity::mixed;
  config.seed = 21;
  fault_timeline timeline(fault_map({24, 16}), config);
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (std::uint32_t row = 0; row < 24; ++row) {
      for (const word_t stored : {word_t{0}, word_t{0xA5C3}, word_t{0xFFFF}}) {
        EXPECT_EQ(timeline.corrupt_read(row, stored, 0),
                  timeline.current().corrupt(row, stored))
            << "epoch " << epoch << " row " << row;
      }
    }
    timeline.advance();
  }
}

TEST(FaultTimelineTest, RetriesRerollOnlyIntermittents) {
  timeline_config config;
  config.intermittent_cells = 4;
  config.polarity = fault_polarity::flip;
  config.seed = 17;
  fault_map initial({16, 8});
  initial.add({1, 3, fault_kind::flip});  // persistent
  fault_timeline timeline(std::move(initial), config);

  // Partition rows: those hosting any intermittent cell re-roll between
  // attempts; purely persistent rows must corrupt identically forever.
  std::vector<bool> has_intermittent(16, false);
  for (const timeline_fault& record : timeline.export_faults().faults) {
    if (record.intermittent) has_intermittent[record.f.row] = true;
  }

  bool intermittent_varied = false;
  for (std::uint32_t row = 0; row < 16; ++row) {
    const word_t first = timeline.corrupt_read(row, 0, 0);
    bool varied = false;
    for (std::uint32_t attempt = 1; attempt < 16; ++attempt) {
      varied = varied || timeline.corrupt_read(row, 0, attempt) != first;
    }
    if (!has_intermittent[row]) {
      EXPECT_FALSE(varied) << "persistent-only row " << row
                           << " changed across retries";
    } else {
      intermittent_varied = intermittent_varied || varied;
    }
  }
  // The persistent flip always shows, whatever the intermittents do.
  EXPECT_EQ(timeline.corrupt_read(1, 0, 0) & (word_t{1} << 3), word_t{1} << 3);
  // At least one intermittent cell must toggle across 16 retries.
  EXPECT_TRUE(intermittent_varied);
}

TEST(FaultTimelineTest, ExportRestoreRoundTrip) {
  timeline_config config;
  config.arrivals_per_epoch = 5;
  config.intermittent_cells = 3;
  config.polarity = fault_polarity::mixed;
  config.seed = 33;
  fault_timeline timeline(fault_map({32, 16}), config);
  timeline.advance();
  timeline.advance();
  timeline.advance();

  const timeline_fault_set exported = timeline.export_faults();
  // The exported set also survives the v2 text format.
  std::stringstream buffer;
  write_timeline_faults(buffer, exported);
  const timeline_fault_set reloaded = read_timeline_faults(buffer);

  const fault_timeline restored = fault_timeline::restore(reloaded, config);
  EXPECT_EQ(restored.epoch(), timeline.epoch());
  EXPECT_EQ(restored.persistent_faults(), timeline.persistent_faults());
  EXPECT_EQ(restored.current().fault_count(), timeline.current().fault_count());
  for (std::uint32_t row = 0; row < 32; ++row) {
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(restored.corrupt_read(row, 0xF0F0, attempt),
                timeline.corrupt_read(row, 0xF0F0, attempt))
          << "row " << row << " attempt " << attempt;
    }
  }
}

// ------------------------------------------------------------ scrubber

TEST(ScrubberTest, ClassifiesAndRewritesRows) {
  protected_memory memory(8, make_scheme_secded());
  for (std::uint32_t row = 0; row < 8; ++row) memory.write(row, 0x1000u + row);

  fault_map faults(memory.storage_geometry());
  faults.add({2, 4, fault_kind::flip});  // single bit: correctable
  faults.add({5, 1, fault_kind::flip});  // double bit: detected-UE
  faults.add({5, 9, fault_kind::flip});
  memory.update_fault_map(std::move(faults));

  scrubber scrub(scrub_config{1, 0, true});
  EXPECT_TRUE(scrub.due(0));
  EXPECT_TRUE(scrub.due(3));
  std::vector<scrub_finding> findings;
  const scrub_pass_stats stats = scrub.pass(memory, findings);
  EXPECT_EQ(stats.rows_scanned, 8u);
  EXPECT_EQ(stats.clean_rows, 6u);
  EXPECT_EQ(stats.corrected_rewrites, 1u);
  EXPECT_EQ(stats.uncorrectable_rows, 1u);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].row, 2u);
  EXPECT_TRUE(findings[0].correctable);
  EXPECT_EQ(findings[0].result.data, 0x1002u);
  EXPECT_EQ(findings[1].row, 5u);
  EXPECT_FALSE(findings[1].correctable);
  // The rewrite preserved row 2's data through decode -> re-encode.
  EXPECT_EQ(memory.read(2).data, 0x1002u);
}

TEST(ScrubberTest, RowBudgetWrapsAcrossPasses) {
  protected_memory memory(8, make_scheme_secded());
  for (std::uint32_t row = 0; row < 8; ++row) memory.write(row, row);
  fault_map faults(memory.storage_geometry());
  faults.add({7, 0, fault_kind::flip});
  memory.update_fault_map(std::move(faults));

  scrubber scrub(scrub_config{1, 3, true});
  std::vector<scrub_finding> findings;
  // Pass 1 covers rows 0-2, pass 2 rows 3-5: nothing flagged yet.
  EXPECT_EQ(scrub.pass(memory, findings).rows_scanned, 3u);
  EXPECT_EQ(scrub.pass(memory, findings).rows_scanned, 3u);
  EXPECT_TRUE(findings.empty());
  // Pass 3 wraps: rows 6, 7, 0 — row 7's fault is finally seen.
  const scrub_pass_stats stats = scrub.pass(memory, findings);
  EXPECT_EQ(stats.rows_scanned, 3u);
  EXPECT_EQ(stats.corrected_rewrites, 1u);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].row, 7u);
}

TEST(ScrubberTest, IntervalZeroNeverRuns) {
  const scrubber scrub{scrub_config{0, 0, true}};
  for (std::uint32_t epoch = 0; epoch < 10; ++epoch) {
    EXPECT_FALSE(scrub.due(epoch));
  }
}

// --------------------------------------------------- lifecycle manager

timeline_config quiet_timeline() {
  timeline_config config;
  config.seed = 5;
  return config;
}

TEST(LifecycleManagerTest, ProactiveCERetirementPreservesData) {
  protected_memory memory(8, make_scheme_secded(), 2);
  for (std::uint32_t row = 0; row < 8; ++row) memory.write(row, 0x2000u + row);

  fault_map initial(memory.storage_geometry());
  initial.add({2, 4, fault_kind::flip});
  lifecycle_manager manager(memory,
                            fault_timeline(std::move(initial), quiet_timeline()),
                            scrub_config{1, 0, true}, retire_config{});
  EXPECT_TRUE(manager.step());

  const lifecycle_counters& counters = manager.counters();
  EXPECT_EQ(counters.epochs, 1u);
  EXPECT_EQ(counters.scrub_passes, 1u);
  EXPECT_EQ(counters.rows_scrubbed, 8u);
  EXPECT_EQ(counters.corrected_rewrites, 1u);
  EXPECT_EQ(counters.ce_retirements, 1u);
  EXPECT_EQ(counters.ue_detected, 0u);
  // The row now lives on a clean spare with its data intact.
  EXPECT_GE(memory.physical_row_of(2), 8u);
  const read_result after = memory.read(2);
  EXPECT_EQ(after.status, ecc_status::clean);
  EXPECT_EQ(after.data, 0x2002u);
  EXPECT_EQ(memory.unused_spares(0), 1u);
}

TEST(LifecycleManagerTest, CEThresholdPolicyCanBeDisabled) {
  protected_memory memory(8, make_scheme_secded(), 2);
  for (std::uint32_t row = 0; row < 8; ++row) memory.write(row, row);
  fault_map initial(memory.storage_geometry());
  initial.add({2, 4, fault_kind::flip});
  lifecycle_manager manager(memory,
                            fault_timeline(std::move(initial), quiet_timeline()),
                            scrub_config{1, 0, false}, retire_config{});
  EXPECT_TRUE(manager.step());
  // Rewritten in place, but no spare was spent.
  EXPECT_EQ(manager.counters().corrected_rewrites, 1u);
  EXPECT_EQ(manager.counters().ce_retirements, 0u);
  EXPECT_EQ(memory.unused_spares(0), 2u);
}

TEST(LifecycleManagerTest, HardUERetiresAfterFailedRetries) {
  protected_memory memory(8, make_scheme_secded(), 2);
  for (std::uint32_t row = 0; row < 8; ++row) memory.write(row, row);
  fault_map initial(memory.storage_geometry());
  initial.add({3, 0, fault_kind::flip});
  initial.add({3, 10, fault_kind::flip});
  retire_config retire;
  retire.max_retries = 2;
  lifecycle_manager manager(memory,
                            fault_timeline(std::move(initial), quiet_timeline()),
                            scrub_config{1, 0, true}, retire);
  EXPECT_TRUE(manager.step());

  const lifecycle_counters& counters = manager.counters();
  EXPECT_EQ(counters.ue_detected, 1u);
  // Persistent faults corrupt every retry identically: both retries
  // run, none succeeds.
  EXPECT_EQ(counters.read_retries, 2u);
  EXPECT_EQ(counters.retry_successes, 0u);
  EXPECT_EQ(counters.ue_retirements, 1u);
  EXPECT_EQ(counters.pool_exhausted, 0u);
  EXPECT_GE(memory.physical_row_of(3), 8u);
  // Stable again (the data itself was already lost to the double flip).
  EXPECT_EQ(memory.read(3).status, ecc_status::clean);
}

TEST(LifecycleManagerTest, MarkPolicyServesCorruptRowsOnce) {
  protected_memory memory(8, make_scheme_secded());  // no spares at all
  for (std::uint32_t row = 0; row < 8; ++row) memory.write(row, row);
  fault_map initial(memory.storage_geometry());
  initial.add({3, 0, fault_kind::flip});
  initial.add({3, 10, fault_kind::flip});
  lifecycle_manager manager(memory,
                            fault_timeline(std::move(initial), quiet_timeline()),
                            scrub_config{1, 0, true}, retire_config{});
  EXPECT_TRUE(manager.step());
  EXPECT_EQ(manager.counters().ue_detected, 1u);
  EXPECT_EQ(manager.counters().pool_exhausted, 1u);
  EXPECT_EQ(manager.counters().marked_rows, 1u);
  EXPECT_EQ(manager.counters().ue_retirements, 0u);
  EXPECT_TRUE(manager.marked(3));
  EXPECT_FALSE(manager.marked(2));
  EXPECT_FALSE(manager.failed());

  // A marked row is not re-processed: the next scrub sees it again but
  // the counters stay put.
  EXPECT_TRUE(manager.step());
  EXPECT_EQ(manager.counters().ue_detected, 1u);
  EXPECT_EQ(manager.counters().marked_rows, 1u);
  // Still served (corrupt), still addressable.
  EXPECT_EQ(memory.read(3).status, ecc_status::detected_uncorrectable);
}

TEST(LifecycleManagerTest, FailstopPolicyHaltsStepping) {
  protected_memory memory(8, make_scheme_secded());
  for (std::uint32_t row = 0; row < 8; ++row) memory.write(row, row);
  fault_map initial(memory.storage_geometry());
  initial.add({3, 0, fault_kind::flip});
  initial.add({3, 10, fault_kind::flip});
  retire_config retire;
  retire.policy = degrade_policy::failstop;
  lifecycle_manager manager(memory,
                            fault_timeline(std::move(initial), quiet_timeline()),
                            scrub_config{1, 0, true}, retire);
  EXPECT_FALSE(manager.step());
  EXPECT_TRUE(manager.failed());
  ASSERT_TRUE(manager.failstop_epoch().has_value());
  EXPECT_EQ(*manager.failstop_epoch(), 1u);
  EXPECT_EQ(manager.counters().failstops, 1u);
  EXPECT_EQ(manager.counters().epochs, 1u);
  // Dead is dead: further steps refuse and change nothing.
  EXPECT_FALSE(manager.step());
  EXPECT_EQ(manager.counters().epochs, 1u);
}

TEST(LifecycleManagerTest, RemapPolicyBorrowsTheReliablePool) {
  std::vector<memory_region> regions;
  regions.push_back({0, 3, 2, 0});  // reliable tier: its own 2 spares
  regions.push_back({4, 7, 0, 0});  // tolerant tier: no spares
  protected_memory memory(8, make_scheme_secded(), std::move(regions));
  for (std::uint32_t row = 0; row < 8; ++row) memory.write(row, row);
  fault_map initial(memory.storage_geometry());
  initial.add({5, 0, fault_kind::flip});
  initial.add({5, 10, fault_kind::flip});
  retire_config retire;
  retire.policy = degrade_policy::remap;
  retire.reliable_region = 0;
  lifecycle_manager manager(memory,
                            fault_timeline(std::move(initial), quiet_timeline()),
                            scrub_config{1, 0, true}, retire);
  EXPECT_TRUE(manager.step());
  const lifecycle_counters& counters = manager.counters();
  EXPECT_EQ(counters.ue_detected, 1u);
  EXPECT_EQ(counters.pool_exhausted, 1u);  // region 1's own pool is dry
  EXPECT_EQ(counters.cross_region_remaps, 1u);
  EXPECT_EQ(counters.ue_retirements, 1u);
  EXPECT_EQ(counters.marked_rows, 0u);
  // The row landed in region 0's spare pool.
  EXPECT_GE(memory.physical_row_of(5), memory.region_spare_base(0));
  EXPECT_EQ(memory.unused_spares(0), 1u);
  EXPECT_EQ(memory.read(5).status, ecc_status::clean);
}

TEST(LifecycleManagerTest, CompiledAndReferencePathsAgree) {
  const auto build = [](protected_memory& memory) {
    for (std::uint32_t row = 0; row < 16; ++row) {
      memory.write(row, 0x5A5A0000u + row);
    }
    timeline_config config;
    config.arrivals_per_epoch = 3;
    config.intermittent_cells = 2;
    config.polarity = fault_polarity::mixed;
    config.seed = 71;
    return fault_timeline(fault_map(memory.storage_geometry()), config);
  };

  protected_memory compiled(16, make_scheme_secded(), 4);
  protected_memory reference(16, make_scheme_secded(), 4);
  reference.set_fault_path(fault_path::reference);
  fault_timeline compiled_timeline = build(compiled);
  fault_timeline reference_timeline = build(reference);

  lifecycle_manager a(compiled, std::move(compiled_timeline),
                      scrub_config{1, 0, true}, retire_config{});
  lifecycle_manager b(reference, std::move(reference_timeline),
                      scrub_config{1, 0, true}, retire_config{});
  for (int epoch = 0; epoch < 6; ++epoch) {
    EXPECT_EQ(a.step(), b.step());
  }
  const lifecycle_counters& ca = a.counters();
  const lifecycle_counters& cb = b.counters();
  EXPECT_EQ(ca.injected_faults, cb.injected_faults);
  EXPECT_EQ(ca.corrected_rewrites, cb.corrected_rewrites);
  EXPECT_EQ(ca.ce_retirements, cb.ce_retirements);
  EXPECT_EQ(ca.ue_detected, cb.ue_detected);
  EXPECT_EQ(ca.read_retries, cb.read_retries);
  EXPECT_EQ(ca.retry_successes, cb.retry_successes);
  EXPECT_EQ(ca.ue_retirements, cb.ue_retirements);
  EXPECT_EQ(ca.pool_exhausted, cb.pool_exhausted);
  EXPECT_EQ(ca.marked_rows, cb.marked_rows);
  for (std::uint32_t row = 0; row < 16; ++row) {
    const read_result ra = compiled.read(row);
    const read_result rb = reference.read(row);
    EXPECT_EQ(ra.data, rb.data) << "row " << row;
    EXPECT_EQ(ra.status, rb.status) << "row " << row;
  }
}

// -------------------------------------------------- scrub/retire specs

TEST(LifecycleSpecTest, ScrubRetireSectionsRoundTrip) {
  const scenario_spec spec = scenario_spec::parse_text(R"json({
    "name": "life",
    "scrub": {"interval": 4, "rows_per_pass": 128, "retire_correctable": false},
    "retire": {"policy": "remap", "max_retries": 3, "spare_rows": 16,
               "reliable_region": 1},
    "workload": {"name": "lifecycle-quality"}
  })json");
  EXPECT_EQ(spec.scrub.interval, 4u);
  EXPECT_EQ(spec.scrub.rows_per_pass, 128u);
  EXPECT_FALSE(spec.scrub.retire_correctable);
  EXPECT_EQ(spec.retire.policy, degrade_policy::remap);
  EXPECT_EQ(spec.retire.max_retries, 3u);
  EXPECT_EQ(spec.retire.spare_rows, 16u);
  EXPECT_EQ(spec.retire.reliable_region, 1u);
  // The sections map onto the lifecycle configs verbatim.
  EXPECT_EQ(spec.scrub.config(), (scrub_config{4, 128, false}));
  EXPECT_EQ(spec.retire.config(),
            (retire_config{degrade_policy::remap, 3, 1}));
  // JSON round trip is the identity.
  const json_value first = spec.to_json();
  EXPECT_EQ(first.dump(), scenario_spec::from_json(first).to_json().dump());
}

TEST(LifecycleSpecTest, DefaultSectionsAreOmittedFromJson) {
  const scenario_spec spec = scenario_spec::parse_text(R"json({
    "name": "plain", "workload": {"name": "bist-march"}
  })json");
  const json_value doc = spec.to_json();
  EXPECT_EQ(doc.find("scrub"), nullptr);
  EXPECT_EQ(doc.find("retire"), nullptr);
  EXPECT_EQ(doc.find("fault")->find("age_hours"), nullptr);
}

TEST(LifecycleSpecTest, RejectsBadLifecycleFields) {
  try {
    (void)scenario_spec::parse_text(
        R"({"retire": {"policy": "explode"}, "workload": {"name": "x"}})");
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "retire.policy");
  }
  EXPECT_THROW((void)scenario_spec::parse_text(
                   R"({"retire": {"max_retries": 101},
                       "workload": {"name": "x"}})"),
               spec_error);
  EXPECT_THROW((void)scenario_spec::parse_text(
                   R"({"scrub": {"interval": 8388609},
                       "workload": {"name": "x"}})"),
               spec_error);
  EXPECT_THROW((void)scenario_spec::parse_text(
                   R"({"retire": {"reliable_region": 256},
                       "workload": {"name": "x"}})"),
               spec_error);
  EXPECT_THROW((void)scenario_spec::parse_text(
                   R"({"fault": {"age_hours": -1.0},
                       "workload": {"name": "x"}})"),
               spec_error);
}

TEST(LifecycleSpecTest, DegradePolicyNamesRoundTrip) {
  for (const degrade_policy policy :
       {degrade_policy::mark, degrade_policy::remap, degrade_policy::failstop}) {
    const auto parsed = parse_degrade_policy(to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_degrade_policy("panic").has_value());
}

// ------------------------------------------- lifecycle-quality workload

constexpr std::string_view kLifecycleSpec = R"json({
  "name": "life-smoke",
  "geometry": {"rows_per_tile": 64},
  "fault": {"polarity": "mixed"},
  "seeds": {"root": 13, "app": 7},
  "scrub": {"interval": 1},
  "retire": {"policy": "mark", "spare_rows": 8},
  "schemes": ["secded"],
  "workload": {"name": "lifecycle-quality", "epochs": 4, "arrivals": 6,
               "intermittent": 2, "initial_faults": 0, "trials": 2}
})json";

TEST(LifecycleWorkloadTest, OutputIsThreadCountInvariant) {
  scenario_spec one = scenario_spec::parse_text(kLifecycleSpec);
  scenario_spec four = scenario_spec::parse_text(kLifecycleSpec);
  one.run.threads = 1;
  four.run.threads = 4;
  std::ostringstream text_one;
  std::ostringstream text_four;
  const scenario_report a = scenario_runner(one).run(text_one);
  const scenario_report b = scenario_runner(four).run(text_four);
  EXPECT_EQ(text_one.str(), text_four.str());
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].output.json.dump(), b.points[i].output.json.dump());
  }
}

TEST(LifecycleWorkloadTest, QualityDegradesWithScrubInterval) {
  scenario_spec spec = scenario_spec::parse_text(R"json({
    "name": "interval-sweep",
    "geometry": {"rows_per_tile": 256},
    "fault": {"polarity": "mixed"},
    "seeds": {"root": 13, "app": 7},
    "scrub": {"interval": 1},
    "retire": {"policy": "mark", "spare_rows": 32},
    "schemes": ["secded"],
    "workload": {"name": "lifecycle-quality", "epochs": 8, "arrivals": 16,
                 "intermittent": 8, "initial_faults": 0, "trials": 2},
    "sweep": [{"param": "scrub.interval", "values": [1, 8]}]
  })json");
  spec.run.threads = 1;
  std::ostringstream text;
  const scenario_report report = scenario_runner(spec).run(text);
  ASSERT_EQ(report.points.size(), 2u);
  const auto word_errors = [](const scenario_report& r, std::size_t point) {
    return r.points[point]
        .output.json.find("schemes")
        ->as_array()[0]
        .find("word_errors")
        ->as_u64();
  };
  const auto ce_retired = [](const scenario_report& r, std::size_t point) {
    return r.points[point]
        .output.json.find("schemes")
        ->as_array()[0]
        .find("ce_retirements")
        ->as_u64();
  };
  // Scrubbing every epoch retires more correctable rows before they go
  // uncorrectable, so quality strictly improves over the lazy patrol.
  EXPECT_LT(word_errors(report, 0), word_errors(report, 1));
  EXPECT_GT(ce_retired(report, 0), ce_retired(report, 1));
}

}  // namespace
}  // namespace urmem
