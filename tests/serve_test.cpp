// Tests for the serving tier (src/serve): construction validation, the
// concurrent determinism contract (integer counters bit-identical at
// any client count and through the reference fault path), canonical-
// store idempotence, live epoch stepping with deferred retirement, and
// the closed-loop driver's accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/serve/memory_service.hpp"
#include "urmem/serve/service_driver.hpp"

namespace urmem {
namespace {

// Small but non-trivial: two tiles, live arrivals + intermittents,
// scrub every epoch, remap retirement with a tiny pool.
scenario_spec serve_spec_text() {
  return scenario_spec::parse_text(R"({
    "name": "serve-test",
    "geometry": {"rows_per_tile": 256},
    "fault": {"polarity": "flip"},
    "seeds": {"root": 21, "app": 7},
    "scrub": {"interval": 1},
    "retire": {"policy": "remap", "spare_rows": 2},
    "serve": {"clients": 2, "requests": 3000, "requests_per_epoch": 600,
              "initial_faults": 32, "arrivals_per_epoch": 6,
              "intermittent_cells": 4},
    "schemes": ["none", "pecc"]})");
}

TEST(MemoryService, RejectsNonDeterministicConfigurations) {
  // Transition faults latch write history: outcomes would depend on the
  // store interleaving, so the service refuses them up front.
  try {
    memory_service service(
        scenario_spec::parse_text(R"({"fault": {"polarity": "mixed"}})"));
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "fault.polarity");
  }
  // The fault population is drawn exactly from serve.initial_faults;
  // an operating point on the fault section has nothing to control.
  try {
    memory_service service(
        scenario_spec::parse_text(R"({"fault": {"pcell": 1e-3}})"));
    FAIL() << "expected spec_error";
  } catch (const spec_error& error) {
    EXPECT_EQ(error.field(), "fault");
  }
}

TEST(MemoryService, StoresAreCanonicalAndIdempotent) {
  memory_service service(serve_spec_text());
  ASSERT_EQ(service.tile_count(), 2u);
  const word_t before = service.canonical_word(17);
  service.store(17);
  service.store(17);
  service.readback(17);
  EXPECT_EQ(service.canonical_word(17), before);

  const service_snapshot snap = service.stats_snapshot();
  EXPECT_EQ(snap.stores, 2u);
  EXPECT_EQ(snap.readbacks, 1u);
  EXPECT_EQ(snap.requests, 3u);
  EXPECT_EQ(snap.snapshots, 1u);
  for (const auto& tile : snap.tiles) {
    EXPECT_EQ(tile.traffic.stores, 2u);
    EXPECT_EQ(tile.traffic.readbacks, 1u);
  }
}

TEST(MemoryService, EpochSteppingAgesTilesAndDefersRetirement) {
  memory_service service(serve_spec_text());
  EXPECT_EQ(service.epoch(), 0u);
  for (int i = 0; i < 4; ++i) service.step_epoch();
  service.drain();
  EXPECT_EQ(service.epoch(), 4u);

  const service_snapshot snap = service.stats_snapshot();
  EXPECT_EQ(snap.epoch_steps, 4u);
  for (const auto& tile : snap.tiles) {
    EXPECT_EQ(tile.life.epochs, 4u);
    EXPECT_EQ(tile.life.scrub_passes, 4u);  // interval 1
    EXPECT_EQ(tile.life.injected_faults, 4u * 6u);
    EXPECT_EQ(tile.life.rows_scrubbed, 4u * 256u);
  }
}

TEST(MemoryService, QualityQueryIsAPureFunctionOfTheEpoch) {
  memory_service service(serve_spec_text());
  service.quality_query();
  service.quality_query();
  const service_snapshot snap = service.stats_snapshot();
  for (const auto& tile : snap.tiles) {
    ASSERT_EQ(tile.traffic.quality_queries, 2u);
    // Same epoch, same fault map: both queries saw the same residual.
    EXPECT_EQ(tile.traffic.degraded_rows_seen % 2, 0u);
  }
}

TEST(ServiceDriver, CountersAreClientCountInvariant) {
  const scenario_spec spec = serve_spec_text();
  std::string baseline;
  for (const std::uint32_t clients : {1u, 2u, 5u}) {
    memory_service service(spec);
    driver_config config = driver_config_from(spec);
    config.clients = clients;
    const drive_report report = drive(service, config);
    const std::string dump = report.counters.to_json().dump();
    if (baseline.empty()) {
      baseline = dump;
    } else {
      EXPECT_EQ(dump, baseline) << "clients=" << clients;
    }
    EXPECT_EQ(report.executed, spec.serve.requests);
    EXPECT_EQ(report.latency.count(), report.executed);
    EXPECT_EQ(report.counters.requests, report.executed);
    // Boundaries strictly inside the budget: 3000/600 - 1 = 4 steps.
    EXPECT_EQ(report.counters.epoch_steps, 4u);
    EXPECT_GT(report.requests_per_second, 0.0);
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(ServiceDriver, ReferenceFaultPathIsBitIdentical) {
  const scenario_spec spec = serve_spec_text();
  driver_config config = driver_config_from(spec);
  config.clients = 3;

  memory_service fast(spec);
  const drive_report fast_report = drive(fast, config);

  memory_service oracle(spec);
  oracle.set_fault_path(fault_path::reference);
  const drive_report oracle_report = drive(oracle, config);

  EXPECT_EQ(fast_report.counters.to_json().dump(),
            oracle_report.counters.to_json().dump());
}

TEST(ServiceDriver, LifecycleRunsAndDecodersFireUnderTraffic) {
  // The scrubber must actually patrol during the run and the fault
  // population must be dense enough that decode outcomes beyond
  // "clean" show up — the serving tier is not a no-op shell around the
  // batch workloads.
  const scenario_spec spec = serve_spec_text();
  memory_service service(spec);
  const drive_report report = drive(service, driver_config_from(spec));

  std::uint64_t scrub_passes = 0;
  std::uint64_t decode_outcomes = 0;
  for (const auto& tile : report.counters.tiles) {
    scrub_passes += tile.life.scrub_passes;
    decode_outcomes +=
        tile.traffic.corrected_reads + tile.traffic.uncorrectable_reads +
        tile.traffic.word_errors;
    EXPECT_EQ(tile.traffic.clean_reads + tile.traffic.corrected_reads +
                  tile.traffic.uncorrectable_reads,
              tile.traffic.readbacks);
  }
  EXPECT_GT(scrub_passes, 0u);
  EXPECT_GT(decode_outcomes, 0u);
}

}  // namespace
}  // namespace urmem
