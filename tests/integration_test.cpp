// End-to-end integration tests: the full paper flow from supply voltage
// to application quality — cell model -> fault map -> BIST -> FM-LUT ->
// protected storage -> benchmark metric — plus the redefined yield
// criterion of Sec. 4.
#include <gtest/gtest.h>

#include <cmath>

#include "urmem/bist/bist_engine.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/scheme/protected_memory.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/memory_pipeline.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace urmem {
namespace {

TEST(IntegrationTest, VoltageToBistToShuffleFlow) {
  // 1. Scale the supply until the 2048x32 array has real failures.
  const auto model = cell_failure_model::default_28nm(2024);
  const array_geometry geometry{2048, 32};
  const double vdd = model.vdd_for_pcell(5e-4);
  const fault_map physical = model.faults_at_voltage(geometry, vdd);
  ASSERT_GT(physical.fault_count(), 5u);

  // 2. BIST discovers the faults and programs the FM-LUT.
  sram_array array(physical);
  shuffle_scheme scheme(2048, 32, 5);
  const bist_result bist = bist_engine().run_and_program(array, scheme);
  EXPECT_EQ(bist.faults.fault_count(), physical.fault_count());
  EXPECT_FALSE(bist.traditional_accept());  // zero-failure criterion fails

  // 3. The shuffled memory now bounds every single-fault row's error to
  // the LSB (nFM = 5).
  rng gen(1);
  for (const std::uint32_t row : physical.faulty_rows()) {
    if (physical.faults_in_row(row).size() != 1) continue;
    const word_t data = gen() & word_mask(32);
    array.write(row, scheme.apply_write(row, data));
    const word_t readback = scheme.restore_read(row, array.read(row));
    EXPECT_LE(std::abs(to_signed(readback, 32) - to_signed(data, 32)), 1);
  }
}

TEST(IntegrationTest, RelaxedYieldCriterionAcceptsWhatEccYieldRejects) {
  // Sec. 2/4: the traditional zero-failure criterion rejects virtually
  // every die at scaled voltage, while the MSE criterion with
  // bit-shuffling accepts almost all of them.
  const double pcell = 5e-6;
  const std::uint64_t cells = geometry_16kb_x32().cells();
  const double traditional = cell_failure_model::array_yield(cells, pcell);
  EXPECT_LT(traditional, 0.6);  // ~52% even at this mild Pcell

  mse_cdf_config config;
  config.total_runs = 100'000;
  config.n_max = 40;
  config.include_fault_free = true;
  const auto scheme = make_scheme_shuffle(4096, 32, 1);
  const empirical_cdf cdf = compute_mse_cdf(*scheme, 4096, pcell, config);
  // Quality-aware yield at the paper's MSE target of 1e6.
  EXPECT_GT(yield_at_mse(cdf, 1e6), 0.999);
}

TEST(IntegrationTest, SchemeOrderingOnRealApplication) {
  // Heavy fault pressure on the KNN app: quality(none) <= quality(pecc)
  // <= quality(shuffle nFM>=2), evaluated on identical fault streams.
  const auto app = make_knn_app(3);
  const double clean = app->evaluate(app->train_features());

  const auto run = [&](const scheme_factory& factory, std::uint64_t seed) {
    rng gen(seed);
    double total = 0.0;
    const int repeats = 6;
    for (int i = 0; i < repeats; ++i) {
      const matrix stored =
          store_and_readback(app->train_features(), storage_config{}, factory,
                             exact_fault_injector(220), gen);
      total += app->evaluate(stored);
    }
    return total / repeats / clean;
  };

  const double none = run([](std::uint32_t) { return make_scheme_none(); }, 11);
  const double pecc = run([](std::uint32_t) { return make_scheme_pecc(); }, 11);
  const double shuffled =
      run([](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 2); }, 11);

  EXPECT_LT(none, pecc);
  EXPECT_LT(pecc, shuffled + 0.01);
  EXPECT_GT(shuffled, 0.97);  // Fig. 7c: nFM=2 hugs the clean metric
}

TEST(IntegrationTest, EccDiscardConventionMatchesFig7) {
  // The paper discards samples with more than one error per word so
  // H(39,32) is exact. Verify: rows with <= 1 fault always decode
  // cleanly through the full pipeline.
  rng gen(9);
  protected_memory memory(1024, make_scheme_secded());
  fault_map faults(memory.storage_geometry());
  for (std::uint32_t r = 0; r < 1024; r += 2) {
    faults.add({r, static_cast<std::uint32_t>(gen.uniform_below(39)),
                fault_kind::flip});
  }
  memory.set_fault_map(std::move(faults));
  for (std::uint32_t r = 0; r < 1024; ++r) {
    const word_t data = gen() & word_mask(32);
    memory.write(r, data);
    EXPECT_EQ(memory.read(r).data, data);
  }
}

TEST(IntegrationTest, VoltageScalingEnergyQualityNarrative) {
  // The paper's motivation: scaling VDD raises Pcell by orders of
  // magnitude; bit-shuffling keeps the achievable MSE budget flat while
  // the unprotected memory deteriorates.
  const auto model = cell_failure_model::default_28nm();
  mse_cdf_config config;
  config.total_runs = 50'000;
  config.n_max = 60;
  const auto none = make_scheme_none();
  const auto shuffled = make_scheme_shuffle(4096, 32, 1);

  double prev_gap = 0.0;
  for (const double pcell : {1e-6, 1e-5, 5e-5}) {
    const double q_none =
        mse_for_yield(compute_mse_cdf(*none, 4096, pcell, config), 0.95);
    const double q_shuffle =
        mse_for_yield(compute_mse_cdf(*shuffled, 4096, pcell, config), 0.95);
    const double gap = q_none / q_shuffle;
    EXPECT_GT(gap, 30.0) << "pcell=" << pcell;
    EXPECT_GE(gap, prev_gap * 0.5);  // the advantage persists as VDD drops
    prev_gap = gap;
    (void)model;
  }
}

}  // namespace
}  // namespace urmem
