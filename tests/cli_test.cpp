// Tests for the shared tool command-line parser (common/cli.hpp): the
// one flag-parsing loop behind urmem-run, urmem-merge, urmem-verify and
// urmem-serve. Malformed input must fail with the tool name and usage
// on the error stream (tools map that to exit 2) without touching the
// output stream.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "urmem/common/cli.hpp"

namespace urmem {
namespace {

const cli_spec kSpec{.tool = "urmem-test",
                     .usage = "usage: urmem-test [flags]\n",
                     .flags = {{"--verbose"},
                               {"--out", true},
                               {"--shard", true}},
                     .accept_overrides = true,
                     .accept_positionals = true};

std::optional<cli_args> parse(const cli_spec& spec,
                              std::vector<const char*> args,
                              std::string* out_text = nullptr,
                              std::string* err_text = nullptr) {
  args.insert(args.begin(), "urmem-test");
  std::ostringstream out;
  std::ostringstream err;
  const auto parsed =
      parse_cli(spec, static_cast<int>(args.size()), args.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return parsed;
}

TEST(CliParser, FlagsValuesOverridesAndPositionals) {
  const auto parsed = parse(
      kSpec, {"spec.json", "--verbose", "--out=report.json", "fault.pcell=1e-3",
              "--shard", "1/3", "seed=7"});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->help);
  EXPECT_TRUE(parsed->has("--verbose"));
  EXPECT_EQ(parsed->value_or("--out"), "report.json");
  EXPECT_EQ(parsed->value_or("--shard"), "1/3");  // --flag value form
  ASSERT_EQ(parsed->positionals.size(), 1u);
  EXPECT_EQ(parsed->positionals[0], "spec.json");
  ASSERT_EQ(parsed->overrides.size(), 2u);
  EXPECT_EQ(parsed->overrides[0].first, "fault.pcell");
  EXPECT_EQ(parsed->overrides[0].second, "1e-3");
  EXPECT_EQ(parsed->overrides[1].first, "seed");
  EXPECT_EQ(parsed->overrides[1].second, "7");
}

TEST(CliParser, LastValueWinsAndFallback) {
  const auto parsed = parse(kSpec, {"--out=a.json", "--out=b.json"});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->value_or("--out"), "b.json");
  EXPECT_EQ(parsed->value_or("--shard", "0/1"), "0/1");
}

TEST(CliParser, NegativeNumericValuesPassThrough) {
  // A leading '-' (not "--") is never treated as a flag, so negative
  // numbers work both as separate-argument flag values and in
  // overrides.
  const auto parsed =
      parse(kSpec, {"--shard", "-3", "--out=-1e-6", "margin=-7"});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->value_or("--shard"), "-3");
  EXPECT_EQ(parsed->value_or("--out"), "-1e-6");
  ASSERT_EQ(parsed->overrides.size(), 1u);
  EXPECT_EQ(parsed->overrides[0].second, "-7");
}

TEST(CliParser, RepeatedFlagsLastWinsAcrossBothForms) {
  // Pinned behavior: repeating a value flag is not an error; the last
  // occurrence wins regardless of the "=value" / separate-argument
  // spelling, and repeating a boolean flag stays a single `seen` entry.
  const auto parsed = parse(
      kSpec, {"--out=a.json", "--out", "b.json", "--out=c.json", "--verbose",
              "--verbose"});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->value_or("--out"), "c.json");
  EXPECT_TRUE(parsed->has("--verbose"));

  const auto swapped = parse(kSpec, {"--out=c.json", "--out", "a.json"});
  ASSERT_TRUE(swapped.has_value());
  EXPECT_EQ(swapped->value_or("--out"), "a.json");
}

TEST(CliParser, EqualsWithEmptyValueIsAccepted) {
  // Pinned behavior: "--out=" is an explicit empty value (it counts as
  // seen and overrides value_or's fallback) — distinct from "--out"
  // with no value at all, which is an error.
  const auto parsed = parse(kSpec, {"--out="});
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->has("--out"));
  EXPECT_EQ(parsed->value_or("--out", "fallback"), "");
}

TEST(CliParser, HelpPrintsUsageToOut) {
  for (const char* flag : {"--help", "-h"}) {
    std::string out_text;
    std::string err_text;
    const auto parsed = parse(kSpec, {flag}, &out_text, &err_text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->help);
    EXPECT_EQ(out_text, std::string(kSpec.usage));
    EXPECT_TRUE(err_text.empty());
  }
}

TEST(CliParser, MalformedInputFailsWithUsageOnErr) {
  const std::vector<std::vector<const char*>> bad_lines = {
      {"--frobnicate"},        // unknown flag
      {"--out"},               // value flag without a value
      {"--verbose=loud"},      // value on a boolean flag
  };
  for (const auto& line : bad_lines) {
    std::string out_text;
    std::string err_text;
    const auto parsed = parse(kSpec, line, &out_text, &err_text);
    EXPECT_FALSE(parsed.has_value()) << line[0];
    EXPECT_TRUE(out_text.empty()) << line[0];
    EXPECT_NE(err_text.find("urmem-test:"), std::string::npos) << line[0];
    EXPECT_NE(err_text.find("usage: urmem-test"), std::string::npos) << line[0];
  }
}

TEST(CliParser, BareArgumentsRejectedWhenNotAccepted) {
  cli_spec strict = kSpec;
  strict.accept_overrides = false;
  strict.accept_positionals = false;
  std::string err_text;
  EXPECT_FALSE(parse(strict, {"spec.json"}, nullptr, &err_text).has_value());
  EXPECT_NE(err_text.find("unexpected argument"), std::string::npos);
  // Without overrides, key=value is just an (unexpected) positional.
  EXPECT_FALSE(parse(strict, {"seed=7"}).has_value());

  cli_spec positional_only = strict;
  positional_only.accept_positionals = true;
  const auto parsed = parse(positional_only, {"seed=7"});
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->positionals.size(), 1u);
  EXPECT_EQ(parsed->positionals[0], "seed=7");
}

}  // namespace
}  // namespace urmem
