// Parameterized end-to-end sweeps of the storage pipeline: every
// protection scheme x every fault polarity x several fault densities,
// checking the invariants that must survive the full
// quantize -> encode -> corrupt -> decode -> dequantize path.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "urmem/sim/applications.hpp"
#include "urmem/sim/memory_pipeline.hpp"
#include "urmem/sim/quantizer.hpp"

namespace urmem {
namespace {

enum class scheme_id { none, secded, pecc, nfm1, nfm3, nfm5 };

scheme_factory factory_of(scheme_id id) {
  switch (id) {
    case scheme_id::none: return [](std::uint32_t) { return make_scheme_none(); };
    case scheme_id::secded:
      return [](std::uint32_t) { return make_scheme_secded(); };
    case scheme_id::pecc: return [](std::uint32_t) { return make_scheme_pecc(); };
    case scheme_id::nfm1:
      return [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 1); };
    case scheme_id::nfm3:
      return [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 3); };
    case scheme_id::nfm5:
      return [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 5); };
  }
  return {};
}

std::string name_of(scheme_id id) {
  switch (id) {
    case scheme_id::none: return "none";
    case scheme_id::secded: return "secded";
    case scheme_id::pecc: return "pecc";
    case scheme_id::nfm1: return "nfm1";
    case scheme_id::nfm3: return "nfm3";
    case scheme_id::nfm5: return "nfm5";
  }
  return "?";
}

std::string name_of(fault_polarity polarity) {
  switch (polarity) {
    case fault_polarity::flip: return "flip";
    case fault_polarity::random_stuck: return "stuck";
    case fault_polarity::mixed: return "mixed";
  }
  return "?";
}

using sweep_param = std::tuple<scheme_id, fault_polarity, std::uint64_t>;

class PipelineSweep : public ::testing::TestWithParam<sweep_param> {};

/// Invariant: the pipeline never crashes, preserves the matrix shape,
/// and every restored value stays inside the codec's representable
/// range, for any scheme, polarity, and fault density.
TEST_P(PipelineSweep, RestoredValuesStayRepresentable) {
  const auto [id, polarity, faults] = GetParam();
  rng gen(11 + static_cast<std::uint64_t>(id) * 7 + faults);
  matrix m(96, 8);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = 3.0 * gen.normal();
  }
  storage_config config;
  config.rows_per_tile = 1024;
  pipeline_stats stats;
  const matrix back = store_and_readback(m, config, factory_of(id),
                                         exact_fault_injector(faults, polarity),
                                         gen, &stats);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  EXPECT_EQ(stats.injected_faults, faults);
  const fixed_point_codec codec(config.word_bits, config.frac_bits);
  for (const double v : back.data()) {
    EXPECT_GE(v, codec.min_value());
    EXPECT_LE(v, codec.max_value());
    EXPECT_TRUE(std::isfinite(v));
  }
}

/// Invariant: stuck-at and mixed populations can only be *milder* than
/// always-flip faults in aggregate (a stuck cell agreeing with the data
/// is invisible); compare mean absolute error under matched fault maps.
TEST_P(PipelineSweep, PolarityNeverWorseThanFlipOnAverage) {
  const auto [id, polarity, faults] = GetParam();
  if (polarity == fault_polarity::flip || faults == 0) GTEST_SKIP();
  matrix m(96, 8);
  rng data_gen(5);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = 3.0 * data_gen.normal();
  }
  storage_config config;
  config.rows_per_tile = 1024;

  const auto mean_abs_error = [&](fault_polarity p, std::uint64_t seed) {
    rng gen(seed);
    const matrix back = store_and_readback(m, config, factory_of(id),
                                           exact_fault_injector(faults, p), gen);
    double acc = 0.0;
    for (std::size_t i = 0; i < m.rows() * m.cols(); ++i) {
      acc += std::abs(back.data()[i] - m.data()[i]);
    }
    return acc / static_cast<double>(m.rows() * m.cols());
  };

  // Average both polarities over a few seeds (positions differ per
  // draw; the aggregate ordering is what the invariant promises).
  double flip_total = 0.0;
  double other_total = 0.0;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    flip_total += mean_abs_error(fault_polarity::flip, s);
    other_total += mean_abs_error(polarity, s);
  }
  EXPECT_LE(other_total, flip_total * 1.35 + 1e-9)
      << name_of(id) << "/" << name_of(polarity);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PipelineSweep,
    ::testing::Combine(::testing::Values(scheme_id::none, scheme_id::secded,
                                         scheme_id::pecc, scheme_id::nfm1,
                                         scheme_id::nfm3, scheme_id::nfm5),
                       ::testing::Values(fault_polarity::flip,
                                         fault_polarity::random_stuck,
                                         fault_polarity::mixed),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{16},
                                         std::uint64_t{128})),
    [](const ::testing::TestParamInfo<sweep_param>& info) {
      return name_of(std::get<0>(info.param)) + "_" +
             name_of(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace urmem
