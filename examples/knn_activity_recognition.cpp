// Domain scenario: wearable activity recognition on an unreliable
// memory (the paper's KNN benchmark, Table 1 / Fig. 7c, end to end).
//
// A low-power wearable stores its accelerometer training windows in an
// aggressively voltage-scaled SRAM. This example walks the full
// pipeline once per protection scheme at the Fig. 7 operating point
// (Pcell = 1e-3) and reports the classification score each one salvages.
#include <iostream>

#include "urmem/common/table.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/memory_pipeline.hpp"

int main() {
  using namespace urmem;
  const double pcell = 1e-3;
  const auto model = cell_failure_model::default_28nm();

  std::cout << "Activity recognition (KNN, k=5) with training windows stored "
               "in a 16KB-tiled unreliable SRAM.\n"
            << "Operating point: Pcell = 1e-3 (VDD ~ "
            << format_double(model.vdd_for_pcell(pcell), 3)
            << " V in the 28nm-class cell model).\n\n";

  const auto app = make_knn_app();
  const double clean = app->evaluate(app->train_features());
  std::cout << "Fault-free score on the held-out windows: "
            << format_double(clean, 4) << "\n\n";

  struct scheme_row {
    const char* name;
    scheme_factory factory;
  };
  const scheme_row schemes[] = {
      {"no-correction", [](std::uint32_t) { return make_scheme_none(); }},
      {"H(39,32) ECC", [](std::uint32_t) { return make_scheme_secded(); }},
      {"H(22,16) P-ECC", [](std::uint32_t) { return make_scheme_pecc(); }},
      {"nFM=1", [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 1); }},
      {"nFM=2", [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 2); }},
      {"nFM=5", [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 5); }},
  };

  console_table table({"scheme", "storage cols", "injected faults",
                       "uncorrectable words", "score", "normalized"});
  for (const auto& spec : schemes) {
    rng gen(7);  // identical fault stream for every scheme
    pipeline_stats stats;
    const matrix stored =
        store_and_readback(app->train_features(), storage_config{}, spec.factory,
                           binomial_fault_injector(pcell), gen, &stats);
    const double score = app->evaluate(stored);
    table.add_row({spec.name, std::to_string(spec.factory(4096)->storage_bits()),
                   std::to_string(stats.injected_faults),
                   std::to_string(stats.uncorrectable_words),
                   format_double(score, 4), format_double(score / clean, 4)});
  }
  table.print(std::cout);

  std::cout << "\nKNN degrades gracefully even unprotected (corrupted "
               "training windows become far-away outliers that rarely win a "
               "vote — compare Fig. 7c's narrow 0.88..1 axis), yet the "
               "shuffled memory pins the score to the fault-free value at a "
               "fraction of the ECC overhead (Fig. 6).\n";
  return 0;
}
