// Domain scenario: wearable activity recognition on an unreliable
// memory (the paper's KNN benchmark, Table 1 / Fig. 7c, end to end).
//
// A low-power wearable stores its accelerometer training windows in an
// aggressively voltage-scaled SRAM. This example walks the full
// pipeline once per protection scheme at the Fig. 7 operating point
// (Pcell = 1e-3) and reports the classification score each one salvages.
//
// Thin wrapper over the `ml-quality` scenario workload — equivalently:
//   urmem-run workload=ml-quality workload.app=knn pcell=1e-3 seed=7
//       schemes=none,secded,pecc,shuffle:nfm=1,shuffle:nfm=2,shuffle:nfm=5
#include <iostream>

#include "urmem/scenario/scenario_runner.hpp"

int main() {
  using namespace urmem;

  scenario_spec spec;
  spec.name = "knn-activity-recognition";
  spec.fault.pcell = 1e-3;  // the Fig. 7 operating point
  spec.seeds.root = 7;
  spec.schemes.push_back({"none", option_map("schemes[0]")});
  spec.schemes.push_back({"secded", option_map("schemes[1]")});
  spec.schemes.push_back({"pecc", option_map("schemes[2]")});
  unsigned index = 3;
  for (const unsigned n_fm : {1u, 2u, 5u}) {
    scheme_ref shuffle{"shuffle",
                       option_map("schemes[" + std::to_string(index++) + "]")};
    shuffle.options.set("nfm", std::to_string(n_fm));
    spec.schemes.push_back(std::move(shuffle));
  }
  spec.workload.name = "ml-quality";
  spec.workload.options = option_map("workload");
  spec.workload.options.set("app", "knn");

  const scenario_runner runner(spec);
  (void)runner.run(std::cout);

  std::cout << "\nKNN degrades gracefully even unprotected (corrupted "
               "training windows become far-away outliers that rarely win a "
               "vote — compare Fig. 7c's narrow 0.88..1 axis), yet the "
               "shuffled memory pins the score to the fault-free value at a "
               "fraction of the ECC overhead (Fig. 6).\n";
  return 0;
}
