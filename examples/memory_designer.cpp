// Design-space exploration: pick the cheapest protection scheme that
// meets a quality target — "controlling the granularity of the
// shuffling trades quality for power, area, and timing" (paper
// abstract), turned into a designer's decision procedure.
//
// Given: target yield, MSE budget (Eq. 6), operating Pcell.
// Output: the overhead-vs-quality frontier across all schemes, and the
// cheapest feasible choice per metric.
#include <iostream>
#include <memory>
#include <vector>

#include "urmem/common/table.hpp"
#include "urmem/hwmodel/overhead_model.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/yield/mse_distribution.hpp"

int main() {
  using namespace urmem;
  const double pcell = 1e-4;       // aggressive voltage scaling
  const double yield_target = 0.99;
  const double mse_budget = 1e4;   // application tolerates MSE < 1e4
  const std::uint32_t rows = 4096;

  const auto model = cell_failure_model::default_28nm();
  std::cout << "Design brief: 16KB data memory at Pcell = 1e-4 (VDD ~ "
            << format_double(model.vdd_for_pcell(pcell), 3) << " V), "
            << "MSE budget " << format_scientific(mse_budget, 1)
            << " at yield >= " << format_percent(yield_target, 0) << ".\n\n";

  mse_cdf_config config;
  config.total_runs = 400'000;
  config.n_max = 120;
  config.include_fault_free = true;

  const overhead_model hw(gate_library::fdsoi_28nm(),
                          sram_macro_model::fdsoi_28nm(),
                          array_geometry{rows, 32});
  const overhead_metrics ecc_cost = hw.secded(hamming_secded(32));

  struct candidate {
    std::string name;
    std::unique_ptr<protection_scheme> scheme;
    overhead_metrics cost;
  };
  std::vector<candidate> candidates;
  candidates.push_back({"no-correction", make_scheme_none(), overhead_metrics{}});
  for (unsigned n_fm = 1; n_fm <= 5; ++n_fm) {
    candidates.push_back({"nFM=" + std::to_string(n_fm),
                          make_scheme_shuffle(rows, 32, n_fm), hw.shuffle(n_fm)});
  }
  candidates.push_back({"H(22,16) P-ECC", make_scheme_pecc(),
                        hw.pecc(priority_ecc(32, 16))});
  candidates.push_back({"H(39,32) ECC", make_scheme_secded(), ecc_cost});

  console_table table({"scheme", "yield @ budget", "feasible",
                       "read power (rel ECC)", "area (rel ECC)"});
  const candidate* cheapest = nullptr;
  for (const candidate& c : candidates) {
    const empirical_cdf cdf = compute_mse_cdf(*c.scheme, rows, pcell, config);
    const double yield = yield_at_mse(cdf, mse_budget);
    const bool feasible = yield >= yield_target;
    const double rel_power =
        c.cost.read_energy_fj > 0 ? c.cost.read_energy_fj / ecc_cost.read_energy_fj
                                  : 0.0;
    const double rel_area =
        c.cost.area_um2 > 0 ? c.cost.area_um2 / ecc_cost.area_um2 : 0.0;
    table.add_row({c.name, format_percent(yield, 3), feasible ? "yes" : "no",
                   format_double(rel_power, 3), format_double(rel_area, 3)});
    if (feasible && (cheapest == nullptr ||
                     c.cost.read_energy_fj < cheapest->cost.read_energy_fj)) {
      cheapest = &c;
    }
  }
  table.print(std::cout);

  if (cheapest != nullptr) {
    std::cout << "\nRecommendation: " << cheapest->name
              << " — the cheapest feasible design point ("
              << format_percent(1.0 - cheapest->cost.read_energy_fj /
                                          ecc_cost.read_energy_fj,
                                1)
              << " read-power saving vs the SECDED ECC a conventional flow "
                 "would instantiate).\n";
  } else {
    std::cout << "\nNo scheme meets the brief — raise VDD or relax the "
                 "quality constraint.\n";
  }
  return 0;
}
