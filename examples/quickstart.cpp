// Quickstart: protect a faulty SRAM with the bit-shuffling scheme.
//
// Demonstrates the complete flow of the paper's Sec. 3 in ~40 lines:
//   1. a manufactured array has persistent faulty bit-cells;
//   2. BIST (March C-) locates them and programs the FM-LUT;
//   3. writes rotate the word so only low-significance bits are exposed;
//   4. reads rotate back — the residual error is bounded by 2^(S-1).
#include <iostream>

#include "urmem/bist/bist_engine.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/memory/sram_array.hpp"
#include "urmem/shuffle/shuffle_scheme.hpp"

int main() {
  using namespace urmem;

  // A 64-row, 32-bit memory with a few variation-induced failures.
  rng gen(2015);
  const array_geometry geometry{64, 32};
  const fault_map faults =
      sample_fault_map_exact(geometry, 6, gen, fault_polarity::random_stuck);
  sram_array array(faults);
  std::cout << "Manufactured array: " << faults.fault_count()
            << " faulty bit-cells.\n";

  // Power-on self test discovers the fault locations and programs the
  // 5-bit-per-row FM-LUT (single-bit shift granularity, Eq. 1: S = 1).
  shuffle_scheme scheme(geometry.rows, geometry.width, /*n_fm=*/5);
  const bist_result bist = bist_engine().run_and_program(array, scheme);
  std::cout << "BIST (" << bist_engine().algorithm().name << "): found "
            << bist.faults.fault_count() << " faults using " << bist.reads
            << " reads / " << bist.writes << " writes.\n\n";

  // Store a value in every faulty row, with and without the scheme.
  std::cout << "row | shift T | stored value | read w/o scheme | read w/ scheme\n";
  for (const std::uint32_t row : faults.faulty_rows()) {
    const word_t value = 1'000'000'000u + row;
    array.write(row, value);  // unprotected write
    const auto raw = static_cast<std::int64_t>(array.read(row));
    array.write(row, scheme.apply_write(row, value));  // shuffled write
    const std::int64_t shuffled =
        to_signed(scheme.restore_read(row, array.read(row)), 32);
    std::cout << row << " | " << scheme.shift_for_row(row) << " | " << value
              << " | " << raw << " (error " << raw - static_cast<std::int64_t>(value)
              << ") | " << shuffled << " (error "
              << shuffled - static_cast<std::int64_t>(value) << ")\n";
  }
  std::cout << "\nWith nFM=5 the worst-case error magnitude is 2^0 = 1 per "
               "word (paper Sec. 3),\nversus up to 2^31 for the unprotected "
               "array.\n";
  return 0;
}
