// Domain scenario: video frame buffer on an unreliable memory — the
// multimedia setting in which the P-ECC baseline was originally
// proposed (paper Sec. 2, refs. [4, 12]: "protecting only the 32 higher
// order bits … can limit the quality loss in terms of PSNR in an H.264
// video processing system, even under 30% voltage scaling").
//
// Thin wrapper over the `psnr-image` scenario workload — the same
// experiment is one command away:
//   urmem-run workload=psnr-image seed=33
//       schemes=none,pecc,shuffle:nfm=1,shuffle:nfm=3,shuffle:nfm=5
//
// A synthetic natural-image frame is stored through each protection
// scheme while the supply voltage scales; the table reports PSNR in dB
// (>= ~35 dB is visually transparent, <= ~25 dB clearly degraded).
#include <iostream>

#include "urmem/scenario/scenario_runner.hpp"

int main() {
  using namespace urmem;

  scenario_spec spec;
  spec.name = "image-storage-psnr";
  spec.seeds.root = 33;
  spec.schemes.push_back({"none", option_map("schemes[0]")});
  spec.schemes.push_back({"pecc", option_map("schemes[1]")});
  unsigned index = 2;
  for (const unsigned n_fm : {1u, 3u, 5u}) {
    scheme_ref shuffle{"shuffle",
                       option_map("schemes[" + std::to_string(index++) + "]")};
    shuffle.options.set("nfm", std::to_string(n_fm));
    spec.schemes.push_back(std::move(shuffle));
  }
  spec.workload.name = "psnr-image";
  spec.workload.options = option_map("workload");

  const scenario_runner runner(spec);
  (void)runner.run(std::cout);

  std::cout << "\nThe unprotected frame develops salt-and-pepper outliers "
               "(sign/MSB flips) that drive PSNR below 0 dB once Pcell "
               "passes ~1e-4;\nP-ECC holds visually-acceptable quality until "
               "double faults hit its codewords; the shuffling scheme with "
               "fine segments stays at or\nnear the quantization-limited "
               "PSNR throughout — significance-driven mitigation reaches "
               "multimedia-grade quality with no ECC decoder\non the read "
               "path, matching the H.264 story of ref. [12].\n";
  return 0;
}
