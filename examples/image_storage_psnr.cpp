// Domain scenario: video frame buffer on an unreliable memory — the
// multimedia setting in which the P-ECC baseline was originally
// proposed (paper Sec. 2, refs. [4, 12]: "protecting only the 32 higher
// order bits … can limit the quality loss in terms of PSNR in an H.264
// video processing system, even under 30% voltage scaling").
//
// A synthetic natural-image frame is stored through each protection
// scheme while the supply voltage scales; the table reports PSNR in dB
// (>= ~35 dB is visually transparent, <= ~25 dB clearly degraded).
#include <iostream>

#include "urmem/common/table.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/memory_pipeline.hpp"

int main() {
  using namespace urmem;
  const auto model = cell_failure_model::default_28nm();
  const auto app = make_image_app();
  const double clean_psnr = app->evaluate(
      matrix_quantizer().roundtrip(app->train_features()));

  std::cout << "Frame buffer: " << app->train_features().rows() << " x "
            << app->train_features().cols()
            << " image, Q15.16 words in 16KB tiles.\n"
            << "Quantization-only PSNR (fault-free): "
            << format_double(clean_psnr, 4) << " dB\n\n";

  struct spec {
    const char* name;
    scheme_factory factory;
  };
  const spec schemes[] = {
      {"no-correction", [](std::uint32_t) { return make_scheme_none(); }},
      {"H(22,16) P-ECC", [](std::uint32_t) { return make_scheme_pecc(); }},
      {"nFM=1", [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 1); }},
      {"nFM=3", [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 3); }},
      {"nFM=5", [](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 5); }},
  };

  console_table table({"VDD [V]", "Pcell", "PSNR none", "PSNR P-ECC",
                       "PSNR nFM=1", "PSNR nFM=3", "PSNR nFM=5"});
  for (const double vdd : {0.80, 0.73, 0.70, 0.66}) {
    const double pcell = model.pcell(vdd);
    std::vector<std::string> row{format_double(vdd, 3), format_scientific(pcell, 1)};
    for (const spec& s : schemes) {
      // Average PSNR over a few fault-map draws (identical per scheme).
      rng gen(33);
      double total = 0.0;
      const int repeats = 4;
      for (int i = 0; i < repeats; ++i) {
        const matrix stored =
            store_and_readback(app->train_features(), storage_config{}, s.factory,
                               binomial_fault_injector(pcell), gen);
        total += app->evaluate(stored);
      }
      row.push_back(format_double(total / repeats, 4) + " dB");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nThe unprotected frame develops salt-and-pepper outliers "
               "(sign/MSB flips) that drive PSNR below 0 dB once Pcell "
               "passes ~1e-4;\nP-ECC holds visually-acceptable quality until "
               "double faults hit its codewords; the shuffling scheme with "
               "fine segments stays at or\nnear the quantization-limited "
               "PSNR throughout — significance-driven mitigation reaches "
               "multimedia-grade quality with no ECC decoder\non the read "
               "path, matching the H.264 story of ref. [12].\n";
  return 0;
}
