// Voltage-scaling design-space exploration.
//
// The paper's motivation (Secs. 1-2): VDD scaling saves power but
// drives the cell failure probability up exponentially, collapsing the
// traditional zero-failure yield. This example sweeps the supply and
// shows, per voltage: Pcell, the zero-failure yield, and the
// quality-aware yield (Sec. 4, MSE criterion) achieved by the
// unprotected memory and by bit-shuffling — answering "how low can this
// chip go for a given MSE budget?".
#include <iostream>

#include "urmem/common/table.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/yield/mse_distribution.hpp"

int main() {
  using namespace urmem;
  const auto model = cell_failure_model::default_28nm();
  const std::uint32_t rows = 4096;
  const std::uint64_t cells = geometry_16kb_x32().cells();
  const double mse_budget = 1e6;  // the paper's Sec. 4 example target

  std::cout << "16KB memory, quality criterion: MSE < 1e6 (Eq. 6).\n"
            << "Yield columns include fault-free dies (Pr(N=0)).\n\n";

  mse_cdf_config config;
  config.total_runs = 300'000;
  config.n_max = 600;
  config.include_fault_free = true;

  console_table table({"VDD [V]", "Pcell", "zero-failure yield",
                       "yield none @ MSE<1e6", "yield nFM=1", "yield nFM=3"});
  const auto none = make_scheme_none();
  const auto nfm1 = make_scheme_shuffle(rows, 32, 1);
  const auto nfm3 = make_scheme_shuffle(rows, 32, 3);

  for (const double vdd : {0.95, 0.85, 0.80, 0.75, 0.70, 0.65}) {
    const double pcell = model.pcell(vdd);
    const double zero_failure = cell_failure_model::array_yield(cells, pcell);
    const auto yield_of = [&](const protection_scheme& scheme) {
      return yield_at_mse(compute_mse_cdf(scheme, rows, pcell, config), mse_budget);
    };
    table.add_row({format_double(vdd, 3), format_scientific(pcell, 2),
                   format_percent(zero_failure, 2), format_percent(yield_of(*none), 2),
                   format_percent(yield_of(*nfm1), 2),
                   format_percent(yield_of(*nfm3), 2)});
  }
  table.print(std::cout);

  std::cout << "\nReading the table: the zero-failure criterion abandons the "
               "die below ~0.85 V, while bit-shuffling\nkeeps the quality-aware "
               "yield essentially at 100% deep into the scaled-voltage regime "
               "— the paper's\ncentral argument for relaxing the test "
               "criterion (Sec. 4).\n";
  return 0;
}
