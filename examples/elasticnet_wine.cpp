// Domain scenario: wine-quality regression on an unreliable memory
// (the paper's Elasticnet benchmark, Table 1 / Fig. 7a) — the most
// fault-sensitive of the three applications, shown across a Pcell sweep.
//
// Regression coefficients react strongly to large feature outliers, so
// a single MSB flip in the stored training set can wreck R^2. This is
// exactly the failure mode the significance-driven shuffling removes.
#include <iostream>

#include "urmem/common/table.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/memory_pipeline.hpp"

int main() {
  using namespace urmem;

  const auto app = make_elasticnet_app();
  const double clean = app->evaluate(app->train_features());
  std::cout << "Elasticnet on wine-like physicochemical data ("
            << app->train_features().rows() << " train samples, "
            << app->train_features().cols() << " features).\n"
            << "Fault-free R^2 on the held-out 20%: " << format_double(clean, 4)
            << "\n\n";

  const auto average_r2 = [&](const scheme_factory& factory, double pcell) {
    double total = 0.0;
    const int repeats = 5;
    rng gen(42);
    for (int i = 0; i < repeats; ++i) {
      const matrix stored =
          store_and_readback(app->train_features(), storage_config{}, factory,
                             binomial_fault_injector(pcell), gen);
      total += app->evaluate(stored);
    }
    return total / repeats;
  };

  console_table table({"Pcell", "R^2 none", "R^2 P-ECC", "R^2 nFM=1",
                       "R^2 nFM=2"});
  for (const double pcell : {1e-5, 1e-4, 1e-3, 5e-3}) {
    table.add_row(
        {format_scientific(pcell, 1),
         format_double(average_r2([](std::uint32_t) { return make_scheme_none(); },
                                  pcell),
                       4),
         format_double(average_r2([](std::uint32_t) { return make_scheme_pecc(); },
                                  pcell),
                       4),
         format_double(average_r2(
                           [](std::uint32_t rows) {
                             return make_scheme_shuffle(rows, 32, 1);
                           },
                           pcell),
                       4),
         format_double(average_r2(
                           [](std::uint32_t rows) {
                             return make_scheme_shuffle(rows, 32, 2);
                           },
                           pcell),
                       4)});
  }
  table.print(std::cout);

  std::cout << "\nThe unprotected memory loses the regression entirely once a "
               "handful of sign bits flip (Fig. 7a:\n\"without any correction, "
               "the R^2 metric is extremely low for virtually all samples\"), "
               "while even the\nsingle-bit FM-LUT (nFM=1) keeps the model "
               "intact at a fraction of P-ECC's cost.\n";
  return 0;
}
