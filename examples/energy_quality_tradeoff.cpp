// The paper's bottom line, closed end to end: how much read energy does
// voltage scaling + bit-shuffling actually save, at what application
// quality?
//
// For each supply voltage: dynamic read energy scales as VDD^2; the
// mitigation hardware adds its (also scaled) overhead; the Elasticnet
// application reports the quality that survives. The sweet spot is the
// lowest VDD whose normalized quality stays above a target.
#include <iostream>

#include "urmem/common/table.hpp"
#include "urmem/hwmodel/system_energy.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/memory_pipeline.hpp"

int main() {
  using namespace urmem;
  const auto cell_model = cell_failure_model::default_28nm();
  const overhead_model hw(gate_library::fdsoi_28nm(), sram_macro_model::fdsoi_28nm(),
                          geometry_16kb_x32());
  const auto energy =
      system_energy_model::from_macro(sram_macro_model::fdsoi_28nm(), 32);

  const double ecc_fj = hw.secded(hamming_secded(32)).read_energy_fj;
  const double nfm2_fj = hw.shuffle(2).read_energy_fj;

  const auto app = make_elasticnet_app();
  const double clean = app->evaluate(app->train_features());

  const auto quality = [&](const scheme_factory& factory, double pcell) {
    rng gen(5);
    double total = 0.0;
    const int repeats = 4;
    for (int i = 0; i < repeats; ++i) {
      total += app->evaluate(store_and_readback(app->train_features(),
                                                storage_config{}, factory,
                                                binomial_fault_injector(pcell), gen));
    }
    return total / repeats / clean;
  };

  std::cout << "Elasticnet quality and net read-energy saving vs the nominal "
               "1.0 V unprotected array.\nScheme overheads at nominal: "
               "H(39,32) = " << format_double(ecc_fj, 4) << " fJ/read, nFM=2 = "
            << format_double(nfm2_fj, 4) << " fJ/read; array = "
            << format_double(energy.array_read_energy_fj(1.0), 4)
            << " fJ/read.\n\n";

  console_table table({"VDD [V]", "Pcell", "net saving w/ ECC",
                       "net saving w/ nFM=2", "quality w/ nFM=2 (norm. R^2)"});
  for (const double vdd : {1.00, 0.90, 0.80, 0.73, 0.70, 0.66, 0.62}) {
    const double pcell = cell_model.pcell(vdd);
    table.add_row(
        {format_double(vdd, 3), format_scientific(pcell, 1),
         format_percent(energy.net_saving(vdd, ecc_fj), 1),
         format_percent(energy.net_saving(vdd, nfm2_fj), 1),
         format_double(
             quality([](std::uint32_t rows) { return make_scheme_shuffle(rows, 32, 2); },
                     pcell),
             4)});
  }
  table.print(std::cout);

  std::cout << "\nReading the table: at ~0.66-0.70 V the bit-shuffled memory "
               "banks >50% of the nominal read energy while the application "
               "retains ~99%\nof its fault-free R^2 — and carries a smaller "
               "fixed overhead than ECC at every voltage. This is the "
               "paper's closing claim, quantified:\nthe scheme is 'a "
               "low-cost alternative … for allowing operation at scaled "
               "voltages and advanced technology nodes'.\n";
  return 0;
}
