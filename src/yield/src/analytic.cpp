#include "urmem/yield/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <unordered_map>

#include "urmem/common/binomial.hpp"
#include "urmem/common/contracts.hpp"

namespace urmem {

std::vector<std::pair<double, double>> single_fault_cost_distribution(
    const protection_scheme& scheme) {
  const unsigned columns = scheme.storage_bits();
  const double p = 1.0 / static_cast<double>(columns);
  std::map<double, double> merged;
  for (unsigned col = 0; col < columns; ++col) {
    const std::uint32_t cols[] = {col};
    merged[scheme.worst_case_row_cost(cols)] += p;
  }
  return {merged.begin(), merged.end()};
}

empirical_cdf analytic_single_fault_mse_cdf(const protection_scheme& scheme,
                                            std::uint32_t rows) {
  expects(rows >= 1, "need at least one row");
  std::vector<double> values;
  std::vector<double> weights;
  for (const auto& [cost, prob] : single_fault_cost_distribution(scheme)) {
    values.push_back(cost / static_cast<double>(rows));
    weights.push_back(prob);
  }
  return empirical_cdf(std::move(values), std::move(weights));
}

double expected_single_fault_cost(const protection_scheme& scheme) {
  double mean = 0.0;
  for (const auto& [cost, prob] : single_fault_cost_distribution(scheme)) {
    mean += cost * prob;
  }
  return mean;
}

namespace {

/// Geometric-grid accumulator: values within a relative `merge_rel` of
/// one another share a bucket, so an n-fold convolution cannot grow
/// combinatorially — sums dominated by the same leading terms collapse.
/// Bucket representatives are probability-weighted means.
class geometric_accumulator {
 public:
  explicit geometric_accumulator(double merge_rel)
      : scale_(1.0 / std::log1p(merge_rel)) {}

  void add(double value, double mass) {
    // Bucket 0 is reserved for exact zero; log-bucket otherwise.
    const std::int64_t key =
        value <= 0.0 ? std::numeric_limits<std::int64_t>::min()
                     : static_cast<std::int64_t>(std::floor(std::log(value) * scale_));
    bucket& b = buckets_[key];
    b.mass += mass;
    b.weighted_value += mass * value;
  }

  [[nodiscard]] discrete_distribution finish() const {
    std::map<double, double> ordered;
    for (const auto& [key, b] : buckets_) {
      const double value = b.mass > 0.0 ? b.weighted_value / b.mass : 0.0;
      ordered[value] += b.mass;
    }
    discrete_distribution out(ordered.begin(), ordered.end());
    double total = 0.0;
    for (const auto& [value, prob] : out) total += prob;
    ensures(total > 0.0, "accumulator holds no mass");
    for (auto& [value, prob] : out) prob /= total;
    return out;
  }

 private:
  struct bucket {
    double mass = 0.0;
    double weighted_value = 0.0;
  };
  double scale_;
  std::unordered_map<std::int64_t, bucket> buckets_;
};

}  // namespace

discrete_distribution convolve(const discrete_distribution& x,
                               const discrete_distribution& y, double prune) {
  // Relative merge width: coarse enough to keep the support compact
  // (the bucket count scales combinatorially with the width), fine
  // enough that CDF quantiles on the log-decade MSE axis are unaffected.
  constexpr double merge_rel = 1e-3;
  geometric_accumulator acc(merge_rel);
  for (const auto& [vx, px] : x) {
    for (const auto& [vy, py] : y) {
      const double mass = px * py;
      if (mass < prune) continue;
      acc.add(vx + vy, mass);
    }
  }
  return acc.finish();
}

empirical_cdf analytic_mse_cdf(const protection_scheme& scheme, std::uint32_t rows,
                               double pcell, const analytic_cdf_config& config) {
  expects(rows >= 1, "need at least one row");
  expects(config.n_min >= 1 && config.n_min <= config.n_max, "bad stratum range");
  const array_geometry geometry{rows, scheme.storage_bits()};
  const binomial_distribution count_dist(geometry.cells(), pcell);

  const discrete_distribution single = single_fault_cost_distribution(scheme);

  // Mixture weights over the considered strata; strata beyond the point
  // where the remaining binomial mass is negligible are skipped, which
  // also caps the number of convolutions.
  std::vector<double> weights;
  double weight_total = 0.0;
  std::uint64_t n_stop = config.n_max;
  for (std::uint64_t n = config.n_min; n <= config.n_max; ++n) {
    const double pn = count_dist.pmf(n);
    weights.push_back(pn);
    weight_total += pn;
    if (pn > 0.0 && count_dist.cdf(n) > 1.0 - 1e-10) {
      n_stop = n;
      break;
    }
  }
  const double zero_mass = config.include_fault_free ? count_dist.pmf(0) : 0.0;
  weight_total += zero_mass;
  expects(weight_total > 0.0, "no probability mass in the stratum range");

  std::map<double, double> mixture;
  if (config.include_fault_free) mixture[0.0] += zero_mass / weight_total;

  discrete_distribution n_fold{{0.0, 1.0}};  // zero-fold convolution
  for (std::uint64_t k = 1; k < config.n_min; ++k) {
    n_fold = convolve(n_fold, single, config.prune);
  }
  for (std::uint64_t n = config.n_min; n <= n_stop; ++n) {
    n_fold = convolve(n_fold, single, config.prune);
    const double wn = weights[n - config.n_min] / weight_total;
    if (wn <= 0.0) continue;
    for (const auto& [cost, prob] : n_fold) {
      mixture[cost / static_cast<double>(rows)] += wn * prob;
    }
  }

  std::vector<double> values;
  std::vector<double> probs;
  values.reserve(mixture.size());
  probs.reserve(mixture.size());
  for (const auto& [value, prob] : mixture) {
    values.push_back(value);
    probs.push_back(prob);
  }
  return empirical_cdf(std::move(values), std::move(probs));
}

}  // namespace urmem
