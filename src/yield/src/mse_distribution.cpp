#include "urmem/yield/mse_distribution.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "urmem/common/binomial.hpp"
#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

/// Draws `n` distinct cells of `geometry` and evaluates Eq. (6) through
/// the scheme, reusing scratch buffers across calls.
class mse_sampler {
 public:
  mse_sampler(const protection_scheme& scheme, array_geometry geometry)
      : scheme_(scheme), geometry_(geometry) {}

  double operator()(std::uint64_t n, rng& gen) {
    cells_.clear();
    chosen_.clear();
    const std::uint64_t total = geometry_.cells();
    // Robert Floyd's distinct sampling.
    for (std::uint64_t j = total - n; j < total; ++j) {
      const std::uint64_t t = gen.uniform_below(j + 1);
      const std::uint64_t pick = chosen_.contains(t) ? j : t;
      chosen_.insert(pick);
      cells_.push_back(pick);
    }
    std::sort(cells_.begin(), cells_.end());

    double total_cost = 0.0;
    std::size_t i = 0;
    while (i < cells_.size()) {
      const std::uint64_t row = cells_[i] / geometry_.width;
      cols_.clear();
      while (i < cells_.size() && cells_[i] / geometry_.width == row) {
        cols_.push_back(static_cast<std::uint32_t>(cells_[i] % geometry_.width));
        ++i;
      }
      total_cost += scheme_.worst_case_row_cost(cols_);
    }
    return total_cost / static_cast<double>(geometry_.rows);
  }

 private:
  const protection_scheme& scheme_;
  array_geometry geometry_;
  std::vector<std::uint64_t> cells_;
  std::vector<std::uint32_t> cols_;
  std::unordered_set<std::uint64_t> chosen_;
};

}  // namespace

empirical_cdf compute_mse_cdf(const protection_scheme& scheme, std::uint32_t rows,
                              double pcell, const mse_cdf_config& config) {
  expects(rows >= 1, "memory needs at least one row");
  expects(pcell > 0.0 && pcell < 1.0, "pcell must be in (0,1)");
  expects(config.n_min >= 1 && config.n_min <= config.n_max, "bad stratum range");
  expects(config.total_runs >= 1, "total_runs must be positive");

  const array_geometry geometry{rows, scheme.storage_bits()};
  const binomial_distribution dist(geometry.cells(), pcell);
  mse_sampler sampler(scheme, geometry);
  rng gen(config.seed);

  std::vector<double> values;
  std::vector<double> weights;
  if (config.include_fault_free) {
    values.push_back(0.0);
    weights.push_back(dist.pmf(0));
  }
  for (std::uint64_t n = config.n_min; n <= config.n_max; ++n) {
    const double pn = dist.pmf(n);
    const auto count = static_cast<std::uint64_t>(
        std::llround(pn * static_cast<double>(config.total_runs)));
    if (count == 0) continue;  // paper: samples per count = Pr(N=n) * Trun
    const double weight_each = pn / static_cast<double>(count);
    for (std::uint64_t s = 0; s < count; ++s) {
      values.push_back(sampler(n, gen));
      weights.push_back(weight_each);
    }
  }
  ensures(!values.empty(),
          "no stratum received samples; increase total_runs or the n range");
  return empirical_cdf(std::move(values), std::move(weights));
}

double yield_at_mse(const empirical_cdf& cdf, double mse_target) {
  return cdf.at(mse_target);
}

double mse_for_yield(const empirical_cdf& cdf, double yield_target) {
  return cdf.quantile(yield_target);
}

double analytic_mse(const protection_scheme& scheme, const fault_map& faults) {
  double total = 0.0;
  std::vector<std::uint32_t> cols;
  for (const std::uint32_t row : faults.faulty_rows()) {
    cols.clear();
    for (const fault& f : faults.faults_in_row(row)) cols.push_back(f.col);
    total += scheme.worst_case_row_cost(cols);
  }
  return total / static_cast<double>(faults.geometry().rows);
}

}  // namespace urmem
