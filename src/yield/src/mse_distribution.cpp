#include "urmem/yield/mse_distribution.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "urmem/common/binomial.hpp"
#include "urmem/common/contracts.hpp"

namespace urmem {

std::vector<mse_stratum> mse_strata(const array_geometry& geometry,
                                    double pcell,
                                    const mse_cdf_config& config) {
  expects(pcell > 0.0 && pcell < 1.0, "pcell must be in (0,1)");
  expects(config.n_min >= 1 && config.n_min <= config.n_max, "bad stratum range");
  expects(config.total_runs >= 1, "total_runs must be positive");

  const binomial_distribution dist(geometry.cells(), pcell);
  std::vector<mse_stratum> strata;
  for (std::uint64_t n = config.n_min; n <= config.n_max; ++n) {
    const double pn = dist.pmf(n);
    const auto count = static_cast<std::uint64_t>(
        std::llround(pn * static_cast<double>(config.total_runs)));
    if (count == 0) continue;  // paper: samples per count = Pr(N=n) * Trun
    strata.push_back({n, count, pn / static_cast<double>(count)});
  }
  return strata;
}

double sample_mse(const protection_scheme& scheme,
                  const array_geometry& geometry, std::uint64_t n, rng& gen) {
  // Scratch is thread-local so concurrent campaign trials do not share
  // state (each trial brings its own rng).
  thread_local std::vector<std::uint64_t> cells;
  thread_local std::vector<std::uint32_t> cols;
  thread_local std::unordered_set<std::uint64_t> chosen;
  cells.clear();
  chosen.clear();
  const std::uint64_t total = geometry.cells();
  // Robert Floyd's distinct sampling.
  for (std::uint64_t j = total - n; j < total; ++j) {
    const std::uint64_t t = gen.uniform_below(j + 1);
    const std::uint64_t pick = chosen.contains(t) ? j : t;
    chosen.insert(pick);
    cells.push_back(pick);
  }
  std::sort(cells.begin(), cells.end());

  double total_cost = 0.0;
  std::size_t i = 0;
  while (i < cells.size()) {
    const std::uint64_t row = cells[i] / geometry.width;
    cols.clear();
    while (i < cells.size() && cells[i] / geometry.width == row) {
      cols.push_back(static_cast<std::uint32_t>(cells[i] % geometry.width));
      ++i;
    }
    total_cost += scheme.worst_case_row_cost_at(static_cast<std::uint32_t>(row),
                                                cols);
  }
  return total_cost / static_cast<double>(geometry.rows);
}

empirical_cdf compute_mse_cdf(const protection_scheme& scheme, std::uint32_t rows,
                              double pcell, const mse_cdf_config& config) {
  expects(rows >= 1, "memory needs at least one row");

  const array_geometry geometry{rows, scheme.storage_bits()};
  const std::vector<mse_stratum> strata = mse_strata(geometry, pcell, config);
  rng gen(config.seed);

  std::vector<double> values;
  std::vector<double> weights;
  if (config.include_fault_free) {
    const binomial_distribution dist(geometry.cells(), pcell);
    values.push_back(0.0);
    weights.push_back(dist.pmf(0));
  }
  for (const mse_stratum& stratum : strata) {
    for (std::uint64_t s = 0; s < stratum.count; ++s) {
      values.push_back(sample_mse(scheme, geometry, stratum.n, gen));
      weights.push_back(stratum.weight_each);
    }
  }
  ensures(!values.empty(),
          "no stratum received samples; increase total_runs or the n range");
  return empirical_cdf(std::move(values), std::move(weights));
}

double yield_at_mse(const empirical_cdf& cdf, double mse_target) {
  return cdf.at(mse_target);
}

double mse_for_yield(const empirical_cdf& cdf, double yield_target) {
  return cdf.quantile(yield_target);
}

double analytic_mse(const protection_scheme& scheme, const fault_map& faults) {
  double total = 0.0;
  std::vector<std::uint32_t> cols;
  for (const std::uint32_t row : faults.faulty_rows()) {
    cols.clear();
    for (const fault& f : faults.faults_in_row(row)) cols.push_back(f.col);
    total += scheme.worst_case_row_cost_at(row, cols);
  }
  return total / static_cast<double>(faults.geometry().rows);
}

}  // namespace urmem
