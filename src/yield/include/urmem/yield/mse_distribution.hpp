// Quality-aware yield criterion (paper Sec. 4, Fig. 5).
//
// The paper replaces the traditional zero-failure yield by a cost
// function over the application-level error magnitude:
//
//   Pr(N = n, Q = q) = Pr(Q = q | N = n) * Pr(N = n)          (Eq. 3)
//   Pr(N = n)        = C(M, n) Pcell^n (1 - Pcell)^(M-n)      (Eq. 4)
//   Pr(Q = q)        = sum_{i=1..n} Pr(N = i, Q = q)          (Eq. 5)
//
// with the local quality metric
//
//   MSE = (1/R) * sum_i (2^{b_i})^2,  0 <= b_i < W            (Eq. 6)
//
// where b_i is the logical significance of the i-th failure after the
// protection scheme has done its work.
//
// compute_mse_cdf realizes Eq. (5) as a stratified Monte-Carlo sweep:
// for every failure count n it draws Pr(N = n) * total_runs random fault
// maps (the paper's Fig. 5 uses total_runs = 1e7 and n = 1..150),
// evaluates Eq. (6) through the scheme's worst_case_row_cost, and
// weights each stratum by its binomial probability. The resulting
// weighted CDF *is* the yield as a function of the tolerated MSE.
#pragma once

#include <cstdint>

#include "urmem/common/rng.hpp"
#include "urmem/common/stats.hpp"
#include "urmem/scheme/protection_scheme.hpp"

namespace urmem {

/// Parameters of the Fig. 5 experiment.
struct mse_cdf_config {
  std::uint64_t total_runs = 10'000'000;  ///< Trun of the paper
  std::uint64_t n_min = 1;                ///< smallest failure count stratum
  std::uint64_t n_max = 150;              ///< largest failure count stratum
  bool include_fault_free = false;        ///< add the Pr(N=0) mass at MSE 0
                                          ///< (Eq. 5 sums from i = 1)
  std::uint64_t seed = 42;
};

/// One stratum of the stratified sweep: `count` random fault maps at
/// failure count `n`, each carrying probability weight `weight_each`.
struct mse_stratum {
  std::uint64_t n = 0;
  std::uint64_t count = 0;
  double weight_each = 0.0;
};

/// Per-stratum sample allocation Pr(N = n) * total_runs of the Fig. 5
/// sweep over `geometry`; strata whose allocation rounds to zero are
/// omitted (the paper's "samples per count = Pr(N = n) * Trun").
[[nodiscard]] std::vector<mse_stratum> mse_strata(
    const array_geometry& geometry, double pcell, const mse_cdf_config& config);

/// Draws one exactly-`n`-fault map over `geometry` and evaluates Eq. (6)
/// through the scheme — the per-trial kernel of compute_mse_cdf. Scratch
/// buffers are thread-local, so concurrent calls (one rng per caller)
/// are safe: this is the trial body the parallel campaign engine runs.
[[nodiscard]] double sample_mse(const protection_scheme& scheme,
                                const array_geometry& geometry,
                                std::uint64_t n, rng& gen);

/// Stratified Monte-Carlo CDF of the analytic MSE of `scheme` on a
/// memory with `rows` words and cell failure probability `pcell`.
/// Fault positions are uniform over the scheme's storage columns.
[[nodiscard]] empirical_cdf compute_mse_cdf(const protection_scheme& scheme,
                                            std::uint32_t rows, double pcell,
                                            const mse_cdf_config& config);

/// Yield achieved when memories with MSE <= `mse_target` qualify —
/// the redefined test criterion of Sec. 4.
[[nodiscard]] double yield_at_mse(const empirical_cdf& cdf, double mse_target);

/// Smallest MSE budget that must be tolerated to reach `yield_target`.
[[nodiscard]] double mse_for_yield(const empirical_cdf& cdf, double yield_target);

/// Analytic MSE (Eq. 6) of one concrete fault map under `scheme`.
[[nodiscard]] double analytic_mse(const protection_scheme& scheme,
                                  const fault_map& faults);

}  // namespace urmem
