// Closed-form single-fault quality distributions.
//
// For exactly one fault at a uniform storage column, the Eq. (6) row
// cost takes one of storage_bits() values with probability
// 1/storage_bits each — no Monte Carlo needed. These exact
// distributions serve two purposes: they cross-validate the stratified
// sampler of mse_distribution.hpp (the n = 1 stratum must agree), and
// they make the scheme's error profile inspectable (which columns cost
// what).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "urmem/common/stats.hpp"
#include "urmem/scheme/protection_scheme.hpp"

namespace urmem {

/// Exact distribution of the row cost of one uniform fault: sorted
/// (cost, probability) pairs with duplicate costs merged.
[[nodiscard]] std::vector<std::pair<double, double>> single_fault_cost_distribution(
    const protection_scheme& scheme);

/// Exact CDF of the array MSE (Eq. 6) conditioned on exactly one fault:
/// MSE = cost / rows.
[[nodiscard]] empirical_cdf analytic_single_fault_mse_cdf(
    const protection_scheme& scheme, std::uint32_t rows);

/// Expected row cost of one uniform fault (the mean of the distribution
/// above) — the per-fault "price" of a scheme.
[[nodiscard]] double expected_single_fault_cost(const protection_scheme& scheme);

/// Sorted discrete probability distribution: (value, probability) pairs.
using discrete_distribution = std::vector<std::pair<double, double>>;

/// Distribution of X + Y for independent X, Y. Values are accumulated
/// on a geometric grid (relative width 1e-6, bucket representative =
/// probability-weighted mean), which keeps repeated convolutions from
/// growing combinatorially; point masses below `prune` are dropped and
/// the kept mass renormalized.
[[nodiscard]] discrete_distribution convolve(const discrete_distribution& x,
                                             const discrete_distribution& y,
                                             double prune = 1e-15);

/// Closed-form Fig. 5 CDF: the binomial mixture over failure counts of
/// n-fold convolutions of the single-fault cost distribution,
///
///   Pr(MSE <= q) = sum_n Pr(N = n | n_min <= N <= n_max)
///                  * Pr(C_1 + ... + C_n <= q * rows)
///
/// exact under the independent-fault approximation (faults land in
/// distinct rows — the same regime where Eq. 5's per-count sampling is
/// meaningful; at Pcell = 5e-6 the same-row collision probability is
/// < 1% for every stratum that carries mass). Replaces the 1e7-run
/// Monte Carlo with milliseconds of arithmetic.
struct analytic_cdf_config {
  std::uint64_t n_min = 1;
  std::uint64_t n_max = 40;          ///< strata beyond carry ~0 mass at Fig. 5's Pcell
  bool include_fault_free = false;   ///< add the Pr(N=0) mass at MSE 0
  double prune = 1e-15;              ///< per-point mass pruning in convolutions
};
[[nodiscard]] empirical_cdf analytic_mse_cdf(const protection_scheme& scheme,
                                             std::uint32_t rows, double pcell,
                                             const analytic_cdf_config& config = {});

}  // namespace urmem
