// Structural netlist cost estimates for the hardware blocks each scheme
// adds to the memory: SECDED encoders/decoders (exact gate counts from
// the H-matrix), the barrel rotator of the bit-shuffling scheme, and
// generic gate trees.
#pragma once

#include "urmem/ecc/hamming_secded.hpp"
#include "urmem/hwmodel/gate_library.hpp"

namespace urmem {

/// Aggregated cost of a combinational block.
struct logic_cost {
  double area_um2 = 0.0;
  double energy_fj = 0.0;       ///< per evaluation, activity already applied
  double delay_ps = 0.0;        ///< critical path, routing included
  double logic_delay_ps = 0.0;  ///< critical path, gates only (the unit of
                                ///< the 13-gate-delay figure of ref. [17])
  double gate_count = 0.0;

  /// Blocks evaluated one after the other on the same path.
  [[nodiscard]] logic_cost then(const logic_cost& next) const;

  /// Blocks evaluated side by side (delay = max).
  [[nodiscard]] logic_cost beside(const logic_cost& other) const;
};

/// Builds priced netlists from a gate library.
class hw_blocks {
 public:
  explicit hw_blocks(gate_library lib) : lib_(lib) {}

  [[nodiscard]] const gate_library& library() const { return lib_; }

  /// Balanced XOR tree over `fan_in` inputs spread across `span_cols`
  /// storage columns (span drives the routing term).
  [[nodiscard]] logic_cost xor_tree(unsigned fan_in, unsigned span_cols) const;

  /// Balanced AND tree over `fan_in` inputs (local routing).
  [[nodiscard]] logic_cost and_tree(unsigned fan_in) const;

  /// SECDED encoder: one parity tree per check bit, fan-ins taken from
  /// the code's cover masks, plus the overall-parity tree.
  [[nodiscard]] logic_cost secded_encoder(const hamming_secded& code) const;

  /// SECDED decoder: syndrome trees, overall-parity tree, the
  /// syndrome-to-position locator (one AND tree per codeword column),
  /// correction XORs on the data columns, and status logic. The critical
  /// path — syndrome, locate, correct — lands at ~13 FO4 gate delays for
  /// H(39,32), matching ref. [17].
  [[nodiscard]] logic_cost secded_decoder(const hamming_secded& code) const;

  /// One direction of the bit-shuffling barrel rotator: `stages` mux
  /// stages of `width` MUX2 cells; stage k routes a shift of
  /// segment_size * 2^k columns.
  [[nodiscard]] logic_cost barrel_rotator(unsigned width, unsigned stages) const;

 private:
  [[nodiscard]] logic_cost gates(const gate_cost& g, double count, double levels,
                                 double route_cols = 0.0) const;

  gate_library lib_;
};

}  // namespace urmem
