// 28 nm-class standard-cell and SRAM macro cost constants.
//
// The paper implements every scheme in a 28 nm FD-SOI flow (Synopsys DC
// synthesis + Cadence SoC Encounter P&R + VCD-based power). We replace
// that flow with a structural cost model: logic blocks are priced from
// exact gate counts (derived from the real H-matrices and rotator
// structure) using the per-gate constants below, and storage columns are
// priced with an SRAM macro model. Fig. 6 reports overheads *relative*
// to the H(39,32) baseline, which this model preserves; absolute
// µW/ps/µm² values are order-of-magnitude only (see DESIGN.md §4).
#pragma once

namespace urmem {

/// Cost of one standard cell (2-input unless noted).
struct gate_cost {
  double area_um2 = 0.0;
  double delay_ps = 0.0;   ///< typical loaded propagation delay
  double energy_fj = 0.0;  ///< dynamic energy per output transition
};

/// Minimal combinational cell set used by the codec/rotator netlists.
struct gate_library {
  gate_cost inv;
  gate_cost nand2;
  gate_cost and2;
  gate_cost or2;
  gate_cost xor2;
  gate_cost mux2;

  /// Average switching activity applied to block energy estimates.
  double activity = 0.5;

  /// FO4-equivalent delay used to express critical paths in "gate
  /// delays" (the unit ref. [17] uses for the 13-gate-delay SECDED
  /// decode figure).
  double fo4_ps = 17.0;

  /// Wire/broadcast delay per storage column spanned by a signal —
  /// a first-order stand-in for post-P&R routing.
  double route_ps_per_col = 4.0;

  /// 28 nm-class calibration.
  [[nodiscard]] static gate_library fdsoi_28nm();
};

/// SRAM macro pricing for added storage columns.
struct sram_macro_model {
  double cell_area_um2 = 0.120;       ///< 28 nm high-density 6T bit-cell
  double array_efficiency = 0.70;     ///< cell area / macro area ratio
  double col_read_energy_fj = 15.0;   ///< bitline + sense energy per column read
  double lut_col_read_energy_fj = 30.0;  ///< FM-LUT column read (separate small
                                         ///< macro, decoder amortized over few
                                         ///< columns; accessed on reads *and*
                                         ///< writes)
  double lut_read_slack_ps = 20.0;    ///< LUT-vs-data-array arrival margin on
                                      ///< the read path
  double read_access_ps = 480.0;      ///< base array read access (reference)
  double col_write_energy_fj = 18.0;  ///< full bitline swing per column write
  double lut_serial_read_ps = 240.0;  ///< standalone LUT-column access when it
                                      ///< gates a write (half the full-array
                                      ///< access: short local bitlines)
  double rf_serial_read_ps = 60.0;    ///< register-file LUT access (latches,
                                      ///< no sense cycle)

  /// Macro area of one storage column of `rows` cells.
  [[nodiscard]] double column_area_um2(unsigned rows) const {
    return static_cast<double>(rows) * cell_area_um2 / array_efficiency;
  }

  /// 28 nm-class calibration.
  [[nodiscard]] static sram_macro_model fdsoi_28nm();
};

}  // namespace urmem
