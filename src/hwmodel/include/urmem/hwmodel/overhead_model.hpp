// Read power / read delay / area overhead of each protection scheme,
// relative to the H(39,32) SECDED baseline — the paper's Fig. 6.
//
// Accounting follows Sec. 5.1 of the paper:
//  * only the readout path is costed for power and delay (writes are
//    infrequent and off the critical path for the studied applications);
//  * area counts everything a scheme adds: encoder + decoder and parity
//    columns for ECC/P-ECC; both rotator directions and the FM-LUT
//    columns for bit-shuffling ("LUTs are implemented as entire bit
//    columns in the array");
//  * storage columns are priced with the SRAM macro model.
#pragma once

#include "urmem/ecc/hamming_secded.hpp"
#include "urmem/ecc/priority_ecc.hpp"
#include "urmem/hwmodel/blocks.hpp"
#include "urmem/memory/fault_map.hpp"

namespace urmem {

/// Absolute overhead a scheme adds on top of the unprotected array.
struct overhead_metrics {
  double read_energy_fj = 0.0;  ///< extra energy per read access
  double read_delay_ps = 0.0;   ///< extra latency on the read path
  double area_um2 = 0.0;        ///< total added silicon
};

/// Write-path overhead (not part of Fig. 6, which costs reads only, but
/// quantified here because Sec. 5.1 calls out the bit-shuffling write
/// penalty: the FM-LUT must be read *before* the rotated data can be
/// written — a serial dependency the ECC encoder does not have).
struct write_overhead_metrics {
  double write_energy_fj = 0.0;
  double write_delay_ps = 0.0;
};

/// Overheads normalized to a baseline (baseline == 1.0).
struct relative_overhead {
  double read_power = 0.0;
  double read_delay = 0.0;
  double area = 0.0;
};

/// How the FM-LUT is realized — Sec. 5.1 notes the straightforward
/// bit-column realization and the cheaper CAM/register-file option.
enum class lut_realization : std::uint8_t {
  sram_columns,   ///< nFM extra columns in the array (paper default)
  register_file,  ///< separate latch-based file: denser access, more area
};

/// Fig. 6 cost model for one memory geometry.
class overhead_model {
 public:
  overhead_model(gate_library lib, sram_macro_model sram, array_geometry data_geometry);

  [[nodiscard]] const hw_blocks& blocks() const { return blocks_; }
  [[nodiscard]] const sram_macro_model& sram() const { return sram_; }

  /// Full-word SECDED, e.g. H(39,32): parity columns + decoder on the
  /// read path, encoder counted in area.
  [[nodiscard]] overhead_metrics secded(const hamming_secded& code) const;

  /// Priority ECC, e.g. H(22,16) over the MSB half.
  [[nodiscard]] overhead_metrics pecc(const priority_ecc& codec) const;

  /// Bit-shuffling with nFM-bit LUT entries.
  [[nodiscard]] overhead_metrics shuffle(unsigned n_fm,
                                         lut_realization lut =
                                             lut_realization::sram_columns) const;

  /// Write-path overhead of full-word SECDED: the encoder runs in
  /// parallel with address decode, its delay largely hidden; parity
  /// columns add write energy.
  [[nodiscard]] write_overhead_metrics secded_write(const hamming_secded& code) const;

  /// Write-path overhead of P-ECC (same structure, smaller code).
  [[nodiscard]] write_overhead_metrics pecc_write(const priority_ecc& codec) const;

  /// Write-path overhead of bit-shuffling: a *serial* LUT read precedes
  /// the rotate and the actual write (Sec. 5.1) — the penalty a
  /// CAM/register-file LUT shrinks.
  [[nodiscard]] write_overhead_metrics shuffle_write(
      unsigned n_fm, lut_realization lut = lut_realization::sram_columns) const;

  /// Ratios of `x` to `base` per metric (power uses energy-per-read).
  [[nodiscard]] static relative_overhead relative(const overhead_metrics& x,
                                                  const overhead_metrics& base);

  /// Critical-path length of a decoder in FO4 gate delays (the unit of
  /// the 13-gate-delay figure of ref. [17]).
  [[nodiscard]] double decoder_gate_delays(const hamming_secded& code) const;

 private:
  hw_blocks blocks_;
  sram_macro_model sram_;
  array_geometry geometry_;
};

}  // namespace urmem
