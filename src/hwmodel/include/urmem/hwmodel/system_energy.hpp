// System-level energy model: what voltage scaling actually buys.
//
// The paper's conclusion: the scheme "can be used to exploit the
// properties of a variety of error-resilient applications for allowing
// operation at scaled voltages". This model closes that loop — dynamic
// read energy scales as VDD^2, so the *net* saving of an operating
// point is the VDD^2 reduction minus the mitigation hardware's energy
// overhead:
//
//   E_read(VDD)   = E_array(Vnom) * (VDD/Vnom)^2 + E_scheme(VDD)
//   net_saving    = 1 - E_read(VDD) / E_array(Vnom)
//
// The scheme overhead also scales with VDD^2 (same silicon).
#pragma once

#include "urmem/hwmodel/overhead_model.hpp"

namespace urmem {

/// Dynamic-energy accounting for one memory read at a scaled supply.
class system_energy_model {
 public:
  /// `array_read_energy_fj` is the unprotected array's per-read energy
  /// at nominal supply `vnom` (all W columns + periphery).
  system_energy_model(double array_read_energy_fj, double vnom = 1.0);

  /// Builds the array energy from the SRAM macro model: W columns at
  /// col_read_energy plus a periphery share.
  static system_energy_model from_macro(const sram_macro_model& sram,
                                        unsigned width, double vnom = 1.0,
                                        double periphery_factor = 1.35);

  [[nodiscard]] double vnom() const { return vnom_; }

  /// Unprotected array read energy at `vdd` (quadratic scaling).
  [[nodiscard]] double array_read_energy_fj(double vdd) const;

  /// Total read energy at `vdd` with a scheme whose nominal-supply
  /// read-path overhead is `scheme_overhead_fj`.
  [[nodiscard]] double protected_read_energy_fj(double vdd,
                                                double scheme_overhead_fj) const;

  /// Net energy saving of (vdd, scheme) vs the nominal unprotected
  /// read; negative when the overhead exceeds the scaling gain.
  [[nodiscard]] double net_saving(double vdd, double scheme_overhead_fj) const;

 private:
  double base_energy_fj_;
  double vnom_;
};

}  // namespace urmem
