#include "urmem/hwmodel/blocks.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "urmem/common/bitops.hpp"
#include "urmem/common/contracts.hpp"

namespace urmem {

logic_cost logic_cost::then(const logic_cost& next) const {
  return {area_um2 + next.area_um2, energy_fj + next.energy_fj,
          delay_ps + next.delay_ps, logic_delay_ps + next.logic_delay_ps,
          gate_count + next.gate_count};
}

logic_cost logic_cost::beside(const logic_cost& other) const {
  return {area_um2 + other.area_um2, energy_fj + other.energy_fj,
          std::max(delay_ps, other.delay_ps),
          std::max(logic_delay_ps, other.logic_delay_ps),
          gate_count + other.gate_count};
}

logic_cost hw_blocks::gates(const gate_cost& g, double count, double levels,
                            double route_cols) const {
  return {g.area_um2 * count, g.energy_fj * count * lib_.activity,
          g.delay_ps * levels + lib_.route_ps_per_col * route_cols,
          g.delay_ps * levels, count};
}

logic_cost hw_blocks::xor_tree(unsigned fan_in, unsigned span_cols) const {
  if (fan_in <= 1) return {};
  const double levels = static_cast<double>(ceil_log2(fan_in));
  return gates(lib_.xor2, static_cast<double>(fan_in - 1), levels,
               static_cast<double>(span_cols));
}

logic_cost hw_blocks::and_tree(unsigned fan_in) const {
  if (fan_in <= 1) return {};
  const double levels = static_cast<double>(ceil_log2(fan_in));
  return gates(lib_.and2, static_cast<double>(fan_in - 1), levels);
}

logic_cost hw_blocks::secded_encoder(const hamming_secded& code) const {
  logic_cost total;
  // Parity trees see only the data bits (parity columns are outputs).
  for (const word_t mask : code.parity_cover_masks()) {
    unsigned fan_in = 0;
    for (unsigned bit = 0; bit < code.data_bits(); ++bit) {
      if (get_bit(mask, code.data_column(bit))) ++fan_in;
    }
    total = total.beside(xor_tree(fan_in, code.codeword_bits()));
  }
  // Overall parity over the d + p bits above column 0.
  total = total.beside(xor_tree(code.codeword_bits() - 1, code.codeword_bits()));
  return total;
}

logic_cost hw_blocks::secded_decoder(const hamming_secded& code) const {
  // Syndrome trees (one per Hamming parity bit, full cover fan-in).
  logic_cost syndrome;
  for (const word_t mask : code.parity_cover_masks()) {
    syndrome = syndrome.beside(
        xor_tree(static_cast<unsigned>(std::popcount(mask)), code.codeword_bits()));
  }
  // Overall-parity tree: off the correction path (it only resolves
  // corrected vs detected), but its area/energy count.
  const logic_cost overall = xor_tree(code.codeword_bits(), code.codeword_bits());

  // Locator: per codeword column, an AND tree over the p syndrome bits.
  const unsigned p = code.check_bits() - 1;
  logic_cost locator;
  for (unsigned column = 1; column < code.codeword_bits(); ++column) {
    locator = locator.beside(and_tree(p));
  }

  // Correction XOR on each data column + status reduction logic.
  const logic_cost correct = gates(lib_.xor2, code.data_bits(), 1.0);
  const logic_cost status = gates(lib_.or2, p + 2.0, 0.0);

  // Area/energy: everything. Delay: the correction path
  // syndrome -> one locator AND tree -> correction XOR; the overall
  // parity and the per-column locator copies evaluate in parallel.
  logic_cost total =
      syndrome.beside(overall).beside(locator).beside(correct).beside(status);
  total.delay_ps = syndrome.delay_ps + and_tree(p).delay_ps + lib_.xor2.delay_ps;
  total.logic_delay_ps =
      syndrome.logic_delay_ps + and_tree(p).logic_delay_ps + lib_.xor2.delay_ps;
  return total;
}

logic_cost hw_blocks::barrel_rotator(unsigned width, unsigned stages) const {
  expects(stages >= 1 && stages <= ceil_log2(width),
          "rotator stages must be 1..log2(width)");
  logic_cost total;
  const unsigned segment = width >> stages;  // smallest shift stride
  for (unsigned k = 0; k < stages; ++k) {
    const unsigned shift_cols = segment << k;
    total = total.then(gates(lib_.mux2, width, 1.0, shift_cols));
  }
  return total;
}

}  // namespace urmem
