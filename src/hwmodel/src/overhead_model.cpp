#include "urmem/hwmodel/overhead_model.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

overhead_model::overhead_model(gate_library lib, sram_macro_model sram,
                               array_geometry data_geometry)
    : blocks_(lib), sram_(sram), geometry_(data_geometry) {
  expects(data_geometry.rows >= 1 && data_geometry.width >= 1,
          "overhead model needs a nonempty data geometry");
}

overhead_metrics overhead_model::secded(const hamming_secded& code) const {
  expects(code.data_bits() == geometry_.width,
          "SECDED code width must match the data word");
  const unsigned extra_cols = code.codeword_bits() - code.data_bits();
  const logic_cost enc = blocks_.secded_encoder(code);
  const logic_cost dec = blocks_.secded_decoder(code);

  overhead_metrics m;
  m.read_energy_fj = dec.energy_fj + extra_cols * sram_.col_read_energy_fj;
  m.read_delay_ps = dec.delay_ps;
  m.area_um2 = enc.area_um2 + dec.area_um2 +
               extra_cols * sram_.column_area_um2(geometry_.rows);
  return m;
}

overhead_metrics overhead_model::pecc(const priority_ecc& codec) const {
  expects(codec.word_bits() == geometry_.width,
          "P-ECC word width must match the data word");
  const hamming_secded& inner = codec.inner_code();
  const unsigned extra_cols = codec.storage_bits() - codec.word_bits();
  const logic_cost enc = blocks_.secded_encoder(inner);
  const logic_cost dec = blocks_.secded_decoder(inner);

  overhead_metrics m;
  m.read_energy_fj = dec.energy_fj + extra_cols * sram_.col_read_energy_fj;
  m.read_delay_ps = dec.delay_ps;
  m.area_um2 = enc.area_um2 + dec.area_um2 +
               extra_cols * sram_.column_area_um2(geometry_.rows);
  return m;
}

overhead_metrics overhead_model::shuffle(unsigned n_fm, lut_realization lut) const {
  const logic_cost rotator = blocks_.barrel_rotator(geometry_.width, n_fm);

  overhead_metrics m;
  // Read path: the LUT entry is fetched concurrently with the data word
  // (small macro, arrives within lut_read_slack of the data), then the
  // restoring rotator runs.
  m.read_delay_ps = sram_.lut_read_slack_ps + rotator.delay_ps;
  switch (lut) {
    case lut_realization::sram_columns:
      m.read_energy_fj = rotator.energy_fj + n_fm * sram_.lut_col_read_energy_fj;
      m.area_um2 = n_fm * sram_.column_area_um2(geometry_.rows);
      break;
    case lut_realization::register_file: {
      // Latch-based file: reads cost a fraction of an SRAM column access,
      // but each stored bit is a ~4x larger latch cell.
      m.read_energy_fj = rotator.energy_fj + n_fm * sram_.col_read_energy_fj * 0.4;
      m.area_um2 = n_fm * sram_.column_area_um2(geometry_.rows) * 4.0;
      break;
    }
  }
  // Area: apply + restore rotator directions plus the LUT storage.
  m.area_um2 += 2.0 * rotator.area_um2;
  return m;
}

write_overhead_metrics overhead_model::secded_write(const hamming_secded& code) const {
  expects(code.data_bits() == geometry_.width,
          "SECDED code width must match the data word");
  const logic_cost enc = blocks_.secded_encoder(code);
  const unsigned extra_cols = code.codeword_bits() - code.data_bits();
  // The encoder evaluates during row decode; only the slice of its
  // delay beyond the decode window shows up (approximated as half).
  return {enc.energy_fj + extra_cols * sram_.col_write_energy_fj,
          0.5 * enc.delay_ps};
}

write_overhead_metrics overhead_model::pecc_write(const priority_ecc& codec) const {
  expects(codec.word_bits() == geometry_.width,
          "P-ECC word width must match the data word");
  const logic_cost enc = blocks_.secded_encoder(codec.inner_code());
  const unsigned extra_cols = codec.storage_bits() - codec.word_bits();
  return {enc.energy_fj + extra_cols * sram_.col_write_energy_fj,
          0.5 * enc.delay_ps};
}

write_overhead_metrics overhead_model::shuffle_write(unsigned n_fm,
                                                     lut_realization lut) const {
  const logic_cost rotator = blocks_.barrel_rotator(geometry_.width, n_fm);
  write_overhead_metrics m;
  switch (lut) {
    case lut_realization::sram_columns:
      m.write_energy_fj = rotator.energy_fj + n_fm * sram_.lut_col_read_energy_fj;
      m.write_delay_ps = sram_.lut_serial_read_ps + rotator.delay_ps;
      break;
    case lut_realization::register_file:
      m.write_energy_fj = rotator.energy_fj + n_fm * sram_.col_read_energy_fj * 0.4;
      m.write_delay_ps = sram_.rf_serial_read_ps + rotator.delay_ps;
      break;
  }
  return m;
}

relative_overhead overhead_model::relative(const overhead_metrics& x,
                                           const overhead_metrics& base) {
  expects(base.read_energy_fj > 0 && base.read_delay_ps > 0 && base.area_um2 > 0,
          "baseline overhead must be positive");
  return {x.read_energy_fj / base.read_energy_fj,
          x.read_delay_ps / base.read_delay_ps, x.area_um2 / base.area_um2};
}

double overhead_model::decoder_gate_delays(const hamming_secded& code) const {
  // Gate delays exclude the routing term — ref. [17] counts logic levels.
  return blocks_.secded_decoder(code).logic_delay_ps / blocks_.library().fo4_ps;
}

}  // namespace urmem
