#include "urmem/hwmodel/gate_library.hpp"

namespace urmem {

gate_library gate_library::fdsoi_28nm() {
  gate_library lib;
  lib.inv = {0.33, 10.0, 0.35};
  lib.nand2 = {0.49, 14.0, 0.55};
  lib.and2 = {0.65, 20.0, 0.70};
  lib.or2 = {0.65, 22.0, 0.70};
  lib.xor2 = {0.98, 24.0, 1.10};
  lib.mux2 = {0.98, 22.0, 0.85};
  return lib;
}

sram_macro_model sram_macro_model::fdsoi_28nm() { return {}; }

}  // namespace urmem
