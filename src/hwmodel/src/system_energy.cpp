#include "urmem/hwmodel/system_energy.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

system_energy_model::system_energy_model(double array_read_energy_fj, double vnom)
    : base_energy_fj_(array_read_energy_fj), vnom_(vnom) {
  expects(array_read_energy_fj > 0.0, "array read energy must be positive");
  expects(vnom > 0.0, "nominal supply must be positive");
}

system_energy_model system_energy_model::from_macro(const sram_macro_model& sram,
                                                    unsigned width, double vnom,
                                                    double periphery_factor) {
  expects(width >= 1, "width must be positive");
  expects(periphery_factor >= 1.0, "periphery factor must be >= 1");
  return system_energy_model(
      width * sram.col_read_energy_fj * periphery_factor, vnom);
}

double system_energy_model::array_read_energy_fj(double vdd) const {
  expects(vdd > 0.0, "vdd must be positive");
  const double ratio = vdd / vnom_;
  return base_energy_fj_ * ratio * ratio;
}

double system_energy_model::protected_read_energy_fj(
    double vdd, double scheme_overhead_fj) const {
  expects(scheme_overhead_fj >= 0.0, "scheme overhead must be nonnegative");
  const double ratio = vdd / vnom_;
  return array_read_energy_fj(vdd) + scheme_overhead_fj * ratio * ratio;
}

double system_energy_model::net_saving(double vdd, double scheme_overhead_fj) const {
  return 1.0 - protected_read_energy_fj(vdd, scheme_overhead_fj) /
                   array_read_energy_fj(vnom_);
}

}  // namespace urmem
