// The three evaluation applications of the paper's Table 1, packaged
// behind one interface: each holds its (synthetic) dataset, a fixed
// 0.8:0.2 train/test split, and a quality metric; evaluate() trains on
// a (possibly memory-corrupted) copy of the standardized training
// features and scores on the clean test set.
//
//   Elasticnet  -> wine-like data,    R^2
//   PCA         -> madelon-like data, explained variance
//   KNN         -> HAR-like data,     classification score
//
// Only the training *features* live in the unreliable data memory;
// targets/labels are control data held in reliable storage (the paper
// does not state otherwise, and data memories hold bulk numeric data).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "urmem/ml/matrix.hpp"

namespace urmem {

/// One benchmark application bound to its dataset and metric.
class application {
 public:
  virtual ~application() = default;

  /// Algorithm name, e.g. "Elasticnet".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Dataset name, e.g. "wine-like".
  [[nodiscard]] virtual std::string dataset_name() const = 0;

  /// Metric name of Table 1, e.g. "R^2".
  [[nodiscard]] virtual std::string metric_name() const = 0;

  /// Standardized training features as they would be written to memory.
  [[nodiscard]] virtual const matrix& train_features() const = 0;

  /// Trains on `stored_train_features` (same shape as train_features())
  /// and returns the quality metric measured on the clean test set.
  [[nodiscard]] virtual double evaluate(const matrix& stored_train_features) const = 0;
};

/// Elasticnet regression on wine-like data (metric: R^2).
[[nodiscard]] std::unique_ptr<application> make_elasticnet_app(std::uint64_t seed = 7);

/// PCA on madelon-like data (metric: explained variance, 5 components).
[[nodiscard]] std::unique_ptr<application> make_pca_app(std::uint64_t seed = 7);

/// KNN (k=5) on HAR-like data (metric: score/accuracy).
[[nodiscard]] std::unique_ptr<application> make_knn_app(std::uint64_t seed = 7);

/// Frame-buffer storage on image-like data (metric: PSNR in dB against
/// the original frame) — the multimedia context of the P-ECC prior art
/// (paper Sec. 2, refs. [4, 12]); not part of Table 1.
[[nodiscard]] std::unique_ptr<application> make_image_app(std::uint64_t seed = 7);

/// All three applications of Table 1 in paper order.
[[nodiscard]] std::vector<std::unique_ptr<application>> make_all_applications(
    std::uint64_t seed = 7);

/// Application by registry name ("elasticnet", "pca", "knn", "image");
/// nullptr for unknown names.
[[nodiscard]] std::unique_ptr<application> make_application(
    std::string_view name, std::uint64_t seed = 7);

/// True when make_application accepts `name` — the single source of
/// truth validators check against (cheap: no dataset is built).
[[nodiscard]] bool is_known_application(std::string_view name);

}  // namespace urmem
