// The Fig. 7 experiment: CDF of application quality under memory
// failures (paper Sec. 5.2).
//
// For each failure count N = 1..Nmax (Nmax chosen so 99 % of memories
// have no more failures, per the paper), `samples_per_count` random
// fault maps are injected into the tiled training-feature store, the
// benchmark is retrained on the corrupted features, and the quality
// metric — normalized to the fault-free (quantization-only) baseline —
// is recorded. Strata are weighted by the binomial Pr(N = n), so the
// resulting weighted CDF is the quality-yield curve of Fig. 7.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "urmem/common/stats.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/campaign_runner.hpp"
#include "urmem/sim/memory_pipeline.hpp"

namespace urmem {

/// Parameters of the Fig. 7 sweep.
struct quality_experiment_config {
  double pcell = 1e-3;                 ///< paper's Fig. 7 operating point
  storage_config storage;              ///< 16 KB tiles of 32-bit words
  std::uint32_t samples_per_count = 10;///< paper uses 500 (CLI-scalable)
  double coverage = 0.99;              ///< quantile defining Nmax
  fault_polarity polarity = fault_polarity::flip;  ///< paper injects bit-flips
  std::uint64_t seed = 99;
  unsigned threads = 1;                ///< campaign workers; 0 = all cores
  std::uint64_t batch_size = 0;        ///< trials per scheduling step; 0 = auto
};

/// One scheme's quality distribution.
struct quality_result {
  std::string scheme_name;
  double clean_metric = 0.0;  ///< fault-free (quantized) metric value
  empirical_cdf cdf;          ///< CDF of the normalized metric
};

/// Runs the stratified sweep of one application under one scheme.
/// The normalized metric is evaluate(corrupted)/evaluate(clean),
/// clamped to [0, 1]. Trials are sharded over a campaign_runner seeded
/// with `config.seed`, so the result is bit-identical for a fixed seed
/// at any `config.threads`.
[[nodiscard]] quality_result run_quality_experiment(
    const application& app, const scheme_factory& factory,
    const std::string& scheme_name, const quality_experiment_config& config);

/// Same sweep on an existing (shared) campaign runner; per-trial streams
/// derive from `runner.seed()`. Lets one pool serve the whole Fig. 7
/// scheme x application grid without re-spawning workers.
[[nodiscard]] quality_result run_quality_experiment(
    const application& app, const scheme_factory& factory,
    const std::string& scheme_name, const quality_experiment_config& config,
    campaign_runner& runner);

/// Largest failure count Nmax such that `coverage` of the memories have
/// at most Nmax failures (per 16 KB tile).
[[nodiscard]] std::uint64_t failure_count_limit(
    const quality_experiment_config& config);

}  // namespace urmem
