// Parallel Monte-Carlo fault-injection campaign engine.
//
// The paper's experiments (Fig. 5's 1e7-run MSE sweep, Fig. 7's
// stratified quality sweep) are embarrassingly parallel: every trial
// draws its own fault maps and touches no shared mutable state. The
// campaign_runner shards such trials across a persistent thread pool
// with batched work-stealing scheduling, and keeps the results
// *bit-identical for a fixed seed at any thread count*:
//
//  * Determinism — trial i always runs on make_stream_rng(seed, i), an
//    engine derived from the root seed by stream splitting, never on a
//    generator shared between trials. Which worker executes the trial
//    (and in what order) therefore cannot change its draws.
//  * Deterministic reduction — per-trial outputs land in a slot indexed
//    by trial number and are merged in trial order after the pool
//    drains, so floating-point accumulation order is fixed.
//  * Scheduling — the trial range is pre-split into one contiguous
//    shard per worker; workers claim batches from their own shard and,
//    when it drains, steal half of the fullest remaining shard. Batches
//    amortize synchronization for micro-trials (Fig. 5) while steals
//    keep cores busy under skewed trial costs (Fig. 7 retraining).
//
// Trial bodies must be thread-safe: they may read shared immutable
// state (the application, the scheme factory) but must confine writes
// to their own trial's slot — exactly what run()/map()/run_weighted()
// provide.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/common/stats.hpp"

namespace urmem {

/// Parameters of a campaign runner.
struct campaign_config {
  unsigned threads = 0;          ///< worker count; 0 = all hardware threads
  std::uint64_t batch_size = 0;  ///< trials claimed per scheduling step; 0 = auto
  std::uint64_t seed = 0;        ///< root seed; trial i sees make_stream_rng(seed, i)
};

/// One Monte-Carlo sample with its stratum weight (uniform MC: weight 1).
struct weighted_sample {
  double value = 0.0;
  double weight = 1.0;
};

/// Scheduling counters of the most recent campaign (diagnostics only —
/// `steals` depends on timing and is not reproducible; the results are).
struct campaign_stats {
  std::uint64_t trials = 0;   ///< trials executed
  std::uint64_t batches = 0;  ///< own-shard batch claims
  std::uint64_t steals = 0;   ///< backlog halves moved between shards
  unsigned threads = 0;       ///< workers that served the campaign
};

/// Work-stealing thread pool for independent fault-injection trials.
/// One campaign at a time per runner; reuse a runner across campaigns to
/// amortize thread start-up (the pool is persistent).
class campaign_runner {
 public:
  /// Runs one trial on its private deterministic engine.
  using trial_body = std::function<void(std::uint64_t trial, rng& gen)>;
  /// trial_body that also receives the executing worker's index
  /// (0..threads()-1) — the hook for per-worker scratch buffers. The
  /// worker a trial lands on is schedule-dependent; results must not be.
  using worker_trial_body =
      std::function<void(std::uint64_t trial, rng& gen, unsigned worker)>;
  /// Runs one trial and appends its (value, weight) samples to `out`.
  using sampling_body = std::function<void(
      std::uint64_t trial, rng& gen, std::vector<weighted_sample>& out)>;

  explicit campaign_runner(campaign_config config = {});
  ~campaign_runner();
  campaign_runner(const campaign_runner&) = delete;
  campaign_runner& operator=(const campaign_runner&) = delete;

  /// Worker count actually used (resolved hardware_concurrency).
  [[nodiscard]] unsigned threads() const noexcept { return thread_count_; }

  /// Root seed of the per-trial streams.
  [[nodiscard]] std::uint64_t seed() const noexcept { return config_.seed; }

  /// Executes `trials` independent trials. Rethrows the first trial
  /// exception (remaining trials are abandoned at the next batch edge).
  void run(std::uint64_t trials, const trial_body& body);

  /// run() variant handing the body the executing worker's index.
  void run(std::uint64_t trials, const worker_trial_body& body);

  /// run() variant collecting one result per trial, in trial order.
  template <typename T>
  [[nodiscard]] std::vector<T> map(
      std::uint64_t trials, const std::function<T(std::uint64_t, rng&)>& fn) {
    // vector<bool> bit-packs elements: adjacent trials would share a
    // byte and the concurrent per-slot writes would race.
    static_assert(!std::is_same_v<T, bool>,
                  "map<bool> is unsafe; use map<char> or map<int>");
    std::vector<T> results(trials);
    run(trials, [&results, &fn](std::uint64_t trial, rng& gen) {
      results[trial] = fn(trial, gen);
    });
    return results;
  }

  /// Weighted-sampling campaign with exactly one sample per trial,
  /// written to the trial's own slot and merged in trial order — the
  /// allocation-lean reduction behind the Fig. 5 mse_distribution and
  /// Fig. 7 quality sweeps.
  [[nodiscard]] empirical_cdf map_weighted(
      std::uint64_t trials,
      const std::function<weighted_sample(std::uint64_t, rng&)>& fn);

  /// General weighted-sampling campaign: trials may emit any number of
  /// samples; all are merged in trial order into one empirical CDF. At
  /// least one sample must be emitted overall. Costs a per-sample trial
  /// tag plus a merge sort — prefer map_weighted for one-sample trials.
  [[nodiscard]] empirical_cdf run_weighted(std::uint64_t trials,
                                           const sampling_body& body);

  /// Scheduling counters of the most recent run()/map()/run_weighted().
  [[nodiscard]] const campaign_stats& last_stats() const noexcept {
    return last_stats_;
  }

 private:
  struct pool;

  campaign_config config_;
  unsigned thread_count_ = 1;
  std::unique_ptr<pool> pool_;  // null when thread_count_ == 1
  campaign_stats last_stats_{};
};

}  // namespace urmem
