// Matrix <-> memory-word conversion.
//
// The application study (paper Sec. 5.2) stores the training data of
// each benchmark in the functional 16 KB memory model as 32-bit
// two's-complement words. This quantizer flattens a feature matrix
// row-major into fixed-point words and back; the Q-format default
// (Q15.16) matches the 2^b error-magnitude convention of Eq. (6).
#pragma once

#include <vector>

#include "urmem/common/fixed_point.hpp"
#include "urmem/ml/matrix.hpp"

namespace urmem {

/// Fixed-point matrix codec.
class matrix_quantizer {
 public:
  /// Default: 32-bit words with 16 fractional bits.
  explicit matrix_quantizer(fixed_point_codec codec = fixed_point_codec(32, 16));

  [[nodiscard]] const fixed_point_codec& codec() const { return codec_; }

  /// Flattens `m` row-major into fixed-point words.
  [[nodiscard]] std::vector<word_t> to_words(const matrix& m) const;

  /// Rebuilds a `rows` x `cols` matrix from words.
  [[nodiscard]] matrix from_words(const std::vector<word_t>& words,
                                  std::size_t rows, std::size_t cols) const;

  /// Quantize-dequantize round trip without any memory in between —
  /// the fault-free baseline the normalized quality metrics divide by.
  [[nodiscard]] matrix roundtrip(const matrix& m) const;

 private:
  fixed_point_codec codec_;
};

}  // namespace urmem
