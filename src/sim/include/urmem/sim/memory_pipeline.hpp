// Tiled faulty-memory storage pipeline.
//
// The paper's harness stores each benchmark's training features in "a
// functional model of a 16 KB memory" and injects bit-flips per the
// sampled fault maps. Training sets larger than one 16 KB array span
// several tiles, each an independent protected_memory instance with its
// own fault map (exactly N failures per tile in the stratified Fig. 7
// sweep, or Binomial(M, Pcell) per tile otherwise).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/ml/matrix.hpp"
#include "urmem/scheme/protected_memory.hpp"
#include "urmem/sim/quantizer.hpp"

namespace urmem {

/// Creates a fresh protection-scheme instance for a tile of `rows` rows.
using scheme_factory = std::function<std::unique_ptr<protection_scheme>(std::uint32_t rows)>;

/// Produces the fault map of one tile given its storage geometry.
using fault_injector = std::function<fault_map(const array_geometry&, rng&)>;

/// Geometry and Q-format of the tiled store.
struct storage_config {
  std::uint32_t rows_per_tile = 4096;  ///< 16 KB of 32-bit words
  unsigned frac_bits = 16;             ///< Q15.16 two's-complement
  unsigned word_bits = 32;
  /// Spare rows manufactured per tile for redundancy repair (0 = none;
  /// spares are injected with faults like every other row — see
  /// protected_memory).
  std::uint32_t spare_rows_per_tile = 0;
  /// Heterogeneous-reliability region table applied to every tile
  /// (ordered, covering [0, rows_per_tile) exactly; each region owns
  /// its spare pool). Empty = homogeneous tile; when set it replaces
  /// spare_rows_per_tile, which must then be 0.
  std::vector<memory_region> regions;
};

/// Statistics of one store/readback pass.
struct pipeline_stats {
  std::size_t tiles = 0;
  std::uint64_t injected_faults = 0;
  std::uint64_t corrected_words = 0;      ///< decoder corrected a single error
  std::uint64_t uncorrectable_words = 0;  ///< decoder flagged detected_uncorrectable
};

/// Writes `input` through scheme-protected faulty tiles and reads it
/// back. Each tile gets a fresh scheme from `factory` and a fault map
/// from `inject`.
[[nodiscard]] matrix store_and_readback(const matrix& input,
                                        const storage_config& config,
                                        const scheme_factory& factory,
                                        const fault_injector& inject, rng& gen,
                                        pipeline_stats* stats = nullptr);

/// Fault injector placing exactly `n` faults in every tile.
[[nodiscard]] fault_injector exact_fault_injector(std::uint64_t n,
                                                  fault_polarity polarity =
                                                      fault_polarity::flip);

/// Fault injector drawing Binomial(cells, pcell) faults per tile.
[[nodiscard]] fault_injector binomial_fault_injector(double pcell,
                                                     fault_polarity polarity =
                                                         fault_polarity::flip);

/// Injector producing fault-free tiles (quantization-only baseline).
[[nodiscard]] fault_injector no_fault_injector();

/// One region's fault operating point for region_fault_injector.
struct region_operating_point {
  memory_region region;
  double pcell = 0.0;  ///< cell failure probability of this region's cells
};

/// Injector drawing Binomial(cells, pcell) faults independently per
/// region at that region's own Pcell — over its data rows AND its spare
/// pool (spares are manufactured in the same corner as the rows they
/// back). `points` must tile the data rows in order; the tile geometry
/// handed to the injector must equal data rows + total spares, with
/// spares laid out per protected_memory's region-order convention.
[[nodiscard]] fault_injector region_fault_injector(
    std::vector<region_operating_point> points,
    fault_polarity polarity = fault_polarity::flip);

/// Integer-deterministic variant of region_fault_injector: exactly
/// `counts[r]` faults, uniform over region r's cells (data rows + its
/// spares). Pure integer sampling, so golden runs are bit-identical
/// across platforms (binomial draws go through libm and are not).
[[nodiscard]] fault_injector region_exact_fault_injector(
    std::vector<memory_region> regions, std::vector<std::uint64_t> counts,
    fault_polarity polarity = fault_polarity::flip);

}  // namespace urmem
