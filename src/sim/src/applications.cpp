#include "urmem/sim/applications.hpp"

#include <utility>

#include "urmem/common/contracts.hpp"
#include "urmem/datasets/generators.hpp"
#include "urmem/ml/elasticnet.hpp"
#include "urmem/ml/knn.hpp"
#include "urmem/ml/metrics.hpp"
#include "urmem/ml/pca.hpp"
#include "urmem/ml/preprocessing.hpp"

namespace urmem {

namespace {

/// Shared split/standardize plumbing: the scaler is fitted on the clean
/// training features and reused for the test set, so every protection
/// scheme sees the identical partition and preprocessing.
struct prepared_data {
  matrix train_x;  // standardized
  matrix test_x;   // standardized with the train scaler
  std::vector<double> train_y;
  std::vector<double> test_y;
  std::vector<int> train_labels;
  std::vector<int> test_labels;
};

prepared_data prepare(const dataset& data, std::uint64_t seed) {
  rng gen(splitmix64(seed ^ 0x73706c6974ULL));  // "split"
  const split_indices split = train_test_split(data.size(), 0.2, gen);

  prepared_data out;
  const matrix train_raw = take_rows(data.features, split.train);
  const matrix test_raw = take_rows(data.features, split.test);
  standard_scaler scaler;
  out.train_x = scaler.fit_transform(train_raw);
  out.test_x = scaler.transform(test_raw);
  if (!data.targets.empty()) {
    out.train_y = take(data.targets, split.train);
    out.test_y = take(data.targets, split.test);
  }
  if (!data.labels.empty()) {
    out.train_labels = take(data.labels, split.train);
    out.test_labels = take(data.labels, split.test);
  }
  return out;
}

class elasticnet_app final : public application {
 public:
  explicit elasticnet_app(std::uint64_t seed)
      : data_(prepare(make_wine_like({.seed = seed ^ 0x77696e65ULL}), seed)) {}

  [[nodiscard]] std::string name() const override { return "Elasticnet"; }
  [[nodiscard]] std::string dataset_name() const override { return "wine-like"; }
  [[nodiscard]] std::string metric_name() const override { return "R^2"; }
  [[nodiscard]] const matrix& train_features() const override { return data_.train_x; }

  [[nodiscard]] double evaluate(const matrix& stored) const override {
    expects(stored.rows() == data_.train_x.rows() &&
                stored.cols() == data_.train_x.cols(),
            "stored training features have the wrong shape");
    elasticnet model({.alpha = 0.01, .l1_ratio = 0.5});
    model.fit(stored, data_.train_y);
    const std::vector<double> predicted = model.predict(data_.test_x);
    return r2_score(data_.test_y, predicted);
  }

 private:
  prepared_data data_;
};

class pca_app final : public application {
 public:
  explicit pca_app(std::uint64_t seed)
      : data_(prepare(make_madelon_like({.seed = seed ^ 0x6d61646cULL}), seed)) {}

  [[nodiscard]] std::string name() const override { return "PCA"; }
  [[nodiscard]] std::string dataset_name() const override { return "madelon-like"; }
  [[nodiscard]] std::string metric_name() const override {
    return "Explained Variance";
  }
  [[nodiscard]] const matrix& train_features() const override { return data_.train_x; }

  [[nodiscard]] double evaluate(const matrix& stored) const override {
    expects(stored.rows() == data_.train_x.rows() &&
                stored.cols() == data_.train_x.cols(),
            "stored training features have the wrong shape");
    pca model(5);
    model.fit(stored);
    return model.score(data_.test_x);
  }

 private:
  prepared_data data_;
};

class knn_app final : public application {
 public:
  explicit knn_app(std::uint64_t seed)
      : data_(prepare(make_har_like({.seed = seed ^ 0x686172ULL}), seed)) {}

  [[nodiscard]] std::string name() const override { return "KNN"; }
  [[nodiscard]] std::string dataset_name() const override { return "har-like"; }
  [[nodiscard]] std::string metric_name() const override { return "Score"; }
  [[nodiscard]] const matrix& train_features() const override { return data_.train_x; }

  [[nodiscard]] double evaluate(const matrix& stored) const override {
    expects(stored.rows() == data_.train_x.rows() &&
                stored.cols() == data_.train_x.cols(),
            "stored training features have the wrong shape");
    knn_classifier model(5);
    model.fit(stored, data_.train_labels);
    return model.score(data_.test_x, data_.test_labels);
  }

 private:
  prepared_data data_;
};

class image_app final : public application {
 public:
  explicit image_app(std::uint64_t seed)
      : image_(make_image_like({.seed = seed ^ 0x696d67ULL}).features) {}

  [[nodiscard]] std::string name() const override { return "FrameBuffer"; }
  [[nodiscard]] std::string dataset_name() const override { return "image-like"; }
  [[nodiscard]] std::string metric_name() const override { return "PSNR [dB]"; }
  [[nodiscard]] const matrix& train_features() const override { return image_; }

  [[nodiscard]] double evaluate(const matrix& stored) const override {
    expects(stored.rows() == image_.rows() && stored.cols() == image_.cols(),
            "stored frame has the wrong shape");
    // PSNR against the original frame; the fault-free baseline is the
    // (finite) quantization-only PSNR.
    return psnr_db(image_.data(), stored.data());
  }

 private:
  matrix image_;
};

}  // namespace

std::unique_ptr<application> make_image_app(std::uint64_t seed) {
  return std::make_unique<image_app>(seed);
}

std::unique_ptr<application> make_elasticnet_app(std::uint64_t seed) {
  return std::make_unique<elasticnet_app>(seed);
}

std::unique_ptr<application> make_pca_app(std::uint64_t seed) {
  return std::make_unique<pca_app>(seed);
}

std::unique_ptr<application> make_knn_app(std::uint64_t seed) {
  return std::make_unique<knn_app>(seed);
}

std::vector<std::unique_ptr<application>> make_all_applications(std::uint64_t seed) {
  std::vector<std::unique_ptr<application>> apps;
  apps.push_back(make_elasticnet_app(seed));
  apps.push_back(make_pca_app(seed));
  apps.push_back(make_knn_app(seed));
  return apps;
}

std::unique_ptr<application> make_application(std::string_view name,
                                              std::uint64_t seed) {
  if (name == "elasticnet") return make_elasticnet_app(seed);
  if (name == "pca") return make_pca_app(seed);
  if (name == "knn") return make_knn_app(seed);
  if (name == "image") return make_image_app(seed);
  return nullptr;
}

bool is_known_application(std::string_view name) {
  return name == "elasticnet" || name == "pca" || name == "knn" ||
         name == "image";
}

}  // namespace urmem
