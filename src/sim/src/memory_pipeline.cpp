#include "urmem/sim/memory_pipeline.hpp"

#include <algorithm>
#include <span>

#include "urmem/common/binomial.hpp"
#include "urmem/common/contracts.hpp"

namespace urmem {

matrix store_and_readback(const matrix& input, const storage_config& config,
                          const scheme_factory& factory, const fault_injector& inject,
                          rng& gen, pipeline_stats* stats) {
  expects(config.rows_per_tile >= 1, "tiles need at least one row");
  const matrix_quantizer quantizer(
      fixed_point_codec(config.word_bits, config.frac_bits));
  const std::vector<word_t> words = quantizer.to_words(input);

  std::vector<word_t> restored(words.size());
  pipeline_stats local;
  std::size_t cursor = 0;
  while (cursor < words.size()) {
    const auto tile_words = std::min<std::size_t>(config.rows_per_tile,
                                                  words.size() - cursor);
    std::unique_ptr<protection_scheme> scheme = factory(config.rows_per_tile);
    expects(scheme != nullptr, "scheme factory returned null");
    expects(scheme->data_bits() == config.word_bits,
            "scheme word width must match the storage config");
    protected_memory memory(config.rows_per_tile, std::move(scheme),
                            config.spare_rows_per_tile);

    fault_map faults = inject(memory.storage_geometry(), gen);
    local.injected_faults += faults.fault_count();
    memory.set_fault_map(std::move(faults));

    // Stream the whole tile through the batched block-codec +
    // fault-plane path: one scheme call and one row op per direction
    // instead of per-word virtual calls.
    memory.write_block(0, std::span<const word_t>(words).subspan(cursor, tile_words));
    protected_memory::block_stats block;
    memory.read_block(0, std::span<word_t>(restored).subspan(cursor, tile_words),
                      &block);
    local.corrected_words += block.corrected;
    local.uncorrectable_words += block.uncorrectable;
    ++local.tiles;
    cursor += tile_words;
  }
  if (stats != nullptr) *stats = local;
  return quantizer.from_words(restored, input.rows(), input.cols());
}

fault_injector exact_fault_injector(std::uint64_t n, fault_polarity polarity) {
  return [n, polarity](const array_geometry& geometry, rng& gen) {
    return sample_fault_map_exact(geometry, std::min(n, geometry.cells()), gen,
                                  polarity);
  };
}

fault_injector binomial_fault_injector(double pcell, fault_polarity polarity) {
  return [pcell, polarity](const array_geometry& geometry, rng& gen) {
    const binomial_distribution dist(geometry.cells(), pcell);
    return sample_fault_map_binomial(geometry, dist, gen, polarity);
  };
}

fault_injector no_fault_injector() {
  return [](const array_geometry& geometry, rng&) { return fault_map(geometry); };
}

}  // namespace urmem
