#include "urmem/sim/memory_pipeline.hpp"

#include <algorithm>
#include <span>

#include "urmem/common/binomial.hpp"
#include "urmem/common/contracts.hpp"

namespace urmem {

matrix store_and_readback(const matrix& input, const storage_config& config,
                          const scheme_factory& factory, const fault_injector& inject,
                          rng& gen, pipeline_stats* stats) {
  expects(config.rows_per_tile >= 1, "tiles need at least one row");
  const matrix_quantizer quantizer(
      fixed_point_codec(config.word_bits, config.frac_bits));
  const std::vector<word_t> words = quantizer.to_words(input);

  expects(config.regions.empty() || config.spare_rows_per_tile == 0,
          "a region table replaces spare_rows_per_tile");
  std::vector<word_t> restored(words.size());
  pipeline_stats local;
  std::size_t cursor = 0;
  while (cursor < words.size()) {
    const auto tile_words = std::min<std::size_t>(config.rows_per_tile,
                                                  words.size() - cursor);
    std::unique_ptr<protection_scheme> scheme = factory(config.rows_per_tile);
    expects(scheme != nullptr, "scheme factory returned null");
    expects(scheme->data_bits() == config.word_bits,
            "scheme word width must match the storage config");
    protected_memory memory =
        config.regions.empty()
            ? protected_memory(config.rows_per_tile, std::move(scheme),
                               config.spare_rows_per_tile)
            : protected_memory(config.rows_per_tile, std::move(scheme),
                               config.regions);

    fault_map faults = inject(memory.storage_geometry(), gen);
    local.injected_faults += faults.fault_count();
    memory.set_fault_map(std::move(faults));

    // Stream the whole tile through the batched block-codec +
    // fault-plane path: one scheme call and one row op per direction
    // instead of per-word virtual calls.
    memory.write_block(0, std::span<const word_t>(words).subspan(cursor, tile_words));
    protected_memory::block_stats block;
    memory.read_block(0, std::span<word_t>(restored).subspan(cursor, tile_words),
                      &block);
    local.corrected_words += block.corrected;
    local.uncorrectable_words += block.uncorrectable;
    ++local.tiles;
    cursor += tile_words;
  }
  if (stats != nullptr) *stats = local;
  return quantizer.from_words(restored, input.rows(), input.cols());
}

fault_injector exact_fault_injector(std::uint64_t n, fault_polarity polarity) {
  return [n, polarity](const array_geometry& geometry, rng& gen) {
    return sample_fault_map_exact(geometry, std::min(n, geometry.cells()), gen,
                                  polarity);
  };
}

fault_injector binomial_fault_injector(double pcell, fault_polarity polarity) {
  return [pcell, polarity](const array_geometry& geometry, rng& gen) {
    const binomial_distribution dist(geometry.cells(), pcell);
    return sample_fault_map_binomial(geometry, dist, gen, polarity);
  };
}

fault_injector no_fault_injector() {
  return [](const array_geometry& geometry, rng&) { return fault_map(geometry); };
}

namespace {

/// Rebases one region's sub-map (data rows, then its spares) into the
/// tile map using protected_memory's region-order spare layout.
void merge_region_faults(fault_map& tile, const fault_map& drawn,
                         const memory_region& region,
                         std::uint32_t spare_base) {
  for (const fault& f : drawn.all_faults()) {
    const bool is_spare = f.row >= region.rows();
    const std::uint32_t row = is_spare ? spare_base + (f.row - region.rows())
                                       : region.first_row + f.row;
    tile.add({row, f.col, f.kind});
  }
}

std::uint32_t checked_region_tile_rows(const std::vector<memory_region>& regions,
                                       const array_geometry& geometry) {
  std::uint32_t data_rows = 0;
  std::uint32_t spares = 0;
  for (const memory_region& region : regions) {
    data_rows += region.rows();
    spares += region.spare_rows;
  }
  expects(geometry.rows == data_rows + spares,
          "tile geometry must match the region table (data + spares)");
  return data_rows;
}

}  // namespace

fault_injector region_fault_injector(std::vector<region_operating_point> points,
                                     fault_polarity polarity) {
  expects(!points.empty(), "region injector needs at least one region");
  return [points = std::move(points),
          polarity](const array_geometry& geometry, rng& gen) {
    std::vector<memory_region> regions;
    regions.reserve(points.size());
    for (const region_operating_point& point : points) {
      regions.push_back(point.region);
    }
    std::uint32_t spare_base = checked_region_tile_rows(regions, geometry);
    fault_map faults(geometry);
    // Regions draw in table order on the shared trial stream, so the
    // map is deterministic for a fixed seed regardless of scheduling.
    for (const region_operating_point& point : points) {
      const array_geometry sub{point.region.rows() + point.region.spare_rows,
                               geometry.width};
      const binomial_distribution dist(sub.cells(), point.pcell);
      merge_region_faults(faults,
                          sample_fault_map_binomial(sub, dist, gen, polarity),
                          point.region, spare_base);
      spare_base += point.region.spare_rows;
    }
    return faults;
  };
}

fault_injector region_exact_fault_injector(std::vector<memory_region> regions,
                                           std::vector<std::uint64_t> counts,
                                           fault_polarity polarity) {
  expects(!regions.empty(), "region injector needs at least one region");
  expects(regions.size() == counts.size(),
          "need exactly one fault count per region");
  return [regions = std::move(regions), counts = std::move(counts),
          polarity](const array_geometry& geometry, rng& gen) {
    std::uint32_t spare_base = checked_region_tile_rows(regions, geometry);
    fault_map faults(geometry);
    for (std::size_t r = 0; r < regions.size(); ++r) {
      const array_geometry sub{regions[r].rows() + regions[r].spare_rows,
                               geometry.width};
      // "Exactly counts[r]" is the contract; silently clamping would
      // let reports claim counts that were never injected.
      expects(counts[r] <= sub.cells(),
              "exact region fault count exceeds the region's cells");
      merge_region_faults(faults,
                          sample_fault_map_exact(sub, counts[r], gen, polarity),
                          regions[r], spare_base);
      spare_base += regions[r].spare_rows;
    }
    return faults;
  };
}

}  // namespace urmem
