#include "urmem/sim/quantizer.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

matrix_quantizer::matrix_quantizer(fixed_point_codec codec) : codec_(codec) {}

std::vector<word_t> matrix_quantizer::to_words(const matrix& m) const {
  std::vector<word_t> words;
  words.reserve(m.rows() * m.cols());
  for (const double v : m.data()) words.push_back(codec_.encode(v));
  return words;
}

matrix matrix_quantizer::from_words(const std::vector<word_t>& words,
                                    std::size_t rows, std::size_t cols) const {
  expects(words.size() == rows * cols, "word count does not match matrix shape");
  matrix out(rows, cols);
  auto data = out.data();
  for (std::size_t i = 0; i < words.size(); ++i) data[i] = codec_.decode(words[i]);
  return out;
}

matrix matrix_quantizer::roundtrip(const matrix& m) const {
  return from_words(to_words(m), m.rows(), m.cols());
}

}  // namespace urmem
