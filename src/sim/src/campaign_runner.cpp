#include "urmem/sim/campaign_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "urmem/common/contracts.hpp"
#include "urmem/common/thread_safety.hpp"

namespace urmem {

namespace {

/// Contiguous [next, end) trial range owned by one worker. The mutex
/// serializes owner claims against thief splits; the fields are atomic
/// so victim-selection can snapshot backlogs without taking locks.
struct shard {
  ts_mutex mutex;
  // Deliberately atomic and NOT guarded_by(mutex): victim selection
  // snapshots them lock-free by design; claims and splits still
  // serialize on the mutex before storing.
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> end{0};
};

/// One campaign in flight: the shards, the body, and the merged
/// bookkeeping. Lives on run()'s stack; workers borrow it.
struct campaign {
  const campaign_runner::worker_trial_body* body = nullptr;
  std::uint64_t seed = 0;
  std::uint64_t batch = 1;
  std::unique_ptr<shard[]> shards;
  unsigned shard_count = 0;
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<bool> cancelled{false};
  ts_mutex error_mutex;
  std::exception_ptr error URMEM_GUARDED_BY(error_mutex);

  void record_error(std::exception_ptr e) {
    const ts_lock_guard lock(error_mutex);
    if (!error) error = std::move(e);
    cancelled.store(true, std::memory_order_relaxed);
  }

  /// First recorded error, if any. The workers have joined (or the pool
  /// has quiesced) by the time run() asks, but the read still goes
  /// through the lock so the guard is unconditional.
  [[nodiscard]] std::exception_ptr first_error() {
    const ts_lock_guard lock(error_mutex);
    return error;
  }
};

/// Claims up to `batch` trials from the front of `s`.
bool claim(shard& s, std::uint64_t batch, std::uint64_t& begin,
           std::uint64_t& end) {
  const ts_lock_guard lock(s.mutex);
  const std::uint64_t next = s.next.load(std::memory_order_relaxed);
  const std::uint64_t limit = s.end.load(std::memory_order_relaxed);
  if (next >= limit) return false;
  begin = next;
  end = std::min(limit, begin + batch);
  s.next.store(end, std::memory_order_relaxed);
  return true;
}

/// Moves half of the fullest foreign backlog into `self`'s drained
/// shard. The refilled shard is claimed batch-wise afterwards (and can
/// itself be stolen from again), so one steal never turns into a
/// monolithic uninterruptible range.
bool steal(campaign& job, unsigned self) {
  // Lock-free snapshot picks the victim; the split is re-checked under
  // the victim's lock.
  unsigned victim = job.shard_count;
  std::uint64_t best = 0;
  for (unsigned i = 0; i < job.shard_count; ++i) {
    if (i == self) continue;
    const shard& s = job.shards[i];
    const std::uint64_t next = s.next.load(std::memory_order_relaxed);
    const std::uint64_t limit = s.end.load(std::memory_order_relaxed);
    const std::uint64_t remaining = limit > next ? limit - next : 0;
    if (remaining > best) {
      best = remaining;
      victim = i;
    }
  }
  if (victim == job.shard_count) return false;

  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  {
    shard& v = job.shards[victim];
    const ts_lock_guard lock(v.mutex);
    const std::uint64_t next = v.next.load(std::memory_order_relaxed);
    const std::uint64_t limit = v.end.load(std::memory_order_relaxed);
    if (next >= limit) return false;
    const std::uint64_t remaining = limit - next;
    begin = next;
    end = begin + (remaining - remaining / 2);  // ceil(half)
    v.next.store(end, std::memory_order_relaxed);
  }
  // Only the owner refills its shard, and it is empty while stealing.
  shard& own = job.shards[self];
  const ts_lock_guard lock(own.mutex);
  own.next.store(begin, std::memory_order_relaxed);
  own.end.store(end, std::memory_order_relaxed);
  return true;
}

/// Worker body: drain own shard in batches, refilling it by stealing,
/// until the campaign is exhausted (or cancelled by a trial exception).
void execute(campaign& job, unsigned self) {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  for (;;) {
    if (job.cancelled.load(std::memory_order_relaxed)) return;
    if (!claim(job.shards[self], job.batch, begin, end)) {
      if (!steal(job, self)) return;
      job.steals.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    job.batches.fetch_add(1, std::memory_order_relaxed);
    try {
      for (std::uint64_t trial = begin; trial < end; ++trial) {
        rng gen = make_stream_rng(job.seed, trial);
        (*job.body)(trial, gen, self);
      }
    } catch (...) {
      job.record_error(std::current_exception());
      return;
    }
  }
}

std::uint64_t auto_batch(std::uint64_t trials, unsigned threads) {
  // Roughly 32 scheduling steps per worker, clamped so micro-trial
  // campaigns (Fig. 5: ~1e7 cheap trials) do not serialize on the locks
  // and heavy-trial campaigns (Fig. 7: retraining) still balance.
  const std::uint64_t target =
      trials / (static_cast<std::uint64_t>(threads) * 32 + 1);
  return std::clamp<std::uint64_t>(target, 1, 4096);
}

}  // namespace

/// Persistent worker pool: workers sleep between campaigns and wake on a
/// generation bump.
struct campaign_runner::pool {
  explicit pool(unsigned workers) {
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads.emplace_back([this, i] { worker_main(i); });
    }
  }

  ~pool() {
    {
      const ts_lock_guard lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (std::thread& t : threads) t.join();
  }

  void run(campaign& job) {
    {
      const ts_lock_guard lock(mutex);
      current = &job;
      ++generation;
      workers_done = 0;
    }
    work_cv.notify_all();
    const ts_lock_guard lock(mutex);
    while (workers_done != threads.size()) done_cv.wait(mutex);
    current = nullptr;
  }

  void worker_main(unsigned id) {
    std::uint64_t seen = 0;
    for (;;) {
      campaign* job = nullptr;
      {
        const ts_lock_guard lock(mutex);
        while (!stopping && generation == seen) work_cv.wait(mutex);
        if (stopping) return;
        seen = generation;
        job = current;
      }
      execute(*job, id);
      {
        const ts_lock_guard lock(mutex);
        if (++workers_done == threads.size()) done_cv.notify_one();
      }
    }
  }

  ts_mutex mutex;
  ts_condition_variable work_cv;
  ts_condition_variable done_cv;
  std::vector<std::thread> threads;
  campaign* current URMEM_GUARDED_BY(mutex) = nullptr;
  std::uint64_t generation URMEM_GUARDED_BY(mutex) = 0;
  std::size_t workers_done URMEM_GUARDED_BY(mutex) = 0;
  bool stopping URMEM_GUARDED_BY(mutex) = false;
};

campaign_runner::campaign_runner(campaign_config config)
    : config_(config) {
  thread_count_ = config.threads != 0
                      ? config.threads
                      : std::max(1u, std::thread::hardware_concurrency());
  if (thread_count_ > 1) pool_ = std::make_unique<pool>(thread_count_);
}

campaign_runner::~campaign_runner() = default;

void campaign_runner::run(std::uint64_t trials, const trial_body& body) {
  expects(static_cast<bool>(body), "campaign needs a trial body");
  run(trials, worker_trial_body([&body](std::uint64_t trial, rng& gen,
                                        unsigned) { body(trial, gen); }));
}

void campaign_runner::run(std::uint64_t trials, const worker_trial_body& body) {
  expects(static_cast<bool>(body), "campaign needs a trial body");
  last_stats_ = campaign_stats{};
  last_stats_.threads = thread_count_;
  if (trials == 0) return;

  campaign job;
  job.body = &body;
  job.seed = config_.seed;
  job.batch = config_.batch_size != 0 ? config_.batch_size
                                      : auto_batch(trials, thread_count_);
  job.shard_count = thread_count_;
  job.shards = std::make_unique<shard[]>(thread_count_);
  // Even contiguous pre-split; the remainder spreads over the low shards.
  const std::uint64_t quota = trials / thread_count_;
  const std::uint64_t extra = trials % thread_count_;
  std::uint64_t cursor = 0;
  for (unsigned i = 0; i < thread_count_; ++i) {
    job.shards[i].next = cursor;
    cursor += quota + (i < extra ? 1 : 0);
    job.shards[i].end = cursor;
  }

  if (pool_ != nullptr) {
    pool_->run(job);
  } else {
    execute(job, 0);
  }

  last_stats_.trials = trials;
  last_stats_.batches = job.batches.load(std::memory_order_relaxed);
  last_stats_.steals = job.steals.load(std::memory_order_relaxed);
  if (std::exception_ptr e = job.first_error()) std::rethrow_exception(e);
}

empirical_cdf campaign_runner::map_weighted(
    std::uint64_t trials,
    const std::function<weighted_sample(std::uint64_t, rng&)>& fn) {
  expects(static_cast<bool>(fn), "campaign needs a sampling body");
  expects(trials > 0, "a weighted campaign needs at least one trial");
  std::vector<weighted_sample> samples(trials);
  run(trials, [&samples, &fn](std::uint64_t trial, rng& gen) {
    samples[trial] = fn(trial, gen);
  });
  std::vector<double> values;
  std::vector<double> weights;
  values.reserve(trials);
  weights.reserve(trials);
  for (const weighted_sample& s : samples) {
    values.push_back(s.value);
    weights.push_back(s.weight);
  }
  return empirical_cdf(std::move(values), std::move(weights));
}

empirical_cdf campaign_runner::run_weighted(std::uint64_t trials,
                                            const sampling_body& body) {
  expects(static_cast<bool>(body), "campaign needs a sampling body");
  // Per-worker flat buffers (reused scratch per trial) keep the memory
  // and allocation count flat even for 1e7-trial micro-campaigns.
  struct tagged_sample {
    std::uint64_t trial;
    weighted_sample sample;
  };
  std::vector<std::vector<tagged_sample>> buffers(thread_count_);
  std::vector<std::vector<weighted_sample>> scratch(thread_count_);
  run(trials, worker_trial_body([&](std::uint64_t trial, rng& gen,
                                    unsigned worker) {
    std::vector<weighted_sample>& out = scratch[worker];
    out.clear();
    body(trial, gen, out);
    for (const weighted_sample& s : out) buffers[worker].push_back({trial, s});
  }));

  // Merge in trial order. Every trial runs on exactly one worker, so its
  // samples sit contiguously (in emission order) in one buffer; a stable
  // sort by trial index therefore yields a schedule-independent order,
  // and with it bit-identical floating-point accumulation.
  std::size_t total = 0;
  for (const auto& buffer : buffers) total += buffer.size();
  ensures(total > 0, "campaign emitted no samples");
  std::vector<tagged_sample> merged;
  merged.reserve(total);
  for (auto& buffer : buffers) {
    merged.insert(merged.end(), buffer.begin(), buffer.end());
    buffer.clear();
    buffer.shrink_to_fit();
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const tagged_sample& a, const tagged_sample& b) {
                     return a.trial < b.trial;
                   });

  std::vector<double> values;
  std::vector<double> weights;
  values.reserve(total);
  weights.reserve(total);
  for (const tagged_sample& s : merged) {
    values.push_back(s.sample.value);
    weights.push_back(s.sample.weight);
  }
  return empirical_cdf(std::move(values), std::move(weights));
}

}  // namespace urmem
