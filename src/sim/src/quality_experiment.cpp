#include "urmem/sim/quality_experiment.hpp"

#include <algorithm>
#include <cmath>

#include "urmem/common/binomial.hpp"
#include "urmem/common/contracts.hpp"

namespace urmem {

std::uint64_t failure_count_limit(const quality_experiment_config& config) {
  // Nmax is defined over the data-array cell count of one tile (the
  // scheme-specific parity columns only shift it marginally).
  const array_geometry geometry{config.storage.rows_per_tile,
                                config.storage.word_bits};
  const binomial_distribution dist(geometry.cells(), config.pcell);
  return std::max<std::uint64_t>(1, dist.quantile(config.coverage));
}

quality_result run_quality_experiment(const application& app,
                                      const scheme_factory& factory,
                                      const std::string& scheme_name,
                                      const quality_experiment_config& config) {
  expects(config.samples_per_count >= 1, "need at least one sample per count");
  expects(config.pcell > 0.0 && config.pcell < 1.0, "pcell must be in (0,1)");

  rng gen(config.seed);

  // Fault-free baseline: quantization round trip only.
  const matrix clean_stored =
      store_and_readback(app.train_features(), config.storage, factory,
                         no_fault_injector(), gen);
  const double clean_metric = app.evaluate(clean_stored);
  ensures(std::isfinite(clean_metric) && clean_metric != 0.0,
          "clean baseline metric must be finite and nonzero");

  const std::uint64_t n_max = failure_count_limit(config);
  const array_geometry geometry{config.storage.rows_per_tile,
                                config.storage.word_bits};
  const binomial_distribution dist(geometry.cells(), config.pcell);

  std::vector<double> values;
  std::vector<double> weights;
  values.reserve(n_max * config.samples_per_count);
  weights.reserve(n_max * config.samples_per_count);

  for (std::uint64_t n = 1; n <= n_max; ++n) {
    const double pn = dist.pmf(n);
    if (pn <= 0.0) continue;
    const double weight_each = pn / config.samples_per_count;
    const fault_injector inject = exact_fault_injector(n, config.polarity);
    for (std::uint32_t s = 0; s < config.samples_per_count; ++s) {
      const matrix stored = store_and_readback(app.train_features(),
                                               config.storage, factory, inject, gen);
      const double metric = app.evaluate(stored);
      const double normalized =
          std::clamp(std::isfinite(metric) ? metric / clean_metric : 0.0, 0.0, 1.0);
      values.push_back(normalized);
      weights.push_back(weight_each);
    }
  }
  ensures(!values.empty(), "no quality samples were produced");

  quality_result result;
  result.scheme_name = scheme_name;
  result.clean_metric = clean_metric;
  result.cdf = empirical_cdf(std::move(values), std::move(weights));
  return result;
}

}  // namespace urmem
