#include "urmem/sim/quality_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "urmem/common/binomial.hpp"
#include "urmem/common/contracts.hpp"

namespace urmem {

std::uint64_t failure_count_limit(const quality_experiment_config& config) {
  // Nmax is defined over the data-array cell count of one tile (the
  // scheme-specific parity columns only shift it marginally).
  const array_geometry geometry{config.storage.rows_per_tile,
                                config.storage.word_bits};
  const binomial_distribution dist(geometry.cells(), config.pcell);
  return std::max<std::uint64_t>(1, dist.quantile(config.coverage));
}

quality_result run_quality_experiment(const application& app,
                                      const scheme_factory& factory,
                                      const std::string& scheme_name,
                                      const quality_experiment_config& config,
                                      campaign_runner& runner) {
  expects(config.samples_per_count >= 1, "need at least one sample per count");
  expects(config.pcell > 0.0 && config.pcell < 1.0, "pcell must be in (0,1)");

  // Fault-free baseline: quantization round trip only, on a reserved
  // named stream outside the numbered trial range (the shared
  // seed-derivation policy of rng.hpp — no per-binary magic constants).
  rng baseline_gen = named_stream_rng(runner.seed(), "quality.baseline");
  const matrix clean_stored =
      store_and_readback(app.train_features(), config.storage, factory,
                         no_fault_injector(), baseline_gen);
  const double clean_metric = app.evaluate(clean_stored);
  ensures(std::isfinite(clean_metric) && clean_metric != 0.0,
          "clean baseline metric must be finite and nonzero");

  const std::uint64_t n_max = failure_count_limit(config);
  const array_geometry geometry{config.storage.rows_per_tile,
                                config.storage.word_bits};
  const binomial_distribution dist(geometry.cells(), config.pcell);

  // Strata with positive binomial mass; each contributes
  // samples_per_count trials weighted Pr(N = n) / samples_per_count.
  struct stratum {
    std::uint64_t n;
    double weight_each;
  };
  std::vector<stratum> strata;
  strata.reserve(n_max);
  for (std::uint64_t n = 1; n <= n_max; ++n) {
    const double pn = dist.pmf(n);
    if (pn <= 0.0) continue;
    strata.push_back({n, pn / config.samples_per_count});
  }
  ensures(!strata.empty(), "no failure-count stratum has positive mass");

  const std::uint64_t trials = strata.size() * config.samples_per_count;
  empirical_cdf cdf = runner.map_weighted(
      trials, [&](std::uint64_t trial, rng& gen) -> weighted_sample {
        const stratum& s = strata[trial / config.samples_per_count];
        const fault_injector inject =
            exact_fault_injector(s.n, config.polarity);
        const matrix stored = store_and_readback(app.train_features(),
                                                 config.storage, factory,
                                                 inject, gen);
        const double metric = app.evaluate(stored);
        const double normalized = std::clamp(
            std::isfinite(metric) ? metric / clean_metric : 0.0, 0.0, 1.0);
        return {normalized, s.weight_each};
      });

  quality_result result;
  result.scheme_name = scheme_name;
  result.clean_metric = clean_metric;
  result.cdf = std::move(cdf);
  return result;
}

quality_result run_quality_experiment(const application& app,
                                      const scheme_factory& factory,
                                      const std::string& scheme_name,
                                      const quality_experiment_config& config) {
  campaign_runner runner({.threads = config.threads,
                          .batch_size = config.batch_size,
                          .seed = config.seed});
  return run_quality_experiment(app, factory, scheme_name, config, runner);
}

}  // namespace urmem
