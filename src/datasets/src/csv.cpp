#include "urmem/datasets/csv.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

std::vector<std::string> split_line(const std::string& line, char separator) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, separator)) cells.push_back(cell);
  if (!line.empty() && line.back() == separator) cells.emplace_back();
  return cells;
}

double parse_cell(const std::string& cell, std::size_t line_no) {
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::logic_error&) {
    throw std::invalid_argument("csv: non-numeric cell '" + cell + "' at line " +
                                std::to_string(line_no));
  }
  // Allow trailing whitespace only.
  for (std::size_t i = consumed; i < cell.size(); ++i) {
    expects(std::isspace(static_cast<unsigned char>(cell[i])) != 0,
            "non-numeric cell at line " + std::to_string(line_no));
  }
  return value;
}

}  // namespace

dataset read_csv(std::istream& in, const csv_options& options) {
  std::string line;
  std::size_t line_no = 0;
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto cells = split_line(line, options.separator);
    if (line_no == 1 && options.has_header) {
      header = cells;
      continue;
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& cell : cells) row.push_back(parse_cell(cell, line_no));
    if (!rows.empty()) {
      expects(row.size() == rows.front().size(),
              "ragged csv row at line " + std::to_string(line_no));
    }
    rows.push_back(std::move(row));
  }
  expects(!rows.empty(), "csv contains no data rows");

  const auto n_cols = rows.front().size();
  expects(n_cols >= 2, "csv needs at least one feature and one target column");
  int target = options.target_column;
  if (target < 0) target += static_cast<int>(n_cols);
  expects(target >= 0 && target < static_cast<int>(n_cols),
          "target column out of range");
  const auto target_idx = static_cast<std::size_t>(target);

  dataset data;
  data.name = "csv";
  data.features = matrix(rows.size(), n_cols - 1);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::size_t out_c = 0;
    for (std::size_t c = 0; c < n_cols; ++c) {
      if (c == target_idx) continue;
      data.features(r, out_c++) = rows[r][c];
    }
    if (options.target_is_label) {
      data.labels.push_back(static_cast<int>(std::llround(rows[r][target_idx])));
    } else {
      data.targets.push_back(rows[r][target_idx]);
    }
  }
  if (!header.empty() && header.size() == n_cols) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      if (c != target_idx) data.feature_names.push_back(header[c]);
    }
  }
  data.validate();
  return data;
}

dataset read_csv_file(const std::string& path, const csv_options& options) {
  std::ifstream in(path);
  expects(in.good(), "cannot open csv file: " + path);
  return read_csv(in, options);
}

void write_csv(std::ostream& out, const dataset& data, char separator) {
  data.validate();
  const bool has_target = !data.targets.empty() || !data.labels.empty();
  for (std::size_t c = 0; c < data.dimension(); ++c) {
    if (c > 0) out << separator;
    if (c < data.feature_names.size()) {
      out << data.feature_names[c];
    } else {
      out << 'f' << c;
    }
  }
  if (has_target) out << separator << (data.labels.empty() ? "target" : "label");
  out << '\n';
  for (std::size_t r = 0; r < data.size(); ++r) {
    for (std::size_t c = 0; c < data.dimension(); ++c) {
      if (c > 0) out << separator;
      out << data.features(r, c);
    }
    if (!data.labels.empty()) out << separator << data.labels[r];
    else if (!data.targets.empty()) out << separator << data.targets[r];
    out << '\n';
  }
}

}  // namespace urmem
