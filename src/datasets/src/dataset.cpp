#include "urmem/datasets/dataset.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

void dataset::validate() const {
  expects(!features.empty(), "dataset has no features");
  expects(targets.empty() || targets.size() == features.rows(),
          "target count must match feature rows");
  expects(labels.empty() || labels.size() == features.rows(),
          "label count must match feature rows");
  expects(feature_names.empty() || feature_names.size() == features.cols(),
          "feature name count must match feature columns");
}

}  // namespace urmem
