#include <algorithm>
#include <cmath>

#include "urmem/common/contracts.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/datasets/generators.hpp"

namespace urmem {

dataset make_image_like(const image_like_config& config) {
  expects(config.width >= 8 && config.height >= 8,
          "image must be at least 8x8");
  rng gen(config.seed);

  dataset data;
  data.name = "image-like";
  data.features = matrix(config.height, config.width);

  // Random low-frequency cosine components give natural-image-like
  // spatial correlation; amplitudes fall off with frequency.
  struct wave {
    double fx, fy, phase, amplitude;
  };
  std::vector<wave> waves(config.waves);
  for (std::size_t k = 0; k < config.waves; ++k) {
    const double freq_scale = 1.0 + static_cast<double>(k);
    waves[k] = {gen.uniform() * 6.283 * freq_scale / static_cast<double>(config.width),
                gen.uniform() * 6.283 * freq_scale / static_cast<double>(config.height),
                gen.uniform() * 6.283, 60.0 / freq_scale};
  }
  const double gx = (gen.uniform() - 0.5) * 60.0 / static_cast<double>(config.width);
  const double gy = (gen.uniform() - 0.5) * 60.0 / static_cast<double>(config.height);

  for (std::size_t y = 0; y < config.height; ++y) {
    for (std::size_t x = 0; x < config.width; ++x) {
      double v = 128.0 + gx * static_cast<double>(x) + gy * static_cast<double>(y);
      for (const wave& w : waves) {
        v += w.amplitude * std::cos(w.fx * static_cast<double>(x) +
                                    w.fy * static_cast<double>(y) + w.phase);
      }
      v += config.texture_noise * gen.normal();
      data.features(y, x) = std::clamp(v, 0.0, 255.0);
    }
  }
  data.validate();
  return data;
}

}  // namespace urmem
