#include <cmath>
#include <vector>

#include "urmem/common/contracts.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/datasets/generators.hpp"

namespace urmem {

dataset make_madelon_like(const madelon_like_config& config) {
  expects(config.samples >= 10, "madelon_like needs at least 10 samples");
  expects(config.informative >= 1, "need at least one informative feature");
  rng gen(config.seed);

  const std::size_t p =
      config.informative + config.redundant + config.noise_features;
  dataset data;
  data.name = "madelon-like";
  data.features = matrix(config.samples, p);
  data.labels.resize(config.samples);

  // The Madelon recipe [19]: class clusters sit on the vertices of a
  // hypercube in the informative subspace. With 2^informative vertices,
  // alternating vertex parity assigns the two classes (XOR-like, so no
  // single feature is predictive on its own).
  const std::size_t vertices = std::size_t{1} << std::min<std::size_t>(
                                   config.informative, 10);

  // Redundant features are fixed random linear combinations of the
  // informative ones (the same mixing matrix for every sample).
  matrix mixing(config.informative, config.redundant > 0 ? config.redundant : 1);
  for (std::size_t i = 0; i < mixing.rows(); ++i) {
    for (std::size_t j = 0; j < mixing.cols(); ++j) mixing(i, j) = gen.normal();
  }

  std::vector<double> informative(config.informative);
  for (std::size_t s = 0; s < config.samples; ++s) {
    const std::size_t vertex = gen.uniform_below(vertices);
    int parity = 0;
    for (std::size_t d = 0; d < config.informative; ++d) {
      const bool high = ((vertex >> d) & 1u) != 0;
      parity ^= high ? 1 : 0;
      informative[d] = (high ? config.cluster_sep : -config.cluster_sep) +
                       config.cluster_std * gen.normal();
      data.features(s, d) = informative[d];
    }
    data.labels[s] = parity;

    for (std::size_t j = 0; j < config.redundant; ++j) {
      double acc = 0.0;
      for (std::size_t d = 0; d < config.informative; ++d) {
        acc += informative[d] * mixing(d, j);
      }
      // Normalize so redundant features keep a comparable scale.
      data.features(s, config.informative + j) =
          acc / std::sqrt(static_cast<double>(config.informative));
    }
    for (std::size_t j = 0; j < config.noise_features; ++j) {
      data.features(s, config.informative + config.redundant + j) = gen.normal();
    }
  }
  data.validate();
  return data;
}

}  // namespace urmem
