#include <array>
#include <cmath>

#include "urmem/common/contracts.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/datasets/generators.hpp"

namespace urmem {

namespace {

/// Accelerometer window signatures (mean_x/y/z in g, std_x/y/z) per
/// activity, in the spirit of the wearable walking-pattern data of
/// ref. [20]. Means separate the postures; stds separate the dynamic
/// activities from the static ones.
struct activity_signature {
  const char* name;
  std::array<double, 3> mean;  // gravity projection per axis
  std::array<double, 3> std;   // motion intensity per axis
};

constexpr activity_signature k_activities[] = {
    {"working_at_computer", {0.02, 0.95, 0.28}, {0.03, 0.04, 0.03}},
    {"standing", {0.05, 1.00, 0.05}, {0.05, 0.06, 0.05}},
    {"walking", {0.10, 0.98, 0.12}, {0.28, 0.35, 0.30}},
    {"going_up_down_stairs", {0.18, 0.92, 0.20}, {0.38, 0.48, 0.42}},
    {"walking_and_talking", {0.08, 0.97, 0.15}, {0.22, 0.30, 0.26}},
};

}  // namespace

dataset make_har_like(const har_like_config& config) {
  expects(config.samples >= 10, "har_like needs at least 10 samples");
  expects(config.classes >= 2 && config.classes <= std::size(k_activities),
          "har_like supports 2..5 classes");
  rng gen(config.seed);

  dataset data;
  data.name = "har-like";
  data.features = matrix(config.samples, 6);
  data.labels.resize(config.samples);
  data.feature_names = {"mean_x", "mean_y", "mean_z",
                        "std_x",  "std_y",  "std_z"};

  for (std::size_t i = 0; i < config.samples; ++i) {
    const auto cls = static_cast<std::size_t>(gen.uniform_below(config.classes));
    const activity_signature& sig = k_activities[cls];
    data.labels[i] = static_cast<int>(cls);
    for (std::size_t axis = 0; axis < 3; ++axis) {
      // Window mean: signature plus sensor placement / posture jitter.
      data.features(i, axis) =
          sig.mean[axis] + 0.06 * config.within_class_std * gen.normal();
      // Window std: strictly positive, log-normal-ish around the
      // signature intensity.
      const double jitter =
          std::exp(0.25 * config.within_class_std * gen.normal());
      data.features(i, 3 + axis) = sig.std[axis] * jitter;
    }
  }
  data.validate();
  return data;
}

}  // namespace urmem
