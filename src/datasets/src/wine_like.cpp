#include <algorithm>
#include <cmath>

#include "urmem/common/contracts.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/datasets/generators.hpp"

namespace urmem {

namespace {

/// Mean and standard deviation of each physicochemical feature, matched
/// to the red-wine subset of the UCI Wine Quality data [18].
struct feature_stats {
  const char* name;
  double mean;
  double std;
  double min;
  double max;
};

constexpr feature_stats k_features[] = {
    {"fixed_acidity", 8.32, 1.74, 4.6, 15.9},
    {"volatile_acidity", 0.53, 0.18, 0.12, 1.58},
    {"citric_acid", 0.27, 0.19, 0.0, 1.0},
    {"residual_sugar", 2.54, 1.41, 0.9, 15.5},
    {"chlorides", 0.087, 0.047, 0.012, 0.611},
    {"free_sulfur_dioxide", 15.87, 10.46, 1.0, 72.0},
    {"total_sulfur_dioxide", 46.47, 32.9, 6.0, 289.0},
    {"density", 0.9967, 0.0019, 0.990, 1.004},
    {"ph", 3.31, 0.15, 2.74, 4.01},
    {"sulphates", 0.66, 0.17, 0.33, 2.0},
    {"alcohol", 10.42, 1.07, 8.4, 14.9},
};
constexpr std::size_t k_feature_count = std::size(k_features);

}  // namespace

dataset make_wine_like(const wine_like_config& config) {
  expects(config.samples >= 10, "wine_like needs at least 10 samples");
  rng gen(config.seed);

  dataset data;
  data.name = "wine-like";
  data.features = matrix(config.samples, k_feature_count);
  data.targets.resize(config.samples);
  for (const feature_stats& f : k_features) data.feature_names.emplace_back(f.name);

  for (std::size_t i = 0; i < config.samples; ++i) {
    // Latent factors reproduce the dominant correlations of the real
    // data: ripeness drives acidity down / alcohol up; sulfur dioxide
    // levels move together; density follows sugar and (inversely)
    // alcohol.
    const double ripeness = gen.normal();
    const double sulfur = gen.normal();

    double z[k_feature_count];
    z[0] = 0.5 * ripeness + 0.87 * gen.normal();              // fixed acidity
    z[1] = -0.45 * ripeness + 0.89 * gen.normal();            // volatile acidity
    z[2] = 0.55 * ripeness + 0.6 * gen.normal();              // citric acid
    z[3] = 0.3 * gen.normal() + 0.2 * sulfur + gen.normal() * 0.8;  // sugar
    z[4] = 0.2 * gen.normal() + 0.9 * gen.normal();           // chlorides
    z[5] = 0.85 * sulfur + 0.53 * gen.normal();               // free SO2
    z[6] = 0.9 * sulfur + 0.44 * gen.normal();                // total SO2
    const double alcohol_z = 0.4 * ripeness + 0.92 * gen.normal();
    z[10] = alcohol_z;                                        // alcohol
    z[7] = 0.45 * z[3] - 0.5 * alcohol_z + 0.55 * gen.normal();  // density
    z[8] = -0.5 * z[0] + 0.75 * gen.normal();                 // pH vs acidity
    z[9] = 0.25 * ripeness + 0.9 * gen.normal();              // sulphates

    for (std::size_t j = 0; j < k_feature_count; ++j) {
      const feature_stats& f = k_features[j];
      data.features(i, j) = std::clamp(f.mean + f.std * z[j], f.min, f.max);
    }

    // Quality: the sparse ground truth of the UCI study — alcohol up,
    // volatile acidity down, sulphates up, chlorides slightly down —
    // plus taste-panel noise, rounded to the 3..8 score range.
    const double score = 5.62 + 0.95 * z[10] - 0.70 * z[1] + 0.42 * z[9] -
                         0.18 * z[4] - 0.12 * z[6] +
                         config.noise * gen.normal();
    data.targets[i] = std::clamp(std::round(score), 3.0, 8.0);
  }
  data.validate();
  return data;
}

}  // namespace urmem
