// CSV import/export so the benchmark pipeline can also run on the real
// UCI datasets when available (the synthetic generators are drop-in
// substitutes; see DESIGN.md §4).
#pragma once

#include <iosfwd>
#include <string>

#include "urmem/datasets/dataset.hpp"

namespace urmem {

/// CSV parsing options.
struct csv_options {
  char separator = ',';
  bool has_header = true;
  /// Column index holding the target/label; negative counts from the
  /// end (-1 = last column). The remaining columns become features.
  int target_column = -1;
  /// Interpret the target column as integer class labels instead of
  /// regression targets.
  bool target_is_label = false;
};

/// Parses a dataset from a stream. Throws std::invalid_argument on
/// malformed input (ragged rows, non-numeric cells).
[[nodiscard]] dataset read_csv(std::istream& in, const csv_options& options = {});

/// Parses a dataset from a file path.
[[nodiscard]] dataset read_csv_file(const std::string& path,
                                    const csv_options& options = {});

/// Writes features + target/label column (if any) with a header row.
void write_csv(std::ostream& out, const dataset& data, char separator = ',');

}  // namespace urmem
