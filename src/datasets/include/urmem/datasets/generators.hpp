// Synthetic dataset generators standing in for the UCI datasets of the
// paper's Table 1 (see DESIGN.md §4 for the substitution argument).
//
// All generators are fully deterministic in their seed, so experiments
// are reproducible and the train/test partition is identical across
// protection schemes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "urmem/datasets/dataset.hpp"

namespace urmem {

/// Wine-quality-style regression data (ref. [18]): 11 physicochemical
/// features with realistic ranges and cross-correlations; the quality
/// score 3..8 is a sparse noisy function of a few of them (alcohol,
/// volatile acidity, sulphates, ...), which is exactly the structure
/// elastic net exploits.
struct wine_like_config {
  std::size_t samples = 1599;  ///< red-wine subset size
  double noise = 0.55;         ///< score noise std-dev before rounding
  std::uint64_t seed = 2015;
};
[[nodiscard]] dataset make_wine_like(const wine_like_config& config = {});

/// Madelon-style feature-selection data (ref. [19], NIPS 2003): points
/// in clusters on the vertices of a hypercube in `informative`
/// dimensions, `redundant` random linear combinations of them, and pure
/// Gaussian noise features. The spectrum (few strong directions over a
/// noise floor) drives the PCA explained-variance behaviour. Scaled
/// down from the original 500 features for tractable Monte-Carlo.
struct madelon_like_config {
  std::size_t samples = 500;
  std::size_t informative = 5;
  std::size_t redundant = 15;
  std::size_t noise_features = 40;  ///< 60 features total: the informative+
                                    ///< redundant block must carry a
                                    ///< meaningful variance share for the
                                    ///< explained-variance metric
  double cluster_sep = 2.5;  ///< hypercube half-side in feature units
  double cluster_std = 1.0;
  std::uint64_t seed = 2003;
};
[[nodiscard]] dataset make_madelon_like(const madelon_like_config& config = {});

/// Natural-image-style pixel data — the multimedia context in which the
/// P-ECC baseline was originally proposed (refs. [4, 12]: JPEG2000 /
/// H.264 frame memories, PSNR metric). A smooth 2-D random field
/// (sum of low-frequency cosines + gradient) with mild texture noise,
/// intensities in [0, 255].
struct image_like_config {
  std::size_t width = 96;
  std::size_t height = 96;
  std::size_t waves = 6;       ///< low-frequency components
  double texture_noise = 4.0;  ///< high-frequency detail std-dev (intensity)
  std::uint64_t seed = 264;
};
/// The returned dataset's `features` matrix is the height x width image.
[[nodiscard]] dataset make_image_like(const image_like_config& config = {});

/// Activity-recognition-style classification data (ref. [20]):
/// accelerometer window statistics (mean and std per axis) for five
/// activities with per-class signatures and realistic within-class
/// spread; KNN separates the clusters with high (but not perfect)
/// accuracy.
struct har_like_config {
  std::size_t samples = 1500;
  std::size_t classes = 5;
  double within_class_std = 1.0;  ///< relative spread multiplier
  std::uint64_t seed = 1501;
};
[[nodiscard]] dataset make_har_like(const har_like_config& config = {});

}  // namespace urmem
