// Dataset container shared by the three evaluation applications
// (paper Table 1).
#pragma once

#include <string>
#include <vector>

#include "urmem/ml/matrix.hpp"

namespace urmem {

/// A feature matrix with either regression targets or class labels.
struct dataset {
  std::string name;
  matrix features;                         ///< n x p
  std::vector<double> targets;             ///< regression (may be empty)
  std::vector<int> labels;                 ///< classification (may be empty)
  std::vector<std::string> feature_names;  ///< size p (may be empty)

  [[nodiscard]] std::size_t size() const { return features.rows(); }
  [[nodiscard]] std::size_t dimension() const { return features.cols(); }

  /// Throws when internal sizes disagree.
  void validate() const;
};

}  // namespace urmem
