#include "urmem/lifecycle/lifecycle_manager.hpp"

#include <utility>

#include "urmem/common/contracts.hpp"

namespace urmem {

std::string_view to_string(degrade_policy policy) {
  switch (policy) {
    case degrade_policy::mark: return "mark";
    case degrade_policy::remap: return "remap";
    case degrade_policy::failstop: return "failstop";
  }
  return "?";
}

std::optional<degrade_policy> parse_degrade_policy(std::string_view name) {
  if (name == "mark") return degrade_policy::mark;
  if (name == "remap") return degrade_policy::remap;
  if (name == "failstop") return degrade_policy::failstop;
  return std::nullopt;
}

lifecycle_counters& lifecycle_counters::operator+=(
    const lifecycle_counters& other) {
  epochs += other.epochs;
  injected_faults += other.injected_faults;
  scrub_passes += other.scrub_passes;
  rows_scrubbed += other.rows_scrubbed;
  corrected_rewrites += other.corrected_rewrites;
  ce_retirements += other.ce_retirements;
  ue_detected += other.ue_detected;
  read_retries += other.read_retries;
  retry_successes += other.retry_successes;
  ue_retirements += other.ue_retirements;
  pool_exhausted += other.pool_exhausted;
  cross_region_remaps += other.cross_region_remaps;
  marked_rows += other.marked_rows;
  failstops += other.failstops;
  return *this;
}

lifecycle_manager::lifecycle_manager(protected_memory& memory,
                                     fault_timeline timeline,
                                     scrub_config scrub, retire_config retire)
    : memory_(memory),
      timeline_(std::move(timeline)),
      scrubber_(scrub),
      retire_(retire),
      marked_(memory.rows(), false) {
  expects(timeline_.geometry() == memory.storage_geometry(),
          "timeline geometry must match the memory's storage geometry");
  expects(retire.reliable_region < memory.regions().size(),
          "retire.reliable_region out of range");
}

bool lifecycle_manager::step() {
  if (!advance_epoch()) return false;
  if (!scrub_due()) return true;
  findings_.clear();
  run_scrub_pass(findings_);
  return apply_findings(findings_);
}

bool lifecycle_manager::advance_epoch() {
  if (failed_) return false;
  counters_.injected_faults += timeline_.advance();
  // In-place map swap: remaps, stored data and the scheme configuration
  // all survive — only the injected reality moves.
  memory_.update_fault_map(timeline_.current());
  ++counters_.epochs;
  return true;
}

bool lifecycle_manager::scrub_due() const {
  return scrubber_.due(timeline_.epoch());
}

scrub_pass_stats lifecycle_manager::run_scrub_pass(
    std::vector<scrub_finding>& findings, const scrub_hooks* hooks) {
  const scrub_pass_stats stats = scrubber_.pass(memory_, findings, hooks);
  ++counters_.scrub_passes;
  counters_.rows_scrubbed += stats.rows_scanned;
  counters_.corrected_rewrites += stats.corrected_rewrites;
  return stats;
}

bool lifecycle_manager::apply_findings(
    const std::vector<scrub_finding>& findings) {
  if (failed_) return false;
  for (const scrub_finding& finding : findings) {
    // Marked rows are known-corrupt and deliberately served as-is; no
    // spare or retry is spent on them again.
    if (marked_[finding.row]) continue;
    if (finding.correctable) {
      retire_correctable(finding.row, finding.result.data);
    } else {
      handle_uncorrectable(finding.row, finding.result.data);
      if (failed_) return false;
    }
  }
  return true;
}

void lifecycle_manager::retire_correctable(std::uint32_t row, word_t data) {
  if (!scrubber_.config().retire_correctable) return;
  const word_t payload = data_source_ ? data_source_(row) : data;
  // A pool-dry correctable row is benign: it keeps being rewritten in
  // place by later passes, so no counter marks the miss.
  if (memory_.retire_row(row, payload)) ++counters_.ce_retirements;
}

void lifecycle_manager::handle_uncorrectable(std::uint32_t row, word_t data) {
  ++counters_.ue_detected;
  // Raw retries through the intermittent model: the pristine stored
  // codeword re-corrupted with re-rolled intermittent activity. A retry
  // decodes exactly when the offending cell sat out that attempt.
  const std::uint32_t physical = memory_.physical_row_of(row);
  const word_t stored = memory_.raw_storage_word(row);
  for (std::uint32_t attempt = 1; attempt <= retire_.max_retries; ++attempt) {
    ++counters_.read_retries;
    const word_t raw = timeline_.corrupt_read(physical, stored, attempt);
    const read_result retried = memory_.scheme().decode(row, raw);
    if (retried.status == ecc_status::detected_uncorrectable) continue;
    ++counters_.retry_successes;
    // The data survived after all: restore the codeword and treat the
    // row like a flagged correctable one.
    memory_.write(row, data_source_ ? data_source_(row) : retried.data);
    retire_correctable(row, retried.data);
    return;
  }
  // Hard uncorrectable. `data` (the decoder's best estimate — or the
  // installed data source's authoritative word) is what moves; in the
  // standalone study whatever bits the faults destroyed are gone
  // either way.
  const word_t payload = data_source_ ? data_source_(row) : data;
  if (memory_.retire_row(row, payload)) {
    ++counters_.ue_retirements;
    return;
  }
  ++counters_.pool_exhausted;
  switch (retire_.policy) {
    case degrade_policy::remap:
      if (memory_.retire_row_to_region(row, retire_.reliable_region, payload)) {
        ++counters_.ue_retirements;
        ++counters_.cross_region_remaps;
        return;
      }
      [[fallthrough]];  // the reliable pool is dry too: degrade to mark
    case degrade_policy::mark:
      marked_[row] = true;
      ++counters_.marked_rows;
      return;
    case degrade_policy::failstop:
      failed_ = true;
      failstop_epoch_ = timeline_.epoch();
      ++counters_.failstops;
      return;
  }
}

}  // namespace urmem
