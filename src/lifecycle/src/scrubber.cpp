#include "urmem/lifecycle/scrubber.hpp"

#include <algorithm>

namespace urmem {

scrub_pass_stats scrubber::pass(protected_memory& memory,
                                std::vector<scrub_finding>& findings,
                                const scrub_hooks* hooks) {
  scrub_pass_stats stats;
  const std::uint32_t rows = memory.rows();
  const std::uint32_t budget =
      config_.rows_per_pass == 0 ? rows : std::min(config_.rows_per_pass, rows);
  for (std::uint32_t i = 0; i < budget; ++i) {
    const std::uint32_t row = cursor_;
    cursor_ = cursor_ + 1 == rows ? 0 : cursor_ + 1;
    if (hooks != nullptr && hooks->lock_row) hooks->lock_row(row);
    const read_result r = memory.read(row);
    if (r.status == ecc_status::corrected) {
      // Rewrite restores the full code distance on the (possibly
      // remapped) storage row; stuck cells re-corrupt on the next
      // read, but the codeword itself is whole again.
      memory.write(row, hooks != nullptr && hooks->rewrite_word
                           ? hooks->rewrite_word(row, r.data)
                           : r.data);
    }
    if (hooks != nullptr && hooks->unlock_row) hooks->unlock_row(row);
    ++stats.rows_scanned;
    switch (r.status) {
      case ecc_status::clean:
        ++stats.clean_rows;
        break;
      case ecc_status::corrected:
        ++stats.corrected_rewrites;
        findings.push_back(scrub_finding{row, r, true});
        break;
      case ecc_status::detected_uncorrectable:
        ++stats.uncorrectable_rows;
        findings.push_back(scrub_finding{row, r, false});
        break;
    }
  }
  return stats;
}

}  // namespace urmem
