#include "urmem/lifecycle/fault_timeline.hpp"

#include <algorithm>
#include <utility>

#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

constexpr bool cell_before(const timeline_fault& a, const timeline_fault& b) {
  return a.f.row != b.f.row ? a.f.row < b.f.row : a.f.col < b.f.col;
}

}  // namespace

fault_timeline::fault_timeline(array_geometry geometry, timeline_config config)
    : geometry_(geometry),
      config_(config),
      arrivals_gen_(make_stream_rng(config.seed, stream_tag("lifecycle.arrivals"))),
      activity_seed_(splitmix64(config.seed ^ stream_tag("lifecycle.activity"))),
      persistent_map_(geometry),
      intermittent_map_(geometry),
      current_(geometry) {
  expects(geometry.cells() > 0, "fault timeline needs a non-empty array");
}

fault_timeline::fault_timeline(fault_map initial, timeline_config config)
    : fault_timeline(initial.geometry(), config) {
  for (const fault& f : initial.all_faults()) {
    persistent_.push_back(timeline_fault{f, 0, false});
  }
  persistent_map_ = std::move(initial);
  expects(persistent_.size() + config.intermittent_cells <= geometry_.cells(),
          "intermittent population does not fit the healthy cells");
  // The intermittent population is fixed for the part's life: drawn once
  // here (its own stream, so arrival draws never shift it), on distinct
  // cells disjoint from every manufactured fault.
  rng gen = make_stream_rng(config.seed, stream_tag("lifecycle.intermittent"));
  while (intermittent_.size() < config.intermittent_cells) {
    const std::uint64_t pick = gen.uniform_below(geometry_.cells());
    const auto row = static_cast<std::uint32_t>(pick / geometry_.width);
    const auto col = static_cast<std::uint32_t>(pick % geometry_.width);
    if (cell_occupied(row, col)) continue;
    const fault f{row, col, sample_fault_kind(gen, config.polarity)};
    intermittent_.push_back(timeline_fault{f, 0, true});
    intermittent_map_.add(f);
  }
  std::sort(intermittent_.begin(), intermittent_.end(), cell_before);
  rebuild_current();
}

bool fault_timeline::cell_occupied(std::uint32_t row, std::uint32_t col) const {
  const word_t bit = word_t{1} << col;
  return ((persistent_map_.planes_of_row(row).fault_cols |
           intermittent_map_.planes_of_row(row).fault_cols) &
          bit) != 0;
}

bool fault_timeline::intermittent_active(std::uint64_t cell_index,
                                         std::uint32_t epoch,
                                         std::uint32_t attempt) const {
  // Counter-based coin: one splitmix64 chain keyed (seed, cell, epoch,
  // attempt). Attempt 0 is the installed map's reality; retries re-roll.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(epoch) << 32) | attempt;
  return (splitmix64(splitmix64(activity_seed_ ^ cell_index) ^ key) & 1) != 0;
}

void fault_timeline::rebuild_current() {
  current_ = persistent_map_;
  for (const timeline_fault& record : intermittent_) {
    if (intermittent_active(geometry_.cell_index(record.f.row, record.f.col),
                            epoch_, 0)) {
      current_.add(record.f);
    }
  }
}

std::uint32_t fault_timeline::advance() {
  ++epoch_;
  expects(persistent_.size() + intermittent_.size() + config_.arrivals_per_epoch <=
              geometry_.cells(),
          "fault timeline: no healthy cells left for this epoch's arrivals");
  for (std::uint32_t drawn = 0; drawn < config_.arrivals_per_epoch;) {
    const std::uint64_t pick = arrivals_gen_.uniform_below(geometry_.cells());
    const auto row = static_cast<std::uint32_t>(pick / geometry_.width);
    const auto col = static_cast<std::uint32_t>(pick % geometry_.width);
    if (cell_occupied(row, col)) continue;
    const fault f{row, col, sample_fault_kind(arrivals_gen_, config_.polarity)};
    persistent_.push_back(timeline_fault{f, epoch_, false});
    persistent_map_.add(f);
    ++drawn;
  }
  rebuild_current();
  return config_.arrivals_per_epoch;
}

word_t fault_timeline::corrupt_read(std::uint32_t row, word_t stored,
                                    std::uint32_t attempt) const {
  word_t value = persistent_map_.corrupt(row, stored);
  // Persistent and intermittent cells are disjoint, so layering the
  // active intermittents' read effects on top is exactly what
  // current().corrupt would do at attempt 0.
  const auto first = std::lower_bound(
      intermittent_.begin(), intermittent_.end(), row,
      [](const timeline_fault& record, std::uint32_t key) {
        return record.f.row < key;
      });
  for (auto it = first; it != intermittent_.end() && it->f.row == row; ++it) {
    if (!intermittent_active(geometry_.cell_index(row, it->f.col), epoch_,
                             attempt)) {
      continue;
    }
    const word_t bit = word_t{1} << it->f.col;
    switch (it->f.kind) {
      case fault_kind::stuck_at_zero: value &= ~bit; break;
      case fault_kind::stuck_at_one: value |= bit; break;
      case fault_kind::flip: value ^= bit; break;
      case fault_kind::transition_up_fail:
      case fault_kind::transition_down_fail:
        break;  // write-time kinds have no read effect
    }
  }
  return value;
}

timeline_fault_set fault_timeline::export_faults() const {
  timeline_fault_set set;
  set.geometry = geometry_;
  set.faults.reserve(persistent_.size() + intermittent_.size());
  set.faults.insert(set.faults.end(), persistent_.begin(), persistent_.end());
  set.faults.insert(set.faults.end(), intermittent_.begin(), intermittent_.end());
  std::sort(set.faults.begin(), set.faults.end(), cell_before);
  return set;
}

fault_timeline fault_timeline::restore(const timeline_fault_set& set,
                                       timeline_config config) {
  fault_timeline timeline(set.geometry, config);
  for (const timeline_fault& record : set.faults) {
    expects(record.f.row < set.geometry.rows && record.f.col < set.geometry.width,
            "timeline fault outside the geometry");
    expects(!timeline.cell_occupied(record.f.row, record.f.col),
            "duplicate cell in timeline fault set");
    timeline.epoch_ = std::max(timeline.epoch_, record.birth_epoch);
    if (record.intermittent) {
      timeline.intermittent_.push_back(record);
      timeline.intermittent_map_.add(record.f);
    } else {
      timeline.persistent_.push_back(record);
      timeline.persistent_map_.add(record.f);
    }
  }
  std::sort(timeline.intermittent_.begin(), timeline.intermittent_.end(),
            cell_before);
  timeline.rebuild_current();
  return timeline;
}

}  // namespace urmem
