// Background scrubber — the repair half of the fault-lifecycle
// subsystem.
//
// A scrub pass walks logical rows through the normal protected read
// path and acts on the decode outcome: clean rows are left alone,
// correctable rows are rewritten in place (restoring the full code
// distance before a second fault lands — the reason scrubbing is
// load-bearing for quality), and detected-uncorrectable rows are
// reported to the caller for retirement or degradation. The walk
// cursor wraps, so a rows_per_pass budget spreads one full sweep over
// several passes the way a real patrol scrubber shares the bus.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "urmem/scheme/protected_memory.hpp"

namespace urmem {

/// Scrub cadence and budget.
struct scrub_config {
  std::uint32_t interval = 0;       ///< epochs between passes; 0 = off
  std::uint32_t rows_per_pass = 0;  ///< rows walked per pass; 0 = whole tile
  /// Proactively retire rows that decode `corrected` (the CE-threshold
  /// policy): with persistent faults, a corrected row is one new fault
  /// away from silent loss, so spend a spare before that happens.
  bool retire_correctable = true;

  friend constexpr bool operator==(const scrub_config&,
                                   const scrub_config&) = default;
};

/// One row the scrub pass flagged for follow-up.
struct scrub_finding {
  std::uint32_t row = 0;
  read_result result;        ///< decode outcome of the scrub read
  bool correctable = false;  ///< true: corrected; false: uncorrectable
};

/// Integer accounting of one pass.
struct scrub_pass_stats {
  std::uint64_t rows_scanned = 0;
  std::uint64_t clean_rows = 0;
  std::uint64_t corrected_rewrites = 0;
  std::uint64_t uncorrectable_rows = 0;
};

/// Optional deployment hooks for a pass running against live traffic
/// (the serving tier). lock_row/unlock_row bracket each row's
/// read-and-rewrite with the caller's per-row lock so the patrol can
/// share the tile with concurrent stores and readbacks. rewrite_word,
/// when set, supplies the data a corrected row is rewritten with — a
/// service refreshes from its authoritative copy instead of trusting a
/// decode that multi-bit faults may have miscorrected. Every member may
/// be empty; a null hooks pointer is the standalone default.
struct scrub_hooks {
  std::function<void(std::uint32_t)> lock_row;
  std::function<void(std::uint32_t)> unlock_row;
  std::function<word_t(std::uint32_t row, word_t decoded)> rewrite_word;
};

/// Walks rows at a configured cadence; see the header comment.
class scrubber {
 public:
  explicit scrubber(scrub_config config) : config_(config) {}

  [[nodiscard]] const scrub_config& config() const { return config_; }

  /// True when a pass is scheduled for `epoch` (never for interval 0).
  [[nodiscard]] bool due(std::uint32_t epoch) const {
    return config_.interval > 0 && epoch % config_.interval == 0;
  }

  /// Runs one pass over `memory`, appending flagged rows to `findings`
  /// (corrected rows are already rewritten in place when this returns;
  /// uncorrectable rows are untouched — retirement is the caller's
  /// policy decision). `hooks` is optional; see scrub_hooks.
  scrub_pass_stats pass(protected_memory& memory,
                        std::vector<scrub_finding>& findings,
                        const scrub_hooks* hooks = nullptr);

 private:
  scrub_config config_;
  std::uint32_t cursor_ = 0;  ///< next logical row to scan (wraps)
};

}  // namespace urmem
