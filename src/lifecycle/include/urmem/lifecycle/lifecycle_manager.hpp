// Lifecycle manager: timeline + scrubber + row-retirement policy over
// one protected memory.
//
// Each step() is one epoch of deployed life: the timeline ages the
// fault population and installs the new map (no re-repair, no scheme
// reconfiguration — fuses blow once, there is no POST in the field),
// then, when due, the scrubber patrols and the manager acts on what it
// flags. Correctable rows may be proactively retired to a spare (data
// preserved through decode -> re-encode). Detected-uncorrectable rows
// are retried raw through the timeline's intermittent model — a retry
// succeeds exactly when the offending intermittent is quiescent on that
// attempt — and rows that stay uncorrectable are retired to the spare
// pool. When the pool is dry the configured degradation policy runs:
// mark-and-serve-corrupt, remap into a reliable region's pool, or
// fail-stop. Every decision increments an integer counter, so
// accounting is exact and thread-count independent.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "urmem/lifecycle/fault_timeline.hpp"
#include "urmem/lifecycle/scrubber.hpp"
#include "urmem/scheme/protected_memory.hpp"

namespace urmem {

/// What to do with an uncorrectable row once the spare pool is dry.
enum class degrade_policy : std::uint8_t {
  mark,      ///< mark the row, keep serving its (corrupt) contents
  remap,     ///< retire into the reliable region's pool; mark if that is dry too
  failstop,  ///< halt the memory — no further epochs
};

/// Spec-file name of a policy ("mark", "remap", "failstop").
[[nodiscard]] std::string_view to_string(degrade_policy policy);

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<degrade_policy> parse_degrade_policy(
    std::string_view name);

/// Retirement knobs.
struct retire_config {
  degrade_policy policy = degrade_policy::mark;
  /// Raw read retries before declaring an uncorrectable row hard.
  std::uint32_t max_retries = 1;
  /// Donor region of the `remap` policy.
  std::size_t reliable_region = 0;

  friend constexpr bool operator==(const retire_config&,
                                   const retire_config&) = default;
};

/// Exact integer accounting of a lifecycle run; summable across trials.
struct lifecycle_counters {
  std::uint64_t epochs = 0;
  std::uint64_t injected_faults = 0;  ///< persistent arrivals installed
  std::uint64_t scrub_passes = 0;
  std::uint64_t rows_scrubbed = 0;
  std::uint64_t corrected_rewrites = 0;
  std::uint64_t ce_retirements = 0;  ///< proactive correctable retirements
  std::uint64_t ue_detected = 0;
  std::uint64_t read_retries = 0;
  std::uint64_t retry_successes = 0;
  std::uint64_t ue_retirements = 0;  ///< hard rows moved to a spare
  std::uint64_t pool_exhausted = 0;  ///< hard rows that found no home spare
  std::uint64_t cross_region_remaps = 0;
  std::uint64_t marked_rows = 0;
  std::uint64_t failstops = 0;  ///< 0 or 1 per run

  lifecycle_counters& operator+=(const lifecycle_counters& other);
};

/// Runs the lifecycle loop; see the header comment. Borrows `memory`
/// (the caller keeps reading/writing through it between steps) and owns
/// the timeline.
class lifecycle_manager {
 public:
  lifecycle_manager(protected_memory& memory, fault_timeline timeline,
                    scrub_config scrub, retire_config retire);

  /// One epoch; returns false once the memory has fail-stopped (further
  /// calls stay false and change nothing). Composed exactly from the
  /// sub-steps below: advance_epoch, then (when due) run_scrub_pass
  /// followed immediately by apply_findings.
  bool step();

  /// --- composable sub-steps ---------------------------------------
  /// The serving tier drives these directly so the scrub pass can run
  /// concurrently with request traffic while retirement/degradation
  /// (which rewires the logical->physical mapping) is deferred to an
  /// exclusive epoch boundary. step() composes them back-to-back and is
  /// byte-identical to the pre-split behavior.

  /// Ages the timeline one epoch and installs the new fault map (no
  /// re-repair — see the header comment). Returns false when the
  /// memory already fail-stopped.
  bool advance_epoch();

  /// True when the scrubber schedules a pass for the current epoch.
  [[nodiscard]] bool scrub_due() const;

  /// Runs one scrub pass (with optional concurrency hooks), appending
  /// flagged rows to `findings` and updating the pass counters.
  /// Corrected rows are rewritten in place; retirement decisions are
  /// the caller's to apply via apply_findings.
  scrub_pass_stats run_scrub_pass(std::vector<scrub_finding>& findings,
                                  const scrub_hooks* hooks = nullptr);

  /// Applies the retirement/degradation policy to scrub findings;
  /// returns false once the memory fail-stops (remaining findings are
  /// not processed, matching step()).
  bool apply_findings(const std::vector<scrub_finding>& findings);

  /// Authoritative data source for write-backs (retry restores and
  /// retirement payloads). A serving deployment installs its canonical
  /// copy so a multi-fault miscorrection can never poison the stored
  /// bits; unset, the decoder's best estimate is written (the
  /// standalone study's behavior).
  void set_data_source(std::function<word_t(std::uint32_t)> source) {
    data_source_ = std::move(source);
  }

  [[nodiscard]] const lifecycle_counters& counters() const { return counters_; }
  [[nodiscard]] const fault_timeline& timeline() const { return timeline_; }
  [[nodiscard]] bool failed() const { return failed_; }
  /// Epoch of the fail-stop, when one happened.
  [[nodiscard]] std::optional<std::uint32_t> failstop_epoch() const {
    return failstop_epoch_;
  }
  /// True when `row` was marked corrupt-but-served by the mark policy.
  [[nodiscard]] bool marked(std::uint32_t row) const { return marked_[row]; }

 private:
  void retire_correctable(std::uint32_t row, word_t data);
  void handle_uncorrectable(std::uint32_t row, word_t data);

  protected_memory& memory_;
  fault_timeline timeline_;
  scrubber scrubber_;
  retire_config retire_;
  std::function<word_t(std::uint32_t)> data_source_;
  lifecycle_counters counters_;
  std::vector<bool> marked_;
  std::optional<std::uint32_t> failstop_epoch_;
  bool failed_ = false;
  std::vector<scrub_finding> findings_;  ///< per-pass scratch
};

}  // namespace urmem
