// Deterministic fault timeline — the aging half of the fault-lifecycle
// subsystem.
//
// A manufactured fault map is a snapshot; a deployed part keeps
// degrading. The timeline steps a fault population through discrete
// epochs: each advance() draws a configured number of new persistent
// faults on previously healthy cells (the in-field arrival process),
// and a fixed set of *intermittent* cells flips between active and
// quiescent from epoch to epoch (aged cells near their critical
// voltage, the reason a read retry can succeed where the first access
// failed). The installed fault_map for an epoch is always rebuilt from
// the persistent population plus the epoch's active intermittents, so
// the compiled fault_plane path and the reference path see the same
// injected reality.
//
// Everything is counter-based or stream-split off one seed: the same
// (seed, epoch, attempt) triple always yields the same arrivals and the
// same intermittent activity, independent of thread count or call
// interleaving across other components.
#pragma once

#include <cstdint>
#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_map.hpp"
#include "urmem/memory/fault_map_io.hpp"
#include "urmem/memory/fault_sampler.hpp"

namespace urmem {

/// Arrival and intermittency knobs of one timeline.
struct timeline_config {
  /// New persistent faults injected per advance() (distinct healthy
  /// cells, uniform over the array).
  std::uint32_t arrivals_per_epoch = 0;
  /// Cells that flip between active and quiescent each epoch; drawn
  /// once at construction, disjoint from every persistent fault.
  std::uint32_t intermittent_cells = 0;
  fault_polarity polarity = fault_polarity::mixed;
  std::uint64_t seed = 0;
};

/// Steps a fault population through epochs; see the header comment.
class fault_timeline {
 public:
  /// Starts at epoch 0 from `initial` (the manufactured map, persistent
  /// birth-epoch-0 faults) and draws the intermittent population.
  fault_timeline(fault_map initial, timeline_config config);

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] const array_geometry& geometry() const { return geometry_; }

  /// The installed fault map of the current epoch: every persistent
  /// fault plus the intermittents active this epoch.
  [[nodiscard]] const fault_map& current() const { return current_; }

  /// Persistent faults accumulated so far (manufactured + arrived).
  [[nodiscard]] std::uint64_t persistent_faults() const {
    return persistent_.size();
  }

  /// Advances one epoch: injects the configured arrivals on distinct
  /// healthy cells and re-rolls intermittent activity. Returns the
  /// number of new persistent faults (always arrivals_per_epoch; the
  /// array running out of healthy cells is a contract violation).
  std::uint32_t advance();

  /// Re-corrupts `stored` as one raw read of physical row `row` at the
  /// current epoch. Attempt 0 is bit-identical to
  /// current().corrupt(row, stored); attempts >= 1 re-roll only the
  /// intermittent cells' activity — the read-retry model: a retry
  /// succeeds exactly when the offending intermittent happens to be
  /// quiescent on that attempt.
  [[nodiscard]] word_t corrupt_read(std::uint32_t row, word_t stored,
                                    std::uint32_t attempt) const;

  /// Full population with lifecycle annotations, ascending (row, col) —
  /// the v2 fault_map_io payload.
  [[nodiscard]] timeline_fault_set export_faults() const;

  /// Rebuilds a timeline from an exported set at epoch =
  /// max(birth_epoch). The population is taken verbatim (config's
  /// arrivals/intermittent counts only shape *future* epochs) and the
  /// arrival stream restarts fresh; the hash-based intermittent
  /// activity — and with it corrupt_read — resumes exactly.
  [[nodiscard]] static fault_timeline restore(const timeline_fault_set& set,
                                              timeline_config config);

 private:
  fault_timeline(array_geometry geometry, timeline_config config);

  [[nodiscard]] bool cell_occupied(std::uint32_t row, std::uint32_t col) const;
  [[nodiscard]] bool intermittent_active(std::uint64_t cell_index,
                                         std::uint32_t epoch,
                                         std::uint32_t attempt) const;
  void rebuild_current();

  array_geometry geometry_{};
  timeline_config config_{};
  std::uint32_t epoch_ = 0;
  rng arrivals_gen_;
  std::uint64_t activity_seed_ = 0;
  /// Persistent faults (insertion order); membership lives in
  /// persistent_map_ for O(1) occupied-cell checks.
  std::vector<timeline_fault> persistent_;
  fault_map persistent_map_;
  /// Intermittent cells, ascending (row, col); membership (any epoch)
  /// mirrored in intermittent_map_.
  std::vector<timeline_fault> intermittent_;
  fault_map intermittent_map_;
  fault_map current_;
};

}  // namespace urmem
