// K-nearest-neighbors classification — the paper's classification
// benchmark (Table 1, activity-recognition dataset, score metric).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "urmem/ml/matrix.hpp"

namespace urmem {

/// Brute-force Euclidean KNN with majority vote (ties break toward the
/// smaller label, matching scikit-learn's deterministic behaviour).
class knn_classifier {
 public:
  /// `k` neighbors considered per query.
  explicit knn_classifier(std::size_t k = 5);

  /// Stores the training set (n x p features, n labels).
  void fit(matrix x, std::vector<int> labels);

  /// Predicted label of one query row.
  [[nodiscard]] int predict_one(std::span<const double> query) const;

  /// Predicted labels for every row of `x`.
  [[nodiscard]] std::vector<int> predict(const matrix& x) const;

  /// Mean accuracy on a labeled holdout set.
  [[nodiscard]] double score(const matrix& x, const std::vector<int>& labels) const;

 private:
  std::size_t k_;
  matrix train_;
  std::vector<int> labels_;
};

}  // namespace urmem
