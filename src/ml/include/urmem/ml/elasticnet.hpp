// Elastic-net regression via cyclic coordinate descent — the paper's
// regression benchmark (Table 1, wine-quality dataset, R^2 metric).
//
// Minimizes the scikit-learn objective
//
//   (1/2n) ||y - Xw - b||^2 + alpha * l1_ratio * ||w||_1
//                           + (alpha/2) * (1 - l1_ratio) * ||w||^2
//
// with soft-threshold coordinate updates and an intercept handled by
// centering. Hyper-parameter semantics match sklearn.linear_model
// ElasticNet, so alpha = 0 reduces to OLS and l1_ratio = 1 to the Lasso.
#pragma once

#include <cstddef>
#include <vector>

#include "urmem/ml/matrix.hpp"

namespace urmem {

/// Elastic-net hyper-parameters and stopping rule.
struct elasticnet_config {
  double alpha = 0.01;      ///< overall regularization strength
  double l1_ratio = 0.5;    ///< 1 = lasso, 0 = ridge
  std::size_t max_iter = 1000;
  double tol = 1e-6;        ///< max coefficient change per sweep
};

/// Coordinate-descent elastic net.
class elasticnet {
 public:
  explicit elasticnet(elasticnet_config config = {});

  /// Fits on features `x` (n x p) and targets `y` (n).
  void fit(const matrix& x, const std::vector<double>& y);

  /// Predicted targets for `x`; fit() must have been called.
  [[nodiscard]] std::vector<double> predict(const matrix& x) const;

  [[nodiscard]] const std::vector<double>& coefficients() const { return coef_; }
  [[nodiscard]] double intercept() const { return intercept_; }

  /// Sweeps executed by the last fit (convergence diagnostics).
  [[nodiscard]] std::size_t iterations() const { return iterations_; }

 private:
  elasticnet_config config_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  std::size_t iterations_ = 0;
};

}  // namespace urmem
