// Dense row-major matrix — the minimal linear algebra the three
// benchmark algorithms (Elasticnet, PCA, KNN) are built on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace urmem {

/// Dense matrix of doubles, row-major storage.
class matrix {
 public:
  matrix() = default;

  /// `rows` x `cols` matrix filled with `value`.
  matrix(std::size_t rows, std::size_t cols, double value = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Row `r` as a contiguous span.
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// Column `c` copied out.
  [[nodiscard]] std::vector<double> col(std::size_t c) const;

  /// Raw storage (row-major).
  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// A^T.
[[nodiscard]] matrix transpose(const matrix& a);

/// A * B; inner dimensions must agree.
[[nodiscard]] matrix matmul(const matrix& a, const matrix& b);

/// Per-column means of `a`.
[[nodiscard]] std::vector<double> column_means(const matrix& a);

/// Subtracts `means[c]` from every element of column c (in place).
void center_columns(matrix& a, std::span<const double> means);

/// Sample covariance (n-1 denominator) of the columns of `a`;
/// `a` is centered internally, the input is not modified.
[[nodiscard]] matrix covariance(const matrix& a);

/// Squared Frobenius norm.
[[nodiscard]] double frobenius_norm_squared(const matrix& a);

}  // namespace urmem
