// Feature preprocessing mirroring the scikit-learn pipeline the paper's
// benchmarks use: standardization and train/test splitting (0.8:0.2 in
// Sec. 5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/ml/matrix.hpp"

namespace urmem {

/// Zero-mean, unit-variance feature scaling (fit on train, apply to both).
class standard_scaler {
 public:
  /// Learns per-column mean and standard deviation from `x`.
  void fit(const matrix& x);

  /// Applies the learned transform; fit() must have been called.
  [[nodiscard]] matrix transform(const matrix& x) const;

  /// fit + transform in one step.
  [[nodiscard]] matrix fit_transform(const matrix& x);

  [[nodiscard]] const std::vector<double>& means() const { return means_; }
  [[nodiscard]] const std::vector<double>& scales() const { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

/// Index split for holdout evaluation.
struct split_indices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Random permutation split with `test_fraction` of rows held out.
[[nodiscard]] split_indices train_test_split(std::size_t n_rows, double test_fraction,
                                             rng& gen);

/// Gathers the given rows of `x` into a new matrix.
[[nodiscard]] matrix take_rows(const matrix& x, const std::vector<std::size_t>& rows);

/// Gathers the given entries of `v` into a new vector.
template <typename T>
[[nodiscard]] std::vector<T> take(const std::vector<T>& v,
                                  const std::vector<std::size_t>& idx) {
  std::vector<T> out;
  out.reserve(idx.size());
  for (const std::size_t i : idx) out.push_back(v[i]);
  return out;
}

}  // namespace urmem
