// Principal component analysis via a cyclic Jacobi eigensolver — the
// paper's dimensionality-reduction benchmark (Table 1, Madelon dataset,
// explained-variance metric).
#pragma once

#include <cstddef>
#include <vector>

#include "urmem/ml/matrix.hpp"

namespace urmem {

/// Symmetric eigendecomposition by the cyclic Jacobi method.
/// Returns eigenvalues (descending) and matching eigenvectors as the
/// columns of `vectors`.
struct eigen_decomposition {
  std::vector<double> values;
  matrix vectors;
};

/// Decomposes a symmetric matrix `a`; sweeps until the off-diagonal
/// Frobenius mass drops below `tol` (relative) or `max_sweeps` is hit.
/// Jacobi converges quadratically, so the tight default costs at most a
/// sweep or two over a loose one.
[[nodiscard]] eigen_decomposition jacobi_eigen(const matrix& a, double tol = 1e-24,
                                               std::size_t max_sweeps = 64);

/// PCA fitted on the covariance of the training features.
class pca {
 public:
  /// Keeps the top `n_components` principal directions.
  explicit pca(std::size_t n_components);

  /// Fits mean and components on `x` (n x p), n >= 2, n_components <= p.
  void fit(const matrix& x);

  /// Projects rows of `x` onto the component basis (n x k).
  [[nodiscard]] matrix transform(const matrix& x) const;

  /// Reconstructs from the projection back to feature space (n x p).
  [[nodiscard]] matrix inverse_transform(const matrix& projected) const;

  /// Fraction of total variance captured by each kept component.
  [[nodiscard]] const std::vector<double>& explained_variance_ratio() const {
    return explained_ratio_;
  }

  /// Component directions as columns (p x k), orthonormal.
  [[nodiscard]] const matrix& components() const { return components_; }

  /// Explained-variance score of the fitted basis on a holdout set:
  /// 1 - ||Xc - Xc V V^T||_F^2 / ||Xc||_F^2, with Xc centered by the
  /// holdout's own mean (so a corrupted training mean cannot inflate
  /// the variance the basis is scored against). Equals the captured
  /// variance fraction on the training set; degrades when the basis was
  /// fitted on corrupted data.
  [[nodiscard]] double score(const matrix& x) const;

 private:
  std::size_t n_components_;
  std::vector<double> mean_;
  matrix components_;  // p x k
  std::vector<double> explained_ratio_;
};

}  // namespace urmem
