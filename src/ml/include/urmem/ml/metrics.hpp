// Quality metrics of Table 1: R^2 (Elasticnet), explained variance
// (PCA), classification score (KNN), plus the regression MSE.
#pragma once

#include <span>
#include <vector>

namespace urmem {

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot.
/// A constant truth vector yields 0 unless the prediction is exact.
[[nodiscard]] double r2_score(std::span<const double> truth,
                              std::span<const double> prediction);

/// Mean squared prediction error.
[[nodiscard]] double mean_squared_error(std::span<const double> truth,
                                        std::span<const double> prediction);

/// Fraction of matching labels.
[[nodiscard]] double accuracy_score(std::span<const int> truth,
                                    std::span<const int> prediction);

/// Peak signal-to-noise ratio in dB: 10*log10(peak^2 / MSE). Returns
/// +infinity for identical signals — the multimedia quality metric of
/// the P-ECC prior art (paper Sec. 2, refs. [4, 12]).
[[nodiscard]] double psnr_db(std::span<const double> reference,
                             std::span<const double> degraded,
                             double peak = 255.0);

}  // namespace urmem
