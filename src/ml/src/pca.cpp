#include "urmem/ml/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "urmem/common/contracts.hpp"

namespace urmem {

eigen_decomposition jacobi_eigen(const matrix& a, double tol, std::size_t max_sweeps) {
  expects(a.rows() == a.cols() && a.rows() >= 1, "jacobi needs a square matrix");
  const std::size_t p = a.rows();
  matrix m = a;
  matrix v(p, p, 0.0);
  for (std::size_t i = 0; i < p; ++i) v(i, i) = 1.0;

  const double total_scale = std::max(frobenius_norm_squared(a), 1e-300);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i + 1; j < p; ++j) off += 2.0 * m(i, j) * m(i, j);
    }
    if (off / total_scale < tol) break;

    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i + 1; j < p; ++j) {
        const double apq = m(i, j);
        if (apq == 0.0) continue;
        const double app = m(i, i);
        const double aqq = m(j, j);
        // Classic Jacobi rotation choosing the smaller-angle root.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < p; ++k) {
          const double mki = m(k, i);
          const double mkj = m(k, j);
          m(k, i) = c * mki - s * mkj;
          m(k, j) = s * mki + c * mkj;
        }
        for (std::size_t k = 0; k < p; ++k) {
          const double mik = m(i, k);
          const double mjk = m(j, k);
          m(i, k) = c * mik - s * mjk;
          m(j, k) = s * mik + c * mjk;
        }
        for (std::size_t k = 0; k < p; ++k) {
          const double vki = v(k, i);
          const double vkj = v(k, j);
          v(k, i) = c * vki - s * vkj;
          v(k, j) = s * vki + c * vkj;
        }
      }
    }
  }

  eigen_decomposition result;
  result.values.resize(p);
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(p);
  for (std::size_t i = 0; i < p; ++i) diag[i] = m(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t l, std::size_t r) { return diag[l] > diag[r]; });

  result.vectors = matrix(p, p);
  for (std::size_t rank = 0; rank < p; ++rank) {
    result.values[rank] = diag[order[rank]];
    for (std::size_t k = 0; k < p; ++k) {
      result.vectors(k, rank) = v(k, order[rank]);
    }
  }
  return result;
}

pca::pca(std::size_t n_components) : n_components_(n_components) {
  expects(n_components >= 1, "need at least one component");
}

void pca::fit(const matrix& x) {
  expects(x.rows() >= 2, "PCA needs at least two samples");
  expects(n_components_ <= x.cols(), "more components than features");

  mean_ = column_means(x);
  const matrix cov = covariance(x);
  const eigen_decomposition eig = jacobi_eigen(cov);

  components_ = matrix(x.cols(), n_components_);
  for (std::size_t c = 0; c < n_components_; ++c) {
    for (std::size_t r = 0; r < x.cols(); ++r) {
      components_(r, c) = eig.vectors(r, c);
    }
  }

  double total = 0.0;
  for (const double lambda : eig.values) total += std::max(lambda, 0.0);
  explained_ratio_.assign(n_components_, 0.0);
  if (total > 0.0) {
    for (std::size_t c = 0; c < n_components_; ++c) {
      explained_ratio_[c] = std::max(eig.values[c], 0.0) / total;
    }
  }
}

matrix pca::transform(const matrix& x) const {
  expects(!mean_.empty(), "fit must be called before transform");
  expects(x.cols() == mean_.size(), "feature count mismatch");
  matrix centered = x;
  center_columns(centered, mean_);
  return matmul(centered, components_);
}

matrix pca::inverse_transform(const matrix& projected) const {
  expects(!mean_.empty(), "fit must be called before inverse_transform");
  matrix restored = matmul(projected, transpose(components_));
  for (std::size_t r = 0; r < restored.rows(); ++r) {
    for (std::size_t c = 0; c < restored.cols(); ++c) restored(r, c) += mean_[c];
  }
  return restored;
}

double pca::score(const matrix& x) const {
  expects(!mean_.empty(), "fit must be called before score");
  // Center by the holdout's own mean: a corrupted training mean must
  // not inflate the total variance the basis is scored against.
  matrix centered = x;
  center_columns(centered, column_means(x));
  const double total = frobenius_norm_squared(centered);
  if (total == 0.0) return 1.0;
  const matrix projected = matmul(centered, components_);
  const matrix reconstructed = matmul(projected, transpose(components_));
  double residual = 0.0;
  for (std::size_t r = 0; r < centered.rows(); ++r) {
    for (std::size_t c = 0; c < centered.cols(); ++c) {
      const double d = centered(r, c) - reconstructed(r, c);
      residual += d * d;
    }
  }
  return 1.0 - residual / total;
}

}  // namespace urmem
