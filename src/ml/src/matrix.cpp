#include "urmem/ml/matrix.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

matrix::matrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {
  expects(rows >= 1 && cols >= 1, "matrix dimensions must be positive");
}

std::vector<double> matrix::col(std::size_t c) const {
  expects(c < cols_, "column out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

matrix transpose(const matrix& a) {
  matrix out(a.cols(), a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(c, r) = a(r, c);
  }
  return out;
}

matrix matmul(const matrix& a, const matrix& b) {
  expects(a.cols() == b.rows(), "matmul inner dimension mismatch");
  matrix out(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

std::vector<double> column_means(const matrix& a) {
  std::vector<double> means(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) means[c] += a(r, c);
  }
  for (double& m : means) m /= static_cast<double>(a.rows());
  return means;
}

void center_columns(matrix& a, std::span<const double> means) {
  expects(means.size() == a.cols(), "means size mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) a(r, c) -= means[c];
  }
}

matrix covariance(const matrix& a) {
  expects(a.rows() >= 2, "covariance needs at least two rows");
  matrix centered = a;
  center_columns(centered, column_means(a));
  matrix cov(a.cols(), a.cols(), 0.0);
  for (std::size_t i = 0; i < centered.rows(); ++i) {
    const auto row = centered.row(i);
    for (std::size_t p = 0; p < a.cols(); ++p) {
      const double v = row[p];
      if (v == 0.0) continue;
      for (std::size_t q = p; q < a.cols(); ++q) cov(p, q) += v * row[q];
    }
  }
  const double denom = static_cast<double>(a.rows() - 1);
  for (std::size_t p = 0; p < a.cols(); ++p) {
    for (std::size_t q = p; q < a.cols(); ++q) {
      cov(p, q) /= denom;
      cov(q, p) = cov(p, q);
    }
  }
  return cov;
}

double frobenius_norm_squared(const matrix& a) {
  double acc = 0.0;
  for (const double v : a.data()) acc += v * v;
  return acc;
}

}  // namespace urmem
