#include "urmem/ml/elasticnet.hpp"

#include <algorithm>
#include <cmath>

#include "urmem/common/contracts.hpp"
#include "urmem/ml/preprocessing.hpp"

namespace urmem {

namespace {

double soft_threshold(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

}  // namespace

elasticnet::elasticnet(elasticnet_config config) : config_(config) {
  expects(config.alpha >= 0.0, "alpha must be nonnegative");
  expects(config.l1_ratio >= 0.0 && config.l1_ratio <= 1.0, "l1_ratio in [0,1]");
  expects(config.max_iter >= 1, "max_iter must be positive");
}

void elasticnet::fit(const matrix& x, const std::vector<double>& y) {
  expects(x.rows() == y.size(), "row count mismatch between x and y");
  expects(x.rows() >= 2, "need at least two samples");
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const double n_d = static_cast<double>(n);

  // Center features and targets; the intercept absorbs the means.
  const std::vector<double> x_means = column_means(x);
  matrix xc = x;
  center_columns(xc, x_means);
  double y_mean = 0.0;
  for (const double v : y) y_mean += v;
  y_mean /= n_d;

  // Per-feature mean squared norms z_j = (1/n) sum_i x_ij^2.
  std::vector<double> z(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = xc.row(i);
    for (std::size_t j = 0; j < p; ++j) z[j] += row[j] * row[j];
  }
  for (double& v : z) v /= n_d;

  coef_.assign(p, 0.0);
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - y_mean;

  const double l1 = config_.alpha * config_.l1_ratio;
  const double l2 = config_.alpha * (1.0 - config_.l1_ratio);

  iterations_ = 0;
  for (std::size_t sweep = 0; sweep < config_.max_iter; ++sweep) {
    ++iterations_;
    double max_delta = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      if (z[j] == 0.0) continue;  // constant (centered-to-zero) feature
      // rho = (1/n) sum_i x_ij * (r_i + x_ij * w_j): the correlation of
      // feature j with the residual that excludes its own contribution.
      double rho = 0.0;
      for (std::size_t i = 0; i < n; ++i) rho += xc(i, j) * residual[i];
      rho = rho / n_d + z[j] * coef_[j];

      const double updated = soft_threshold(rho, l1) / (z[j] + l2);
      const double delta = updated - coef_[j];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < n; ++i) residual[i] -= delta * xc(i, j);
        coef_[j] = updated;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < config_.tol) break;
  }

  intercept_ = y_mean;
  for (std::size_t j = 0; j < p; ++j) intercept_ -= coef_[j] * x_means[j];
}

std::vector<double> elasticnet::predict(const matrix& x) const {
  expects(!coef_.empty(), "fit must be called before predict");
  expects(x.cols() == coef_.size(), "feature count mismatch");
  std::vector<double> out(x.rows(), intercept_);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < coef_.size(); ++j) acc += row[j] * coef_[j];
    out[i] += acc;
  }
  return out;
}

}  // namespace urmem
