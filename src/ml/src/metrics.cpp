#include "urmem/ml/metrics.hpp"

#include <cmath>
#include <limits>

#include "urmem/common/contracts.hpp"
#include "urmem/common/stats.hpp"

namespace urmem {

double r2_score(std::span<const double> truth, std::span<const double> prediction) {
  expects(truth.size() == prediction.size() && !truth.empty(),
          "r2_score requires matching nonempty inputs");
  const double mu = mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - prediction[i]) * (truth[i] - prediction[i]);
    ss_tot += (truth[i] - mu) * (truth[i] - mu);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mean_squared_error(std::span<const double> truth,
                          std::span<const double> prediction) {
  expects(truth.size() == prediction.size() && !truth.empty(),
          "mean_squared_error requires matching nonempty inputs");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += (truth[i] - prediction[i]) * (truth[i] - prediction[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double psnr_db(std::span<const double> reference, std::span<const double> degraded,
               double peak) {
  expects(peak > 0.0, "psnr peak must be positive");
  const double mse = mean_squared_error(reference, degraded);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / mse);
}

double accuracy_score(std::span<const int> truth, std::span<const int> prediction) {
  expects(truth.size() == prediction.size() && !truth.empty(),
          "accuracy_score requires matching nonempty inputs");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == prediction[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace urmem
