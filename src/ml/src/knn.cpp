#include "urmem/ml/knn.hpp"

#include <algorithm>
#include <map>

#include "urmem/common/contracts.hpp"
#include "urmem/ml/metrics.hpp"

namespace urmem {

knn_classifier::knn_classifier(std::size_t k) : k_(k) {
  expects(k >= 1, "k must be at least 1");
}

void knn_classifier::fit(matrix x, std::vector<int> labels) {
  expects(x.rows() == labels.size(), "feature/label count mismatch");
  expects(x.rows() >= k_, "training set smaller than k");
  train_ = std::move(x);
  labels_ = std::move(labels);
}

int knn_classifier::predict_one(std::span<const double> query) const {
  expects(!labels_.empty(), "fit must be called before predict");
  expects(query.size() == train_.cols(), "query dimension mismatch");

  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(train_.rows());
  for (std::size_t i = 0; i < train_.rows(); ++i) {
    const auto row = train_.row(i);
    double d2 = 0.0;
    for (std::size_t j = 0; j < query.size(); ++j) {
      const double d = row[j] - query[j];
      d2 += d * d;
    }
    distances.emplace_back(d2, i);
  }
  std::partial_sort(distances.begin(),
                    distances.begin() + static_cast<std::ptrdiff_t>(k_),
                    distances.end());

  std::map<int, std::size_t> votes;  // ordered: ties resolve to smaller label
  for (std::size_t i = 0; i < k_; ++i) ++votes[labels_[distances[i].second]];
  int best_label = votes.begin()->first;
  std::size_t best_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

std::vector<int> knn_classifier::predict(const matrix& x) const {
  std::vector<int> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict_one(x.row(i)));
  return out;
}

double knn_classifier::score(const matrix& x, const std::vector<int>& labels) const {
  const std::vector<int> predicted = predict(x);
  return accuracy_score(labels, predicted);
}

}  // namespace urmem
