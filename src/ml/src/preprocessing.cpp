#include "urmem/ml/preprocessing.hpp"

#include <cmath>
#include <numeric>

#include "urmem/common/contracts.hpp"

namespace urmem {

void standard_scaler::fit(const matrix& x) {
  expects(x.rows() >= 2, "scaler needs at least two rows");
  means_ = column_means(x);
  scales_.assign(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double d = x(r, c) - means_[c];
      scales_[c] += d * d;
    }
  }
  for (double& s : scales_) {
    s = std::sqrt(s / static_cast<double>(x.rows()));
    if (s < 1e-12) s = 1.0;  // constant column: leave it centered only
  }
}

matrix standard_scaler::transform(const matrix& x) const {
  expects(!means_.empty(), "scaler must be fitted before transform");
  expects(x.cols() == means_.size(), "column count mismatch");
  matrix out = x;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - means_[c]) / scales_[c];
    }
  }
  return out;
}

matrix standard_scaler::fit_transform(const matrix& x) {
  fit(x);
  return transform(x);
}

split_indices train_test_split(std::size_t n_rows, double test_fraction, rng& gen) {
  expects(n_rows >= 2, "need at least two rows to split");
  expects(test_fraction > 0.0 && test_fraction < 1.0, "test fraction in (0,1)");
  std::vector<std::size_t> order(n_rows);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Fisher-Yates with the library rng (std::shuffle is implementation-defined).
  for (std::size_t i = n_rows - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(gen.uniform_below(i + 1));
    std::swap(order[i], order[j]);
  }
  const auto n_test = static_cast<std::size_t>(
      std::llround(test_fraction * static_cast<double>(n_rows)));
  split_indices split;
  split.test.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_test));
  split.train.assign(order.begin() + static_cast<std::ptrdiff_t>(n_test), order.end());
  return split;
}

matrix take_rows(const matrix& x, const std::vector<std::size_t>& rows) {
  expects(!rows.empty(), "take_rows needs at least one row");
  matrix out(rows.size(), x.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    expects(rows[i] < x.rows(), "row index out of range");
    for (std::size_t c = 0; c < x.cols(); ++c) out(i, c) = x(rows[i], c);
  }
  return out;
}

}  // namespace urmem
