// Shift selection: which xFM value should the BIST program for a row?
//
// The paper assumes a single fault per word: the entry is simply the
// segment index of the faulty cell. Rows with several faults are not
// covered by the paper; we choose the entry minimizing the row's
// contribution to the MSE criterion (Eq. 6), i.e. the sum of 4^b over the
// post-restore logical fault positions b. A cheaper first-fault policy
// (use the most significant fault only) is provided for the ablation
// study.
#pragma once

#include <cstdint>
#include <span>

#include "urmem/shuffle/bit_shuffler.hpp"

namespace urmem {

/// How multi-fault rows pick their LUT entry.
enum class shift_policy : std::uint8_t {
  min_mse,      ///< try all 2^nFM shifts, keep the Eq. 6-optimal one (default)
  first_fault,  ///< align the LSB segment with the most significant fault
};

/// Squared-error cost (the row's Eq. 6 contribution) of programming
/// `xfm` for a row whose faulty columns are `fault_cols`.
[[nodiscard]] double shift_cost(const bit_shuffler& shuffler,
                                std::span<const std::uint32_t> fault_cols,
                                unsigned xfm);

/// Optimal xFM for the row under the given policy. Fault-free rows get 0.
/// Ties break toward the smaller xFM, so single-fault rows always match
/// the paper's formula xFM = floor(col / S).
[[nodiscard]] unsigned choose_xfm(const bit_shuffler& shuffler,
                                  std::span<const std::uint32_t> fault_cols,
                                  shift_policy policy = shift_policy::min_mse);

}  // namespace urmem
