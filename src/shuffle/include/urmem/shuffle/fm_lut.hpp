// Fault-map look-up table (FM-LUT, paper Sec. 3 / Fig. 3).
//
// One nFM-bit entry per memory row records the segment index xFM(r) of
// the row's faulty cell; the entry drives the circular shift applied on
// every write/read of that row. The paper realizes the LUT as nFM extra
// bit columns in the array, written once after BIST. Entries here live
// in ordinary storage assumed fault-free (they are programmed after
// test); the faulty-LUT ablation bench corrupts entries explicitly to
// quantify that assumption.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "urmem/common/bitops.hpp"

namespace urmem {

/// Per-row shift-index storage of the bit-shuffling scheme.
class fm_lut {
 public:
  /// LUT for `rows` rows with `n_fm`-bit entries, initialized to zero
  /// (no shift — the fault-free configuration).
  fm_lut(std::uint32_t rows, unsigned n_fm);

  [[nodiscard]] std::uint32_t rows() const { return static_cast<std::uint32_t>(entries_.size()); }

  /// Entry width nFM in bits.
  [[nodiscard]] unsigned n_fm() const { return n_fm_; }

  /// xFM value of `row`.
  [[nodiscard]] unsigned get(std::uint32_t row) const;

  /// All entries as a contiguous span (one xFM per row). Every entry is
  /// < 2^nFM — enforced at set() — so batched codec loops can index
  /// shift tables with them without per-word checks.
  [[nodiscard]] std::span<const std::uint8_t> entries() const {
    return entries_;
  }

  /// Sets the xFM value of `row`; must fit in n_fm bits.
  void set(std::uint32_t row, unsigned xfm);

  /// Resets every entry to zero.
  void clear();

  /// Number of rows with a nonzero entry (i.e. rows BIST found faulty).
  [[nodiscard]] std::uint32_t nonzero_entries() const;

  /// Total LUT capacity in bits (rows * nFM) — the storage the scheme
  /// adds to the array.
  [[nodiscard]] std::uint64_t storage_bits() const {
    return static_cast<std::uint64_t>(rows()) * n_fm_;
  }

 private:
  std::vector<std::uint8_t> entries_;
  unsigned n_fm_;
};

}  // namespace urmem
