// The complete bit-shuffling error-mitigation scheme (paper Sec. 3):
// bit_shuffler (segment math) + fm_lut (per-row shift indices) +
// shift_policy (BIST programming rule).
//
// Usage mirrors the hardware: program() once from the BIST-discovered
// fault map, then apply_write()/restore_read() on every access.
#pragma once

#include <cstdint>
#include <span>

#include "urmem/memory/fault_map.hpp"
#include "urmem/shuffle/bit_shuffler.hpp"
#include "urmem/shuffle/fm_lut.hpp"
#include "urmem/shuffle/shift_policy.hpp"

namespace urmem {

/// Significance-driven bit-shuffling for one memory instance.
class shuffle_scheme {
 public:
  /// Scheme for `rows` rows of `width` bits with nFM-bit LUT entries.
  shuffle_scheme(std::uint32_t rows, unsigned width, unsigned n_fm,
                 shift_policy policy = shift_policy::min_mse);

  [[nodiscard]] const bit_shuffler& shuffler() const { return shuffler_; }
  [[nodiscard]] const fm_lut& lut() const { return lut_; }

  /// Mutable LUT access for the faulty-LUT ablation study.
  [[nodiscard]] fm_lut& mutable_lut() { return lut_; }

  /// Programs the LUT from a fault map (as BIST would after discovering
  /// the faulty cells). Only the data columns [0, width) are considered.
  void program(const fault_map& faults);

  /// Rotation applied to row `row` (Eq. 2).
  [[nodiscard]] unsigned shift_for_row(std::uint32_t row) const {
    return shuffler_.shift_amount(lut_.get(row));
  }

  /// Write path: rotate `data` right by the row's shift.
  [[nodiscard]] word_t apply_write(std::uint32_t row, word_t data) const {
    return shuffler_.apply(data, lut_.get(row));
  }

  /// Read path: rotate `stored` left by the row's shift.
  [[nodiscard]] word_t restore_read(std::uint32_t row, word_t stored) const {
    return shuffler_.restore(stored, lut_.get(row));
  }

  /// Batched write path over rows [first, first + data.size()):
  /// out[i] = apply_write(first + i, data[i]). Pure arithmetic over the
  /// precomputed shift table and the raw LUT entries (both range-safe
  /// by construction); `out` may alias `data`. Spans are length-checked
  /// once per call.
  void apply_write_block(std::uint32_t first, std::span<const word_t> data,
                         std::span<word_t> out) const;

  /// Batched read path: out[i] = restore_read(first + i, stored[i]);
  /// `out` may alias `stored`.
  void restore_read_block(std::uint32_t first, std::span<const word_t> stored,
                          std::span<word_t> out) const;

  /// Logical data-bit position corrupted by a fault at physical column
  /// `col` of `row` under the current LUT programming.
  [[nodiscard]] unsigned logical_fault_position(std::uint32_t row,
                                                std::uint32_t col) const {
    return shuffler_.logical_position(col, lut_.get(row));
  }

 private:
  bit_shuffler shuffler_;
  fm_lut lut_;
  shift_policy policy_;
};

}  // namespace urmem
