// Segment arithmetic of the bit-shuffling scheme (paper Sec. 3, Eqs. 1-2).
//
// For a W-bit word and an FM-LUT entry width of nFM bits:
//
//   segment size        S    = W / 2^nFM                          (Eq. 1)
//   rotation amount     T(r) = S * (2^nFM - xFM(r))  (mod W)      (Eq. 2)
//
// where xFM(r) is the index of the segment containing the faulty cell of
// row r. Writing rotates the data word *right* by T(r), which lands the
// least-significant segment on the faulty column; reading rotates *left*
// by T(r) to restore bit order. With a single fault per row the residual
// error after restore is bounded by 2^(S-1) — the envelope plotted in
// the paper's Fig. 4.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "urmem/common/bitops.hpp"

namespace urmem {

/// Stateless shuffle parameterization for one (W, nFM) design point.
class bit_shuffler {
 public:
  /// `width` must be a power of two (8..64); `n_fm` in [1, log2(width)].
  /// Precomputes the per-xFM shift table (Eq. 2 for every LUT value), so
  /// the hot apply/restore paths are pure arithmetic; all contracts are
  /// checked here, on the table-build path.
  bit_shuffler(unsigned width, unsigned n_fm);

  [[nodiscard]] unsigned width() const { return width_; }

  /// FM-LUT entry width nFM in bits.
  [[nodiscard]] unsigned n_fm() const { return n_fm_; }

  /// Number of segments 2^nFM (= number of distinct shift values).
  [[nodiscard]] unsigned segment_count() const { return 1u << n_fm_; }

  /// Segment size S = W / 2^nFM (Eq. 1).
  [[nodiscard]] unsigned segment_size() const { return width_ >> n_fm_; }

  /// Rotation amount T = S * (2^nFM - xfm) mod W (Eq. 2), served from
  /// the precomputed table.
  [[nodiscard]] unsigned shift_amount(unsigned xfm) const;

  /// The full per-xFM shift table (segment_count() entries). Batched
  /// codec loops index it directly — entries sourced from an fm_lut are
  /// range-checked at fm_lut::set time, so the hot loop carries no
  /// per-word contract.
  [[nodiscard]] std::span<const std::uint8_t> shift_table() const {
    return {shifts_.data(), segment_count()};
  }

  /// Segment index containing bit column `col`.
  [[nodiscard]] unsigned segment_of(unsigned col) const;

  /// Stores: rotate the data word right by shift_amount(xfm).
  [[nodiscard]] word_t apply(word_t data, unsigned xfm) const;

  /// Restores: rotate the stored word left by shift_amount(xfm).
  [[nodiscard]] word_t restore(word_t stored, unsigned xfm) const;

  /// Logical data-bit position that a fault at physical column `col`
  /// corrupts once the word is restored.
  [[nodiscard]] unsigned logical_position(unsigned col, unsigned xfm) const;

  /// Worst-case residual error magnitude 2^(S-1) under one fault per row
  /// (two's-complement integer data) — the bound behind Fig. 4.
  [[nodiscard]] double max_error_magnitude() const;

 private:
  unsigned width_;
  unsigned n_fm_;
  std::array<std::uint8_t, 64> shifts_{};  // shift_amount per xFM value
};

}  // namespace urmem
