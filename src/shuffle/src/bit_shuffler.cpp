#include "urmem/shuffle/bit_shuffler.hpp"

#include <cmath>

#include "urmem/common/contracts.hpp"

namespace urmem {

bit_shuffler::bit_shuffler(unsigned width, unsigned n_fm)
    : width_(width), n_fm_(n_fm) {
  expects(is_power_of_two(width) && width >= 2 && width <= max_word_width,
          "shuffle word width must be a power of two in [2, 64]");
  expects(n_fm >= 1 && n_fm <= log2_exact(width),
          "n_fm must be in [1, log2(width)]");
  for (unsigned xfm = 0; xfm < segment_count(); ++xfm) {
    shifts_[xfm] = static_cast<std::uint8_t>(
        (segment_size() * (segment_count() - xfm)) % width_);
  }
}

unsigned bit_shuffler::shift_amount(unsigned xfm) const {
  expects(xfm < segment_count(), "xFM exceeds the LUT entry range");
  return shifts_[xfm];
}

unsigned bit_shuffler::segment_of(unsigned col) const {
  expects(col < width_, "column out of range");
  return col / segment_size();
}

word_t bit_shuffler::apply(word_t data, unsigned xfm) const {
  return rotate_right(data, shift_amount(xfm), width_);
}

word_t bit_shuffler::restore(word_t stored, unsigned xfm) const {
  return rotate_left(stored, shift_amount(xfm), width_);
}

unsigned bit_shuffler::logical_position(unsigned col, unsigned xfm) const {
  expects(col < width_, "column out of range");
  return (col + shift_amount(xfm)) % width_;
}

double bit_shuffler::max_error_magnitude() const {
  return std::ldexp(1.0, static_cast<int>(segment_size()) - 1);
}

}  // namespace urmem
