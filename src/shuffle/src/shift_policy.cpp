#include "urmem/shuffle/shift_policy.hpp"

#include <algorithm>
#include <cmath>

namespace urmem {

double shift_cost(const bit_shuffler& shuffler,
                  std::span<const std::uint32_t> fault_cols, unsigned xfm) {
  double cost = 0.0;
  for (const std::uint32_t col : fault_cols) {
    const unsigned logical = shuffler.logical_position(col, xfm);
    cost += std::ldexp(1.0, 2 * static_cast<int>(logical));  // (2^b)^2
  }
  return cost;
}

unsigned choose_xfm(const bit_shuffler& shuffler,
                    std::span<const std::uint32_t> fault_cols,
                    shift_policy policy) {
  if (fault_cols.empty()) return 0;

  if (policy == shift_policy::first_fault) {
    const std::uint32_t top =
        *std::max_element(fault_cols.begin(), fault_cols.end());
    return shuffler.segment_of(top);
  }

  unsigned best_xfm = 0;
  double best_cost = shift_cost(shuffler, fault_cols, 0);
  for (unsigned xfm = 1; xfm < shuffler.segment_count(); ++xfm) {
    const double cost = shift_cost(shuffler, fault_cols, xfm);
    if (cost < best_cost) {
      best_cost = cost;
      best_xfm = xfm;
    }
  }
  return best_xfm;
}

}  // namespace urmem
