#include "urmem/shuffle/fm_lut.hpp"

#include <algorithm>

#include "urmem/common/contracts.hpp"

namespace urmem {

fm_lut::fm_lut(std::uint32_t rows, unsigned n_fm) : entries_(rows, 0), n_fm_(n_fm) {
  expects(rows >= 1, "fm_lut requires at least one row");
  expects(n_fm >= 1 && n_fm <= 6, "fm_lut entry width must be 1..6 bits");
}

unsigned fm_lut::get(std::uint32_t row) const {
  expects(row < rows(), "row out of range");
  return entries_[row];
}

void fm_lut::set(std::uint32_t row, unsigned xfm) {
  expects(row < rows(), "row out of range");
  expects(xfm < (1u << n_fm_), "xFM exceeds entry width");
  entries_[row] = static_cast<std::uint8_t>(xfm);
}

void fm_lut::clear() { std::fill(entries_.begin(), entries_.end(), std::uint8_t{0}); }

std::uint32_t fm_lut::nonzero_entries() const {
  return static_cast<std::uint32_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](std::uint8_t e) { return e != 0; }));
}

}  // namespace urmem
