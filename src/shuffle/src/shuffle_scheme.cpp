#include "urmem/shuffle/shuffle_scheme.hpp"

#include <vector>

#include "urmem/common/contracts.hpp"

namespace urmem {

shuffle_scheme::shuffle_scheme(std::uint32_t rows, unsigned width, unsigned n_fm,
                               shift_policy policy)
    : shuffler_(width, n_fm), lut_(rows, n_fm), policy_(policy) {}

void shuffle_scheme::program(const fault_map& faults) {
  expects(faults.geometry().rows == lut_.rows(),
          "fault map row count must match the LUT");
  expects(faults.geometry().width >= shuffler_.width(),
          "fault map must cover the data columns");
  lut_.clear();
  for (const std::uint32_t row : faults.faulty_rows()) {
    std::vector<std::uint32_t> cols;
    for (const fault& f : faults.faults_in_row(row)) {
      if (f.col < shuffler_.width()) cols.push_back(f.col);  // data columns only
    }
    if (cols.empty()) continue;
    lut_.set(row, choose_xfm(shuffler_, cols, policy_));
  }
}

}  // namespace urmem
