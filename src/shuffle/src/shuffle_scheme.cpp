#include "urmem/shuffle/shuffle_scheme.hpp"

#include <vector>

#include "urmem/common/contracts.hpp"

namespace urmem {

shuffle_scheme::shuffle_scheme(std::uint32_t rows, unsigned width, unsigned n_fm,
                               shift_policy policy)
    : shuffler_(width, n_fm), lut_(rows, n_fm), policy_(policy) {}

void shuffle_scheme::apply_write_block(std::uint32_t first,
                                       std::span<const word_t> data,
                                       std::span<word_t> out) const {
  expects(out.size() == data.size(), "output span must match the input");
  expects(first + data.size() <= lut_.rows(), "block exceeds the LUT rows");
  const std::span<const std::uint8_t> shifts = shuffler_.shift_table();
  const std::uint8_t* entries = lut_.entries().data() + first;
  const unsigned width = shuffler_.width();
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = rotate_right(data[i], shifts[entries[i]], width);
  }
}

void shuffle_scheme::restore_read_block(std::uint32_t first,
                                        std::span<const word_t> stored,
                                        std::span<word_t> out) const {
  expects(out.size() == stored.size(), "output span must match the input");
  expects(first + stored.size() <= lut_.rows(), "block exceeds the LUT rows");
  const std::span<const std::uint8_t> shifts = shuffler_.shift_table();
  const std::uint8_t* entries = lut_.entries().data() + first;
  const unsigned width = shuffler_.width();
  for (std::size_t i = 0; i < stored.size(); ++i) {
    out[i] = rotate_left(stored[i], shifts[entries[i]], width);
  }
}

void shuffle_scheme::program(const fault_map& faults) {
  expects(faults.geometry().rows == lut_.rows(),
          "fault map row count must match the LUT");
  expects(faults.geometry().width >= shuffler_.width(),
          "fault map must cover the data columns");
  lut_.clear();
  for (const std::uint32_t row : faults.faulty_rows()) {
    std::vector<std::uint32_t> cols;
    for (const fault& f : faults.faults_in_row(row)) {
      if (f.col < shuffler_.width()) cols.push_back(f.col);  // data columns only
    }
    if (cols.empty()) continue;
    lut_.set(row, choose_xfm(shuffler_, cols, policy_));
  }
}

}  // namespace urmem
