#include "urmem/memory/fault_map.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

fault_map::fault_map(array_geometry geometry) : geometry_(geometry) {
  expects(geometry.rows >= 1, "fault_map requires at least one row");
  expects(is_valid_width(geometry.width), "fault_map word width must be 1..64");
  rows_.resize(geometry.rows);
}

void fault_map::add(const fault& f) {
  expects(f.row < geometry_.rows, "fault row out of range");
  expects(f.col < geometry_.width, "fault column out of range");
  row_state& state = rows_[f.row];
  const word_t bit = word_t{1} << f.col;
  if ((state.fault_cols & bit) == 0) {
    state.fault_cols |= bit;
    ++count_;
  } else {
    // Replacing an existing fault: clear its previous behaviour first.
    state.and_mask |= bit;
    state.or_mask &= ~bit;
    state.xor_mask &= ~bit;
    state.tf_up_mask &= ~bit;
    state.tf_down_mask &= ~bit;
  }
  switch (f.kind) {
    case fault_kind::stuck_at_zero: state.and_mask &= ~bit; break;
    case fault_kind::stuck_at_one: state.or_mask |= bit; break;
    case fault_kind::flip: state.xor_mask |= bit; break;
    case fault_kind::transition_up_fail: state.tf_up_mask |= bit; break;
    case fault_kind::transition_down_fail: state.tf_down_mask |= bit; break;
  }
}

bool fault_map::row_has_faults(std::uint32_t row) const {
  expects(row < geometry_.rows, "row out of range");
  return rows_[row].fault_cols != 0;
}

std::vector<fault> fault_map::faults_in_row(std::uint32_t row) const {
  expects(row < geometry_.rows, "row out of range");
  std::vector<fault> out;
  const row_state& state = rows_[row];
  for (std::uint32_t col = 0; col < geometry_.width; ++col) {
    const word_t bit = word_t{1} << col;
    if ((state.fault_cols & bit) == 0) continue;
    fault f{row, col, fault_kind::flip};
    if ((state.and_mask & bit) == 0) f.kind = fault_kind::stuck_at_zero;
    else if ((state.or_mask & bit) != 0) f.kind = fault_kind::stuck_at_one;
    else if ((state.tf_up_mask & bit) != 0) f.kind = fault_kind::transition_up_fail;
    else if ((state.tf_down_mask & bit) != 0) {
      f.kind = fault_kind::transition_down_fail;
    }
    out.push_back(f);
  }
  return out;
}

std::vector<fault> fault_map::all_faults() const {
  std::vector<fault> out;
  out.reserve(count_);
  for (std::uint32_t row = 0; row < geometry_.rows; ++row) {
    if (rows_[row].fault_cols == 0) continue;
    const auto row_faults = faults_in_row(row);
    out.insert(out.end(), row_faults.begin(), row_faults.end());
  }
  return out;
}

std::vector<std::uint32_t> fault_map::faulty_rows() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t row = 0; row < geometry_.rows; ++row) {
    if (rows_[row].fault_cols != 0) out.push_back(row);
  }
  return out;
}

word_t fault_map::corrupt(std::uint32_t row, word_t ideal) const {
  expects(row < geometry_.rows, "row out of range");
  const row_state& state = rows_[row];
  ideal &= word_mask(geometry_.width);
  return (((ideal & state.and_mask) | state.or_mask) ^ state.xor_mask) &
         word_mask(geometry_.width);
}

word_t fault_map::apply_write(std::uint32_t row, word_t old, word_t incoming) const {
  expects(row < geometry_.rows, "row out of range");
  const row_state& state = rows_[row];
  const word_t mask = word_mask(geometry_.width);
  old &= mask;
  incoming &= mask;
  // A blocked rising transition keeps the old 0; a blocked falling
  // transition keeps the old 1.
  const word_t blocked_up = state.tf_up_mask & ~old & incoming;
  const word_t blocked_down = state.tf_down_mask & old & ~incoming;
  return ((incoming & ~blocked_up) | blocked_down) & mask;
}

fault_map::row_planes fault_map::planes_of_row(std::uint32_t row) const {
  expects(row < geometry_.rows, "row out of range");
  const row_state& state = rows_[row];
  return {state.and_mask, state.or_mask,    state.xor_mask,
          state.tf_up_mask, state.tf_down_mask, state.fault_cols};
}

word_t fault_map::corrupt_reference(std::uint32_t row, word_t ideal) const {
  expects(row < geometry_.rows, "row out of range");
  const row_state& state = rows_[row];
  word_t out = ideal & word_mask(geometry_.width);
  for (word_t pending = state.fault_cols; pending != 0; pending &= pending - 1) {
    const word_t bit = pending & (~pending + 1);
    if ((state.and_mask & bit) == 0) out &= ~bit;       // stuck-at-0
    else if ((state.or_mask & bit) != 0) out |= bit;    // stuck-at-1
    else if ((state.xor_mask & bit) != 0) out ^= bit;   // flip
    // transition faults act at write time: read-transparent here
  }
  return out;
}

word_t fault_map::apply_write_reference(std::uint32_t row, word_t old,
                                        word_t incoming) const {
  expects(row < geometry_.rows, "row out of range");
  const row_state& state = rows_[row];
  const word_t mask = word_mask(geometry_.width);
  old &= mask;
  word_t out = incoming & mask;
  for (word_t pending = state.fault_cols; pending != 0; pending &= pending - 1) {
    const word_t bit = pending & (~pending + 1);
    if ((state.tf_up_mask & bit) != 0 && (old & bit) == 0 && (out & bit) != 0) {
      out &= ~bit;  // blocked 0 -> 1: the cell keeps its 0
    } else if ((state.tf_down_mask & bit) != 0 && (old & bit) != 0 &&
               (out & bit) == 0) {
      out |= bit;  // blocked 1 -> 0: the cell keeps its 1
    }
  }
  return out;
}

std::vector<std::uint32_t> fault_map::active_fault_columns(std::uint32_t row,
                                                           word_t ideal) const {
  const word_t diff = corrupt(row, ideal) ^ (ideal & word_mask(geometry_.width));
  std::vector<std::uint32_t> cols;
  for (std::uint32_t col = 0; col < geometry_.width; ++col) {
    if (get_bit(diff, col)) cols.push_back(col);
  }
  return cols;
}

}  // namespace urmem
