#include "urmem/memory/fault_sampler.hpp"

#include <unordered_set>

#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

fault_kind draw_kind(rng& gen, fault_polarity polarity) {
  switch (polarity) {
    case fault_polarity::flip: return fault_kind::flip;
    case fault_polarity::random_stuck:
      return (gen() & 1) != 0 ? fault_kind::stuck_at_one : fault_kind::stuck_at_zero;
    case fault_polarity::mixed: {
      const std::uint64_t roll = gen.uniform_below(100);
      if (roll < 35) return fault_kind::stuck_at_zero;
      if (roll < 70) return fault_kind::stuck_at_one;
      if (roll < 80) return fault_kind::flip;
      if (roll < 90) return fault_kind::transition_up_fail;
      return fault_kind::transition_down_fail;
    }
  }
  return fault_kind::flip;
}

}  // namespace

fault_kind sample_fault_kind(rng& gen, fault_polarity polarity) {
  return draw_kind(gen, polarity);
}

fault_map sample_fault_map_exact(const array_geometry& geometry, std::uint64_t n,
                                 rng& gen, fault_polarity polarity) {
  const std::uint64_t cells = geometry.cells();
  expects(n <= cells, "cannot place more faults than cells");
  fault_map map(geometry);

  // Robert Floyd's algorithm: n distinct values from [0, cells) in O(n).
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(n) * 2);
  for (std::uint64_t j = cells - n; j < cells; ++j) {
    const std::uint64_t t = gen.uniform_below(j + 1);
    const std::uint64_t pick = chosen.contains(t) ? j : t;
    chosen.insert(pick);
    const auto row = static_cast<std::uint32_t>(pick / geometry.width);
    const auto col = static_cast<std::uint32_t>(pick % geometry.width);
    map.add(fault{row, col, draw_kind(gen, polarity)});
  }
  return map;
}

fault_map sample_fault_map_binomial(const array_geometry& geometry,
                                    const binomial_distribution& dist, rng& gen,
                                    fault_polarity polarity) {
  expects(dist.trials() == geometry.cells(),
          "binomial trial count must equal the number of cells");
  const std::uint64_t n = dist.sample(gen);
  return sample_fault_map_exact(geometry, n, gen, polarity);
}

std::string_view to_string(fault_polarity polarity) {
  switch (polarity) {
    case fault_polarity::flip: return "flip";
    case fault_polarity::random_stuck: return "random-stuck";
    case fault_polarity::mixed: return "mixed";
  }
  return "?";
}

std::optional<fault_polarity> parse_fault_polarity(std::string_view name) {
  if (name == "flip") return fault_polarity::flip;
  if (name == "random-stuck") return fault_polarity::random_stuck;
  if (name == "mixed") return fault_polarity::mixed;
  return std::nullopt;
}

}  // namespace urmem
