#include "urmem/memory/fault_map_io.hpp"

#include <fstream>
#include <sstream>

#include "urmem/common/contracts.hpp"

namespace urmem {

std::string fault_kind_name(fault_kind kind) {
  switch (kind) {
    case fault_kind::stuck_at_zero: return "sa0";
    case fault_kind::stuck_at_one: return "sa1";
    case fault_kind::flip: return "flip";
    case fault_kind::transition_up_fail: return "tfup";
    case fault_kind::transition_down_fail: return "tfdown";
  }
  return "unknown";
}

fault_kind fault_kind_from_name(const std::string& name) {
  if (name == "sa0") return fault_kind::stuck_at_zero;
  if (name == "sa1") return fault_kind::stuck_at_one;
  if (name == "flip") return fault_kind::flip;
  if (name == "tfup") return fault_kind::transition_up_fail;
  if (name == "tfdown") return fault_kind::transition_down_fail;
  throw std::invalid_argument("unknown fault kind: " + name);
}

void write_fault_map(std::ostream& out, const fault_map& map) {
  out << "urmem-faultmap v1\n";
  out << "geometry " << map.geometry().rows << " " << map.geometry().width << "\n";
  for (const fault& f : map.all_faults()) {
    out << "fault " << f.row << " " << f.col << " " << fault_kind_name(f.kind)
        << "\n";
  }
}

fault_map read_fault_map(std::istream& in) {
  std::string line;
  expects(static_cast<bool>(std::getline(in, line)), "empty fault map file");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  expects(line == "urmem-faultmap v1", "bad fault map header: " + line);

  expects(static_cast<bool>(std::getline(in, line)), "missing geometry line");
  std::istringstream geo(line);
  std::string tag;
  std::uint32_t rows = 0;
  std::uint32_t width = 0;
  geo >> tag >> rows >> width;
  expects(tag == "geometry" && !geo.fail(), "bad geometry line: " + line);

  fault_map map({rows, width});
  std::size_t line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ss(line);
    std::string kind_name;
    std::uint32_t row = 0;
    std::uint32_t col = 0;
    ss >> tag >> row >> col >> kind_name;
    expects(tag == "fault" && !ss.fail(),
            "bad fault line " + std::to_string(line_no) + ": " + line);
    map.add(fault{row, col, fault_kind_from_name(kind_name)});
  }
  return map;
}

void write_timeline_faults(std::ostream& out, const timeline_fault_set& set) {
  out << "urmem-faultmap v2\n";
  out << "geometry " << set.geometry.rows << " " << set.geometry.width << "\n";
  for (const timeline_fault& record : set.faults) {
    out << "fault " << record.f.row << " " << record.f.col << " "
        << fault_kind_name(record.f.kind) << " " << record.birth_epoch;
    if (record.intermittent) out << " intermittent";
    out << "\n";
  }
}

timeline_fault_set read_timeline_faults(std::istream& in) {
  std::string line;
  expects(static_cast<bool>(std::getline(in, line)), "empty fault map file");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const bool v2 = line == "urmem-faultmap v2";
  expects(v2 || line == "urmem-faultmap v1", "bad fault map header: " + line);

  expects(static_cast<bool>(std::getline(in, line)), "missing geometry line");
  std::istringstream geo(line);
  std::string tag;
  timeline_fault_set set;
  geo >> tag >> set.geometry.rows >> set.geometry.width;
  expects(tag == "geometry" && !geo.fail(), "bad geometry line: " + line);

  std::size_t line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ss(line);
    std::string kind_name;
    timeline_fault record;
    ss >> tag >> record.f.row >> record.f.col >> kind_name;
    expects(tag == "fault" && !ss.fail(),
            "bad fault line " + std::to_string(line_no) + ": " + line);
    record.f.kind = fault_kind_from_name(kind_name);
    if (v2) {
      ss >> record.birth_epoch;
      expects(!ss.fail(),
              "fault line " + std::to_string(line_no) +
                  " misses the birth epoch: " + line);
      std::string flag;
      if (ss >> flag) {
        expects(flag == "intermittent",
                "bad annotation on line " + std::to_string(line_no) + ": " +
                    flag);
        record.intermittent = true;
      }
    }
    std::string junk;
    expects(!(ss >> junk),
            "trailing junk on line " + std::to_string(line_no) + ": " + line);
    expects(record.f.row < set.geometry.rows &&
                record.f.col < set.geometry.width,
            "fault line " + std::to_string(line_no) +
                " lies outside the geometry: " + line);
    set.faults.push_back(record);
  }
  return set;
}

void save_fault_map(const std::string& path, const fault_map& map) {
  std::ofstream out(path);
  expects(out.good(), "cannot open for writing: " + path);
  write_fault_map(out, map);
  expects(out.good(), "write failed: " + path);
}

fault_map load_fault_map(const std::string& path) {
  std::ifstream in(path);
  expects(in.good(), "cannot open fault map file: " + path);
  return read_fault_map(in);
}

}  // namespace urmem
