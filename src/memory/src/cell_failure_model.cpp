#include "urmem/memory/cell_failure_model.hpp"

#include <cmath>

#include "urmem/common/contracts.hpp"
#include "urmem/common/stats.hpp"

namespace urmem {

cell_failure_model::cell_failure_model(double vcrit_mean, double vcrit_sigma,
                                       std::uint64_t seed)
    : mean_(vcrit_mean),
      sigma_(vcrit_sigma),
      vcrit_hash_(splitmix64(seed ^ 0x7663726974ULL)),  // "vcrit"
      kind_hash_(splitmix64(seed ^ 0x6b696e64ULL)) {    // "kind"
  expects(vcrit_sigma > 0.0, "vcrit sigma must be positive");
}

cell_failure_model cell_failure_model::default_28nm(std::uint64_t seed) {
  // Solve the two-anchor system Pcell(1.0)=1e-9, Pcell(0.73)=1e-4:
  //   (1.00 - mu)/sigma = z(1 - 1e-9) = 5.9978
  //   (0.73 - mu)/sigma = z(1 - 1e-4) = 3.7190
  // => sigma = 0.27/2.2788 = 0.11848, mu = 1.0 - 5.9978*sigma = 0.28937.
  return cell_failure_model(0.28937, 0.11848, seed);
}

double cell_failure_model::pcell(double vdd) const {
  return normal_cdf((mean_ - vdd) / sigma_);
}

double cell_failure_model::vdd_for_pcell(double p) const {
  expects(p > 0.0 && p < 1.0, "pcell must be in (0,1)");
  return mean_ - sigma_ * normal_quantile(p);
}

double cell_failure_model::array_yield(std::uint64_t cells, double pcell) {
  expects(pcell >= 0.0 && pcell <= 1.0, "pcell must be in [0,1]");
  if (pcell >= 1.0) return 0.0;
  return std::exp(static_cast<double>(cells) * std::log1p(-pcell));
}

double cell_failure_model::vcrit(std::uint64_t cell_index) const {
  return mean_ + sigma_ * normal_quantile(vcrit_hash_.uniform(cell_index));
}

bool cell_failure_model::fails_at(std::uint64_t cell_index, double vdd) const {
  return vcrit(cell_index) > vdd;
}

fault_kind cell_failure_model::stuck_kind(std::uint64_t cell_index) const {
  return (kind_hash_.bits(cell_index) & 1) != 0 ? fault_kind::stuck_at_one
                                                : fault_kind::stuck_at_zero;
}

cell_failure_model cell_failure_model::aged(double vcrit_shift) const {
  expects(vcrit_shift >= 0.0, "aging can only raise critical voltages");
  cell_failure_model aged_model = *this;  // same hashes: per-cell identity kept
  aged_model.mean_ += vcrit_shift;
  return aged_model;
}

double cell_failure_model::bti_vcrit_shift(double hours, double mv_per_decade) {
  expects(hours >= 0.0, "stress time must be nonnegative");
  return mv_per_decade * 1e-3 * std::log10(1.0 + hours);
}

fault_map cell_failure_model::faults_at_voltage(const array_geometry& geometry,
                                                double vdd) const {
  fault_map map(geometry);
  for (std::uint32_t row = 0; row < geometry.rows; ++row) {
    for (std::uint32_t col = 0; col < geometry.width; ++col) {
      const std::uint64_t index = geometry.cell_index(row, col);
      if (fails_at(index, vdd)) {
        map.add(fault{row, col, stuck_kind(index)});
      }
    }
  }
  return map;
}

}  // namespace urmem
