#include "urmem/memory/sram_array.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>

#include "urmem/common/contracts.hpp"

namespace urmem {

sram_array::sram_array(array_geometry geometry) : sram_array(fault_map(geometry)) {}

sram_array::sram_array(fault_map faults)
    : faults_(std::move(faults)),
      plane_(faults_),
      data_(faults_.geometry().rows, 0) {}

void sram_array::set_faults(fault_map faults) {
  expects(faults.geometry() == geometry(), "fault map geometry mismatch");
  faults_ = std::move(faults);
  // The compiled planes describe the previous map: recompile them
  // (in place — this runs once per tile in the Monte-Carlo loop).
  plane_.recompile(faults_);
}

fault_path sram_array::default_fault_path() {
  static const fault_path path = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read exactly once, inside a
    // magic-static initializer, before any worker thread exists; nothing
    // in the process calls setenv.
    const char* env = std::getenv("URMEM_FAULT_PATH");
    return env != nullptr && std::string_view(env) == "reference"
               ? fault_path::reference
               : fault_path::compiled;
  }();
  return path;
}

void sram_array::write(std::uint32_t row, word_t value) {
  expects(row < rows(), "row out of range");
  // Transition-fault cells refuse the blocked transition; all other
  // fault kinds corrupt on read.
  value &= word_mask(width());
  data_[row] = path_ == fault_path::reference
                   ? faults_.apply_write_reference(row, data_[row], value)
                   : plane_.apply_write(row, data_[row], value);
  accesses_.fetch_add(1, std::memory_order_relaxed);
}

word_t sram_array::read(std::uint32_t row) const {
  expects(row < rows(), "row out of range");
  accesses_.fetch_add(1, std::memory_order_relaxed);
  return path_ == fault_path::reference
             ? faults_.corrupt_reference(row, data_[row])
             : plane_.corrupt(row, data_[row]);
}

void sram_array::write_rows(std::uint32_t first, std::span<const word_t> values) {
  expects(first <= rows() && values.size() <= rows() - first,
          "row range out of bounds");
  if (path_ == fault_path::reference) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      const auto row = first + static_cast<std::uint32_t>(i);
      data_[row] = faults_.apply_write_reference(
          row, data_[row], values[i] & word_mask(width()));
    }
  } else {
    plane_.apply_write_rows(first, values,
                            std::span<word_t>(data_).subspan(first, values.size()));
  }
  accesses_.fetch_add(values.size(), std::memory_order_relaxed);
}

void sram_array::read_rows(std::uint32_t first, std::span<word_t> out) const {
  expects(first <= rows() && out.size() <= rows() - first,
          "row range out of bounds");
  accesses_.fetch_add(out.size(), std::memory_order_relaxed);
  if (path_ == fault_path::reference) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto row = first + static_cast<std::uint32_t>(i);
      out[i] = faults_.corrupt_reference(row, data_[row]);
    }
    return;
  }
  std::copy_n(data_.begin() + first, out.size(), out.begin());
  plane_.corrupt_rows(first, out);
}

word_t sram_array::read_ideal(std::uint32_t row) const {
  expects(row < rows(), "row out of range");
  return data_[row];
}

void sram_array::fill(word_t value) {
  for (std::uint32_t row = 0; row < rows(); ++row) write(row, value);
}

}  // namespace urmem
