#include "urmem/memory/sram_array.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

sram_array::sram_array(array_geometry geometry) : sram_array(fault_map(geometry)) {}

sram_array::sram_array(fault_map faults)
    : faults_(std::move(faults)), data_(faults_.geometry().rows, 0) {}

void sram_array::set_faults(fault_map faults) {
  expects(faults.geometry() == geometry(), "fault map geometry mismatch");
  faults_ = std::move(faults);
}

void sram_array::write(std::uint32_t row, word_t value) {
  expects(row < rows(), "row out of range");
  // Transition-fault cells refuse the blocked transition; all other
  // fault kinds corrupt on read.
  data_[row] = faults_.apply_write(row, data_[row], value & word_mask(width()));
  ++accesses_;
}

word_t sram_array::read(std::uint32_t row) const {
  expects(row < rows(), "row out of range");
  ++accesses_;
  return faults_.corrupt(row, data_[row]);
}

word_t sram_array::read_ideal(std::uint32_t row) const {
  expects(row < rows(), "row out of range");
  return data_[row];
}

void sram_array::fill(word_t value) {
  for (std::uint32_t row = 0; row < rows(); ++row) write(row, value);
}

}  // namespace urmem
