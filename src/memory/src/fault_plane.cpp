#include "urmem/memory/fault_plane.hpp"

namespace urmem {

fault_plane::fault_plane(const fault_map& map) { recompile(map); }

void fault_plane::recompile(const fault_map& map) {
  geometry_ = map.geometry();
  mask_ = geometry_.width == 0 ? 0 : word_mask(geometry_.width);
  fault_count_ = map.fault_count();
  // resize/assign reuse the existing capacity when the geometry repeats
  // (the common case: a fresh map for the same array every trial).
  and_.resize(geometry_.rows);
  or_.resize(geometry_.rows);
  xor_.resize(geometry_.rows);
  tf_up_.resize(geometry_.rows);
  tf_down_.resize(geometry_.rows);
  faulty_rows_.assign((geometry_.rows + 63) / 64, 0);
  for (std::uint32_t row = 0; row < geometry_.rows; ++row) {
    const fault_map::row_planes planes = map.planes_of_row(row);
    // Folding the width mask into the AND plane keeps every plane output
    // width-masked without a separate masking op in the hot loop.
    and_[row] = planes.and_mask & mask_;
    or_[row] = planes.or_mask;
    xor_[row] = planes.xor_mask;
    tf_up_[row] = planes.tf_up_mask;
    tf_down_[row] = planes.tf_down_mask;
    if (planes.fault_cols != 0) {
      faulty_rows_[row / 64] |= word_t{1} << (row % 64);
    }
  }
}

bool fault_plane::rows_fault_free(std::uint32_t first, std::size_t count) const {
  expects(first <= geometry_.rows && count <= geometry_.rows - first,
          "row range out of bounds");
  if (fault_count_ == 0 || count == 0) return true;
  const std::size_t last = first + count - 1;
  const std::size_t first_word = first / 64;
  const std::size_t last_word = last / 64;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    word_t in_range = ~word_t{0};
    if (w == first_word) in_range &= ~word_t{0} << (first % 64);
    if (w == last_word && last % 64 != 63) {
      in_range &= (word_t{1} << (last % 64 + 1)) - 1;
    }
    if ((faulty_rows_[w] & in_range) != 0) return false;
  }
  return true;
}

void fault_plane::corrupt_rows(std::uint32_t first,
                               std::span<word_t> words) const {
  expects(first <= geometry_.rows && words.size() <= geometry_.rows - first,
          "row range out of bounds");
  if (rows_fault_free(first, words.size())) return;  // already width-masked
  const word_t* a = and_.data() + first;
  const word_t* o = or_.data() + first;
  const word_t* x = xor_.data() + first;
  word_t* w = words.data();
  const std::size_t count = words.size();
  for (std::size_t i = 0; i < count; ++i) {
    w[i] = ((w[i] & a[i]) | o[i]) ^ x[i];
  }
}

void fault_plane::apply_write_rows(std::uint32_t first,
                                   std::span<const word_t> incoming,
                                   std::span<word_t> storage) const {
  expects(incoming.size() == storage.size(),
          "incoming/storage span size mismatch");
  expects(first <= geometry_.rows && incoming.size() <= geometry_.rows - first,
          "row range out of bounds");
  const std::size_t count = incoming.size();
  if (rows_fault_free(first, count)) {
    for (std::size_t i = 0; i < count; ++i) storage[i] = incoming[i] & mask_;
    return;
  }
  const word_t* up = tf_up_.data() + first;
  const word_t* down = tf_down_.data() + first;
  for (std::size_t i = 0; i < count; ++i) {
    const word_t value = incoming[i] & mask_;
    const word_t old = storage[i];
    const word_t blocked_up = up[i] & ~old & value;
    const word_t blocked_down = down[i] & old & ~value;
    storage[i] = (value & ~blocked_up) | blocked_down;
  }
}

}  // namespace urmem
