// Fault-map serialization.
//
// Post-fabrication test equipment exports fault maps; POST firmware
// reloads them. The format is a line-oriented text file, diffable and
// versionable:
//
//   urmem-faultmap v1
//   geometry <rows> <width>
//   fault <row> <col> <kind>
//   ...
//
// with kind one of: sa0, sa1, flip, tfup, tfdown.
#pragma once

#include <iosfwd>
#include <string>

#include "urmem/memory/fault_map.hpp"

namespace urmem {

/// Writes `map` in the v1 text format.
void write_fault_map(std::ostream& out, const fault_map& map);

/// Parses a v1 text fault map. Throws std::invalid_argument on
/// malformed input (bad header, unknown kind, out-of-range cells).
[[nodiscard]] fault_map read_fault_map(std::istream& in);

/// Convenience file wrappers.
void save_fault_map(const std::string& path, const fault_map& map);
[[nodiscard]] fault_map load_fault_map(const std::string& path);

/// Human-readable kind name used by the format (e.g. "sa0").
[[nodiscard]] std::string fault_kind_name(fault_kind kind);

/// Inverse of fault_kind_name; throws on unknown names.
[[nodiscard]] fault_kind fault_kind_from_name(const std::string& name);

}  // namespace urmem
