// Fault-map serialization.
//
// Post-fabrication test equipment exports fault maps; POST firmware
// reloads them. The format is a line-oriented text file, diffable and
// versionable:
//
//   urmem-faultmap v1
//   geometry <rows> <width>
//   fault <row> <col> <kind>
//   ...
//
// with kind one of: sa0, sa1, flip, tfup, tfdown.
//
// The v2 form carries the fault-lifecycle annotations the timeline
// layer (src/lifecycle) needs: the epoch a fault first appeared and
// whether the cell is intermittent (active only on some epochs):
//
//   urmem-faultmap v2
//   geometry <rows> <width>
//   fault <row> <col> <kind> <birth_epoch> [intermittent]
//
// read_timeline_faults accepts both versions (v1 records load as
// persistent epoch-0 faults), so v1 exports from older test flows feed
// the lifecycle machinery unchanged.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "urmem/memory/fault_map.hpp"

namespace urmem {

/// Writes `map` in the v1 text format.
void write_fault_map(std::ostream& out, const fault_map& map);

/// Parses a v1 text fault map. Throws std::invalid_argument on
/// malformed input (bad header, unknown kind, out-of-range cells).
[[nodiscard]] fault_map read_fault_map(std::istream& in);

/// One timeline-annotated fault record (v2 format).
struct timeline_fault {
  fault f;
  std::uint32_t birth_epoch = 0;  ///< epoch the fault first appeared
  bool intermittent = false;      ///< active only on some epochs
  friend constexpr bool operator==(const timeline_fault&,
                                   const timeline_fault&) = default;
};

/// A timeline-extended fault population: every cell that has failed (or
/// intermittently fails) by some epoch, with its lifecycle annotations.
struct timeline_fault_set {
  array_geometry geometry;
  std::vector<timeline_fault> faults;  ///< ascending (row, col)
};

/// Writes `set` in the v2 text format.
void write_timeline_faults(std::ostream& out, const timeline_fault_set& set);

/// Parses a v1 or v2 text fault map into a timeline fault set (v1
/// faults become persistent epoch-0 records). Throws
/// std::invalid_argument on malformed input, unknown kinds, trailing
/// junk or out-of-range cells.
[[nodiscard]] timeline_fault_set read_timeline_faults(std::istream& in);

/// Convenience file wrappers.
void save_fault_map(const std::string& path, const fault_map& map);
[[nodiscard]] fault_map load_fault_map(const std::string& path);

/// Human-readable kind name used by the format (e.g. "sa0").
[[nodiscard]] std::string fault_kind_name(fault_kind kind);

/// Inverse of fault_kind_name; throws on unknown names.
[[nodiscard]] fault_kind fault_kind_from_name(const std::string& name);

}  // namespace urmem
