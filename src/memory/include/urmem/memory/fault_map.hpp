// Persistent bit-cell fault maps.
//
// Once an SRAM array is manufactured (or operated at a given supply
// voltage) the set of failing bit-cells is fixed (paper Sec. 2). A
// fault_map records those cells together with their failure behaviour and
// can corrupt a stored word the way the physical array would.
#pragma once

#include <cstdint>
#include <vector>

#include "urmem/common/bitops.hpp"

namespace urmem {

/// Array geometry: `rows` words of `width` bits each.
struct array_geometry {
  std::uint32_t rows = 0;
  std::uint32_t width = 0;

  /// Total number of bit-cells M = R * W (paper Sec. 2).
  [[nodiscard]] constexpr std::uint64_t cells() const {
    return static_cast<std::uint64_t>(rows) * width;
  }

  /// Linear index of cell (row, col); col 0 is the word's LSB.
  [[nodiscard]] constexpr std::uint64_t cell_index(std::uint32_t row,
                                                   std::uint32_t col) const {
    return static_cast<std::uint64_t>(row) * width + col;
  }

  friend constexpr bool operator==(const array_geometry&, const array_geometry&) = default;
};

/// The standard 16 KB data memory of the paper: 4096 rows x 32 bits.
[[nodiscard]] constexpr array_geometry geometry_16kb_x32() { return {4096, 32}; }

/// How a failing cell corrupts the bit written to it.
enum class fault_kind : std::uint8_t {
  stuck_at_zero,         ///< cell always reads 0
  stuck_at_one,          ///< cell always reads 1
  flip,                  ///< cell always reads the complement of the stored bit
  transition_up_fail,    ///< cell cannot perform a 0 -> 1 write transition
  transition_down_fail,  ///< cell cannot perform a 1 -> 0 write transition
};

/// One failing bit-cell.
struct fault {
  std::uint32_t row = 0;
  std::uint32_t col = 0;  ///< bit position within the word, 0 = LSB
  fault_kind kind = fault_kind::flip;

  friend constexpr bool operator==(const fault&, const fault&) = default;
};

/// Set of failing cells of one array instance, with O(1) per-row corruption.
class fault_map {
 public:
  fault_map() = default;

  /// Creates an empty (fault-free) map for the given geometry.
  explicit fault_map(array_geometry geometry);

  [[nodiscard]] const array_geometry& geometry() const { return geometry_; }

  /// Registers a failing cell. Re-adding the same cell replaces its kind.
  void add(const fault& f);

  /// Total number of failing cells N.
  [[nodiscard]] std::uint64_t fault_count() const { return count_; }

  /// True when row `row` contains at least one failing cell.
  [[nodiscard]] bool row_has_faults(std::uint32_t row) const;

  /// Failing cells in `row`, in ascending column order.
  [[nodiscard]] std::vector<fault> faults_in_row(std::uint32_t row) const;

  /// All failing cells, in ascending (row, col) order.
  [[nodiscard]] std::vector<fault> all_faults() const;

  /// Rows that contain at least one failing cell, ascending.
  [[nodiscard]] std::vector<std::uint32_t> faulty_rows() const;

  /// Returns the word actually read back when `ideal` is stored in `row`.
  /// Covers the read-visible kinds (stuck-at, flip); transition faults
  /// act at write time — see apply_write.
  [[nodiscard]] word_t corrupt(std::uint32_t row, word_t ideal) const;

  /// Write-time fault semantics: the cell contents after writing
  /// `incoming` over the previous contents `old` of `row`. Transition-
  /// fault cells keep their old bit when the blocked transition is
  /// requested; all other kinds store `incoming` (their corruption is
  /// applied on read).
  [[nodiscard]] word_t apply_write(std::uint32_t row, word_t old,
                                   word_t incoming) const;

  /// Columns of `row` whose read value differs from `ideal` when `ideal`
  /// is stored (i.e. faults that are *active* for this data pattern).
  [[nodiscard]] std::vector<std::uint32_t> active_fault_columns(std::uint32_t row,
                                                                word_t ideal) const;

  /// Dense bit-plane masks of one row — what fault_plane compiles into
  /// contiguous per-mask arrays for the batched fast path.
  struct row_planes {
    word_t and_mask = ~word_t{0};
    word_t or_mask = 0;
    word_t xor_mask = 0;
    word_t tf_up_mask = 0;
    word_t tf_down_mask = 0;
    word_t fault_cols = 0;
  };

  /// Compiled masks of `row` (identity masks when the row is fault-free).
  [[nodiscard]] row_planes planes_of_row(std::uint32_t row) const;

  /// Reference read semantics: walks the row's failing cells one at a
  /// time and applies each fault individually — the per-fault debug
  /// oracle the compiled plane is validated against (property tests and
  /// the CI perf gate). Bit-identical to corrupt().
  [[nodiscard]] word_t corrupt_reference(std::uint32_t row, word_t ideal) const;

  /// Reference write semantics, per-cell walk; bit-identical to
  /// apply_write().
  [[nodiscard]] word_t apply_write_reference(std::uint32_t row, word_t old,
                                             word_t incoming) const;

 private:
  struct row_state {
    word_t and_mask = ~word_t{0};  ///< clears stuck-at-0 columns
    word_t or_mask = 0;            ///< sets stuck-at-1 columns
    word_t xor_mask = 0;           ///< inverts flip columns
    word_t tf_up_mask = 0;         ///< columns that cannot rise 0 -> 1
    word_t tf_down_mask = 0;       ///< columns that cannot fall 1 -> 0
    word_t fault_cols = 0;         ///< all faulty columns of the row
  };

  array_geometry geometry_{};
  std::vector<row_state> rows_;
  std::uint64_t count_ = 0;
};

}  // namespace urmem
