// Variation-induced SRAM cell failure statistics (paper Sec. 2, Fig. 2).
//
// The paper estimates the 6T bit-cell failure probability Pcell(VDD) in a
// 28 nm FD-SOI process from SPICE-level Monte-Carlo with hypersphere
// importance sampling [13]. We substitute an analytic critical-voltage
// model: every cell draws a persistent critical voltage
//
//     Vcrit ~ N(vcrit_mean, vcrit_sigma)
//
// from a counter-based RNG keyed by its cell index, and fails at any
// supply voltage below Vcrit. This yields
//
//     Pcell(VDD) = Phi((vcrit_mean - VDD) / vcrit_sigma),
//
// reproduces the steep log-linear tail of Fig. 2, and — because Vcrit is a
// fixed per-cell property — gives the fault-inclusion property exactly:
// a cell failing at VDD1 fails at every VDD2 < VDD1 [14].
//
// Default calibration anchors (see DESIGN.md §4):
//   Pcell(1.00 V) ~ 1e-9  (negligible failures at nominal voltage)
//   Pcell(0.73 V) ~ 1e-4  (yield of a 16 KB array collapses, as in Sec. 2)
#pragma once

#include <cstdint>

#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_map.hpp"

namespace urmem {

/// Analytic Pcell(VDD) model with per-cell persistent critical voltages.
class cell_failure_model {
 public:
  /// Constructs with explicit Gaussian Vcrit parameters (volts).
  cell_failure_model(double vcrit_mean, double vcrit_sigma, std::uint64_t seed = 1);

  /// Default 28 nm-class calibration (see header comment).
  static cell_failure_model default_28nm(std::uint64_t seed = 1);

  [[nodiscard]] double vcrit_mean() const { return mean_; }
  [[nodiscard]] double vcrit_sigma() const { return sigma_; }

  /// Cell failure probability at supply voltage `vdd`.
  [[nodiscard]] double pcell(double vdd) const;

  /// Supply voltage at which the failure probability equals `p` (inverse
  /// of pcell); `p` in (0, 1).
  [[nodiscard]] double vdd_for_pcell(double p) const;

  /// Traditional zero-failure yield Y = (1 - Pcell)^M of an array with
  /// `cells` bit-cells (paper Sec. 2).
  [[nodiscard]] static double array_yield(std::uint64_t cells, double pcell);

  /// Persistent critical voltage of the cell at linear index `cell_index`.
  [[nodiscard]] double vcrit(std::uint64_t cell_index) const;

  /// True when the cell fails at supply `vdd` (Vcrit > vdd).
  [[nodiscard]] bool fails_at(std::uint64_t cell_index, double vdd) const;

  /// Persistent stuck-at polarity of a failing cell (manufacturing
  /// defects do not choose a polarity per read).
  [[nodiscard]] fault_kind stuck_kind(std::uint64_t cell_index) const;

  /// Enumerates all failing cells of `geometry` at supply `vdd`.
  /// Fault maps produced at decreasing vdd are supersets of one another.
  [[nodiscard]] fault_map faults_at_voltage(const array_geometry& geometry,
                                            double vdd) const;

  /// Temporal-degradation (aging) model: BTI-like stress raises every
  /// cell's critical voltage by `vcrit_shift` volts while preserving the
  /// per-cell ordering, so aged fault maps are supersets of fresh ones —
  /// the scenario that motivates re-running BIST at every power-on
  /// startup test (POST), as Sec. 3 notes.
  [[nodiscard]] cell_failure_model aged(double vcrit_shift) const;

  /// Vcrit shift after `hours` of stress under a log-time BTI fit:
  /// shift = coefficient * log10(1 + hours / 1h). The default
  /// coefficient (12 mV/decade) is a typical 28 nm high-temperature
  /// figure.
  [[nodiscard]] static double bti_vcrit_shift(double hours,
                                              double mv_per_decade = 12.0);

 private:
  double mean_;
  double sigma_;
  cell_hash vcrit_hash_;
  cell_hash kind_hash_;
};

}  // namespace urmem
