// Compiled fault planes: a fault_map lowered to dense structure-of-
// arrays bit-plane masks for the Monte-Carlo injection hot loop.
//
// fault_map stays the sparse, queryable builder (add / enumerate / IO);
// fault_plane is its compiled form: one contiguous array per mask kind
// (AND for stuck-at-0, OR for stuck-at-1, XOR for flip, plus the two
// transition-fail planes), indexed by row, together with a faulty-row
// bitmap. Corrupting or writing a whole row range becomes straight-line
// word ops over contiguous memory the compiler can vectorize, and the
// bitmap lets fault-free spans skip the mask pass entirely.
//
// sram_array compiles a plane from its fault map at construction and
// recompiles it whenever set_faults installs a new map. The per-cell
// walk survives as fault_map::corrupt_reference / apply_write_reference
// — the debug oracle that the property tests and the CI perf gate
// compare this fast path against (outputs are bit-identical).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "urmem/common/bitops.hpp"
#include "urmem/common/contracts.hpp"
#include "urmem/memory/fault_map.hpp"

namespace urmem {

/// Dense per-row fault masks with O(1) word ops and batched row-range
/// application.
class fault_plane {
 public:
  /// Empty plane over a zero-row geometry; compile from a map to use.
  fault_plane() = default;

  /// Compiles `map` into dense planes (O(rows) time and space).
  explicit fault_plane(const fault_map& map);

  /// Recompiles from `map` in place, reusing the existing plane storage
  /// — the sram_array::set_faults invalidation path, which sits in the
  /// per-tile Monte-Carlo loop and must not reallocate per call.
  void recompile(const fault_map& map);

  [[nodiscard]] const array_geometry& geometry() const { return geometry_; }
  [[nodiscard]] std::uint64_t fault_count() const { return fault_count_; }
  [[nodiscard]] bool any_faults() const { return fault_count_ != 0; }

  /// Read-visible corruption of `ideal` stored in `row`: three word ops.
  /// Bit-identical to fault_map::corrupt for width-masked input.
  [[nodiscard]] word_t corrupt(std::uint32_t row, word_t ideal) const {
    expects(row < geometry_.rows, "row out of range");
    return ((ideal & and_[row]) | or_[row]) ^ xor_[row];
  }

  /// Write-time semantics: cell contents after writing `incoming` over
  /// `old`. Bit-identical to fault_map::apply_write.
  [[nodiscard]] word_t apply_write(std::uint32_t row, word_t old,
                                   word_t incoming) const {
    expects(row < geometry_.rows, "row out of range");
    old &= mask_;
    incoming &= mask_;
    const word_t blocked_up = tf_up_[row] & ~old & incoming;
    const word_t blocked_down = tf_down_[row] & old & ~incoming;
    return (incoming & ~blocked_up) | blocked_down;
  }

  /// True when rows [first, first + count) contain no failing cell —
  /// the bitmap fast path that lets batched ops skip clean spans.
  [[nodiscard]] bool rows_fault_free(std::uint32_t first,
                                     std::size_t count) const;

  /// Applies read corruption in place to `words`, where `words[i]` is
  /// the (width-masked) stored content of row `first + i`.
  void corrupt_rows(std::uint32_t first, std::span<word_t> words) const;

  /// Batched write: `storage[i]` (the current content of row
  /// `first + i`) becomes apply_write(first + i, storage[i], incoming[i]).
  void apply_write_rows(std::uint32_t first, std::span<const word_t> incoming,
                        std::span<word_t> storage) const;

 private:
  array_geometry geometry_{};
  word_t mask_ = 0;
  std::uint64_t fault_count_ = 0;
  // Structure-of-arrays planes, one word per row each.
  std::vector<word_t> and_;
  std::vector<word_t> or_;
  std::vector<word_t> xor_;
  std::vector<word_t> tf_up_;
  std::vector<word_t> tf_down_;
  std::vector<word_t> faulty_rows_;  ///< bit (row % 64) of word (row / 64)
};

}  // namespace urmem
