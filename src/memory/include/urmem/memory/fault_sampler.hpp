// Monte-Carlo fault-map generation (paper Secs. 4-5).
//
// The evaluation injects "maps of random bit-flip locations for each
// failure count" (Fig. 5) and binomially distributed failure counts for
// the application study (Fig. 7). Samplers here produce:
//  * exactly-n-fault maps with positions uniform over the array, and
//  * maps whose count is drawn from Binomial(M, Pcell).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "urmem/common/binomial.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_map.hpp"

namespace urmem {

/// How injected faults corrupt the stored bit.
enum class fault_polarity : std::uint8_t {
  flip,          ///< deterministic inversion — the paper's "bit-flip" injection
  random_stuck,  ///< stuck-at-0 / stuck-at-1 with equal probability
  mixed,         ///< realistic manufacturing mix: 35% SA0, 35% SA1,
                 ///< 10% flip, 10% TF-up, 10% TF-down
};

/// Spec-file name of a polarity ("flip", "random-stuck", "mixed").
[[nodiscard]] std::string_view to_string(fault_polarity polarity);

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<fault_polarity> parse_fault_polarity(
    std::string_view name);

/// Draws one fault kind under `polarity` — the per-cell kind assignment
/// the map samplers use, exposed for incremental samplers (the fault
/// timeline's per-epoch arrivals).
[[nodiscard]] fault_kind sample_fault_kind(rng& gen, fault_polarity polarity);

/// Draws a map with exactly `n` faults at distinct uniform cell positions.
/// `n` must not exceed the number of cells.
[[nodiscard]] fault_map sample_fault_map_exact(const array_geometry& geometry,
                                               std::uint64_t n, rng& gen,
                                               fault_polarity polarity =
                                                   fault_polarity::flip);

/// Draws a map whose fault count follows Binomial(cells, pcell).
[[nodiscard]] fault_map sample_fault_map_binomial(const array_geometry& geometry,
                                                  const binomial_distribution& dist,
                                                  rng& gen,
                                                  fault_polarity polarity =
                                                      fault_polarity::flip);

}  // namespace urmem
