// Functional model of an unreliable SRAM array (paper Fig. 1).
//
// The array stores one word per row and applies its fault map on every
// read — the software equivalent of reading through failing bit-cells.
// Reads and writes go through a compiled fault_plane (dense per-row
// bit-plane masks, see fault_plane.hpp) which is recompiled whenever
// set_faults installs a new map; the per-cell reference walk is kept as
// a switchable debug oracle (fault_path::reference, or process-wide via
// URMEM_FAULT_PATH=reference) and is bit-identical to the fast path.
// A fault-free back door (read_ideal / raw word access) is provided for
// test oracles and for the BIST engine's expected-data comparison.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "urmem/common/bitops.hpp"
#include "urmem/memory/fault_map.hpp"
#include "urmem/memory/fault_plane.hpp"

namespace urmem {

/// Which fault machinery serves reads and writes.
enum class fault_path : std::uint8_t {
  compiled,   ///< dense fault_plane masks (the fast path, default)
  reference,  ///< per-cell fault walk (debug oracle, bit-identical)
};

/// R x W bit SRAM with persistent stuck-at / flip / transition faults.
///
/// Thread-safety audit (no locks by design): the array itself is not
/// synchronized — callers serialize same-row access externally (the
/// serving tier's per-row stripe locks) and must not overlap
/// set_faults/set_fault_path/fill with traffic (the serving tier's
/// exclusive epoch gate guarantees that). Distinct-row reads/writes
/// touch disjoint words_ slots and are safe. The one internally
/// synchronized member is the relaxed atomic access counter, so the
/// energy tally stays exact under concurrent traffic.
class sram_array {
 public:
  /// Fault-free array of the given geometry.
  explicit sram_array(array_geometry geometry);

  /// Array with the given fault map (geometry taken from the map).
  explicit sram_array(fault_map faults);

  [[nodiscard]] const array_geometry& geometry() const { return faults_.geometry(); }
  [[nodiscard]] const fault_map& faults() const { return faults_; }

  /// The compiled fault planes currently in effect.
  [[nodiscard]] const fault_plane& plane() const { return plane_; }

  /// Replaces the fault map (e.g. after re-running BIST at a new supply
  /// voltage) and recompiles the fault plane. Geometry must match;
  /// stored data is preserved.
  void set_faults(fault_map faults);

  /// Selects the compiled fast path or the per-cell reference oracle for
  /// subsequent reads/writes. Both produce bit-identical results.
  void set_fault_path(fault_path path) { path_ = path; }
  [[nodiscard]] fault_path path() const { return path_; }

  /// Process-wide default path: fault_path::reference when the
  /// URMEM_FAULT_PATH environment variable is "reference" (read once),
  /// fault_path::compiled otherwise.
  [[nodiscard]] static fault_path default_fault_path();

  /// Number of rows R.
  [[nodiscard]] std::uint32_t rows() const { return geometry().rows; }

  /// Word width W in bits.
  [[nodiscard]] unsigned width() const { return geometry().width; }

  /// Stores `value` (low W bits) into `row`.
  void write(std::uint32_t row, word_t value);

  /// Reads `row` through the faulty cells.
  [[nodiscard]] word_t read(std::uint32_t row) const;

  /// Batched write of rows [first, first + values.size()): one word per
  /// row, streamed through the compiled planes. Counts one access per
  /// word, added once for the whole row op.
  void write_rows(std::uint32_t first, std::span<const word_t> values);

  /// Batched read of rows [first, first + out.size()) through the
  /// faulty cells. Counts one access per word, added once per row op.
  void read_rows(std::uint32_t first, std::span<word_t> out) const;

  /// Reads `row` bypassing the faults (test/BIST oracle only; a real
  /// array has no such port).
  [[nodiscard]] word_t read_ideal(std::uint32_t row) const;

  /// Fills every row with `value`.
  void fill(word_t value);

  /// Total accesses performed so far (reads + writes), for the energy
  /// accounting in the hardware model examples. Batched row ops count
  /// exactly one access per word touched. The counter is a relaxed
  /// atomic so concurrent serving traffic (distinct rows from many
  /// threads) tallies exactly without a data race; it imposes no
  /// ordering on the data itself.
  [[nodiscard]] std::uint64_t access_count() const {
    return accesses_.load(std::memory_order_relaxed);
  }

 private:
  fault_map faults_;
  fault_plane plane_;
  std::vector<word_t> data_;
  fault_path path_ = default_fault_path();
  mutable std::atomic<std::uint64_t> accesses_{0};
};

}  // namespace urmem
