// Functional model of an unreliable SRAM array (paper Fig. 1).
//
// The array stores one word per row and applies its fault map on every
// read — the software equivalent of reading through failing bit-cells.
// A fault-free back door (read_ideal / raw word access) is provided for
// test oracles and for the BIST engine's expected-data comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "urmem/common/bitops.hpp"
#include "urmem/memory/fault_map.hpp"

namespace urmem {

/// R x W bit SRAM with persistent stuck-at / flip faults.
class sram_array {
 public:
  /// Fault-free array of the given geometry.
  explicit sram_array(array_geometry geometry);

  /// Array with the given fault map (geometry taken from the map).
  explicit sram_array(fault_map faults);

  [[nodiscard]] const array_geometry& geometry() const { return faults_.geometry(); }
  [[nodiscard]] const fault_map& faults() const { return faults_; }

  /// Replaces the fault map (e.g. after re-running BIST at a new supply
  /// voltage). Geometry must match; stored data is preserved.
  void set_faults(fault_map faults);

  /// Number of rows R.
  [[nodiscard]] std::uint32_t rows() const { return geometry().rows; }

  /// Word width W in bits.
  [[nodiscard]] unsigned width() const { return geometry().width; }

  /// Stores `value` (low W bits) into `row`.
  void write(std::uint32_t row, word_t value);

  /// Reads `row` through the faulty cells.
  [[nodiscard]] word_t read(std::uint32_t row) const;

  /// Reads `row` bypassing the faults (test/BIST oracle only; a real
  /// array has no such port).
  [[nodiscard]] word_t read_ideal(std::uint32_t row) const;

  /// Fills every row with `value`.
  void fill(word_t value);

  /// Total accesses performed so far (reads + writes), for the energy
  /// accounting in the hardware model examples.
  [[nodiscard]] std::uint64_t access_count() const { return accesses_; }

 private:
  fault_map faults_;
  std::vector<word_t> data_;
  mutable std::uint64_t accesses_ = 0;
};

}  // namespace urmem
