#include "urmem/bist/march_test.hpp"

namespace urmem {

std::size_t march_algorithm::complexity() const {
  std::size_t ops = 0;
  for (const auto& element : elements) ops += element.ops.size();
  return ops;
}

march_algorithm mats_plus() {
  return {"MATS+",
          {
              {address_order::any, {w0()}},
              {address_order::ascending, {r0(), w1()}},
              {address_order::descending, {r1(), w0()}},
          }};
}

march_algorithm march_c_minus() {
  return {"March C-",
          {
              {address_order::any, {w0()}},
              {address_order::ascending, {r0(), w1()}},
              {address_order::ascending, {r1(), w0()}},
              {address_order::descending, {r0(), w1()}},
              {address_order::descending, {r1(), w0()}},
              {address_order::any, {r0()}},
          }};
}

march_algorithm march_a() {
  return {"March A",
          {
              {address_order::any, {w0()}},
              {address_order::ascending, {r0(), w1(), w0(), w1()}},
              {address_order::ascending, {r1(), w0(), w1()}},
              {address_order::descending, {r1(), w0(), w1(), w0()}},
              {address_order::descending, {r0(), w1(), w0()}},
          }};
}

march_algorithm march_b() {
  return {"March B",
          {
              {address_order::any, {w0()}},
              {address_order::ascending, {r0(), w1(), r1(), w0(), r0(), w1()}},
              {address_order::ascending, {r1(), w0(), w1()}},
              {address_order::descending, {r1(), w0(), w1(), w0()}},
              {address_order::descending, {r0(), w1(), w0()}},
          }};
}

march_algorithm march_ss() {
  return {"March SS",
          {
              {address_order::any, {w0()}},
              {address_order::ascending, {r0(), r0(), w0(), r0(), w1()}},
              {address_order::ascending, {r1(), r1(), w1(), r1(), w0()}},
              {address_order::descending, {r0(), r0(), w0(), r0(), w1()}},
              {address_order::descending, {r1(), r1(), w1(), r1(), w0()}},
              {address_order::any, {r0()}},
          }};
}

}  // namespace urmem
