#include "urmem/bist/bist_engine.hpp"

#include <vector>

#include "urmem/common/contracts.hpp"

namespace urmem {

bist_engine::bist_engine(march_algorithm algorithm, std::vector<word_t> backgrounds)
    : algorithm_(std::move(algorithm)), backgrounds_(std::move(backgrounds)) {
  expects(!algorithm_.elements.empty(), "march algorithm has no elements");
  expects(!backgrounds_.empty(), "BIST needs at least one background pattern");
}

bist_result bist_engine::run(sram_array& array) const {
  const array_geometry geometry = array.geometry();
  const word_t mask = word_mask(geometry.width);

  // Per cell, track in which expected-bit directions a mismatch occurred.
  std::vector<std::uint8_t> misread_as_one(geometry.cells(), 0);  // expected 0, read 1
  std::vector<std::uint8_t> misread_as_zero(geometry.cells(), 0); // expected 1, read 0

  bist_result result{fault_map(geometry)};

  for (const word_t background : backgrounds_) {
    for (const march_element& element : algorithm_.elements) {
      const bool descending = element.order == address_order::descending;
      for (std::uint32_t i = 0; i < geometry.rows; ++i) {
        const std::uint32_t row = descending ? geometry.rows - 1 - i : i;
        for (const march_op& op : element.ops) {
          const word_t pattern = (op.inverted ? ~background : background) & mask;
          if (op.is_read) {
            ++result.reads;
            const word_t observed = array.read(row);
            const word_t diff = (observed ^ pattern) & mask;
            if (diff == 0) continue;
            for (std::uint32_t col = 0; col < geometry.width; ++col) {
              if (!get_bit(diff, col)) continue;
              const std::uint64_t cell = geometry.cell_index(row, col);
              if (get_bit(pattern, col)) {
                misread_as_zero[cell] = 1;
              } else {
                misread_as_one[cell] = 1;
              }
            }
          } else {
            ++result.writes;
            array.write(row, pattern);
          }
        }
      }
    }
  }

  for (std::uint32_t row = 0; row < geometry.rows; ++row) {
    for (std::uint32_t col = 0; col < geometry.width; ++col) {
      const std::uint64_t cell = geometry.cell_index(row, col);
      const bool as_one = misread_as_one[cell] != 0;
      const bool as_zero = misread_as_zero[cell] != 0;
      if (!as_one && !as_zero) continue;
      fault_kind kind;
      if (as_one && as_zero) kind = fault_kind::flip;
      else if (as_one) kind = fault_kind::stuck_at_one;
      else kind = fault_kind::stuck_at_zero;
      result.faults.add(fault{row, col, kind});
    }
  }
  result.pass = result.faults.fault_count() == 0;
  return result;
}

bist_result bist_engine::run_and_program(sram_array& array,
                                         shuffle_scheme& scheme) const {
  bist_result result = run(array);
  scheme.program(result.faults);
  return result;
}

}  // namespace urmem
