// March test algorithms for memory built-in self test.
//
// The paper (Sec. 3) determines the per-row fault locations "during BIST,
// which can be executed either during post-fabrication testing or during
// power-on startup testing (POST)". March tests are the industry-standard
// BIST algorithms: sequences of march elements, each sweeping the address
// space in a fixed order and applying a read/write pattern per address.
//
// Notation (van de Goor): ⇑ ascending, ⇓ descending, ⇕ either order;
// w0/w1 write the background/inverted-background pattern, r0/r1 read and
// compare against it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace urmem {

/// Address sweep direction of a march element.
enum class address_order : std::uint8_t {
  ascending,
  descending,
  any,  ///< order irrelevant for coverage; executed ascending
};

/// One primitive operation of a march element.
struct march_op {
  bool is_read = false;  ///< true: read & compare, false: write
  bool inverted = false; ///< false: background pattern, true: its complement
};

/// Shorthand constructors matching the r0/r1/w0/w1 notation.
[[nodiscard]] constexpr march_op r0() { return {true, false}; }
[[nodiscard]] constexpr march_op r1() { return {true, true}; }
[[nodiscard]] constexpr march_op w0() { return {false, false}; }
[[nodiscard]] constexpr march_op w1() { return {false, true}; }

/// A sweep over all addresses applying `ops` at each address.
struct march_element {
  address_order order = address_order::any;
  std::vector<march_op> ops;
};

/// A complete march algorithm.
struct march_algorithm {
  std::string name;
  std::vector<march_element> elements;

  /// Operations per address per background — the test-time metric
  /// (e.g. 10 for March C-).
  [[nodiscard]] std::size_t complexity() const;
};

/// MATS+ (5N): {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)} — detects all stuck-at and
/// address-decoder faults.
[[nodiscard]] march_algorithm mats_plus();

/// March C- (10N): {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}
/// — adds full coupling-fault coverage. The default BIST algorithm here.
[[nodiscard]] march_algorithm march_c_minus();

/// March SS (22N): extends March C- with read-after-read sequences that
/// expose stable read-destructive and deceptive faults.
[[nodiscard]] march_algorithm march_ss();

/// March A (15N): {⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1);
/// ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)} — linked coupling faults.
[[nodiscard]] march_algorithm march_a();

/// March B (17N): March A variant with extra read verification in the
/// first ascending element.
[[nodiscard]] march_algorithm march_b();

}  // namespace urmem
