// BIST engine: runs a march algorithm against a (faulty) SRAM array,
// diagnoses the failing bit-cells, and produces the fault map that
// programs the bit-shuffling FM-LUT (paper Sec. 3, step 1).
#pragma once

#include <cstdint>
#include <vector>

#include "urmem/bist/march_test.hpp"
#include "urmem/memory/fault_map.hpp"
#include "urmem/memory/sram_array.hpp"
#include "urmem/shuffle/shuffle_scheme.hpp"

namespace urmem {

/// Outcome of a BIST run.
struct bist_result {
  fault_map faults;          ///< diagnosed failing cells with inferred kinds
  std::uint64_t reads = 0;   ///< total read operations issued
  std::uint64_t writes = 0;  ///< total write operations issued
  bool pass = false;         ///< true when no mismatch was observed

  /// Traditional zero-failure test verdict (paper Sec. 2): reject the
  /// die when any cell fails.
  [[nodiscard]] bool traditional_accept() const { return pass; }
};

/// Runs march algorithms and diagnoses fault locations and kinds.
///
/// Diagnosis: a cell that misreads only when the expected bit is 0 is
/// stuck-at-1, only when the expected bit is 1 is stuck-at-0, and in
/// both directions behaves as an inverting (flip) cell.
class bist_engine {
 public:
  /// `backgrounds` are the data patterns swept by the algorithm; the
  /// default solid + checkerboard pair covers word-level stuck-at and
  /// intra-word coupling visibility.
  explicit bist_engine(march_algorithm algorithm = march_c_minus(),
                       std::vector<word_t> backgrounds = {0x0ULL,
                                                          0xAAAAAAAAAAAAAAAAULL});

  [[nodiscard]] const march_algorithm& algorithm() const { return algorithm_; }

  /// Executes the test. Destroys array contents (as real BIST does).
  [[nodiscard]] bist_result run(sram_array& array) const;

  /// Convenience for the paper's flow: run BIST, then program the
  /// FM-LUT of `scheme` from the diagnosed fault map. Returns the result.
  bist_result run_and_program(sram_array& array, shuffle_scheme& scheme) const;

 private:
  march_algorithm algorithm_;
  std::vector<word_t> backgrounds_;
};

}  // namespace urmem
