// Heterogeneous-reliability tiers: one tile, several protection
// schemes, routed by row range — the Luo-et-al. HRM design point where
// only the error-critical part of an application's footprint pays for
// strong protection and the tolerant tail runs on a cheap scheme.
//
// A tiered_scheme owns an ordered, gap-free list of tiers over the
// tile's rows; every protection_scheme hook routes to the tier owning
// the row (rows are rebased so each tier scheme sees a 0-based range of
// its own size). The stored width is the maximum tier storage width:
// narrower tiers simply never drive the surplus columns, exactly like a
// heterogeneous array whose strong-ECC region is the one that dictates
// the manufactured column count. Block encode/decode segment the span
// per tier and delegate to each tier's compiled fast path, so the
// one-virtual-call-per-tile batching survives heterogeneity; the
// reference oracle composes per-word through the tiers' own reference
// codecs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "urmem/scheme/protection_scheme.hpp"

namespace urmem {

/// Row-range-routed composition of per-tier protection schemes.
class tiered_scheme final : public protection_scheme {
 public:
  /// One tier: an inclusive row range and the scheme protecting it.
  /// `scheme` must be built for exactly last_row - first_row + 1 rows.
  struct tier {
    std::uint32_t first_row = 0;
    std::uint32_t last_row = 0;  ///< inclusive
    std::unique_ptr<protection_scheme> scheme;
  };

  /// Tiers must be ordered, contiguous from row 0, and agree on
  /// data_bits(). `storage_bits_hint` pins the stored width when the
  /// widest tier of the full design is not instantiated here (probe
  /// instances clamped to a smaller row count); 0 = max over `tiers`.
  explicit tiered_scheme(std::vector<tier> tiers,
                         unsigned storage_bits_hint = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned data_bits() const override { return data_bits_; }
  [[nodiscard]] unsigned storage_bits() const override { return storage_bits_; }
  /// Max over tiers: the side-table column count the tile manufactures.
  [[nodiscard]] unsigned lut_bits_per_row() const override;

  [[nodiscard]] std::size_t tier_count() const { return tiers_.size(); }
  [[nodiscard]] const tier& tier_at(std::size_t i) const { return tiers_[i]; }
  /// Index of the tier owning `row`.
  [[nodiscard]] std::size_t tier_of(std::uint32_t row) const;

  void configure(const fault_map& faults) override;
  [[nodiscard]] word_t encode(std::uint32_t row, word_t data) const override;
  [[nodiscard]] read_result decode(std::uint32_t row, word_t stored) const override;
  void encode_block(std::uint32_t first_row, std::span<const word_t> data,
                    std::span<word_t> out) const override;
  block_decode_stats decode_block(std::uint32_t first_row,
                                  std::span<const word_t> stored,
                                  std::span<word_t> out) const override;
  [[nodiscard]] word_t encode_reference(std::uint32_t row,
                                        word_t data) const override;
  [[nodiscard]] read_result decode_reference(std::uint32_t row,
                                             word_t stored) const override;

  /// Row-agnostic worst case = the most expensive tier for these
  /// columns (the residual bits are that tier's). Prefer the *_at
  /// variants, which charge the row's actual tier.
  [[nodiscard]] double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const override;
  void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                           std::vector<std::uint32_t>& out) const override;
  [[nodiscard]] double worst_case_row_cost_at(
      std::uint32_t row, std::span<const std::uint32_t> fault_cols) const override;
  void residual_fault_bits_at(std::uint32_t row,
                              std::span<const std::uint32_t> fault_cols,
                              std::vector<std::uint32_t>& out) const override;

 private:
  /// Columns the tier actually stores (drops the surplus columns a
  /// wider sibling tier forced onto the array).
  static std::span<const std::uint32_t> clip_cols(
      const tier& t, std::span<const std::uint32_t> fault_cols,
      std::vector<std::uint32_t>& scratch);

  std::vector<tier> tiers_;
  unsigned data_bits_ = 0;
  unsigned storage_bits_ = 0;
};

}  // namespace urmem
