// Spare-row redundancy repair — the classical yield technique the paper
// dismisses in Sec. 2: "as the number of failures increases, the number
// of redundant rows/columns required to replace every faulty
// row/column increases tremendously [15] … an unviable option when
// considering worst-case process variations."
//
// This module makes that argument quantitative: a repair engine that
// remaps faulty data rows onto fault-free spare rows (spares are
// manufactured in the same process and fail at the same Pcell), plus
// the repair-yield analysis the ablation bench sweeps.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/memory/fault_map.hpp"

namespace urmem {

/// Outcome of a spare-row repair pass.
struct repair_result {
  /// Residual faults visible through the remapped address space
  /// (geometry = data rows only). Empty map = fully repaired.
  fault_map residual;
  std::uint32_t faulty_data_rows = 0;
  std::uint32_t usable_spares = 0;   ///< manufactured fault-free spares
  std::uint32_t repaired_rows = 0;
  /// (logical data row -> physical spare row) assignments, ascending.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> remaps;
  /// True when every faulty data row found a fault-free spare.
  [[nodiscard]] bool fully_repaired() const {
    return residual.fault_count() == 0;
  }
};

/// Laser-fuse style row remapping for an R-data-row, K-spare-row array.
class row_redundancy_repair {
 public:
  /// `data_rows` primary rows, `spare_rows` spares, both `width` bits.
  row_redundancy_repair(std::uint32_t data_rows, std::uint32_t spare_rows,
                        std::uint32_t width);

  [[nodiscard]] std::uint32_t data_rows() const { return data_rows_; }
  [[nodiscard]] std::uint32_t spare_rows() const { return spare_rows_; }

  /// Geometry of the full manufactured array (data + spares) that the
  /// post-fabrication fault map must cover.
  [[nodiscard]] array_geometry manufactured_geometry() const {
    return {data_rows_ + spare_rows_, width_};
  }

  /// Runs the repair: faulty data rows are remapped (in ascending
  /// order) onto fault-free spares until the spares run out.
  [[nodiscard]] repair_result repair(const fault_map& manufactured) const;

  /// Physical row serving logical row `row` after the given repair
  /// (identity when the row was healthy or spares were exhausted).
  [[nodiscard]] static std::optional<std::uint32_t> remap_of(
      const repair_result& result, std::uint32_t row);

 private:
  std::uint32_t data_rows_;
  std::uint32_t spare_rows_;
  std::uint32_t width_;
};

/// Monte-Carlo estimate of the repair yield: the fraction of
/// manufactured arrays (data + spares, cells failing i.i.d. at `pcell`)
/// that end up with zero residual faults after repair.
[[nodiscard]] double repair_yield(std::uint32_t data_rows, std::uint32_t spare_rows,
                                  std::uint32_t width, double pcell,
                                  std::uint32_t mc_runs, rng& gen);

/// Smallest spare-row count reaching `yield_target`, searched
/// incrementally with `mc_runs` Monte-Carlo arrays per candidate;
/// returns nullopt if `max_spares` is not enough.
[[nodiscard]] std::optional<std::uint32_t> spares_for_yield(
    std::uint32_t data_rows, std::uint32_t width, double pcell,
    double yield_target, std::uint32_t max_spares, std::uint32_t mc_runs,
    rng& gen);

}  // namespace urmem
