// A faulty SRAM array wrapped by a protection scheme — the functional
// memory model the application experiments (paper Sec. 5.2) read and
// write through.
//
// Optionally the array is manufactured with spare rows: set_fault_map
// then runs the classical laser-fuse repair (row_redundancy) before the
// scheme configures itself, remapping faulty data rows onto fault-free
// spares. Spares fail at the same Pcell as data rows — they are part of
// storage_geometry(), so fault injectors cover them — and whatever the
// repair cannot fix is exactly what the protection scheme sees.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "urmem/memory/sram_array.hpp"
#include "urmem/scheme/protection_scheme.hpp"

namespace urmem {

/// One reliability region of a tile: an inclusive logical row range
/// with its own spare-row pool. Regions must be ordered and tile the
/// logical rows exactly; each region's spares are manufactured after
/// the data rows, grouped in region order, and its repair pass only
/// draws from its own pool (a faulty MSB-critical region cannot steal
/// the tolerant tail's spares).
struct memory_region {
  std::uint32_t first_row = 0;
  std::uint32_t last_row = 0;  ///< inclusive
  std::uint32_t spare_rows = 0;
  /// Columns this region's scheme actually stores; 0 = the full array
  /// width. A heterogeneous tile is manufactured at the widest tier's
  /// width, so a narrower region's surplus columns hold no data —
  /// faults there are harmless, and the region's repair pass must not
  /// burn a spare on (or disqualify a spare for) such a fault.
  unsigned storage_bits = 0;

  [[nodiscard]] std::uint32_t rows() const { return last_row - first_row + 1; }
};

/// Scheme-protected unreliable memory of `rows` words.
class protected_memory {
 public:
  /// Fault-free memory; inject faults later with set_fault_map().
  /// `spare_rows` extra physical rows back the redundancy repair (0 =
  /// no repair stage, the paper's default); this is the homogeneous
  /// one-region special case of the region constructor.
  protected_memory(std::uint32_t rows, std::unique_ptr<protection_scheme> scheme,
                   std::uint32_t spare_rows = 0);

  /// Heterogeneous-reliability tile: `regions` must tile [0, rows)
  /// exactly (ordered, gap-free); each region owns its spare pool.
  protected_memory(std::uint32_t rows, std::unique_ptr<protection_scheme> scheme,
                   std::vector<memory_region> regions);

  /// Logical (addressable) rows; spares are not directly addressable.
  [[nodiscard]] std::uint32_t rows() const { return logical_rows_; }
  /// Total manufactured spares (summed over regions).
  [[nodiscard]] std::uint32_t spare_rows() const { return spare_rows_; }
  [[nodiscard]] const protection_scheme& scheme() const { return *scheme_; }
  [[nodiscard]] const sram_array& array() const { return array_; }

  /// The region table (always non-empty; the legacy constructor makes
  /// one region spanning every row).
  [[nodiscard]] const std::vector<memory_region>& regions() const {
    return regions_;
  }

  /// First physical row of region `index`'s spare pool (its spares are
  /// the `regions()[index].spare_rows` rows from there).
  [[nodiscard]] std::uint32_t region_spare_base(std::size_t index) const;

  /// Manufactured storage geometry (data + spare rows x storage_bits)
  /// the fault maps must use.
  [[nodiscard]] array_geometry storage_geometry() const {
    return array_.geometry();
  }

  /// Installs a fault map (geometry = storage_geometry()), runs each
  /// region's spare-row repair when that region has spares, and lets
  /// the scheme reconfigure itself from the (post-repair) faults, the
  /// way a BIST + fuse + BIST flow would. A fault-free map short-
  /// circuits the repair pass entirely: row_remaps() stays empty and no
  /// repair engine runs.
  void set_fault_map(fault_map faults);

  /// (logical row -> spare row) assignments of the last repair.
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
  row_remaps() const {
    return remaps_;
  }

  /// Replaces the installed fault map in place — the fault-lifecycle
  /// epoch step. Unlike set_fault_map this neither re-runs the spare
  /// repair (laser fuses blow once, at manufacture) nor reconfigures
  /// the scheme (no POST between epochs): stored data, remaps and the
  /// scheme configuration all survive, only the fault population moves.
  void update_fault_map(fault_map faults);

  /// Retires logical `row` onto an unused fault-free spare from its own
  /// region's pool, storing `data` (re-encoded) there — the runtime
  /// row-retirement step layered above ECC. Spares age like data rows:
  /// a spare is eligible only when the *current* fault map leaves its
  /// storage bits clean. Returns the physical spare row, or nullopt
  /// when the pool is exhausted (all used or all faulty). Re-retiring
  /// an already-remapped row replaces the mapping; the worn-out spare
  /// stays consumed.
  std::optional<std::uint32_t> retire_row(std::uint32_t row, word_t data);

  /// Like retire_row but draws from region `region_index`'s pool
  /// instead of the row's own — the cross-region degradation remap
  /// (move a failing row into the reliable tier's spares).
  std::optional<std::uint32_t> retire_row_to_region(std::uint32_t row,
                                                    std::size_t region_index,
                                                    word_t data);

  /// Spares of region `index` still unused (used = consumed by repair
  /// or runtime retirement; faulty-but-unused spares still count here —
  /// eligibility is re-checked against the live map at retire time).
  [[nodiscard]] std::uint32_t unused_spares(std::size_t index) const;

  /// Region index containing logical `row`.
  [[nodiscard]] std::size_t region_of(std::uint32_t row) const;

  /// Physical row currently serving logical `row` (identity unless
  /// remapped) — where the lifecycle layer's raw retry reads land.
  [[nodiscard]] std::uint32_t physical_row_of(std::uint32_t row) const {
    return physical_row(row);
  }

  /// The raw (encoded, fault-free backdoor) storage word behind logical
  /// `row` — the pristine stored codeword a read-retry re-corrupts
  /// through the timeline's intermittent-cell model.
  [[nodiscard]] word_t raw_storage_word(std::uint32_t row) const {
    return array_.read_ideal(physical_row(row));
  }

  /// Selects the compiled fast machinery or the reference oracle for
  /// subsequent accesses — switches both the array's fault application
  /// (see sram_array::set_fault_path) and the scheme codec path used by
  /// write_block/read_block (block-compiled vs per-word reference).
  void set_fault_path(fault_path path) { array_.set_fault_path(path); }

  /// Encodes and stores a data word.
  void write(std::uint32_t row, word_t data);

  /// Reads and decodes a data word through the faulty array.
  [[nodiscard]] read_result read(std::uint32_t row) const;

  /// Decode outcome counters of a batched read_block — the scheme
  /// layer's counters, accumulated over the whole block.
  using block_stats = block_decode_stats;

  /// Encodes `data` and streams it into rows [first, first + size):
  /// one scheme->encode_block call into the tile scratch, then one
  /// batched row op — no per-word virtual calls. When the array runs
  /// the reference fault path (URMEM_FAULT_PATH=reference or
  /// set_fault_path), encoding drops to the per-word
  /// scheme->encode_reference oracle instead, so the figure benches
  /// differentially test block-vs-scalar and compiled-vs-reference
  /// codecs in one switch.
  void write_block(std::uint32_t first, std::span<const word_t> data);

  /// Streams rows [first, first + size) out of the array and decodes
  /// them into `out` (in place over the raw storage words) through
  /// scheme->decode_block (or the per-word decode_reference oracle on
  /// the reference path), accumulating decode outcomes into `stats`
  /// when given.
  void read_block(std::uint32_t first, std::span<word_t> out,
                  block_stats* stats = nullptr) const;

  /// Analytic MSE of the current fault map under this scheme — Eq. (6)
  /// evaluated over all rows: (1/R) * sum_i (2^{b_i})^2.
  [[nodiscard]] double analytic_mse() const;

  /// Analytic MSE restricted to logical rows [first, last] (inclusive),
  /// normalized by that range's row count — the per-region residual
  /// breakdown of the heterogeneous-reliability reports.
  [[nodiscard]] double analytic_mse(std::uint32_t first, std::uint32_t last) const;

  /// Number of logical rows whose current fault population exceeds the
  /// scheme's correction guarantee (nonzero analytic residual) — the
  /// exact integer behind the serving tier's quality_query. Depends
  /// only on the installed fault map and remap table, so it is a pure
  /// function of the lifecycle epoch.
  [[nodiscard]] std::uint64_t residual_rows() const;

 private:
  /// Physical row serving logical `row` (identity unless remapped).
  [[nodiscard]] std::uint32_t physical_row(std::uint32_t row) const;

  std::unique_ptr<protection_scheme> scheme_;
  std::uint32_t logical_rows_;
  std::uint32_t spare_rows_;
  std::vector<memory_region> regions_;
  /// Physical first spare row per region (prefix layout, region order).
  std::vector<std::uint32_t> spare_bases_;
  sram_array array_;
  /// Sorted (logical row -> spare row) remaps; empty without repair.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> remaps_;
  /// Per-spare consumption flags, indexed by (physical - logical_rows_);
  /// set by manufacture repair and runtime retirement alike.
  std::vector<bool> spare_used_;
};

}  // namespace urmem
