// Stacked protection: significance-driven bit-shuffling composed with a
// whole-word ECC stage — the combinatorial design points ("shuffle +
// SECDED", "shuffle + P-ECC") the scheme registry exposes for
// heterogeneous-reliability exploration.
//
// Pipeline (write direction):
//
//   data --shuffle (W bits)--> shuffled word --ECC encode--> storage row
//
// and the reverse on read: ECC decode first, then un-shuffle. The ECC
// corrects any single fault in the stored codeword; when it is
// overwhelmed (>= 2 faults), the raw bits pass through and the shuffle
// stage — programmed from the ECC-residual fault positions discovered
// by BIST — has rotated the word so the surviving corruption lands on
// the least-significant segments. The stack therefore degrades from
// "exact" to "bounded-magnitude" instead of from "exact" to "2^31".
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "urmem/scheme/protection_scheme.hpp"

namespace urmem {

/// Shuffle-under-ECC composition; see the header comment for the data
/// path. The ECC stage is a secded_scheme or pecc_scheme.
class stacked_scheme final : public protection_scheme {
 public:
  /// Which ECC wraps the shuffled word.
  enum class ecc_stage : std::uint8_t { secded, pecc };

  /// `rows` x `width` logical geometry; `n_fm` shuffle LUT bits;
  /// `protected_bits` only applies to the pecc stage.
  stacked_scheme(std::uint32_t rows, unsigned width, unsigned n_fm,
                 ecc_stage ecc, shift_policy policy = shift_policy::min_mse,
                 unsigned protected_bits = 16);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned data_bits() const override { return shuffle_.data_bits(); }
  [[nodiscard]] unsigned storage_bits() const override { return ecc_->storage_bits(); }
  [[nodiscard]] unsigned lut_bits_per_row() const override {
    return shuffle_.lut_bits_per_row();
  }
  void configure(const fault_map& faults) override;
  [[nodiscard]] word_t encode(std::uint32_t row, word_t data) const override;
  [[nodiscard]] read_result decode(std::uint32_t row, word_t stored) const override;
  void encode_block(std::uint32_t first_row, std::span<const word_t> data,
                    std::span<word_t> out) const override;
  block_decode_stats decode_block(std::uint32_t first_row,
                                  std::span<const word_t> stored,
                                  std::span<word_t> out) const override;
  [[nodiscard]] word_t encode_reference(std::uint32_t row,
                                        word_t data) const override;
  [[nodiscard]] read_result decode_reference(std::uint32_t row,
                                             word_t stored) const override;
  [[nodiscard]] double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const override;
  void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                           std::vector<std::uint32_t>& out) const override;

 private:
  std::uint32_t rows_;
  shuffle_protection shuffle_;               // pre-stage over the data word
  std::unique_ptr<protection_scheme> ecc_;   // secded_scheme or pecc_scheme
};

/// Factory matching make_scheme_none/secded/pecc/shuffle.
[[nodiscard]] std::unique_ptr<protection_scheme> make_scheme_stacked(
    std::uint32_t rows, unsigned width, unsigned n_fm,
    stacked_scheme::ecc_stage ecc, shift_policy policy = shift_policy::min_mse,
    unsigned protected_bits = 16);

}  // namespace urmem
