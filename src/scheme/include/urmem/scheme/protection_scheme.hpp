// Uniform interface over the fault-handling techniques the paper
// compares (Sec. 5): no protection, H(39,32) SECDED ECC, H(22,16)
// priority-ECC, and the proposed bit-shuffling scheme.
//
// A protection scheme maps a W-bit data word to a stored row of
// storage_bits() columns and back. Schemes that rely on BIST-discovered
// fault locations (bit-shuffling) are (re)configured through
// configure(); ECC-based schemes ignore it.
//
// Besides the functional encode/decode path, every scheme exposes
// worst_case_row_cost(): the row's contribution to the analytic MSE
// criterion of Eq. (6) given the row's physical faulty columns. The
// yield machinery (Fig. 5) evaluates millions of fault maps through
// this hook without touching stored data.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "urmem/common/bitops.hpp"
#include "urmem/ecc/bch.hpp"
#include "urmem/ecc/hamming_secded.hpp"
#include "urmem/ecc/hsiao.hpp"
#include "urmem/ecc/priority_ecc.hpp"
#include "urmem/memory/fault_map.hpp"
#include "urmem/shuffle/shuffle_scheme.hpp"

namespace urmem {

/// Result of reading one word through a protection scheme.
struct read_result {
  word_t data = 0;
  ecc_status status = ecc_status::clean;
};

/// Decode outcome counters accumulated over one decode_block call.
struct block_decode_stats {
  std::uint64_t corrected = 0;        ///< words with a corrected single error
  std::uint64_t uncorrectable = 0;    ///< words flagged detected_uncorrectable

  void count(ecc_status status) {
    if (status == ecc_status::corrected) ++corrected;
    else if (status == ecc_status::detected_uncorrectable) ++uncorrectable;
  }
};

/// Abstract fault-mitigation technique for a fixed-geometry memory.
class protection_scheme {
 public:
  virtual ~protection_scheme() = default;

  /// Human-readable name used in benchmark tables, e.g. "nFM=2".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Width of the logical data word W.
  [[nodiscard]] virtual unsigned data_bits() const = 0;

  /// Stored row width (data + parity columns); LUT columns of the
  /// shuffling scheme are tracked separately (see lut_bits_per_row).
  [[nodiscard]] virtual unsigned storage_bits() const = 0;

  /// Extra side-table bits per row (nFM for bit-shuffling, 0 otherwise).
  [[nodiscard]] virtual unsigned lut_bits_per_row() const { return 0; }

  /// Number of per-row bit errors the scheme is guaranteed to correct
  /// at any positions (the t of a t-error-correcting code): 1 for
  /// SEC-DED-class schemes, t for BCH, 0 for schemes with no such
  /// guarantee (none, shuffle, P-ECC). The exhaustive verification
  /// harness derives its enumeration depth (t+1) from this.
  [[nodiscard]] virtual unsigned guaranteed_correctable_bits() const {
    return 0;
  }

  /// Re-programs the scheme from a BIST-discovered fault map. The map's
  /// geometry must cover storage_bits() columns. Default: no-op.
  virtual void configure(const fault_map& faults);

  /// Encodes `data` for storage in `row`.
  [[nodiscard]] virtual word_t encode(std::uint32_t row, word_t data) const = 0;

  /// Decodes the stored row back to a data word.
  [[nodiscard]] virtual read_result decode(std::uint32_t row, word_t stored) const = 0;

  /// Batched encode of rows [first_row, first_row + data.size()):
  /// out[i] = encode(first_row + i, data[i]). One virtual call per tile;
  /// every concrete scheme overrides it with a devirtualized loop over
  /// its compiled codec tables. `out` may alias `data` and must match
  /// its length. The base implementation is the per-word scalar
  /// fallback (and the semantic definition of the override).
  virtual void encode_block(std::uint32_t first_row,
                            std::span<const word_t> data,
                            std::span<word_t> out) const;

  /// Batched decode of rows [first_row, first_row + stored.size());
  /// out[i] = decode(first_row + i, stored[i]).data, with the per-word
  /// statuses accumulated into the returned counters. `out` may alias
  /// `stored`.
  virtual block_decode_stats decode_block(std::uint32_t first_row,
                                          std::span<const word_t> stored,
                                          std::span<word_t> out) const;

  /// Reference (oracle) scalar encode/decode: the per-bit codec walks
  /// the compiled fast paths were derived from. Bit-identical to
  /// encode()/decode(); protected_memory routes through these when
  /// URMEM_FAULT_PATH=reference so the figure benches differentially
  /// test the compiled layer end to end. Defaults alias encode/decode
  /// for schemes with no separate compiled form.
  [[nodiscard]] virtual word_t encode_reference(std::uint32_t row,
                                                word_t data) const {
    return encode(row, data);
  }
  [[nodiscard]] virtual read_result decode_reference(std::uint32_t row,
                                                     word_t stored) const {
    return decode(row, stored);
  }

  /// Worst-case squared error magnitude sum_i (2^{b_i})^2 contributed by
  /// a row whose faulty *storage* columns are `fault_cols`, assuming
  /// two's-complement integer data and BIST-optimal configuration
  /// (Eq. 6; see each scheme for its fault-to-logical-bit mapping).
  [[nodiscard]] virtual double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const = 0;

  /// Appends the logical bit significances b_i that remain corrupted
  /// after the scheme's correction, for a row whose faulty storage
  /// columns are `fault_cols` — the worst-case residual behind Eq. (6):
  /// worst_case_row_cost(fault_cols) == sum_i 4^{b_i} over exactly
  /// these bits. Composition layers (stacked_scheme) use this hook to
  /// feed one stage's surviving corruption into the next stage as that
  /// stage's fault columns.
  virtual void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                                   std::vector<std::uint32_t>& out) const = 0;

  /// Row-addressed variants of the Eq. (6) hooks. Homogeneous schemes
  /// protect every row identically, so the defaults ignore `row`; the
  /// heterogeneous tiered_scheme overrides them to charge each row at
  /// its own tier. The MSE machinery (sample_mse, analytic_mse) walks
  /// faults row by row anyway and routes through these.
  [[nodiscard]] virtual double worst_case_row_cost_at(
      std::uint32_t /*row*/, std::span<const std::uint32_t> fault_cols) const {
    return worst_case_row_cost(fault_cols);
  }
  virtual void residual_fault_bits_at(std::uint32_t /*row*/,
                                      std::span<const std::uint32_t> fault_cols,
                                      std::vector<std::uint32_t>& out) const {
    residual_fault_bits(fault_cols, out);
  }
};

/// Pass-through scheme: the unprotected memory of the paper's baselines.
class none_scheme final : public protection_scheme {
 public:
  explicit none_scheme(unsigned width = 32);

  [[nodiscard]] std::string name() const override { return "no-correction"; }
  [[nodiscard]] unsigned data_bits() const override { return width_; }
  [[nodiscard]] unsigned storage_bits() const override { return width_; }
  [[nodiscard]] word_t encode(std::uint32_t row, word_t data) const override;
  [[nodiscard]] read_result decode(std::uint32_t row, word_t stored) const override;
  void encode_block(std::uint32_t first_row, std::span<const word_t> data,
                    std::span<word_t> out) const override;
  block_decode_stats decode_block(std::uint32_t first_row,
                                  std::span<const word_t> stored,
                                  std::span<word_t> out) const override;
  [[nodiscard]] double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const override;
  void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                           std::vector<std::uint32_t>& out) const override;

 private:
  unsigned width_;
};

/// Classical SECDED ECC on the whole word — H(39,32) for 32-bit data.
class secded_scheme final : public protection_scheme {
 public:
  explicit secded_scheme(unsigned width = 32);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned data_bits() const override { return code_.data_bits(); }
  [[nodiscard]] unsigned storage_bits() const override { return code_.codeword_bits(); }
  [[nodiscard]] unsigned guaranteed_correctable_bits() const override { return 1; }
  [[nodiscard]] const hamming_secded& code() const { return code_; }
  [[nodiscard]] word_t encode(std::uint32_t row, word_t data) const override;
  [[nodiscard]] read_result decode(std::uint32_t row, word_t stored) const override;
  void encode_block(std::uint32_t first_row, std::span<const word_t> data,
                    std::span<word_t> out) const override;
  block_decode_stats decode_block(std::uint32_t first_row,
                                  std::span<const word_t> stored,
                                  std::span<word_t> out) const override;
  [[nodiscard]] word_t encode_reference(std::uint32_t row,
                                        word_t data) const override;
  [[nodiscard]] read_result decode_reference(std::uint32_t row,
                                             word_t stored) const override;
  [[nodiscard]] double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const override;
  void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                           std::vector<std::uint32_t>& out) const override;

 private:
  hamming_secded code_;
};

/// Hsiao SEC-DED ECC on the whole word — the balanced odd-weight-column
/// construction real SRAM macros use; Hsiao(39,32) for 32-bit data.
/// The codec is shared immutably between instances so per-trial scheme
/// construction (quality experiments build one per tile) never rebuilds
/// the LUTs.
class hsiao_scheme final : public protection_scheme {
 public:
  explicit hsiao_scheme(unsigned width = 32, unsigned check_bits = 0);
  explicit hsiao_scheme(std::shared_ptr<const hsiao_code> code);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned data_bits() const override { return code_->data_bits(); }
  [[nodiscard]] unsigned storage_bits() const override { return code_->codeword_bits(); }
  [[nodiscard]] unsigned guaranteed_correctable_bits() const override { return 1; }
  [[nodiscard]] const hsiao_code& code() const { return *code_; }
  [[nodiscard]] word_t encode(std::uint32_t row, word_t data) const override;
  [[nodiscard]] read_result decode(std::uint32_t row, word_t stored) const override;
  void encode_block(std::uint32_t first_row, std::span<const word_t> data,
                    std::span<word_t> out) const override;
  block_decode_stats decode_block(std::uint32_t first_row,
                                  std::span<const word_t> stored,
                                  std::span<word_t> out) const override;
  [[nodiscard]] word_t encode_reference(std::uint32_t row,
                                        word_t data) const override;
  [[nodiscard]] read_result decode_reference(std::uint32_t row,
                                             word_t stored) const override;
  [[nodiscard]] double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const override;
  void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                           std::vector<std::uint32_t>& out) const override;

 private:
  std::shared_ptr<const hsiao_code> code_;
};

/// t-error-correcting parity-extended BCH ECC on the whole word —
/// BCH(45,32,t=2) for 32-bit data. The codec (whose dense correction
/// table can run to megabytes) is shared immutably between instances.
class bch_scheme final : public protection_scheme {
 public:
  explicit bch_scheme(unsigned width = 32, unsigned t = 2);
  explicit bch_scheme(std::shared_ptr<const bch_code> code);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned data_bits() const override { return code_->data_bits(); }
  [[nodiscard]] unsigned storage_bits() const override { return code_->codeword_bits(); }
  [[nodiscard]] unsigned guaranteed_correctable_bits() const override {
    return code_->t();
  }
  [[nodiscard]] const bch_code& code() const { return *code_; }
  [[nodiscard]] word_t encode(std::uint32_t row, word_t data) const override;
  [[nodiscard]] read_result decode(std::uint32_t row, word_t stored) const override;
  void encode_block(std::uint32_t first_row, std::span<const word_t> data,
                    std::span<word_t> out) const override;
  block_decode_stats decode_block(std::uint32_t first_row,
                                  std::span<const word_t> stored,
                                  std::span<word_t> out) const override;
  [[nodiscard]] word_t encode_reference(std::uint32_t row,
                                        word_t data) const override;
  [[nodiscard]] read_result decode_reference(std::uint32_t row,
                                             word_t stored) const override;
  [[nodiscard]] double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const override;
  void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                           std::vector<std::uint32_t>& out) const override;

 private:
  std::shared_ptr<const bch_code> code_;
};

/// Priority-based ECC — H(22,16) over the 16 MSBs for 32-bit data.
class pecc_scheme final : public protection_scheme {
 public:
  explicit pecc_scheme(unsigned width = 32, unsigned protected_bits = 16);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned data_bits() const override { return codec_.word_bits(); }
  [[nodiscard]] unsigned storage_bits() const override { return codec_.storage_bits(); }
  [[nodiscard]] const priority_ecc& codec() const { return codec_; }
  [[nodiscard]] word_t encode(std::uint32_t row, word_t data) const override;
  [[nodiscard]] read_result decode(std::uint32_t row, word_t stored) const override;
  void encode_block(std::uint32_t first_row, std::span<const word_t> data,
                    std::span<word_t> out) const override;
  block_decode_stats decode_block(std::uint32_t first_row,
                                  std::span<const word_t> stored,
                                  std::span<word_t> out) const override;
  [[nodiscard]] word_t encode_reference(std::uint32_t row,
                                        word_t data) const override;
  [[nodiscard]] read_result decode_reference(std::uint32_t row,
                                             word_t stored) const override;
  [[nodiscard]] double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const override;
  void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                           std::vector<std::uint32_t>& out) const override;

 private:
  priority_ecc codec_;
};

/// The proposed significance-driven bit-shuffling scheme.
class shuffle_protection final : public protection_scheme {
 public:
  shuffle_protection(std::uint32_t rows, unsigned width, unsigned n_fm,
                     shift_policy policy = shift_policy::min_mse);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned data_bits() const override { return impl_.shuffler().width(); }
  [[nodiscard]] unsigned storage_bits() const override { return impl_.shuffler().width(); }
  [[nodiscard]] unsigned lut_bits_per_row() const override { return impl_.shuffler().n_fm(); }
  [[nodiscard]] const shuffle_scheme& impl() const { return impl_; }
  [[nodiscard]] shuffle_scheme& impl() { return impl_; }
  void configure(const fault_map& faults) override;
  [[nodiscard]] word_t encode(std::uint32_t row, word_t data) const override;
  [[nodiscard]] read_result decode(std::uint32_t row, word_t stored) const override;
  void encode_block(std::uint32_t first_row, std::span<const word_t> data,
                    std::span<word_t> out) const override;
  block_decode_stats decode_block(std::uint32_t first_row,
                                  std::span<const word_t> stored,
                                  std::span<word_t> out) const override;
  [[nodiscard]] double worst_case_row_cost(
      std::span<const std::uint32_t> fault_cols) const override;
  void residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                           std::vector<std::uint32_t>& out) const override;

 private:
  shuffle_scheme impl_;
  shift_policy policy_;
};

/// Factory helpers covering the paper's comparison set for a 4096-row,
/// 32-bit memory: no-correction, H(39,32), H(22,16) P-ECC, nFM=1..5.
[[nodiscard]] std::unique_ptr<protection_scheme> make_scheme_none(unsigned width = 32);
[[nodiscard]] std::unique_ptr<protection_scheme> make_scheme_secded(unsigned width = 32);
[[nodiscard]] std::unique_ptr<protection_scheme> make_scheme_pecc(
    unsigned width = 32, unsigned protected_bits = 16);
[[nodiscard]] std::unique_ptr<protection_scheme> make_scheme_shuffle(
    std::uint32_t rows, unsigned width, unsigned n_fm,
    shift_policy policy = shift_policy::min_mse);
[[nodiscard]] std::unique_ptr<protection_scheme> make_scheme_hsiao(
    unsigned width = 32, unsigned check_bits = 0);
[[nodiscard]] std::unique_ptr<protection_scheme> make_scheme_bch(
    unsigned width = 32, unsigned t = 2);

}  // namespace urmem
