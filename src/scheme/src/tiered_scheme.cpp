#include "urmem/scheme/tiered_scheme.hpp"

#include <algorithm>
#include <utility>

#include "urmem/common/contracts.hpp"

namespace urmem {

tiered_scheme::tiered_scheme(std::vector<tier> tiers, unsigned storage_bits_hint)
    : tiers_(std::move(tiers)) {
  expects(!tiers_.empty(), "tiered scheme needs at least one tier");
  std::uint32_t next = 0;
  for (const tier& t : tiers_) {
    expects(t.scheme != nullptr, "tier scheme must not be null");
    expects(t.first_row == next,
            "tiers must be ordered and contiguous from row 0");
    expects(t.last_row >= t.first_row, "tier range must be ascending");
    expects(t.scheme->data_bits() == tiers_.front().scheme->data_bits(),
            "tiers must agree on the data word width");
    storage_bits_ = std::max(storage_bits_, t.scheme->storage_bits());
    next = t.last_row + 1;
  }
  data_bits_ = tiers_.front().scheme->data_bits();
  // A probe instance clamped to fewer rows may have dropped the widest
  // tier; the hint keeps its geometry that of the full design.
  storage_bits_ = std::max(storage_bits_, storage_bits_hint);
}

std::string tiered_scheme::name() const {
  std::string label = "tiered[";
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (i != 0) label += "|";
    label += std::to_string(tiers_[i].first_row) + "-" +
             std::to_string(tiers_[i].last_row) + ":" +
             tiers_[i].scheme->name();
  }
  return label + "]";
}

unsigned tiered_scheme::lut_bits_per_row() const {
  unsigned bits = 0;
  for (const tier& t : tiers_) bits = std::max(bits, t.scheme->lut_bits_per_row());
  return bits;
}

std::size_t tiered_scheme::tier_of(std::uint32_t row) const {
  expects(row <= tiers_.back().last_row, "row beyond the tiered range");
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (row <= tiers_[i].last_row) return i;
  }
  return tiers_.size() - 1;  // unreachable; the precondition covers it
}

void tiered_scheme::configure(const fault_map& faults) {
  expects(faults.geometry().width == storage_bits(),
          "tiered fault map must cover the storage columns");
  expects(faults.geometry().rows >= tiers_.back().last_row + 1,
          "tiered fault map must cover every tier row");
  // Split the BIST-discovered map per tier: rows rebased to the tier's
  // own 0-based range, columns clipped to the columns the tier actually
  // stores (surplus columns belong to a wider sibling tier's geometry
  // and never carry this tier's data).
  for (const tier& t : tiers_) {
    fault_map sub(array_geometry{t.last_row - t.first_row + 1,
                                 t.scheme->storage_bits()});
    for (std::uint32_t row = t.first_row; row <= t.last_row; ++row) {
      if (!faults.row_has_faults(row)) continue;
      for (const fault& f : faults.faults_in_row(row)) {
        if (f.col < t.scheme->storage_bits()) {
          sub.add({row - t.first_row, f.col, f.kind});
        }
      }
    }
    t.scheme->configure(sub);
  }
}

word_t tiered_scheme::encode(std::uint32_t row, word_t data) const {
  const tier& t = tiers_[tier_of(row)];
  return t.scheme->encode(row - t.first_row, data);
}

read_result tiered_scheme::decode(std::uint32_t row, word_t stored) const {
  const tier& t = tiers_[tier_of(row)];
  return t.scheme->decode(row - t.first_row,
                          stored & word_mask(t.scheme->storage_bits()));
}

void tiered_scheme::encode_block(std::uint32_t first_row,
                                 std::span<const word_t> data,
                                 std::span<word_t> out) const {
  expects(out.size() == data.size(), "encode_block spans must match");
  std::size_t cursor = 0;
  while (cursor < data.size()) {
    const std::uint32_t row = first_row + static_cast<std::uint32_t>(cursor);
    const tier& t = tiers_[tier_of(row)];
    const std::size_t take =
        std::min<std::size_t>(data.size() - cursor, t.last_row - row + 1);
    t.scheme->encode_block(row - t.first_row, data.subspan(cursor, take),
                           out.subspan(cursor, take));
    cursor += take;
  }
}

block_decode_stats tiered_scheme::decode_block(std::uint32_t first_row,
                                               std::span<const word_t> stored,
                                               std::span<word_t> out) const {
  expects(out.size() == stored.size(), "decode_block spans must match");
  block_decode_stats stats;
  std::size_t cursor = 0;
  while (cursor < stored.size()) {
    const std::uint32_t row = first_row + static_cast<std::uint32_t>(cursor);
    const tier& t = tiers_[tier_of(row)];
    const std::size_t take =
        std::min<std::size_t>(stored.size() - cursor, t.last_row - row + 1);
    // Clip the surplus columns of wider sibling tiers up front (faults
    // there are physically real but land on cells this tier never
    // drives); the masked copy lands in `out`, so the tier decode runs
    // in place and aliasing with `stored` stays legal.
    const word_t mask = word_mask(t.scheme->storage_bits());
    for (std::size_t i = 0; i < take; ++i) out[cursor + i] = stored[cursor + i] & mask;
    const block_decode_stats tier_stats = t.scheme->decode_block(
        row - t.first_row, out.subspan(cursor, take), out.subspan(cursor, take));
    stats.corrected += tier_stats.corrected;
    stats.uncorrectable += tier_stats.uncorrectable;
    cursor += take;
  }
  return stats;
}

word_t tiered_scheme::encode_reference(std::uint32_t row, word_t data) const {
  const tier& t = tiers_[tier_of(row)];
  return t.scheme->encode_reference(row - t.first_row, data);
}

read_result tiered_scheme::decode_reference(std::uint32_t row,
                                            word_t stored) const {
  const tier& t = tiers_[tier_of(row)];
  return t.scheme->decode_reference(row - t.first_row,
                                    stored & word_mask(t.scheme->storage_bits()));
}

std::span<const std::uint32_t> tiered_scheme::clip_cols(
    const tier& t, std::span<const std::uint32_t> fault_cols,
    std::vector<std::uint32_t>& scratch) {
  const unsigned bits = t.scheme->storage_bits();
  const bool all_inside = std::all_of(fault_cols.begin(), fault_cols.end(),
                                      [&](std::uint32_t c) { return c < bits; });
  if (all_inside) return fault_cols;
  scratch.clear();
  for (const std::uint32_t col : fault_cols) {
    if (col < bits) scratch.push_back(col);
  }
  return scratch;
}

double tiered_scheme::worst_case_row_cost_at(
    std::uint32_t row, std::span<const std::uint32_t> fault_cols) const {
  static thread_local std::vector<std::uint32_t> scratch;
  const tier& t = tiers_[tier_of(row)];
  return t.scheme->worst_case_row_cost(clip_cols(t, fault_cols, scratch));
}

void tiered_scheme::residual_fault_bits_at(
    std::uint32_t row, std::span<const std::uint32_t> fault_cols,
    std::vector<std::uint32_t>& out) const {
  static thread_local std::vector<std::uint32_t> scratch;
  const tier& t = tiers_[tier_of(row)];
  t.scheme->residual_fault_bits(clip_cols(t, fault_cols, scratch), out);
}

double tiered_scheme::worst_case_row_cost(
    std::span<const std::uint32_t> fault_cols) const {
  static thread_local std::vector<std::uint32_t> scratch;
  double worst = 0.0;
  for (const tier& t : tiers_) {
    worst = std::max(
        worst, t.scheme->worst_case_row_cost(clip_cols(t, fault_cols, scratch)));
  }
  return worst;
}

void tiered_scheme::residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                                        std::vector<std::uint32_t>& out) const {
  // Mirror worst_case_row_cost: report the residual of the worst tier,
  // so cost == sum_i 4^{b_i} over the returned bits holds here too.
  static thread_local std::vector<std::uint32_t> scratch;
  const tier* worst_tier = &tiers_.front();
  double worst = -1.0;
  for (const tier& t : tiers_) {
    const double cost =
        t.scheme->worst_case_row_cost(clip_cols(t, fault_cols, scratch));
    if (cost > worst) {
      worst = cost;
      worst_tier = &t;
    }
  }
  worst_tier->scheme->residual_fault_bits(
      clip_cols(*worst_tier, fault_cols, scratch), out);
}

}  // namespace urmem
