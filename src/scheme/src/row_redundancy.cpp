#include "urmem/scheme/row_redundancy.hpp"

#include <algorithm>

#include "urmem/common/binomial.hpp"
#include "urmem/common/contracts.hpp"
#include "urmem/memory/fault_sampler.hpp"

namespace urmem {

row_redundancy_repair::row_redundancy_repair(std::uint32_t data_rows,
                                             std::uint32_t spare_rows,
                                             std::uint32_t width)
    : data_rows_(data_rows), spare_rows_(spare_rows), width_(width) {
  expects(data_rows >= 1, "need at least one data row");
  expects(is_valid_width(width), "row width must be 1..64");
}

repair_result row_redundancy_repair::repair(const fault_map& manufactured) const {
  expects(manufactured.geometry() == manufactured_geometry(),
          "fault map must cover data + spare rows");

  repair_result result;
  result.residual = fault_map({data_rows_, width_});

  // Fault-free spares, in ascending physical order.
  std::vector<std::uint32_t> healthy_spares;
  for (std::uint32_t s = 0; s < spare_rows_; ++s) {
    if (!manufactured.row_has_faults(data_rows_ + s)) {
      healthy_spares.push_back(data_rows_ + s);
    }
  }
  result.usable_spares = static_cast<std::uint32_t>(healthy_spares.size());

  std::size_t next_spare = 0;
  for (std::uint32_t row = 0; row < data_rows_; ++row) {
    if (!manufactured.row_has_faults(row)) continue;
    ++result.faulty_data_rows;
    if (next_spare < healthy_spares.size()) {
      result.remaps.emplace_back(row, healthy_spares[next_spare++]);
      ++result.repaired_rows;
    } else {
      // Spares exhausted: the row's faults remain visible.
      for (const fault& f : manufactured.faults_in_row(row)) {
        result.residual.add(f);
      }
    }
  }
  return result;
}

std::optional<std::uint32_t> row_redundancy_repair::remap_of(
    const repair_result& result, std::uint32_t row) {
  const auto it = std::lower_bound(
      result.remaps.begin(), result.remaps.end(), row,
      [](const auto& pair, std::uint32_t r) { return pair.first < r; });
  if (it != result.remaps.end() && it->first == row) return it->second;
  return std::nullopt;
}

double repair_yield(std::uint32_t data_rows, std::uint32_t spare_rows,
                    std::uint32_t width, double pcell, std::uint32_t mc_runs,
                    rng& gen) {
  expects(mc_runs >= 1, "need at least one Monte-Carlo run");
  const row_redundancy_repair engine(data_rows, spare_rows, width);
  const array_geometry geometry = engine.manufactured_geometry();
  const binomial_distribution dist(geometry.cells(), pcell);

  std::uint32_t repaired = 0;
  for (std::uint32_t run = 0; run < mc_runs; ++run) {
    const fault_map manufactured =
        sample_fault_map_binomial(geometry, dist, gen);
    if (engine.repair(manufactured).fully_repaired()) ++repaired;
  }
  return static_cast<double>(repaired) / static_cast<double>(mc_runs);
}

std::optional<std::uint32_t> spares_for_yield(std::uint32_t data_rows,
                                              std::uint32_t width, double pcell,
                                              double yield_target,
                                              std::uint32_t max_spares,
                                              std::uint32_t mc_runs, rng& gen) {
  expects(yield_target > 0.0 && yield_target < 1.0, "yield target in (0,1)");
  // Exponential probe for a feasible count, then binary refinement.
  std::uint32_t lo = 0;
  std::uint32_t hi = 1;
  const auto feasible = [&](std::uint32_t k) {
    return repair_yield(data_rows, k, width, pcell, mc_runs, gen) >= yield_target;
  };
  if (feasible(0)) return 0u;
  while (hi <= max_spares && !feasible(hi)) {
    lo = hi;
    hi *= 2;
  }
  if (hi > max_spares) {
    if (!feasible(max_spares)) return std::nullopt;
    hi = max_spares;
  }
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (feasible(mid)) hi = mid;
    else lo = mid;
  }
  return hi;
}

}  // namespace urmem
