#include "urmem/scheme/protected_memory.hpp"

#include <vector>

#include "urmem/common/contracts.hpp"

namespace urmem {

protected_memory::protected_memory(std::uint32_t rows,
                                   std::unique_ptr<protection_scheme> scheme)
    : scheme_(std::move(scheme)),
      array_(array_geometry{rows, scheme_->storage_bits()}) {
  expects(scheme_ != nullptr, "protected_memory requires a scheme");
}

void protected_memory::set_fault_map(fault_map faults) {
  expects(faults.geometry() == storage_geometry(), "fault map geometry mismatch");
  scheme_->configure(faults);
  array_.set_faults(std::move(faults));
}

void protected_memory::write(std::uint32_t row, word_t data) {
  array_.write(row, scheme_->encode(row, data));
}

read_result protected_memory::read(std::uint32_t row) const {
  return scheme_->decode(row, array_.read(row));
}

void protected_memory::write_block(std::uint32_t first,
                                   std::span<const word_t> data) {
  // Scratch is thread-local: write_block sits in the per-trial campaign
  // hot loop, and a fresh allocation per tile would undo the batching.
  static thread_local std::vector<word_t> encoded;
  encoded.resize(data.size());
  if (array_.path() == fault_path::reference) {
    // Oracle: per-word virtual calls through the reference codecs.
    for (std::size_t i = 0; i < data.size(); ++i) {
      encoded[i] = scheme_->encode_reference(
          first + static_cast<std::uint32_t>(i), data[i]);
    }
  } else {
    scheme_->encode_block(first, data, encoded);
  }
  array_.write_rows(first, encoded);
}

void protected_memory::read_block(std::uint32_t first, std::span<word_t> out,
                                  block_stats* stats) const {
  array_.read_rows(first, out);
  block_stats local;
  if (array_.path() == fault_path::reference) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const read_result r = scheme_->decode_reference(
          first + static_cast<std::uint32_t>(i), out[i]);
      out[i] = r.data;
      local.count(r.status);
    }
  } else {
    local = scheme_->decode_block(first, out, out);
  }
  if (stats != nullptr) *stats = local;
}

double protected_memory::analytic_mse() const {
  const fault_map& faults = array_.faults();
  // Hoisted column scratch — analytic_mse runs once per sampled map in
  // the yield sweeps, and a fresh vector per faulty row adds an
  // allocation for every faulty row of every map.
  static thread_local std::vector<std::uint32_t> cols;
  double total = 0.0;
  for (const std::uint32_t row : faults.faulty_rows()) {
    cols.clear();
    for (const fault& f : faults.faults_in_row(row)) cols.push_back(f.col);
    total += scheme_->worst_case_row_cost(cols);
  }
  return total / static_cast<double>(rows());
}

}  // namespace urmem
