#include "urmem/scheme/protected_memory.hpp"

#include <algorithm>
#include <vector>

#include "urmem/common/contracts.hpp"
#include "urmem/scheme/row_redundancy.hpp"

namespace urmem {

namespace {

std::uint32_t total_spares(const std::vector<memory_region>& regions) {
  std::uint32_t total = 0;
  for (const memory_region& region : regions) total += region.spare_rows;
  return total;
}

}  // namespace

protected_memory::protected_memory(std::uint32_t rows,
                                   std::unique_ptr<protection_scheme> scheme,
                                   std::uint32_t spare_rows)
    : protected_memory(rows, std::move(scheme),
                       std::vector<memory_region>{
                           memory_region{0, rows > 0 ? rows - 1 : 0,
                                         spare_rows}}) {}

protected_memory::protected_memory(std::uint32_t rows,
                                   std::unique_ptr<protection_scheme> scheme,
                                   std::vector<memory_region> regions)
    : scheme_(std::move(scheme)),
      logical_rows_(rows),
      spare_rows_(total_spares(regions)),
      regions_(std::move(regions)),
      array_(array_geometry{rows + spare_rows_, scheme_->storage_bits()}) {
  expects(scheme_ != nullptr, "protected_memory requires a scheme");
  expects(rows >= 1, "protected_memory needs at least one row");
  expects(!regions_.empty(), "protected_memory needs at least one region");
  // Regions must tile the logical rows exactly; spares are manufactured
  // after the data rows, grouped per region in region order.
  std::uint32_t next = 0;
  std::uint32_t spare_base = rows;
  spare_bases_.reserve(regions_.size());
  for (const memory_region& region : regions_) {
    expects(region.first_row == next && region.last_row >= region.first_row,
            "regions must be ordered, gap-free and ascending");
    spare_bases_.push_back(spare_base);
    spare_base += region.spare_rows;
    next = region.last_row + 1;
  }
  expects(next == rows, "regions must cover the logical rows exactly");
  spare_used_.assign(spare_rows_, false);
}

std::uint32_t protected_memory::region_spare_base(std::size_t index) const {
  expects(index < regions_.size(), "region index out of range");
  return spare_bases_[index];
}

void protected_memory::set_fault_map(fault_map faults) {
  expects(faults.geometry() == storage_geometry(), "fault map geometry mismatch");
  remaps_.clear();
  spare_used_.assign(spare_rows_, false);
  const unsigned width = scheme_->storage_bits();
  if (spare_rows_ == 0) {
    scheme_->configure(faults);
    array_.set_faults(std::move(faults));
    return;
  }
  if (faults.fault_count() == 0) {
    // Fault-free manufacture: nothing to fuse, so skip the repair pass
    // (and its per-region map shuffling) outright — the scheme still
    // reprograms itself from the clean map, as a real BIST would report.
    scheme_->configure(fault_map(array_geometry{logical_rows_, width}));
    array_.set_faults(std::move(faults));
    return;
  }
  // Fuse stage first, one pass per region: remap the region's faulty
  // data rows onto its own fault-free spares, then let the scheme
  // program itself from what repair left behind (the post-repair BIST
  // pass of a real redundancy + mitigation flow).
  fault_map residual(array_geometry{logical_rows_, width});
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const memory_region& region = regions_[r];
    const std::uint32_t spare_base = spare_bases_[r];
    // Faults in columns beyond the region's own storage width sit in
    // cells the region never drives (they exist only because a wider
    // sibling tier dictates the manufactured width): the region's BIST
    // would never see them, so repair and residual both skip them.
    const unsigned region_bits =
        region.storage_bits == 0 ? width : region.storage_bits;
    if (region.spare_rows == 0) {
      // No pool: the region's (data-visible) faults stay as-is.
      for (std::uint32_t row = region.first_row; row <= region.last_row; ++row) {
        if (!faults.row_has_faults(row)) continue;
        for (const fault& f : faults.faults_in_row(row)) {
          if (f.col < region_bits) residual.add(f);
        }
      }
      continue;
    }
    // Rebase the region (data rows, then its spares) into the compact
    // geometry the repair engine expects.
    const std::uint32_t region_rows = region.rows();
    fault_map sub(array_geometry{region_rows + region.spare_rows, width});
    for (std::uint32_t row = region.first_row; row <= region.last_row; ++row) {
      if (!faults.row_has_faults(row)) continue;
      for (const fault& f : faults.faults_in_row(row)) {
        if (f.col < region_bits) sub.add({f.row - region.first_row, f.col, f.kind});
      }
    }
    for (std::uint32_t s = 0; s < region.spare_rows; ++s) {
      if (!faults.row_has_faults(spare_base + s)) continue;
      for (const fault& f : faults.faults_in_row(spare_base + s)) {
        if (f.col < region_bits) sub.add({region_rows + s, f.col, f.kind});
      }
    }
    const row_redundancy_repair repair_engine(region_rows, region.spare_rows,
                                              width);
    const repair_result repaired = repair_engine.repair(sub);
    for (const auto& [logical, spare] : repaired.remaps) {
      remaps_.emplace_back(region.first_row + logical,
                           spare_base + (spare - region_rows));
    }
    for (const fault& f : repaired.residual.all_faults()) {
      residual.add({region.first_row + f.row, f.col, f.kind});
    }
  }
  // Region order is ascending-row order, so remaps_ is already sorted
  // the way physical_row's binary search needs.
  for (const auto& [logical, spare] : remaps_) {
    spare_used_[spare - logical_rows_] = true;
  }
  scheme_->configure(residual);
  array_.set_faults(std::move(faults));
}

void protected_memory::update_fault_map(fault_map faults) {
  expects(faults.geometry() == storage_geometry(), "fault map geometry mismatch");
  array_.set_faults(std::move(faults));
}

std::size_t protected_memory::region_of(std::uint32_t row) const {
  expects(row < logical_rows_, "row out of range");
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    if (row <= regions_[r].last_row) return r;
  }
  return regions_.size() - 1;  // unreachable: regions tile the rows
}

std::uint32_t protected_memory::unused_spares(std::size_t index) const {
  expects(index < regions_.size(), "region index out of range");
  std::uint32_t free = 0;
  const std::uint32_t base = spare_bases_[index];
  for (std::uint32_t s = 0; s < regions_[index].spare_rows; ++s) {
    if (!spare_used_[base + s - logical_rows_]) ++free;
  }
  return free;
}

std::optional<std::uint32_t> protected_memory::retire_row(std::uint32_t row,
                                                          word_t data) {
  return retire_row_to_region(row, region_of(row), data);
}

std::optional<std::uint32_t> protected_memory::retire_row_to_region(
    std::uint32_t row, std::size_t region_index, word_t data) {
  expects(row < logical_rows_, "row out of range");
  expects(region_index < regions_.size(), "region index out of range");
  // The bits that must be clean are the ones the retired row actually
  // stores — its home region's width, not the donor pool's (a reliable
  // donor tier may be wider; its surplus columns are don't-care here).
  const memory_region& home = regions_[region_of(row)];
  const unsigned needed_bits =
      home.storage_bits == 0 ? scheme_->storage_bits() : home.storage_bits;
  const word_t mask = needed_bits >= 64 ? ~word_t{0}
                                        : ((word_t{1} << needed_bits) - 1);
  const fault_map& faults = array_.faults();
  const memory_region& donor = regions_[region_index];
  const std::uint32_t base = spare_bases_[region_index];
  for (std::uint32_t s = 0; s < donor.spare_rows; ++s) {
    const std::uint32_t physical = base + s;
    if (spare_used_[physical - logical_rows_]) continue;
    // Spares age like data rows: eligibility is judged against the
    // *current* map, so a spare that failed since manufacture is passed
    // over (but not consumed — a narrower row may still fit it later).
    if ((faults.planes_of_row(physical).fault_cols & mask) != 0) continue;
    spare_used_[physical - logical_rows_] = true;
    array_.write(physical, scheme_->encode(row, data));
    const auto it = std::lower_bound(
        remaps_.begin(), remaps_.end(), row,
        [](const auto& remap, std::uint32_t key) { return remap.first < key; });
    if (it != remaps_.end() && it->first == row) {
      it->second = physical;  // the worn-out spare stays consumed
    } else {
      remaps_.insert(it, {row, physical});
    }
    return physical;
  }
  return std::nullopt;
}

std::uint32_t protected_memory::physical_row(std::uint32_t row) const {
  if (remaps_.empty()) return row;
  const auto it = std::lower_bound(
      remaps_.begin(), remaps_.end(), row,
      [](const auto& remap, std::uint32_t key) { return remap.first < key; });
  return it != remaps_.end() && it->first == row ? it->second : row;
}

void protected_memory::write(std::uint32_t row, word_t data) {
  array_.write(physical_row(row), scheme_->encode(row, data));
}

read_result protected_memory::read(std::uint32_t row) const {
  return scheme_->decode(row, array_.read(physical_row(row)));
}

void protected_memory::write_block(std::uint32_t first,
                                   std::span<const word_t> data) {
  // Scratch is thread-local: write_block sits in the per-trial campaign
  // hot loop, and a fresh allocation per tile would undo the batching.
  static thread_local std::vector<word_t> encoded;
  encoded.resize(data.size());
  if (array_.path() == fault_path::reference) {
    // Oracle: per-word virtual calls through the reference codecs.
    for (std::size_t i = 0; i < data.size(); ++i) {
      encoded[i] = scheme_->encode_reference(
          first + static_cast<std::uint32_t>(i), data[i]);
    }
  } else {
    scheme_->encode_block(first, data, encoded);
  }
  if (remaps_.empty()) {
    array_.write_rows(first, encoded);
    return;
  }
  // Repaired rows live on their spares: batch the contiguous healthy
  // segments and route each remapped row to its spare individually, so
  // every logical word still costs exactly one physical access (the
  // energy model's invariant). Remaps are rare and sorted.
  const std::span<const word_t> words(encoded);
  std::uint32_t segment = first;
  const std::uint32_t end = first + static_cast<std::uint32_t>(data.size());
  for (const auto& [logical, spare] : remaps_) {
    if (logical < first || logical >= end) continue;
    if (logical > segment) {
      array_.write_rows(segment, words.subspan(segment - first, logical - segment));
    }
    array_.write(spare, words[logical - first]);
    segment = logical + 1;
  }
  if (end > segment) {
    array_.write_rows(segment, words.subspan(segment - first, end - segment));
  }
}

void protected_memory::read_block(std::uint32_t first, std::span<word_t> out,
                                  block_stats* stats) const {
  if (remaps_.empty()) {
    array_.read_rows(first, out);
  } else {
    // Mirror of write_block: contiguous segments batched, remapped rows
    // served from their spares — one physical access per logical word.
    std::uint32_t segment = first;
    const std::uint32_t end = first + static_cast<std::uint32_t>(out.size());
    for (const auto& [logical, spare] : remaps_) {
      if (logical < first || logical >= end) continue;
      if (logical > segment) {
        array_.read_rows(segment, out.subspan(segment - first, logical - segment));
      }
      out[logical - first] = array_.read(spare);
      segment = logical + 1;
    }
    if (end > segment) {
      array_.read_rows(segment, out.subspan(segment - first, end - segment));
    }
  }
  block_stats local;
  if (array_.path() == fault_path::reference) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const read_result r = scheme_->decode_reference(
          first + static_cast<std::uint32_t>(i), out[i]);
      out[i] = r.data;
      local.count(r.status);
    }
  } else {
    local = scheme_->decode_block(first, out, out);
  }
  if (stats != nullptr) *stats = local;
}

double protected_memory::analytic_mse() const {
  return analytic_mse(0, logical_rows_ - 1);
}

double protected_memory::analytic_mse(std::uint32_t first,
                                      std::uint32_t last) const {
  expects(first <= last && last < logical_rows_,
          "analytic_mse range must lie in the logical rows");
  const fault_map& faults = array_.faults();
  // Hoisted column scratch — analytic_mse runs once per sampled map in
  // the yield sweeps, and a fresh vector per faulty row adds an
  // allocation for every faulty row of every map.
  static thread_local std::vector<std::uint32_t> cols;
  double total = 0.0;
  for (const std::uint32_t row : faults.faulty_rows()) {
    // Spares only serve remapped rows (and repair picks fault-free
    // spares), so faulty spares and retired (remapped) data rows both
    // contribute nothing to the visible address space.
    if (row < first || row > last || physical_row(row) != row) continue;
    cols.clear();
    for (const fault& f : faults.faults_in_row(row)) cols.push_back(f.col);
    total += scheme_->worst_case_row_cost_at(row, cols);
  }
  return total / static_cast<double>(last - first + 1);
}

std::uint64_t protected_memory::residual_rows() const {
  const fault_map& faults = array_.faults();
  static thread_local std::vector<std::uint32_t> cols;
  static thread_local std::vector<std::uint32_t> bits;
  std::uint64_t degraded = 0;
  for (const std::uint32_t row : faults.faulty_rows()) {
    // Same visibility rule as analytic_mse: faulty spares and retired
    // (remapped) data rows contribute nothing to the address space.
    if (row >= logical_rows_ || physical_row(row) != row) continue;
    cols.clear();
    for (const fault& f : faults.faults_in_row(row)) cols.push_back(f.col);
    bits.clear();
    scheme_->residual_fault_bits_at(row, cols, bits);
    if (!bits.empty()) ++degraded;
  }
  return degraded;
}

}  // namespace urmem
