#include "urmem/scheme/protected_memory.hpp"

#include <algorithm>
#include <vector>

#include "urmem/common/contracts.hpp"
#include "urmem/scheme/row_redundancy.hpp"

namespace urmem {

protected_memory::protected_memory(std::uint32_t rows,
                                   std::unique_ptr<protection_scheme> scheme,
                                   std::uint32_t spare_rows)
    : scheme_(std::move(scheme)),
      logical_rows_(rows),
      spare_rows_(spare_rows),
      array_(array_geometry{rows + spare_rows, scheme_->storage_bits()}) {
  expects(scheme_ != nullptr, "protected_memory requires a scheme");
}

void protected_memory::set_fault_map(fault_map faults) {
  expects(faults.geometry() == storage_geometry(), "fault map geometry mismatch");
  remaps_.clear();
  if (spare_rows_ == 0) {
    scheme_->configure(faults);
  } else {
    // Fuse stage first: remap faulty data rows onto fault-free spares,
    // then let the scheme program itself from what repair left behind
    // (the post-repair BIST pass of a real redundancy + mitigation flow).
    const row_redundancy_repair repair_engine(logical_rows_, spare_rows_,
                                              scheme_->storage_bits());
    repair_result repaired = repair_engine.repair(faults);
    remaps_ = std::move(repaired.remaps);
    scheme_->configure(repaired.residual);
  }
  array_.set_faults(std::move(faults));
}

std::uint32_t protected_memory::physical_row(std::uint32_t row) const {
  if (remaps_.empty()) return row;
  const auto it = std::lower_bound(
      remaps_.begin(), remaps_.end(), row,
      [](const auto& remap, std::uint32_t key) { return remap.first < key; });
  return it != remaps_.end() && it->first == row ? it->second : row;
}

void protected_memory::write(std::uint32_t row, word_t data) {
  array_.write(physical_row(row), scheme_->encode(row, data));
}

read_result protected_memory::read(std::uint32_t row) const {
  return scheme_->decode(row, array_.read(physical_row(row)));
}

void protected_memory::write_block(std::uint32_t first,
                                   std::span<const word_t> data) {
  // Scratch is thread-local: write_block sits in the per-trial campaign
  // hot loop, and a fresh allocation per tile would undo the batching.
  static thread_local std::vector<word_t> encoded;
  encoded.resize(data.size());
  if (array_.path() == fault_path::reference) {
    // Oracle: per-word virtual calls through the reference codecs.
    for (std::size_t i = 0; i < data.size(); ++i) {
      encoded[i] = scheme_->encode_reference(
          first + static_cast<std::uint32_t>(i), data[i]);
    }
  } else {
    scheme_->encode_block(first, data, encoded);
  }
  if (remaps_.empty()) {
    array_.write_rows(first, encoded);
    return;
  }
  // Repaired rows live on their spares: batch the contiguous healthy
  // segments and route each remapped row to its spare individually, so
  // every logical word still costs exactly one physical access (the
  // energy model's invariant). Remaps are rare and sorted.
  const std::span<const word_t> words(encoded);
  std::uint32_t segment = first;
  const std::uint32_t end = first + static_cast<std::uint32_t>(data.size());
  for (const auto& [logical, spare] : remaps_) {
    if (logical < first || logical >= end) continue;
    if (logical > segment) {
      array_.write_rows(segment, words.subspan(segment - first, logical - segment));
    }
    array_.write(spare, words[logical - first]);
    segment = logical + 1;
  }
  if (end > segment) {
    array_.write_rows(segment, words.subspan(segment - first, end - segment));
  }
}

void protected_memory::read_block(std::uint32_t first, std::span<word_t> out,
                                  block_stats* stats) const {
  if (remaps_.empty()) {
    array_.read_rows(first, out);
  } else {
    // Mirror of write_block: contiguous segments batched, remapped rows
    // served from their spares — one physical access per logical word.
    std::uint32_t segment = first;
    const std::uint32_t end = first + static_cast<std::uint32_t>(out.size());
    for (const auto& [logical, spare] : remaps_) {
      if (logical < first || logical >= end) continue;
      if (logical > segment) {
        array_.read_rows(segment, out.subspan(segment - first, logical - segment));
      }
      out[logical - first] = array_.read(spare);
      segment = logical + 1;
    }
    if (end > segment) {
      array_.read_rows(segment, out.subspan(segment - first, end - segment));
    }
  }
  block_stats local;
  if (array_.path() == fault_path::reference) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const read_result r = scheme_->decode_reference(
          first + static_cast<std::uint32_t>(i), out[i]);
      out[i] = r.data;
      local.count(r.status);
    }
  } else {
    local = scheme_->decode_block(first, out, out);
  }
  if (stats != nullptr) *stats = local;
}

double protected_memory::analytic_mse() const {
  const fault_map& faults = array_.faults();
  // Hoisted column scratch — analytic_mse runs once per sampled map in
  // the yield sweeps, and a fresh vector per faulty row adds an
  // allocation for every faulty row of every map.
  static thread_local std::vector<std::uint32_t> cols;
  double total = 0.0;
  for (const std::uint32_t row : faults.faulty_rows()) {
    // Spares only serve remapped rows (and repair picks fault-free
    // spares), so faulty spares and retired (remapped) data rows both
    // contribute nothing to the visible address space.
    if (row >= logical_rows_ || physical_row(row) != row) continue;
    cols.clear();
    for (const fault& f : faults.faults_in_row(row)) cols.push_back(f.col);
    total += scheme_->worst_case_row_cost(cols);
  }
  return total / static_cast<double>(rows());
}

}  // namespace urmem
