#include "urmem/scheme/protection_scheme.hpp"

#include <cmath>

#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

/// (2^bit)^2 — the squared error magnitude of a flipped two's-complement
/// integer bit (Eq. 6 uses 2^b regardless of sign; the sign bit's
/// magnitude is 2^(W-1) by the same convention).
double squared_bit_error(unsigned bit) {
  return std::ldexp(1.0, 2 * static_cast<int>(bit));
}

/// One length check per block call; the per-word loops below stay
/// contract-free.
void check_block_spans(std::size_t in, std::size_t out) {
  expects(in == out, "block output span must match the input length");
}

}  // namespace

void protection_scheme::configure(const fault_map& /*faults*/) {}

void protection_scheme::encode_block(std::uint32_t first_row,
                                     std::span<const word_t> data,
                                     std::span<word_t> out) const {
  check_block_spans(data.size(), out.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = encode(first_row + static_cast<std::uint32_t>(i), data[i]);
  }
}

block_decode_stats protection_scheme::decode_block(std::uint32_t first_row,
                                                   std::span<const word_t> stored,
                                                   std::span<word_t> out) const {
  check_block_spans(stored.size(), out.size());
  block_decode_stats stats;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    const read_result r =
        decode(first_row + static_cast<std::uint32_t>(i), stored[i]);
    out[i] = r.data;
    stats.count(r.status);
  }
  return stats;
}

// ---------------------------------------------------------------- none

none_scheme::none_scheme(unsigned width) : width_(width) {
  expects(is_valid_width(width), "word width must be 1..64");
}

word_t none_scheme::encode(std::uint32_t /*row*/, word_t data) const {
  return data & word_mask(width_);
}

read_result none_scheme::decode(std::uint32_t /*row*/, word_t stored) const {
  return {stored & word_mask(width_), ecc_status::clean};
}

void none_scheme::encode_block(std::uint32_t /*first_row*/,
                               std::span<const word_t> data,
                               std::span<word_t> out) const {
  check_block_spans(data.size(), out.size());
  const word_t mask = word_mask(width_);
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i] & mask;
}

block_decode_stats none_scheme::decode_block(std::uint32_t /*first_row*/,
                                             std::span<const word_t> stored,
                                             std::span<word_t> out) const {
  check_block_spans(stored.size(), out.size());
  const word_t mask = word_mask(width_);
  for (std::size_t i = 0; i < stored.size(); ++i) out[i] = stored[i] & mask;
  return {};
}

double none_scheme::worst_case_row_cost(
    std::span<const std::uint32_t> fault_cols) const {
  double cost = 0.0;
  for (const std::uint32_t col : fault_cols) cost += squared_bit_error(col);
  return cost;
}

void none_scheme::residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                                      std::vector<std::uint32_t>& out) const {
  out.insert(out.end(), fault_cols.begin(), fault_cols.end());
}

// -------------------------------------------------------------- secded

secded_scheme::secded_scheme(unsigned width) : code_(width) {}

std::string secded_scheme::name() const {
  return "H(" + std::to_string(code_.codeword_bits()) + "," +
         std::to_string(code_.data_bits()) + ") ECC";
}

word_t secded_scheme::encode(std::uint32_t /*row*/, word_t data) const {
  return code_.encode(data);
}

read_result secded_scheme::decode(std::uint32_t /*row*/, word_t stored) const {
  const ecc_decode_result r = code_.decode(stored);
  return {r.data, r.status};
}

void secded_scheme::encode_block(std::uint32_t /*first_row*/,
                                 std::span<const word_t> data,
                                 std::span<word_t> out) const {
  check_block_spans(data.size(), out.size());
  // code_.encode inlines to a few table lookups + XORs per word — the
  // whole tile encodes without a call, branch, or per-bit loop.
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = code_.encode(data[i]);
}

block_decode_stats secded_scheme::decode_block(std::uint32_t /*first_row*/,
                                               std::span<const word_t> stored,
                                               std::span<word_t> out) const {
  check_block_spans(stored.size(), out.size());
  block_decode_stats stats;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    const ecc_decode_result r = code_.decode(stored[i]);
    out[i] = r.data;
    stats.count(r.status);
  }
  return stats;
}

word_t secded_scheme::encode_reference(std::uint32_t /*row*/, word_t data) const {
  return code_.encode_reference(data);
}

read_result secded_scheme::decode_reference(std::uint32_t /*row*/,
                                            word_t stored) const {
  const ecc_decode_result r = code_.decode_reference(stored);
  return {r.data, r.status};
}

double secded_scheme::worst_case_row_cost(
    std::span<const std::uint32_t> fault_cols) const {
  if (fault_cols.size() <= 1) return 0.0;  // single error always corrected
  // Multiple faults: detected but uncorrectable — the decoder hands the
  // raw data bits through, so every faulty *data* column corrupts its
  // logical bit. Check-column faults do not touch data bits.
  double cost = 0.0;
  for (const std::uint32_t col : fault_cols) {
    const int bit = code_.data_bit_at_column(col);
    if (bit >= 0) cost += squared_bit_error(static_cast<unsigned>(bit));
  }
  return cost;
}

void secded_scheme::residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                                        std::vector<std::uint32_t>& out) const {
  if (fault_cols.size() <= 1) return;  // single error always corrected
  for (const std::uint32_t col : fault_cols) {
    const int bit = code_.data_bit_at_column(col);
    if (bit >= 0) out.push_back(static_cast<std::uint32_t>(bit));
  }
}

// --------------------------------------------------------------- hsiao

hsiao_scheme::hsiao_scheme(unsigned width, unsigned check_bits)
    : code_(std::make_shared<const hsiao_code>(width, check_bits)) {}

hsiao_scheme::hsiao_scheme(std::shared_ptr<const hsiao_code> code)
    : code_(std::move(code)) {
  expects(code_ != nullptr, "hsiao_scheme needs a codec");
}

std::string hsiao_scheme::name() const {
  return "Hsiao(" + std::to_string(code_->codeword_bits()) + "," +
         std::to_string(code_->data_bits()) + ") ECC";
}

word_t hsiao_scheme::encode(std::uint32_t /*row*/, word_t data) const {
  return code_->encode(data);
}

read_result hsiao_scheme::decode(std::uint32_t /*row*/, word_t stored) const {
  const ecc_decode_result r = code_->decode(stored);
  return {r.data, r.status};
}

void hsiao_scheme::encode_block(std::uint32_t /*first_row*/,
                                std::span<const word_t> data,
                                std::span<word_t> out) const {
  check_block_spans(data.size(), out.size());
  const hsiao_code& code = *code_;
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = code.encode(data[i]);
}

block_decode_stats hsiao_scheme::decode_block(std::uint32_t /*first_row*/,
                                              std::span<const word_t> stored,
                                              std::span<word_t> out) const {
  check_block_spans(stored.size(), out.size());
  const hsiao_code& code = *code_;
  block_decode_stats stats;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    const ecc_decode_result r = code.decode(stored[i]);
    out[i] = r.data;
    stats.count(r.status);
  }
  return stats;
}

word_t hsiao_scheme::encode_reference(std::uint32_t /*row*/, word_t data) const {
  return code_->encode_reference(data);
}

read_result hsiao_scheme::decode_reference(std::uint32_t /*row*/,
                                           word_t stored) const {
  const ecc_decode_result r = code_->decode_reference(stored);
  return {r.data, r.status};
}

double hsiao_scheme::worst_case_row_cost(
    std::span<const std::uint32_t> fault_cols) const {
  if (fault_cols.size() <= 1) return 0.0;  // single error always corrected
  // Multiple faults: detected but uncorrectable — the decoder hands the
  // raw data bits through, so every faulty *data* column corrupts its
  // logical bit (the identity layout makes bit == column).
  double cost = 0.0;
  for (const std::uint32_t col : fault_cols) {
    const int bit = code_->data_bit_at_column(col);
    if (bit >= 0) cost += squared_bit_error(static_cast<unsigned>(bit));
  }
  return cost;
}

void hsiao_scheme::residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                                       std::vector<std::uint32_t>& out) const {
  if (fault_cols.size() <= 1) return;  // single error always corrected
  for (const std::uint32_t col : fault_cols) {
    const int bit = code_->data_bit_at_column(col);
    if (bit >= 0) out.push_back(static_cast<std::uint32_t>(bit));
  }
}

// ----------------------------------------------------------------- bch

bch_scheme::bch_scheme(unsigned width, unsigned t)
    : code_(std::make_shared<const bch_code>(width, t)) {}

bch_scheme::bch_scheme(std::shared_ptr<const bch_code> code)
    : code_(std::move(code)) {
  expects(code_ != nullptr, "bch_scheme needs a codec");
}

std::string bch_scheme::name() const {
  return "BCH(" + std::to_string(code_->codeword_bits()) + "," +
         std::to_string(code_->data_bits()) + ",t=" +
         std::to_string(code_->t()) + ") ECC";
}

word_t bch_scheme::encode(std::uint32_t /*row*/, word_t data) const {
  return code_->encode(data);
}

read_result bch_scheme::decode(std::uint32_t /*row*/, word_t stored) const {
  const ecc_decode_result r = code_->decode(stored);
  return {r.data, r.status};
}

void bch_scheme::encode_block(std::uint32_t /*first_row*/,
                              std::span<const word_t> data,
                              std::span<word_t> out) const {
  check_block_spans(data.size(), out.size());
  const bch_code& code = *code_;
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = code.encode(data[i]);
}

block_decode_stats bch_scheme::decode_block(std::uint32_t /*first_row*/,
                                            std::span<const word_t> stored,
                                            std::span<word_t> out) const {
  check_block_spans(stored.size(), out.size());
  const bch_code& code = *code_;
  block_decode_stats stats;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    const ecc_decode_result r = code.decode(stored[i]);
    out[i] = r.data;
    stats.count(r.status);
  }
  return stats;
}

word_t bch_scheme::encode_reference(std::uint32_t /*row*/, word_t data) const {
  return code_->encode_reference(data);
}

read_result bch_scheme::decode_reference(std::uint32_t /*row*/,
                                         word_t stored) const {
  const ecc_decode_result r = code_->decode_reference(stored);
  return {r.data, r.status};
}

double bch_scheme::worst_case_row_cost(
    std::span<const std::uint32_t> fault_cols) const {
  // Up to t faults are corrected wherever they land. Beyond that the
  // parity extension guarantees detection (never miscorrection) at
  // t+1 faults, so the raw-pass-through model below is *exact* there —
  // urmem-verify proves this by enumeration.
  if (fault_cols.size() <= code_->t()) return 0.0;
  double cost = 0.0;
  for (const std::uint32_t col : fault_cols) {
    const int bit = code_->data_bit_at_column(col);
    if (bit >= 0) cost += squared_bit_error(static_cast<unsigned>(bit));
  }
  return cost;
}

void bch_scheme::residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                                     std::vector<std::uint32_t>& out) const {
  if (fault_cols.size() <= code_->t()) return;
  for (const std::uint32_t col : fault_cols) {
    const int bit = code_->data_bit_at_column(col);
    if (bit >= 0) out.push_back(static_cast<std::uint32_t>(bit));
  }
}

// ---------------------------------------------------------------- pecc

pecc_scheme::pecc_scheme(unsigned width, unsigned protected_bits)
    : codec_(width, protected_bits) {}

std::string pecc_scheme::name() const {
  const auto& inner = codec_.inner_code();
  return "H(" + std::to_string(inner.codeword_bits()) + "," +
         std::to_string(inner.data_bits()) + ") P-ECC";
}

word_t pecc_scheme::encode(std::uint32_t /*row*/, word_t data) const {
  return codec_.encode(data);
}

read_result pecc_scheme::decode(std::uint32_t /*row*/, word_t stored) const {
  const ecc_decode_result r = codec_.decode(stored);
  return {r.data, r.status};
}

void pecc_scheme::encode_block(std::uint32_t /*first_row*/,
                               std::span<const word_t> data,
                               std::span<word_t> out) const {
  check_block_spans(data.size(), out.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = codec_.encode(data[i]);
}

block_decode_stats pecc_scheme::decode_block(std::uint32_t /*first_row*/,
                                             std::span<const word_t> stored,
                                             std::span<word_t> out) const {
  check_block_spans(stored.size(), out.size());
  block_decode_stats stats;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    const ecc_decode_result r = codec_.decode(stored[i]);
    out[i] = r.data;
    stats.count(r.status);
  }
  return stats;
}

word_t pecc_scheme::encode_reference(std::uint32_t /*row*/, word_t data) const {
  return codec_.encode_reference(data);
}

read_result pecc_scheme::decode_reference(std::uint32_t /*row*/,
                                          word_t stored) const {
  const ecc_decode_result r = codec_.decode_reference(stored);
  return {r.data, r.status};
}

double pecc_scheme::worst_case_row_cost(
    std::span<const std::uint32_t> fault_cols) const {
  double cost = 0.0;
  std::size_t protected_faults = 0;
  for (const std::uint32_t col : fault_cols) {
    if (codec_.is_protected_column(col)) ++protected_faults;
  }
  for (const std::uint32_t col : fault_cols) {
    if (codec_.is_protected_column(col)) {
      if (protected_faults <= 1) continue;  // corrected by the inner code
      const int bit = codec_.data_bit_at_column(col);
      if (bit >= 0) cost += squared_bit_error(static_cast<unsigned>(bit));
    } else {
      // Unprotected low-order bit: error magnitude 2^col, col < u.
      cost += squared_bit_error(col);
    }
  }
  return cost;
}

void pecc_scheme::residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                                      std::vector<std::uint32_t>& out) const {
  std::size_t protected_faults = 0;
  for (const std::uint32_t col : fault_cols) {
    if (codec_.is_protected_column(col)) ++protected_faults;
  }
  for (const std::uint32_t col : fault_cols) {
    if (codec_.is_protected_column(col)) {
      if (protected_faults <= 1) continue;  // corrected by the inner code
      const int bit = codec_.data_bit_at_column(col);
      if (bit >= 0) out.push_back(static_cast<std::uint32_t>(bit));
    } else {
      out.push_back(col);
    }
  }
}

// ------------------------------------------------------------- shuffle

shuffle_protection::shuffle_protection(std::uint32_t rows, unsigned width,
                                       unsigned n_fm, shift_policy policy)
    : impl_(rows, width, n_fm, policy), policy_(policy) {}

std::string shuffle_protection::name() const {
  return "nFM=" + std::to_string(impl_.shuffler().n_fm());
}

void shuffle_protection::configure(const fault_map& faults) { impl_.program(faults); }

word_t shuffle_protection::encode(std::uint32_t row, word_t data) const {
  return impl_.apply_write(row, data);
}

read_result shuffle_protection::decode(std::uint32_t row, word_t stored) const {
  return {impl_.restore_read(row, stored), ecc_status::clean};
}

void shuffle_protection::encode_block(std::uint32_t first_row,
                                      std::span<const word_t> data,
                                      std::span<word_t> out) const {
  impl_.apply_write_block(first_row, data, out);
}

block_decode_stats shuffle_protection::decode_block(std::uint32_t first_row,
                                                    std::span<const word_t> stored,
                                                    std::span<word_t> out) const {
  impl_.restore_read_block(first_row, stored, out);
  return {};  // shuffling neither corrects nor detects — always clean
}

double shuffle_protection::worst_case_row_cost(
    std::span<const std::uint32_t> fault_cols) const {
  if (fault_cols.empty()) return 0.0;
  const unsigned xfm = choose_xfm(impl_.shuffler(), fault_cols, policy_);
  return shift_cost(impl_.shuffler(), fault_cols, xfm);
}

void shuffle_protection::residual_fault_bits(
    std::span<const std::uint32_t> fault_cols,
    std::vector<std::uint32_t>& out) const {
  if (fault_cols.empty()) return;
  const unsigned xfm = choose_xfm(impl_.shuffler(), fault_cols, policy_);
  for (const std::uint32_t col : fault_cols) {
    out.push_back(impl_.shuffler().logical_position(col, xfm));
  }
}

// ------------------------------------------------------------ factories

std::unique_ptr<protection_scheme> make_scheme_none(unsigned width) {
  return std::make_unique<none_scheme>(width);
}

std::unique_ptr<protection_scheme> make_scheme_secded(unsigned width) {
  return std::make_unique<secded_scheme>(width);
}

std::unique_ptr<protection_scheme> make_scheme_pecc(unsigned width,
                                                    unsigned protected_bits) {
  return std::make_unique<pecc_scheme>(width, protected_bits);
}

std::unique_ptr<protection_scheme> make_scheme_shuffle(std::uint32_t rows,
                                                       unsigned width, unsigned n_fm,
                                                       shift_policy policy) {
  return std::make_unique<shuffle_protection>(rows, width, n_fm, policy);
}

std::unique_ptr<protection_scheme> make_scheme_hsiao(unsigned width,
                                                     unsigned check_bits) {
  return std::make_unique<hsiao_scheme>(width, check_bits);
}

std::unique_ptr<protection_scheme> make_scheme_bch(unsigned width, unsigned t) {
  return std::make_unique<bch_scheme>(width, t);
}

}  // namespace urmem
