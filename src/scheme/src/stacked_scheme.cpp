#include "urmem/scheme/stacked_scheme.hpp"

#include <utility>

#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

std::unique_ptr<protection_scheme> make_ecc_stage(
    unsigned width, stacked_scheme::ecc_stage ecc, unsigned protected_bits) {
  if (ecc == stacked_scheme::ecc_stage::secded) return make_scheme_secded(width);
  return make_scheme_pecc(width, protected_bits);
}

}  // namespace

stacked_scheme::stacked_scheme(std::uint32_t rows, unsigned width, unsigned n_fm,
                               ecc_stage ecc, shift_policy policy,
                               unsigned protected_bits)
    : rows_(rows),
      shuffle_(rows, width, n_fm, policy),
      ecc_(make_ecc_stage(width, ecc, protected_bits)) {
  ensures(ecc_->data_bits() == shuffle_.storage_bits(),
          "stacked stages must agree on the word width");
}

std::string stacked_scheme::name() const {
  return shuffle_.name() + "+" + ecc_->name();
}

void stacked_scheme::configure(const fault_map& faults) {
  expects(faults.geometry().width == storage_bits(),
          "stacked fault map must cover the storage columns");
  // BIST discovers faults in storage-column space; the shuffle stage is
  // programmed from the per-row ECC *residual* — the logical bits that
  // would survive correction — so rows the ECC fully repairs keep xFM=0
  // and multi-fault rows rotate their surviving damage into the LSBs.
  fault_map mapped(array_geometry{rows_, shuffle_.storage_bits()});
  std::vector<std::uint32_t> cols;
  std::vector<std::uint32_t> residual;
  for (const std::uint32_t row : faults.faulty_rows()) {
    cols.clear();
    residual.clear();
    for (const fault& f : faults.faults_in_row(row)) cols.push_back(f.col);
    ecc_->residual_fault_bits(cols, residual);
    for (const std::uint32_t bit : residual) {
      mapped.add({row, bit, fault_kind::flip});
    }
  }
  shuffle_.configure(mapped);
}

word_t stacked_scheme::encode(std::uint32_t row, word_t data) const {
  return ecc_->encode(row, shuffle_.encode(row, data));
}

read_result stacked_scheme::decode(std::uint32_t row, word_t stored) const {
  const read_result ecc = ecc_->decode(row, stored);
  return {shuffle_.decode(row, ecc.data).data, ecc.status};
}

void stacked_scheme::encode_block(std::uint32_t first_row,
                                  std::span<const word_t> data,
                                  std::span<word_t> out) const {
  // Both stage block paths tolerate aliased spans, so the tile streams
  // through in place: shuffle into `out`, then ECC-encode over it.
  shuffle_.encode_block(first_row, data, out);
  ecc_->encode_block(first_row, out, out);
}

block_decode_stats stacked_scheme::decode_block(std::uint32_t first_row,
                                                std::span<const word_t> stored,
                                                std::span<word_t> out) const {
  const block_decode_stats stats = ecc_->decode_block(first_row, stored, out);
  shuffle_.decode_block(first_row, out, out);  // always clean, no counters
  return stats;
}

word_t stacked_scheme::encode_reference(std::uint32_t row, word_t data) const {
  return ecc_->encode_reference(row, shuffle_.encode_reference(row, data));
}

read_result stacked_scheme::decode_reference(std::uint32_t row,
                                             word_t stored) const {
  const read_result ecc = ecc_->decode_reference(row, stored);
  return {shuffle_.decode_reference(row, ecc.data).data, ecc.status};
}

double stacked_scheme::worst_case_row_cost(
    std::span<const std::uint32_t> fault_cols) const {
  if (fault_cols.empty()) return 0.0;
  std::vector<std::uint32_t> residual;
  ecc_->residual_fault_bits(fault_cols, residual);
  return shuffle_.worst_case_row_cost(residual);
}

void stacked_scheme::residual_fault_bits(std::span<const std::uint32_t> fault_cols,
                                         std::vector<std::uint32_t>& out) const {
  std::vector<std::uint32_t> residual;
  ecc_->residual_fault_bits(fault_cols, residual);
  shuffle_.residual_fault_bits(residual, out);
}

std::unique_ptr<protection_scheme> make_scheme_stacked(
    std::uint32_t rows, unsigned width, unsigned n_fm,
    stacked_scheme::ecc_stage ecc, shift_policy policy, unsigned protected_bits) {
  return std::make_unique<stacked_scheme>(rows, width, n_fm, ecc, policy,
                                          protected_bits);
}

}  // namespace urmem
