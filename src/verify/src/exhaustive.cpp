#include "urmem/verify/exhaustive.hpp"

#include <bit>
#include <cmath>

#include "urmem/common/contracts.hpp"
#include "urmem/memory/fault_map.hpp"
#include "urmem/sim/campaign_runner.hpp"

namespace urmem {

std::uint64_t choose_nk(unsigned n, unsigned k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (unsigned i = 1; i <= k; ++i) {
    // Multiply-then-divide stays exact: the running value is C(n-k+i, i).
    result = result * (n - k + i) / i;
  }
  return result;
}

std::uint64_t pattern_count(unsigned columns, unsigned max_bits) {
  std::uint64_t total = 1;  // the empty pattern
  for (unsigned k = 1; k <= max_bits; ++k) total += choose_nk(columns, k);
  return total;
}

void unrank_pattern(std::uint64_t index, unsigned columns, unsigned max_bits,
                    std::vector<std::uint32_t>& cols) {
  cols.clear();
  // Locate the weight class, then unrank lexicographically within it:
  // the combinations starting with column c number C(columns-c-1, k-1).
  unsigned weight = 0;
  while (index >= choose_nk(columns, weight)) {
    index -= choose_nk(columns, weight);
    ++weight;
    ensures(weight <= max_bits, "pattern index out of range");
  }
  unsigned next = 0;
  for (unsigned left = weight; left > 0; --left) {
    for (unsigned c = next;; ++c) {
      ensures(c + left <= columns, "combination unranking overran");
      const std::uint64_t with_c = choose_nk(columns - c - 1, left - 1);
      if (index < with_c) {
        cols.push_back(c);
        next = c + 1;
        break;
      }
      index -= with_c;
    }
  }
}

namespace {

/// Per-pattern result slot merged in trial order by the report.
struct trial_outcome {
  std::uint64_t decodes = 0;
  std::uint64_t clean = 0;
  std::uint64_t corrected = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t failures = 0;
  std::string first_failure;
};

std::string join_cols(const std::vector<std::uint32_t>& cols) {
  std::string out = "[";
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(cols[i]);
  }
  return out + "]";
}

}  // namespace

std::string exhaustive_report::summary() const {
  std::string line = label + ": " + std::to_string(data_bits) + "->" +
                     std::to_string(storage_bits) + " bits, k<=" +
                     std::to_string(max_pattern_bits) + ", " +
                     std::to_string(patterns) + " patterns, " +
                     std::to_string(decodes) + " decodes (" +
                     std::to_string(corrected) + " corrected, " +
                     std::to_string(uncorrectable) + " detected): ";
  line += ok() ? "OK" : ("FAIL (" + std::to_string(failure_count) + ")");
  return line;
}

exhaustive_report verify_scheme_exhaustive(const std::string& label,
                                           const scheme_factory& factory,
                                           campaign_runner& pool,
                                           const exhaustive_config& config) {
  expects(config.rows >= 1, "exhaustive verification needs at least one row");
  const std::uint32_t rows = config.rows;
  const std::unique_ptr<protection_scheme> probe = factory(rows);
  exhaustive_report report;
  report.label = label;
  report.data_bits = probe->data_bits();
  report.storage_bits = probe->storage_bits();
  report.guaranteed_bits = probe->guaranteed_correctable_bits();

  // Model-exactness holds up to one past the guarantee (and to two bits
  // for no-guarantee schemes, whose residual models are exact there);
  // deeper sweeps still get path bit-identity checks.
  const unsigned exact_bits = std::max(2u, report.guaranteed_bits + 1);
  const unsigned max_bits =
      std::min(config.max_pattern_bits == 0 ? exact_bits
                                            : config.max_pattern_bits,
               report.storage_bits);
  report.max_pattern_bits = max_bits;
  report.patterns = pattern_count(report.storage_bits, max_bits);

  const unsigned data_bits = report.data_bits;
  const bool full_data = data_bits <= config.full_data_width_limit;
  const std::size_t words_per_pattern =
      full_data ? (std::size_t{1} << data_bits) : config.data_words;
  expects(words_per_pattern >= 1, "data_words must be at least 1");

  const std::vector<trial_outcome> outcomes = pool.map<trial_outcome>(
      report.patterns, [&](std::uint64_t trial, rng& gen) {
        trial_outcome outcome;
        const auto fail = [&](const std::vector<std::uint32_t>& cols,
                              const std::string& what) {
          ++outcome.failures;
          if (outcome.first_failure.empty()) {
            outcome.first_failure = label + " pattern #" +
                                    std::to_string(trial) + " cols=" +
                                    join_cols(cols) + ": " + what;
          }
        };

        std::vector<std::uint32_t> cols;
        unrank_pattern(trial, report.storage_bits, max_bits, cols);
        const unsigned k = static_cast<unsigned>(cols.size());
        word_t pattern_mask = 0;
        for (const std::uint32_t c : cols) pattern_mask |= word_t{1} << c;

        // Build and program the scheme with this very pattern on every
        // row, so BIST-driven schemes (shuffle) are measured under the
        // configuration the analytic model assumes.
        const std::unique_ptr<protection_scheme> scheme = factory(rows);
        fault_map faults(array_geometry{rows, report.storage_bits});
        for (std::uint32_t row = 0; row < rows; ++row) {
          for (const std::uint32_t c : cols) {
            faults.add({row, c, fault_kind::flip});
          }
        }
        scheme->configure(faults);

        // The analytic residual model, checked for internal consistency
        // (cost hooks == sum 4^b over exactly the residual bits).
        std::vector<std::uint32_t> residual;
        scheme->residual_fault_bits(cols, residual);
        word_t residual_mask = 0;
        double residual_cost = 0.0;
        for (const std::uint32_t b : residual) {
          if (b >= data_bits) {
            fail(cols, "residual bit " + std::to_string(b) +
                           " outside the data word");
            return outcome;
          }
          residual_mask |= word_t{1} << b;
          residual_cost += std::ldexp(1.0, 2 * static_cast<int>(b));
        }
        if (std::popcount(residual_mask) !=
            static_cast<int>(residual.size())) {
          fail(cols, "residual bits not distinct");
        }
        if (scheme->worst_case_row_cost(cols) != residual_cost) {
          fail(cols, "worst_case_row_cost disagrees with residual bits");
        }
        for (const std::uint32_t row : {std::uint32_t{0}, rows - 1}) {
          if (scheme->worst_case_row_cost_at(row, cols) != residual_cost) {
            fail(cols, "worst_case_row_cost_at(" + std::to_string(row) +
                           ") disagrees with residual bits");
          }
          std::vector<std::uint32_t> at_bits;
          scheme->residual_fault_bits_at(row, cols, at_bits);
          if (at_bits != residual) {
            fail(cols, "residual_fault_bits_at(" + std::to_string(row) +
                           ") disagrees with the row-agnostic hook");
          }
        }
        const bool model_exact = k <= exact_bits;

        // Data words under test: exhaustive at narrow widths, else the
        // corner words plus deterministic per-trial draws.
        std::vector<word_t> data(words_per_pattern);
        if (full_data) {
          for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<word_t>(i);
          }
        } else {
          const word_t corners[] = {0, word_mask(data_bits),
                                    word_t{0xAAAAAAAAAAAAAAAA},
                                    word_t{0x5555555555555555}};
          for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = (i < 4 ? corners[i] : gen()) & word_mask(data_bits);
          }
        }

        std::vector<word_t> encoded(rows);
        std::vector<word_t> corrupted(rows);
        std::vector<word_t> decoded(rows);
        for (std::size_t first = 0; first < data.size(); first += rows) {
          const std::size_t count = std::min<std::size_t>(rows, data.size() - first);
          const std::span<const word_t> chunk(data.data() + first, count);
          encoded.resize(count);
          corrupted.resize(count);
          decoded.resize(count);

          scheme->encode_block(0, chunk, encoded);
          for (std::size_t i = 0; i < count; ++i) {
            const auto row = static_cast<std::uint32_t>(i);
            if (encoded[i] != scheme->encode(row, chunk[i]) ||
                encoded[i] != scheme->encode_reference(row, chunk[i])) {
              fail(cols, "encode paths disagree at data=" +
                             std::to_string(chunk[i]));
            }
            corrupted[i] = encoded[i] ^ pattern_mask;
          }

          const block_decode_stats stats =
              scheme->decode_block(0, corrupted, decoded);
          block_decode_stats expected_stats;
          for (std::size_t i = 0; i < count; ++i) {
            const auto row = static_cast<std::uint32_t>(i);
            const read_result scalar = scheme->decode(row, corrupted[i]);
            const read_result reference =
                scheme->decode_reference(row, corrupted[i]);
            expected_stats.count(scalar.status);
            ++outcome.decodes;
            switch (scalar.status) {
              case ecc_status::clean: ++outcome.clean; break;
              case ecc_status::corrected: ++outcome.corrected; break;
              case ecc_status::detected_uncorrectable:
                ++outcome.uncorrectable;
                break;
            }
            if (decoded[i] != scalar.data || scalar.data != reference.data ||
                scalar.status != reference.status) {
              fail(cols, "decode paths disagree at data=" +
                             std::to_string(chunk[i]));
              continue;
            }
            if (model_exact && decoded[i] != (chunk[i] ^ residual_mask)) {
              fail(cols, "decoded word disagrees with the residual model at "
                         "data=" +
                             std::to_string(chunk[i]));
            }
            if (k == 0 && scalar.status != ecc_status::clean) {
              fail(cols, "clean stored word not reported clean");
            }
            if (report.guaranteed_bits >= 1 && k >= 1) {
              if (k <= report.guaranteed_bits &&
                  scalar.status != ecc_status::corrected) {
                fail(cols, "pattern within the correction guarantee not "
                           "reported corrected");
              }
              if (k == report.guaranteed_bits + 1 &&
                  scalar.status != ecc_status::detected_uncorrectable) {
                fail(cols, "pattern one past the guarantee not reported "
                           "detected_uncorrectable");
              }
            }
          }
          if (stats.corrected != expected_stats.corrected ||
              stats.uncorrectable != expected_stats.uncorrectable) {
            fail(cols, "decode_block counters disagree with scalar statuses");
          }
        }
        return outcome;
      });

  for (const trial_outcome& outcome : outcomes) {
    report.decodes += outcome.decodes;
    report.clean += outcome.clean;
    report.corrected += outcome.corrected;
    report.uncorrectable += outcome.uncorrectable;
    report.failure_count += outcome.failures;
    if (!outcome.first_failure.empty() &&
        report.failures.size() < config.max_failures) {
      report.failures.push_back(outcome.first_failure);
    }
  }
  return report;
}

}  // namespace urmem
