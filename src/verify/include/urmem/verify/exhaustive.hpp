// Exhaustive nCr fault-pattern verification of protection schemes.
//
// For narrow storage widths it is feasible to enumerate *every* k-bit
// error pattern across the data+check columns (k up to the scheme's
// guaranteed correction strength plus one) and prove, pattern by
// pattern, the properties the rest of the repo merely samples:
//
//   * block == scalar == reference bit-identity, data and status, for
//     encode and decode;
//   * corrected / detected_uncorrectable classification: <= t-bit
//     patterns decode back to the written data, (t+1)-bit patterns are
//     flagged and never miscorrected (for schemes advertising a
//     guarantee via guaranteed_correctable_bits());
//   * the analytic residual model is *exact*: decoded ^ data equals the
//     bit set residual_fault_bits() predicts for every enumerated data
//     word, and worst_case_row_cost()/worst_case_row_cost_at() equal
//     sum 4^b over exactly those bits — so analytic_mse matches the
//     enumerated truth, not just an upper bound.
//
// Patterns are enumerated by unranking trial indices through the
// combinatorial number system (the mat_ecc_ram-style nCr walk), which
// makes the sweep a plain 0..N-1 trial range: the existing
// campaign_runner parallelizes it deterministically, and any failure
// reproduces from its pattern index alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "urmem/sim/memory_pipeline.hpp"

namespace urmem {

class campaign_runner;

/// Binomial coefficient C(n, k) (exact; the widths here keep it tiny).
[[nodiscard]] std::uint64_t choose_nk(unsigned n, unsigned k);

/// Number of error patterns of weight 0..max_bits over `columns`
/// columns (the empty pattern included as index 0).
[[nodiscard]] std::uint64_t pattern_count(unsigned columns, unsigned max_bits);

/// Unranks pattern `index` (in [0, pattern_count)) into its ascending
/// column list: index 0 is the empty pattern, then all weight-1
/// patterns in lexicographic order, then weight-2, ...
void unrank_pattern(std::uint64_t index, unsigned columns, unsigned max_bits,
                    std::vector<std::uint32_t>& cols);

/// Tuning knobs of one exhaustive sweep.
struct exhaustive_config {
  /// Deepest pattern weight; 0 = guaranteed_correctable_bits() + 1,
  /// floored at 2 so no-guarantee schemes still see multi-bit patterns.
  unsigned max_pattern_bits = 0;
  /// Every data word is enumerated when data_bits <= this...
  unsigned full_data_width_limit = 8;
  /// ...otherwise this many words: 0, all-ones, 0xAA.., 0x55.., rest
  /// drawn from the trial's deterministic stream.
  std::size_t data_words = 8;
  /// Rows per scheme instance; patterns are verified through block
  /// calls spanning all of them (row-dependent schemes get coverage).
  std::uint32_t rows = 8;
  /// Failure messages kept verbatim; the rest only counted.
  std::size_t max_failures = 8;
};

/// Outcome of one scheme x width sweep.
struct exhaustive_report {
  std::string label;
  unsigned data_bits = 0;
  unsigned storage_bits = 0;
  unsigned guaranteed_bits = 0;
  unsigned max_pattern_bits = 0;
  std::uint64_t patterns = 0;       ///< fault patterns enumerated
  std::uint64_t decodes = 0;        ///< pattern x data-word decodes checked
  std::uint64_t clean = 0;          ///< decodes reporting ecc_status::clean
  std::uint64_t corrected = 0;      ///< decodes reporting corrected
  std::uint64_t uncorrectable = 0;  ///< decodes reporting uncorrectable
  std::uint64_t failure_count = 0;  ///< total property violations
  std::vector<std::string> failures;  ///< first max_failures, verbatim

  [[nodiscard]] bool ok() const { return failure_count == 0; }
  /// One table row: label, sizes, pattern/decode counts, verdict.
  [[nodiscard]] std::string summary() const;
};

/// Runs the exhaustive sweep for one scheme (built fresh per pattern
/// from `factory` and configured with that pattern as its BIST fault
/// map, so BIST-dependent schemes are verified against the very map the
/// analytic model assumes). Deterministic for a fixed seed at any
/// thread count.
[[nodiscard]] exhaustive_report verify_scheme_exhaustive(
    const std::string& label, const scheme_factory& factory,
    campaign_runner& pool, const exhaustive_config& config = {});

}  // namespace urmem
