#include "urmem/ecc/hsiao.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

/// Number of odd-weight(>=3) k-bit vectors: 2^(k-1) odd-weight vectors
/// minus the k unit vectors reserved for the check columns.
unsigned odd_column_pool(unsigned k) {
  return (1u << (k - 1)) - k;
}

}  // namespace

unsigned hsiao_code::min_check_bits(unsigned data_bits) {
  unsigned k = 3;
  while (odd_column_pool(k) < data_bits) ++k;
  return k;
}

hsiao_code::hsiao_code(unsigned data_bits, unsigned check_bits)
    : data_bits_(data_bits) {
  expects(data_bits >= 1, "hsiao_code needs at least one data bit");
  const unsigned min_k = min_check_bits(data_bits);
  check_bits_ = check_bits == 0 ? min_k : check_bits;
  expects(check_bits_ >= min_k,
          "hsiao_code check_bits too small for the data width");
  expects(check_bits_ <= max_check_bits,
          "hsiao_code supports at most 12 check bits");
  codeword_bits_ = data_bits_ + check_bits_;
  expects(codeword_bits_ <= max_word_width,
          "hsiao codeword must fit the 64-bit carrier");

  // Pick the d data columns weight-3-first and balanced: within each odd
  // weight class, repeatedly take the candidate whose set bits land on
  // the currently lightest check rows (ties -> smallest vector), so the
  // per-check XOR-tree sizes stay within one input of each other.
  std::vector<unsigned> row_load(check_bits_, 0);
  column_syndromes_.reserve(codeword_bits_);
  for (unsigned weight = 3; column_syndromes_.size() < data_bits_;
       weight += 2) {
    ensures(weight <= check_bits_, "hsiao column pool exhausted");
    std::vector<unsigned> pool;
    for (unsigned v = 0; v < (1u << check_bits_); ++v) {
      if (static_cast<unsigned>(std::popcount(v)) == weight) pool.push_back(v);
    }
    std::vector<bool> used(pool.size(), false);
    for (std::size_t taken = 0;
         taken < pool.size() && column_syndromes_.size() < data_bits_;
         ++taken) {
      std::size_t best = pool.size();
      unsigned best_load = 0;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (used[i]) continue;
        unsigned load = 0;
        for (unsigned r = 0; r < check_bits_; ++r) {
          if (get_bit(pool[i], r)) load += row_load[r];
        }
        if (best == pool.size() || load < best_load) {
          best = i;
          best_load = load;
        }
      }
      used[best] = true;
      column_syndromes_.push_back(pool[best]);
      for (unsigned r = 0; r < check_bits_; ++r) {
        if (get_bit(pool[best], r)) ++row_load[r];
      }
    }
  }
  // Check columns are the unit vectors, appended after the data span.
  for (unsigned i = 0; i < check_bits_; ++i) {
    column_syndromes_.push_back(1u << i);
  }
  ensures(column_syndromes_.size() == codeword_bits_, "hsiao layout mismatch");

  cover_masks_.assign(check_bits_, 0);
  for (unsigned bit = 0; bit < data_bits_; ++bit) {
    for (unsigned r = 0; r < check_bits_; ++r) {
      if (get_bit(column_syndromes_[bit], r)) {
        cover_masks_[r] |= word_t{1} << bit;
      }
    }
  }

  compile_tables();
}

void hsiao_code::compile_tables() {
  // Encode tables: GF(2)-linear, so each byte slice needs only its 8
  // single-bit codewords; the 256 entries XOR-combine down the chain.
  encode_slices_ = (data_bits_ + 7) / 8;
  for (unsigned s = 0; s < encode_slices_; ++s) {
    std::array<word_t, 8> single{};
    for (unsigned b = 0; b < 8; ++b) {
      const unsigned bit = 8 * s + b;
      single[b] = bit < data_bits_ ? encode_reference(word_t{1} << bit) : 0;
    }
    encode_lut_[s][0] = 0;
    for (unsigned v = 1; v < 256; ++v) {
      const unsigned rest = v & (v - 1);
      encode_lut_[s][v] = encode_lut_[s][rest] ^ single[log2_exact(v ^ rest)];
    }
  }

  // Syndrome tables: a stored bit at column c contributes its H column.
  syndrome_slices_ = (codeword_bits_ + 7) / 8;
  for (unsigned s = 0; s < syndrome_slices_; ++s) {
    std::array<std::uint16_t, 8> single{};
    for (unsigned b = 0; b < 8; ++b) {
      const unsigned column = 8 * s + b;
      if (column >= codeword_bits_) continue;
      single[b] = static_cast<std::uint16_t>(column_syndromes_[column]);
    }
    syndrome_lut_[s][0] = 0;
    for (unsigned v = 1; v < 256; ++v) {
      const unsigned rest = v & (v - 1);
      syndrome_lut_[s][v] = static_cast<std::uint16_t>(
          syndrome_lut_[s][rest] ^ single[log2_exact(v ^ rest)]);
    }
  }

  // Correction masks: a single-bit error at column c reproduces H's
  // column c, and the columns are distinct, so the inverse map is exact.
  // Every other syndrome keeps mask 0 -> detected_uncorrectable.
  correction_mask_.assign(std::size_t{1} << check_bits_, 0);
  for (unsigned column = 0; column < codeword_bits_; ++column) {
    ensures(correction_mask_[column_syndromes_[column]] == 0,
            "hsiao H-matrix columns must be distinct");
    correction_mask_[column_syndromes_[column]] = word_t{1} << column;
  }
}

word_t hsiao_code::encode_reference(word_t data) const {
  data &= word_mask(data_bits_);
  word_t cw = data;
  for (unsigned r = 0; r < check_bits_; ++r) {
    if (parity(data & cover_masks_[r])) {
      cw |= word_t{1} << (data_bits_ + r);
    }
  }
  return cw;
}

ecc_decode_result hsiao_code::decode_reference(word_t stored) const {
  stored &= word_mask(codeword_bits_);
  unsigned syndrome = 0;
  for (unsigned column = 0; column < codeword_bits_; ++column) {
    if (get_bit(stored, column)) syndrome ^= column_syndromes_[column];
  }
  if (syndrome == 0) return {extract_data(stored), ecc_status::clean};
  for (unsigned column = 0; column < codeword_bits_; ++column) {
    if (column_syndromes_[column] == syndrome) {
      return {extract_data(flip_bit(stored, column)), ecc_status::corrected};
    }
  }
  return {extract_data(stored), ecc_status::detected_uncorrectable};
}

unsigned hsiao_code::data_column(unsigned bit) const {
  expects(bit < data_bits_, "data bit out of range");
  return bit;
}

int hsiao_code::data_bit_at_column(unsigned column) const {
  expects(column < codeword_bits_, "codeword column out of range");
  return column < data_bits_ ? static_cast<int>(column) : -1;
}

}  // namespace urmem
