#include "urmem/ecc/hamming_secded.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

// Smallest p with 2^p >= d + p + 1.
unsigned required_parity_bits(unsigned data_bits) {
  unsigned p = 0;
  while ((word_t{1} << p) < data_bits + p + 1) ++p;
  return p;
}

}  // namespace

hamming_secded::hamming_secded(unsigned data_bits) : data_bits_(data_bits) {
  expects(data_bits >= 1 && data_bits <= 57,
          "hamming_secded supports 1..57 data bits (codeword must fit 64 bits)");
  parity_bits_ = required_parity_bits(data_bits);
  codeword_bits_ = data_bits + parity_bits_ + 1;

  // Codeword column 0 carries the overall parity bit; columns 1..n-1 use
  // the classical Hamming position numbering, so column i == position i:
  // powers of two are parity columns, the rest hold data bits in order.
  column_to_data_bit_.assign(codeword_bits_, -1);
  data_columns_.reserve(data_bits_);
  for (unsigned column = 1; column < codeword_bits_; ++column) {
    if (is_power_of_two(column)) continue;
    column_to_data_bit_[column] = static_cast<int>(data_columns_.size());
    data_columns_.push_back(column);
  }
  ensures(data_columns_.size() == data_bits_, "hamming layout mismatch");

  cover_masks_.reserve(parity_bits_);
  for (unsigned i = 0; i < parity_bits_; ++i) {
    word_t mask = 0;
    for (unsigned column = 1; column < codeword_bits_; ++column) {
      if ((column & (1u << i)) != 0) mask |= word_t{1} << column;
    }
    cover_masks_.push_back(mask);
  }

  compile_tables();
}

void hamming_secded::compile_tables() {
  // Encode tables. encode_reference is GF(2)-linear, so each byte slice
  // only needs the 8 single-bit codewords of its slice; the 256 entries
  // are built by XOR-combining an entry already filled in (v with its
  // lowest bit cleared) with the lowest bit's codeword.
  encode_slices_ = (data_bits_ + 7) / 8;
  for (unsigned s = 0; s < encode_slices_; ++s) {
    std::array<word_t, 8> single{};
    for (unsigned b = 0; b < 8; ++b) {
      const unsigned bit = 8 * s + b;
      single[b] = bit < data_bits_ ? encode_reference(word_t{1} << bit) : 0;
    }
    encode_lut_[s][0] = 0;
    for (unsigned v = 1; v < 256; ++v) {
      const unsigned rest = v & (v - 1);
      encode_lut_[s][v] =
          encode_lut_[s][rest] ^ single[log2_exact(v ^ rest)];
    }
  }

  // Syndrome tables: syndrome and overall parity are likewise linear in
  // the stored word. A stored bit at column c contributes c to the
  // syndrome (the Hamming position numbering) and always flips the
  // overall parity; derive both from the cover masks rather than assume
  // the numbering, so the tables stay faithful to the H-matrix.
  syndrome_slices_ = (codeword_bits_ + 7) / 8;
  syndrome_mask_ = (1u << parity_bits_) - 1;
  for (unsigned s = 0; s < syndrome_slices_; ++s) {
    std::array<std::uint8_t, 8> single{};
    for (unsigned b = 0; b < 8; ++b) {
      const unsigned column = 8 * s + b;
      if (column >= codeword_bits_) continue;
      unsigned syndrome = 0;
      for (unsigned i = 0; i < parity_bits_; ++i) {
        if (get_bit(cover_masks_[i], column)) syndrome |= 1u << i;
      }
      single[b] = static_cast<std::uint8_t>(syndrome | overall_parity_flag);
    }
    syndrome_lut_[s][0] = 0;
    for (unsigned v = 1; v < 256; ++v) {
      const unsigned rest = v & (v - 1);
      syndrome_lut_[s][v] = static_cast<std::uint8_t>(
          syndrome_lut_[s][rest] ^ single[log2_exact(v ^ rest)]);
    }
  }

  // Correction masks: a nonzero syndrome s names codeword position s;
  // syndromes past the codeword (only reachable through multi-bit
  // errors) get mask 0, which decode() reports as uncorrectable.
  correction_mask_.fill(0);
  for (unsigned s = 1; s <= syndrome_mask_; ++s) {
    if (s < codeword_bits_) correction_mask_[s] = word_t{1} << s;
  }

  // Extraction runs: maximal spans of consecutive data columns holding
  // consecutive data bits. The power-of-two parity columns cut the
  // 64-bit codeword into at most five such spans.
  extract_run_count_ = 0;
  unsigned column = 0;
  while (column < codeword_bits_) {
    if (column_to_data_bit_[column] < 0) {
      ++column;
      continue;
    }
    const unsigned start = column;
    const int dst = column_to_data_bit_[column];
    while (column < codeword_bits_ &&
           column_to_data_bit_[column] ==
               dst + static_cast<int>(column - start)) {
      ++column;
    }
    ensures(extract_run_count_ < extract_runs_.size(),
            "more compaction runs than the codeword layout permits");
    extract_runs_[extract_run_count_++] = {
        static_cast<std::uint8_t>(start), static_cast<std::uint8_t>(dst),
        word_mask(column - start)};
  }
}

word_t hamming_secded::encode_reference(word_t data) const {
  data &= word_mask(data_bits_);
  word_t cw = 0;
  for (unsigned bit = 0; bit < data_bits_; ++bit) {
    if (get_bit(data, bit)) cw |= word_t{1} << data_columns_[bit];
  }
  // Each Hamming parity bit makes the XOR over its cover mask zero. The
  // parity column itself is in the mask but currently holds 0, so the
  // computed parity equals the XOR of the covered data bits.
  for (unsigned i = 0; i < parity_bits_; ++i) {
    if (parity(cw & cover_masks_[i])) cw |= word_t{1} << (1u << i);
  }
  // Overall parity (column 0) makes the whole codeword even-weight.
  if (parity(cw)) cw |= word_t{1};
  return cw;
}

word_t hamming_secded::extract_data_reference(word_t codeword) const {
  word_t data = 0;
  for (unsigned bit = 0; bit < data_bits_; ++bit) {
    if (get_bit(codeword, data_columns_[bit])) data |= word_t{1} << bit;
  }
  return data;
}

unsigned hamming_secded::data_column(unsigned bit) const {
  expects(bit < data_bits_, "data bit out of range");
  return data_columns_[bit];
}

int hamming_secded::data_bit_at_column(unsigned column) const {
  expects(column < codeword_bits_, "codeword column out of range");
  return column_to_data_bit_[column];
}

ecc_decode_result hamming_secded::decode_reference(word_t stored) const {
  stored &= word_mask(codeword_bits_);
  unsigned syndrome = 0;
  for (unsigned i = 0; i < parity_bits_; ++i) {
    if (parity(stored & cover_masks_[i])) syndrome |= 1u << i;
  }
  const bool overall_odd = parity(stored);

  if (syndrome == 0) {
    // Either clean, or the overall parity bit itself flipped — the data
    // bits are intact in both cases.
    return {extract_data_reference(stored),
            overall_odd ? ecc_status::corrected : ecc_status::clean};
  }
  if (overall_odd) {
    // Odd-weight error with nonzero syndrome: a single-bit error at
    // codeword position `syndrome` — unless the syndrome points past the
    // codeword, which only a multi-bit error can produce.
    if (syndrome < codeword_bits_) {
      return {extract_data_reference(flip_bit(stored, syndrome)),
              ecc_status::corrected};
    }
    return {extract_data_reference(stored), ecc_status::detected_uncorrectable};
  }
  // Even-weight error (two bit flips): detected, not correctable.
  return {extract_data_reference(stored), ecc_status::detected_uncorrectable};
}

}  // namespace urmem
