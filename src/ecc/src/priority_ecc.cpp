#include "urmem/ecc/priority_ecc.hpp"

#include "urmem/common/contracts.hpp"

namespace urmem {

priority_ecc::priority_ecc(unsigned word_bits, unsigned protected_bits)
    : word_bits_(word_bits),
      protected_bits_(protected_bits),
      code_(protected_bits) {
  expects(is_valid_width(word_bits), "word width must be 1..64");
  expects(protected_bits >= 1 && protected_bits < word_bits,
          "protected_bits must be in [1, word_bits)");
  expects(storage_bits() <= max_word_width,
          "P-ECC storage row must fit in 64 columns");
}

word_t priority_ecc::encode_reference(word_t data) const {
  data &= word_mask(word_bits_);
  const unsigned u = unprotected_bits();
  const word_t low = data & word_mask(u);
  const word_t high = data >> u;
  return low | (code_.encode_reference(high) << u);
}

ecc_decode_result priority_ecc::decode_reference(word_t stored) const {
  const unsigned u = unprotected_bits();
  const word_t low = stored & word_mask(u);
  const ecc_decode_result inner = code_.decode_reference(stored >> u);
  return {low | (inner.data << u), inner.status};
}

int priority_ecc::data_bit_at_column(unsigned column) const {
  expects(column < storage_bits(), "storage column out of range");
  const unsigned u = unprotected_bits();
  if (column < u) return static_cast<int>(column);
  const int inner_bit = code_.data_bit_at_column(column - u);
  return inner_bit < 0 ? -1 : inner_bit + static_cast<int>(u);
}

}  // namespace urmem
