#include "urmem/ecc/bch.hpp"

#include <algorithm>
#include <bit>

#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

/// Primitive polynomials of GF(2^m) for m = 2..8 (bit i = coeff x^i).
constexpr std::uint32_t primitive_poly[] = {
    0, 0, 0b111, 0b1011, 0b10011, 0b100101, 0b1000011, 0b10001001,
    0b100011101};
constexpr unsigned max_field_bits = 8;

/// GF(2^m) arithmetic via log/antilog tables over a primitive element.
struct gf_field {
  unsigned m;
  unsigned n;  // multiplicative order 2^m - 1
  std::vector<unsigned> exp;
  std::vector<unsigned> log;

  explicit gf_field(unsigned m_) : m(m_), n((1u << m_) - 1) {
    exp.assign(2 * n, 0);
    log.assign(n + 1, 0);
    unsigned x = 1;
    for (unsigned i = 0; i < n; ++i) {
      ensures(i == 0 || x != 1, "primitive polynomial has short period");
      exp[i] = x;
      exp[i + n] = x;
      log[x] = i;
      x <<= 1;
      if (x > n) x ^= primitive_poly[m];
    }
    ensures(x == 1, "primitive polynomial does not generate the field");
  }

  [[nodiscard]] unsigned mul(unsigned a, unsigned b) const {
    if (a == 0 || b == 0) return 0;
    return exp[log[a] + log[b]];
  }

  [[nodiscard]] unsigned alpha_pow(unsigned e) const { return exp[e % n]; }
};

/// Conjugacy class of exponent i under squaring: {i*2^j mod n}.
std::vector<unsigned> conjugacy_class(unsigned i, unsigned n) {
  std::vector<unsigned> cls;
  unsigned c = i % n;
  do {
    cls.push_back(c);
    c = (2 * c) % n;
  } while (c != i % n);
  return cls;
}

/// The distinct conjugacy-class representatives (smallest member) of
/// the 2t consecutive root exponents 1..2t, mod n.
std::vector<std::vector<unsigned>> root_classes(unsigned t, unsigned n) {
  std::vector<std::vector<unsigned>> classes;
  std::vector<unsigned> seen;
  for (unsigned i = 1; i <= 2 * t; ++i) {
    std::vector<unsigned> cls = conjugacy_class(i, n);
    unsigned rep = cls[0];
    for (const unsigned c : cls) rep = std::min(rep, c);
    bool duplicate = false;
    for (const unsigned s : seen) duplicate |= (s == rep);
    if (duplicate) continue;
    seen.push_back(rep);
    classes.push_back(std::move(cls));
  }
  return classes;
}

/// Minimal polynomial of {alpha^c : c in cls} as a GF(2) bitmask: the
/// product of (x + alpha^c) over the class, whose coefficients provably
/// collapse into the prime field.
std::uint64_t minimal_poly(const gf_field& field,
                           const std::vector<unsigned>& cls) {
  std::vector<unsigned> coeffs{1};  // the constant polynomial 1
  for (const unsigned c : cls) {
    const unsigned root = field.alpha_pow(c);
    std::vector<unsigned> next(coeffs.size() + 1, 0);
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      next[i + 1] ^= coeffs[i];                  // * x
      next[i] ^= field.mul(root, coeffs[i]);     // * alpha^c
    }
    coeffs = std::move(next);
  }
  std::uint64_t poly = 0;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    ensures(coeffs[i] <= 1, "minimal polynomial left GF(2)");
    if (coeffs[i]) poly |= std::uint64_t{1} << i;
  }
  return poly;
}

/// GF(2) polynomial product (bitmask representation).
std::uint64_t poly_mul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  for (unsigned i = 0; b >> i; ++i) {
    if ((b >> i) & 1) out ^= a << i;
  }
  return out;
}

/// GF(2) polynomial remainder of `value` modulo `divisor`.
std::uint64_t poly_mod(std::uint64_t value, std::uint64_t divisor) {
  const int divisor_degree = 63 - std::countl_zero(divisor);
  while (value != 0) {
    const int degree = 63 - std::countl_zero(value);
    if (degree < divisor_degree) break;
    value ^= divisor << (degree - divisor_degree);
  }
  return value;
}

unsigned poly_degree(std::uint64_t poly) {
  return static_cast<unsigned>(63 - std::countl_zero(poly));
}

}  // namespace

std::optional<bch_design> bch_design_for(unsigned data_bits, unsigned t) {
  if (data_bits < 1 || t < 1 || t > bch_code::max_t) return std::nullopt;
  for (unsigned m = 2; m <= max_field_bits; ++m) {
    const unsigned n = (1u << m) - 1;
    unsigned parity = 0;
    for (const auto& cls : root_classes(t, n)) {
      parity += static_cast<unsigned>(cls.size());
    }
    // The shortened code must fit the unshortened length n, and the
    // extended codeword the 64-bit carrier.
    if (data_bits + parity > n) continue;
    if (data_bits + parity + 1 > max_word_width) continue;
    return bch_design{data_bits, t, m, parity, data_bits + parity + 1};
  }
  return std::nullopt;
}

bch_code::bch_code(unsigned data_bits, unsigned t) {
  const std::optional<bch_design> design = bch_design_for(data_bits, t);
  expects(design.has_value(),
          "no BCH code for this data width and t fits the 64-bit carrier "
          "(t=2 supports up to 51 data bits, t=3 up to 45)");
  design_ = *design;

  const gf_field field(design_.field_bits);
  generator_ = 1;
  for (const auto& cls : root_classes(design_.t, field.n)) {
    generator_ = poly_mul(generator_, minimal_poly(field, cls));
  }
  ensures(poly_degree(generator_) == design_.parity_bits,
          "generator degree disagrees with the sizing pass");

  // Column syndromes: every stored column contributes its polynomial
  // remainder (data column j carries exponent p+j, check column d+i
  // exponent i) and flips the overall parity at bit p; the parity
  // column contributes parity only.
  const unsigned p = design_.parity_bits;
  const std::uint32_t parity_flag = std::uint32_t{1} << p;
  column_syndromes_.reserve(design_.codeword_bits);
  for (unsigned bit = 0; bit < design_.data_bits; ++bit) {
    const std::uint64_t rem =
        poly_mod(std::uint64_t{1} << (p + bit), generator_);
    column_syndromes_.push_back(static_cast<std::uint32_t>(rem) | parity_flag);
  }
  for (unsigned i = 0; i < p; ++i) {
    column_syndromes_.push_back((std::uint32_t{1} << i) | parity_flag);
  }
  column_syndromes_.push_back(parity_flag);

  compile_tables();
}

void bch_code::compile_tables() {
  // Encode tables: GF(2)-linear, so each byte slice needs only its 8
  // single-bit codewords; the 256 entries XOR-combine down the chain.
  encode_slices_ = (design_.data_bits + 7) / 8;
  for (unsigned s = 0; s < encode_slices_; ++s) {
    std::array<word_t, 8> single{};
    for (unsigned b = 0; b < 8; ++b) {
      const unsigned bit = 8 * s + b;
      single[b] =
          bit < design_.data_bits ? encode_reference(word_t{1} << bit) : 0;
    }
    encode_lut_[s][0] = 0;
    for (unsigned v = 1; v < 256; ++v) {
      const unsigned rest = v & (v - 1);
      encode_lut_[s][v] = encode_lut_[s][rest] ^ single[log2_exact(v ^ rest)];
    }
  }

  // Syndrome tables from the per-column contributions.
  syndrome_slices_ = (design_.codeword_bits + 7) / 8;
  for (unsigned s = 0; s < syndrome_slices_; ++s) {
    std::array<std::uint32_t, 8> single{};
    for (unsigned b = 0; b < 8; ++b) {
      const unsigned column = 8 * s + b;
      if (column >= design_.codeword_bits) continue;
      single[b] = column_syndromes_[column];
    }
    syndrome_lut_[s][0] = 0;
    for (unsigned v = 1; v < 256; ++v) {
      const unsigned rest = v & (v - 1);
      syndrome_lut_[s][v] = syndrome_lut_[s][rest] ^ single[log2_exact(v ^ rest)];
    }
  }

  // Correction masks: enumerate every error pattern of weight 1..t and
  // record its flip mask under its syndrome. The extended minimum
  // distance >= 2t+2 makes these syndromes provably distinct (checked
  // by the ensures) and keeps every (t+1)-bit syndrome at mask 0, so
  // decode() reports those detected_uncorrectable instead of
  // miscorrecting — the property the analytic residual model relies on.
  correction_mask_.assign(std::size_t{1} << (design_.parity_bits + 1), 0);
  const unsigned n = design_.codeword_bits;
  const auto place = [&](std::uint32_t syndrome, word_t mask) {
    ensures(syndrome != 0, "a nonzero error pattern cannot alias clean");
    ensures(correction_mask_[syndrome] == 0,
            "distinct <= t-bit error patterns must have distinct syndromes");
    correction_mask_[syndrome] = mask;
  };
  const auto enumerate = [&](auto&& self, unsigned first, unsigned left,
                             std::uint32_t syndrome, word_t mask) -> void {
    if (left == 0) {
      place(syndrome, mask);
      return;
    }
    for (unsigned c = first; c + left <= n; ++c) {
      self(self, c + 1, left - 1, syndrome ^ column_syndromes_[c],
           mask | (word_t{1} << c));
    }
  };
  for (unsigned weight = 1; weight <= design_.t; ++weight) {
    enumerate(enumerate, 0, weight, 0, 0);
  }
}

word_t bch_code::encode_reference(word_t data) const {
  data &= word_mask(design_.data_bits);
  // Systematic encoding: check(x) = data(x) * x^p mod g(x); the
  // codeword polynomial data*x^p + check is then divisible by g.
  const std::uint64_t rem =
      poly_mod(data << design_.parity_bits, generator_);
  word_t cw = data | (rem << design_.data_bits);
  if (parity(cw)) {
    cw |= word_t{1} << (design_.data_bits + design_.parity_bits);
  }
  return cw;
}

ecc_decode_result bch_code::decode_reference(word_t stored) const {
  stored &= word_mask(design_.codeword_bits);
  std::uint32_t syndrome = 0;
  for (unsigned column = 0; column < design_.codeword_bits; ++column) {
    if (get_bit(stored, column)) syndrome ^= column_syndromes_[column];
  }
  if (syndrome == 0) return {extract_data(stored), ecc_status::clean};
  // Brute-force search for a <= t-bit pattern explaining the syndrome,
  // lightest first; syndromes of such patterns are unique, so whatever
  // the search finds is what the dense table holds.
  const unsigned n = design_.codeword_bits;
  word_t found = 0;
  const auto search = [&](auto&& self, unsigned first, unsigned left,
                          std::uint32_t acc, word_t mask) -> bool {
    if (left == 0) {
      if (acc != syndrome) return false;
      found = mask;
      return true;
    }
    for (unsigned c = first; c + left <= n; ++c) {
      if (self(self, c + 1, left - 1, acc ^ column_syndromes_[c],
               mask | (word_t{1} << c))) {
        return true;
      }
    }
    return false;
  };
  for (unsigned weight = 1; weight <= design_.t; ++weight) {
    if (search(search, 0, weight, 0, 0)) {
      return {extract_data(stored ^ found), ecc_status::corrected};
    }
  }
  return {extract_data(stored), ecc_status::detected_uncorrectable};
}

unsigned bch_code::data_column(unsigned bit) const {
  expects(bit < design_.data_bits, "data bit out of range");
  return bit;
}

int bch_code::data_bit_at_column(unsigned column) const {
  expects(column < design_.codeword_bits, "codeword column out of range");
  return column < design_.data_bits ? static_cast<int>(column) : -1;
}

}  // namespace urmem
