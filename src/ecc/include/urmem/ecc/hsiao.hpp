// Hsiao SEC-DED codes — the odd-weight-column variant of the extended
// Hamming construction (Hsiao, IBM JRD 1970) that real SRAM macros use.
//
// Every column of the parity-check matrix H has odd weight: check
// columns are the k unit vectors, data columns are distinct odd-weight
// (>= 3) k-bit vectors picked weight-3-first and balanced across the
// check rows, which minimizes and equalizes the XOR-tree depth per
// check bit. Odd columns make every single-bit error produce an
// odd-weight syndrome and every double-bit error an even-weight (and
// provably nonzero) one, so SEC-DED needs no separate overall-parity
// rail — the whole-word parity of the classical extended Hamming code
// is folded into the columns.
//
// The check-bit count auto-sizes to the smallest k whose odd-weight
// column pool 2^(k-1) - k covers the data width (k = 7 for d = 32:
// the Hsiao (39,32) code, same storage as H(39,32)); a wider k can be
// requested explicitly to study the area/strength trade.
//
// Layout: data bits occupy codeword columns [0, d) in order, check
// bits columns [d, d+k) — extraction is a single mask, no compaction
// runs needed.
//
// Encode and decode are LUT-compiled exactly like hamming_secded:
// byte-sliced encode tables, byte-sliced syndrome tables, and a
// 2^k syndrome -> correction-mask LUT. The per-bit walks survive as
// encode_reference / decode_reference, the oracle the compiled path is
// proven bit-identical against (tests, micro_codec, urmem-verify).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "urmem/common/bitops.hpp"
#include "urmem/ecc/hamming_secded.hpp"  // ecc_status / ecc_decode_result

namespace urmem {

/// Hsiao SEC-DED codec for a configurable data width.
class hsiao_code {
 public:
  /// Largest supported check-bit count (the correction LUT is 2^k).
  static constexpr unsigned max_check_bits = 12;

  /// Smallest k whose odd-weight(>=3) column pool covers `data_bits`.
  [[nodiscard]] static unsigned min_check_bits(unsigned data_bits);

  /// Builds the code for `data_bits` >= 1 (codeword must fit 64 bits)
  /// and compiles its LUTs. `check_bits` = 0 auto-sizes; an explicit
  /// value must lie in [min_check_bits(d), max_check_bits].
  explicit hsiao_code(unsigned data_bits, unsigned check_bits = 0);

  /// Number of data bits d.
  [[nodiscard]] unsigned data_bits() const { return data_bits_; }

  /// Number of check bits k (all of them H-matrix rows; no overall
  /// parity rail — the odd-weight columns subsume it).
  [[nodiscard]] unsigned check_bits() const { return check_bits_; }

  /// Codeword length n = d + k, e.g. 39 for d=32.
  [[nodiscard]] unsigned codeword_bits() const { return codeword_bits_; }

  /// Encodes the low `data_bits` of `data` into a codeword: one XOR per
  /// data byte through the compiled encode tables.
  [[nodiscard]] word_t encode(word_t data) const {
    data &= word_mask(data_bits_);
    word_t cw = encode_lut_[0][data & 0xffu];
    for (unsigned s = 1; s < encode_slices_; ++s) {
      cw ^= encode_lut_[s][(data >> (8 * s)) & 0xffu];
    }
    return cw;
  }

  /// Decodes a (possibly corrupted) codeword; corrects any single-bit
  /// error, flags any double-bit error as detected_uncorrectable and
  /// returns the raw data bits unmodified in that case. Byte-sliced
  /// syndrome tables + the 2^k correction-mask LUT — no per-bit loop.
  [[nodiscard]] ecc_decode_result decode(word_t stored) const {
    stored &= word_mask(codeword_bits_);
    unsigned acc = syndrome_lut_[0][stored & 0xffu];
    for (unsigned s = 1; s < syndrome_slices_; ++s) {
      acc ^= syndrome_lut_[s][(stored >> (8 * s)) & 0xffu];
    }
    if (acc == 0) return {extract_data(stored), ecc_status::clean};
    // A single-bit error reproduces its (odd-weight) column; any other
    // syndrome — even-weight doubles, or odd-weight patterns matching
    // no column — only a multi-bit error can produce (mask 0).
    const word_t correction = correction_mask_[acc];
    if (correction != 0) {
      return {extract_data(stored ^ correction), ecc_status::corrected};
    }
    return {extract_data(stored), ecc_status::detected_uncorrectable};
  }

  /// Extracts the data bits of a codeword without any checking: the
  /// data columns are the contiguous low span, so one mask suffices.
  [[nodiscard]] word_t extract_data(word_t codeword) const {
    return codeword & word_mask(data_bits_);
  }

  /// Reference encode: the per-check cover-mask parity walk the
  /// compiled tables were derived from. Bit-identical to encode().
  [[nodiscard]] word_t encode_reference(word_t data) const;

  /// Reference decode: per-bit syndrome walk + linear column search,
  /// bit-identical to decode() (data and status).
  [[nodiscard]] ecc_decode_result decode_reference(word_t stored) const;

  /// Codeword column holding logical data bit `bit` (identity layout).
  [[nodiscard]] unsigned data_column(unsigned bit) const;

  /// Logical data bit stored at codeword column `column`, or -1 when
  /// the column holds a check bit.
  [[nodiscard]] int data_bit_at_column(unsigned column) const;

  /// H-matrix column (k-bit syndrome) of each codeword column; data
  /// columns first, then the unit-vector check columns. Exposed for the
  /// hardware model and the verification harness.
  [[nodiscard]] const std::vector<unsigned>& column_syndromes() const {
    return column_syndromes_;
  }

  /// Cover mask of each check bit over the *data* word (the XOR-tree
  /// inputs); balanced across check bits by construction.
  [[nodiscard]] const std::vector<word_t>& check_cover_masks() const {
    return cover_masks_;
  }

 private:
  void compile_tables();

  unsigned data_bits_;
  unsigned check_bits_;
  unsigned codeword_bits_;
  std::vector<unsigned> column_syndromes_;  // H column per codeword column
  std::vector<word_t> cover_masks_;         // per check bit, over data bits

  // Compiled form, fixed-capacity for the 64-bit carrier; the
  // correction LUT is 2^k and thus heap-allocated.
  unsigned encode_slices_ = 0;    // ceil(data_bits / 8)
  unsigned syndrome_slices_ = 0;  // ceil(codeword_bits / 8)
  std::array<std::array<word_t, 256>, 8> encode_lut_{};
  std::array<std::array<std::uint16_t, 256>, 8> syndrome_lut_{};
  std::vector<word_t> correction_mask_;  // indexed by syndrome
};

/// The classic Hsiao (39,32) code for 32-bit words.
[[nodiscard]] inline hsiao_code make_hsiao39_32() { return hsiao_code(32); }

}  // namespace urmem
