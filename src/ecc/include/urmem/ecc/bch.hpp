// Binary BCH codes with configurable correction strength t (paper
// Sec. 2's "stronger ECC" axis; Luo et al.'s HRM assumes DEC/TEC-class
// codes for the most-reliable tiers).
//
// Construction: over GF(2^m), the generator polynomial g(x) is the LCM
// of the minimal polynomials of alpha^1 .. alpha^{2t}, giving designed
// distance 2t+1; the code is shortened to d data bits and *extended*
// with one overall parity bit, raising the minimum distance to >= 2t+2.
// The extension is what makes the analytic residual model exact at
// k = t+1 faults: a (t+1)-bit error has the wrong overall parity for
// every <= t-bit correction candidate, so it is always flagged
// detected_uncorrectable and the decoder hands the raw data bits
// through — never a miscorrection. urmem-verify proves this by
// enumerating all nCr patterns up to t+1 bits.
//
// m auto-sizes to the smallest field with 2^m - 1 >= d + deg g; the
// whole codeword (d data + p = deg g parity + 1 overall parity) must
// fit the 64-bit carrier, which bounds t = 2 at d <= 51 and t = 3 at
// d <= 45 (t = 1 reproduces Hamming-class storage: BCH(39,32,t=1)).
//
// Layout: data bits occupy codeword columns [0, d), the p polynomial
// check bits columns [d, d+p) (column d+i holds the x^i remainder
// coefficient), the overall parity bit column d+p. Extraction is a
// single mask.
//
// Encode and decode are LUT-compiled like hamming_secded: byte-sliced
// encode tables, byte-sliced syndrome tables (p-bit polynomial
// remainder plus the overall parity packed at bit p), and a dense
// 2^(p+1) syndrome -> correction-mask LUT filled by enumerating every
// <= t-bit error pattern (unique syndromes, guaranteed by the extended
// distance). The per-bit walks survive as encode_reference /
// decode_reference, where the reference decoder searches error
// patterns by brute force instead of consulting the dense table.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "urmem/common/bitops.hpp"
#include "urmem/ecc/hamming_secded.hpp"  // ecc_status / ecc_decode_result

namespace urmem {

/// Resolved geometry of a bch_code before paying for its tables.
struct bch_design {
  unsigned data_bits = 0;
  unsigned t = 0;              ///< guaranteed correctable bits
  unsigned field_bits = 0;     ///< m of GF(2^m)
  unsigned parity_bits = 0;    ///< p = deg g(x)
  unsigned codeword_bits = 0;  ///< d + p + 1 (overall parity included)
};

/// Sizes the code for `data_bits` and strength `t`, or nullopt when no
/// field up to GF(2^8) yields a codeword fitting the 64-bit carrier.
[[nodiscard]] std::optional<bch_design> bch_design_for(unsigned data_bits,
                                                       unsigned t);

/// Parity-extended t-error-correcting BCH codec for a configurable
/// data width.
class bch_code {
 public:
  /// Largest supported correction strength.
  static constexpr unsigned max_t = 3;

  /// Builds the code for `data_bits` >= 1 and t in [1, max_t]
  /// (bch_design_for must succeed) and compiles its LUTs.
  bch_code(unsigned data_bits, unsigned t);

  /// Number of data bits d.
  [[nodiscard]] unsigned data_bits() const { return design_.data_bits; }

  /// Guaranteed correctable bits per word.
  [[nodiscard]] unsigned t() const { return design_.t; }

  /// GF(2^m) field degree.
  [[nodiscard]] unsigned field_bits() const { return design_.field_bits; }

  /// Polynomial check bits p = deg g(x) (overall parity not included).
  [[nodiscard]] unsigned parity_bits() const { return design_.parity_bits; }

  /// Number of check bits including the overall parity bit (p + 1).
  [[nodiscard]] unsigned check_bits() const { return design_.parity_bits + 1; }

  /// Codeword length n = d + p + 1, e.g. 45 for d=32, t=2.
  [[nodiscard]] unsigned codeword_bits() const {
    return design_.codeword_bits;
  }

  /// Generator polynomial g(x) as a bitmask (bit i = coefficient x^i).
  [[nodiscard]] std::uint64_t generator_poly() const { return generator_; }

  /// Encodes the low `data_bits` of `data` into a codeword: one XOR per
  /// data byte through the compiled encode tables.
  [[nodiscard]] word_t encode(word_t data) const {
    data &= word_mask(design_.data_bits);
    word_t cw = encode_lut_[0][data & 0xffu];
    for (unsigned s = 1; s < encode_slices_; ++s) {
      cw ^= encode_lut_[s][(data >> (8 * s)) & 0xffu];
    }
    return cw;
  }

  /// Decodes a (possibly corrupted) codeword; corrects any <= t-bit
  /// error, flags every (t+1)-bit error as detected_uncorrectable and
  /// returns the raw data bits unmodified in that case. Byte-sliced
  /// syndrome tables + the dense 2^(p+1) correction-mask LUT.
  [[nodiscard]] ecc_decode_result decode(word_t stored) const {
    stored &= word_mask(design_.codeword_bits);
    std::uint32_t acc = syndrome_lut_[0][stored & 0xffu];
    for (unsigned s = 1; s < syndrome_slices_; ++s) {
      acc ^= syndrome_lut_[s][(stored >> (8 * s)) & 0xffu];
    }
    if (acc == 0) return {extract_data(stored), ecc_status::clean};
    const word_t correction = correction_mask_[acc];
    if (correction != 0) {
      return {extract_data(stored ^ correction), ecc_status::corrected};
    }
    return {extract_data(stored), ecc_status::detected_uncorrectable};
  }

  /// Extracts the data bits of a codeword without any checking: the
  /// data columns are the contiguous low span, so one mask suffices.
  [[nodiscard]] word_t extract_data(word_t codeword) const {
    return codeword & word_mask(design_.data_bits);
  }

  /// Reference encode: bit-serial polynomial division by g(x) plus the
  /// parity rail. Bit-identical to encode().
  [[nodiscard]] word_t encode_reference(word_t data) const;

  /// Reference decode: per-bit syndrome walk + brute-force search over
  /// <= t-bit error patterns, bit-identical to decode() (data and
  /// status) — the oracle for the dense correction table.
  [[nodiscard]] ecc_decode_result decode_reference(word_t stored) const;

  /// Codeword column holding logical data bit `bit` (identity layout).
  [[nodiscard]] unsigned data_column(unsigned bit) const;

  /// Logical data bit stored at codeword column `column`, or -1 when
  /// the column holds a check bit.
  [[nodiscard]] int data_bit_at_column(unsigned column) const;

  /// Per-column syndrome contribution: polynomial remainder in bits
  /// [0, p), overall parity at bit p. Exposed for the verification
  /// harness.
  [[nodiscard]] const std::vector<std::uint32_t>& column_syndromes() const {
    return column_syndromes_;
  }

 private:
  void compile_tables();

  bch_design design_;
  std::uint64_t generator_ = 0;
  std::vector<std::uint32_t> column_syndromes_;  // per codeword column

  unsigned encode_slices_ = 0;    // ceil(data_bits / 8)
  unsigned syndrome_slices_ = 0;  // ceil(codeword_bits / 8)
  std::array<std::array<word_t, 256>, 8> encode_lut_{};
  std::array<std::array<std::uint32_t, 256>, 8> syndrome_lut_{};
  std::vector<word_t> correction_mask_;  // indexed by (parity<<p)|syndrome
};

/// The double-error-correcting code for 32-bit words: BCH(45,32,t=2).
[[nodiscard]] inline bch_code make_bch45_32() { return bch_code(32, 2); }

}  // namespace urmem
