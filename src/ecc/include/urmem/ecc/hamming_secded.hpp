// Single-error-correcting, double-error-detecting Hamming codes
// (paper Sec. 2 — the classical ECC baseline).
//
// The extended Hamming construction: for d data bits, p Hamming parity
// bits (smallest p with 2^p >= d + p + 1) sit at the power-of-two
// positions of the codeword, and one overall parity bit extends the
// minimum distance to 4. Instantiations used by the paper:
//
//   H(39,32) — d=32, p=6 (+1 overall)  : the SECDED baseline
//   H(22,16) — d=16, p=5 (+1 overall)  : the P-ECC inner code [4, 12]
//
// Codewords are carried in a 64-bit word, so data widths up to 57 bits
// are supported — enough for any row that fits the sram_array model.
//
// Encode and decode are LUT-compiled (see "Compiled codec layer" in the
// README): the code is linear over GF(2), so the constructor lowers the
// H-matrix into
//   * byte-sliced encode tables      — encode(data) is the XOR of one
//     table entry per data byte, no per-bit scatter;
//   * byte-sliced syndrome tables    — syndrome + overall parity of a
//     stored word is the XOR of one entry per codeword byte;
//   * a syndrome -> correction-mask LUT of size 2^p;
//   * compaction runs for extract_data — the data columns form at most
//     five contiguous runs between parity columns, so extraction is a
//     handful of shift/mask/or ops instead of a per-bit gather.
// The original per-bit walks survive as encode_reference /
// decode_reference: the oracle the tests and the micro_codec bench
// prove the compiled path bit-identical against (and the scalar
// baseline its speedup is measured over).
//
// The H-matrix structure (cover masks, data-bit columns) is exposed for
// the hardware cost model, which derives exact XOR-tree sizes from it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "urmem/common/bitops.hpp"

namespace urmem {

/// Outcome of a SECDED decode.
enum class ecc_status : std::uint8_t {
  clean,                   ///< no error observed
  corrected,               ///< single error corrected
  detected_uncorrectable,  ///< double (or wider even-weight) error detected
};

/// Decoded word plus the decoder's verdict.
struct ecc_decode_result {
  word_t data = 0;
  ecc_status status = ecc_status::clean;
};

/// Extended Hamming SECDED codec for a configurable data width.
class hamming_secded {
 public:
  /// Builds the code for `data_bits` in [1, 57] and compiles its LUTs.
  explicit hamming_secded(unsigned data_bits);

  /// Number of data bits d.
  [[nodiscard]] unsigned data_bits() const { return data_bits_; }

  /// Number of check bits including the overall parity bit (c = p + 1).
  [[nodiscard]] unsigned check_bits() const { return parity_bits_ + 1; }

  /// Codeword length n = d + p + 1, e.g. 39 for d=32, 22 for d=16.
  [[nodiscard]] unsigned codeword_bits() const { return codeword_bits_; }

  /// Encodes the low `data_bits` of `data` into a codeword: one XOR per
  /// data byte through the compiled encode tables.
  [[nodiscard]] word_t encode(word_t data) const {
    data &= word_mask(data_bits_);
    word_t cw = encode_lut_[0][data & 0xffu];
    for (unsigned s = 1; s < encode_slices_; ++s) {
      cw ^= encode_lut_[s][(data >> (8 * s)) & 0xffu];
    }
    return cw;
  }

  /// Decodes a (possibly corrupted) codeword; corrects any single-bit
  /// error, flags any double-bit error as detected_uncorrectable and
  /// returns the raw data bits unmodified in that case. Byte-sliced
  /// syndrome tables + the 2^p correction-mask LUT — no per-bit loop.
  [[nodiscard]] ecc_decode_result decode(word_t stored) const {
    stored &= word_mask(codeword_bits_);
    unsigned acc = syndrome_lut_[0][stored & 0xffu];
    for (unsigned s = 1; s < syndrome_slices_; ++s) {
      acc ^= syndrome_lut_[s][(stored >> (8 * s)) & 0xffu];
    }
    const unsigned syndrome = acc & syndrome_mask_;
    const bool overall_odd = (acc & overall_parity_flag) != 0;
    if (syndrome == 0) {
      // Either clean, or the overall parity bit itself flipped — the
      // data bits are intact in both cases.
      return {extract_data(stored),
              overall_odd ? ecc_status::corrected : ecc_status::clean};
    }
    if (overall_odd) {
      // Odd-weight error with nonzero syndrome: a single-bit error at
      // codeword position `syndrome` — unless the syndrome points past
      // the codeword (correction mask 0), which only a multi-bit error
      // can produce.
      const word_t correction = correction_mask_[syndrome];
      if (correction != 0) {
        return {extract_data(stored ^ correction), ecc_status::corrected};
      }
      return {extract_data(stored), ecc_status::detected_uncorrectable};
    }
    // Even-weight error (two bit flips): detected, not correctable.
    return {extract_data(stored), ecc_status::detected_uncorrectable};
  }

  /// Extracts the data bits of a codeword without any checking, via the
  /// precompiled compaction runs (gather-free).
  [[nodiscard]] word_t extract_data(word_t codeword) const {
    word_t data = 0;
    for (unsigned i = 0; i < extract_run_count_; ++i) {
      const extract_run& run = extract_runs_[i];
      data |= ((codeword >> run.src_shift) & run.mask) << run.dst_shift;
    }
    return data;
  }

  /// Reference encode: the per-bit scatter + cover-mask parity walk the
  /// compiled tables were derived from. Bit-identical to encode().
  [[nodiscard]] word_t encode_reference(word_t data) const;

  /// Reference decode: per-cover-mask syndrome walk, bit-identical to
  /// decode() (data and status).
  [[nodiscard]] ecc_decode_result decode_reference(word_t stored) const;

  /// Reference per-bit extract, bit-identical to extract_data().
  [[nodiscard]] word_t extract_data_reference(word_t codeword) const;

  /// Codeword column holding logical data bit `bit` (0 = LSB).
  [[nodiscard]] unsigned data_column(unsigned bit) const;

  /// Logical data bit stored at codeword column `column`, or -1 when the
  /// column holds a check bit.
  [[nodiscard]] int data_bit_at_column(unsigned column) const;

  /// Cover mask of each Hamming parity bit over codeword columns
  /// (parity position included); drives the hardware model's XOR trees.
  [[nodiscard]] const std::vector<word_t>& parity_cover_masks() const {
    return cover_masks_;
  }

 private:
  /// One contiguous span of data columns: codeword bits
  /// [src_shift, src_shift + popcount(mask)) land at data bits
  /// [dst_shift, ...).
  struct extract_run {
    std::uint8_t src_shift = 0;
    std::uint8_t dst_shift = 0;
    word_t mask = 0;
  };

  /// Overall-parity flag bit inside a syndrome_lut_ entry (syndromes
  /// occupy bits [0, p) with p <= 6).
  static constexpr unsigned overall_parity_flag = 0x80u;

  void compile_tables();

  unsigned data_bits_;
  unsigned parity_bits_;
  unsigned codeword_bits_;
  std::vector<unsigned> data_columns_;   // codeword column of data bit i
  std::vector<int> column_to_data_bit_;  // inverse map, -1 for check columns
  std::vector<word_t> cover_masks_;      // per Hamming parity bit

  // Compiled form (see compile_tables): fixed-capacity tables sized for
  // the 64-bit carrier so construction never allocates for them.
  unsigned encode_slices_ = 0;    // ceil(data_bits / 8)
  unsigned syndrome_slices_ = 0;  // ceil(codeword_bits / 8)
  unsigned extract_run_count_ = 0;
  unsigned syndrome_mask_ = 0;  // (1 << parity_bits) - 1
  std::array<std::array<word_t, 256>, 8> encode_lut_{};
  std::array<std::array<std::uint8_t, 256>, 8> syndrome_lut_{};
  std::array<word_t, 64> correction_mask_{};  // indexed by syndrome
  std::array<extract_run, 6> extract_runs_{};
};

/// The paper's SECDED baseline for 32-bit words.
[[nodiscard]] inline hamming_secded make_h39_32() { return hamming_secded(32); }

/// The paper's P-ECC inner code for 16-bit half-words.
[[nodiscard]] inline hamming_secded make_h22_16() { return hamming_secded(16); }

/// A compact code for byte-granular experiments.
[[nodiscard]] inline hamming_secded make_h13_8() { return hamming_secded(8); }

}  // namespace urmem
