// Single-error-correcting, double-error-detecting Hamming codes
// (paper Sec. 2 — the classical ECC baseline).
//
// The extended Hamming construction: for d data bits, p Hamming parity
// bits (smallest p with 2^p >= d + p + 1) sit at the power-of-two
// positions of the codeword, and one overall parity bit extends the
// minimum distance to 4. Instantiations used by the paper:
//
//   H(39,32) — d=32, p=6 (+1 overall)  : the SECDED baseline
//   H(22,16) — d=16, p=5 (+1 overall)  : the P-ECC inner code [4, 12]
//
// Codewords are carried in a 64-bit word, so data widths up to 57 bits
// are supported — enough for any row that fits the sram_array model.
//
// The H-matrix structure (cover masks, data-bit columns) is exposed for
// the hardware cost model, which derives exact XOR-tree sizes from it.
#pragma once

#include <cstdint>
#include <vector>

#include "urmem/common/bitops.hpp"

namespace urmem {

/// Outcome of a SECDED decode.
enum class ecc_status : std::uint8_t {
  clean,                   ///< no error observed
  corrected,               ///< single error corrected
  detected_uncorrectable,  ///< double (or wider even-weight) error detected
};

/// Decoded word plus the decoder's verdict.
struct ecc_decode_result {
  word_t data = 0;
  ecc_status status = ecc_status::clean;
};

/// Extended Hamming SECDED codec for a configurable data width.
class hamming_secded {
 public:
  /// Builds the code for `data_bits` in [1, 57].
  explicit hamming_secded(unsigned data_bits);

  /// Number of data bits d.
  [[nodiscard]] unsigned data_bits() const { return data_bits_; }

  /// Number of check bits including the overall parity bit (c = p + 1).
  [[nodiscard]] unsigned check_bits() const { return parity_bits_ + 1; }

  /// Codeword length n = d + p + 1, e.g. 39 for d=32, 22 for d=16.
  [[nodiscard]] unsigned codeword_bits() const { return codeword_bits_; }

  /// Encodes the low `data_bits` of `data` into a codeword.
  [[nodiscard]] word_t encode(word_t data) const;

  /// Decodes a (possibly corrupted) codeword; corrects any single-bit
  /// error, flags any double-bit error as detected_uncorrectable and
  /// returns the raw data bits unmodified in that case.
  [[nodiscard]] ecc_decode_result decode(word_t stored) const;

  /// Extracts the data bits of a codeword without any checking.
  [[nodiscard]] word_t extract_data(word_t codeword) const;

  /// Codeword column holding logical data bit `bit` (0 = LSB).
  [[nodiscard]] unsigned data_column(unsigned bit) const;

  /// Logical data bit stored at codeword column `column`, or -1 when the
  /// column holds a check bit.
  [[nodiscard]] int data_bit_at_column(unsigned column) const;

  /// Cover mask of each Hamming parity bit over codeword columns
  /// (parity position included); drives the hardware model's XOR trees.
  [[nodiscard]] const std::vector<word_t>& parity_cover_masks() const {
    return cover_masks_;
  }

 private:
  unsigned data_bits_;
  unsigned parity_bits_;
  unsigned codeword_bits_;
  std::vector<unsigned> data_columns_;   // codeword column of data bit i
  std::vector<int> column_to_data_bit_;  // inverse map, -1 for check columns
  std::vector<word_t> cover_masks_;      // per Hamming parity bit
};

/// The paper's SECDED baseline for 32-bit words.
[[nodiscard]] inline hamming_secded make_h39_32() { return hamming_secded(32); }

/// The paper's P-ECC inner code for 16-bit half-words.
[[nodiscard]] inline hamming_secded make_h22_16() { return hamming_secded(16); }

/// A compact code for byte-granular experiments.
[[nodiscard]] inline hamming_secded make_h13_8() { return hamming_secded(8); }

}  // namespace urmem
