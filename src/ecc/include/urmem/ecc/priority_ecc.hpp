// Priority-based ECC (P-ECC) — the prior-art baseline of the paper
// (Sec. 2, refs [4, 12]).
//
// P-ECC protects only the bits "that play a more significant role in
// shaping the output quality": the upper half of each word is encoded
// with a SECDED code, the lower half is stored raw. For the paper's
// 32-bit words this is an H(22,16) code over the 16 MSBs, giving a
// 38-column storage row:
//
//   column 0 .. u-1        : unprotected low-order data bits (u = 16)
//   column u .. u+n-1      : H(22,16) codeword of the high-order bits
//
// A fault in the unprotected region corrupts a bit of significance
// < 2^u; a single fault in the codeword region is corrected; a double
// fault there is detected but leaves the high-order bits exposed — the
// failure mode the bit-shuffling scheme avoids.
#pragma once

#include <cstdint>

#include "urmem/common/bitops.hpp"
#include "urmem/ecc/hamming_secded.hpp"

namespace urmem {

/// Unequal-error-protection codec: SECDED on the MSB half, raw LSBs.
class priority_ecc {
 public:
  /// Protects the top `protected_bits` of a `word_bits`-wide word.
  /// `0 < protected_bits < word_bits`; the codeword must fit 64 columns.
  explicit priority_ecc(unsigned word_bits = 32, unsigned protected_bits = 16);

  [[nodiscard]] unsigned word_bits() const { return word_bits_; }
  [[nodiscard]] unsigned protected_bits() const { return protected_bits_; }
  [[nodiscard]] unsigned unprotected_bits() const { return word_bits_ - protected_bits_; }

  /// Total storage columns per row, e.g. 38 for the H(22,16) default.
  [[nodiscard]] unsigned storage_bits() const {
    return unprotected_bits() + code_.codeword_bits();
  }

  /// The inner SECDED code (H(22,16) by default).
  [[nodiscard]] const hamming_secded& inner_code() const { return code_; }

  /// Encodes a data word into its 38-column stored form. Inline so the
  /// block codec path composes on the inner code's compiled tables
  /// without a call per word.
  [[nodiscard]] word_t encode(word_t data) const {
    data &= word_mask(word_bits_);
    const unsigned u = unprotected_bits();
    return (data & word_mask(u)) | (code_.encode(data >> u) << u);
  }

  /// Decodes a stored row; status reflects the inner SECDED verdict
  /// (faults in the unprotected region are invisible to it).
  [[nodiscard]] ecc_decode_result decode(word_t stored) const {
    const unsigned u = unprotected_bits();
    const word_t low = stored & word_mask(u);
    const ecc_decode_result inner = code_.decode(stored >> u);
    return {low | (inner.data << u), inner.status};
  }

  /// Reference encode/decode: same split, inner code's per-bit walk.
  /// The oracle the compiled path is proven bit-identical against.
  [[nodiscard]] word_t encode_reference(word_t data) const;
  [[nodiscard]] ecc_decode_result decode_reference(word_t stored) const;

  /// Logical data bit stored at `column`, or -1 when the column holds a
  /// check bit of the inner code. Unprotected columns map to bits
  /// 0..u-1, codeword data columns map to bits u..W-1.
  [[nodiscard]] int data_bit_at_column(unsigned column) const;

  /// True when `column` belongs to the protected codeword region.
  [[nodiscard]] bool is_protected_column(unsigned column) const {
    return column >= unprotected_bits();
  }

 private:
  unsigned word_bits_;
  unsigned protected_bits_;
  hamming_secded code_;
};

}  // namespace urmem
