#include "urmem/common/cli.hpp"

#include <algorithm>
#include <cstddef>

namespace urmem {

std::optional<cli_args> parse_cli(const cli_spec& spec, int argc,
                                  const char* const* argv, std::ostream& out,
                                  std::ostream& err) {
  cli_args args;
  const auto fail = [&](std::string_view message,
                        std::string_view arg) -> std::optional<cli_args> {
    err << spec.tool << ": " << message << " '" << arg << "'\n" << spec.usage;
    return std::nullopt;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out << spec.usage;
      args.help = true;
      return args;
    }
    if (arg.starts_with("--")) {
      const std::size_t eq = arg.find('=');
      const std::string_view name = arg.substr(0, eq);
      const auto it =
          std::find_if(spec.flags.begin(), spec.flags.end(),
                       [&](const cli_flag& f) { return f.name == name; });
      if (it == spec.flags.end()) return fail("unknown flag", arg);
      if (!it->takes_value) {
        if (eq != std::string_view::npos) {
          return fail("flag takes no value", arg);
        }
        args.seen.insert(it->name);
        continue;
      }
      std::string value;
      if (eq != std::string_view::npos) {
        value = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return fail("flag requires a value", arg);
      }
      args.seen.insert(it->name);
      args.values.insert_or_assign(it->name, std::move(value));
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (spec.accept_overrides && eq != std::string_view::npos && eq > 0) {
      args.overrides.emplace_back(std::string(arg.substr(0, eq)),
                                  std::string(arg.substr(eq + 1)));
      continue;
    }
    if (!spec.accept_positionals) return fail("unexpected argument", arg);
    args.positionals.emplace_back(arg);
  }
  return args;
}

}  // namespace urmem
