#include "urmem/common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>

namespace urmem {

namespace {

std::string kind_name(json_value::kind k) {
  switch (k) {
    case json_value::kind::null: return "null";
    case json_value::kind::boolean: return "boolean";
    case json_value::kind::number: return "number";
    case json_value::kind::string: return "string";
    case json_value::kind::array: return "array";
    case json_value::kind::object: return "object";
  }
  return "?";
}

[[noreturn]] void type_mismatch(json_value::kind actual, const char* wanted) {
  throw json_type_error("expected " + std::string(wanted) + ", got " +
                        kind_name(actual));
}

/// Recursive-descent parser over one contiguous buffer.
class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  json_value run() {
    json_value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw json_parse_error(message, line, column);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  json_value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return json_value(parse_string());
      case 't':
        if (consume_literal("true")) return json_value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return json_value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return json_value();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  json_value parse_object() {
    expect('{');
    json_value value = json_value::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      json_value member = parse_value();
      if (value.find(key) != nullptr) fail("duplicate object key \"" + key + "\"");
      value.set(key, std::move(member));
      skip_ws();
      const char next = peek();
      if (next != '}' && next != ',') fail("expected ',' or '}' in object");
      ++pos_;
      if (next == '}') return value;
    }
  }

  json_value parse_array() {
    expect('[');
    json_value value = json_value::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.push_back(parse_value());
      skip_ws();
      const char next = peek();
      if (next != ']' && next != ',') fail("expected ',' or ']' in array");
      ++pos_;
      if (next == ']') return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape digit");
          }
          // UTF-8 encode the BMP code point (spec files are config text;
          // surrogate pairs outside the BMP are rejected rather than
          // silently mangled).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  json_value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == 'e' ||
          c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");

    const bool integral = token.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      if (token[0] == '-') {
        std::int64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return json_value(value);
        }
      } else {
        std::uint64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return json_value(value);
        }
      }
      // Out of 64-bit range: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      fail("invalid number \"" + std::string(token) + "\"");
    }
    return json_value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

json_parse_error::json_parse_error(const std::string& message, std::size_t line,
                                   std::size_t column)
    : std::runtime_error("JSON parse error at line " + std::to_string(line) +
                         ", column " + std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

json_value::json_value(std::int64_t value) : kind_(kind::number) {
  num_ = static_cast<double>(value);
  if (value >= 0) {
    uint_ = static_cast<std::uint64_t>(value);
    int_kind_ = int_kind::unsigned_;
  } else {
    int_ = value;
    int_kind_ = int_kind::signed_;
  }
}

json_value::json_value(std::uint64_t value) : kind_(kind::number) {
  num_ = static_cast<double>(value);
  uint_ = value;
  int_kind_ = int_kind::unsigned_;
}

json_value json_value::parse(std::string_view text) { return parser(text).run(); }

bool json_value::as_bool() const {
  if (kind_ != kind::boolean) type_mismatch(kind_, "boolean");
  return bool_;
}

double json_value::as_double() const {
  if (kind_ != kind::number) type_mismatch(kind_, "number");
  return num_;
}

std::uint64_t json_value::as_u64() const {
  if (kind_ != kind::number) type_mismatch(kind_, "number");
  if (int_kind_ == int_kind::unsigned_) return uint_;
  if (int_kind_ == int_kind::signed_) {
    throw json_type_error("expected unsigned integer, got negative number");
  }
  // Doubles that happen to be exact nonnegative integers are accepted so
  // "runs": 1e7 works in spec files. Strictly below 2^64: the cast of a
  // double equal to 2^64 would be out of range (UB).
  if (num_ >= 0.0 && std::floor(num_) == num_ && num_ < 1.8446744073709552e19) {
    return static_cast<std::uint64_t>(num_);
  }
  throw json_type_error("expected unsigned integer, got non-integral number");
}

const std::string& json_value::as_string() const {
  if (kind_ != kind::string) type_mismatch(kind_, "string");
  return str_;
}

const json_value::array_t& json_value::as_array() const {
  if (kind_ != kind::array) type_mismatch(kind_, "array");
  return array_;
}

json_value::array_t& json_value::as_array() {
  if (kind_ != kind::array) type_mismatch(kind_, "array");
  return array_;
}

const json_value::object_t& json_value::as_object() const {
  if (kind_ != kind::object) type_mismatch(kind_, "object");
  return object_;
}

json_value::object_t& json_value::as_object() {
  if (kind_ != kind::object) type_mismatch(kind_, "object");
  return object_;
}

const json_value* json_value::find(std::string_view key) const {
  if (kind_ != kind::object) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

json_value& json_value::set(std::string_view key, json_value value) {
  if (kind_ == kind::null) kind_ = kind::object;
  if (kind_ != kind::object) type_mismatch(kind_, "object");
  for (auto& [name, member] : object_) {
    if (name == key) {
      member = std::move(value);
      return member;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
  return object_.back().second;
}

void json_value::set_path(std::string_view path, json_value value) {
  const std::size_t dot = path.find('.');
  if (dot == std::string_view::npos) {
    set(path, std::move(value));
    return;
  }
  const std::string_view head = path.substr(0, dot);
  if (kind_ == kind::null) kind_ = kind::object;
  if (kind_ != kind::object) type_mismatch(kind_, "object");
  for (auto& [name, member] : object_) {
    if (name == head) {
      member.set_path(path.substr(dot + 1), std::move(value));
      return;
    }
  }
  object_.emplace_back(std::string(head), make_object());
  object_.back().second.set_path(path.substr(dot + 1), std::move(value));
}

json_value& json_value::push_back(json_value value) {
  if (kind_ == kind::null) kind_ = kind::array;
  if (kind_ != kind::array) type_mismatch(kind_, "array");
  array_.push_back(std::move(value));
  return array_.back();
}

std::string json_value::dump(unsigned indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void json_value::dump_to(std::string& out, unsigned indent, unsigned depth) const {
  const auto newline_pad = [&](unsigned level) {
    if (indent == 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * level, ' ');
  };
  switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::number: {
      if (int_kind_ == int_kind::unsigned_) {
        out += std::to_string(uint_);
      } else if (int_kind_ == int_kind::signed_) {
        out += std::to_string(int_);
      } else if (!std::isfinite(num_)) {
        out += "null";  // JSON has no inf/nan
      } else {
        // Shortest round-trip form: parse(dump(x)) == x, no noise digits.
        char buffer[32];
        const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), num_);
        out.append(buffer, ec == std::errc() ? ptr : buffer);
      }
      break;
    }
    case kind::string: dump_string(out, str_); break;
    case kind::array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case kind::object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(depth + 1);
        dump_string(out, object_[i].first);
        out += indent == 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

bool operator==(const json_value& a, const json_value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case json_value::kind::null: return true;
    case json_value::kind::boolean: return a.bool_ == b.bool_;
    case json_value::kind::number:
      // Exact integers compare exactly; everything else as doubles.
      if (a.int_kind_ == json_value::int_kind::unsigned_ &&
          b.int_kind_ == json_value::int_kind::unsigned_) {
        return a.uint_ == b.uint_;
      }
      if (a.int_kind_ == json_value::int_kind::signed_ &&
          b.int_kind_ == json_value::int_kind::signed_) {
        return a.int_ == b.int_;
      }
      return a.num_ == b.num_;
    case json_value::kind::string: return a.str_ == b.str_;
    case json_value::kind::array: return a.array_ == b.array_;
    case json_value::kind::object: return a.object_ == b.object_;
  }
  return false;
}

}  // namespace urmem
