#include "urmem/common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "urmem/common/contracts.hpp"

namespace urmem {

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x * 0.7071067811865475244);  // 1/sqrt(2)
}

namespace {

// Acklam's inverse-normal rational approximation (|rel err| < 1.15e-9).
double acklam_quantile(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double normal_quantile(double p) {
  expects(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1)");
  double x = acklam_quantile(p);
  // One Halley refinement step against the exact CDF.
  constexpr double inv_sqrt_2pi = 0.3989422804014326779;
  const double e = normal_cdf(x) - p;
  const double u = e / (inv_sqrt_2pi * std::exp(-0.5 * x * x));
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  expects(count >= 2, "linspace requires at least 2 points");
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  expects(lo > 0.0 && hi > 0.0, "logspace requires positive endpoints");
  auto exponents = linspace(std::log10(lo), std::log10(hi), count);
  for (double& e : exponents) e = std::pow(10.0, e);
  exponents.back() = hi;
  return exponents;
}

empirical_cdf::empirical_cdf(std::vector<double> values)
    : empirical_cdf(std::move(values), {}) {}

empirical_cdf::empirical_cdf(std::vector<double> values, std::vector<double> weights) {
  expects(!values.empty(), "empirical_cdf requires at least one sample");
  if (weights.empty()) {
    weights.assign(values.size(), 1.0);
  }
  expects(weights.size() == values.size(), "values/weights size mismatch");

  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t l, std::size_t r) { return values[l] < values[r]; });

  double total = 0.0;
  for (const double w : weights) {
    expects(w >= 0.0, "weights must be nonnegative");
    total += w;
  }
  expects(total > 0.0, "total weight must be positive");

  double running = 0.0;
  for (const std::size_t idx : order) {
    running += weights[idx] / total;
    if (!values_.empty() && values_.back() == values[idx]) {
      cumulative_.back() = running;  // merge duplicate support points
    } else {
      values_.push_back(values[idx]);
      cumulative_.push_back(running);
    }
  }
  cumulative_.back() = 1.0;  // absorb rounding
}

double empirical_cdf::at(double x) const {
  expects(!values_.empty(), "empirical_cdf is empty");
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  if (it == values_.begin()) return 0.0;
  const auto idx = static_cast<std::size_t>(std::distance(values_.begin(), it)) - 1;
  return cumulative_[idx];
}

double empirical_cdf::quantile(double p) const {
  expects(!values_.empty(), "empirical_cdf is empty");
  expects(p > 0.0 && p <= 1.0, "quantile requires p in (0,1]");
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), p);
  if (it == cumulative_.end()) return values_.back();
  const auto idx = static_cast<std::size_t>(std::distance(cumulative_.begin(), it));
  return values_[idx];
}

latency_histogram::latency_histogram() : buckets_(bucket_table_size, 0) {}

std::size_t latency_histogram::bucket_index(std::uint64_t value) {
  // Values with at most (sub_bucket_bits + 1) significant bits get
  // exact unit buckets; above that the top sub_bucket_bits+1 bits pick
  // the bucket, giving 32 sub-buckets per octave.
  if (value < 2 * sub_bucket_count) return static_cast<std::size_t>(value);
  const unsigned shift =
      static_cast<unsigned>(std::bit_width(value)) - (sub_bucket_bits + 1);
  const std::uint64_t top = value >> shift;  // in [32, 64)
  return static_cast<std::size_t>(shift) * sub_bucket_count +
         static_cast<std::size_t>(top);
}

std::uint64_t latency_histogram::bucket_upper(std::size_t index) {
  expects(index < bucket_table_size, "bucket index out of range");
  if (index < 2 * sub_bucket_count) return index;
  const unsigned shift =
      static_cast<unsigned>(index / sub_bucket_count) - 1;
  const std::uint64_t top = index - std::size_t{shift} * sub_bucket_count;
  return (top << shift) | ((std::uint64_t{1} << shift) - 1);
}

void latency_histogram::record(std::uint64_t value) {
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void latency_histogram::merge(const latency_histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < bucket_table_size; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double latency_histogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t latency_histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_table_size; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;  // unreachable: cumulative reaches count_
}

}  // namespace urmem
