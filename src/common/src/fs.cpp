#include "urmem/common/fs.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <system_error>

namespace urmem {

void ensure_parent_dirs(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    throw std::runtime_error("cannot create directory '" + parent.string() +
                             "': " + ec.message());
  }
}

void write_file_atomic(const std::string& path, std::string_view content) {
  ensure_parent_dirs(path);
  // Process-unique temp name: concurrent shards publishing into the
  // same directory never clobber each other's in-flight writes.
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write '" + temp + "'");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      throw std::runtime_error("short write to '" + temp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(temp, ignored);
    throw std::runtime_error("cannot rename '" + temp + "' to '" + path +
                             "': " + ec.message());
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace urmem
