#include "urmem/common/binomial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "urmem/common/contracts.hpp"

namespace urmem {

namespace {

double log_choose(std::uint64_t n, std::uint64_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

}  // namespace

binomial_distribution::binomial_distribution(std::uint64_t trials, double p)
    : trials_(trials), p_(p) {
  expects(trials >= 1, "binomial requires at least one trial");
  expects(p >= 0.0 && p <= 1.0, "binomial requires p in [0,1]");
}

double binomial_distribution::log_pmf(std::uint64_t n) const {
  if (n > trials_) return -std::numeric_limits<double>::infinity();
  if (p_ == 0.0) return n == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  if (p_ == 1.0) return n == trials_ ? 0.0 : -std::numeric_limits<double>::infinity();
  const auto nd = static_cast<double>(n);
  const auto md = static_cast<double>(trials_ - n);
  // log1p(-p) keeps precision for the (1-p)^(M-n) factor when p ~ 1e-9.
  return log_choose(trials_, n) + nd * std::log(p_) + md * std::log1p(-p_);
}

double binomial_distribution::pmf(std::uint64_t n) const { return std::exp(log_pmf(n)); }

void binomial_distribution::build_table() const {
  if (!table_.empty()) return;
  // Locate the mode and expand outward until the missed mass is negligible.
  const double mu = mean();
  const double sd = std::sqrt(std::max(variance(), 1.0));
  const auto mode = static_cast<std::uint64_t>(std::max(0.0, std::floor(mu)));
  const auto span = static_cast<std::uint64_t>(std::ceil(12.0 * sd + 24.0));
  table_lo_ = mode > span ? mode - span : 0;
  const std::uint64_t hi = std::min(trials_, mode + span);
  table_.reserve(hi - table_lo_ + 1);
  double running = 0.0;
  for (std::uint64_t n = table_lo_; n <= hi; ++n) {
    running += pmf(n);
    table_.push_back(running);
  }
}

double binomial_distribution::cdf(std::uint64_t n) const {
  build_table();
  if (n < table_lo_) {
    // Below the cached window the mass is < 1e-15; sum it directly.
    double acc = 0.0;
    for (std::uint64_t i = 0; i <= n; ++i) acc += pmf(i);
    return acc;
  }
  const std::uint64_t idx = n - table_lo_;
  if (idx >= table_.size()) return 1.0;
  // Mass below the window start (only nonzero when table_lo_ > 0).
  double below = 0.0;
  if (table_lo_ > 0) below = std::max(0.0, 1.0 - table_.back());
  return std::min(1.0, below + table_[idx]);
}

std::uint64_t binomial_distribution::quantile(double q) const {
  expects(q > 0.0 && q < 1.0, "quantile requires q in (0,1)");
  build_table();
  const double below = table_lo_ > 0 ? std::max(0.0, 1.0 - table_.back()) : 0.0;
  const double target = q - below;
  if (target <= 0.0) return table_lo_;
  const auto it = std::lower_bound(table_.begin(), table_.end(), target);
  if (it == table_.end()) return std::min(trials_, table_lo_ + table_.size());
  return table_lo_ + static_cast<std::uint64_t>(std::distance(table_.begin(), it));
}

std::uint64_t binomial_distribution::sample(rng& gen) const {
  build_table();
  const double below = table_lo_ > 0 ? std::max(0.0, 1.0 - table_.back()) : 0.0;
  const double u = gen.uniform() * (below + table_.back());
  if (u < below) return table_lo_ == 0 ? 0 : table_lo_ - 1;  // sub-window tail
  const auto it = std::lower_bound(table_.begin(), table_.end(), u - below);
  if (it == table_.end()) return table_lo_ + table_.size() - 1;
  return table_lo_ + static_cast<std::uint64_t>(std::distance(table_.begin(), it));
}

std::vector<std::uint64_t> stratified_sample_counts(const binomial_distribution& dist,
                                                    std::uint64_t n_max,
                                                    std::uint64_t total_runs) {
  expects(n_max >= 1, "n_max must be at least 1");
  std::vector<std::uint64_t> counts(n_max);
  for (std::uint64_t n = 1; n <= n_max; ++n) {
    counts[n - 1] = static_cast<std::uint64_t>(
        std::llround(dist.pmf(n) * static_cast<double>(total_runs)));
  }
  return counts;
}

}  // namespace urmem
