#include "urmem/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "urmem/common/contracts.hpp"

namespace urmem {

console_table::console_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  expects(!headers_.empty(), "table needs at least one column");
}

void console_table::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void console_table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };

  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int digits) {
  std::ostringstream ss;
  ss << std::setprecision(digits) << value;
  return ss.str();
}

std::string format_scientific(double value, int digits) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(digits) << value;
  return ss.str();
}

std::string format_percent(double ratio, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << ratio * 100.0 << "%";
  return ss.str();
}

}  // namespace urmem
