// Binomial distribution machinery for fault-count statistics.
//
// The number of failing bit-cells N in a memory of M cells with cell
// failure probability Pcell follows Binomial(M, Pcell) — Eq. (4) of the
// paper. Everything here works in the log domain so that M = 131072 and
// Pcell = 1e-9 are handled without underflow.
#pragma once

#include <cstdint>
#include <vector>

#include "urmem/common/rng.hpp"

namespace urmem {

/// Binomial(M, p) fault-count distribution (paper Eq. 4).
class binomial_distribution {
 public:
  /// `trials` >= 1, `p` in [0, 1].
  binomial_distribution(std::uint64_t trials, double p);

  [[nodiscard]] std::uint64_t trials() const { return trials_; }
  [[nodiscard]] double probability() const { return p_; }

  /// ln Pr(N = n).
  [[nodiscard]] double log_pmf(std::uint64_t n) const;

  /// Pr(N = n).
  [[nodiscard]] double pmf(std::uint64_t n) const;

  /// Pr(N <= n), summed from the dominant region (exact to double precision).
  [[nodiscard]] double cdf(std::uint64_t n) const;

  /// E[N] = M * p.
  [[nodiscard]] double mean() const { return static_cast<double>(trials_) * p_; }

  /// Var[N] = M * p * (1 - p).
  [[nodiscard]] double variance() const { return mean() * (1.0 - p_); }

  /// Smallest n with Pr(N <= n) >= q. Used to pick Nmax such that 99 % of
  /// memory samples have no more failures (paper Sec. 5.2).
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Draws a fault count. Inversion over a cached cumulative table covering
  /// all but 1e-15 of the mass, so repeated draws are O(log n).
  [[nodiscard]] std::uint64_t sample(rng& gen) const;

 private:
  void build_table() const;

  std::uint64_t trials_;
  double p_;
  // Lazy cumulative table over [table_lo_, table_lo_ + table_.size()).
  mutable std::vector<double> table_;
  mutable std::uint64_t table_lo_ = 0;
};

/// Sample allocation for the stratified Monte-Carlo sweep of Fig. 5:
/// for each failure count n in [1, n_max], the paper draws
/// Pr(N = n) * total_runs fault maps. Entry i of the result is the
/// (rounded) number of samples for n = i + 1.
[[nodiscard]] std::vector<std::uint64_t> stratified_sample_counts(
    const binomial_distribution& dist, std::uint64_t n_max, std::uint64_t total_runs);

}  // namespace urmem
