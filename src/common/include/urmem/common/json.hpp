// Minimal JSON document model for the declarative scenario API.
//
// The scenario layer speaks JSON in both directions — `scenario_spec`
// files are parsed from disk / CLI overrides, and `urmem-run` emits a
// deterministic JSON report that CI diffs against checked-in goldens —
// so the representation is chosen for reproducibility rather than
// speed:
//  * objects preserve insertion order (dumps are stable),
//  * integers parsed without '.'/exponent stay exact 64-bit integers
//    (seeds and trial counts round-trip bit-exactly),
//  * doubles dump via std::to_chars shortest round-trip form, so
//    parse(dump(x)) == x and goldens carry no precision noise.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace urmem {

/// Error raised by json_value::parse with 1-based line/column context.
class json_parse_error : public std::runtime_error {
 public:
  json_parse_error(const std::string& message, std::size_t line, std::size_t column);
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Error raised by typed accessors on a kind mismatch.
class json_type_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON document node: null, bool, number, string, array or object.
class json_value {
 public:
  enum class kind : std::uint8_t { null, boolean, number, string, array, object };

  using array_t = std::vector<json_value>;
  /// Insertion-ordered key/value members (no hashing: specs are tiny and
  /// dump order must be reproducible).
  using object_t = std::vector<std::pair<std::string, json_value>>;

  json_value() = default;  // null
  json_value(bool value) : kind_(kind::boolean), bool_(value) {}
  json_value(double value) : kind_(kind::number), num_(value) {}
  json_value(std::int64_t value);
  json_value(std::uint64_t value);
  json_value(int value) : json_value(static_cast<std::int64_t>(value)) {}
  json_value(unsigned value) : json_value(static_cast<std::uint64_t>(value)) {}
  json_value(std::string value) : kind_(kind::string), str_(std::move(value)) {}
  json_value(std::string_view value) : json_value(std::string(value)) {}
  json_value(const char* value) : json_value(std::string(value)) {}

  [[nodiscard]] static json_value make_array() { json_value v; v.kind_ = kind::array; return v; }
  [[nodiscard]] static json_value make_object() { json_value v; v.kind_ = kind::object; return v; }

  /// Parses one JSON document (surrounding whitespace allowed; trailing
  /// garbage rejected). Throws json_parse_error.
  [[nodiscard]] static json_value parse(std::string_view text);

  [[nodiscard]] kind type() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == kind::null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == kind::boolean; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == kind::number; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == kind::string; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == kind::array; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == kind::object; }
  /// True for numbers parsed/constructed as exact integers.
  [[nodiscard]] bool is_integer() const noexcept {
    return kind_ == kind::number && int_kind_ != int_kind::none;
  }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Exact unsigned value; throws on non-integers and negatives.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const array_t& as_array() const;
  [[nodiscard]] array_t& as_array();
  [[nodiscard]] const object_t& as_object() const;
  [[nodiscard]] object_t& as_object();

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const json_value* find(std::string_view key) const;

  /// Sets (replacing) or appends an object member; converts null to {}.
  json_value& set(std::string_view key, json_value value);

  /// Sets the node at dotted `path` (e.g. "fault.pcell"), creating
  /// intermediate objects; converts nulls on the way down.
  void set_path(std::string_view path, json_value value);

  /// Appends to an array node (converts null to []).
  json_value& push_back(json_value value);

  /// Serializes with 2-space indentation and a stable member order.
  [[nodiscard]] std::string dump(unsigned indent = 2) const;

  friend bool operator==(const json_value& a, const json_value& b);

 private:
  enum class int_kind : std::uint8_t { none, signed_, unsigned_ };

  void dump_to(std::string& out, unsigned indent, unsigned depth) const;

  kind kind_ = kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t uint_ = 0;   // valid when int_kind_ == unsigned_
  std::int64_t int_ = 0;     // valid when int_kind_ == signed_
  int_kind int_kind_ = int_kind::none;
  std::string str_;
  array_t array_;
  object_t object_;
};

}  // namespace urmem
