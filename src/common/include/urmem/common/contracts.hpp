// Lightweight precondition/postcondition checks (C++ Core Guidelines I.6/I.8).
//
// Violations throw: a precondition failure is a caller bug
// (std::invalid_argument), a postcondition failure is a library bug
// (std::logic_error). Both carry the call site, which makes test failures
// and misuse reports directly actionable.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace urmem {

/// Throws std::invalid_argument when a caller-supplied argument violates a
/// documented precondition.
inline void expects(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw std::invalid_argument(std::string(loc.file_name()) + ":" +
                                std::to_string(loc.line()) +
                                ": precondition violated: " + message);
  }
}

/// Literal-message overload: checks on per-word hot paths (sram_array
/// read/write) must not construct a std::string per successful call.
inline void expects(bool condition, const char* message,
                    std::source_location loc = std::source_location::current()) {
  if (condition) return;
  throw std::invalid_argument(std::string(loc.file_name()) + ":" +
                              std::to_string(loc.line()) +
                              ": precondition violated: " + message);
}

/// Throws std::logic_error when an internal invariant does not hold.
inline void ensures(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw std::logic_error(std::string(loc.file_name()) + ":" +
                           std::to_string(loc.line()) +
                           ": invariant violated: " + message);
  }
}

/// Literal-message overload, same rationale as expects(bool, const char*).
inline void ensures(bool condition, const char* message,
                    std::source_location loc = std::source_location::current()) {
  if (condition) return;
  throw std::logic_error(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) +
                         ": invariant violated: " + message);
}

}  // namespace urmem
