// Deterministic random number generation for Monte-Carlo experiments.
//
// Two generators are provided:
//  * `rng` — a sequential xoshiro256** engine used for sampling fault maps
//    and datasets. It satisfies UniformRandomBitGenerator.
//  * `cell_hash` — a stateless counter-based generator (splitmix64 finalizer)
//    that maps (seed, index) to an independent uniform draw. It gives every
//    bit-cell of a memory its own persistent random value, which is how the
//    per-cell critical voltage (and with it the fault-inclusion property of
//    Sec. 2) is realized without storing per-cell state.
//
// All generators are reproducible across platforms; the standard library's
// distributions are deliberately avoided (their outputs are
// implementation-defined).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

namespace urmem {

/// splitmix64 finalizer: a high-quality 64-bit mix function.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Sequential pseudo-random engine (xoshiro256**, Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator; period 2^256 - 1.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by repeated splitmix64 expansion of `seed`.
  explicit constexpr rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
    // A theoretical all-zero seed expansion would lock the engine; nudge it.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly distributed bits.
  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  constexpr std::uint64_t uniform_below(std::uint64_t bound) {
    __extension__ using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Box-Muller; consumes two uniforms per pair,
  /// caches the second).
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    constexpr double two_pi = 6.283185307179586476925286766559;
    cached_ = radius * std::sin(two_pi * u2);
    have_cached_ = true;
    return radius * std::cos(two_pi * u2);
  }

  /// Derives an independent child engine; `stream` selects the substream.
  [[nodiscard]] constexpr rng split(std::uint64_t stream) const {
    return rng(splitmix64(state_[0] ^ splitmix64(stream ^ 0xa0761d6478bd642fULL)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

/// Derives the seed of substream `stream` of a root `seed` — the
/// stream-splitting transform behind rng::split, exposed so campaign
/// engines can hand trial i its own engine without materializing (or
/// sharing) the root: stream_seed(seed, i) seeds an engine equal to
/// rng(seed).split(i). Distinct streams are decorrelated by two
/// splitmix64 passes, so trial indices 0, 1, 2, ... are safe stream ids.
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t seed,
                                                  std::uint64_t stream) {
  return splitmix64(splitmix64(seed) ^
                    splitmix64(stream ^ 0xa0761d6478bd642fULL));
}

/// Independent engine for substream `stream` of root `seed`; equivalent
/// to rng(seed).split(stream).
[[nodiscard]] constexpr rng make_stream_rng(std::uint64_t seed,
                                            std::uint64_t stream) {
  return rng(stream_seed(seed, stream));
}

/// Stable 64-bit stream id for a named substream (FNV-1a over the
/// name). The single seed-derivation policy of the experiment stack:
/// every auxiliary stream an experiment needs besides its numbered
/// campaign trials (baseline evaluations, fault draws shared across a
/// scheme comparison, BIST patterns, ...) derives as
/// make_stream_rng(root, stream_tag("component.purpose")) instead of a
/// per-binary magic constant. Trial indices stay numeric streams, so
/// named streams never collide with campaign trials in practice and,
/// more importantly, every binary derives them the same way.
[[nodiscard]] constexpr std::uint64_t stream_tag(std::string_view name) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV-1a prime
  }
  return hash;
}

/// Engine for the named substream `name` of root `seed`.
[[nodiscard]] constexpr rng named_stream_rng(std::uint64_t seed,
                                             std::string_view name) {
  return make_stream_rng(seed, stream_tag(name));
}

/// Stateless counter-based generator: an independent uniform draw per
/// (seed, index) pair. Evaluating the same pair always yields the same
/// value, so per-cell properties derived from it are persistent — exactly
/// the behaviour of manufacturing variations.
class cell_hash {
 public:
  explicit constexpr cell_hash(std::uint64_t seed) : seed_(splitmix64(seed)) {}

  /// 64 uniform bits for element `index`.
  [[nodiscard]] constexpr std::uint64_t bits(std::uint64_t index) const {
    return splitmix64(seed_ ^ (index * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  }

  /// Uniform double in (0, 1) for element `index` (never exactly 0 or 1,
  /// safe as input to inverse-CDF transforms).
  [[nodiscard]] constexpr double uniform(std::uint64_t index) const {
    return (static_cast<double>(bits(index) >> 11) + 0.5) * 0x1.0p-53;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace urmem
