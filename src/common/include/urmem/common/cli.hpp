// Shared command-line parsing for the urmem tools.
//
// Every tool (urmem-run, urmem-merge, urmem-verify, urmem-serve) used
// to hand-roll the same loop: --help prints usage to stdout, value
// flags, boolean flags, dotted key=value spec overrides, positionals,
// and a uniform "unknown flag -> usage on stderr, exit 2" policy. This
// header is that loop, written once and unit-testable: parse_cli never
// exits or touches global streams — it writes to the streams it is
// given and reports malformed input by returning nullopt, which every
// tool maps to exit code 2.
//
// Value flags accept both `--flag=value` and `--flag value`; the last
// occurrence wins. `--help` / `-h` short-circuits: usage goes to `out`
// and the returned cli_args has help == true (tools exit 0).
#pragma once

#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace urmem {

/// One recognized flag. `name` includes the leading dashes ("--out").
struct cli_flag {
  std::string name;
  bool takes_value = false;
};

/// A tool's command-line grammar.
struct cli_spec {
  std::string tool;       ///< diagnostic prefix, e.g. "urmem-run"
  std::string_view usage; ///< full usage text (printed verbatim)
  std::vector<cli_flag> flags;
  /// Collect bare `key=value` arguments as spec overrides.
  bool accept_overrides = false;
  /// Collect remaining bare arguments as positionals; when false a bare
  /// argument is an error (usage to stderr, parse fails).
  bool accept_positionals = false;
};

/// Parsed command line.
struct cli_args {
  /// --help was given; usage has already been printed to `out`.
  bool help = false;
  /// Flags that appeared (by canonical name, values or not).
  std::set<std::string, std::less<>> seen;
  /// Last value given for each value flag.
  std::map<std::string, std::string, std::less<>> values;
  /// Bare key=value arguments, in order (when accept_overrides).
  std::vector<std::pair<std::string, std::string>> overrides;
  /// Bare arguments, in order (when accept_positionals).
  std::vector<std::string> positionals;

  [[nodiscard]] bool has(std::string_view flag) const {
    return seen.contains(flag);
  }
  [[nodiscard]] std::string value_or(std::string_view flag,
                                     std::string fallback = {}) const {
    const auto it = values.find(flag);
    return it == values.end() ? std::move(fallback) : it->second;
  }
};

/// Parses argv against `spec`. On malformed input (unknown flag, value
/// given to a value-less flag, missing value, unexpected positional)
/// writes "<tool>: <problem>" plus the usage text to `err` and returns
/// nullopt; callers exit 2. On --help writes usage to `out` and returns
/// cli_args{help = true}; callers exit 0.
[[nodiscard]] std::optional<cli_args> parse_cli(const cli_spec& spec, int argc,
                                                const char* const* argv,
                                                std::ostream& out,
                                                std::ostream& err);

}  // namespace urmem
