// Two's-complement fixed-point codec.
//
// The application experiments (paper Sec. 5.2) store training data as
// 32-bit two's-complement integers in the faulty memory. This codec maps
// real-valued features to/from Q(width - frac_bits - 1).frac_bits words,
// saturating out-of-range values — the same convention the error-magnitude
// model of Eq. (6) assumes (a fault at bit b costs 2^b).
#pragma once

#include <cmath>
#include <cstdint>

#include "urmem/common/bitops.hpp"
#include "urmem/common/contracts.hpp"

namespace urmem {

/// Converts between doubles and fixed-point memory words.
class fixed_point_codec {
 public:
  /// `width` total bits (2..64) including the sign bit; `frac_bits`
  /// fractional bits (0 <= frac_bits < width).
  fixed_point_codec(unsigned width, unsigned frac_bits)
      : width_(width), frac_bits_(frac_bits) {
    expects(width >= 2 && width <= max_word_width, "fixed-point width must be 2..64");
    expects(frac_bits < width, "fractional bits must leave room for the sign");
  }

  [[nodiscard]] constexpr unsigned width() const { return width_; }
  [[nodiscard]] constexpr unsigned frac_bits() const { return frac_bits_; }

  /// Scale factor 2^frac_bits.
  [[nodiscard]] constexpr double scale() const {
    return static_cast<double>(word_t{1} << frac_bits_);
  }

  /// Largest representable value.
  [[nodiscard]] constexpr double max_value() const {
    return static_cast<double>(max_raw()) / scale();
  }

  /// Smallest (most negative) representable value.
  [[nodiscard]] constexpr double min_value() const {
    return static_cast<double>(min_raw()) / scale();
  }

  /// Quantization step.
  [[nodiscard]] constexpr double resolution() const { return 1.0 / scale(); }

  /// Encodes `value` into a `width`-bit two's-complement word
  /// (round-to-nearest, saturating).
  [[nodiscard]] word_t encode(double value) const {
    const double scaled = std::nearbyint(value * scale());
    std::int64_t raw;
    if (scaled >= static_cast<double>(max_raw())) {
      raw = max_raw();
    } else if (scaled <= static_cast<double>(min_raw())) {
      raw = min_raw();
    } else {
      raw = static_cast<std::int64_t>(scaled);
    }
    return from_signed(raw, width_);
  }

  /// Decodes a `width`-bit two's-complement word back to a double.
  [[nodiscard]] constexpr double decode(word_t stored) const {
    return static_cast<double>(to_signed(stored, width_)) / scale();
  }

 private:
  [[nodiscard]] constexpr std::int64_t max_raw() const {
    return static_cast<std::int64_t>(word_mask(width_ - 1));
  }
  [[nodiscard]] constexpr std::int64_t min_raw() const { return -max_raw() - 1; }

  unsigned width_;
  unsigned frac_bits_;
};

}  // namespace urmem
