// Small filesystem helpers for the tools and the checkpoint layer.
//
// Campaign checkpoints are written by shards that may be killed at any
// instant (and may share one directory over a network filesystem), so
// the one write primitive offered here is atomic publication:
// write_file_atomic streams the content to a process-unique sibling
// temp file and renames it over the target, so readers only ever see
// either the previous complete file or the new complete file — never a
// truncated one. Parent directories are created on demand (shared with
// `urmem-run --out`, which historically failed bare when FILE's
// directory was missing).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace urmem {

/// Creates `path`'s parent directories (like `mkdir -p $(dirname p)`).
/// No-op when the parent already exists or `path` has no directory
/// component; throws std::runtime_error naming the directory otherwise.
void ensure_parent_dirs(const std::string& path);

/// Atomically replaces `path` with `content`: writes a process-unique
/// sibling temp file, then renames it over `path` (POSIX rename is
/// atomic within a filesystem). Parent directories are created on
/// demand. Throws std::runtime_error on I/O failure; the temp file is
/// removed on every failure path.
void write_file_atomic(const std::string& path, std::string_view content);

/// Whole-file read; nullopt when the file is missing or unreadable.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

}  // namespace urmem
