// Width-parameterized bit manipulation on 64-bit carriers.
//
// Every memory word in the library is carried in a std::uint64_t whose
// logical width (number of valid low-order bits) travels alongside it.
// These helpers implement masking, bit access, parity and the circular
// shifts that the bit-shuffling scheme (paper Sec. 3) is built from.
#pragma once

#include <bit>
#include <cstdint>

#include "urmem/common/contracts.hpp"

namespace urmem {

/// Carrier type for memory words of up to 64 bits.
using word_t = std::uint64_t;

/// Maximum supported word width in bits.
inline constexpr unsigned max_word_width = 64;

/// Mask with the low `width` bits set. `width` must be in [1, 64].
[[nodiscard]] constexpr word_t word_mask(unsigned width) {
  return width >= 64 ? ~word_t{0} : ((word_t{1} << width) - 1);
}

/// True when `width` is a supported word width (1..64).
[[nodiscard]] constexpr bool is_valid_width(unsigned width) {
  return width >= 1 && width <= max_word_width;
}

/// Extracts bit `pos` (0 = LSB) of `value`.
[[nodiscard]] constexpr bool get_bit(word_t value, unsigned pos) {
  return ((value >> pos) & word_t{1}) != 0;
}

/// Returns `value` with bit `pos` set to `bit`.
[[nodiscard]] constexpr word_t set_bit(word_t value, unsigned pos, bool bit) {
  const word_t mask = word_t{1} << pos;
  return bit ? (value | mask) : (value & ~mask);
}

/// Returns `value` with bit `pos` inverted.
[[nodiscard]] constexpr word_t flip_bit(word_t value, unsigned pos) {
  return value ^ (word_t{1} << pos);
}

/// Even parity of the low `width` bits: true when the popcount is odd.
[[nodiscard]] constexpr bool parity(word_t value, unsigned width = 64) {
  return (std::popcount(value & word_mask(width)) & 1) != 0;
}

/// Circular right shift of the low `width` bits of `value` by `shift`
/// positions. Bits above `width` are discarded. `shift` may exceed `width`.
[[nodiscard]] constexpr word_t rotate_right(word_t value, unsigned shift, unsigned width) {
  const word_t mask = word_mask(width);
  value &= mask;
  shift %= width;
  if (shift == 0) return value;
  return ((value >> shift) | (value << (width - shift))) & mask;
}

/// Circular left shift of the low `width` bits; inverse of rotate_right.
[[nodiscard]] constexpr word_t rotate_left(word_t value, unsigned shift, unsigned width) {
  shift %= width;
  return rotate_right(value, shift == 0 ? 0 : width - shift, width);
}

/// Integer base-2 logarithm of a power of two.
[[nodiscard]] constexpr unsigned log2_exact(word_t value) {
  return static_cast<unsigned>(std::countr_zero(value));
}

/// True when `value` is a nonzero power of two.
[[nodiscard]] constexpr bool is_power_of_two(word_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Ceiling of log2 for any nonzero value.
[[nodiscard]] constexpr unsigned ceil_log2(word_t value) {
  return value <= 1 ? 0
                    : static_cast<unsigned>(std::bit_width(value - 1));
}

/// Reinterprets the low `width` bits of `stored` as a two's-complement
/// signed integer (sign bit = bit width-1) and sign-extends to 64 bits.
[[nodiscard]] constexpr std::int64_t to_signed(word_t stored, unsigned width) {
  const word_t mask = word_mask(width);
  stored &= mask;
  if (width < 64 && get_bit(stored, width - 1)) {
    return static_cast<std::int64_t>(stored | ~mask);
  }
  return static_cast<std::int64_t>(stored);
}

/// Truncates a signed value to the low `width` bits of a word
/// (two's-complement encoding; inverse of to_signed for in-range values).
[[nodiscard]] constexpr word_t from_signed(std::int64_t value, unsigned width) {
  return static_cast<word_t>(value) & word_mask(width);
}

}  // namespace urmem
