// Statistical primitives shared by the yield analysis and the
// application-quality experiments: normal CDF/quantile, descriptive
// statistics, (weighted) empirical distribution functions, and the
// log-bucketed latency histogram the serving path records tails with.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace urmem {

/// Standard normal cumulative distribution function Phi(x).
[[nodiscard]] double normal_cdf(double x);

/// Inverse of normal_cdf. `p` must lie in (0, 1).
/// Acklam's rational approximation refined with one Halley step
/// (relative error below 1e-13 over the full domain).
[[nodiscard]] double normal_quantile(double p);

/// Arithmetic mean; empty input yields 0.
[[nodiscard]] double mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator); fewer than 2 values yield 0.
[[nodiscard]] double variance(std::span<const double> values);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> values);

/// `count` evenly spaced points from `lo` to `hi` inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

/// `count` logarithmically spaced points from `lo` to `hi` inclusive
/// (both strictly positive).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t count);

/// Weighted empirical cumulative distribution function.
///
/// Samples carry nonnegative weights (uniform MC uses weight 1; the
/// stratified fault-count sweep of the paper's Fig. 5 uses per-stratum
/// probabilities Pr(N = n)). Weights are normalized internally, so the
/// CDF always reaches 1 at +infinity.
class empirical_cdf {
 public:
  empirical_cdf() = default;

  /// Builds the distribution from (value, weight) pairs.
  /// Weights must be nonnegative with a positive sum.
  empirical_cdf(std::vector<double> values, std::vector<double> weights);

  /// Builds an unweighted distribution (all weights 1).
  explicit empirical_cdf(std::vector<double> values);

  /// P(X <= x).
  [[nodiscard]] double at(double x) const;

  /// Smallest sample value v with P(X <= v) >= p; `p` in (0, 1].
  [[nodiscard]] double quantile(double p) const;

  /// Number of distinct support points.
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Sorted support points (deduplicated).
  [[nodiscard]] const std::vector<double>& support() const { return values_; }

  /// Cumulative probability at each support point.
  [[nodiscard]] const std::vector<double>& cumulative() const { return cumulative_; }

 private:
  std::vector<double> values_;      // sorted, unique
  std::vector<double> cumulative_;  // matching cumulative probabilities
};

/// Log-bucketed histogram of nonnegative integer samples (latencies in
/// nanoseconds, queue depths, ...), built for concurrent drivers: each
/// thread records into its own instance and the per-thread histograms
/// merge exactly (merge is bucket-wise integer addition, so it is
/// associative and commutative — the merged result is bit-identical at
/// any thread count and merge order).
///
/// Values below 2^6 land in exact unit buckets; above that each power
/// of two splits into 32 sub-buckets, bounding the relative quantile
/// error at 1/32 while keeping the bucket table a fixed 1920 entries.
/// Counts, sum, min, and max are exact.
///
/// Thread-safety audit (no locks by design): an instance is NOT
/// internally synchronized — record() from two threads on a shared
/// histogram is a data race. The concurrency model is ownership:
/// one instance per recording thread, merge() called only after those
/// threads are joined (service_driver does exactly this). Locking the
/// hot record() path would serialize the very tail latencies being
/// measured.
class latency_histogram {
 public:
  /// Sub-buckets per octave (power-of-two range).
  static constexpr unsigned sub_bucket_bits = 5;
  static constexpr std::uint64_t sub_bucket_count = 1ull << sub_bucket_bits;
  /// Fixed bucket-table size covering the full uint64 domain.
  static constexpr std::size_t bucket_table_size =
      (64 - sub_bucket_bits - 1) * sub_bucket_count + 2 * sub_bucket_count;

  latency_histogram();

  /// Records one sample.
  void record(std::uint64_t value);

  /// Adds `other`'s samples into this histogram (exact).
  void merge(const latency_histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Exact sum of all recorded samples (wraps past 2^64, i.e. after
  /// ~584 years of nanoseconds — out of scope).
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  /// Smallest / largest recorded sample; 0 when empty.
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const;

  /// Value at quantile `q` in [0, 1]: the smallest bucket upper bound
  /// whose cumulative count reaches ceil(q * count), clamped to the
  /// exact [min, max] range (so q=0 returns min, q=1 returns max, and
  /// a single-sample histogram returns that sample at every q).
  /// Returns 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// Bucket index a value lands in (exposed for tests).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);
  /// Largest value mapping to `index` (bucket upper bound).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index);

  friend bool operator==(const latency_histogram&,
                         const latency_histogram&) = default;

 private:
  std::vector<std::uint64_t> buckets_;  // fixed bucket_table_size entries
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace urmem
